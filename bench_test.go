// Benchmarks: one per table and figure of the paper's evaluation (the
// regeneration entry points the DESIGN.md experiment index references),
// plus the ablation benches for the design choices DESIGN.md calls out and
// raw throughput benches for the hot paths (RF sampling, MD ticks, SVM
// training).
//
// The experiment benches run against a shared reduced dataset (two
// 1.5-hour days) so `go test -bench=.` finishes in minutes; the cmd/
// fadewich-eval binary regenerates the full-scale numbers.
package fadewich_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/eval"
	"fadewich/internal/geom"
	"fadewich/internal/md"
	"fadewich/internal/re"
	"fadewich/internal/rf"
	"fadewich/internal/rng"
	"fadewich/internal/sim"
	"fadewich/internal/stream"
	"fadewich/internal/svm"
)

var (
	benchOnce sync.Once
	benchDS   *sim.Dataset
	benchH    *eval.Harness
	benchErr  error
)

func benchHarness(b *testing.B) *eval.Harness {
	b.Helper()
	benchOnce.Do(func() {
		cfg := sim.Config{Days: 2, Seed: 1234}
		cfg.Agent.DaySeconds = 5400
		cfg.Agent.MorningJitterSec = 180
		cfg.Agent.DeparturesPerDay = 4
		cfg.Agent.OutsideMeanSec = 180
		benchDS, benchErr = sim.Generate(cfg)
		if benchErr == nil {
			benchH, benchErr = eval.NewHarness(benchDS, eval.Options{Seed: 1234})
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchH
}

// --- Experiment regeneration benches, one per table/figure ---

func BenchmarkTable2EventCollection(b *testing.B) {
	h := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if rows := h.Table2(); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig2StdDevDistribution(b *testing.B) {
	h := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7FMeasureSweep(b *testing.B) {
	h := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig7(nil, []int{3, 9}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3MDPerformance(b *testing.B) {
	h := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Table3(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8LearningCurve(b *testing.B) {
	h := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig8(eval.Fig8Config{SensorCounts: []int{9}, Repeats: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9DeauthTime(b *testing.B) {
	h := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig9([]int{3, 9}, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10AttackOpportunities(b *testing.B) {
	h := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig10(eval.AdversaryDelays{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Usability(b *testing.B) {
	h := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Table4(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11VarianceCorrelation(b *testing.B) {
	h := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12RMIHeatmap(b *testing.B) {
	h := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig12(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5TopFeatures(b *testing.B) {
	h := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Table5(15); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13SecurityUsabilityTradeoff(b *testing.B) {
	h := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig13(4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches: design choices from DESIGN.md §5 ---

// ablationDataset generates a small dataset under a custom RF model.
func ablationDataset(b *testing.B, mutate func(*sim.Config)) *eval.Harness {
	b.Helper()
	cfg := sim.Config{Days: 1, Seed: 555}
	cfg.Agent.DaySeconds = 5400
	cfg.Agent.MorningJitterSec = 180
	cfg.Agent.DeparturesPerDay = 4
	cfg.Agent.OutsideMeanSec = 180
	if mutate != nil {
		mutate(&cfg)
	}
	ds, err := sim.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	h, err := eval.NewHarness(ds, eval.Options{Seed: 555})
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkAblationShadowModel compares the calibrated elliptical
// body-shadowing region against a nearly-LoS-only variant: a narrow
// ellipse starves the RE classifier of spatial signature.
func BenchmarkAblationShadowModel(b *testing.B) {
	for _, c := range []struct {
		name    string
		ellipse float64
	}{
		{"elliptical-0.35m", 0.35},
		{"los-only-0.08m", 0.08},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := ablationDataset(b, func(cfg *sim.Config) { cfg.RF.BodyEllipseM = c.ellipse })
				rows, err := h.Table3(0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[len(rows)-1].Detection.FMeasure(), "fmeasure")
			}
		})
	}
}

// BenchmarkAblationMDWindow sweeps the rolling std-dev window d: too short
// and windows fragment; too long and they smear past t∆ matching.
func BenchmarkAblationMDWindow(b *testing.B) {
	for _, c := range []struct {
		name string
		d    float64
	}{
		{"d-1.2s", 1.2},
		{"d-2.4s", 2.4},
		{"d-4.8s", 4.8},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds := benchHarness(b).Dataset()
				opt := eval.Options{Seed: 99}
				opt.MD = md.Config{StdWindowSec: c.d}
				h, err := eval.NewHarness(ds, opt)
				if err != nil {
					b.Fatal(err)
				}
				rows, err := h.Table3(0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[len(rows)-1].Detection.FMeasure(), "fmeasure")
			}
		})
	}
}

// BenchmarkAblationProfileUpdate turns Algorithm 1's batched profile
// update off (τ=-1 rejects every batch) to show the adaptive profile
// matters under occupancy drift.
func BenchmarkAblationProfileUpdate(b *testing.B) {
	for _, c := range []struct {
		name string
		tau  float64
	}{
		{"update-on", 0.25},
		{"update-off", -1},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds := benchHarness(b).Dataset()
				opt := eval.Options{Seed: 98}
				opt.MD = md.Config{Tau: c.tau}
				h, err := eval.NewHarness(ds, opt)
				if err != nil {
					b.Fatal(err)
				}
				rows, err := h.Table3(0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[len(rows)-1].Detection.FMeasure(), "fmeasure")
			}
		})
	}
}

// BenchmarkAblationSVMKernel compares linear and RBF classification
// accuracy on the full-deployment samples.
func BenchmarkAblationSVMKernel(b *testing.B) {
	for _, c := range []struct {
		name   string
		kernel svm.Kernel
	}{
		{"linear", svm.Linear{}},
		{"rbf-auto", svm.RBF{}},
	} {
		b.Run(c.name, func(b *testing.B) {
			h := benchHarness(b)
			for i := 0; i < b.N; i++ {
				samples, _, err := h.CrossValPredictions(9, 4.5, 7)
				if err != nil {
					b.Fatal(err)
				}
				acc := crossValAccuracy(b, samples, svm.Config{C: 2, Kernel: c.kernel, MaxPasses: 3, MaxIter: 120})
				b.ReportMetric(acc, "accuracy")
			}
		})
	}
}

// BenchmarkAblationFeatureSets measures accuracy with each feature family
// removed, quantifying the var/ent/ac mix of Section IV-D1.
func BenchmarkAblationFeatureSets(b *testing.B) {
	masks := []struct {
		name string
		keep [3]bool // var, ent, ac
	}{
		{"all", [3]bool{true, true, true}},
		{"variance-only", [3]bool{true, false, false}},
		{"no-autocorr", [3]bool{true, true, false}},
	}
	for _, m := range masks {
		b.Run(m.name, func(b *testing.B) {
			h := benchHarness(b)
			for i := 0; i < b.N; i++ {
				samples, _, err := h.CrossValPredictions(9, 4.5, 7)
				if err != nil {
					b.Fatal(err)
				}
				masked := maskFeatures(samples, m.keep)
				acc := crossValAccuracy(b, masked, svm.Config{C: 2, Kernel: svm.RBF{}, MaxPasses: 3, MaxIter: 120})
				b.ReportMetric(acc, "accuracy")
			}
		})
	}
}

// maskFeatures keeps only the selected per-stream feature kinds.
func maskFeatures(samples []re.Sample, keep [3]bool) []re.Sample {
	out := make([]re.Sample, len(samples))
	for i, s := range samples {
		var f []float64
		for j, v := range s.Features {
			if keep[j%re.FeaturesPerStream] {
				f = append(f, v)
			}
		}
		out[i] = re.Sample{Features: f, Label: s.Label, Day: s.Day, StartTick: s.StartTick}
	}
	return out
}

// crossValAccuracy runs a quick 5-fold CV.
func crossValAccuracy(b *testing.B, samples []re.Sample, cfg svm.Config) float64 {
	b.Helper()
	if len(samples) < 10 {
		return 0
	}
	labels := make([]int, len(samples))
	for i, s := range samples {
		labels[i] = s.Label
	}
	folds := svm.StratifiedKFold(labels, 5, 77)
	correct, total := 0, 0
	for f := range folds {
		var train, test []re.Sample
		for fi, idxs := range folds {
			for _, idx := range idxs {
				if fi == f {
					test = append(test, samples[idx])
				} else {
					train = append(train, samples[idx])
				}
			}
		}
		clf, err := re.Train(train, cfg)
		if err != nil {
			continue
		}
		for _, s := range test {
			if clf.Predict(s.Features) == s.Label {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// --- Hot-path throughput benches ---

func BenchmarkRFSampleTick(b *testing.B) {
	sensors := []geom.Point{
		{X: 6, Y: 1.5}, {X: 0.9, Y: 3}, {X: 2.4, Y: 3}, {X: 3.9, Y: 3}, {X: 5.4, Y: 3},
		{X: 0, Y: 1.5}, {X: 4.6, Y: 0}, {X: 3, Y: 0}, {X: 1.4, Y: 0},
	}
	n, err := rf.NewNetwork(rf.Config{}, sensors, 0.2, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	bodies := []rf.Body{
		{Pos: geom.Point{X: 2, Y: 2}, Speed: 0.02},
		{Pos: geom.Point{X: 4, Y: 1}, Speed: 1.4},
		{Pos: geom.Point{X: 1, Y: 1}, Speed: 0.02},
	}
	out := make([]float64, n.NumStreams())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Sample(bodies, out)
	}
}

// BenchmarkSampleBlock measures the columnar RF hot path at CSI-grade
// stream counts: one 64-tick SampleBlock per iteration with three bodies
// (two seated, one walking), at 1, 4 and 16 subcarriers per link. The
// per-link body effects are computed once per tick and shared across
// subcarriers, so ns/tick should grow far slower than the stream count.
func BenchmarkSampleBlock(b *testing.B) {
	sensors := []geom.Point{
		{X: 6, Y: 1.5}, {X: 0.9, Y: 3}, {X: 2.4, Y: 3}, {X: 3.9, Y: 3}, {X: 5.4, Y: 3},
		{X: 0, Y: 1.5}, {X: 4.6, Y: 0}, {X: 3, Y: 0}, {X: 1.4, Y: 0},
	}
	bodies := []rf.Body{
		{Pos: geom.Point{X: 2, Y: 2}, Speed: 0.02},
		{Pos: geom.Point{X: 4, Y: 1}, Speed: 1.4},
		{Pos: geom.Point{X: 1, Y: 1}, Speed: 0.02},
	}
	const ticks = 64
	for _, variant := range []struct {
		suffix  string
		version int
	}{
		{"", 1},    // pinned baseline names: ModelVersion 1, the exact path
		{"-v2", 2}, // vectorised path (vmath column kernels)
	} {
		for _, subc := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("subc-%d%s", subc, variant.suffix), func(b *testing.B) {
				n, err := rf.NewNetwork(rf.Config{Subcarriers: subc, ModelVersion: variant.version}, sensors, 0.2, rng.New(1))
				if err != nil {
					b.Fatal(err)
				}
				tickBodies := make([][]rf.Body, ticks)
				for t := range tickBodies {
					tickBodies[t] = bodies
				}
				var blk rf.Block
				n.SampleBlock(tickBodies, &blk) // warm the buffer
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n.SampleBlock(tickBodies, &blk)
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/ticks, "ns/tick")
			})
		}
	}
}

func BenchmarkMDDetectorTick(b *testing.B) {
	det, err := md.NewDetector(md.Config{}, 72, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(2)
	buf := make([]float64, 72)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range buf {
			buf[k] = -60 + src.Normal(0, 0.8)
		}
		det.Push(buf)
	}
}

func BenchmarkSVMTrain(b *testing.B) {
	src := rng.New(3)
	var x [][]float64
	var y []int
	for class := 0; class < 4; class++ {
		for i := 0; i < 30; i++ {
			row := make([]float64, 216)
			for j := range row {
				row[j] = float64(class) + src.Normal(0, 0.5)
			}
			x = append(x, row)
			y = append(y, class)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svm.TrainMulticlass(x, y, svm.Config{Kernel: svm.RBF{}, C: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	h := benchHarness(b)
	ds := h.Dataset()
	subset := ds.StreamSubset([]int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	trace := ds.Days[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re.Extract(trace.Streams, subset, 1000, trace.DT, re.FeatureConfig{})
	}
}

func BenchmarkSimulateDay(b *testing.B) {
	cfg := sim.Config{Days: 1, Seed: 9}
	cfg.Agent.DaySeconds = 600 // ten simulated minutes per iteration
	cfg.Agent.MorningJitterSec = 60
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		if _, err := sim.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fleet-engine benches: sequential vs parallel generation, fleet
// --- throughput at increasing office counts ---

// BenchmarkGenerateDataset compares sequential and parallel multi-day
// dataset generation; the parallel case fans the days out over one
// worker per CPU. On a multi-core machine the parallel variant should
// approach a Days-fold speedup (capped by core count); output is
// bit-identical either way.
func BenchmarkGenerateDataset(b *testing.B) {
	for _, c := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{fmt.Sprintf("parallel-%dcpu", runtime.NumCPU()), 0},
	} {
		b.Run(c.name, func(b *testing.B) {
			cfg := sim.Config{Days: 8, Seed: 11, Workers: c.workers}
			cfg.Agent.DaySeconds = 600
			cfg.Agent.MorningJitterSec = 60
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i) + 11
				if _, err := sim.Generate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleetThroughput measures merged-stream tick delivery at 1, 8
// and 64 offices, reporting aggregate ticks/sec across the fleet. The
// per-office System work is identical, so the metric shows how fleet
// sharding scales with office count.
func BenchmarkFleetThroughput(b *testing.B) {
	const (
		streams    = 12
		batchTicks = 128
	)
	for _, offices := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("offices-%d", offices), func(b *testing.B) {
			fleet, err := engine.NewFleet(engine.FleetConfig{
				Offices: offices,
				System:  core.Config{Streams: streams, Workstations: 3},
			})
			if err != nil {
				b.Fatal(err)
			}
			// One pre-generated quiet batch per office, reused every
			// iteration: the benchmark measures delivery, not rng.
			batch := make([][][]float64, offices)
			for o := range batch {
				src := rng.New(uint64(o) + 1)
				ticks := make([][]float64, batchTicks)
				for t := range ticks {
					row := make([]float64, streams)
					for k := range row {
						row[k] = -60 + src.Normal(0, 0.5)
					}
					ticks[t] = row
				}
				batch[o] = ticks
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fleet.RunBatch(batch, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			totalTicks := float64(b.N) * float64(offices) * batchTicks
			b.ReportMetric(totalTicks/b.Elapsed().Seconds(), "ticks/sec")
		})
	}
}

// BenchmarkIngestorThroughput measures the asynchronous stream layer on
// top of the fleet: per-office pushes through the bounded queues, one
// Flush per batch window, with and without a ring sink attached. The
// delta against BenchmarkFleetThroughput is the price of the queueing
// and pump machinery.
func BenchmarkIngestorThroughput(b *testing.B) {
	const (
		streams    = 12
		offices    = 8
		batchTicks = 128
	)
	ticks := make([][][]float64, offices)
	for o := range ticks {
		src := rng.New(uint64(o) + 1)
		rows := make([][]float64, batchTicks)
		for t := range rows {
			row := make([]float64, streams)
			for k := range row {
				row[k] = -60 + src.Normal(0, 0.5)
			}
			rows[t] = row
		}
		ticks[o] = rows
	}
	for _, c := range []struct {
		name string
		sink func() stream.Sink
	}{
		{"no-sink", func() stream.Sink { return nil }},
		{"ring-sink", func() stream.Sink { return stream.NewRingSink(4096) }},
	} {
		b.Run(c.name, func(b *testing.B) {
			fleet, err := engine.NewFleet(engine.FleetConfig{
				Offices: offices,
				System:  core.Config{Streams: streams, Workstations: 3},
			})
			if err != nil {
				b.Fatal(err)
			}
			ing, err := stream.NewIngestor(fleet, stream.Config{Queue: batchTicks, Sink: c.sink()})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for o := range ticks {
					for _, row := range ticks[o] {
						if err := ing.Push(o, row); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := ing.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := ing.Close(); err != nil {
				b.Fatal(err)
			}
			totalTicks := float64(b.N) * float64(offices) * batchTicks
			b.ReportMetric(totalTicks/b.Elapsed().Seconds(), "ticks/sec")
		})
	}
}

// BenchmarkIngestorContended drives the ingestor from many concurrent
// producers — one goroutine per office, Block backpressure — so every
// Push races the other producers and the dispatcher for the ingestor's
// synchronisation. Wall-clock here tracks how much the queue machinery
// serialises independent offices against each other; run with
// -mutexprofile to attribute the lock wait.
func BenchmarkIngestorContended(b *testing.B) {
	const (
		streams      = 4
		ticksPerProd = 128
		batchTicks   = 64
	)
	for _, producers := range []int{8, 64} {
		b.Run(fmt.Sprintf("producers-%d", producers), func(b *testing.B) {
			fleet, err := engine.NewFleet(engine.FleetConfig{
				Offices: producers,
				System:  core.Config{Streams: streams, Workstations: 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			ing, err := stream.NewIngestor(fleet, stream.Config{
				Queue:      256,
				OnFull:     stream.Block,
				BatchTicks: batchTicks,
			})
			if err != nil {
				b.Fatal(err)
			}
			rows := make([][][]float64, producers)
			for o := range rows {
				src := rng.New(uint64(o) + 1)
				rows[o] = make([][]float64, ticksPerProd)
				for t := range rows[o] {
					row := make([]float64, streams)
					for k := range row {
						row[k] = -60 + src.Normal(0, 0.5)
					}
					rows[o][t] = row
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for o := 0; o < producers; o++ {
					wg.Add(1)
					go func(o int) {
						defer wg.Done()
						for _, row := range rows[o] {
							if err := ing.Push(o, row); err != nil {
								b.Error(err)
								return
							}
						}
					}(o)
				}
				wg.Wait()
				if err := ing.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := ing.Close(); err != nil {
				b.Fatal(err)
			}
			totalTicks := float64(b.N) * float64(producers) * ticksPerProd
			b.ReportMetric(totalTicks/b.Elapsed().Seconds(), "ticks/sec")
		})
	}
}
