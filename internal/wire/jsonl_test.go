package wire

import (
	"encoding/json"
	"math"
	"testing"

	"fadewich/internal/control"
	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/rng"
)

// marshalJSONLReference is the original reflection-based v1 encoder:
// json.Marshal of wireAction, one line per action. It is the byte-level
// specification the hand-rolled AppendJSONL must match.
func marshalJSONLReference(t *testing.T, batch []engine.OfficeAction) []byte {
	t.Helper()
	var dst []byte
	for _, a := range batch {
		rec := wireAction{
			Office:      a.Office,
			Time:        a.Action.Time,
			Type:        a.Action.Type.String(),
			Workstation: a.Action.Workstation,
			Label:       a.Action.Label,
		}
		if a.Action.Cause != 0 {
			rec.Cause = a.Action.Cause.String()
		}
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		dst = append(dst, b...)
		dst = append(dst, '\n')
	}
	return dst
}

// TestAppendJSONLMatchesStdlib differentially tests the hand-rolled v1
// encoder against json.Marshal across the field edge cases: every known
// action type and cause plus out-of-range enum spellings, negative and
// large offices/workstations/labels, and times covering zero, negative
// zero, denormals, the 'e'-format regimes on both sides (abs < 1e-6,
// abs >= 1e21) with single- and double-digit exponents, and a wide
// random sweep of tick-grid and raw float64 values.
func TestAppendJSONLMatchesStdlib(t *testing.T) {
	times := []float64{
		0, math.Copysign(0, -1), 1.2, -1.4, 0.30000000000000004,
		512.5, 1e-6, 9.999999e-7, -9.999999e-7, 1e-7, 5e-324,
		-5e-324, 1e20, 1e21, -1e21, 1e22, 2.5e-15, 3.14e-100,
		1.7976931348623157e308, 4.9406564584124654e-310,
		1e-9, -2e-10, 123456789.125, -0.000125,
	}
	var batch []engine.OfficeAction
	add := func(a engine.OfficeAction) { batch = append(batch, a) }
	for i, tm := range times {
		add(engine.OfficeAction{
			Office: i - 2,
			Action: core.Action{
				Time:        tm,
				Type:        core.ActionType(i % 6), // includes unknown spellings "action(4)", "action(5)"
				Workstation: i * 7,
				Cause:       control.Cause(i % 5), // includes unknown "cause(4)"
				Label:       -i,
			},
		})
	}
	src := rng.New(99)
	for i := 0; i < 2000; i++ {
		tm := float64(src.Intn(1<<30)) * 0.2 // tick-grid times, the real payload
		if i%3 == 0 {
			tm = src.Normal(0, 1) * math.Pow(10, float64(src.Intn(60)-30))
		}
		add(engine.OfficeAction{
			Office: src.Intn(2048),
			Action: core.Action{
				Time:        tm,
				Type:        core.ActionType(src.Intn(4)),
				Workstation: src.Intn(64),
				Cause:       control.Cause(src.Intn(4)),
				Label:       src.Intn(3) - 1,
			},
		})
	}
	got := AppendJSONL(nil, batch)
	want := marshalJSONLReference(t, batch)
	if string(got) != string(want) {
		// Find the first differing line for a readable failure.
		g, w := string(got), string(want)
		line, start := 0, 0
		for i := 0; i < len(g) && i < len(w); i++ {
			if g[i] != w[i] {
				end := i + 120
				if end > len(g) {
					end = len(g)
				}
				t.Fatalf("line %d (byte %d) diverges from json.Marshal:\ngot  …%s\nwant …%s",
					line, i, g[start:end], w[start:min(end, len(w))])
			}
			if g[i] == '\n' {
				line++
				start = i + 1
			}
		}
		t.Fatalf("length mismatch: got %d bytes, want %d", len(got), len(want))
	}
}

// TestAppendJSONLNoAllocs locks the hand-rolled encoder at zero
// allocations once the destination buffer is warm — the reason it
// replaced json.Marshal on the sink hot path.
func TestAppendJSONLNoAllocs(t *testing.T) {
	batch := testBatch()
	buf := AppendJSONL(nil, batch) // size the buffer
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendJSONL(buf[:0], batch)
	})
	if allocs != 0 {
		t.Fatalf("AppendJSONL allocates %.1f times per batch, want 0", allocs)
	}
}

// benchBatch builds a realistic merged batch: 512 actions across 64
// offices on a 0.2 s tick grid.
func benchBatch() []engine.OfficeAction {
	src := rng.New(7)
	batch := make([]engine.OfficeAction, 512)
	for i := range batch {
		batch[i] = engine.OfficeAction{
			Office: i % 64,
			Action: core.Action{
				Time:        float64(src.Intn(1<<20)) * 0.2,
				Type:        core.ActionType(src.Intn(4) + 1),
				Workstation: src.Intn(8),
				Cause:       control.Cause(src.Intn(4)),
				Label:       src.Intn(2),
			},
		}
	}
	return batch
}

// BenchmarkEncodeFrame measures the full per-batch sink encode cost —
// payload plus framing and CRC — for both codecs, as driven by the
// segment and TCP sinks' wire.Encoder.
func BenchmarkEncodeFrame(b *testing.B) {
	batch := benchBatch()
	for _, v := range []Version{V1JSONL, V2Binary} {
		b.Run(v.String(), func(b *testing.B) {
			var buf []byte
			var err error
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf, err = AppendFrame(buf[:0], v, batch)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(buf)))
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(batch)), "ns/action")
		})
	}
}
