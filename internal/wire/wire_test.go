package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"fadewich/internal/control"
	"fadewich/internal/core"
	"fadewich/internal/engine"
)

// testBatch is the fixture batch shared by the golden and round-trip
// tests: it exercises every field, including a zero Cause, a set Label
// and a time whose float64 repr is not a short decimal.
func testBatch() []engine.OfficeAction {
	return []engine.OfficeAction{
		{Office: 3, Action: core.Action{Time: 1.2, Type: core.ActionAlertEnter, Workstation: 1}},
		{Office: 0, Action: core.Action{Time: 1.4, Type: core.ActionDeauthenticate, Workstation: 2, Cause: control.CauseRule1, Label: 2}},
		{Office: 61, Action: core.Action{Time: 0.30000000000000004, Type: core.ActionScreensaverOn, Workstation: 0}},
		{Office: 7, Action: core.Action{Time: 512.5, Type: core.ActionDeauthenticate, Workstation: 0, Cause: control.CauseTimeout}},
		{Office: 7, Action: core.Action{Time: 513, Type: core.ActionAlertExit, Workstation: 0, Label: 1}},
	}
}

// TestAppendJSONLByteCompat pins the v1 payload byte stream: it is the
// pre-frame sink encoding and must never drift (LogSink files and v1
// frame payloads are this, byte for byte).
func TestAppendJSONLByteCompat(t *testing.T) {
	got := AppendJSONL(nil, testBatch()[:2])
	want := `{"office":3,"time":1.2,"type":"alert-enter","workstation":1,"label":0}
{"office":0,"time":1.4,"type":"deauthenticate","workstation":2,"cause":"rule1","label":2}
`
	if string(got) != want {
		t.Fatalf("v1 payload drifted:\ngot  %q\nwant %q", got, want)
	}
}

// TestFrameGoldenV1 pins the full v1 frame byte layout (header, payload,
// CRC trailer) for a one-action batch. If this hash-of-bytes changes,
// every persisted segment file in the wild becomes unreadable — bump the
// codec version instead.
func TestFrameGoldenV1(t *testing.T) {
	batch := []engine.OfficeAction{{Office: 3, Action: core.Action{Time: 1.2, Type: core.ActionAlertEnter, Workstation: 1}}}
	frame, err := AppendFrame(nil, V1JSONL, batch)
	if err != nil {
		t.Fatal(err)
	}
	payload := AppendJSONL(nil, batch)
	wantHdr := []byte{'F', 'W', 1, 0, 0, 0, 0, byte(len(payload))}
	if !bytes.Equal(frame[:HeaderSize], wantHdr) {
		t.Fatalf("header %x, want %x", frame[:HeaderSize], wantHdr)
	}
	if !bytes.Equal(frame[HeaderSize:len(frame)-TrailerSize], payload) {
		t.Fatal("frame payload differs from AppendJSONL")
	}
	const goldenFrame = "46570100000000477b226f6666696365223a332c2274696d65223a312e322c2274797065223a22616c6572742d656e746572222c22776f726b73746174696f6e223a312c226c6162656c223a307d0abf54babd"
	if got := hex.EncodeToString(frame); got != goldenFrame {
		t.Fatalf("v1 frame bytes drifted:\ngot  %s\nwant %s", got, goldenFrame)
	}
}

func TestRoundTripBothVersions(t *testing.T) {
	for _, v := range []Version{V1JSONL, V2Binary} {
		frame, err := AppendFrame(nil, v, testBatch())
		if err != nil {
			t.Fatal(err)
		}
		d := NewDecoder(bytes.NewReader(frame))
		got, err := d.Decode()
		if err != nil {
			t.Fatalf("%v: decode: %v", v, err)
		}
		if !reflect.DeepEqual(got, testBatch()) {
			t.Fatalf("%v: round trip changed the batch:\ngot  %+v\nwant %+v", v, got, testBatch())
		}
		if d.Version() != v {
			t.Fatalf("decoder reports version %v, want %v", d.Version(), v)
		}
		if d.Offset() != int64(len(frame)) {
			t.Fatalf("offset %d, want %d", d.Offset(), len(frame))
		}
		if _, err := d.Decode(); err != io.EOF {
			t.Fatalf("%v: second decode returned %v, want io.EOF", v, err)
		}
	}
}

func TestV2PayloadIsSmaller(t *testing.T) {
	p1, _ := AppendPayload(nil, V1JSONL, testBatch())
	p2, _ := AppendPayload(nil, V2Binary, testBatch())
	if len(p2) >= len(p1) {
		t.Fatalf("v2 payload (%d bytes) is not smaller than v1 (%d bytes)", len(p2), len(p1))
	}
}

func TestEncoderDecoderStream(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, V2Binary)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]engine.OfficeAction{testBatch(), testBatch()[:1], testBatch()[2:]}
	for _, b := range batches {
		if err := enc.Encode(b); err != nil {
			t.Fatal(err)
		}
	}
	if enc.Frames() != 3 || enc.Bytes() != uint64(buf.Len()) {
		t.Fatalf("encoder counters frames=%d bytes=%d, buffer has %d bytes", enc.Frames(), enc.Bytes(), buf.Len())
	}
	d := NewDecoder(&buf)
	for i, want := range batches {
		got, err := d.Decode()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d differs", i)
		}
	}
	if _, err := d.Decode(); err != io.EOF {
		t.Fatalf("trailing decode returned %v, want io.EOF", err)
	}
}

func TestDecodeTornVsCorrupt(t *testing.T) {
	frame, err := AppendFrame(nil, V1JSONL, testBatch())
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix of a frame is torn, never corrupt.
	for _, cut := range []int{1, HeaderSize - 1, HeaderSize, HeaderSize + 3, len(frame) - 1} {
		_, err := NewDecoder(bytes.NewReader(frame[:cut])).Decode()
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("prefix of %d bytes: got %v, want ErrTorn", cut, err)
		}
	}
	// A flipped payload byte is corrupt (CRC catches it).
	bad := append([]byte(nil), frame...)
	bad[HeaderSize+2] ^= 0x40
	if _, err := NewDecoder(bytes.NewReader(bad)).Decode(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped payload byte: got %v, want ErrCorrupt", err)
	}
	// Bad magic is corrupt.
	bad = append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, err := NewDecoder(bytes.NewReader(bad)).Decode(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
	// Unknown version surfaces as ErrVersion.
	bad = append([]byte(nil), frame...)
	bad[2] = 9
	if _, err := NewDecoder(bytes.NewReader(bad)).Decode(); !errors.Is(err, ErrVersion) {
		t.Fatalf("unknown version: got %v, want ErrVersion", err)
	}
	// Reserved flags are corrupt.
	bad = append([]byte(nil), frame...)
	bad[3] = 1
	if _, err := NewDecoder(bytes.NewReader(bad)).Decode(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reserved flags: got %v, want ErrCorrupt", err)
	}
	// An absurd length field is corrupt, not an allocation.
	bad = append([]byte(nil), frame...)
	bad[4], bad[5], bad[6], bad[7] = 0xff, 0xff, 0xff, 0xff
	if _, err := NewDecoder(bytes.NewReader(bad)).Decode(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: got %v, want ErrCorrupt", err)
	}
}

// TestDecodeResumesAfterGoodFrames checks Offset points at the last
// clean frame boundary when a later frame is torn — the contract the
// segment reader's truncation relies on.
func TestDecodeResumesAfterGoodFrames(t *testing.T) {
	f1, _ := AppendFrame(nil, V1JSONL, testBatch()[:2])
	f2, _ := AppendFrame(nil, V2Binary, testBatch()[2:])
	stream := append(append([]byte(nil), f1...), f2[:len(f2)-3]...)
	d := NewDecoder(bytes.NewReader(stream))
	if _, err := d.Decode(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decode(); !errors.Is(err, ErrTorn) {
		t.Fatalf("torn second frame: got %v, want ErrTorn", err)
	}
	if d.Offset() != int64(len(f1)) {
		t.Fatalf("offset %d after torn frame, want %d (end of the last good frame)", d.Offset(), len(f1))
	}
}

// failAfterReader yields n bytes of its payload, then a non-EOF error —
// the shape of a disk EIO or a reset connection mid-frame.
type failAfterReader struct {
	data []byte
	n    int
	err  error
}

func (r *failAfterReader) Read(p []byte) (int, error) {
	if r.n >= len(r.data) {
		return 0, r.err
	}
	k := copy(p, r.data[r.n:])
	r.n += k
	if r.n >= len(r.data) {
		return k, r.err
	}
	return k, nil
}

// TestDecodeIOErrorIsNotTorn pins the error taxonomy's third class: a
// real read failure mid-frame must surface as itself, never as ErrTorn
// (a repairing segment reader would otherwise truncate intact frames
// past a transient I/O error) and never as ErrCorrupt.
func TestDecodeIOErrorIsNotTorn(t *testing.T) {
	frame, err := AppendFrame(nil, V1JSONL, testBatch())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("input/output error")
	for _, cut := range []int{0, 3, HeaderSize, len(frame) - 2} {
		_, err := NewDecoder(&failAfterReader{data: frame[:cut], err: boom}).Decode()
		if !errors.Is(err, boom) {
			t.Fatalf("cut %d: decode returned %v, want the underlying I/O error", cut, err)
		}
		if errors.Is(err, ErrTorn) || errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: I/O error misclassified as torn/corrupt: %v", cut, err)
		}
	}
}

func TestParseRoundTrips(t *testing.T) {
	for _, typ := range []core.ActionType{core.ActionAlertEnter, core.ActionAlertExit, core.ActionScreensaverOn, core.ActionDeauthenticate} {
		got, err := ParseActionType(typ.String())
		if err != nil || got != typ {
			t.Fatalf("ParseActionType(%q) = %v, %v", typ.String(), got, err)
		}
	}
	for _, c := range []control.Cause{0, control.CauseRule1, control.CauseAlert, control.CauseTimeout} {
		s := ""
		if c != 0 {
			s = c.String()
		}
		got, err := ParseCause(s)
		if err != nil || got != c {
			t.Fatalf("ParseCause(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseActionType("bogus"); err == nil {
		t.Fatal("unknown action type parsed")
	}
	if _, err := ParseCause("bogus"); err == nil {
		t.Fatal("unknown cause parsed")
	}
}

func TestJSONLTimePrecision(t *testing.T) {
	// Shortest-repr float64 JSON survives a decode→encode→decode cycle
	// bit-exactly; the replay acceptance test depends on it.
	batch := []engine.OfficeAction{{Office: 1, Action: core.Action{
		Time: math.Pi * 1e3, Type: core.ActionAlertEnter,
	}}}
	p := AppendJSONL(nil, batch)
	acts, err := decodeJSONL(p)
	if err != nil {
		t.Fatal(err)
	}
	if acts[0].Action.Time != batch[0].Action.Time {
		t.Fatalf("time %v round-tripped to %v", batch[0].Action.Time, acts[0].Action.Time)
	}
	if !bytes.Equal(AppendJSONL(nil, acts), p) {
		t.Fatal("re-encoded JSONL differs from the original payload")
	}
}

// TestRawFrameRoundTrip covers the payload-agnostic framing that the
// serve daemon's tick-ingest transport uses: AppendRawFrame must emit
// the exact frame geometry of AppendFrame, DecodeRaw must hand back
// the payload bytes untouched, and the two decode entry points must
// interoperate (a raw frame whose payload happens to be action JSONL
// decodes through Decode, and vice versa).
func TestRawFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"office":"hq-0","rssi":[1,2,3]}` + "\n"),
		{},
		{0x00, 0xff, 'F', 'W', 0x01},
	}
	var stream []byte
	for _, p := range payloads {
		var err error
		stream, err = AppendRawFrame(stream, V1JSONL, p)
		if err != nil {
			t.Fatal(err)
		}
	}
	d := NewDecoder(bytes.NewReader(stream))
	for i, want := range payloads {
		v, got, err := d.DecodeRaw()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if v != V1JSONL {
			t.Fatalf("frame %d: version %v, want %v", i, v, V1JSONL)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d payload changed:\ngot  %q\nwant %q", i, got, want)
		}
	}
	if _, _, err := d.DecodeRaw(); err != io.EOF {
		t.Fatalf("trailing DecodeRaw returned %v, want io.EOF", err)
	}
	if d.Offset() != int64(len(stream)) {
		t.Fatalf("offset %d, want %d", d.Offset(), len(stream))
	}

	// An action frame is a raw frame whose payload is the codec
	// encoding: both constructors must agree byte for byte.
	batch := testBatch()
	viaActions, err := AppendFrame(nil, V1JSONL, batch)
	if err != nil {
		t.Fatal(err)
	}
	viaRaw, err := AppendRawFrame(nil, V1JSONL, AppendJSONL(nil, batch))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaActions, viaRaw) {
		t.Fatal("AppendRawFrame over the v1 payload differs from AppendFrame")
	}
	acts, err := NewDecoder(bytes.NewReader(viaRaw)).Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(acts, batch) {
		t.Fatal("raw-built frame did not Decode back to the batch")
	}
}

// TestRawFrameErrors pins the raw path's error taxonomy: unknown
// version at encode time, and torn/corrupt classification at decode
// time (DecodeRaw skips payload interpretation, so a CRC-intact frame
// is never corrupt).
func TestRawFrameErrors(t *testing.T) {
	if _, err := AppendRawFrame(nil, Version(9), []byte("x")); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: got %v, want ErrVersion", err)
	}
	frame, err := AppendRawFrame(nil, V2Binary, []byte("opaque"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewDecoder(bytes.NewReader(frame[:len(frame)-2])).DecodeRaw(); !errors.Is(err, ErrTorn) {
		t.Fatalf("truncated frame: got %v, want ErrTorn", err)
	}
	flipped := bytes.Clone(frame)
	flipped[HeaderSize] ^= 0x40
	if _, _, err := NewDecoder(bytes.NewReader(flipped)).DecodeRaw(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: got %v, want ErrCorrupt", err)
	}
}
