package wire

import (
	"bytes"
	"compress/flate"
	"encoding/hex"
	"errors"
	"reflect"
	"testing"

	"fadewich/internal/engine"
	"fadewich/internal/rng"
)

// bigBatch repeats the fixture batch until its payload is comfortably
// past DefaultCompressMin under both codecs, so the compressed append
// functions actually deflate it.
func bigBatch() []engine.OfficeAction {
	var out []engine.OfficeAction
	for len(out) < 64 {
		out = append(out, testBatch()...)
	}
	return out
}

func TestCompressedFrameRoundTrip(t *testing.T) {
	batch := bigBatch()
	for _, v := range []Version{V1JSONL, V2Binary} {
		frame, logical, err := AppendFrameCompressed(nil, v, batch, 0)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if frame[3]&FlagCompressed == 0 {
			t.Fatalf("%v: large batch did not set FlagCompressed", v)
		}
		plain, err := AppendFrame(nil, v, batch)
		if err != nil {
			t.Fatal(err)
		}
		if logical != len(plain) {
			t.Fatalf("%v: logical size %d, uncompressed frame is %d bytes", v, logical, len(plain))
		}
		if len(frame) >= len(plain) {
			t.Fatalf("%v: compressed frame (%d bytes) not smaller than plain (%d)", v, len(frame), len(plain))
		}
		d := NewDecoder(bytes.NewReader(frame))
		got, err := d.Decode()
		if err != nil {
			t.Fatalf("%v: decode: %v", v, err)
		}
		if !reflect.DeepEqual(got, batch) {
			t.Fatalf("%v: round trip changed the batch", v)
		}
		if !d.Compressed() {
			t.Fatalf("%v: decoder does not report the frame compressed", v)
		}
		if d.Offset() != int64(len(frame)) {
			t.Fatalf("%v: offset %d, want the on-wire size %d", v, d.Offset(), len(frame))
		}
		// Determinism: the inflated payload is byte-identical to the
		// uncompressed encoding.
		raw, payload, err := NewDecoder(bytes.NewReader(frame)).DecodeRaw()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := AppendPayload(nil, v, batch)
		if raw != v || !bytes.Equal(payload, want) {
			t.Fatalf("%v: inflated payload differs from the uncompressed encoding", v)
		}
	}
}

func TestCompressedSmallBatchStaysPlain(t *testing.T) {
	batch := testBatch()[:1]
	for _, v := range []Version{V1JSONL, V2Binary} {
		frame, logical, err := AppendFrameCompressed(nil, v, batch, 0)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := AppendFrame(nil, v, batch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame, plain) {
			t.Fatalf("%v: sub-threshold batch did not fall back to the plain frame", v)
		}
		if logical != len(plain) {
			t.Fatalf("%v: logical %d, want %d", v, logical, len(plain))
		}
		d := NewDecoder(bytes.NewReader(frame))
		if _, err := d.Decode(); err != nil {
			t.Fatal(err)
		}
		if d.Compressed() {
			t.Fatalf("%v: plain fallback reported as compressed", v)
		}
	}
}

func TestCompressedIncompressibleFallsBack(t *testing.T) {
	// A pseudo-random payload will not shrink under deflate; the raw
	// append must emit a plain frame rather than grow it.
	src := rng.New(11)
	junk := make([]byte, 4*DefaultCompressMin)
	for i := range junk {
		junk[i] = byte(src.Intn(256))
	}
	frame, _, err := AppendRawFrameCompressed(nil, V1JSONL, junk, 0, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if frame[3]&FlagCompressed != 0 {
		t.Fatal("incompressible payload was flagged compressed")
	}
	plain, err := AppendRawFrame(nil, V1JSONL, junk)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, plain) {
		t.Fatal("fallback frame differs from AppendRawFrame")
	}
}

func TestCompressedTaggedCompose(t *testing.T) {
	batch := bigBatch()
	tag := Tag{Source: 7, Epoch: 1234}
	frame, logical, err := AppendTaggedFrameCompressed(nil, V2Binary, tag, batch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if frame[3] != FlagTagged|FlagCompressed {
		t.Fatalf("flags %#02x, want tagged|compressed", frame[3])
	}
	// The tag stays uncompressed at the body start.
	if frame[HeaderSize] != 7 {
		t.Fatalf("tag source byte %d not at the body start", frame[HeaderSize])
	}
	plain, err := AppendTaggedFrame(nil, V2Binary, tag, batch)
	if err != nil {
		t.Fatal(err)
	}
	if logical != len(plain) {
		t.Fatalf("logical %d, want %d", logical, len(plain))
	}
	d := NewDecoder(bytes.NewReader(frame))
	got, err := d.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatal("tagged+compressed round trip changed the batch")
	}
	gotTag, tagged := d.Tag()
	if !tagged || gotTag != tag {
		t.Fatalf("tag %+v (tagged=%v), want %+v", gotTag, tagged, tag)
	}
	if !d.Compressed() {
		t.Fatal("decoder does not report the frame compressed")
	}
}

// Golden fixtures: FlagCompressed frames whose deflate stream is a
// single stored block — a form every RFC 1951 inflater accepts and no
// toolchain's compressor output can drift away from. They pin the
// on-wire layout (flag bit 0x04, CRC over the compressed body, tag
// ahead of the deflate stream) independently of compress/flate's
// encoder. The logical payload is the two JSONL lines already pinned
// by TestAppendJSONLByteCompat.
const (
	goldenCompressedV1       = "46570104000000a601a1005eff7b226f6666696365223a332c2274696d65223a312e322c2274797065223a22616c6572742d656e746572222c22776f726b73746174696f6e223a312c226c6162656c223a307d0a7b226f6666696365223a302c2274696d65223a312e342c2274797065223a22646561757468656e746963617465222c22776f726b73746174696f6e223a322c226361757365223a2272756c6531222c226c6162656c223a327d0a3c1bc0e8"
	goldenCompressedTaggedV1 = "46570105000000ab030000002901a1005eff7b226f6666696365223a332c2274696d65223a312e322c2274797065223a22616c6572742d656e746572222c22776f726b73746174696f6e223a312c226c6162656c223a307d0a7b226f6666696365223a302c2274696d65223a312e342c2274797065223a22646561757468656e746963617465222c22776f726b73746174696f6e223a322c226361757365223a2272756c6531222c226c6162656c223a327d0a7e2efb5f"
)

func TestCompressedFrameGolden(t *testing.T) {
	want := testBatch()[:2]

	frame, err := hex.DecodeString(goldenCompressedV1)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(bytes.NewReader(frame))
	got, err := d.Decode()
	if err != nil {
		t.Fatalf("golden compressed frame: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden compressed frame decoded to %+v", got)
	}
	if !d.Compressed() {
		t.Fatal("golden frame not reported compressed")
	}
	if d.Offset() != int64(len(frame)) {
		t.Fatalf("offset %d, want %d", d.Offset(), len(frame))
	}

	frame, err = hex.DecodeString(goldenCompressedTaggedV1)
	if err != nil {
		t.Fatal(err)
	}
	d = NewDecoder(bytes.NewReader(frame))
	got, err = d.Decode()
	if err != nil {
		t.Fatalf("golden tagged+compressed frame: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden tagged+compressed frame decoded to %+v", got)
	}
	if tag, tagged := d.Tag(); !tagged || tag != (Tag{Source: 3, Epoch: 41}) {
		t.Fatalf("golden tag %+v (tagged=%v)", tag, tagged)
	}
}

// TestCompressedErrorTaxonomy pins the decode classification around
// FlagCompressed: a CRC-intact body that will not inflate is
// ErrCorrupt (never a leaked flate error), a truncated compressed
// frame is ErrTorn, FlagFinal still needs FlagTagged, and the Offset
// contract — truncation point after the last good frame — holds when
// the bad frame follows good ones.
func TestCompressedErrorTaxonomy(t *testing.T) {
	good, _, err := AppendFrameCompressed(nil, V1JSONL, bigBatch(), 0)
	if err != nil {
		t.Fatal(err)
	}

	// reseal rebuilds the length and CRC of a mutated frame so only the
	// targeted defect (not the checksum) trips the decoder.
	reseal := func(hdr byte, body []byte) []byte {
		f := []byte{'F', 'W', 1, hdr, 0, 0, 0, 0}
		f = append(f, body...)
		f, err := sealFrame(f, 0)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	cases := []struct {
		name  string
		bytes []byte
		want  error
	}{
		{"garbage deflate stream", reseal(FlagCompressed, []byte("this is not a deflate stream at all")), ErrCorrupt},
		{"empty compressed body", reseal(FlagCompressed, nil), ErrCorrupt},
		{"truncated deflate stream", reseal(FlagCompressed, good[HeaderSize:len(good)-TrailerSize-7]), ErrCorrupt},
		{"final without tagged", reseal(FlagFinal|FlagCompressed, good[HeaderSize:len(good)-TrailerSize]), ErrCorrupt},
		{"reserved bit with compressed", reseal(FlagCompressed|0x08, good[HeaderSize:len(good)-TrailerSize]), ErrCorrupt},
		{"torn compressed frame", good[:len(good)-3], ErrTorn},
		{"flipped compressed byte", func() []byte {
			b := bytes.Clone(good)
			b[HeaderSize+4] ^= 0x20
			return b
		}(), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDecoder(bytes.NewReader(tc.bytes))
			_, err := d.Decode()
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			if d.Offset() != 0 {
				t.Fatalf("offset advanced to %d on a failed decode", d.Offset())
			}
		})
	}

	// Offset contract across a mixed stream: one good frame, then a
	// compressed frame whose deflate stream is garbage — the offset must
	// stop exactly after the good frame.
	bad := reseal(FlagCompressed, []byte("garbage garbage garbage"))
	stream := append(bytes.Clone(good), bad...)
	d := NewDecoder(bytes.NewReader(stream))
	if _, err := d.Decode(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decode(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad second frame: got %v, want ErrCorrupt", err)
	}
	if d.Offset() != int64(len(good)) {
		t.Fatalf("offset %d after corrupt inflate, want %d", d.Offset(), len(good))
	}
}

// TestCompressedZipBombBounded pins the inflation bound: a tiny frame
// whose deflate stream expands past MaxPayloadBytes must be rejected
// as corrupt, not honored with the allocation.
func TestCompressedZipBombBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates MaxPayloadBytes")
	}
	huge := make([]byte, MaxPayloadBytes+1)
	comp := appendDeflate(nil, huge, flate.BestSpeed)
	f := []byte{'F', 'W', 1, FlagCompressed, 0, 0, 0, 0}
	f = append(f, comp...)
	f, err := sealFrame(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder(bytes.NewReader(f)).Decode(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zip bomb: got %v, want ErrCorrupt", err)
	}
}

func TestEncoderCompression(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, V1JSONL)
	if err != nil {
		t.Fatal(err)
	}
	enc.SetCompression(true)
	if err := enc.Encode(bigBatch()); err != nil {
		t.Fatal(err)
	}
	if enc.Bytes() >= enc.LogicalBytes() {
		t.Fatalf("compressed encoder wrote %d wire bytes for %d logical", enc.Bytes(), enc.LogicalBytes())
	}
	got, err := NewDecoder(&buf).Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, bigBatch()) {
		t.Fatal("encoder stream round trip changed the batch")
	}
}

// TestCompressedAppendNoSteadyStateAllocs pins the hot path's pooling:
// once the destination buffer is sized, compressing a batch must not
// allocate per frame (the flate writer comes from the pool).
func TestCompressedAppendNoSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops a quarter of Puts under the race detector, so the pool-hit pin cannot hold")
	}
	batch := bigBatch()
	buf, _, err := AppendFrameCompressed(nil, V2Binary, batch, 0)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		buf, _, err = AppendFrameCompressed(buf[:0], V2Binary, batch, 0)
		if err != nil {
			t.Fatal(err)
		}
	})
	// Tolerate the occasional pool miss under GC, but not per-frame
	// compressor construction (~10 allocations, ~600 KiB).
	if allocs > 2 {
		t.Fatalf("AppendFrameCompressed allocates %.1f times per frame", allocs)
	}
}

// BenchmarkEncodeCompressed measures the compressed per-batch encode
// cost for both codecs — the price of FlagCompressed on the dispatch
// hot path, to read against BenchmarkEncodeFrame's plain cost. The
// compression ratio is reported per run.
func BenchmarkEncodeCompressed(b *testing.B) {
	batch := benchBatch()
	for _, v := range []Version{V1JSONL, V2Binary} {
		b.Run(v.String(), func(b *testing.B) {
			var buf []byte
			var logical int
			var err error
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf, logical, err = AppendFrameCompressed(buf[:0], v, batch, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(logical))
			b.ReportMetric(float64(logical)/float64(len(buf)), "ratio")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(batch)), "ns/action")
		})
	}
}
