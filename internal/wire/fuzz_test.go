package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"math"
	"testing"
)

// equalActs compares action slices with NaN-safe time comparison (the
// v2 codec carries raw float64 bits, so a fuzzed frame can legally hold
// a NaN time, and NaN != NaN under ==).
func equalActs(a, b []fuzzAct) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fuzzAct is an OfficeAction flattened to comparable fields.
type fuzzAct struct {
	office, ws, label int
	typ, cause        uint64
	timeBits          uint64
}

// FuzzDecode throws arbitrary bytes at the Decoder: every outcome must
// be a clean decode, io.EOF, or one of the classified errors — never a
// panic — and every successful decode must survive a re-encode under
// the same codec version with identical actions.
func FuzzDecode(f *testing.F) {
	// Seed with golden frames: both codec versions of the fixture batch,
	// an empty batch, a torn prefix, and a corrupted byte.
	for _, v := range []Version{V1JSONL, V2Binary} {
		frame, err := AppendFrame(nil, v, testBatch())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-5])
		bad := append([]byte(nil), frame...)
		bad[HeaderSize+1] ^= 0x10
		f.Add(bad)
		empty, err := AppendFrame(nil, v, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(empty)
		f.Add(append(append([]byte(nil), frame...), empty...))
		tagged, err := AppendTaggedFrame(nil, v, Tag{Source: 3, Epoch: 41}, testBatch())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(tagged)
		final, err := AppendTaggedFrame(nil, v, Tag{Source: 3, Epoch: 42, Final: true}, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append(append([]byte(nil), tagged...), final...))
		// Compressed seeds: a FlagCompressed frame (min 1 forces deflate
		// even for the small fixture batch), a compressed+tagged one, a
		// torn prefix of each, and one with a flipped deflate byte.
		comp, _, err := AppendFrameCompressed(nil, v, bigBatch(), 1)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(comp)
		f.Add(comp[:len(comp)-6])
		badComp := append([]byte(nil), comp...)
		badComp[HeaderSize+3] ^= 0x10
		f.Add(badComp)
		compTagged, _, err := AppendTaggedFrameCompressed(nil, v, Tag{Source: 5, Epoch: 9}, bigBatch(), 1)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(compTagged)
		f.Add(append(append([]byte(nil), comp...), compTagged...))
	}
	// The toolchain-independent golden compressed frames (stored-block
	// deflate streams) seed the corpus too.
	for _, golden := range []string{goldenCompressedV1, goldenCompressedTaggedV1} {
		frame, err := hex.DecodeString(golden)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data))
		for {
			acts, err := d.Decode()
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
					t.Fatalf("unclassified decode error: %v", err)
				}
				return
			}
			frame, err := AppendFrame(nil, d.Version(), acts)
			if err != nil {
				t.Fatalf("re-encode of a decoded batch failed: %v", err)
			}
			again, err := NewDecoder(bytes.NewReader(frame)).Decode()
			if err != nil {
				t.Fatalf("re-decode of a re-encoded batch failed: %v", err)
			}
			a, b := make([]fuzzAct, len(acts)), make([]fuzzAct, len(again))
			for i, x := range acts {
				a[i] = fuzzAct{x.Office, x.Action.Workstation, x.Action.Label, uint64(x.Action.Type), uint64(x.Action.Cause), math.Float64bits(x.Action.Time)}
			}
			for i, x := range again {
				b[i] = fuzzAct{x.Office, x.Action.Workstation, x.Action.Label, uint64(x.Action.Type), uint64(x.Action.Cause), math.Float64bits(x.Action.Time)}
			}
			if !equalActs(a, b) {
				t.Fatalf("round trip changed the batch: %+v vs %+v", acts, again)
			}
		}
	})
}
