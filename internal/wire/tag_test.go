package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"reflect"
	"testing"

	"fadewich/internal/core"
	"fadewich/internal/engine"
)

// TestTaggedFrameGolden pins the tagged-frame byte layout: flags 0x01,
// the five-byte source/epoch tag at the head of the length-counted
// body, payload and CRC behind it. These bytes are quoted in
// docs/ARCHITECTURE.md's wire-format section; if they drift, both this
// test and the docs are wrong together.
func TestTaggedFrameGolden(t *testing.T) {
	batch := []engine.OfficeAction{{Office: 3, Action: core.Action{Time: 1.2, Type: core.ActionAlertEnter, Workstation: 1}}}
	frame, err := AppendTaggedFrame(nil, V1JSONL, Tag{Source: 2, Epoch: 7}, batch)
	if err != nil {
		t.Fatal(err)
	}
	payload := AppendJSONL(nil, batch)
	wantHdr := []byte{'F', 'W', 1, FlagTagged, 0, 0, 0, byte(TagSize + len(payload))}
	if !bytes.Equal(frame[:HeaderSize], wantHdr) {
		t.Fatalf("header %x, want %x", frame[:HeaderSize], wantHdr)
	}
	wantTag := []byte{2, 0, 0, 0, 7}
	if !bytes.Equal(frame[HeaderSize:HeaderSize+TagSize], wantTag) {
		t.Fatalf("tag bytes %x, want %x", frame[HeaderSize:HeaderSize+TagSize], wantTag)
	}
	if !bytes.Equal(frame[HeaderSize+TagSize:len(frame)-TrailerSize], payload) {
		t.Fatal("tagged frame payload differs from AppendJSONL")
	}
	const goldenFrame = "465701010000004c02000000077b226f6666696365223a332c2274696d65223a312e322c2274797065223a22616c6572742d656e746572222c22776f726b73746174696f6e223a312c226c6162656c223a307d0a6ceeacda"
	if got := hex.EncodeToString(frame); got != goldenFrame {
		t.Fatalf("tagged frame bytes drifted:\ngot  %s\nwant %s", got, goldenFrame)
	}
}

// TestTaggedFrameRoundTrip decodes tagged frames of both codecs and
// checks the tag surfaces on the decoder, the payload comes back
// intact, and the offset accounts for the tag bytes.
func TestTaggedFrameRoundTrip(t *testing.T) {
	for _, v := range []Version{V1JSONL, V2Binary} {
		tag := Tag{Source: 9, Epoch: 123456}
		frame, err := AppendTaggedFrame(nil, v, tag, testBatch())
		if err != nil {
			t.Fatal(err)
		}
		d := NewDecoder(bytes.NewReader(frame))
		got, err := d.Decode()
		if err != nil {
			t.Fatalf("%v: decode: %v", v, err)
		}
		if !reflect.DeepEqual(got, testBatch()) {
			t.Fatalf("%v: round trip changed the batch", v)
		}
		gotTag, tagged := d.Tag()
		if !tagged || gotTag != tag {
			t.Fatalf("%v: decoder tag = %+v (tagged=%v), want %+v", v, gotTag, tagged, tag)
		}
		if d.Offset() != int64(len(frame)) {
			t.Fatalf("%v: offset %d, want %d", v, d.Offset(), len(frame))
		}
		if _, err := d.Decode(); err != io.EOF {
			t.Fatalf("%v: second decode returned %v, want io.EOF", v, err)
		}
	}
}

// TestTaggedEmptyAndFinalFrames covers the two frame shapes the epoch
// protocol depends on: an empty tagged frame ("this epoch dispatched
// nothing") and the FlagFinal end-of-stream marker.
func TestTaggedEmptyAndFinalFrames(t *testing.T) {
	empty, err := AppendTaggedFrame(nil, V1JSONL, Tag{Source: 1, Epoch: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	final, err := AppendTaggedFrame(nil, V1JSONL, Tag{Source: 1, Epoch: 1, Final: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final[3] != FlagTagged|FlagFinal {
		t.Fatalf("final frame flags %#02x, want %#02x", final[3], FlagTagged|FlagFinal)
	}
	d := NewDecoder(bytes.NewReader(append(append([]byte(nil), empty...), final...)))
	acts, err := d.Decode()
	if err != nil || len(acts) != 0 {
		t.Fatalf("empty tagged frame: acts=%v err=%v", acts, err)
	}
	if tag, ok := d.Tag(); !ok || tag.Final {
		t.Fatalf("empty frame tag = %+v (ok=%v), want non-final", tag, ok)
	}
	if _, err := d.Decode(); err != nil {
		t.Fatalf("final frame decode: %v", err)
	}
	if tag, ok := d.Tag(); !ok || !tag.Final || tag.Epoch != 1 {
		t.Fatalf("final frame tag = %+v (ok=%v), want final epoch 1", tag, ok)
	}
}

// TestTaggedFrameErrors pins the encode- and decode-side rejection of
// malformed tags: source 0, oversized epochs, FlagFinal without
// FlagTagged, unknown flag bits, and a tagged body shorter than its
// tag.
func TestTaggedFrameErrors(t *testing.T) {
	if _, err := AppendTaggedFrame(nil, V1JSONL, Tag{Source: 0, Epoch: 1}, nil); err == nil {
		t.Fatal("source 0 accepted")
	}
	if _, err := AppendTaggedFrame(nil, V1JSONL, Tag{Source: 1, Epoch: MaxTagEpoch + 1}, nil); err == nil {
		t.Fatal("33-bit epoch accepted")
	}

	corrupt := func(name string, mut func(f []byte) []byte) {
		frame, err := AppendTaggedFrame(nil, V1JSONL, Tag{Source: 1, Epoch: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		frame = mut(frame)
		if _, err := NewDecoder(bytes.NewReader(frame)).Decode(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
	reseal := func(f []byte) []byte {
		f, err := sealFrame(f[:len(f)-TrailerSize], 0)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	corrupt("final without tagged", func(f []byte) []byte {
		f[3] = FlagFinal
		return reseal(f)
	})
	corrupt("unknown flag bit", func(f []byte) []byte {
		f[3] = FlagTagged | 0x04
		return reseal(f)
	})
	corrupt("tagged source 0", func(f []byte) []byte {
		f[HeaderSize] = 0
		return reseal(f)
	})
	corrupt("body shorter than tag", func(f []byte) []byte {
		// A tagged frame with a 2-byte body: header claims tagged but
		// cannot hold the 5-byte tag.
		g := []byte{'F', 'W', 1, FlagTagged, 0, 0, 0, 2, 0xab, 0xcd}
		return reseal(append(g, 0, 0, 0, 0))
	})
	corrupt("flipped tag byte fails CRC", func(f []byte) []byte {
		f[HeaderSize+2] ^= 0x40
		return f
	})
}
