//go:build race

package wire

// raceEnabled reports whether the race detector is on. sync.Pool
// deliberately drops a quarter of Puts under the race detector, so
// pool-dependent allocation pins cannot hold there.
const raceEnabled = true
