// Compressed frames: the FlagCompressed (0x04) half of the wire
// format. A compressed frame is an ordinary frame whose payload bytes
// were run through DEFLATE (RFC 1951, compress/flate) before sealing;
// the tag of a tagged frame stays uncompressed in front of the deflate
// stream so the router can read provenance without inflating, and the
// CRC trailer covers the on-wire (compressed) bytes. Decode inflates
// transparently — callers see exactly the payload the producer encoded,
// which is what keeps the determinism contract: compressed and
// uncompressed transport of the same batch decode to byte-identical
// payloads, even though the deflate bytes themselves may differ across
// Go toolchains.
//
// Compression is advisory at encode time: the AppendXxxCompressed
// functions fall back to a plain frame when the payload is below the
// threshold or when deflate fails to shrink it, so a stream with
// compression enabled may legally interleave both forms and a consumer
// must (and does, via the flag byte) handle each frame independently.

package wire

import (
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"fadewich/internal/engine"
)

// DefaultCompressMin is the payload size below which the compressed
// append functions do not attempt deflate (min <= 0 selects it). Small
// batches are dominated by the frame overhead and the deflate stream's
// own framing; compressing them costs CPU to save nothing.
const DefaultCompressMin = 256

// flateLevel is the deflate effort of the hot encode path. BestSpeed
// captures most of the JSONL redundancy (repeated keys, enum
// spellings) at a fraction of the default level's CPU — the right
// trade for a per-dispatch operation. Cold-path rewriters (the segment
// compactor) use CompactionLevel instead.
const flateLevel = flate.BestSpeed

// CompactionLevel is the deflate effort for offline rewriting of cold
// data, where shrink matters more than CPU.
const CompactionLevel = flate.BestCompression

// flateWriters pools one *flate.Writer per level in use; the
// compressor's internal state is ~600 KiB, far too much to allocate
// per frame.
var flateWriters [10]sync.Pool

// flateReaders pools inflaters (they satisfy flate.Resetter).
var flateReaders = sync.Pool{New: func() any { return flate.NewReader(nil) }}

// countWriter adapts a byte slice to io.Writer for the pooled flate
// writers.
type countWriter struct {
	buf []byte
}

func (c *countWriter) Write(p []byte) (int, error) {
	c.buf = append(c.buf, p...)
	return len(p), nil
}

// appendDeflate appends the deflate stream of src to dst at the given
// level and returns the extended slice.
func appendDeflate(dst, src []byte, level int) []byte {
	if level < 1 || level > 9 {
		level = flateLevel
	}
	cw := &countWriter{buf: dst}
	var fw *flate.Writer
	if v := flateWriters[level].Get(); v != nil {
		fw = v.(*flate.Writer)
		fw.Reset(cw)
	} else {
		var err error
		fw, err = flate.NewWriter(cw, level)
		if err != nil {
			panic(err) // level is range-checked above
		}
	}
	if _, err := fw.Write(src); err != nil {
		panic(err) // countWriter cannot fail
	}
	if err := fw.Close(); err != nil {
		panic(err) // countWriter cannot fail
	}
	flateWriters[level].Put(fw)
	return cw.buf
}

// inflate appends the inflated form of the deflate stream src to dst,
// rejecting streams that inflate past max bytes — the zip-bomb bound;
// the length field already caps the compressed side.
func inflate(dst, src []byte, max int) ([]byte, error) {
	fr := flateReaders.Get().(io.ReadCloser)
	defer flateReaders.Put(fr)
	if err := fr.(flate.Resetter).Reset(newByteReader(src), nil); err != nil {
		return dst, err
	}
	base := len(dst)
	for {
		if len(dst)-base > max {
			return dst, fmt.Errorf("inflated payload exceeds the %d-byte limit", max)
		}
		if cap(dst) == len(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := fr.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			return dst, err
		}
	}
	if len(dst)-base > max {
		return dst, fmt.Errorf("inflated payload exceeds the %d-byte limit", max)
	}
	return dst, nil
}

// byteReader is a minimal io.Reader over a slice. flate.Resetter wants
// an io.Reader; bytes.Reader would also do, but allocating one per
// frame is exactly what the pool avoids.
type byteReader struct {
	s []byte
}

func newByteReader(s []byte) *byteReader { return &byteReader{s: s} }

func (b *byteReader) Read(p []byte) (int, error) {
	if len(b.s) == 0 {
		return 0, io.EOF
	}
	n := copy(p, b.s)
	b.s = b.s[n:]
	return n, nil
}

// maybeCompress deflates dst[payloadStart:] in place when it is at
// least min bytes and deflate actually shrinks it, reporting whether it
// did. min <= 0 selects DefaultCompressMin.
func maybeCompress(dst []byte, payloadStart, min, level int) ([]byte, bool) {
	if min <= 0 {
		min = DefaultCompressMin
	}
	payload := dst[payloadStart:]
	if len(payload) < min {
		return dst, false
	}
	// Deflate into the tail of dst past the payload, then slide the
	// result down over it — one buffer, no pooled scratch to manage.
	comp := appendDeflate(dst, payload, level)
	if len(comp)-len(dst) >= len(payload) {
		return dst, false
	}
	n := copy(dst[payloadStart:cap(dst)], comp[len(dst):])
	return dst[:payloadStart+n], true
}

// AppendFrameCompressed appends one complete frame like AppendFrame,
// deflating the payload when it is at least min bytes (min <= 0
// selects DefaultCompressMin) and deflate actually shrinks it — the
// frame is plain otherwise. It additionally returns the size the frame
// occupies uncompressed, whether or not compression happened: the
// "logical" byte count behind the sinks' bytes-vs-wire-bytes split.
func AppendFrameCompressed(dst []byte, v Version, batch []engine.OfficeAction, min int) ([]byte, int, error) {
	start := len(dst)
	dst = append(dst, Magic[0], Magic[1], byte(v), 0, 0, 0, 0, 0)
	bodyStart := len(dst)
	dst, err := AppendPayload(dst, v, batch)
	if err != nil {
		return dst[:start], 0, err
	}
	logical := Overhead + len(dst) - bodyStart
	dst, compressed := maybeCompress(dst, bodyStart, min, flateLevel)
	if compressed {
		dst[start+3] |= FlagCompressed
	}
	dst, err = sealFrame(dst, start)
	return dst, logical, err
}

// AppendTaggedFrameCompressed appends one complete FlagTagged frame
// like AppendTaggedFrame, deflating the payload under the same rules
// as AppendFrameCompressed. The tag bytes stay uncompressed in front
// of the deflate stream, so tagged-frame consumers read provenance
// without inflating. Also returns the uncompressed frame size.
func AppendTaggedFrameCompressed(dst []byte, v Version, tag Tag, batch []engine.OfficeAction, min int) ([]byte, int, error) {
	if tag.Source == 0 {
		return dst, 0, errors.New("wire: tagged frame: source 0 is reserved for untagged streams")
	}
	if tag.Epoch > MaxTagEpoch {
		return dst, 0, fmt.Errorf("wire: tagged frame: epoch %d exceeds the 32-bit wire field", tag.Epoch)
	}
	flags := byte(FlagTagged)
	if tag.Final {
		flags |= FlagFinal
	}
	start := len(dst)
	dst = append(dst, Magic[0], Magic[1], byte(v), flags, 0, 0, 0, 0)
	dst = append(dst, tag.Source)
	dst = binary.BigEndian.AppendUint32(dst, uint32(tag.Epoch))
	bodyStart := len(dst)
	dst, err := AppendPayload(dst, v, batch)
	if err != nil {
		return dst[:start], 0, err
	}
	logical := Overhead + TagSize + len(dst) - bodyStart
	dst, compressed := maybeCompress(dst, bodyStart, min, flateLevel)
	if compressed {
		dst[start+3] |= FlagCompressed
	}
	dst, err = sealFrame(dst, start)
	return dst, logical, err
}

// AppendRawFrameCompressed appends one complete frame carrying an
// opaque payload like AppendRawFrame, deflating it under the same
// rules as AppendFrameCompressed, at the given deflate level (level
// outside [1,9] selects the hot-path default). Also returns the
// uncompressed frame size. This is the segment compactor's rewrite
// primitive: DecodeRaw of the old frame feeds AppendRawFrameCompressed
// of the new one, preserving payload bytes exactly.
func AppendRawFrameCompressed(dst []byte, v Version, payload []byte, min, level int) ([]byte, int, error) {
	if !v.valid() {
		return dst, 0, fmt.Errorf("%w %d", ErrVersion, uint8(v))
	}
	start := len(dst)
	dst = append(dst, Magic[0], Magic[1], byte(v), 0, 0, 0, 0, 0)
	bodyStart := len(dst)
	dst = append(dst, payload...)
	logical := Overhead + len(payload)
	dst, compressed := maybeCompress(dst, bodyStart, min, level)
	if compressed {
		dst[start+3] |= FlagCompressed
	}
	dst, err := sealFrame(dst, start)
	return dst, logical, err
}
