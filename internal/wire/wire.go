// Package wire is the versioned wire layer of the action path: one
// place that knows how a batch of engine.OfficeAction turns into bytes
// and back. Every producer (the stream sinks, the segment log) and
// every consumer (fadewich-tail, the segment reader, tests) speaks this
// format; nothing else in the repository hand-rolls framing.
//
// A frame is one dispatched batch:
//
//	offset  size  field
//	0       2     magic "FW" (0x46 0x57)
//	2       1     codec version (1 = JSONL payload, 2 = compact binary)
//	3       1     flags (0, or FlagTagged optionally ored with FlagFinal)
//	4       4     body length, big-endian
//	8       n     body: [5-byte tag if FlagTagged] + payload
//	8+n     4     CRC32C (Castagnoli) over bytes [0, 8+n), big-endian
//
// Codec v1 carries the payload as JSONL — one JSON object per action,
// one action per line, byte-for-byte the encoding the sinks emitted
// before the frame layer existed — so a consumer that understands the
// historical payload still decodes v1 frames. Codec v2 carries a
// compact binary payload (varint fields, raw float64 time bits) at
// roughly a third of the JSONL size. Both decode to the same actions.
//
// The flags byte was reserved-zero until the multi-node fleet needed
// provenance on worker streams. FlagTagged (0x01) prefixes the body
// with a five-byte tag — a one-byte source ID naming the producing
// worker and a four-byte big-endian epoch naming the dispatch cycle —
// which the stream router uses to re-merge per-worker streams into the
// global order (see internal/cluster). FlagFinal (0x02, only valid
// together with FlagTagged) marks a clean end-of-stream frame: the
// tagged source promises no further epochs. FlagCompressed (0x04)
// marks a payload carried as a DEFLATE stream, inflated transparently
// on decode (see compress.go). The tag is covered by the CRC and
// counted by the length field; untagged frames are bit-for-bit what
// they always were, and any other flag bit is ErrCorrupt.
//
// The CRC trailer is what makes frames safe to persist: a reader can
// tell a frame that was cut short by a crash (ErrTorn — the file just
// ends mid-frame) from one whose bytes rotted (ErrCorrupt — bad magic,
// flags, length or checksum), and the segment log uses exactly that
// distinction to truncate a torn tail after a crash while refusing to
// silently skip real corruption.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strconv"

	"fadewich/internal/control"
	"fadewich/internal/core"
	"fadewich/internal/engine"
)

// Version selects the payload codec of a frame.
type Version uint8

const (
	// V1JSONL encodes the payload as JSONL, one action per line — the
	// historical sink encoding, kept as codec v1 so pre-frame consumers
	// still understand the payload bytes.
	V1JSONL Version = 1
	// V2Binary encodes the payload compactly: varint count, then per
	// action varint office/type/workstation/cause/label around the raw
	// little-endian float64 time bits.
	V2Binary Version = 2
)

// String returns the CLI spelling of the version (v1, v2).
func (v Version) String() string { return fmt.Sprintf("v%d", uint8(v)) }

// valid reports whether v names a known codec.
func (v Version) valid() bool { return v == V1JSONL || v == V2Binary }

// Frame geometry.
const (
	// HeaderSize is the fixed frame prefix: magic, version, flags,
	// payload length.
	HeaderSize = 8
	// TrailerSize is the CRC32C trailer.
	TrailerSize = 4
	// Overhead is the per-frame cost on top of the payload.
	Overhead = HeaderSize + TrailerSize
	// MaxPayloadBytes bounds a frame's payload (64 MiB). Decode rejects
	// larger length fields as corrupt instead of trusting them with an
	// allocation.
	MaxPayloadBytes = 64 << 20
)

// Magic is the two-byte frame prefix.
var Magic = [2]byte{'F', 'W'}

// Frame flags. The flags byte is either zero (an untagged frame) or
// FlagTagged, optionally ored with FlagFinal; every other bit pattern
// is rejected as corrupt.
const (
	// FlagTagged marks a frame whose body starts with a TagSize-byte
	// source/epoch tag before the payload.
	FlagTagged = 0x01
	// FlagFinal marks a tagged source's clean end-of-stream frame: no
	// further epochs will follow from this source. Valid only together
	// with FlagTagged.
	FlagFinal = 0x02
	// FlagCompressed marks a frame whose payload bytes are a DEFLATE
	// stream of the logical payload. The tag of a tagged frame stays
	// uncompressed in front of the stream, and the CRC covers the
	// compressed (on-wire) bytes. Composes with FlagTagged and
	// FlagFinal; see compress.go.
	FlagCompressed = 0x04
)

// TagSize is the tagged-frame body prefix: one source byte and a
// four-byte big-endian epoch.
const TagSize = 5

// MaxTagEpoch is the largest epoch a tag can carry (the wire field is
// four bytes).
const MaxTagEpoch = 1<<32 - 1

// Tag is the provenance a FlagTagged frame carries: which worker
// produced the batch (Source, a cluster-assigned non-zero ID) and
// which dispatch cycle it belongs to (Epoch, strictly increasing per
// source). Final marks the source's last frame.
type Tag struct {
	Source uint8
	Epoch  uint64
	Final  bool
}

// Errors. Decode wraps them, so test with errors.Is.
var (
	// ErrTorn marks a frame cut short by the end of the stream — the
	// signature of a crash mid-write. Everything decoded before it is
	// intact.
	ErrTorn = errors.New("wire: torn frame")
	// ErrCorrupt marks bytes that cannot be a frame: bad magic, reserved
	// flags set, an oversized length, a checksum mismatch, or an
	// undecodable payload.
	ErrCorrupt = errors.New("wire: corrupt frame")
	// ErrVersion marks a frame whose codec version this build does not
	// know.
	ErrVersion = errors.New("wire: unknown codec version")
)

// castagnoli is the CRC32C table shared by encode and decode.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// wireAction is the JSON shape of one action on a codec-v1 payload. The
// field set, order and tags are frozen: they define the v1 byte stream.
// Decode unmarshals through it, and the differential test marshals it
// as the reference AppendJSONL's hand-rolled encoding must match byte
// for byte.
type wireAction struct {
	Office      int     `json:"office"`
	Time        float64 `json:"time"`
	Type        string  `json:"type"`
	Workstation int     `json:"workstation"`
	Cause       string  `json:"cause,omitempty"`
	Label       int     `json:"label"`
}

// AppendJSONL appends the codec-v1 payload encoding of a batch to dst
// and returns the extended slice: one JSON object per action, one
// action per line, in batch order. This is the LogSink file format and
// the v1 frame payload, unchanged from the pre-frame wire encoding.
//
// The encoding is hand-rolled but byte-identical to json.Marshal of
// wireAction (TestAppendJSONLMatchesStdlib pins the equivalence): the
// reflection-based marshaller allocated per action, which dominated the
// sink hot path's allocation profile at fleet scale.
func AppendJSONL(dst []byte, batch []engine.OfficeAction) []byte {
	for i := range batch {
		a := &batch[i]
		dst = append(dst, `{"office":`...)
		dst = strconv.AppendInt(dst, int64(a.Office), 10)
		dst = append(dst, `,"time":`...)
		dst = appendJSONFloat(dst, a.Action.Time)
		dst = append(dst, `,"type":`...)
		dst = appendJSONString(dst, a.Action.Type.String())
		dst = append(dst, `,"workstation":`...)
		dst = strconv.AppendInt(dst, int64(a.Action.Workstation), 10)
		if a.Action.Cause != 0 {
			dst = append(dst, `,"cause":`...)
			dst = appendJSONString(dst, a.Action.Cause.String())
		}
		dst = append(dst, `,"label":`...)
		dst = strconv.AppendInt(dst, int64(a.Action.Label), 10)
		dst = append(dst, '}', '\n')
	}
	return dst
}

// appendJSONFloat appends a float64 exactly as encoding/json does:
// shortest round-trip form, 'f' format except for very small or very
// large magnitudes, with the stdlib's two-digit-exponent cleanup
// (e-09 → e-9). Non-finite values panic, matching the Marshal error the
// old path turned into a panic.
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		panic(fmt.Errorf("wire: unsupported non-finite time value %v", f))
	}
	format := byte('f')
	if abs := math.Abs(f); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendJSONString appends s as a JSON string. The enum spellings this
// encoder emits ("alert-enter", "timeout", "action(7)", …) are plain
// printable ASCII with nothing to escape, so the fast path is a quoted
// verbatim copy; anything else defers to json.Marshal for the stdlib's
// exact escaping (including its HTML-safe < form).
func appendJSONString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			b, err := json.Marshal(s)
			if err != nil {
				panic(err) // a string cannot fail to marshal
			}
			return append(dst, b...)
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"')
}

// appendBinary appends the codec-v2 payload encoding of a batch to dst.
func appendBinary(dst []byte, batch []engine.OfficeAction) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(batch)))
	for _, a := range batch {
		dst = binary.AppendUvarint(dst, uint64(a.Office))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.Action.Time))
		dst = binary.AppendUvarint(dst, uint64(a.Action.Type))
		dst = binary.AppendUvarint(dst, uint64(a.Action.Workstation))
		dst = binary.AppendUvarint(dst, uint64(a.Action.Cause))
		dst = binary.AppendVarint(dst, int64(a.Action.Label))
	}
	return dst
}

// AppendPayload appends the payload encoding of a batch under the given
// codec version to dst.
func AppendPayload(dst []byte, v Version, batch []engine.OfficeAction) ([]byte, error) {
	switch v {
	case V1JSONL:
		return AppendJSONL(dst, batch), nil
	case V2Binary:
		return appendBinary(dst, batch), nil
	default:
		return dst, fmt.Errorf("%w %d", ErrVersion, uint8(v))
	}
}

// AppendFrame appends one complete frame (header, payload, CRC trailer)
// encoding the batch under the given codec version to dst.
func AppendFrame(dst []byte, v Version, batch []engine.OfficeAction) ([]byte, error) {
	start := len(dst)
	dst = append(dst, Magic[0], Magic[1], byte(v), 0, 0, 0, 0, 0)
	dst, err := AppendPayload(dst, v, batch)
	if err != nil {
		return dst[:start], err
	}
	return sealFrame(dst, start)
}

// AppendTaggedFrame appends one complete FlagTagged frame: the batch
// encoded under the given codec version, with the frame body prefixed
// by the tag's source and epoch (and FlagFinal set when tag.Final).
// The batch may be empty — an empty tagged frame is how a worker
// reports "this epoch dispatched nothing", which the router needs to
// advance its merge watermark.
func AppendTaggedFrame(dst []byte, v Version, tag Tag, batch []engine.OfficeAction) ([]byte, error) {
	if tag.Source == 0 {
		return dst, errors.New("wire: tagged frame: source 0 is reserved for untagged streams")
	}
	if tag.Epoch > MaxTagEpoch {
		return dst, fmt.Errorf("wire: tagged frame: epoch %d exceeds the 32-bit wire field", tag.Epoch)
	}
	flags := byte(FlagTagged)
	if tag.Final {
		flags |= FlagFinal
	}
	start := len(dst)
	dst = append(dst, Magic[0], Magic[1], byte(v), flags, 0, 0, 0, 0)
	dst = append(dst, tag.Source)
	dst = binary.BigEndian.AppendUint32(dst, uint32(tag.Epoch))
	dst, err := AppendPayload(dst, v, batch)
	if err != nil {
		return dst[:start], err
	}
	return sealFrame(dst, start)
}

// AppendRawFrame appends one complete frame carrying an opaque payload
// under the given version byte. The framing (magic, version, flags,
// length, CRC32C trailer) is identical to AppendFrame's, but the
// payload bytes are the caller's: this is how transports reuse the
// torn/corrupt taxonomy for content that is not an action batch — the
// serve daemon's tick-ingest POST bodies carry tick JSONL this way.
// The version byte still has to name a known codec; it describes the
// payload's text-vs-binary convention to whoever decodes it.
func AppendRawFrame(dst []byte, v Version, payload []byte) ([]byte, error) {
	if !v.valid() {
		return dst, fmt.Errorf("%w %d", ErrVersion, uint8(v))
	}
	start := len(dst)
	dst = append(dst, Magic[0], Magic[1], byte(v), 0, 0, 0, 0, 0)
	dst = append(dst, payload...)
	return sealFrame(dst, start)
}

// sealFrame back-fills the payload length of the frame that begins at
// start and appends the CRC trailer.
func sealFrame(dst []byte, start int) ([]byte, error) {
	n := len(dst) - start - HeaderSize
	if n > MaxPayloadBytes {
		return dst[:start], fmt.Errorf("wire: payload %d bytes exceeds the %d-byte frame limit", n, MaxPayloadBytes)
	}
	binary.BigEndian.PutUint32(dst[start+4:start+HeaderSize], uint32(n))
	crc := crc32.Checksum(dst[start:], castagnoli)
	return binary.BigEndian.AppendUint32(dst, crc), nil
}

// ParseActionType maps the wire spelling back to a core.ActionType.
func ParseActionType(s string) (core.ActionType, error) {
	switch s {
	case "alert-enter":
		return core.ActionAlertEnter, nil
	case "alert-exit":
		return core.ActionAlertExit, nil
	case "screensaver-on":
		return core.ActionScreensaverOn, nil
	case "deauthenticate":
		return core.ActionDeauthenticate, nil
	default:
		return 0, fmt.Errorf("wire: unknown action type %q", s)
	}
}

// ParseCause maps the wire spelling back to a control.Cause ("" is the
// zero Cause of non-deauthentication actions).
func ParseCause(s string) (control.Cause, error) {
	switch s {
	case "":
		return 0, nil
	case "rule1":
		return control.CauseRule1, nil
	case "alert-expiry":
		return control.CauseAlert, nil
	case "timeout":
		return control.CauseTimeout, nil
	default:
		return 0, fmt.Errorf("wire: unknown deauthentication cause %q", s)
	}
}

// decodeJSONL decodes a codec-v1 payload back into actions.
func decodeJSONL(payload []byte) ([]engine.OfficeAction, error) {
	if len(payload) > 0 && payload[len(payload)-1] != '\n' {
		return nil, errors.New("wire: JSONL payload does not end in a newline")
	}
	var out []engine.OfficeAction
	for len(payload) > 0 {
		nl := bytes.IndexByte(payload, '\n')
		line := payload[:nl]
		payload = payload[nl+1:]
		var rec wireAction
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("wire: JSONL line %d: %w", len(out), err)
		}
		typ, err := ParseActionType(rec.Type)
		if err != nil {
			return nil, err
		}
		cause, err := ParseCause(rec.Cause)
		if err != nil {
			return nil, err
		}
		out = append(out, engine.OfficeAction{
			Office: rec.Office,
			Action: core.Action{
				Time:        rec.Time,
				Type:        typ,
				Workstation: rec.Workstation,
				Cause:       cause,
				Label:       rec.Label,
			},
		})
	}
	return out, nil
}

// decodeBinary decodes a codec-v2 payload back into actions.
func decodeBinary(payload []byte) ([]engine.OfficeAction, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, errors.New("wire: binary payload: bad action count")
	}
	payload = payload[n:]
	// Each action occupies at least 13 bytes (five 1-byte varints around
	// the 8 time bytes); a larger count cannot be honest.
	if count > uint64(len(payload)/13+1) {
		return nil, fmt.Errorf("wire: binary payload: count %d exceeds payload size", count)
	}
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(payload)
		if n <= 0 {
			return 0, errors.New("wire: binary payload: truncated varint")
		}
		payload = payload[n:]
		return v, nil
	}
	out := make([]engine.OfficeAction, 0, count)
	for i := uint64(0); i < count; i++ {
		office, err := uv()
		if err != nil {
			return nil, err
		}
		if len(payload) < 8 {
			return nil, errors.New("wire: binary payload: truncated time field")
		}
		timeBits := binary.LittleEndian.Uint64(payload)
		payload = payload[8:]
		typ, err := uv()
		if err != nil {
			return nil, err
		}
		ws, err := uv()
		if err != nil {
			return nil, err
		}
		cause, err := uv()
		if err != nil {
			return nil, err
		}
		label, n := binary.Varint(payload)
		if n <= 0 {
			return nil, errors.New("wire: binary payload: truncated label")
		}
		payload = payload[n:]
		out = append(out, engine.OfficeAction{
			Office: int(office),
			Action: core.Action{
				Time:        math.Float64frombits(timeBits),
				Type:        core.ActionType(typ),
				Workstation: int(ws),
				Cause:       control.Cause(cause),
				Label:       int(label),
			},
		})
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("wire: binary payload: %d trailing bytes", len(payload))
	}
	return out, nil
}

// DecodePayload decodes a frame payload under the given codec version.
func DecodePayload(v Version, payload []byte) ([]engine.OfficeAction, error) {
	switch v {
	case V1JSONL:
		return decodeJSONL(payload)
	case V2Binary:
		return decodeBinary(payload)
	default:
		return nil, fmt.Errorf("%w %d", ErrVersion, uint8(v))
	}
}

// Encoder writes frames to an io.Writer, one per batch, reusing one
// internal buffer. Not safe for concurrent use.
type Encoder struct {
	w        io.Writer
	version  Version
	buf      []byte
	frames   uint64
	bytes    uint64
	logical  uint64
	compress bool
}

// NewEncoder returns an Encoder emitting frames under the given codec
// version.
func NewEncoder(w io.Writer, v Version) (*Encoder, error) {
	if !v.valid() {
		return nil, fmt.Errorf("%w %d", ErrVersion, uint8(v))
	}
	return &Encoder{w: w, version: v}, nil
}

// SetCompression switches the encoder to compressed frames: payloads
// at least DefaultCompressMin bytes that deflate smaller are carried
// FlagCompressed. Call before or between Encodes, not concurrently.
func (e *Encoder) SetCompression(on bool) { e.compress = on }

// Encode writes one batch as one frame.
func (e *Encoder) Encode(batch []engine.OfficeAction) error {
	var err error
	logical := 0
	if e.compress {
		e.buf, logical, err = AppendFrameCompressed(e.buf[:0], e.version, batch, 0)
	} else {
		e.buf, err = AppendFrame(e.buf[:0], e.version, batch)
		logical = len(e.buf)
	}
	if err != nil {
		return err
	}
	if _, err := e.w.Write(e.buf); err != nil {
		return err
	}
	e.frames++
	e.bytes += uint64(len(e.buf))
	e.logical += uint64(logical)
	return nil
}

// Frames returns the number of frames encoded.
func (e *Encoder) Frames() uint64 { return e.frames }

// Bytes returns the total framed bytes written — the on-wire count,
// after any compression.
func (e *Encoder) Bytes() uint64 { return e.bytes }

// LogicalBytes returns the total bytes the frames would have occupied
// uncompressed. Equal to Bytes without compression.
func (e *Encoder) LogicalBytes() uint64 { return e.logical }

// Decoder reads frames from an io.Reader. Not safe for concurrent use.
type Decoder struct {
	r          *bufio.Reader
	off        int64
	ver        Version
	tag        Tag
	tagged     bool
	compressed bool
	buf        []byte
	zbuf       []byte // inflation buffer for FlagCompressed payloads
}

// NewDecoder returns a Decoder over r. It buffers its reads; do not mix
// with other readers of the same stream.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReaderSize(r, 64<<10)}
}

// Decode reads the next frame and returns its actions. At a clean frame
// boundary with no more data it returns io.EOF; a stream ending
// mid-frame returns an error wrapping ErrTorn; undecodable bytes return
// an error wrapping ErrCorrupt (or ErrVersion for an unknown codec);
// an underlying read failure that is not end-of-data is returned as
// itself — it is an I/O problem, not a statement about the frame.
// Offset, Version and Tag describe the last successful decode.
func (d *Decoder) Decode() ([]engine.OfficeAction, error) {
	fr, err := d.readFrame()
	if err != nil {
		return nil, err
	}
	acts, err := DecodePayload(fr.ver, fr.payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	d.off += int64(HeaderSize + fr.bodyLen + TrailerSize)
	d.ver = fr.ver
	d.tag, d.tagged = fr.tag, fr.tagged
	d.compressed = fr.compressed
	return acts, nil
}

// DecodeRaw reads the next frame and returns its version byte and
// payload without interpreting the payload — the counterpart of
// AppendRawFrame. The error taxonomy is Decode's (io.EOF / ErrTorn /
// ErrCorrupt / ErrVersion), minus the payload-decode ErrCorrupt case:
// any CRC-intact payload is returned as-is — though a FlagCompressed
// payload that fails to inflate is still ErrCorrupt, since the logical
// payload cannot be recovered. The returned slice aliases the
// decoder's internal buffers and is valid only until the next Decode
// or DecodeRaw call. A tagged frame's tag bytes are stripped from the
// returned payload and surfaced via Tag; a compressed frame's payload
// is returned inflated, with Compressed reporting the on-wire form.
func (d *Decoder) DecodeRaw() (Version, []byte, error) {
	fr, err := d.readFrame()
	if err != nil {
		return 0, nil, err
	}
	d.off += int64(HeaderSize + fr.bodyLen + TrailerSize)
	d.ver = fr.ver
	d.tag, d.tagged = fr.tag, fr.tagged
	d.compressed = fr.compressed
	return fr.ver, fr.payload, nil
}

// frame is one decoded frame as readFrame hands it to Decode/DecodeRaw:
// the codec version, the tag (when tagged), the payload (tag bytes
// stripped, inflated when compressed, aliasing the decoder's buffers)
// and the on-wire body length for offset accounting.
type frame struct {
	ver        Version
	tag        Tag
	tagged     bool
	compressed bool
	payload    []byte
	bodyLen    int
}

// readFrame reads one frame and verifies everything up to and
// including the CRC trailer (and, for FlagCompressed, a successful
// inflation). It does not advance the decoder's offset — the caller
// does, at its own notion of "successfully decoded", so that a frame
// whose payload fails action decoding still marks the previous frame
// boundary as the torn-tail truncation point.
func (d *Decoder) readFrame() (frame, error) {
	// Only running out of bytes is "torn" — a real I/O failure (disk
	// error, reset connection) must surface as itself, or a repairing
	// segment reader would truncate intact frames past a transient EIO.
	readErr := func(stage string, err error) error {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: %s: %v", ErrTorn, stage, err)
		}
		return fmt.Errorf("wire: %s read: %w", stage, err)
	}
	var fr frame
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(d.r, hdr[:1]); err != nil {
		if err == io.EOF {
			return fr, io.EOF
		}
		return fr, readErr("header", err)
	}
	if _, err := io.ReadFull(d.r, hdr[1:]); err != nil {
		return fr, readErr("header", err)
	}
	if hdr[0] != Magic[0] || hdr[1] != Magic[1] {
		return fr, fmt.Errorf("%w: bad magic %#02x%02x", ErrCorrupt, hdr[0], hdr[1])
	}
	v := Version(hdr[2])
	if !v.valid() {
		return fr, fmt.Errorf("%w %d", ErrVersion, hdr[2])
	}
	flags := hdr[3]
	tagged := flags&FlagTagged != 0
	if flags&^byte(FlagTagged|FlagFinal|FlagCompressed) != 0 || (flags&FlagFinal != 0 && !tagged) {
		return fr, fmt.Errorf("%w: reserved flags %#02x set", ErrCorrupt, flags)
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > MaxPayloadBytes {
		return fr, fmt.Errorf("%w: payload length %d exceeds the %d-byte limit", ErrCorrupt, n, MaxPayloadBytes)
	}
	if tagged && n < TagSize {
		return fr, fmt.Errorf("%w: tagged frame body %d bytes is shorter than its %d-byte tag", ErrCorrupt, n, TagSize)
	}
	if cap(d.buf) < int(n)+TrailerSize {
		d.buf = make([]byte, int(n)+TrailerSize)
	}
	body := d.buf[:int(n)+TrailerSize]
	if _, err := io.ReadFull(d.r, body); err != nil {
		return fr, readErr("payload", err)
	}
	crc := crc32.Checksum(hdr[:], castagnoli)
	crc = crc32.Update(crc, castagnoli, body[:n])
	if want := binary.BigEndian.Uint32(body[n:]); crc != want {
		return fr, fmt.Errorf("%w: CRC32C %#08x, frame says %#08x", ErrCorrupt, crc, want)
	}
	payload := body[:n]
	if tagged {
		if payload[0] == 0 {
			return fr, fmt.Errorf("%w: tagged frame carries reserved source 0", ErrCorrupt)
		}
		fr.tag = Tag{
			Source: payload[0],
			Epoch:  uint64(binary.BigEndian.Uint32(payload[1:TagSize])),
			Final:  flags&FlagFinal != 0,
		}
		payload = payload[TagSize:]
	}
	if flags&FlagCompressed != 0 {
		// A CRC-intact frame whose deflate stream will not inflate is
		// still corrupt: the logical payload is unrecoverable, and the
		// taxonomy must not leak raw flate errors to callers.
		var err error
		d.zbuf, err = inflate(d.zbuf[:0], payload, MaxPayloadBytes)
		if err != nil {
			return fr, fmt.Errorf("%w: inflate: %v", ErrCorrupt, err)
		}
		payload = d.zbuf
		fr.compressed = true
	}
	fr.ver = v
	fr.tagged = tagged
	fr.payload = payload
	fr.bodyLen = int(n)
	return fr, nil
}

// Offset returns the byte offset just past the last successfully
// decoded frame — the truncation point for torn-tail recovery.
func (d *Decoder) Offset() int64 { return d.off }

// Version returns the codec version of the last successfully decoded
// frame (0 before the first).
func (d *Decoder) Version() Version { return d.ver }

// Tag returns the source/epoch tag of the last successfully decoded
// frame, and whether that frame was tagged at all — untagged frames
// (the single-process wire format) report false.
func (d *Decoder) Tag() (Tag, bool) { return d.tag, d.tagged }

// Compressed reports whether the last successfully decoded frame was
// carried FlagCompressed on the wire. The payload handed back was
// inflated either way — this is observability, not a decoding duty
// left with the caller.
func (d *Decoder) Compressed() bool { return d.compressed }
