// Package block provides the columnar sample buffer shared by every
// layer of the block-based hot path. It is a leaf package with no
// domain content, so the deployed detection layers (core, engine) can
// consume blocks without importing the simulator's propagation model —
// rf aliases the type as rf.Block for its SampleBlock API.
package block

// Block is a columnar buffer of samples: Ticks rows of Streams float64
// values in one contiguous tick-major allocation. It is the payload of
// the block-based hot path — rf.Network.SampleBlock fills one,
// core.System ingests it row by row without per-tick slice allocation,
// and engine.OfficeBatch carries one through the fleet.
//
// The zero value is an empty block ready for Reset.
type Block struct {
	ticks, streams int
	data           []float64
}

// Reset shapes the block to ticks×streams, reusing the backing array
// when it is large enough and allocating once otherwise. The contents
// after Reset are unspecified; callers overwrite every row.
func (b *Block) Reset(ticks, streams int) {
	n := ticks * streams
	if cap(b.data) < n {
		b.data = make([]float64, n)
	}
	b.data = b.data[:n]
	b.ticks, b.streams = ticks, streams
}

// Ticks returns the number of rows.
func (b *Block) Ticks() int { return b.ticks }

// Streams returns the number of values per row.
func (b *Block) Streams() int { return b.streams }

// Row returns tick t's samples as a view into the backing array: one
// value per stream, contiguous, valid until the next Reset.
func (b *Block) Row(t int) []float64 {
	return b.data[t*b.streams : (t+1)*b.streams]
}

// At returns stream k's sample at tick t.
func (b *Block) At(t, k int) float64 { return b.data[t*b.streams+k] }

// Data returns the whole tick-major backing slice (row t occupies
// [t*Streams, (t+1)*Streams)).
func (b *Block) Data() []float64 { return b.data }
