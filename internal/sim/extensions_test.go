package sim

import (
	"testing"

	"fadewich/internal/agent"
	"fadewich/internal/md"
	"fadewich/internal/office"
)

func smallLayout() *office.Layout { return office.Small() }
func wideLayout() *office.Layout  { return office.Wide() }

// TestOverlapExtension exercises the paper's Section IV-E scenario: with
// overlapping movements allowed, simultaneous departures merge into one
// long variation window — the situation Rule 2 handles conservatively.
func TestOverlapExtension(t *testing.T) {
	cfg := Config{Days: 1, Seed: 31}
	cfg.Agent.DaySeconds = 3600
	cfg.Agent.MorningJitterSec = 120
	cfg.Agent.DeparturesPerDay = 6
	cfg.Agent.OutsideMeanSec = 120
	cfg.Agent.AllowOverlaps = true
	cfg.Agent.MinMovementGapSec = 1
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find at least one overlapping pair of movements across many seeds
	// would be flaky; instead verify the sim runs and MD still produces
	// windows covering the events.
	subset := ds.StreamSubset([]int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	res, err := md.Run(ds.Days[0].Streams, subset, ds.Days[0].DT, md.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wins := md.FilterWindows(res.Windows, ds.Days[0].DT, 4.5)
	if len(wins) == 0 {
		t.Fatal("no windows under the overlap configuration")
	}
	covered := 0
	total := 0
	for _, e := range ds.Days[0].Events {
		if e.Type != agent.EventDeparture && e.Type != agent.EventEntry {
			continue
		}
		total++
		for _, w := range wins {
			t1 := float64(w.StartTick) * ds.Days[0].DT
			t2 := float64(w.EndTick) * ds.Days[0].DT
			if t1 <= e.Time+3 && e.Time-3 <= t2 {
				covered++
				break
			}
		}
	}
	if total == 0 {
		t.Skip("no movement events generated")
	}
	if float64(covered) < 0.6*float64(total) {
		t.Fatalf("only %d/%d events covered by windows under overlaps", covered, total)
	}
}

// TestCSISubcarrierExtension exercises the paper's future-work item:
// richer channel-state-information-like streams via per-link subcarriers.
func TestCSISubcarrierExtension(t *testing.T) {
	cfg := Config{Days: 1, Seed: 32}
	cfg.Agent.DaySeconds = 1200
	cfg.Agent.MorningJitterSec = 90
	cfg.RF.Subcarriers = 3
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Links); got != 72*3 {
		t.Fatalf("CSI streams %d, want 216", got)
	}
	// Subcarriers of the same link share geometry: consecutive triples
	// must reference the same sensor pair.
	for i := 0; i < len(ds.Links); i += 3 {
		if ds.Links[i] != ds.Links[i+1] || ds.Links[i] != ds.Links[i+2] {
			t.Fatalf("subcarrier group at %d spans different links", i)
		}
	}
	// And MD must run over the enlarged stream set.
	subset := make([]int, len(ds.Links))
	for i := range subset {
		subset[i] = i
	}
	if _, err := md.Run(ds.Days[0].Streams, subset, ds.Days[0].DT, md.Config{}); err != nil {
		t.Fatal(err)
	}
}

// TestGenerateOtherLayoutsEndToEnd runs the two non-paper offices through
// detection, the paper's future-work generalisation question.
func TestGenerateOtherLayoutsEndToEnd(t *testing.T) {
	for _, name := range []string{"small", "wide"} {
		t.Run(name, func(t *testing.T) {
			cfg := Config{Days: 1, Seed: 33}
			cfg.Agent.DaySeconds = 2400
			cfg.Agent.MorningJitterSec = 90
			cfg.Agent.DeparturesPerDay = 2
			cfg.Agent.OutsideMeanSec = 90
			if name == "small" {
				cfg.Layout = smallLayout()
			} else {
				cfg.Layout = wideLayout()
			}
			ds, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			subset := make([]int, len(ds.Links))
			for i := range subset {
				subset[i] = i
			}
			res, err := md.Run(ds.Days[0].Streams, subset, ds.Days[0].DT, md.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Windows) == 0 {
				t.Fatal("no variation windows in alternative layout")
			}
		})
	}
}
