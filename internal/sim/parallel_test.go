package sim

import (
	"reflect"
	"testing"
)

// parallelConfig is a fast multi-day configuration for determinism checks.
func parallelConfig(workers int) Config {
	cfg := Config{Days: 4, Seed: 4242, Workers: workers}
	cfg.Agent.DaySeconds = 900
	cfg.Agent.MorningJitterSec = 60
	cfg.Agent.DeparturesPerDay = 2
	cfg.Agent.OutsideMeanSec = 90
	return cfg
}

// TestGenerateParallelBitIdentical asserts that parallel generation
// reproduces the sequential dataset bit for bit: same seed, any worker
// count, byte-identical RSSI streams and identical ground truth.
func TestGenerateParallelBitIdentical(t *testing.T) {
	seq, err := Generate(parallelConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 9} {
		par, err := Generate(parallelConfig(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par.Days) != len(seq.Days) {
			t.Fatalf("workers=%d: %d days, want %d", workers, len(par.Days), len(seq.Days))
		}
		if !reflect.DeepEqual(par.Links, seq.Links) {
			t.Fatalf("workers=%d: link table differs", workers)
		}
		for day := range seq.Days {
			a, b := seq.Days[day], par.Days[day]
			if !reflect.DeepEqual(a.Streams, b.Streams) {
				t.Fatalf("workers=%d: day %d RSSI streams differ", workers, day)
			}
			if !reflect.DeepEqual(a.Events, b.Events) {
				t.Fatalf("workers=%d: day %d event log differs", workers, day)
			}
			if !reflect.DeepEqual(a.Seated, b.Seated) || !reflect.DeepEqual(a.InputSpans, b.InputSpans) {
				t.Fatalf("workers=%d: day %d intervals differ", workers, day)
			}
			if a.Ticks != b.Ticks || a.DaySeconds != b.DaySeconds || a.DT != b.DT {
				t.Fatalf("workers=%d: day %d metadata differs", workers, day)
			}
		}
	}
}

// TestGenerateParallelPropagatesError checks that an invalid
// configuration fails identically under parallel generation.
func TestGenerateParallelPropagatesError(t *testing.T) {
	cfg := parallelConfig(4)
	cfg.DT = 5 // outside (0, 1]
	if _, err := Generate(cfg); err == nil {
		t.Fatal("invalid DT accepted")
	}
}
