package sim

import (
	"reflect"
	"testing"
)

// parallelConfig is a fast multi-day configuration for determinism checks.
func parallelConfig(workers int) Config {
	cfg := Config{Days: 4, Seed: 4242, Workers: workers}
	cfg.Agent.DaySeconds = 900
	cfg.Agent.MorningJitterSec = 60
	cfg.Agent.DeparturesPerDay = 2
	cfg.Agent.OutsideMeanSec = 90
	return cfg
}

// TestGenerateParallelBitIdentical asserts that parallel generation
// reproduces the sequential dataset bit for bit: same seed, any worker
// count, byte-identical RSSI streams and identical ground truth.
func TestGenerateParallelBitIdentical(t *testing.T) {
	seq, err := Generate(parallelConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 9} {
		par, err := Generate(parallelConfig(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par.Days) != len(seq.Days) {
			t.Fatalf("workers=%d: %d days, want %d", workers, len(par.Days), len(seq.Days))
		}
		if !reflect.DeepEqual(par.Links, seq.Links) {
			t.Fatalf("workers=%d: link table differs", workers)
		}
		for day := range seq.Days {
			a, b := seq.Days[day], par.Days[day]
			if !reflect.DeepEqual(a.Streams, b.Streams) {
				t.Fatalf("workers=%d: day %d RSSI streams differ", workers, day)
			}
			if !reflect.DeepEqual(a.Events, b.Events) {
				t.Fatalf("workers=%d: day %d event log differs", workers, day)
			}
			if !reflect.DeepEqual(a.Seated, b.Seated) || !reflect.DeepEqual(a.InputSpans, b.InputSpans) {
				t.Fatalf("workers=%d: day %d intervals differ", workers, day)
			}
			if a.Ticks != b.Ticks || a.DaySeconds != b.DaySeconds || a.DT != b.DT {
				t.Fatalf("workers=%d: day %d metadata differs", workers, day)
			}
		}
	}
}

// TestGenerationWorkersClampsToDays is the regression test for the idle
// worker pool: a Workers setting (or CPU count) wider than the day count
// must be clamped, since a day is the unit of parallel work and the
// surplus workers could only idle.
func TestGenerationWorkersClampsToDays(t *testing.T) {
	cases := []struct {
		workers, days, want int
	}{
		{workers: 16, days: 3, want: 3},
		{workers: 2, days: 8, want: 2},
		{workers: 5, days: 5, want: 5},
		{workers: 1, days: 4, want: 1},
	}
	for _, c := range cases {
		if got := generationWorkers(c.workers, c.days); got != c.want {
			t.Errorf("generationWorkers(%d, %d) = %d, want %d", c.workers, c.days, got, c.want)
		}
	}
	// 0 selects one worker per CPU, still clamped to the day count.
	if got := generationWorkers(0, 1); got != 1 {
		t.Errorf("generationWorkers(0, 1) = %d, want 1", got)
	}
}

// TestGenerateOverwideWorkersBitIdentical pins the clamp's observable
// contract: a worker pool far wider than the day count still reproduces
// the sequential dataset bit for bit.
func TestGenerateOverwideWorkersBitIdentical(t *testing.T) {
	cfg := parallelConfig(1)
	cfg.Days = 2
	seq, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 64 // 32x more workers than days
	wide, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for day := range seq.Days {
		if !reflect.DeepEqual(seq.Days[day].Streams, wide.Days[day].Streams) {
			t.Fatalf("day %d RSSI streams differ under an over-wide pool", day)
		}
		if !reflect.DeepEqual(seq.Days[day].Events, wide.Days[day].Events) {
			t.Fatalf("day %d event log differs under an over-wide pool", day)
		}
	}
}

// TestGenerateParallelPropagatesError checks that an invalid
// configuration fails identically under parallel generation.
func TestGenerateParallelPropagatesError(t *testing.T) {
	cfg := parallelConfig(4)
	cfg.DT = 5 // outside (0, 1]
	if _, err := Generate(cfg); err == nil {
		t.Fatal("invalid DT accepted")
	}
}
