package sim

import (
	"testing"

	"fadewich/internal/agent"
	"fadewich/internal/office"
)

// shortConfig builds a cheap 20-minute single-day simulation.
func shortConfig(seed uint64) Config {
	cfg := Config{Days: 1, Seed: seed}
	cfg.Agent.DaySeconds = 1200
	cfg.Agent.MorningJitterSec = 90
	cfg.Agent.DeparturesPerDay = 1.5
	cfg.Agent.OutsideMeanSec = 90
	return cfg
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(shortConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Days) != 1 {
		t.Fatalf("days %d", len(ds.Days))
	}
	tr := ds.Days[0]
	if tr.Ticks != int(1200/tr.DT) {
		t.Fatalf("ticks %d", tr.Ticks)
	}
	if len(tr.Streams) != 72 {
		t.Fatalf("streams %d, want 72", len(tr.Streams))
	}
	for k, s := range tr.Streams {
		if len(s) != tr.Ticks {
			t.Fatalf("stream %d has %d samples, want %d", k, len(s), tr.Ticks)
		}
	}
	if len(ds.Links) != 72 {
		t.Fatalf("links %d", len(ds.Links))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(shortConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(shortConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Days[0].Streams {
		for i := range a.Days[0].Streams[k] {
			if a.Days[0].Streams[k][i] != b.Days[0].Streams[k][i] {
				t.Fatalf("stream %d diverges at tick %d", k, i)
			}
		}
	}
	if len(a.Days[0].Events) != len(b.Days[0].Events) {
		t.Fatal("event logs differ")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(shortConfig(1))
	b, _ := Generate(shortConfig(2))
	same := 0
	total := 0
	for i := 0; i < a.Days[0].Ticks; i += 10 {
		total++
		if a.Days[0].Streams[0][i] == b.Days[0].Streams[0][i] {
			same++
		}
	}
	if same == total {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRSSIInDynamicRange(t *testing.T) {
	ds, _ := Generate(shortConfig(3))
	for _, s := range ds.Days[0].Streams {
		for _, v := range s {
			if v < -95 || v > -20 {
				t.Fatalf("RSSI %d outside [-95,-20]", v)
			}
		}
	}
}

func TestStreamSubset(t *testing.T) {
	ds, _ := Generate(shortConfig(4))
	sub := ds.StreamSubset([]int{0, 1, 2})
	if len(sub) != 6 {
		t.Fatalf("3-sensor subset has %d streams, want 6", len(sub))
	}
	for _, k := range sub {
		l := ds.Links[k]
		if l.TX > 2 || l.RX > 2 {
			t.Fatalf("stream %d links %v outside subset", k, l)
		}
	}
	if got := ds.StreamSubset(nil); len(got) != 0 {
		t.Fatalf("empty subset should yield no streams, got %d", len(got))
	}
	all := ds.StreamSubset([]int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	if len(all) != 72 {
		t.Fatalf("full subset %d streams", len(all))
	}
}

func TestEventCounts(t *testing.T) {
	ds, _ := Generate(shortConfig(5))
	counts := ds.EventCounts()
	if len(counts) != 4 { // w0..w3
		t.Fatalf("count buckets %d", len(counts))
	}
	var entries, departures int
	for _, e := range ds.Days[0].Events {
		switch e.Type {
		case agent.EventEntry:
			entries++
		case agent.EventDeparture:
			departures++
		}
	}
	if counts[0] != entries {
		t.Fatalf("w0 count %d, want %d", counts[0], entries)
	}
	if counts[1]+counts[2]+counts[3] != departures {
		t.Fatal("departure counts do not sum")
	}
}

func TestTableIICalibration(t *testing.T) {
	// The default 5-day configuration must land near the paper's 130
	// events (67/21/20/22). Allow generous tolerance: this guards the
	// calibration against accidental regressions, not exact numbers.
	if testing.Short() {
		t.Skip("full 5-day generation in -short mode")
	}
	ds, err := Generate(Config{Days: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	counts := ds.EventCounts()
	total := counts[0] + counts[1] + counts[2] + counts[3]
	if total < 100 || total > 160 {
		t.Fatalf("total events %d, want ≈130", total)
	}
	if counts[0] < 45 || counts[0] > 85 {
		t.Fatalf("w0 events %d, want ≈67", counts[0])
	}
	for i := 1; i <= 3; i++ {
		if counts[i] < 10 || counts[i] > 35 {
			t.Fatalf("w%d events %d, want ≈21", i, counts[i])
		}
	}
}

func TestCustomLayout(t *testing.T) {
	cfg := shortConfig(6)
	cfg.Layout = office.Small()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Links) != 30 { // 6 sensors → 30 directed links
		t.Fatalf("links %d, want 30", len(ds.Links))
	}
	if len(ds.Days[0].Seated) != 2 {
		t.Fatalf("seated users %d, want 2", len(ds.Days[0].Seated))
	}
}

func TestInvalidConfigs(t *testing.T) {
	bad := shortConfig(7)
	bad.DT = 5 // above the 1-second cap
	if _, err := Generate(bad); err == nil {
		t.Fatal("DT=5 accepted")
	}
	broken := shortConfig(8)
	broken.Layout = &office.Layout{Name: "broken"}
	if _, err := Generate(broken); err == nil {
		t.Fatal("broken layout accepted")
	}
}

func TestTraceTimeHelpers(t *testing.T) {
	ds, _ := Generate(shortConfig(9))
	tr := ds.Days[0]
	if tr.Time(10) != 10*tr.DT {
		t.Fatalf("Time(10) = %v", tr.Time(10))
	}
	if tr.TickAt(-5) != 0 {
		t.Fatal("TickAt should clamp below")
	}
	if tr.TickAt(1e9) != tr.Ticks-1 {
		t.Fatal("TickAt should clamp above")
	}
	if tr.TickAt(tr.Time(100)) != 100 {
		t.Fatal("TickAt(Time(i)) != i")
	}
}

func TestTotalHours(t *testing.T) {
	cfg := shortConfig(10)
	cfg.Days = 2
	ds, _ := Generate(cfg)
	want := 2 * 1200.0 / 3600
	if got := ds.TotalHours(); got != want {
		t.Fatalf("hours %v, want %v", got, want)
	}
}

func TestMovementRaisesSumStdInStreams(t *testing.T) {
	// Integration check of the core physical premise: the recorded
	// streams are visibly more volatile during a departure than during
	// quiet sitting.
	ds, _ := Generate(shortConfig(11))
	tr := ds.Days[0]
	var dep *agent.Event
	for i, e := range tr.Events {
		if e.Type == agent.EventDeparture {
			dep = &tr.Events[i]
			break
		}
	}
	if dep == nil {
		t.Skip("no departure in this short day")
	}
	volatility := func(fromTick, n int) float64 {
		var sum float64
		for k := range tr.Streams {
			var mean, sq float64
			for i := fromTick; i < fromTick+n && i < tr.Ticks; i++ {
				v := float64(tr.Streams[k][i])
				mean += v
				sq += v * v
			}
			mean /= float64(n)
			sum += sq/float64(n) - mean*mean
		}
		return sum
	}
	depTick := tr.TickAt(dep.Time + 2)
	quietTick := tr.TickAt(dep.Time - 60)
	if quietTick < 0 {
		quietTick = 0
	}
	moving := volatility(depTick, 15)
	quiet := volatility(quietTick, 15)
	if moving < 2*quiet {
		t.Fatalf("movement volatility %v not clearly above quiet %v", moving, quiet)
	}
}
