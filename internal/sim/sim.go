// Package sim is the discrete-time engine that stands in for the paper's
// physical testbed. It advances the user agents tick by tick (default
// 5 Hz), feeds their body positions into the RF propagation model, and
// records the resulting RSSI streams together with the exact ground truth
// (departures, entries, door crossings, seated intervals) the evaluation
// harness needs. One Trace is one working day; a Dataset is the multi-day
// collection corresponding to the paper's five-day data collection.
package sim

import (
	"fmt"
	"runtime"

	"fadewich/internal/agent"
	"fadewich/internal/engine"
	"fadewich/internal/office"
	"fadewich/internal/rf"
	"fadewich/internal/rng"
)

// Config parameterises dataset generation.
type Config struct {
	// DT is the tick duration in seconds (default 0.2, i.e. 5 Hz).
	DT float64
	// Days is the number of working days to simulate (the paper used 5).
	Days int
	// Seed drives all randomness; the same seed regenerates the same
	// dataset bit for bit, regardless of Workers.
	Seed uint64
	// Workers caps the worker pool generating days in parallel: 0 uses
	// one worker per CPU, 1 forces sequential generation, and any width
	// is clamped to Days (extra workers would only sit idle). The output
	// is bit-identical for every value — each day's generator is split
	// from the root source in day order before any worker starts.
	Workers int
	// Layout is the office; nil selects office.Paper().
	Layout *office.Layout
	// RF configures the propagation model; zero fields take defaults.
	RF rf.Config
	// Agent configures user behaviour; zero fields take defaults.
	Agent agent.Config
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.DT == 0 {
		c.DT = 0.2
	}
	if c.Days == 0 {
		c.Days = 5
	}
	if c.Layout == nil {
		c.Layout = office.Paper()
	}
	return c
}

// Trace is one simulated day.
type Trace struct {
	// DT is the tick duration in seconds.
	DT float64
	// Ticks is the number of samples per stream.
	Ticks int
	// Streams holds quantised RSSI per stream: Streams[k][i] is stream
	// k's reading in dBm at tick i. int8 suffices for the receiver's
	// dynamic range of [-95, -20] dBm at 1 dB quantisation.
	Streams [][]int8
	// Events is the ground-truth event log, time-sorted.
	Events []agent.Event
	// Seated lists per-user seated intervals.
	Seated [][]agent.Interval
	// InputSpans lists per-user intervals that may contain input, ending
	// exactly at departure decisions (worst-case last-input assumption).
	InputSpans [][]agent.Interval
	// DaySeconds is the day length in seconds.
	DaySeconds float64
}

// Time returns the timestamp of tick i.
func (t *Trace) Time(i int) float64 { return float64(i) * t.DT }

// TickAt returns the tick index covering time x, clamped to the valid
// range.
func (t *Trace) TickAt(x float64) int {
	i := int(x / t.DT)
	if i < 0 {
		return 0
	}
	if i >= t.Ticks {
		return t.Ticks - 1
	}
	return i
}

// Dataset is the multi-day collection plus the deployment metadata needed
// to interpret stream indices.
type Dataset struct {
	Days   []*Trace
	Layout *office.Layout
	// Links maps stream index to its directed sensor pair (full sensor
	// set).
	Links []rf.Link
	// Config is the generation configuration after defaulting.
	Config Config
}

// Generate runs the simulation and returns the dataset. It is
// deterministic in cfg.Seed.
func Generate(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Layout.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if cfg.DT <= 0 || cfg.DT > 1 {
		return nil, fmt.Errorf("sim: tick duration %v outside (0, 1] seconds", cfg.DT)
	}
	if cfg.Days < 0 {
		return nil, fmt.Errorf("sim: negative day count %d", cfg.Days)
	}
	root := rng.New(cfg.Seed)

	// Split every day's source from the root up front, in day order. The
	// per-day generators then share no state, so the days can run on any
	// number of workers and still reproduce the sequential output bit for
	// bit.
	srcs := make([]*rng.Source, cfg.Days)
	for day := range srcs {
		srcs[day] = root.Split()
	}

	type dayResult struct {
		trace *Trace
		links []rf.Link
	}
	pool := engine.NewPool(generationWorkers(cfg.Workers, cfg.Days))
	results, err := engine.Gather(pool, cfg.Days, func(day int) (dayResult, error) {
		trace, links, err := generateDay(cfg, srcs[day])
		return dayResult{trace, links}, err
	})
	if err != nil {
		return nil, err
	}

	ds := &Dataset{Layout: cfg.Layout, Config: cfg}
	for _, r := range results {
		ds.Days = append(ds.Days, r.trace)
		if ds.Links == nil {
			ds.Links = r.links
		}
	}
	return ds, nil
}

// generationWorkers resolves the day-generation pool width: 0 selects one
// worker per CPU, and the result is clamped to the day count — a pool
// wider than the number of days would only hold idle workers (and an
// oversized token budget that nested Map calls could over-draw).
func generationWorkers(workers, days int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if days >= 1 && workers > days {
		workers = days
	}
	return workers
}

// generationBlockTicks is the number of ticks generateDay samples per
// SampleBlock call: large enough to amortise per-call overhead, small
// enough that the block buffer (blockTicks × streams float64) stays
// cache-friendly.
const generationBlockTicks = 256

// generateDay simulates a single day. The tick loop is block-based: the
// agent sampler fills a body-set arena for a window of ticks, one
// SampleBlock call fills the columnar RSSI buffer, and the int8 traces
// are transposed out of it stream by stream. The output is bit-identical
// to the historical one-Sample-per-tick loop.
func generateDay(cfg Config, src *rng.Source) (*Trace, []rf.Link, error) {
	sched, err := agent.NewSchedule(cfg.Layout, cfg.Agent, src.Split())
	if err != nil {
		return nil, nil, err
	}
	network, err := rf.NewNetwork(cfg.RF, cfg.Layout.Sensors, cfg.DT, src.Split())
	if err != nil {
		return nil, nil, err
	}
	sampler := agent.NewSampler(sched, src.Split())

	daySec := sched.DaySeconds()
	ticks := int(daySec / cfg.DT)
	numStreams := network.NumStreams()

	streams := make([][]int8, numStreams)
	for k := range streams {
		streams[k] = make([]int8, ticks)
	}

	users := sched.NumUsers()
	states := make([]agent.BodyState, users)
	// Body-set arena for one block: the per-tick body slices are views
	// into one backing array sized for full occupancy, so a block incurs
	// no per-tick allocation.
	arena := make([]rf.Body, 0, generationBlockTicks*users)
	tickBodies := make([][]rf.Body, generationBlockTicks)
	var block rf.Block

	for base := 0; base < ticks; base += generationBlockTicks {
		n := generationBlockTicks
		if base+n > ticks {
			n = ticks - base
		}
		arena = arena[:0]
		for i := 0; i < n; i++ {
			t := float64(base+i) * cfg.DT
			sampler.At(t, states)
			lo := len(arena)
			for u := range states {
				if states[u].Present {
					arena = append(arena, rf.Body{Pos: states[u].Pos, Speed: states[u].Speed})
				}
			}
			tickBodies[i] = arena[lo:len(arena):len(arena)]
		}
		network.SampleBlock(tickBodies[:n], &block)
		for k := 0; k < numStreams; k++ {
			col := streams[k][base : base+n]
			for i := range col {
				col[i] = int8(block.At(i, k))
			}
		}
	}

	trace := &Trace{
		DT:         cfg.DT,
		Ticks:      ticks,
		Streams:    streams,
		Events:     sched.Events(),
		Seated:     sched.SeatedIntervals(),
		InputSpans: sched.InputSpans(),
		DaySeconds: daySec,
	}
	return trace, network.Links(), nil
}

// NumStreams returns the stream count of the full deployment.
func (d *Dataset) NumStreams() int { return len(d.Links) }

// StreamSubset returns the indices of streams whose both endpoints belong
// to the given sensor subset (indices into the layout's sensor list), in
// deterministic order. This models deploying only those sensors: the
// remaining links' propagation is unaffected by absent receivers.
func (d *Dataset) StreamSubset(sensors []int) []int {
	in := make(map[int]bool, len(sensors))
	for _, s := range sensors {
		in[s] = true
	}
	var out []int
	for k, l := range d.Links {
		if in[l.TX] && in[l.RX] {
			out = append(out, k)
		}
	}
	return out
}

// EventCounts tallies ground-truth label counts over the whole dataset in
// the paper's Table II format: index 0 is w0 (entries), index i>0 is
// departures from workstation i-1.
func (d *Dataset) EventCounts() []int {
	counts := make([]int, d.Layout.NumWorkstations()+1)
	for _, day := range d.Days {
		for _, e := range day.Events {
			switch e.Type {
			case agent.EventEntry:
				counts[0]++
			case agent.EventDeparture:
				counts[e.Workstation+1]++
			}
		}
	}
	return counts
}

// TotalHours returns the monitored hours across all days.
func (d *Dataset) TotalHours() float64 {
	var sec float64
	for _, day := range d.Days {
		sec += day.DaySeconds
	}
	return sec / 3600
}
