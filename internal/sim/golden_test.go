package sim

import (
	"hash/fnv"
	"math"
	"testing"
)

// goldenGenerate pins the byte-exact dataset produced for seed 4242: the
// quantised int8 streams of every day plus the ground-truth event log.
// Recorded from the per-tick generation loop that predates the columnar
// SampleBlock pipeline; the block-based path must reproduce it bit for
// bit. Update only for a deliberate, documented model change.
const goldenGenerate uint64 = 0xc1e6ad9beafa31d3

// hashDataset folds every stream byte and every ground-truth event into
// one FNV-1a hash.
func hashDataset(ds *Dataset) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put64 := func(bits uint64) {
		for b := 0; b < 8; b++ {
			buf[b] = byte(bits >> (8 * b))
		}
		h.Write(buf[:])
	}
	for _, day := range ds.Days {
		for _, stream := range day.Streams {
			bs := make([]byte, len(stream))
			for i, v := range stream {
				bs[i] = byte(v)
			}
			h.Write(bs)
		}
		for _, e := range day.Events {
			put64(uint64(e.Type))
			put64(uint64(int64(e.Workstation)))
			put64(math.Float64bits(e.Time))
		}
	}
	return h.Sum64()
}

func goldenConfig(workers int) Config {
	cfg := Config{Days: 2, Seed: 4242, Workers: workers}
	cfg.Agent.DaySeconds = 900
	cfg.Agent.MorningJitterSec = 60
	cfg.Agent.DeparturesPerDay = 2
	cfg.Agent.OutsideMeanSec = 120
	return cfg
}

func TestGenerateGolden(t *testing.T) {
	ds, err := Generate(goldenConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := hashDataset(ds); got != goldenGenerate {
		t.Fatalf("golden hash %#x, want %#x: sim.Generate output diverged from the pre-refactor byte stream", got, goldenGenerate)
	}
}

func TestGenerateGoldenParallel(t *testing.T) {
	// The same hash must come out of the parallel generation path.
	ds, err := Generate(goldenConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := hashDataset(ds); got != goldenGenerate {
		t.Fatalf("golden hash %#x, want %#x (parallel generation)", got, goldenGenerate)
	}
}
