package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSpecValid(t *testing.T) {
	raw := []byte(`{
		"defaults": {"layout": "small", "sensors": 3, "dt": 0.5},
		"offices": [
			{"name": "hq"},
			{"name": "lab", "layout": "paper", "sensors": 4, "md_tau": 2.5}
		]
	}`)
	s, err := ParseSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Offices) != 2 || s.Offices[0].Name != "hq" || s.Offices[1].MDTau != 2.5 {
		t.Fatalf("spec decoded wrong: %+v", s)
	}
	if s.Defaults.Layout != "small" || s.Defaults.DT != 0.5 {
		t.Fatalf("defaults decoded wrong: %+v", s.Defaults)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"offices": [{"name": "hq", "sensros": 4}]}`)); err == nil {
		t.Fatal("typo'd field parsed silently")
	}
}

func TestParseSpecRejectsTrailingData(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"offices": [{"name": "hq"}]} {"offices": []}`)); err == nil {
		t.Fatal("trailing object accepted")
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	if _, err := ParseSpec([]byte(`not json`)); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestResolveDefaulting(t *testing.T) {
	s := &Spec{
		Defaults: OfficeSpec{Layout: "small", DT: 0.4, MDTau: 3, MinTrainingSamples: 7},
		Offices: []OfficeSpec{
			{Name: "plain"},
			{Name: "big", Layout: "wide", Sensors: 5, DT: 0.2, MDTau: 1.5},
		},
	}
	out, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("resolved %d offices, want 2", len(out))
	}
	// "plain" inherits everything: small layout, full 6-sensor set.
	plain := out[0]
	if plain.Name != "plain" {
		t.Fatalf("office order not preserved: %q first", plain.Name)
	}
	if got, want := plain.Config.Streams, 6*5; got != want {
		t.Fatalf("plain streams = %d, want %d (full small layout)", got, want)
	}
	if plain.Config.Workstations != 2 {
		t.Fatalf("plain workstations = %d, want 2", plain.Config.Workstations)
	}
	if plain.Config.DT != 0.4 || plain.Config.MD.Tau != 3 || plain.Config.MinTrainingSamples != 7 {
		t.Fatalf("plain did not inherit defaults: %+v", plain.Config)
	}
	// "big" overrides: wide layout, 5 of 9 sensors, own dt/tau.
	big := out[1]
	if got, want := big.Config.Streams, 5*4; got != want {
		t.Fatalf("big streams = %d, want %d", got, want)
	}
	if big.Config.Workstations != 4 {
		t.Fatalf("big workstations = %d, want 4 (wide)", big.Config.Workstations)
	}
	if big.Config.DT != 0.2 || big.Config.MD.Tau != 1.5 {
		t.Fatalf("big overrides lost: %+v", big.Config)
	}
	// Inherited where not overridden.
	if big.Config.MinTrainingSamples != 7 {
		t.Fatalf("big min_training_samples = %d, want inherited 7", big.Config.MinTrainingSamples)
	}
}

func TestResolveConfigComparable(t *testing.T) {
	s := &Spec{Offices: []OfficeSpec{{Name: "a"}, {Name: "b"}}}
	out, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Config != out[1].Config {
		t.Fatal("identical office specs resolved to different configs")
	}
	s.Offices[1].MDTau = 9
	out2, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if out2[0].Config == out2[1].Config {
		t.Fatal("md_tau change invisible to config equality")
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"missing name", Spec{Offices: []OfficeSpec{{}}}, "missing name"},
		{"duplicate name", Spec{Offices: []OfficeSpec{{Name: "x"}, {Name: "x"}}}, "duplicate name"},
		{"unknown layout", Spec{Offices: []OfficeSpec{{Name: "x", Layout: "mars"}}}, "unknown layout"},
		{"sensors too few", Spec{Offices: []OfficeSpec{{Name: "x", Sensors: 1}}}, "out of range"},
		{"sensors too many", Spec{Offices: []OfficeSpec{{Name: "x", Layout: "small", Sensors: 99}}}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := tc.spec.Resolve()
			if err == nil {
				t.Fatalf("resolved: %+v", out)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if out != nil {
				t.Fatal("partial resolution returned alongside an error")
			}
		})
	}
}

// TestResolveEmptySpec pins that an office-less spec resolves cleanly
// to zero offices — emptiness is the caller's policy (a worker's shard
// may be empty), not a resolution error.
func TestResolveEmptySpec(t *testing.T) {
	out, err := (&Spec{}).Resolve()
	if err != nil {
		t.Fatalf("empty spec rejected: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("resolved %d offices from an empty spec", len(out))
	}
}

func TestResolveAllOrNothing(t *testing.T) {
	// A valid office before an invalid one must not leak out.
	s := &Spec{Offices: []OfficeSpec{{Name: "good"}, {Name: "bad", Layout: "mars"}}}
	out, err := s.Resolve()
	if err == nil || out != nil {
		t.Fatalf("want atomic failure, got out=%v err=%v", out, err)
	}
	if !strings.Contains(err.Error(), `office 1 ("bad")`) {
		t.Fatalf("error %q does not name the failing office", err)
	}
}

func TestLoadSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, []byte(`{"offices": [{"name": "hq", "layout": "small", "sensors": 2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Offices) != 1 || s.Offices[0].Name != "hq" {
		t.Fatalf("loaded spec wrong: %+v", s)
	}
	if _, err := LoadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}
