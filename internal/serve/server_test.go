package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"fadewich/internal/re"
	"fadewich/internal/rng"
	"fadewich/internal/stream"
	"fadewich/internal/svm"
	"fadewich/internal/vmath"
	"fadewich/internal/wire"
)

var errSentinel = errors.New("spec file went missing")

// specJSON builds a minimal valid fleet spec: each named office a
// 2-sensor small-layout tenant (2 RSSI streams, 2 workstations).
func specJSON(names ...string) string {
	offices := make([]string, len(names))
	for i, n := range names {
		offices[i] = fmt.Sprintf(`{"name": %q}`, n)
	}
	return fmt.Sprintf(`{"defaults": {"layout": "small", "sensors": 2}, "offices": [%s]}`,
		strings.Join(offices, ", "))
}

// newTestServer stands up a Server over a temp spec file. The default
// configuration is flush-driven dispatch (BatchTicks and
// MaxBatchLatency zero), the deterministic mode the handler tests
// rely on.
func newTestServer(t *testing.T, spec string, mut ...func(*Config)) (*Server, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{SpecPath: path, Queue: 4096, Workers: 2}
	for _, m := range mut {
		m(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, path
}

// post runs one request through the server's mux.
func post(srv *Server, target, contentType, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	return rr
}

func get(srv *Server, target string) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, target, nil))
	return rr
}

func decodeBody[T any](t *testing.T, rr *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rr.Body.Bytes(), &v); err != nil {
		t.Fatalf("response %q does not decode: %v", rr.Body.String(), err)
	}
	return v
}

// rssiLines renders n tick lines for one office with the given noise
// level — the same quiet/noisy recipe the core tests drive alerts
// with (σ 0.5 is a still room, σ 6 is movement).
func rssiLines(office string, n int, sigma float64, src *rng.Source) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `{"office":%q,"rssi":[%g,%g]}`+"\n",
			office, -60+src.Normal(0, sigma), -60+src.Normal(0, sigma))
	}
	return b.String()
}

// goOnline installs an externally trained classifier on the named
// office, skipping the training phase: the movement-vs-still clusters
// are synthetic, so high-variance (movement) signatures classify as
// workstation 0.
func goOnline(t *testing.T, srv *Server, name string) int {
	t.Helper()
	id, ok := srv.Reconciler().IDOf(name)
	if !ok {
		t.Fatalf("office %q not live", name)
	}
	sys := srv.Fleet().System(id)
	streams := 2
	src := rng.New(31)
	var samples []re.Sample
	for i := 0; i < 10; i++ {
		f := make([]float64, streams*re.FeaturesPerStream)
		g := make([]float64, streams*re.FeaturesPerStream)
		for s := 0; s < streams; s++ {
			f[s*re.FeaturesPerStream] = 30 + src.Normal(0, 2)
			f[s*re.FeaturesPerStream+1] = 2 + src.Normal(0, 0.1)
			g[s*re.FeaturesPerStream] = 0.2 + src.Normal(0, 0.05)
			g[s*re.FeaturesPerStream+1] = 0.5 + src.Normal(0, 0.1)
		}
		samples = append(samples,
			re.Sample{Features: f, Label: 0},
			re.Sample{Features: g, Label: 1})
	}
	clf, err := re.Train(samples, svm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys.AdoptClassifier(clf)
	return id
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("server built without a spec path")
	}
	if _, err := New(Config{SpecPath: filepath.Join(t.TempDir(), "nope.json")}); err == nil {
		t.Fatal("server built from a missing spec file")
	}
	path := filepath.Join(t.TempDir(), "fleet.json")
	os.WriteFile(path, []byte(`{"offices": []}`), 0o644)
	if _, err := New(Config{SpecPath: path}); err == nil {
		t.Fatal("server built from an empty fleet")
	}
}

func TestTicksJSONL(t *testing.T) {
	srv, _ := newTestServer(t, specJSON("a", "b"))
	src := rng.New(1)
	body := rssiLines("a", 3, 0.5, src) + `{"office":"b","input":1}` + "\n"
	rr := post(srv, "/v1/ticks?flush=1", "", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	res := decodeBody[ingestResult](t, rr)
	if res.AcceptedTicks != 3 || res.AcceptedInputs != 1 || !res.Flushed || res.Error != "" {
		t.Fatalf("result %+v", res)
	}
	tot := srv.Ingestor().Stats().Totals()
	if tot.Pushed != 3 || tot.Dispatched != 3 || tot.Depth != 0 {
		t.Fatalf("post-flush totals %+v", tot)
	}

	st := decodeBody[fleetStatus](t, get(srv, "/v1/offices"))
	if st.SpecGeneration != 1 || st.LiveOffices != 2 || st.DesiredOffices != 2 {
		t.Fatalf("fleet status %+v", st)
	}
	if len(st.Offices) != 2 || st.Offices[0].Name != "a" || st.Offices[1].Name != "b" {
		t.Fatalf("office rows %+v", st.Offices)
	}
	if st.Offices[0].Phase != "training" || st.Offices[0].PushedTicks != 3 {
		t.Fatalf("office a row %+v", st.Offices[0])
	}
	if st.Offices[0].Streams != 2 || st.Offices[0].Workstations != 2 {
		t.Fatalf("office a config row %+v", st.Offices[0])
	}
}

func TestTicksErrors(t *testing.T) {
	srv, _ := newTestServer(t, specJSON("a"))

	rr := post(srv, "/v1/ticks", "", `{"office":"zzz","rssi":[1,2]}`+"\n")
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("unknown office: status %d", rr.Code)
	}
	res := decodeBody[ingestResult](t, rr)
	if !strings.Contains(res.Error, `unknown office "zzz"`) || !strings.Contains(res.Error, "line 1") {
		t.Fatalf("error %q", res.Error)
	}

	// A failing line keeps everything before it accepted.
	body := `{"office":"a","rssi":[1,2]}` + "\n" + `{"office":"a"}` + "\n"
	rr = post(srv, "/v1/ticks", "", body)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("empty record: status %d", rr.Code)
	}
	res = decodeBody[ingestResult](t, rr)
	if res.AcceptedTicks != 1 || !strings.Contains(res.Error, "line 2") {
		t.Fatalf("partial accept %+v", res)
	}

	srv.Close()
	rr = post(srv, "/v1/ticks", "", `{"office":"a","rssi":[1,2]}`+"\n")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-close status %d", rr.Code)
	}
}

func TestTicksFrames(t *testing.T) {
	srv, _ := newTestServer(t, specJSON("a"))
	line := `{"office":"a","rssi":[-60,-61]}` + "\n"

	frames, err := wire.AppendRawFrame(nil, wire.V1JSONL, []byte(line+line))
	if err != nil {
		t.Fatal(err)
	}
	frames, err = wire.AppendRawFrame(frames, wire.V1JSONL, []byte(line))
	if err != nil {
		t.Fatal(err)
	}
	rr := post(srv, "/v1/ticks?flush=1", ContentTypeFrames, string(frames))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if res := decodeBody[ingestResult](t, rr); res.AcceptedTicks != 3 {
		t.Fatalf("result %+v", res)
	}

	// A corrupt second frame rejects the remainder but keeps frame 1.
	bad := append([]byte(nil), frames...)
	bad[len(bad)-3] ^= 0x40 // inside the second frame's CRC
	rr = post(srv, "/v1/ticks", ContentTypeFrames, string(bad))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("corrupt frame: status %d", rr.Code)
	}
	res := decodeBody[ingestResult](t, rr)
	if res.AcceptedTicks != 2 || !strings.Contains(res.Error, "frame 2") {
		t.Fatalf("corrupt-frame result %+v", res)
	}

	// Tick frames must be JSONL-coded; the binary action codec is not a
	// tick transport.
	v2, err := wire.AppendRawFrame(nil, wire.V2Binary, []byte(line))
	if err != nil {
		t.Fatal(err)
	}
	rr = post(srv, "/v1/ticks", ContentTypeFrames, string(v2))
	res = decodeBody[ingestResult](t, rr)
	if rr.Code != http.StatusBadRequest || !strings.Contains(res.Error, "codec") {
		t.Fatalf("v2 tick frame: status %d result %+v", rr.Code, res)
	}
}

// TestActionsStream subscribes over real HTTP, drives an online office
// through an alert, and requires the subscriber to have received every
// action the fleet produced: the early header flush commits the
// subscription before any subsequent batch dispatches.
func TestActionsStream(t *testing.T) {
	srv, _ := newTestServer(t, specJSON("a"))
	id := goOnline(t, srv, "a")
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/actions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	// Headers received ⇒ subscription live. Collect frames until the
	// server drains us at Close.
	type result struct {
		actions []int // emitting office per action
		err     error
	}
	done := make(chan result, 1)
	go func() {
		var res result
		dec := wire.NewDecoder(resp.Body)
		for {
			acts, err := dec.Decode()
			if err != nil {
				if err != io.EOF {
					res.err = err
				}
				done <- res
				return
			}
			for _, a := range acts {
				res.actions = append(res.actions, a.Office)
			}
		}
	}()

	src := rng.New(7)
	steps := []string{
		rssiLines("a", 400, 0.5, src),     // movement-profile warm-up
		`{"office":"a","input":0}` + "\n", // login at workstation 0
		rssiLines("a", 50, 0.5, src),      // idle past t∆
		rssiLines("a", 120, 6, src),       // sustained movement → alert path
	}
	for i, body := range steps {
		if rr := post(srv, "/v1/ticks?flush=1", "", body); rr.Code != http.StatusOK {
			t.Fatalf("step %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
	}
	produced := srv.Ingestor().Stats().Actions
	if produced == 0 {
		t.Fatal("the online office produced no actions — the alert recipe regressed")
	}
	srv.Close()

	res := <-done
	if res.err != nil {
		t.Fatalf("action stream broke: %v", res.err)
	}
	if uint64(len(res.actions)) != produced {
		t.Fatalf("subscriber saw %d actions, fleet produced %d", len(res.actions), produced)
	}
	for _, office := range res.actions {
		if office != id {
			t.Fatalf("action attributed to office %d, want %d", office, id)
		}
	}
}

func TestActionsRejectsUnknownCodec(t *testing.T) {
	srv, _ := newTestServer(t, specJSON("a"))
	if rr := get(srv, "/v1/actions?codec=9"); rr.Code != http.StatusBadRequest {
		t.Fatalf("codec=9 status %d", rr.Code)
	}
}

func TestTrainEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, specJSON("a", "b"))
	goOnline(t, srv, "a")

	rr := post(srv, "/v1/train", "", "")
	if rr.Code != http.StatusConflict {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	res := decodeBody[trainResult](t, rr)
	if res.Online != 1 || len(res.Trained) != 0 {
		t.Fatalf("result %+v", res)
	}
	if len(res.Errors) != 1 || !strings.Contains(res.Errors[0], `"b"`) {
		t.Fatalf("errors %v", res.Errors)
	}

	srv.Close()
	if rr := post(srv, "/v1/train", "", ""); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-close status %d", rr.Code)
	}
}

func TestReloadEndpoint(t *testing.T) {
	srv, path := newTestServer(t, specJSON("a", "b"))

	os.WriteFile(path, []byte(specJSON("a", "b", "c")), 0o644)
	rr := post(srv, "/v1/reload", "", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	res := decodeBody[reloadResult](t, rr)
	if res.SpecGeneration != 2 || res.LiveOffices != 3 || res.Error != "" {
		t.Fatalf("result %+v", res)
	}

	// An invalid revision reports the failure and keeps the fleet.
	os.WriteFile(path, []byte(`{broken`), 0o644)
	rr = post(srv, "/v1/reload", "", "")
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("invalid spec: status %d", rr.Code)
	}
	res = decodeBody[reloadResult](t, rr)
	if res.SpecGeneration != 3 || res.LiveOffices != 3 || res.Error == "" {
		t.Fatalf("invalid-spec result %+v", res)
	}

	// So does an unreadable spec file.
	os.Remove(path)
	rr = post(srv, "/v1/reload", "", "")
	res = decodeBody[reloadResult](t, rr)
	if rr.Code != http.StatusBadRequest || !strings.Contains(res.Error, "read spec") {
		t.Fatalf("missing file: status %d result %+v", rr.Code, res)
	}
}

// TestEmptySpecPolicy pins Config.AllowEmpty: a zero-office spec is
// rejected by default (at startup and on reload — emptying a
// single-process fleet is a spec accident), while a worker whose
// shard is currently empty starts, reloads offices in, and empties
// out again without failing.
func TestEmptySpecPolicy(t *testing.T) {
	empty := `{"defaults": {"layout": "small", "sensors": 2}, "offices": []}`

	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, []byte(empty), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{SpecPath: path, Workers: 1}); err == nil || !strings.Contains(err.Error(), "no offices") {
		t.Fatalf("empty spec without AllowEmpty: err = %v, want no-offices rejection", err)
	}

	srv, specPath := newTestServer(t, empty, func(c *Config) { c.AllowEmpty = true })
	if n := len(decodeBody[fleetStatus](t, get(srv, "/v1/offices")).Offices); n != 0 {
		t.Fatalf("empty shard lists %d offices", n)
	}

	// Offices hash in: the reload populates the empty fleet.
	os.WriteFile(specPath, []byte(specJSON("a", "b")), 0o644)
	rr := post(srv, "/v1/reload", "", "")
	res := decodeBody[reloadResult](t, rr)
	if rr.Code != http.StatusOK || res.LiveOffices != 2 || res.Error != "" {
		t.Fatalf("reload into empty fleet: status %d result %+v", rr.Code, res)
	}

	// ...and out again: the shard may legitimately empty.
	os.WriteFile(specPath, []byte(empty), 0o644)
	rr = post(srv, "/v1/reload", "", "")
	res = decodeBody[reloadResult](t, rr)
	if rr.Code != http.StatusOK || res.LiveOffices != 0 || res.Error != "" {
		t.Fatalf("reload to empty shard: status %d result %+v", rr.Code, res)
	}

	// A single-process daemon reloading to empty keeps its fleet.
	single, singlePath := newTestServer(t, specJSON("a", "b"))
	os.WriteFile(singlePath, []byte(empty), 0o644)
	rr = post(single, "/v1/reload", "", "")
	res = decodeBody[reloadResult](t, rr)
	if rr.Code != http.StatusBadRequest || res.LiveOffices != 2 || !strings.Contains(res.Error, "no offices") {
		t.Fatalf("reload to empty without AllowEmpty: status %d result %+v", rr.Code, res)
	}
}

// promLine matches one Prometheus text-exposition sample with at most
// one label (the office series and the build-info line).
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"\})? (-?[0-9.e+-]+|NaN)$`)

// TestMetricsEndpoint is the /metrics contract test: the page parses
// as Prometheus text exposition, and in a quiesced state (here: after
// a drained Close) every exported counter equals the corresponding
// Stats() number from the stream, segment and TCP layers.
func TestMetricsEndpoint(t *testing.T) {
	// A TCP drain stands in for the downstream tail/router tier.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn)
		}
	}()

	segDir := t.TempDir()
	srv, _ := newTestServer(t, specJSON("a", "b"), func(c *Config) {
		c.SegmentDir = segDir
		c.Forward = ln.Addr().String()
		c.Codec = wire.V1JSONL
	})
	goOnline(t, srv, "a")

	src := rng.New(7)
	for i, body := range []string{
		rssiLines("a", 400, 0.5, src),
		`{"office":"a","input":0}` + "\n",
		rssiLines("a", 50, 0.5, src),
		rssiLines("a", 120, 6, src),
		rssiLines("b", 10, 0.5, src), // a training-phase tenant rides along
	} {
		if rr := post(srv, "/v1/ticks?flush=1", "", body); rr.Code != http.StatusOK {
			t.Fatalf("step %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
	}
	// Drain: every batch is through every sink, the active segment is
	// sealed. The metric counters must now agree exactly.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	rr := get(srv, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}

	flat := make(map[string]float64)     // unlabelled samples
	labelled := make(map[string]float64) // name{office=...} samples
	declared := make(map[string]bool)    // names with a TYPE line
	for _, line := range strings.Split(strings.TrimRight(rr.Body.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			declared[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %q is not valid exposition text", line)
		}
		var v float64
		fmt.Sscanf(m[3], "%g", &v)
		if m[2] == "" {
			flat[m[1]] = v
		} else {
			labelled[m[1]+m[2]] = v
		}
		if !declared[m[1]] {
			t.Fatalf("sample %q precedes its TYPE declaration", line)
		}
	}

	st := srv.Ingestor().Stats()
	tot := st.Totals()
	if tot.Pushed == 0 || st.Actions == 0 {
		t.Fatalf("test produced no traffic: %+v", tot)
	}
	want := map[string]float64{
		"fadewich_ingest_pushed_ticks_total":     float64(tot.Pushed),
		"fadewich_ingest_dispatched_ticks_total": float64(tot.Dispatched),
		"fadewich_ingest_dropped_ticks_total":    float64(tot.Dropped),
		"fadewich_ingest_queue_depth":            float64(tot.Depth),
		"fadewich_ingest_batches_total":          float64(st.Batches),
		"fadewich_ingest_actions_total":          float64(st.Actions),
		"fadewich_offices_desired":               2,
		"fadewich_offices_live":                  2,
		"fadewich_spec_generation":               1,
		"fadewich_spec_generation_lag":           0,
		"fadewich_reconciles_total":              0,
		"fadewich_reconcile_errors_total":        0,
		"fadewich_actions_subscribers":           0,
	}
	frames, actions, _ := srv.bcast.Stats()
	want["fadewich_actions_frames_total"] = float64(frames)
	want["fadewich_actions_broadcast_total"] = float64(actions)
	if actions != st.Actions {
		t.Fatalf("broadcaster carried %d actions, ingestor produced %d", actions, st.Actions)
	}

	sst := srv.Segment().Stats()
	var sealedFrames, sealedBytes float64
	for _, info := range srv.Segment().Sealed() {
		sealedFrames += float64(info.Frames)
		sealedBytes += float64(info.Bytes)
	}
	want["fadewich_segment_frames_total"] = float64(sst.Frames)
	want["fadewich_segment_bytes_total"] = float64(sst.Bytes)
	want["fadewich_segment_sealed_segments"] = float64(sst.Sealed)
	want["fadewich_segment_sealed_frames_total"] = sealedFrames
	want["fadewich_segment_sealed_bytes_total"] = sealedBytes
	if sst.Frames == 0 || uint64(sst.Frames) != frames {
		t.Fatalf("segment log holds %d frames, broadcaster saw %d", sst.Frames, frames)
	}

	fst := srv.Forwarder().Stats()
	want["fadewich_forward_frames_total"] = float64(fst.Frames)
	if uint64(fst.Frames) != frames {
		t.Fatalf("forward sink delivered %d frames, broadcaster saw %d", fst.Frames, frames)
	}

	for name, v := range want {
		got, ok := flat[name]
		if !ok {
			t.Errorf("metric %s missing", name)
			continue
		}
		if got != v {
			t.Errorf("metric %s = %g, want %g", name, got, v)
		}
	}
	// The build-info gauge names the vmath dispatch path the process
	// actually selected.
	biKey := fmt.Sprintf(`fadewich_build_info{vmath=%q}`, vmath.ActivePath())
	if got := labelled[biKey]; got != 1 {
		t.Errorf("%s = %g, want 1", biKey, got)
	}
	// Per-office series carry the spec names as labels.
	for _, name := range []string{"a", "b"} {
		id, _ := srv.Reconciler().IDOf(name)
		var ost stream.OfficeStats
		for _, o := range st.Offices {
			if o.Office == id {
				ost = o
			}
		}
		key := fmt.Sprintf(`fadewich_office_pushed_ticks_total{office=%q}`, name)
		if got := labelled[key]; got != float64(ost.Pushed) {
			t.Errorf("%s = %g, want %d", key, got, ost.Pushed)
		}
	}
}

// TestConcurrentTicksAndReload is the churn/race test: 8 concurrent
// tick POSTers drive the fleet by office name while the spec file is
// rewritten and reloaded in a loop. Run under -race -count=3 in CI.
// Afterwards membership must equal the final spec and the ingestor's
// accounting must balance exactly: every accepted tick is either
// dispatched or attributed to a drop — nothing leaks through
// membership churn (Stats.Retired folds removed offices' counters).
func TestConcurrentTicksAndReload(t *testing.T) {
	srv, path := newTestServer(t, specJSON("a", "b", "c", "d"), func(c *Config) {
		c.BatchTicks = 8 // dispatch concurrently with the POSTers
		c.Queue = 1024
	})

	specA := specJSON("a", "b", "c", "d")
	// Variant B removes d, retunes c and adds e — every reload is a
	// remove+update+add churn step.
	specB := `{"defaults": {"layout": "small", "sensors": 2}, "offices": [` +
		`{"name": "a"}, {"name": "b"}, {"name": "c", "md_tau": 5}, {"name": "e"}]}`

	union := []string{"a", "b", "c", "d", "e"}
	var accepted atomic.Uint64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			src := rng.New(uint64(100 + p))
			<-start
			for i := 0; i < 40; i++ {
				office := union[(p+i)%len(union)]
				rr := post(srv, "/v1/ticks", "", rssiLines(office, 4, 0.5, src))
				var res ingestResult
				if err := json.Unmarshal(rr.Body.Bytes(), &res); err != nil {
					t.Errorf("producer %d: response %q: %v", p, rr.Body.String(), err)
					return
				}
				accepted.Add(uint64(res.AcceptedTicks))
			}
		}(p)
	}

	close(start)
	for i := 0; i < 25; i++ {
		spec := specA
		if i%2 == 0 {
			spec = specB
		}
		if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
			t.Fatal(err)
		}
		if rr := post(srv, "/v1/reload", "", ""); rr.Code != http.StatusOK {
			t.Fatalf("reload %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
	}
	wg.Wait()

	// Converge on the final membership and drain the queues.
	if err := os.WriteFile(path, []byte(specA), 0o644); err != nil {
		t.Fatal(err)
	}
	if rr := post(srv, "/v1/reload", "", ""); rr.Code != http.StatusOK {
		t.Fatalf("final reload: status %d: %s", rr.Code, rr.Body.String())
	}
	if err := srv.Ingestor().Flush(); err != nil {
		t.Fatal(err)
	}

	rst, reports := srv.Reconciler().Status()
	if rst.Errors != 0 {
		t.Fatalf("reconcile errors under churn: %+v", rst)
	}
	var liveNames []string
	seen := make(map[int]bool)
	for _, rep := range reports {
		liveNames = append(liveNames, rep.Name)
		if seen[rep.ID] {
			t.Fatalf("office ID %d assigned twice", rep.ID)
		}
		seen[rep.ID] = true
	}
	if want := []string{"a", "b", "c", "d"}; len(liveNames) != 4 {
		t.Fatalf("live = %v, want %v", liveNames, want)
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		if _, ok := srv.Reconciler().IDOf(name); !ok {
			t.Fatalf("office %q dropped during churn (live: %v)", name, liveNames)
		}
	}

	tot := srv.Ingestor().Stats().Totals()
	if tot.Pushed != accepted.Load() {
		t.Fatalf("pushed %d ticks, POSTers were told %d were accepted", tot.Pushed, accepted.Load())
	}
	if tot.Pushed != tot.Dispatched+tot.Dropped+uint64(tot.Depth) {
		t.Fatalf("accounting leak: pushed %d != dispatched %d + dropped %d + depth %d",
			tot.Pushed, tot.Dispatched, tot.Dropped, tot.Depth)
	}
	if tot.Depth != 0 {
		t.Fatalf("queues not drained after flush: %+v", tot)
	}
}
