package serve

import (
	"reflect"
	"strings"
	"testing"

	"fadewich/internal/core"
)

// rc is a shorthand resolved config for differ tables: distinguishable
// by Streams without building full systems.
func rc(streams int) core.Config {
	return core.Config{DT: 0.2, Streams: streams, Workstations: 2}
}

func names(d Diff) (adds, removes, updates, keeps []string) {
	for _, a := range d.Adds {
		adds = append(adds, a.Name)
	}
	for _, r := range d.Removes {
		removes = append(removes, r.Name)
	}
	for _, u := range d.Updates {
		updates = append(updates, u.New.Name)
	}
	for _, k := range d.Keeps {
		keeps = append(keeps, k.Name)
	}
	return
}

func TestComputeDiff(t *testing.T) {
	cases := []struct {
		name    string
		desired []ResolvedOffice
		live    []LiveOffice
		adds    []string
		removes []string
		updates []string
		keeps   []string
	}{
		{
			name:    "no-op",
			desired: []ResolvedOffice{{Name: "a", Config: rc(6)}, {Name: "b", Config: rc(12)}},
			live:    []LiveOffice{{Name: "a", ID: 0, Config: rc(6)}, {Name: "b", ID: 1, Config: rc(12)}},
			keeps:   []string{"a", "b"},
		},
		{
			name:    "add",
			desired: []ResolvedOffice{{Name: "a", Config: rc(6)}, {Name: "b", Config: rc(6)}, {Name: "c", Config: rc(6)}},
			live:    []LiveOffice{{Name: "a", ID: 0, Config: rc(6)}},
			adds:    []string{"b", "c"},
			keeps:   []string{"a"},
		},
		{
			name:    "remove",
			desired: []ResolvedOffice{{Name: "b", Config: rc(6)}},
			live:    []LiveOffice{{Name: "a", ID: 0, Config: rc(6)}, {Name: "b", ID: 1, Config: rc(6)}, {Name: "c", ID: 2, Config: rc(6)}},
			removes: []string{"a", "c"},
			keeps:   []string{"b"},
		},
		{
			name:    "config change",
			desired: []ResolvedOffice{{Name: "a", Config: rc(20)}},
			live:    []LiveOffice{{Name: "a", ID: 0, Config: rc(6)}},
			updates: []string{"a"},
		},
		{
			name: "mixed churn",
			desired: []ResolvedOffice{
				{Name: "keep", Config: rc(6)},
				{Name: "retune", Config: rc(20)},
				{Name: "new", Config: rc(6)},
			},
			live: []LiveOffice{
				{Name: "gone", ID: 0, Config: rc(6)},
				{Name: "keep", ID: 1, Config: rc(6)},
				{Name: "retune", ID: 2, Config: rc(6)},
			},
			adds:    []string{"new"},
			removes: []string{"gone"},
			updates: []string{"retune"},
			keeps:   []string{"keep"},
		},
		{
			name:    "reorder alone changes nothing",
			desired: []ResolvedOffice{{Name: "b", Config: rc(12)}, {Name: "a", Config: rc(6)}},
			live:    []LiveOffice{{Name: "a", ID: 0, Config: rc(6)}, {Name: "b", ID: 1, Config: rc(12)}},
			keeps:   []string{"a", "b"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := ComputeDiff(tc.desired, tc.live)
			adds, removes, updates, keeps := names(d)
			if !reflect.DeepEqual(adds, tc.adds) {
				t.Errorf("adds = %v, want %v", adds, tc.adds)
			}
			if !reflect.DeepEqual(removes, tc.removes) {
				t.Errorf("removes = %v, want %v", removes, tc.removes)
			}
			if !reflect.DeepEqual(updates, tc.updates) {
				t.Errorf("updates = %v, want %v", updates, tc.updates)
			}
			if !reflect.DeepEqual(keeps, tc.keeps) {
				t.Errorf("keeps = %v, want %v", keeps, tc.keeps)
			}
			wantEmpty := len(tc.adds) == 0 && len(tc.removes) == 0 && len(tc.updates) == 0
			if d.Empty() != wantEmpty {
				t.Errorf("Empty() = %v, want %v", d.Empty(), wantEmpty)
			}
		})
	}
}

func TestComputeDiffOrdering(t *testing.T) {
	// Removes come back ascending by live ID regardless of input order;
	// adds and updates keep spec order. This is the documented apply
	// order that makes ID assignment predictable.
	desired := []ResolvedOffice{
		{Name: "z-add", Config: rc(6)},
		{Name: "up2", Config: rc(20)},
		{Name: "a-add", Config: rc(6)},
		{Name: "up1", Config: rc(20)},
	}
	live := []LiveOffice{
		{Name: "rm-high", ID: 7, Config: rc(6)},
		{Name: "up1", ID: 5, Config: rc(6)},
		{Name: "rm-low", ID: 2, Config: rc(6)},
		{Name: "up2", ID: 3, Config: rc(6)},
	}
	d := ComputeDiff(desired, live)
	adds, removes, updates, _ := names(d)
	if want := []string{"rm-low", "rm-high"}; !reflect.DeepEqual(removes, want) {
		t.Errorf("removes = %v, want ascending-ID %v", removes, want)
	}
	if want := []string{"z-add", "a-add"}; !reflect.DeepEqual(adds, want) {
		t.Errorf("adds = %v, want spec-order %v", adds, want)
	}
	if want := []string{"up2", "up1"}; !reflect.DeepEqual(updates, want) {
		t.Errorf("updates = %v, want spec-order %v", updates, want)
	}
}

// TestReconcilerApply drives the reconciler against a real
// fleet+ingestor and checks the deterministic ID assignment contract:
// removes free nothing, updates and adds take fresh monotonic IDs in
// the documented order.
func TestReconcilerApply(t *testing.T) {
	srv, _ := newTestServer(t, specJSON("a", "b", "c"))
	rec := srv.Reconciler()

	st, _ := rec.Status()
	if st.SpecGeneration != 1 || st.LiveOffices != 3 || st.DesiredOffices != 3 || st.GenerationLag != 0 {
		t.Fatalf("adopted status wrong: %+v", st)
	}
	for i, name := range []string{"a", "b", "c"} {
		if id, ok := rec.IDOf(name); !ok || id != i {
			t.Fatalf("office %q adopted under id %d (ok=%v), want %d", name, id, ok, i)
		}
	}

	// Remove b, retune a (fresh ID), add d: predicted IDs are a→3
	// (update applies before add) and d→4; c keeps 2.
	raw := []byte(`{
		"defaults": {"layout": "small", "sensors": 2},
		"offices": [
			{"name": "a", "md_tau": 4.5},
			{"name": "c"},
			{"name": "d"}
		]
	}`)
	if err := rec.Reconcile(raw); err != nil {
		t.Fatal(err)
	}
	st, reports := rec.Status()
	if st.SpecGeneration != 2 || st.GenerationLag != 0 || st.Reconciles != 1 || st.Errors != 0 {
		t.Fatalf("post-rollout status wrong: %+v", st)
	}
	want := map[string]int{"c": 2, "a": 3, "d": 4}
	if len(reports) != len(want) {
		t.Fatalf("live offices: %v", reports)
	}
	for _, rep := range reports {
		if want[rep.Name] != rep.ID {
			t.Errorf("office %q at id %d, want %d", rep.Name, rep.ID, want[rep.Name])
		}
		if rep.ObservedGeneration != 2 {
			t.Errorf("office %q observed gen %d, want 2", rep.Name, rep.ObservedGeneration)
		}
	}
	byName := make(map[string]OfficeReport)
	for _, rep := range reports {
		byName[rep.Name] = rep
	}
	if tr := byName["a"].Transition; tr != "updated" {
		t.Errorf("a transition %q, want updated", tr)
	}
	if tr := byName["d"].Transition; tr != "added" {
		t.Errorf("d transition %q, want added", tr)
	}
	if tr := byName["c"].Transition; tr != "added" {
		t.Errorf("c transition %q, want its original added", tr)
	}
	if byName["a"].Config.MD.Tau != 4.5 {
		t.Errorf("a rolled out without its new tau: %+v", byName["a"].Config)
	}
	// The updated office restarted in training.
	if ph := srv.Fleet().System(byName["a"].ID).Phase(); ph != core.PhaseTraining {
		t.Errorf("updated office phase %v, want training", ph)
	}
}

// TestReconcilerInvalidSpecAtomic pins the atomicity contract: an
// invalid revision bumps the generation and the error counters but
// leaves membership untouched, and the lag stays up until a valid
// revision lands.
func TestReconcilerInvalidSpecAtomic(t *testing.T) {
	srv, _ := newTestServer(t, specJSON("a", "b"))
	rec := srv.Reconciler()
	before := rec.Live()

	err := rec.Reconcile([]byte(`{"offices": [{"name": "a"}, {"name": "a"}]}`))
	if err == nil {
		t.Fatal("duplicate-name spec applied")
	}
	if !strings.Contains(err.Error(), "generation 2") {
		t.Fatalf("error %q does not name the failing generation", err)
	}
	st, _ := rec.Status()
	if st.SpecGeneration != 2 || st.GenerationLag != 1 || st.Errors != 1 || st.Reconciles != 0 {
		t.Fatalf("failed-revision status wrong: %+v", st)
	}
	if st.LastError == "" {
		t.Fatal("LastError empty after a failed reconcile")
	}
	if got := rec.Live(); !reflect.DeepEqual(got, before) {
		t.Fatalf("membership changed under an invalid spec: %v -> %v", before, got)
	}
	// DesiredOffices still reflects the last valid spec.
	if st.DesiredOffices != 2 {
		t.Fatalf("desired = %d, want 2 from the last valid spec", st.DesiredOffices)
	}

	// Unparseable JSON takes the same path.
	if err := rec.Reconcile([]byte(`{broken`)); err == nil {
		t.Fatal("broken JSON applied")
	}
	st, _ = rec.Status()
	if st.SpecGeneration != 3 || st.GenerationLag != 2 || st.Errors != 2 {
		t.Fatalf("second failed revision status wrong: %+v", st)
	}

	// A valid revision converges and clears the lag and the error.
	if err := rec.Reconcile([]byte(specJSON("a", "b"))); err != nil {
		t.Fatal(err)
	}
	st, _ = rec.Status()
	if st.SpecGeneration != 4 || st.GenerationLag != 0 || st.LastError != "" {
		t.Fatalf("recovery status wrong: %+v", st)
	}
}

// TestReconcilerNoOp pins that unchanged content with a healthy loop
// does not count as a reconcile, while re-presenting the same content
// after a failure retries it.
func TestReconcilerNoOp(t *testing.T) {
	srv, _ := newTestServer(t, specJSON("a"))
	rec := srv.Reconciler()

	if err := rec.Reconcile([]byte(specJSON("a"))); err != nil {
		t.Fatal(err)
	}
	st, _ := rec.Status()
	// Content differs from the adopted file only if specJSON matches it
	// exactly — it does, so this was a pure no-op.
	if st.Reconciles != 0 {
		t.Fatalf("no-op counted as a reconcile: %+v", st)
	}

	if err := rec.Fail(errSentinel); err == nil {
		t.Fatal("Fail returned nil")
	}
	// Same content again: lastErr forces a retry despite the unchanged
	// hash, and the retry heals the loop.
	if err := rec.Reconcile([]byte(specJSON("a"))); err != nil {
		t.Fatal(err)
	}
	st, _ = rec.Status()
	if st.Reconciles != 1 || st.LastError != "" {
		t.Fatalf("post-retry status wrong: %+v", st)
	}
}
