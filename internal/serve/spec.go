// Package serve is the control plane that turns the single-process
// stack into a long-running service: it hosts a live engine.Fleet
// behind a stream.Ingestor and drives fleet membership *declaratively*
// from a fleet-spec file, the operator pattern applied to our elastic
// multi-tenancy. The spec says which offices should exist and how each
// is configured; a reconcile loop diffs that desired state against
// live membership and applies AddOffice/RemoveOffice/config rollouts
// at batch boundaries, recording per-office observed generation and
// last-transition status. The HTTP surface (POST /v1/ticks,
// GET /v1/actions, GET /v1/offices, POST /v1/train, POST /v1/reload,
// GET /metrics) is the service face of the same fleet the batch tools
// drive synchronously — and the end-to-end tests hold it to the same
// standard: the action stream served over HTTP is byte-identical to a
// synchronous reference run of the same ticks.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"fadewich/internal/core"
	"fadewich/internal/md"
	"fadewich/internal/office"
)

// OfficeSpec describes one desired office in a fleet spec. The
// field names are the -office-config schema of fadewich-sim, plus the
// identity and training knobs a long-running service needs. Zero
// fields inherit the spec's defaults block; zero again after that
// means "library default".
type OfficeSpec struct {
	// Name is the office's stable identity across spec revisions: the
	// reconciler matches desired to live offices by name. Required,
	// unique within a spec (ignored in the defaults block).
	Name string `json:"name"`
	// Layout names the floor plan: paper (default), small or wide.
	Layout string `json:"layout"`
	// Sensors is the number of sensors deployed (0 selects the layout's
	// full set). The office monitors sensors·(sensors−1) RSSI streams.
	Sensors int `json:"sensors"`
	// Seed is accepted for -office-config compatibility (simulators use
	// it to derive datasets); the serve daemon itself has no use for it
	// — ticks arrive over HTTP, already generated.
	Seed uint64 `json:"seed"`
	// DT is the RSSI sampling period in seconds (0 selects the paper's
	// 0.2 s).
	DT float64 `json:"dt"`
	// MDStdWindowSec, MDAlpha and MDTau override the movement
	// detector's rolling std-dev window d, anomaly tail percentage α
	// and profile-update rejection threshold τ.
	MDStdWindowSec float64 `json:"md_std_window_sec"`
	MDAlpha        float64 `json:"md_alpha"`
	MDTau          float64 `json:"md_tau"`
	// MinTrainingSamples overrides the smallest labelled sample count
	// FinishTraining will accept (0 selects the core default).
	MinTrainingSamples int `json:"min_training_samples"`
	// GID is the office's cluster-wide global ID, stamped into worker
	// sub-specs by the shard coordinator (see internal/cluster): the
	// office ID its actions carry on the forwarded wire stream, so the
	// routed cross-worker stream uses one consistent ID space. Absent
	// in single-process specs; when present, must be unique and
	// non-negative. Not an inheritable default (ignored in the
	// defaults block).
	GID *int `json:"gid,omitempty"`
}

// Spec is the declarative fleet description the serve daemon reconciles
// against: the desired offices, in order, with a shared defaults block.
// Office order matters operationally — rollouts apply config updates
// and additions in spec order, so office IDs assign deterministically —
// but identity is by name, so reordering alone changes nothing.
type Spec struct {
	// Defaults seeds every office's zero fields (its Name and Seed are
	// ignored).
	Defaults OfficeSpec `json:"defaults"`
	// Offices is the desired membership. At least one.
	Offices []OfficeSpec `json:"offices"`
}

// ResolvedOffice is one desired office after defaulting and
// validation: its stable name and the fully-resolved System
// configuration the fleet will run it under. Config is a comparable
// struct, so "did this office's configuration change between spec
// revisions" is plain equality.
type ResolvedOffice struct {
	Name   string
	Config core.Config
	// GID is the cluster-wide global ID from the spec's gid field, or
	// -1 when the spec carries none (the single-process case).
	GID int
}

// ParseSpec decodes a fleet spec from JSON. Unknown fields are
// rejected — a typo in an operator-maintained file must fail loudly,
// not silently configure nothing.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("serve: fleet spec: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return nil, fmt.Errorf("serve: fleet spec: trailing data after the spec object")
	}
	return &s, nil
}

// LoadSpec reads and parses a fleet-spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: fleet spec: %w", err)
	}
	return ParseSpec(data)
}

// layoutByName maps the spec layout spelling to a floor plan.
func layoutByName(name string) (*office.Layout, error) {
	switch name {
	case "", "paper":
		return office.Paper(), nil
	case "small":
		return office.Small(), nil
	case "wide":
		return office.Wide(), nil
	default:
		return nil, fmt.Errorf("unknown layout %q (want paper, small or wide)", name)
	}
}

// orDefault returns v unless it is the zero value, else d.
func orDefault[T comparable](v, d T) T {
	var zero T
	if v == zero {
		return d
	}
	return v
}

// Resolve validates the whole spec and resolves every office into its
// System configuration. It is all-or-nothing: any invalid office fails
// the entire spec, so a reconciler that resolves before touching live
// membership gets atomic validate-then-apply for free. Each resolved
// configuration is additionally dry-run through core.NewSystem, so a
// spec that Resolve accepts cannot fail later at AddOffice time.
// An office-less spec resolves to an empty slice: whether that is
// acceptable is the caller's policy (a coordinator-assigned worker
// shard may legitimately be empty; a single-process daemon rejects it
// unless Config.AllowEmpty is set).
func (s *Spec) Resolve() ([]ResolvedOffice, error) {
	seen := make(map[string]int, len(s.Offices))
	seenGID := make(map[int]int, len(s.Offices))
	out := make([]ResolvedOffice, 0, len(s.Offices))
	for i, o := range s.Offices {
		fail := func(err error) ([]ResolvedOffice, error) {
			return nil, fmt.Errorf("serve: fleet spec: office %d (%q): %w", i, o.Name, err)
		}
		if o.Name == "" {
			return fail(fmt.Errorf("missing name"))
		}
		if prev, dup := seen[o.Name]; dup {
			return fail(fmt.Errorf("duplicate name (first used by office %d)", prev))
		}
		seen[o.Name] = i

		gid := -1
		if o.GID != nil {
			gid = *o.GID
			if gid < 0 {
				return fail(fmt.Errorf("negative gid %d", gid))
			}
			if prev, dup := seenGID[gid]; dup {
				return fail(fmt.Errorf("duplicate gid %d (first used by office %d)", gid, prev))
			}
			seenGID[gid] = i
		}

		layout, err := layoutByName(orDefault(o.Layout, s.Defaults.Layout))
		if err != nil {
			return fail(err)
		}
		sensors := orDefault(o.Sensors, s.Defaults.Sensors)
		if sensors == 0 {
			sensors = layout.NumSensors()
		}
		if _, err := layout.SensorSubset(sensors); err != nil {
			return fail(err)
		}
		cfg := core.Config{
			DT:           orDefault(o.DT, s.Defaults.DT),
			Streams:      sensors * (sensors - 1),
			Workstations: layout.NumWorkstations(),
			MD: md.Config{
				StdWindowSec: orDefault(o.MDStdWindowSec, s.Defaults.MDStdWindowSec),
				Alpha:        orDefault(o.MDAlpha, s.Defaults.MDAlpha),
				Tau:          orDefault(o.MDTau, s.Defaults.MDTau),
			},
			MinTrainingSamples: orDefault(o.MinTrainingSamples, s.Defaults.MinTrainingSamples),
		}
		if _, err := core.NewSystem(cfg); err != nil {
			return fail(err)
		}
		out = append(out, ResolvedOffice{Name: o.Name, Config: cfg, GID: gid})
	}
	return out, nil
}
