package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"fadewich/internal/core"
	"fadewich/internal/stream"
)

// LiveOffice is one current fleet member as the reconciler tracks it:
// its spec name, its stable fleet ID and the configuration it is
// running under.
type LiveOffice struct {
	Name   string
	ID     int
	Config core.Config
	// GID is the office's cluster-wide global ID from the spec (-1 in a
	// single-process fleet). A gid change alone forces an update: the
	// coordinator assigns a fresh gid whenever an office moves workers,
	// and the replaced instance is what keeps the forwarded ID space
	// consistent with the reference fleet.
	GID int
}

// Diff is the reconcile plan between a desired spec and live
// membership. Apply order is fixed and documented, because office IDs
// are assigned by a monotonic counter and operators (and the e2e
// reference harness) must be able to predict them: first Removes in
// ascending live-ID order, then Updates in spec order (each a
// RemoveOffice of the old instance followed immediately by an
// AddOffice of the new configuration — a config rollout restarts the
// office's System under a fresh ID, back in the training phase), then
// Adds in spec order.
type Diff struct {
	// Adds are desired offices with no live counterpart, in spec order.
	Adds []ResolvedOffice
	// Removes are live offices no longer desired, ascending by ID.
	Removes []LiveOffice
	// Updates are desired offices whose live counterpart runs a
	// different configuration, in spec order; Old names the live
	// instance being replaced.
	Updates []Update
	// Keeps are live offices already matching their desired
	// configuration, ascending by ID.
	Keeps []LiveOffice
}

// Update pairs a live office with the new configuration that replaces
// it.
type Update struct {
	Old LiveOffice
	New ResolvedOffice
}

// Empty reports whether the diff changes nothing.
func (d Diff) Empty() bool {
	return len(d.Adds) == 0 && len(d.Removes) == 0 && len(d.Updates) == 0
}

// ComputeDiff is the pure reconcile differ: desired spec (resolved, in
// spec order) versus live membership, matched by office name. It
// touches nothing — it only plans.
func ComputeDiff(desired []ResolvedOffice, live []LiveOffice) Diff {
	byName := make(map[string]LiveOffice, len(live))
	for _, l := range live {
		byName[l.Name] = l
	}
	wanted := make(map[string]bool, len(desired))
	var d Diff
	for _, want := range desired {
		wanted[want.Name] = true
		cur, ok := byName[want.Name]
		switch {
		case !ok:
			d.Adds = append(d.Adds, want)
		case cur.Config != want.Config || cur.GID != want.GID:
			d.Updates = append(d.Updates, Update{Old: cur, New: want})
		default:
			d.Keeps = append(d.Keeps, cur)
		}
	}
	for _, l := range live {
		if !wanted[l.Name] {
			d.Removes = append(d.Removes, l)
		}
	}
	sort.Slice(d.Removes, func(i, j int) bool { return d.Removes[i].ID < d.Removes[j].ID })
	sort.Slice(d.Keeps, func(i, j int) bool { return d.Keeps[i].ID < d.Keeps[j].ID })
	return d
}

// liveEntry is the reconciler's record of one live office.
type liveEntry struct {
	LiveOffice
	// observedGen is the spec generation this office last matched.
	observedGen uint64
	// transition is the last membership event that produced this
	// instance ("added" or "updated"), and since its wall-clock time.
	transition string
	since      time.Time
}

// Reconciler owns the desired-vs-live loop: it tracks the spec
// generation (bumped whenever the raw spec content changes, valid or
// not), the live offices with their observed generations, and applies
// diffs through the Ingestor so every membership change lands at a
// batch boundary. All methods are safe for concurrent use.
type Reconciler struct {
	mu sync.Mutex
	// allowEmpty mirrors Config.AllowEmpty: whether a reload may take
	// the fleet down to zero offices (a worker's shard can empty out).
	allowEmpty bool
	ing        *stream.Ingestor
	now        func() time.Time
	gen        uint64
	hash       uint64
	live       map[string]*liveEntry
	desired    int
	// byLocal maps local fleet ID → gid, append-only: fleet IDs are
	// assigned by a monotonic counter and never reused, so a reader may
	// consult this map for an office that was just removed (the sink
	// pump races reconciles) and still get the right answer. Only
	// populated for offices whose spec carries a gid.
	byLocal map[int]int

	reconciles uint64
	errorCount uint64
	lastErr    error
	lastDur    time.Duration
}

// specHash fingerprints raw spec content; a changed fingerprint is what
// defines "a new spec generation".
func specHash(raw []byte) uint64 {
	h := fnv.New64a()
	h.Write(raw)
	return h.Sum64()
}

// newReconciler adopts the server's initial fleet: resolved office i is
// live under ID ids[i], at generation 1 of the given raw spec content.
func newReconciler(ing *stream.Ingestor, resolved []ResolvedOffice, ids []int, raw []byte, allowEmpty bool) *Reconciler {
	r := &Reconciler{
		allowEmpty: allowEmpty,
		ing:        ing,
		now:        time.Now,
		gen:        1,
		hash:       specHash(raw),
		live:       make(map[string]*liveEntry, len(resolved)),
		desired:    len(resolved),
		byLocal:    make(map[int]int),
	}
	t := r.now()
	for i, ro := range resolved {
		r.live[ro.Name] = &liveEntry{
			LiveOffice:  LiveOffice{Name: ro.Name, ID: ids[i], Config: ro.Config, GID: ro.GID},
			observedGen: 1,
			transition:  "added",
			since:       t,
		}
		if ro.GID >= 0 {
			r.byLocal[ids[i]] = ro.GID
		}
	}
	return r
}

// GlobalID resolves a local fleet ID to the cluster-wide gid its office
// was specced with. The mapping is append-only (fleet IDs are never
// reused), so it stays correct even when the lookup races a reconcile
// that has already removed the office.
func (r *Reconciler) GlobalID(local int) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	gid, ok := r.byLocal[local]
	return gid, ok
}

// Live returns the live offices, ascending by ID.
func (r *Reconciler) Live() []LiveOffice {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.liveLocked()
}

func (r *Reconciler) liveLocked() []LiveOffice {
	out := make([]LiveOffice, 0, len(r.live))
	for _, e := range r.live {
		out = append(out, e.LiveOffice)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDOf resolves an office name to its current fleet ID.
func (r *Reconciler) IDOf(name string) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.live[name]
	if !ok {
		return 0, false
	}
	return e.ID, true
}

// Reconcile drives one loop iteration from raw spec content: bump the
// generation if the content changed, validate and resolve it
// atomically (an invalid spec leaves live membership untouched and
// counts as a reconcile error against the new generation), diff
// against live membership, and apply the plan through the ingestor in
// the documented order. Unchanged content with a healthy last
// reconcile is a no-op.
func (r *Reconciler) Reconcile(raw []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := specHash(raw); h != r.hash {
		r.hash = h
		r.gen++
	} else if r.lastErr == nil {
		return nil
	}
	spec, err := ParseSpec(raw)
	var resolved []ResolvedOffice
	if err == nil {
		resolved, err = spec.Resolve()
	}
	if err == nil && len(resolved) == 0 && !r.allowEmpty {
		err = fmt.Errorf("serve: fleet spec: no offices (the fleet needs at least one)")
	}
	if err != nil {
		return r.failLocked(err)
	}

	start := r.now()
	diff := ComputeDiff(resolved, r.liveLocked())
	for _, rm := range diff.Removes {
		if _, err := r.ing.RemoveOffice(rm.ID); err != nil {
			return r.failLocked(fmt.Errorf("remove office %q (id %d): %w", rm.Name, rm.ID, err))
		}
		delete(r.live, rm.Name)
	}
	for _, up := range diff.Updates {
		if _, err := r.ing.RemoveOffice(up.Old.ID); err != nil {
			return r.failLocked(fmt.Errorf("update office %q: remove id %d: %w", up.Old.Name, up.Old.ID, err))
		}
		delete(r.live, up.Old.Name)
		id, err := r.ing.AddOffice(up.New.Config)
		if err != nil {
			return r.failLocked(fmt.Errorf("update office %q: add: %w", up.New.Name, err))
		}
		r.live[up.New.Name] = &liveEntry{
			LiveOffice: LiveOffice{Name: up.New.Name, ID: id, Config: up.New.Config, GID: up.New.GID},
			transition: "updated",
			since:      r.now(),
		}
		if up.New.GID >= 0 {
			r.byLocal[id] = up.New.GID
		}
	}
	for _, ad := range diff.Adds {
		id, err := r.ing.AddOffice(ad.Config)
		if err != nil {
			return r.failLocked(fmt.Errorf("add office %q: %w", ad.Name, err))
		}
		r.live[ad.Name] = &liveEntry{
			LiveOffice: LiveOffice{Name: ad.Name, ID: id, Config: ad.Config, GID: ad.GID},
			transition: "added",
			since:      r.now(),
		}
		if ad.GID >= 0 {
			r.byLocal[id] = ad.GID
		}
	}
	for _, e := range r.live {
		e.observedGen = r.gen
	}
	r.desired = len(resolved)
	r.lastDur = r.now().Sub(start)
	r.reconciles++
	r.lastErr = nil
	return nil
}

// failLocked records a reconcile failure (spec unreadable, invalid, or
// an apply step refused) without rolling the generation back: the live
// offices keep their previous observed generation, which is exactly
// what the generation-lag gauge reports.
func (r *Reconciler) failLocked(err error) error {
	err = fmt.Errorf("serve: reconcile generation %d: %w", r.gen, err)
	r.lastErr = err
	r.errorCount++
	return err
}

// Fail records an out-of-band reconcile failure (the caller could not
// even produce spec content — e.g. the spec file vanished).
func (r *Reconciler) Fail(err error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failLocked(err)
}

// ReconcileStatus is the reconcile loop's own health, as surfaced by
// /v1/offices and /metrics.
type ReconcileStatus struct {
	// SpecGeneration counts observed revisions of the spec content,
	// starting at 1; GenerationLag is how far the oldest live office
	// trails it (non-zero while a revision has not been fully applied —
	// an invalid revision keeps the lag up until it is fixed).
	SpecGeneration uint64
	GenerationLag  uint64
	// DesiredOffices is the office count of the last *valid* spec; with
	// a healthy loop LiveOffices equals it.
	DesiredOffices int
	LiveOffices    int
	// Reconciles counts applied reconciles (no-ops excluded), Errors
	// the failed ones; LastDuration is the wall-clock cost of the last
	// applied diff and LastError the current failure ("" when healthy).
	Reconciles   uint64
	Errors       uint64
	LastDuration time.Duration
	LastError    string
}

// OfficeReport is one live office's reconcile-side status.
type OfficeReport struct {
	Name               string
	ID                 int
	Config             core.Config
	ObservedGeneration uint64
	Transition         string
	Since              time.Time
	// GID is the office's cluster-wide global ID, -1 outside a cluster.
	GID int
}

// Status snapshots the loop health and the per-office reports,
// ascending by ID.
func (r *Reconciler) Status() (ReconcileStatus, []OfficeReport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := ReconcileStatus{
		SpecGeneration: r.gen,
		DesiredOffices: r.desired,
		LiveOffices:    len(r.live),
		Reconciles:     r.reconciles,
		Errors:         r.errorCount,
		LastDuration:   r.lastDur,
	}
	if r.lastErr != nil {
		st.LastError = r.lastErr.Error()
	}
	offices := make([]OfficeReport, 0, len(r.live))
	for _, e := range r.live {
		offices = append(offices, OfficeReport{
			Name:               e.Name,
			ID:                 e.ID,
			Config:             e.Config,
			ObservedGeneration: e.observedGen,
			Transition:         e.transition,
			Since:              e.since,
			GID:                e.GID,
		})
		if lag := r.gen - e.observedGen; lag > st.GenerationLag {
			st.GenerationLag = lag
		}
	}
	sort.Slice(offices, func(i, j int) bool { return offices[i].ID < offices[j].ID })
	return st, offices
}
