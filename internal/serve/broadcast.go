package serve

import (
	"errors"
	"sync"

	"fadewich/internal/engine"
	"fadewich/internal/stream"
	"fadewich/internal/wire"
)

// broadcaster is the stream.Sink behind GET /v1/actions: every
// dispatched batch is encoded as one wire frame per requested
// (codec, compressed?) variant and fanned out to the connected
// subscribers' buffered channels. As a stream.FrameSink it pulls those
// variants from the dispatch cycle's shared EncodedBatch, so a variant
// the segment log or another member already encoded is never encoded
// again.
//
// Delivery is at-most-once per subscriber with a hard overflow rule: a
// subscriber whose channel is full when a frame arrives is dropped
// (its channel closed, the handler disconnects the client). A slow
// consumer must never stall the pump goroutine — durability is the
// segment log's job; a dropped subscriber replays from there and
// re-subscribes. Frames handed to channels are freshly allocated and
// shared read-only between same-variant subscribers.
type broadcaster struct {
	mu        sync.Mutex
	subs      map[*subscriber]struct{}
	closed    bool
	frames    uint64
	actions   uint64
	overflows uint64
	bytes     uint64 // logical bytes handed to channels
	wireBytes uint64 // on-the-wire bytes handed to channels
}

// subscriber is one /v1/actions connection.
type subscriber struct {
	ch       chan []byte
	codec    wire.Version
	compress bool
}

// errBroadcasterClosed distinguishes "server shutting down" from a
// write failure.
var errBroadcasterClosed = errors.New("serve: action broadcaster closed")

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[*subscriber]struct{})}
}

// Subscribe registers a consumer with room for buffer in-flight
// frames; compress requests FlagCompressed frames (small or
// incompressible batches still arrive plain).
func (b *broadcaster) Subscribe(codec wire.Version, compress bool, buffer int) (*subscriber, error) {
	if codec != wire.V1JSONL && codec != wire.V2Binary {
		return nil, errors.New("serve: unknown action codec")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, errBroadcasterClosed
	}
	s := &subscriber{ch: make(chan []byte, buffer), codec: codec, compress: compress}
	b.subs[s] = struct{}{}
	return s, nil
}

// Unsubscribe removes a consumer. Safe to call after an overflow drop
// or Close already removed it.
func (b *broadcaster) Unsubscribe(s *subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[s]; ok {
		delete(b.subs, s)
		close(s.ch)
	}
}

// Subscribers returns the current consumer count.
func (b *broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Stats returns frames broadcast, actions carried and subscribers
// dropped to overflow.
func (b *broadcaster) Stats() (frames, actions, overflows uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.frames, b.actions, b.overflows
}

// ByteStats returns the logical and on-the-wire bytes of broadcast
// frames, counting each encoded variant once per cycle.
func (b *broadcaster) ByteStats() (logical, wireBytes uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytes, b.wireBytes
}

// Write implements stream.Sink on the ingestor's pump goroutine; a
// broadcaster outside an encode-once fan-out encodes its own variants.
func (b *broadcaster) Write(batch []engine.OfficeAction) error {
	return b.WriteEncoded(stream.NewEncodedBatch(batch))
}

// WriteEncoded implements stream.FrameSink: each subscriber's
// (codec, compressed) variant is pulled from the cycle's shared
// EncodedBatch — encoded at most once across the whole fan-out — and
// handed to same-variant subscribers read-only.
func (b *broadcaster) WriteEncoded(e *stream.EncodedBatch) error {
	batch := e.Batch()
	if len(batch) == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return stream.ErrSinkClosed
	}
	b.frames++
	b.actions += uint64(len(batch))
	var seen [3][2]bool
	for s := range b.subs {
		f, err := e.Frame(s.codec, s.compress)
		if err != nil {
			return err
		}
		ci := 0
		if s.compress {
			ci = 1
		}
		if !seen[s.codec][ci] {
			seen[s.codec][ci] = true
			b.bytes += uint64(f.Logical)
			b.wireBytes += uint64(len(f.Wire))
		}
		select {
		case s.ch <- f.Wire:
		default:
			delete(b.subs, s)
			close(s.ch)
			b.overflows++
		}
	}
	return nil
}

// Close ends every subscription (channels close, handlers return) and
// refuses further writes. Idempotent.
func (b *broadcaster) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for s := range b.subs {
		delete(b.subs, s)
		close(s.ch)
	}
	return nil
}
