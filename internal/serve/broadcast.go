package serve

import (
	"errors"
	"sync"

	"fadewich/internal/engine"
	"fadewich/internal/stream"
	"fadewich/internal/wire"
)

// broadcaster is the stream.Sink behind GET /v1/actions: every
// dispatched batch is encoded as one wire frame per requested codec
// and fanned out to the connected subscribers' buffered channels.
//
// Delivery is at-most-once per subscriber with a hard overflow rule: a
// subscriber whose channel is full when a frame arrives is dropped
// (its channel closed, the handler disconnects the client). A slow
// consumer must never stall the pump goroutine — durability is the
// segment log's job; a dropped subscriber replays from there and
// re-subscribes. Frames handed to channels are freshly allocated and
// shared read-only between same-codec subscribers.
type broadcaster struct {
	mu        sync.Mutex
	subs      map[*subscriber]struct{}
	closed    bool
	frames    uint64
	actions   uint64
	overflows uint64
}

// subscriber is one /v1/actions connection.
type subscriber struct {
	ch    chan []byte
	codec wire.Version
}

// errBroadcasterClosed distinguishes "server shutting down" from a
// write failure.
var errBroadcasterClosed = errors.New("serve: action broadcaster closed")

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[*subscriber]struct{})}
}

// Subscribe registers a consumer with room for buffer in-flight
// frames.
func (b *broadcaster) Subscribe(codec wire.Version, buffer int) (*subscriber, error) {
	if codec != wire.V1JSONL && codec != wire.V2Binary {
		return nil, errors.New("serve: unknown action codec")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, errBroadcasterClosed
	}
	s := &subscriber{ch: make(chan []byte, buffer), codec: codec}
	b.subs[s] = struct{}{}
	return s, nil
}

// Unsubscribe removes a consumer. Safe to call after an overflow drop
// or Close already removed it.
func (b *broadcaster) Unsubscribe(s *subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[s]; ok {
		delete(b.subs, s)
		close(s.ch)
	}
}

// Subscribers returns the current consumer count.
func (b *broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Stats returns frames broadcast, actions carried and subscribers
// dropped to overflow.
func (b *broadcaster) Stats() (frames, actions, overflows uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.frames, b.actions, b.overflows
}

// Write implements stream.Sink on the ingestor's pump goroutine.
func (b *broadcaster) Write(batch []engine.OfficeAction) error {
	if len(batch) == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return stream.ErrSinkClosed
	}
	b.frames++
	b.actions += uint64(len(batch))
	// Lazily encode at most one frame per codec version in use; the
	// slice is shared read-only across that codec's subscribers.
	var byCodec [3][]byte
	for s := range b.subs {
		frame := byCodec[s.codec]
		if frame == nil {
			var err error
			frame, err = wire.AppendFrame(nil, s.codec, batch)
			if err != nil {
				return err
			}
			byCodec[s.codec] = frame
		}
		select {
		case s.ch <- frame:
		default:
			delete(b.subs, s)
			close(s.ch)
			b.overflows++
		}
	}
	return nil
}

// Close ends every subscription (channels close, handlers return) and
// refuses further writes. Idempotent.
func (b *broadcaster) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for s := range b.subs {
		delete(b.subs, s)
		close(s.ch)
	}
	return nil
}
