package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"fadewich/internal/vmath"
)

// promWriter accumulates Prometheus text-exposition output without any
// client-library dependency: the format is three line shapes (# HELP,
// # TYPE, sample), which is not worth a module for — and the repo's
// no-new-dependencies stance settles it.
type promWriter struct {
	b strings.Builder
}

// metric emits the HELP/TYPE preamble of one metric family.
func (p *promWriter) metric(name, typ, help string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one unlabelled sample.
func (p *promWriter) sample(name string, v float64) {
	p.b.WriteString(name)
	p.b.WriteByte(' ')
	p.b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	p.b.WriteByte('\n')
}

// labelled emits one sample with a single office label. Label values
// are office names from the spec; escape the three characters the
// format reserves.
func (p *promWriter) labelled(name, office string, v float64) {
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(office)
	fmt.Fprintf(&p.b, "%s{office=%q} %s\n", name, esc, strconv.FormatFloat(v, 'g', -1, 64))
}

// kind emits one sample with a single kind label (fixed, trusted
// values — no escaping needed).
func (p *promWriter) kind(name, kind string, v float64) {
	fmt.Fprintf(&p.b, "%s{kind=%q} %s\n", name, kind, strconv.FormatFloat(v, 'g', -1, 64))
}

// handleMetrics renders the dependency-free GET /metrics endpoint: the
// counters the stream, segment and TCP layers already expose via
// Stats(), plus the reconcile loop's gauges. Counter values are exact
// snapshots of the corresponding Stats() numbers — the metrics test
// holds them equal in a quiesced state.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var p promWriter
	st := s.ing.Stats()
	tot := st.Totals()
	rst, reports := s.rec.Status()

	// The standard build-info idiom: a constant-1 gauge whose labels
	// carry runtime facts — here the vmath dispatch path, so dashboards
	// can tell AVX2 assembly from the portable fallback per instance.
	p.metric("fadewich_build_info", "gauge", "Constant 1; labels describe the running build (vmath = active kernel dispatch path).")
	fmt.Fprintf(&p.b, "fadewich_build_info{vmath=%q} 1\n", vmath.ActivePath())

	p.metric("fadewich_ingest_pushed_ticks_total", "counter", "Ticks accepted into office queues, including retired offices.")
	p.sample("fadewich_ingest_pushed_ticks_total", float64(tot.Pushed))
	p.metric("fadewich_ingest_dispatched_ticks_total", "counter", "Ticks delivered to the fleet, including retired offices.")
	p.sample("fadewich_ingest_dispatched_ticks_total", float64(tot.Dispatched))
	p.metric("fadewich_ingest_dropped_ticks_total", "counter", "Ticks lost to backpressure policy or office retirement.")
	p.sample("fadewich_ingest_dropped_ticks_total", float64(tot.Dropped))
	p.metric("fadewich_ingest_queue_depth", "gauge", "Ticks currently queued across live offices.")
	p.sample("fadewich_ingest_queue_depth", float64(tot.Depth))
	p.metric("fadewich_ingest_batches_total", "counter", "Dispatch cycles that delivered work to the fleet.")
	p.sample("fadewich_ingest_batches_total", float64(st.Batches))
	p.metric("fadewich_ingest_actions_total", "counter", "Merged actions produced by dispatched batches.")
	p.sample("fadewich_ingest_actions_total", float64(st.Actions))
	p.metric("fadewich_office_queue_depth", "gauge", "Ticks currently queued per office.")
	p.metric("fadewich_office_pushed_ticks_total", "counter", "Ticks accepted per office.")
	names := make(map[int]string)
	for _, rep := range reports {
		names[rep.ID] = rep.Name
	}
	for _, o := range st.Offices {
		name, ok := names[o.Office]
		if !ok {
			name = strconv.Itoa(o.Office)
		}
		p.labelled("fadewich_office_queue_depth", name, float64(o.Depth))
	}
	for _, o := range st.Offices {
		name, ok := names[o.Office]
		if !ok {
			name = strconv.Itoa(o.Office)
		}
		p.labelled("fadewich_office_pushed_ticks_total", name, float64(o.Pushed))
	}

	p.metric("fadewich_offices_desired", "gauge", "Office count of the last valid fleet spec.")
	p.sample("fadewich_offices_desired", float64(rst.DesiredOffices))
	p.metric("fadewich_offices_live", "gauge", "Current fleet membership.")
	p.sample("fadewich_offices_live", float64(rst.LiveOffices))
	p.metric("fadewich_spec_generation", "gauge", "Observed revisions of the fleet-spec content.")
	p.sample("fadewich_spec_generation", float64(rst.SpecGeneration))
	p.metric("fadewich_spec_generation_lag", "gauge", "Generations the oldest live office trails the spec.")
	p.sample("fadewich_spec_generation_lag", float64(rst.GenerationLag))
	p.metric("fadewich_reconciles_total", "counter", "Applied reconcile iterations (no-ops excluded).")
	p.sample("fadewich_reconciles_total", float64(rst.Reconciles))
	p.metric("fadewich_reconcile_errors_total", "counter", "Reconcile iterations that failed validation or apply.")
	p.sample("fadewich_reconcile_errors_total", float64(rst.Errors))
	p.metric("fadewich_reconcile_last_duration_seconds", "gauge", "Wall-clock cost of the last applied reconcile.")
	p.sample("fadewich_reconcile_last_duration_seconds", rst.LastDuration.Seconds())

	frames, actions, overflows := s.bcast.Stats()
	p.metric("fadewich_actions_subscribers", "gauge", "Connected /v1/actions consumers.")
	p.sample("fadewich_actions_subscribers", float64(s.bcast.Subscribers()))
	p.metric("fadewich_actions_frames_total", "counter", "Action batches broadcast to subscribers.")
	p.sample("fadewich_actions_frames_total", float64(frames))
	p.metric("fadewich_actions_broadcast_total", "counter", "Actions carried by broadcast frames.")
	p.sample("fadewich_actions_broadcast_total", float64(actions))
	p.metric("fadewich_actions_overflows_total", "counter", "Subscribers dropped for falling behind their frame buffer.")
	p.sample("fadewich_actions_overflows_total", float64(overflows))

	// Bytes-moved accounting, one family across the byte-producing
	// sinks: logical is the uncompressed-equivalent frame size, wire is
	// what actually hit the disk, socket or subscriber channel.
	// logical/wire is each kind's compression ratio.
	bcLogical, bcWire := s.bcast.ByteStats()
	p.metric("fadewich_logical_bytes_total", "counter", "Uncompressed-equivalent frame bytes produced, by sink kind.")
	p.metric("fadewich_wire_bytes_total", "counter", "Frame bytes actually written, by sink kind.")
	type byteRow struct {
		kind           string
		logical, wired float64
	}
	rows := []byteRow{{kind: "broadcast", logical: float64(bcLogical), wired: float64(bcWire)}}
	if s.seg != nil {
		sst := s.seg.Stats()
		rows = append(rows, byteRow{kind: "segment", logical: float64(sst.Bytes), wired: float64(sst.WireBytes)})
	}
	if s.fwd != nil {
		fst := s.fwd.Stats()
		rows = append(rows, byteRow{kind: "forward", logical: float64(fst.Bytes), wired: float64(fst.WireBytes)})
	}
	for _, row := range rows {
		p.kind("fadewich_logical_bytes_total", row.kind, row.logical)
	}
	for _, row := range rows {
		p.kind("fadewich_wire_bytes_total", row.kind, row.wired)
	}

	if s.seg != nil {
		sst := s.seg.Stats()
		p.metric("fadewich_segment_frames_total", "counter", "Frames appended to the segment log by this writer generation.")
		p.sample("fadewich_segment_frames_total", float64(sst.Frames))
		p.metric("fadewich_segment_bytes_total", "counter", "Logical (uncompressed-equivalent) bytes appended to the segment log by this writer generation; fadewich_wire_bytes_total{kind=\"segment\"} is the on-disk count.")
		p.sample("fadewich_segment_bytes_total", float64(sst.Bytes))
		p.metric("fadewich_segment_syncs_total", "counter", "fsync calls on segment files.")
		p.sample("fadewich_segment_syncs_total", float64(sst.Syncs))
		p.metric("fadewich_segment_sealed_segments", "gauge", "Sealed segments in the directory manifest.")
		p.sample("fadewich_segment_sealed_segments", float64(sst.Sealed))
		var sealedFrames, sealedBytes int64
		for _, info := range s.seg.Sealed() {
			sealedFrames += int64(info.Frames)
			sealedBytes += info.Bytes
		}
		p.metric("fadewich_segment_sealed_frames_total", "counter", "Frames in sealed segments, per the directory manifest.")
		p.sample("fadewich_segment_sealed_frames_total", float64(sealedFrames))
		p.metric("fadewich_segment_sealed_bytes_total", "counter", "Bytes in sealed segments, per the directory manifest.")
		p.sample("fadewich_segment_sealed_bytes_total", float64(sealedBytes))
	}

	if s.maintStop != nil {
		p.metric("fadewich_segment_maintenance_passes_total", "counter", "Completed segment-maintenance passes.")
		p.sample("fadewich_segment_maintenance_passes_total", float64(s.maint.passes.Load()))
		p.metric("fadewich_segment_maintenance_errors_total", "counter", "Segment-maintenance passes that failed.")
		p.sample("fadewich_segment_maintenance_errors_total", float64(s.maint.errors.Load()))
		p.metric("fadewich_segment_compacted_segments_total", "counter", "Sealed segments rewritten into compressed frames.")
		p.sample("fadewich_segment_compacted_segments_total", float64(s.maint.compactedSegments.Load()))
		p.metric("fadewich_segment_compacted_bytes_saved_total", "counter", "On-disk bytes reclaimed by compaction.")
		p.sample("fadewich_segment_compacted_bytes_saved_total", float64(s.maint.compactedBytesSaved.Load()))
		p.metric("fadewich_segment_retained_segments_total", "counter", "Sealed segments deleted by TTL retention.")
		p.sample("fadewich_segment_retained_segments_total", float64(s.maint.retainedSegments.Load()))
		p.metric("fadewich_segment_retained_bytes_total", "counter", "On-disk bytes deleted by TTL retention.")
		p.sample("fadewich_segment_retained_bytes_total", float64(s.maint.retainedBytes.Load()))
		p.metric("fadewich_segment_replicated_segments_total", "counter", "Sealed segments shipped to the replica directory.")
		p.sample("fadewich_segment_replicated_segments_total", float64(s.maint.replicatedSegments.Load()))
		p.metric("fadewich_segment_replicated_bytes_total", "counter", "Bytes shipped to the replica directory.")
		p.sample("fadewich_segment_replicated_bytes_total", float64(s.maint.replicatedBytes.Load()))
	}

	if s.fwd != nil {
		fst := s.fwd.Stats()
		p.metric("fadewich_forward_frames_total", "counter", "Frames delivered to the TCP forward peer.")
		p.sample("fadewich_forward_frames_total", float64(fst.Frames))
		p.metric("fadewich_forward_attempts_total", "counter", "Frame write attempts to the forward peer, including retries.")
		p.sample("fadewich_forward_attempts_total", float64(fst.Attempts))
		p.metric("fadewich_forward_redials_total", "counter", "Forward connections re-established after a loss.")
		p.sample("fadewich_forward_redials_total", float64(fst.Redials))
		p.metric("fadewich_forward_dial_failures_total", "counter", "Failed forward dial attempts.")
		p.sample("fadewich_forward_dial_failures_total", float64(fst.DialFailures))
		p.metric("fadewich_forward_write_failures_total", "counter", "Failed forward write attempts.")
		p.sample("fadewich_forward_write_failures_total", float64(fst.WriteFailures))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, p.b.String())
}
