package serve

import (
	"bytes"
	"errors"
	"testing"

	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/stream"
	"fadewich/internal/wire"
)

func testBatch(n int) []engine.OfficeAction {
	batch := make([]engine.OfficeAction, n)
	for i := range batch {
		batch[i] = engine.OfficeAction{
			Office: i,
			Action: core.Action{Time: float64(i) + 0.5, Type: core.ActionAlertEnter},
		}
	}
	return batch
}

func TestBroadcasterDelivers(t *testing.T) {
	b := newBroadcaster()
	s1, err := b.Subscribe(wire.V1JSONL, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.Subscribe(wire.V2Binary, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Subscribers() != 2 {
		t.Fatalf("subscribers = %d", b.Subscribers())
	}

	batch := testBatch(3)
	if err := b.Write(batch); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(nil); err != nil { // empty batches are skipped
		t.Fatal(err)
	}
	frames, actions, overflows := b.Stats()
	if frames != 1 || actions != 3 || overflows != 0 {
		t.Fatalf("stats = %d/%d/%d", frames, actions, overflows)
	}

	wantV1, _ := wire.AppendFrame(nil, wire.V1JSONL, batch)
	wantV2, _ := wire.AppendFrame(nil, wire.V2Binary, batch)
	if got := <-s1.ch; !bytes.Equal(got, wantV1) {
		t.Fatal("v1 subscriber got a frame that differs from AppendFrame")
	}
	if got := <-s2.ch; !bytes.Equal(got, wantV2) {
		t.Fatal("v2 subscriber got a frame that differs from AppendFrame")
	}

	b.Unsubscribe(s1)
	b.Unsubscribe(s1) // idempotent
	if b.Subscribers() != 1 {
		t.Fatalf("subscribers after unsubscribe = %d", b.Subscribers())
	}
	if _, ok := <-s1.ch; ok {
		t.Fatal("unsubscribed channel still open")
	}
}

func TestBroadcasterOverflowDropsSubscriber(t *testing.T) {
	b := newBroadcaster()
	slow, err := b.Subscribe(wire.V1JSONL, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := b.Subscribe(wire.V1JSONL, false, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Frame 1 fills slow's buffer; frame 2 overflows it. fast keeps
	// receiving: one consumer falling behind never stalls the rest.
	if err := b.Write(testBatch(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(testBatch(2)); err != nil {
		t.Fatal(err)
	}
	_, _, overflows := b.Stats()
	if overflows != 1 {
		t.Fatalf("overflows = %d, want 1", overflows)
	}
	if b.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want the fast one only", b.Subscribers())
	}
	<-slow.ch // the buffered frame
	if _, ok := <-slow.ch; ok {
		t.Fatal("dropped subscriber's channel not closed")
	}
	if len(fast.ch) != 2 {
		t.Fatalf("fast subscriber has %d frames, want 2", len(fast.ch))
	}
}

func TestBroadcasterClose(t *testing.T) {
	b := newBroadcaster()
	s, _ := b.Subscribe(wire.V1JSONL, false, 1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, ok := <-s.ch; ok {
		t.Fatal("subscriber channel survived Close")
	}
	if err := b.Write(testBatch(1)); !errors.Is(err, stream.ErrSinkClosed) {
		t.Fatalf("post-close write error = %v", err)
	}
	if _, err := b.Subscribe(wire.V1JSONL, false, 1); err == nil {
		t.Fatal("subscribed to a closed broadcaster")
	}
}

func TestBroadcasterRejectsUnknownCodec(t *testing.T) {
	b := newBroadcaster()
	if _, err := b.Subscribe(wire.Version(9), false, 1); err == nil {
		t.Fatal("unknown codec accepted")
	}
}
