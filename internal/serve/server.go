package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/segment"
	"fadewich/internal/stream"
	"fadewich/internal/wire"
)

// ContentTypeFrames is the POST /v1/ticks content type selecting the
// wire-framed transport: the body is a sequence of CRC-checked raw
// frames (wire.AppendRawFrame, codec byte V1JSONL) whose payloads are
// tick JSONL. Any other content type is read as bare tick JSONL.
const ContentTypeFrames = "application/x-fadewich-frames"

// DefaultSubscriberBuffer is the per-/v1/actions-connection frame
// buffer when Config.SubscriberBuffer is zero.
const DefaultSubscriberBuffer = 256

// DefaultMaintainEvery is the segment-maintenance pass interval when
// Config.MaintainEvery is zero.
const DefaultMaintainEvery = time.Minute

// Config parameterises a Server.
type Config struct {
	// SpecPath is the fleet-spec file (required unless SpecSource is
	// set): the declarative desired membership, reloaded by Reload.
	SpecPath string
	// SpecSource, when set, replaces the spec file as the source of raw
	// spec content for both startup and Reload. Worker mode uses it to
	// fetch the coordinator-assigned sub-spec over HTTP.
	SpecSource func() ([]byte, error)
	// Queue, OnFull, BatchTicks, AdaptiveBatch and MaxBatchLatency pass
	// through to the ingestor (stream.Config). With both BatchTicks and
	// MaxBatchLatency zero, dispatch is strictly ?flush=1-driven —
	// deterministic, and what the e2e byte-identity harness relies on.
	Queue           int
	OnFull          stream.Policy
	BatchTicks      int
	AdaptiveBatch   bool
	MaxBatchLatency time.Duration
	// Workers sizes the fleet's worker pool (0 selects GOMAXPROCS).
	Workers int
	// SegmentDir, when set, persists the action stream to a rotating
	// segment log there, under SegmentMaxBytes/SegmentMaxAge/Fsync and
	// the Codec version. A drained shutdown seals the active segment.
	SegmentDir      string
	SegmentMaxBytes int64
	SegmentMaxAge   time.Duration
	Fsync           segment.FsyncPolicy
	Codec           wire.Version
	// Compress deflates frame bodies (wire.FlagCompressed) on the
	// segment log and the forward stream when they clear the
	// compression threshold; decoded output is byte-identical either
	// way. /v1/actions subscribers opt in per connection (?compress=1)
	// regardless of this knob.
	Compress bool
	// CompactAfter, when positive, rewrites sealed segments older than
	// this into compressed frames on each maintenance pass. Retention,
	// when positive, deletes sealed segments older than it
	// (manifest-first; the active segment is never touched). Replicate,
	// when set, ships sealed segments to this directory before
	// retention prunes them. All three need SegmentDir.
	CompactAfter time.Duration
	Retention    time.Duration
	Replicate    string
	// MaintainEvery is the maintenance pass interval (0 selects
	// DefaultMaintainEvery; only runs when a maintenance job is
	// configured).
	MaintainEvery time.Duration
	// Forward, when set, streams every dispatched batch to this TCP
	// address as wire frames (codec Codec), the fan-in feed for a
	// downstream fadewich-tail or router tier.
	Forward string
	// ForwardSource, when non-zero, switches the forward stream to the
	// cluster wire protocol: frames are tagged with this worker source
	// ID and the producer-driven epoch (?flush=1&epoch=K), actions are
	// remapped from local fleet IDs to the gids the spec carries, and
	// shutdown sends a final frame. Requires Forward, a spec whose
	// offices all carry gids, and strictly flush-driven dispatch
	// (BatchTicks, AdaptiveBatch and MaxBatchLatency all zero) — the
	// tagged sink refuses untagged batches.
	ForwardSource uint8
	// SubscriberBuffer is each /v1/actions connection's in-flight frame
	// budget; a consumer further behind is dropped (0 selects
	// DefaultSubscriberBuffer).
	SubscriberBuffer int
	// AllowEmpty accepts a spec with zero offices, at startup and on
	// reload. Worker mode sets it: a coordinator-assigned shard may
	// legitimately be empty (the hash owes this worker nothing right
	// now), and the worker must still run to emit its per-epoch
	// watermark frames. Without it an empty spec is rejected — a
	// single-process operator emptying the fleet is almost always a
	// spec-file accident.
	AllowEmpty bool
}

// Server hosts a live Fleet+Ingestor behind the HTTP API. Create with
// New, serve it (it implements http.Handler), Close it to drain.
type Server struct {
	cfg     Config
	fleet   *engine.Fleet
	ing     *stream.Ingestor
	rec     *Reconciler
	bcast   *broadcaster
	seg     *stream.SegmentSink // nil without SegmentDir
	fwd     *stream.TCPSink     // nil without Forward
	source  func() ([]byte, error)
	mux     *http.ServeMux
	started time.Time

	// Segment maintenance (compaction, retention, replication): the
	// loop goroutine runs Maintain on a ticker; the counters accumulate
	// its results for /metrics.
	maintOpt  segment.MaintainOptions
	maintStop chan struct{}
	maintDone chan struct{}
	maint     maintCounters

	closing   atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// maintCounters aggregates maintenance results across passes.
type maintCounters struct {
	passes, errors                         atomic.Uint64
	compactedSegments, compactedBytesSaved atomic.Uint64
	retainedSegments, retainedBytes        atomic.Uint64
	replicatedSegments, replicatedBytes    atomic.Uint64
}

// add folds one pass's result in.
func (c *maintCounters) add(res segment.MaintainResult) {
	c.passes.Add(1)
	c.compactedSegments.Add(uint64(res.Compacted.Segments))
	if saved := res.Compacted.BytesBefore - res.Compacted.BytesAfter; saved > 0 {
		c.compactedBytesSaved.Add(uint64(saved))
	}
	c.retainedSegments.Add(uint64(res.Retained.Segments))
	c.retainedBytes.Add(uint64(res.Retained.Bytes))
	c.replicatedSegments.Add(uint64(res.Replicated.Segments))
	c.replicatedBytes.Add(uint64(res.Replicated.Bytes))
}

// New builds the fleet from the spec file and starts the ingestion
// machinery. Offices are created in spec order under IDs 0..n−1.
func New(cfg Config) (*Server, error) {
	if cfg.SpecPath == "" && cfg.SpecSource == nil {
		return nil, errors.New("serve: no fleet-spec path or source")
	}
	if cfg.ForwardSource != 0 {
		if cfg.Forward == "" {
			return nil, errors.New("serve: forward source set without a forward address")
		}
		if cfg.BatchTicks != 0 || cfg.AdaptiveBatch || cfg.MaxBatchLatency != 0 {
			return nil, errors.New("serve: tagged forwarding needs strictly flush-driven dispatch (no batch-ticks, adaptive-batch or max-latency)")
		}
	}
	source := cfg.SpecSource
	if source == nil {
		path := cfg.SpecPath
		source = func() ([]byte, error) { return os.ReadFile(path) }
	}
	raw, err := source()
	if err != nil {
		return nil, fmt.Errorf("serve: fleet spec: %w", err)
	}
	spec, err := ParseSpec(raw)
	if err != nil {
		return nil, err
	}
	resolved, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	if len(resolved) == 0 && !cfg.AllowEmpty {
		return nil, errors.New("serve: fleet spec: no offices (the fleet needs at least one)")
	}
	if cfg.ForwardSource != 0 {
		for _, ro := range resolved {
			if ro.GID < 0 {
				return nil, fmt.Errorf("serve: tagged forwarding needs a gid for every office, but %q has none", ro.Name)
			}
		}
	}
	perOffice := make(map[int]core.Config, len(resolved))
	var def core.Config
	for i, ro := range resolved {
		perOffice[i] = ro.Config
		if i == 0 {
			def = ro.Config
		}
	}
	fleet, err := engine.NewFleet(engine.FleetConfig{
		Offices:   len(resolved),
		System:    def,
		PerOffice: perOffice,
		Workers:   cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}

	if cfg.SegmentDir == "" && (cfg.CompactAfter > 0 || cfg.Retention > 0 || cfg.Replicate != "") {
		return nil, errors.New("serve: segment maintenance (compaction, retention, replication) needs a segment directory")
	}

	s := &Server{cfg: cfg, fleet: fleet, bcast: newBroadcaster(), source: source, started: time.Now()}
	sinks := []stream.Sink{s.bcast}
	if cfg.SegmentDir != "" {
		seg, err := stream.NewSegmentSink(segment.Config{
			Dir:             cfg.SegmentDir,
			MaxSegmentBytes: cfg.SegmentMaxBytes,
			MaxSegmentAge:   cfg.SegmentMaxAge,
			Fsync:           cfg.Fsync,
			Version:         cfg.Codec,
			Compress:        cfg.Compress,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.seg = seg
		sinks = append(sinks, seg)
	}
	if cfg.Forward != "" {
		fwd, err := stream.NewTCPSink(cfg.Forward)
		if err != nil {
			if s.seg != nil {
				s.seg.Close()
			}
			return nil, fmt.Errorf("serve: %w", err)
		}
		if cfg.Codec != 0 {
			fwd.Version = cfg.Codec
		}
		fwd.Compress = cfg.Compress
		s.fwd = fwd
		if cfg.ForwardSource != 0 {
			fwd.Source = cfg.ForwardSource
			// Remap local fleet IDs to cluster-wide gids on the way out.
			// The closure reads s.rec, assigned below before any tick can
			// be pushed (and therefore before any batch can be pumped).
			sinks = append(sinks, stream.NewRemapSink(fwd, func(local int) (int, bool) {
				return s.rec.GlobalID(local)
			}))
		} else {
			sinks = append(sinks, fwd)
		}
	}
	// Encode-once fan-out: any (codec, compressed) frame variant a
	// member wants — the segment log, a broadcaster subscriber — is
	// encoded exactly once per dispatch and shared read-only.
	sink := sinks[0]
	if len(sinks) > 1 {
		sink = stream.NewEncodeOnceSink(sinks...)
	}

	s.ing, err = stream.NewIngestor(fleet, stream.Config{
		Queue:           cfg.Queue,
		OnFull:          cfg.OnFull,
		BatchTicks:      cfg.BatchTicks,
		AdaptiveBatch:   cfg.AdaptiveBatch,
		MaxBatchLatency: cfg.MaxBatchLatency,
		Sink:            sink,
	})
	if err != nil {
		sink.Close()
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.rec = newReconciler(s.ing, resolved, fleet.IDs(), raw, cfg.AllowEmpty)

	if cfg.CompactAfter > 0 || cfg.Retention > 0 || cfg.Replicate != "" {
		s.maintOpt = segment.MaintainOptions{
			CompactAfter: cfg.CompactAfter,
			Retention:    cfg.Retention,
		}
		if cfg.Replicate != "" {
			rep, err := segment.NewReplicator(cfg.Replicate)
			if err != nil {
				s.ing.Close()
				return nil, fmt.Errorf("serve: %w", err)
			}
			s.maintOpt.Replica = rep
		}
		every := cfg.MaintainEvery
		if every <= 0 {
			every = DefaultMaintainEvery
		}
		s.maintStop, s.maintDone = make(chan struct{}), make(chan struct{})
		go s.maintainLoop(every)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/ticks", s.handleTicks)
	s.mux.HandleFunc("GET /v1/actions", s.handleActions)
	s.mux.HandleFunc("GET /v1/offices", s.handleOffices)
	s.mux.HandleFunc("POST /v1/train", s.handleTrain)
	s.mux.HandleFunc("POST /v1/reload", s.handleReload)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Ingestor exposes the underlying ingestion layer (stats, direct
// pushes in tests).
func (s *Server) Ingestor() *stream.Ingestor { return s.ing }

// Fleet exposes the hosted fleet (read-side inspection only; all
// membership changes must flow through the reconciler).
func (s *Server) Fleet() *engine.Fleet { return s.fleet }

// Reconciler exposes the reconcile loop's state.
func (s *Server) Reconciler() *Reconciler { return s.rec }

// Segment exposes the segment sink, nil without Config.SegmentDir.
func (s *Server) Segment() *stream.SegmentSink { return s.seg }

// Forwarder exposes the TCP forward sink, nil without Config.Forward.
func (s *Server) Forwarder() *stream.TCPSink { return s.fwd }

// Reload re-reads the spec source (the spec file, or Config.SpecSource
// — in worker mode the coordinator's sub-spec endpoint) and reconciles
// the fleet against it. Wired to SIGHUP, the spec-file watcher and
// POST /v1/reload.
func (s *Server) Reload() error {
	if s.closing.Load() {
		return errBroadcasterClosed
	}
	raw, err := s.source()
	if err != nil {
		return s.rec.Fail(fmt.Errorf("read spec: %w", err))
	}
	return s.rec.Reconcile(raw)
}

// maintainLoop runs segment maintenance every interval until Close.
func (s *Server) maintainLoop(every time.Duration) {
	defer close(s.maintDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.maintStop:
			return
		case <-t.C:
			if _, err := s.MaintainNow(); err != nil && !errors.Is(err, stream.ErrSinkClosed) {
				s.maint.errors.Add(1)
			}
		}
	}
}

// MaintainNow runs one synchronous segment-maintenance pass (compact,
// replicate, retain — as configured) and folds the result into the
// /metrics counters. The e2e harness calls it for a deterministic pass
// instead of waiting out the ticker.
func (s *Server) MaintainNow() (segment.MaintainResult, error) {
	if s.seg == nil {
		return segment.MaintainResult{}, errors.New("serve: no segment directory to maintain")
	}
	res, err := s.seg.Maintain(s.maintOpt)
	if err != nil {
		return res, err
	}
	s.maint.add(res)
	return res, nil
}

// Close drains and shuts down: new ticks are refused, queued work is
// dispatched, sinks are flushed and closed (sealing the active
// segment), and /v1/actions subscribers are completed. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		if s.maintStop != nil {
			close(s.maintStop)
			<-s.maintDone
		}
		s.closeErr = s.ing.Close()
	})
	return s.closeErr
}

// tickLine is one POST /v1/ticks JSONL record: either one RSSI tick
// ({"office":"hq-0","rssi":[...]}) or one input notification
// ({"office":"hq-0","input":2}) for the named office. Inputs are
// routed before any tick on a later line, matching the delivery order
// of the synchronous API.
type tickLine struct {
	Office string    `json:"office"`
	RSSI   []float64 `json:"rssi"`
	Input  *int      `json:"input"`
}

// ingestResult is the POST /v1/ticks response body.
type ingestResult struct {
	AcceptedTicks  int    `json:"accepted_ticks"`
	AcceptedInputs int    `json:"accepted_inputs"`
	Flushed        bool   `json:"flushed,omitempty"`
	Error          string `json:"error,omitempty"`
}

// ingestStatus maps a push error to its HTTP status.
func ingestStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, stream.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, stream.ErrQueueFull):
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleTicks(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ingestResult{Error: "server shutting down"})
		return
	}
	var res ingestResult
	var err error
	ct := r.Header.Get("Content-Type")
	if ct == ContentTypeFrames || strings.HasPrefix(ct, ContentTypeFrames+";") {
		err = s.ingestFrames(r.Body, &res)
	} else {
		err = s.ingestJSONL(r.Body, &res)
	}
	if err == nil {
		q := r.URL.Query()
		epochStr := q.Get("epoch")
		switch {
		case q.Get("flush") != "1":
			if epochStr != "" {
				err = errors.New("epoch requires flush=1")
			}
		case epochStr != "":
			// Epoch-stamped flush: the cluster wire protocol. The producer
			// drives every dispatch with ?flush=1&epoch=K so each worker
			// emits exactly one tagged frame per epoch (empty included),
			// which is what lets the stream router align and merge the
			// worker streams.
			var epoch uint64
			if epoch, err = strconv.ParseUint(epochStr, 10, 64); err != nil {
				err = fmt.Errorf("bad epoch %q: %w", epochStr, err)
			} else if err = s.ing.FlushEpoch(epoch); err == nil {
				res.Flushed = true
			}
		default:
			if err = s.ing.Flush(); err == nil {
				res.Flushed = true
			}
		}
	}
	status := ingestStatus(err)
	if err != nil {
		res.Error = err.Error()
	}
	writeJSON(w, status, res)
}

// ingestJSONL pushes a body of tick JSONL. Lines are applied in order;
// on a failing line everything before it stays accepted and is
// reported in res.
func (s *Server) ingestJSONL(body io.Reader, res *ingestResult) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec tickLine
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		id, ok := s.rec.IDOf(rec.Office)
		if !ok {
			return fmt.Errorf("line %d: unknown office %q", lineNo, rec.Office)
		}
		switch {
		case rec.Input != nil:
			if err := s.ing.PushInput(id, *rec.Input); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			res.AcceptedInputs++
		case rec.RSSI != nil:
			if err := s.ing.Push(id, rec.RSSI); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			res.AcceptedTicks++
		default:
			return fmt.Errorf("line %d: neither rssi nor input", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("line %d: %w", lineNo+1, err)
	}
	return nil
}

// ingestFrames pushes a body of wire-framed tick JSONL: each
// CRC-checked frame's payload is one JSONL chunk. A torn or corrupt
// frame rejects the remainder; everything pushed from earlier frames
// stays accepted.
func (s *Server) ingestFrames(body io.Reader, res *ingestResult) error {
	dec := wire.NewDecoder(body)
	for frameNo := 1; ; frameNo++ {
		v, payload, err := dec.DecodeRaw()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("frame %d: %w", frameNo, err)
		}
		if v != wire.V1JSONL {
			return fmt.Errorf("frame %d: unsupported tick codec %v (ticks are JSONL, codec v1)", frameNo, v)
		}
		if err := s.ingestJSONL(bytes.NewReader(payload), res); err != nil {
			return fmt.Errorf("frame %d: %w", frameNo, err)
		}
	}
}

func (s *Server) handleActions(w http.ResponseWriter, r *http.Request) {
	codec := wire.V1JSONL
	if q := r.URL.Query().Get("codec"); q != "" && q != "1" {
		if q != "2" {
			http.Error(w, "unknown codec (want 1 or 2)", http.StatusBadRequest)
			return
		}
		codec = wire.V2Binary
	}
	compress := false
	switch q := r.URL.Query().Get("compress"); q {
	case "", "0":
	case "1":
		compress = true
	default:
		http.Error(w, "bad compress (want 0 or 1)", http.StatusBadRequest)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	buffer := s.cfg.SubscriberBuffer
	if buffer == 0 {
		buffer = DefaultSubscriberBuffer
	}
	sub, err := s.bcast.Subscribe(codec, compress, buffer)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer s.bcast.Unsubscribe(sub)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	// Commit the response headers before the first frame: once the
	// client has them, the subscription is guaranteed live, so every
	// batch dispatched from now on will be delivered (or the connection
	// dropped on overflow) — the ordering handle the e2e harness needs.
	flusher.Flush()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case frame, ok := <-sub.ch:
			if !ok {
				return // server draining, or this subscriber overflowed
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// officeStatus is one office's row in the GET /v1/offices response.
type officeStatus struct {
	Name               string  `json:"name"`
	ID                 int     `json:"id"`
	GID                *int    `json:"gid,omitempty"` // cluster-wide global ID, absent outside a cluster
	Phase              string  `json:"phase"`
	TrainingSamples    int     `json:"training_samples"`
	ObservedGeneration uint64  `json:"observed_generation"`
	LastTransition     string  `json:"last_transition"`
	Since              string  `json:"since"`
	QueueDepth         int     `json:"queue_depth"`
	PushedTicks        uint64  `json:"pushed_ticks"`
	DispatchedTicks    uint64  `json:"dispatched_ticks"`
	DroppedTicks       uint64  `json:"dropped_ticks"`
	Streams            int     `json:"streams"`
	Workstations       int     `json:"workstations"`
	DT                 float64 `json:"dt"`
}

// fleetStatus is the GET /v1/offices response.
type fleetStatus struct {
	SpecGeneration     uint64         `json:"spec_generation"`
	GenerationLag      uint64         `json:"generation_lag"`
	DesiredOffices     int            `json:"desired_offices"`
	LiveOffices        int            `json:"live_offices"`
	Reconciles         uint64         `json:"reconciles"`
	ReconcileErrors    uint64         `json:"reconcile_errors"`
	LastReconcileMs    float64        `json:"last_reconcile_ms"`
	LastReconcileError string         `json:"last_reconcile_error,omitempty"`
	UptimeSec          float64        `json:"uptime_sec"`
	Offices            []officeStatus `json:"offices"`
}

// phaseString spells a core.Phase for the API.
func phaseString(p core.Phase) string {
	switch p {
	case core.PhaseTraining:
		return "training"
	case core.PhaseOnline:
		return "online"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// status assembles the /v1/offices view: the reconciler's desired-vs-
// live bookkeeping enriched with each office's System phase and queue
// counters.
func (s *Server) status() fleetStatus {
	rst, reports := s.rec.Status()
	byID := make(map[int]stream.OfficeStats)
	for _, o := range s.ing.Stats().Offices {
		byID[o.Office] = o
	}
	out := fleetStatus{
		SpecGeneration:     rst.SpecGeneration,
		GenerationLag:      rst.GenerationLag,
		DesiredOffices:     rst.DesiredOffices,
		LiveOffices:        rst.LiveOffices,
		Reconciles:         rst.Reconciles,
		ReconcileErrors:    rst.Errors,
		LastReconcileMs:    float64(rst.LastDuration) / float64(time.Millisecond),
		LastReconcileError: rst.LastError,
		UptimeSec:          time.Since(s.started).Seconds(),
		Offices:            make([]officeStatus, 0, len(reports)),
	}
	for _, rep := range reports {
		row := officeStatus{
			Name:               rep.Name,
			ID:                 rep.ID,
			ObservedGeneration: rep.ObservedGeneration,
			LastTransition:     rep.Transition,
			Since:              rep.Since.UTC().Format(time.RFC3339),
			Streams:            rep.Config.Streams,
			Workstations:       rep.Config.Workstations,
			DT:                 rep.Config.DT,
		}
		if rep.GID >= 0 {
			gid := rep.GID
			row.GID = &gid
		}
		if sys := s.fleet.System(rep.ID); sys != nil {
			row.Phase = phaseString(sys.Phase())
			row.TrainingSamples = sys.TrainingSamples()
		}
		if st, ok := byID[rep.ID]; ok {
			row.QueueDepth = st.Depth
			row.PushedTicks = st.Pushed
			row.DispatchedTicks = st.Dispatched
			row.DroppedTicks = st.Dropped
		}
		out.Offices = append(out.Offices, row)
	}
	return out
}

func (s *Server) handleOffices(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.status())
}

// trainResult is the POST /v1/train response.
type trainResult struct {
	Trained []string `json:"trained"`
	Online  int      `json:"online"`
	Errors  []string `json:"errors,omitempty"`
}

// handleTrain flushes queued work, then moves every training-phase
// office online, in ascending ID order. Offices already online are
// skipped; an office whose training fails (too few samples) stays in
// training and is reported, without blocking the others — late
// spec-rollout joiners train on a later call once they have collected
// enough labelled samples.
func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeJSON(w, http.StatusServiceUnavailable, trainResult{Errors: []string{"server shutting down"}})
		return
	}
	if err := s.ing.Flush(); err != nil {
		writeJSON(w, ingestStatus(err), trainResult{Errors: []string{err.Error()}})
		return
	}
	var res trainResult
	live := s.rec.Live()
	sort.Slice(live, func(i, j int) bool { return live[i].ID < live[j].ID })
	for _, o := range live {
		sys := s.fleet.System(o.ID)
		if sys == nil {
			continue // removed since the snapshot
		}
		switch sys.Phase() {
		case core.PhaseOnline:
			res.Online++
		case core.PhaseTraining:
			if err := s.fleet.FinishTrainingOffice(o.ID); err != nil {
				res.Errors = append(res.Errors, fmt.Sprintf("office %q: %v", o.Name, err))
				continue
			}
			res.Trained = append(res.Trained, o.Name)
			res.Online++
		}
	}
	status := http.StatusOK
	if len(res.Errors) > 0 {
		status = http.StatusConflict
	}
	writeJSON(w, status, res)
}

// reloadResult is the POST /v1/reload response.
type reloadResult struct {
	SpecGeneration uint64 `json:"spec_generation"`
	LiveOffices    int    `json:"live_offices"`
	Error          string `json:"error,omitempty"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	err := s.Reload()
	rst, _ := s.rec.Status()
	res := reloadResult{SpecGeneration: rst.SpecGeneration, LiveOffices: rst.LiveOffices}
	status := http.StatusOK
	if err != nil {
		res.Error = err.Error()
		status = http.StatusBadRequest
	}
	writeJSON(w, status, res)
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}
