// Package report renders the experiment results as aligned ASCII tables,
// CSV series and floor-plan heat-maps, so every table and figure of the
// paper can be regenerated as text from the command line and diffed across
// runs.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// trimFloat renders a float with up to 3 decimals, trimming zeros.
func trimFloat(x float64) string {
	s := strconv.FormatFloat(x, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	var b strings.Builder
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(pad(h, widths[i]))
	}
	fmt.Fprintln(w, b.String())
	b.Reset()
	for i := range t.Headers {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	fmt.Fprintln(w, b.String())
	for _, row := range t.Rows {
		b.Reset()
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				b.WriteString(pad(cell, widths[i]))
			} else {
				b.WriteString(cell)
			}
		}
		fmt.Fprintln(w, b.String())
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a named sequence of (x, y) points, the unit of figure data.
type Series struct {
	Name string
	X, Y []float64
}

// WriteCSV writes one or more series sharing an x-axis as CSV: the first
// column is x (taken from the first series), then one column per series.
// Series with differing x grids are written as separate blocks.
func WriteCSV(w io.Writer, series ...Series) {
	if len(series) == 0 {
		return
	}
	groups := groupByX(series)
	for gi, g := range groups {
		if gi > 0 {
			fmt.Fprintln(w)
		}
		header := []string{"x"}
		for _, s := range g {
			header = append(header, s.Name)
		}
		fmt.Fprintln(w, strings.Join(header, ","))
		for i := range g[0].X {
			row := []string{trimFloat(g[0].X[i])}
			for _, s := range g {
				if i < len(s.Y) {
					row = append(row, trimFloat(s.Y[i]))
				} else {
					row = append(row, "")
				}
			}
			fmt.Fprintln(w, strings.Join(row, ","))
		}
	}
}

// groupByX buckets series with identical x grids.
func groupByX(series []Series) [][]Series {
	var groups [][]Series
	for _, s := range series {
		placed := false
		for gi, g := range groups {
			if sameX(g[0].X, s.X) {
				groups[gi] = append(groups[gi], s)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []Series{s})
		}
	}
	return groups
}

func sameX(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// heatRamp maps intensity in [0,1] to a character.
const heatRamp = " .:-=+*#%@"

// Heatmap renders a [0,1]-normalised grid as ASCII art, one character per
// cell, darkest for the highest values.
func Heatmap(w io.Writer, title string, grid [][]float64) {
	if title != "" {
		fmt.Fprintf(w, "== %s ==\n", title)
	}
	for _, row := range grid {
		var b strings.Builder
		for _, v := range row {
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			idx := int(v * float64(len(heatRamp)-1))
			b.WriteByte(heatRamp[idx])
		}
		fmt.Fprintln(w, b.String())
	}
}

// CorrelationSummary renders the distribution of off-diagonal correlation
// values of a matrix as a compact histogram line, used for Fig 11 where
// printing a 72×72 matrix is unhelpful.
func CorrelationSummary(w io.Writer, corr [][]float64) {
	var buckets [10]int
	total := 0
	for i := range corr {
		for j := range corr[i] {
			if i == j {
				continue
			}
			v := (corr[i][j] + 1) / 2 // map [-1,1] to [0,1]
			idx := int(v * 10)
			if idx > 9 {
				idx = 9
			}
			if idx < 0 {
				idx = 0
			}
			buckets[idx]++
			total++
		}
	}
	fmt.Fprintln(w, "correlation histogram (-1 .. +1):")
	for i, c := range buckets {
		lo := -1 + 0.2*float64(i)
		bar := strings.Repeat("#", scaleBar(c, total, 50))
		fmt.Fprintf(w, "  [%+.1f,%+.1f) %6d %s\n", lo, lo+0.2, c, bar)
	}
}

func scaleBar(count, total, width int) int {
	if total == 0 {
		return 0
	}
	return count * width / total
}
