package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta", 2.5)
	tb.AddRow("gamma", "x")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	for _, want := range []string{"name", "value", "alpha", "beta", "2.5", "gamma"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title + header + separator + 3 rows
		t.Fatalf("lines %d:\n%s", len(lines), out)
	}
}

func TestTableColumnsAligned(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("looooooong", 1)
	tb.AddRow("x", 22)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Column b starts at the same offset in every row.
	idx := strings.Index(lines[0], "b")
	for _, line := range lines[2:] {
		if len(line) <= idx {
			t.Fatalf("row shorter than header: %q", line)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2:      "2",
		0.125:  "0.125",
		0.1001: "0.1",
		0:      "0",
		-3.25:  "-3.25",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Fatalf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteCSVSharedAxis(t *testing.T) {
	var b strings.Builder
	WriteCSV(&b,
		Series{Name: "s1", X: []float64{1, 2}, Y: []float64{10, 20}},
		Series{Name: "s2", X: []float64{1, 2}, Y: []float64{30, 40}},
	)
	got := b.String()
	want := "x,s1,s2\n1,10,30\n2,20,40\n"
	if got != want {
		t.Fatalf("csv:\n%q\nwant:\n%q", got, want)
	}
}

func TestWriteCSVDifferentAxesSplitBlocks(t *testing.T) {
	var b strings.Builder
	WriteCSV(&b,
		Series{Name: "s1", X: []float64{1, 2}, Y: []float64{10, 20}},
		Series{Name: "s2", X: []float64{5}, Y: []float64{30}},
	)
	out := b.String()
	if strings.Count(out, "x,") != 2 {
		t.Fatalf("expected two CSV blocks:\n%s", out)
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var b strings.Builder
	WriteCSV(&b)
	if b.Len() != 0 {
		t.Fatal("empty series wrote output")
	}
}

func TestHeatmap(t *testing.T) {
	var b strings.Builder
	Heatmap(&b, "grid", [][]float64{
		{0, 0.5, 1},
		{1, 0, 0.25},
	})
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // title + 2 rows
		t.Fatalf("lines %d", len(lines))
	}
	if len(lines[1]) != 3 || len(lines[2]) != 3 {
		t.Fatalf("row widths wrong: %q %q", lines[1], lines[2])
	}
	// Intensity 1 renders the densest character; 0 the lightest.
	if lines[1][2] != '@' || lines[1][0] != ' ' {
		t.Fatalf("intensity mapping wrong: %q", lines[1])
	}
}

func TestHeatmapClampsOutOfRange(t *testing.T) {
	var b strings.Builder
	Heatmap(&b, "", [][]float64{{-1, 2}})
	line := strings.TrimRight(b.String(), "\n")
	if line[0] != ' ' || line[1] != '@' {
		t.Fatalf("clamping wrong: %q", line)
	}
}

func TestCorrelationSummary(t *testing.T) {
	var b strings.Builder
	corr := [][]float64{
		{1, 0.9, -0.9},
		{0.9, 1, 0},
		{-0.9, 0, 1},
	}
	CorrelationSummary(&b, corr)
	out := b.String()
	if !strings.Contains(out, "correlation histogram") {
		t.Fatal("missing header")
	}
	if strings.Count(out, "\n") != 11 { // header + 10 buckets
		t.Fatalf("bucket lines wrong:\n%s", out)
	}
}
