// Package office models the physical environment of the experiment: the
// floor plan of Fig 6 (a 6 m × 3 m shared office with three workstations,
// nine wall-mounted sensors and a single door), walking paths between
// workstations and the door, and the deterministic sensor subsets used when
// the evaluation sweeps the number of sensors from 3 to 9.
package office

import (
	"fmt"

	"fadewich/internal/geom"
)

// Layout describes one office. All coordinates are metres on the floor
// plan; sensors sit about one metre above the ground ("slightly above the
// average desk height"), which a 2-D model absorbs into the propagation
// constants.
type Layout struct {
	// Name identifies the layout in reports.
	Name string
	// Bounds is the room outline.
	Bounds geom.Rect
	// Workstations are the seat positions, index i hosting user i and
	// carrying the paper's label w_{i+1}.
	Workstations []geom.Point
	// Sensors are the wireless device positions d1..dm in order.
	Sensors []geom.Point
	// Door is the single entrance/exit point.
	Door geom.Point
	// Corridor is the y-coordinate of the walking corridor along which
	// users head to the door; paths go seat → corridor → door.
	Corridor float64
}

// Paper returns the 6 m × 3 m layout of Fig 6. Workstations w1 and w2 sit
// along the top wall, w3 in the bottom-left; the nine sensors line the
// walls; the door is at the bottom-right corner. The average seat→door
// walk is ≈5 m, giving the ≈5 s departure the paper reports (Section
// VII-A).
func Paper() *Layout {
	return &Layout{
		Name:   "paper-6x3",
		Bounds: geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 6, Y: 3}},
		Workstations: []geom.Point{
			{X: 4.0, Y: 2.5}, // w1, top right
			{X: 2.2, Y: 2.4}, // w2, top middle-left
			{X: 0.7, Y: 0.7}, // w3, bottom left
		},
		Sensors: []geom.Point{
			{X: 6.0, Y: 1.5}, // d1, right wall
			{X: 0.9, Y: 3.0}, // d2, top wall
			{X: 2.4, Y: 3.0}, // d3
			{X: 3.9, Y: 3.0}, // d4
			{X: 5.4, Y: 3.0}, // d5
			{X: 0.0, Y: 1.5}, // d6, left wall
			{X: 4.6, Y: 0.0}, // d7, bottom wall
			{X: 3.0, Y: 0.0}, // d8
			{X: 1.4, Y: 0.0}, // d9
		},
		Door:     geom.Point{X: 5.7, Y: 0.0},
		Corridor: 1.3,
	}
}

// Small returns a compact 4 m × 3 m two-workstation office used by the
// generalisation experiments (the paper's future-work item on different
// office dimensions).
func Small() *Layout {
	return &Layout{
		Name:   "small-4x3",
		Bounds: geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 4, Y: 3}},
		Workstations: []geom.Point{
			{X: 3.2, Y: 2.4},
			{X: 0.8, Y: 2.4},
		},
		Sensors: []geom.Point{
			{X: 4.0, Y: 1.5},
			{X: 1.0, Y: 3.0},
			{X: 3.0, Y: 3.0},
			{X: 0.0, Y: 1.5},
			{X: 1.0, Y: 0.0},
			{X: 3.0, Y: 0.0},
		},
		Door:     geom.Point{X: 3.7, Y: 0.0},
		Corridor: 1.2,
	}
}

// Wide returns an 8 m × 4 m four-workstation office, the larger-room
// variant for generalisation experiments.
func Wide() *Layout {
	return &Layout{
		Name:   "wide-8x4",
		Bounds: geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 8, Y: 4}},
		Workstations: []geom.Point{
			{X: 6.5, Y: 3.3},
			{X: 4.0, Y: 3.3},
			{X: 1.5, Y: 3.3},
			{X: 1.0, Y: 0.8},
		},
		Sensors: []geom.Point{
			{X: 8.0, Y: 2.0},
			{X: 1.0, Y: 4.0},
			{X: 3.0, Y: 4.0},
			{X: 5.0, Y: 4.0},
			{X: 7.0, Y: 4.0},
			{X: 0.0, Y: 2.0},
			{X: 6.0, Y: 0.0},
			{X: 4.0, Y: 0.0},
			{X: 2.0, Y: 0.0},
		},
		Door:     geom.Point{X: 7.6, Y: 0.0},
		Corridor: 1.6,
	}
}

// NumWorkstations returns the workstation count k.
func (l *Layout) NumWorkstations() int { return len(l.Workstations) }

// NumSensors returns the full sensor count m.
func (l *Layout) NumSensors() int { return len(l.Sensors) }

// DeparturePath returns the walking path from workstation ws to just
// outside the door. It returns an error for an out-of-range index.
func (l *Layout) DeparturePath(ws int) (*geom.Path, error) {
	if ws < 0 || ws >= len(l.Workstations) {
		return nil, fmt.Errorf("office: workstation %d out of range [0,%d)", ws, len(l.Workstations))
	}
	seat := l.Workstations[ws]
	corridorEntry := geom.Point{X: seat.X, Y: l.Corridor}
	corridorExit := geom.Point{X: l.Door.X, Y: l.Corridor}
	// A seat already near the corridor joins it diagonally to avoid a
	// degenerate zero-length leg.
	waypoints := []geom.Point{seat}
	if corridorEntry.Dist(seat) > 0.05 {
		waypoints = append(waypoints, corridorEntry)
	}
	if corridorExit.Dist(waypoints[len(waypoints)-1]) > 0.05 {
		waypoints = append(waypoints, corridorExit)
	}
	waypoints = append(waypoints, l.Door)
	return geom.NewPath(waypoints...), nil
}

// EntryPath returns the walking path from the door to workstation ws.
func (l *Layout) EntryPath(ws int) (*geom.Path, error) {
	dep, err := l.DeparturePath(ws)
	if err != nil {
		return nil, err
	}
	return dep.Reverse(), nil
}

// SensorSubset returns the deterministic n-sensor subset used by the
// evaluation sweeps, as indices into Sensors. Subsets are nested (each
// adds one sensor to the previous) and ordered to maximise spatial
// coverage first, mirroring how an installer would deploy incrementally.
// For the paper layout the last sensor added is d5, which the paper's own
// RMI analysis (Fig 12) found least informative. It returns an error when
// n is out of range.
func (l *Layout) SensorSubset(n int) ([]int, error) {
	if n < 2 || n > len(l.Sensors) {
		return nil, fmt.Errorf("office: sensor subset size %d out of range [2,%d]", n, len(l.Sensors))
	}
	order := l.sensorPriority()
	subset := make([]int, n)
	copy(subset, order[:n])
	return subset, nil
}

// sensorPriority returns all sensor indices in deployment-priority order.
func (l *Layout) sensorPriority() []int {
	switch l.Name {
	case "paper-6x3":
		// The first three sensors (d2, d6, d7) leave the top-right quarter
		// — w1's neighbourhood — poorly covered, matching the paper's weak
		// 3-sensor recall. The fourth, d4 (top centre), closes that gap
		// and produces the large recall jump of Table III; then d1 (right
		// wall), d8, d3, d9, and finally d5, which the paper's own RMI
		// analysis found least informative.
		return []int{1, 5, 6, 3, 0, 7, 2, 8, 4}
	default:
		// Generic: greedy farthest-point ordering starting from the
		// sensor nearest the door, where departures must be seen first.
		return greedyCoverageOrder(l.Sensors, l.Door)
	}
}

// greedyCoverageOrder orders sensors by farthest-point traversal: start
// with the sensor closest to the door, then repeatedly add the sensor
// farthest from all chosen ones.
func greedyCoverageOrder(sensors []geom.Point, door geom.Point) []int {
	m := len(sensors)
	chosen := make([]int, 0, m)
	used := make([]bool, m)

	best, bestDist := 0, sensors[0].Dist(door)
	for i := 1; i < m; i++ {
		if d := sensors[i].Dist(door); d < bestDist {
			best, bestDist = i, d
		}
	}
	chosen = append(chosen, best)
	used[best] = true

	for len(chosen) < m {
		next, nextScore := -1, -1.0
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			// Distance to nearest chosen sensor.
			minD := sensors[i].Dist(sensors[chosen[0]])
			for _, c := range chosen[1:] {
				if d := sensors[i].Dist(sensors[c]); d < minD {
					minD = d
				}
			}
			if minD > nextScore {
				next, nextScore = i, minD
			}
		}
		chosen = append(chosen, next)
		used[next] = true
	}
	return chosen
}

// SubsetPositions resolves a subset of sensor indices to positions.
func (l *Layout) SubsetPositions(subset []int) []geom.Point {
	out := make([]geom.Point, len(subset))
	for i, idx := range subset {
		out[i] = l.Sensors[idx]
	}
	return out
}

// Validate checks the layout's internal consistency: workstations and
// sensors inside the bounds, a door on the boundary, at least one
// workstation and two sensors.
func (l *Layout) Validate() error {
	if len(l.Workstations) == 0 {
		return fmt.Errorf("office %q: no workstations", l.Name)
	}
	if len(l.Sensors) < 2 {
		return fmt.Errorf("office %q: need at least 2 sensors, got %d", l.Name, len(l.Sensors))
	}
	for i, w := range l.Workstations {
		if !l.Bounds.Contains(w) {
			return fmt.Errorf("office %q: workstation %d at %v outside bounds", l.Name, i, w)
		}
	}
	for i, s := range l.Sensors {
		if !l.Bounds.Contains(s) {
			return fmt.Errorf("office %q: sensor %d at %v outside bounds", l.Name, i, s)
		}
	}
	if !l.Bounds.Contains(l.Door) {
		return fmt.Errorf("office %q: door at %v outside bounds", l.Name, l.Door)
	}
	if l.Corridor <= l.Bounds.Min.Y || l.Corridor >= l.Bounds.Max.Y {
		return fmt.Errorf("office %q: corridor y=%v outside bounds", l.Name, l.Corridor)
	}
	return nil
}
