package office

import (
	"testing"

	"fadewich/internal/geom"
)

func TestPresetsValidate(t *testing.T) {
	for _, l := range []*Layout{Paper(), Small(), Wide()} {
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
	}
}

func TestPaperLayoutShape(t *testing.T) {
	l := Paper()
	if l.NumWorkstations() != 3 {
		t.Fatalf("workstations %d", l.NumWorkstations())
	}
	if l.NumSensors() != 9 {
		t.Fatalf("sensors %d", l.NumSensors())
	}
	if l.Bounds.Width() != 6 || l.Bounds.Height() != 3 {
		t.Fatalf("bounds %vx%v, want 6x3", l.Bounds.Width(), l.Bounds.Height())
	}
}

func TestDeparturePaths(t *testing.T) {
	l := Paper()
	for ws := 0; ws < l.NumWorkstations(); ws++ {
		p, err := l.DeparturePath(ws)
		if err != nil {
			t.Fatal(err)
		}
		wp := p.Waypoints()
		if wp[0] != l.Workstations[ws] {
			t.Fatalf("path %d does not start at the seat", ws)
		}
		if wp[len(wp)-1] != l.Door {
			t.Fatalf("path %d does not end at the door", ws)
		}
		// The paper's t∆ reasoning needs multi-second walks.
		if p.Length() < 2 {
			t.Fatalf("path %d suspiciously short: %vm", ws, p.Length())
		}
		// Paths stay inside the room.
		for s := 0.0; s <= p.Length(); s += 0.1 {
			if !l.Bounds.Contains(p.At(s)) {
				t.Fatalf("path %d leaves the room at %v", ws, p.At(s))
			}
		}
	}
}

func TestEntryPathIsReversedDeparture(t *testing.T) {
	l := Paper()
	dep, _ := l.DeparturePath(1)
	ent, err := l.EntryPath(1)
	if err != nil {
		t.Fatal(err)
	}
	if ent.At(0) != l.Door {
		t.Fatal("entry path must start at the door")
	}
	if ent.Length() != dep.Length() {
		t.Fatal("entry path length differs from departure")
	}
}

func TestPathErrors(t *testing.T) {
	l := Paper()
	if _, err := l.DeparturePath(-1); err == nil {
		t.Fatal("negative workstation accepted")
	}
	if _, err := l.DeparturePath(99); err == nil {
		t.Fatal("out-of-range workstation accepted")
	}
	if _, err := l.EntryPath(99); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
}

func TestSensorSubsetsNested(t *testing.T) {
	l := Paper()
	prev := map[int]bool{}
	for n := 2; n <= 9; n++ {
		sub, err := l.SensorSubset(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(sub) != n {
			t.Fatalf("subset size %d, want %d", len(sub), n)
		}
		seen := map[int]bool{}
		for _, s := range sub {
			if s < 0 || s >= l.NumSensors() {
				t.Fatalf("sensor index %d out of range", s)
			}
			if seen[s] {
				t.Fatalf("duplicate sensor %d in subset", s)
			}
			seen[s] = true
		}
		// Subsets must be nested: every previous sensor still included.
		for s := range prev {
			if !seen[s] {
				t.Fatalf("subset %d dropped sensor %d from subset %d", n, s, n-1)
			}
		}
		prev = seen
	}
}

func TestSensorSubsetD5Last(t *testing.T) {
	// The paper's RMI analysis found d5 least informative; our deployment
	// order adds it last.
	l := Paper()
	full, _ := l.SensorSubset(9)
	if full[8] != 4 { // d5 is index 4
		t.Fatalf("last deployed sensor is d%d, want d5", full[8]+1)
	}
	eight, _ := l.SensorSubset(8)
	for _, s := range eight {
		if s == 4 {
			t.Fatal("d5 included in the 8-sensor subset")
		}
	}
}

func TestSensorSubsetErrors(t *testing.T) {
	l := Paper()
	if _, err := l.SensorSubset(1); err == nil {
		t.Fatal("subset of 1 accepted")
	}
	if _, err := l.SensorSubset(10); err == nil {
		t.Fatal("oversized subset accepted")
	}
}

func TestGenericLayoutsUseGreedyOrder(t *testing.T) {
	for _, l := range []*Layout{Small(), Wide()} {
		sub, err := l.SensorSubset(3)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		// Greedy order starts at the sensor nearest the door.
		best, bestD := 0, l.Sensors[0].Dist(l.Door)
		for i, s := range l.Sensors {
			if d := s.Dist(l.Door); d < bestD {
				best, bestD = i, d
			}
		}
		if sub[0] != best {
			t.Fatalf("%s: first sensor %d, want door-nearest %d", l.Name, sub[0], best)
		}
	}
}

func TestSubsetPositions(t *testing.T) {
	l := Paper()
	pos := l.SubsetPositions([]int{0, 4})
	if pos[0] != l.Sensors[0] || pos[1] != l.Sensors[4] {
		t.Fatalf("positions %v", pos)
	}
}

func TestValidateCatchesBrokenLayouts(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Layout)
	}{
		{"no workstations", func(l *Layout) { l.Workstations = nil }},
		{"one sensor", func(l *Layout) { l.Sensors = l.Sensors[:1] }},
		{"workstation outside", func(l *Layout) { l.Workstations[0] = geom.Point{X: 99, Y: 99} }},
		{"sensor outside", func(l *Layout) { l.Sensors[0] = geom.Point{X: -5, Y: 0} }},
		{"door outside", func(l *Layout) { l.Door = geom.Point{X: 100, Y: 0} }},
		{"corridor outside", func(l *Layout) { l.Corridor = 50 }},
	}
	for _, c := range cases {
		l := Paper()
		c.mutate(l)
		if err := l.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted broken layout", c.name)
		}
	}
}
