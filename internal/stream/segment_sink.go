package stream

import (
	"fmt"
	"sync"

	"fadewich/internal/engine"
	"fadewich/internal/segment"
	"fadewich/internal/wire"
)

// SegmentSink persists the action stream to a durable segment log
// (package segment): every dispatched batch becomes one wire frame in a
// rotating segment file, with an atomically-updated manifest of sealed
// segments. After a crash, segment.OpenDir (or fadewich-tail) replays
// everything up to the last complete frame; the fsync policy in the
// configuration chooses how much a machine crash may cost.
type SegmentSink struct {
	mu     sync.Mutex
	w      *segment.Writer
	closed bool
	// ver/compress mirror the writer's config: the (codec, compressed)
	// frame variant this sink pulls from an encode-once fan-out.
	ver      wire.Version
	compress bool
}

// NewSegmentSink opens (creating if needed) the segment directory of
// cfg and returns a sink appending the action stream to it. A directory
// with earlier segments is continued, never rewritten: the sink starts
// a fresh segment at the next sequence number.
func NewSegmentSink(cfg segment.Config) (*SegmentSink, error) {
	w, err := segment.NewWriter(cfg)
	if err != nil {
		return nil, fmt.Errorf("stream: segment sink: %w", err)
	}
	ver := cfg.Version
	if ver == 0 {
		ver = wire.V1JSONL
	}
	return &SegmentSink{w: w, ver: ver, compress: cfg.Compress}, nil
}

// Write appends one batch as one frame, rotating segments as
// configured.
func (s *SegmentSink) Write(batch []engine.OfficeAction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSinkClosed
	}
	if err := s.w.Append(batch); err != nil {
		return fmt.Errorf("stream: segment sink: %w", err)
	}
	return nil
}

// WriteEncoded implements FrameSink: the sink pulls its configured
// (codec, compressed) variant from the cycle's shared EncodedBatch and
// appends the pre-encoded frame as-is — no second encode, no mutation
// of the shared bytes.
func (s *SegmentSink) WriteEncoded(e *EncodedBatch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSinkClosed
	}
	f, err := e.Frame(s.ver, s.compress)
	if err != nil {
		return fmt.Errorf("stream: segment sink: %w", err)
	}
	if err := s.w.AppendEncoded(f.Wire, f.Logical, f.Batch); err != nil {
		return fmt.Errorf("stream: segment sink: %w", err)
	}
	return nil
}

// Maintain runs the segment directory's maintenance jobs (compaction,
// replication, retention — see segment.MaintainOptions) under the
// sink's lock, so they never interleave with an in-flight Write.
func (s *SegmentSink) Maintain(opt segment.MaintainOptions) (segment.MaintainResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return segment.MaintainResult{}, ErrSinkClosed
	}
	res, err := s.w.Maintain(opt)
	if err != nil {
		return res, fmt.Errorf("stream: segment sink: %w", err)
	}
	return res, nil
}

// Sync forces the active segment to stable storage, regardless of the
// configured fsync policy.
func (s *SegmentSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSinkClosed
	}
	if err := s.w.Sync(); err != nil {
		return fmt.Errorf("stream: segment sink: %w", err)
	}
	return nil
}

// Close seals the active segment and writes the final manifest.
// Idempotent.
func (s *SegmentSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.w.Close(); err != nil {
		return fmt.Errorf("stream: segment sink: %w", err)
	}
	return nil
}

// Stats snapshots the underlying segment writer's counters.
func (s *SegmentSink) Stats() segment.WriterStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Stats()
}

// Sealed returns a copy of the directory's sealed-segment manifest, as
// the underlying writer knows it.
func (s *SegmentSink) Sealed() []segment.Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Sealed()
}
