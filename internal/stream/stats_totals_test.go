package stream

import "testing"

// TestStatsTotals pins the fleet-wide fold: member counters plus the
// retired aggregate, Office -1, depth summed over live queues only.
func TestStatsTotals(t *testing.T) {
	s := Stats{
		Offices: []OfficeStats{
			{Office: 0, Depth: 2, Pushed: 10, Dispatched: 7, Dropped: 1},
			{Office: 3, Depth: 1, Pushed: 5, Dispatched: 4, Dropped: 0},
		},
		Retired: OfficeStats{Office: -1, Pushed: 20, Dispatched: 18, Dropped: 2},
	}
	got := s.Totals()
	want := OfficeStats{Office: -1, Depth: 3, Pushed: 35, Dispatched: 29, Dropped: 3}
	if got != want {
		t.Fatalf("Totals() = %+v, want %+v", got, want)
	}
	if empty := (Stats{}).Totals(); empty != (OfficeStats{Office: -1}) {
		t.Fatalf("zero Stats folds to %+v", empty)
	}
}
