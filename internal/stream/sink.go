// Sinks: the pluggable backends the merged fleet action stream is pumped
// into. All sinks consume whole dispatched batches and share one wire
// layer (package wire: versioned frames, JSONL or binary payloads);
// they are safe for use from the pump goroutine plus a closing
// goroutine.

package stream

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"sync"
	"time"

	"fadewich/internal/engine"
	"fadewich/internal/rng"
	"fadewich/internal/wire"
)

// ErrSinkClosed is returned by Write on a closed sink.
var ErrSinkClosed = errors.New("stream: sink closed")

// Sink consumes dispatched batches of the merged fleet action stream.
// Write is called from the Ingestor's pump goroutine, one batch at a
// time, in dispatch order; a non-nil error marks the sink broken (the
// pump stops writing and surfaces the error). Close flushes buffered
// data and releases resources; it must be safe to call after a Write
// error and more than once.
type Sink interface {
	Write(batch []engine.OfficeAction) error
	Close() error
}

// AppendJSONL appends the codec-v1 JSONL wire encoding of a batch to
// dst and returns the extended slice.
//
// Deprecated: the wire encoding moved to the versioned frame layer; use
// wire.AppendJSONL. This wrapper remains for callers of the pre-frame
// API and encodes identical bytes.
func AppendJSONL(dst []byte, batch []engine.OfficeAction) []byte {
	return wire.AppendJSONL(dst, batch)
}

// LogSink appends the action stream to a JSONL file (one JSON object per
// action — the unframed codec-v1 payload), buffered, flushed on Close.
type LogSink struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	buf []byte
}

// NewLogSink creates (or truncates) the file at path and returns a sink
// writing the JSONL action stream to it. An unwritable path fails here,
// not at the first Write.
func NewLogSink(path string) (*LogSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("stream: log sink: %w", err)
	}
	return &LogSink{f: f, w: bufio.NewWriterSize(f, 64<<10)}, nil
}

// Write appends one batch to the file.
func (s *LogSink) Write(batch []engine.OfficeAction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return ErrSinkClosed
	}
	s.buf = wire.AppendJSONL(s.buf[:0], batch)
	if _, err := s.w.Write(s.buf); err != nil {
		return fmt.Errorf("stream: log sink: %w", err)
	}
	return nil
}

// Close flushes the buffer and closes the file. Idempotent.
func (s *LogSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	flushErr := s.w.Flush()
	closeErr := s.f.Close()
	s.f, s.w = nil, nil
	if flushErr != nil {
		return fmt.Errorf("stream: log sink: %w", flushErr)
	}
	if closeErr != nil {
		return fmt.Errorf("stream: log sink: %w", closeErr)
	}
	return nil
}

// TCPSinkStats snapshot the delivery counters of a TCPSink.
type TCPSinkStats struct {
	// Frames counts frames delivered to the peer.
	Frames uint64
	// Attempts counts frame write attempts, including retries — with a
	// healthy peer it equals Frames.
	Attempts uint64
	// Redials counts connections re-established after a loss.
	Redials uint64
	// DialFailures and WriteFailures count the individual failed
	// attempts behind those redials.
	DialFailures  uint64
	WriteFailures uint64
}

// TCPSink streams the action stream to a TCP peer as wire frames
// (magic + version + flags, length, payload, CRC32C — see package
// wire), one frame per dispatched batch. Frames are atomic units — on a
// connection error the sink redials and resends the whole current
// frame, so a consumer never observes a torn frame, though it may
// observe a resent one after a mid-frame disconnect.
//
// Redials back off exponentially: the pause doubles with every
// consecutive failed attempt, from Backoff up to BackoffMax, each pause
// jittered into [d/2, d) by a deterministic generator seeded from the
// peer address — a fleet of sinks desynchronises its redial storms
// while every individual sink remains exactly reproducible.
//
// The exported fields may be tuned before the first Write; afterwards
// the sink owns them.
type TCPSink struct {
	// DialTimeout bounds each (re)connection attempt. Default 5 s.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write, so a stalled peer surfaces
	// as an error instead of blocking the pump forever. Default 10 s.
	WriteTimeout time.Duration
	// Retries is how many times Write redials after a connection error
	// before giving up. Default 3.
	Retries int
	// Backoff is the base pause before the first redial attempt.
	// Default 50 ms.
	Backoff time.Duration
	// BackoffMax caps the exponential growth of the pause. Default 2 s.
	BackoffMax time.Duration
	// Version selects the wire codec of the frames. Default
	// wire.V1JSONL.
	Version wire.Version

	addr string

	mu     sync.Mutex
	conn   net.Conn
	frame  []byte
	closed bool
	// streak counts consecutive failed attempts across Writes; it sets
	// the backoff exponent and resets on a delivered frame.
	streak int
	jitter *rng.Source
	stats  TCPSinkStats
}

// NewTCPSink dials addr and returns a sink streaming wire frames to it.
// The initial dial failing is an error here; later connection failures
// are retried by Write.
func NewTCPSink(addr string) (*TCPSink, error) {
	h := fnv.New64a()
	h.Write([]byte(addr))
	s := &TCPSink{
		DialTimeout:  5 * time.Second,
		WriteTimeout: 10 * time.Second,
		Retries:      3,
		Backoff:      50 * time.Millisecond,
		BackoffMax:   2 * time.Second,
		Version:      wire.V1JSONL,
		addr:         addr,
		jitter:       rng.New(h.Sum64()),
	}
	conn, err := net.DialTimeout("tcp", addr, s.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("stream: tcp sink %s: %w", addr, err)
	}
	s.conn = conn
	return s, nil
}

// backoffDelay returns the jittered pause before the next redial
// attempt, exponential in the current failure streak.
func (s *TCPSink) backoffDelay() time.Duration {
	base, ceil := s.Backoff, s.BackoffMax
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if ceil <= 0 {
		ceil = 2 * time.Second
	}
	d := base
	for i := 0; i < s.streak && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	half := d / 2
	return half + time.Duration(s.jitter.Float64()*float64(half))
}

// Write sends one batch as a single wire frame, redialing with capped
// exponential backoff up to Retries times on connection errors.
func (s *TCPSink) Write(batch []engine.OfficeAction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSinkClosed
	}
	var err error
	s.frame, err = wire.AppendFrame(s.frame[:0], s.Version, batch)
	if err != nil {
		return fmt.Errorf("stream: tcp sink %s: %w", s.addr, err)
	}

	var lastErr error
	for attempt := 0; attempt <= s.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(s.backoffDelay())
		}
		s.stats.Attempts++
		if s.conn == nil {
			conn, err := net.DialTimeout("tcp", s.addr, s.DialTimeout)
			if err != nil {
				lastErr = err
				s.streak++
				s.stats.DialFailures++
				continue
			}
			s.conn = conn
			s.stats.Redials++
		}
		s.conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		if _, err := s.conn.Write(s.frame); err != nil {
			lastErr = err
			s.streak++
			s.stats.WriteFailures++
			s.conn.Close()
			s.conn = nil
			continue
		}
		s.streak = 0
		s.stats.Frames++
		return nil
	}
	return fmt.Errorf("stream: tcp sink %s: %w", s.addr, lastErr)
}

// Stats snapshots the delivery counters.
func (s *TCPSink) Stats() TCPSinkStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close closes the connection. Idempotent.
func (s *TCPSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.conn == nil {
		return nil
	}
	err := s.conn.Close()
	s.conn = nil
	if err != nil {
		return fmt.Errorf("stream: tcp sink %s: %w", s.addr, err)
	}
	return nil
}

// RingSink keeps the most recent actions in a fixed-capacity in-memory
// ring — the inspection/test sink. When full, each new action overwrites
// the oldest and bumps the Overwritten counter.
type RingSink struct {
	mu          sync.Mutex
	buf         []engine.OfficeAction
	start, n    int
	overwritten uint64
	closed      bool
}

// NewRingSink returns a ring holding up to capacity actions (0 selects
// the default of 1024).
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 1024
	}
	return &RingSink{buf: make([]engine.OfficeAction, capacity)}
}

// Write appends the batch's actions, overwriting the oldest on wrap.
func (s *RingSink) Write(batch []engine.OfficeAction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSinkClosed
	}
	for _, a := range batch {
		if s.n == len(s.buf) {
			s.buf[s.start] = a
			s.start = (s.start + 1) % len(s.buf)
			s.overwritten++
		} else {
			s.buf[(s.start+s.n)%len(s.buf)] = a
			s.n++
		}
	}
	return nil
}

// Close marks the ring closed; its contents stay readable. Idempotent.
func (s *RingSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// Actions returns the retained actions, oldest first.
func (s *RingSink) Actions() []engine.OfficeAction {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]engine.OfficeAction, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.buf[(s.start+i)%len(s.buf)]
	}
	return out
}

// Len returns the number of retained actions.
func (s *RingSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Overwritten returns how many actions were evicted by wraparound.
func (s *RingSink) Overwritten() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overwritten
}

// multiSink fans every batch out to several sinks.
type multiSink struct {
	sinks []Sink
}

// NewMultiSink returns a sink fanning every Write and Close out to all
// the given sinks. One sink failing does not stop delivery to the
// others; the errors of all failing sinks are joined.
func NewMultiSink(sinks ...Sink) Sink {
	return &multiSink{sinks: append([]Sink(nil), sinks...)}
}

// Write delivers the batch to every sink, joining any errors.
func (s *multiSink) Write(batch []engine.OfficeAction) error {
	var errs []error
	for _, snk := range s.sinks {
		if err := snk.Write(batch); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close closes every sink, joining any errors.
func (s *multiSink) Close() error {
	var errs []error
	for _, snk := range s.sinks {
		if err := snk.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
