// Sinks: the pluggable backends the merged fleet action stream is pumped
// into. All sinks consume whole dispatched batches and share one wire
// layer (package wire: versioned frames, JSONL or binary payloads);
// they are safe for use from the pump goroutine plus a closing
// goroutine.

package stream

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"sync"
	"time"

	"fadewich/internal/engine"
	"fadewich/internal/rng"
	"fadewich/internal/wire"
)

// ErrSinkClosed is returned by Write on a closed sink.
var ErrSinkClosed = errors.New("stream: sink closed")

// Sink consumes dispatched batches of the merged fleet action stream.
// Write is called from the Ingestor's pump goroutine, one batch at a
// time, in dispatch order; a non-nil error marks the sink broken (the
// pump stops writing and surfaces the error). Close flushes buffered
// data and releases resources; it must be safe to call after a Write
// error and more than once.
type Sink interface {
	Write(batch []engine.OfficeAction) error
	Close() error
}

// EpochSink is the optional second face of a sink that can carry the
// cluster epoch protocol: WriteEpoch delivers one dispatch cycle's
// batch together with its producer-assigned epoch number. Unlike
// Write, WriteEpoch is also called with an empty batch — "this epoch
// dispatched nothing" is information the downstream merge watermark
// needs. The Ingestor's pump prefers this face for epoch-stamped
// flushes (see Ingestor.FlushEpoch) and falls back to plain non-empty
// Writes on sinks without it.
type EpochSink interface {
	Sink
	WriteEpoch(epoch uint64, batch []engine.OfficeAction) error
}

// AppendJSONL appends the codec-v1 JSONL wire encoding of a batch to
// dst and returns the extended slice.
//
// Deprecated: the wire encoding moved to the versioned frame layer; use
// wire.AppendJSONL. This wrapper remains for callers of the pre-frame
// API and encodes identical bytes.
func AppendJSONL(dst []byte, batch []engine.OfficeAction) []byte {
	return wire.AppendJSONL(dst, batch)
}

// LogSink appends the action stream to a JSONL file (one JSON object per
// action — the unframed codec-v1 payload), buffered, flushed on Close.
type LogSink struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	buf []byte
}

// NewLogSink creates (or truncates) the file at path and returns a sink
// writing the JSONL action stream to it. An unwritable path fails here,
// not at the first Write.
func NewLogSink(path string) (*LogSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("stream: log sink: %w", err)
	}
	return &LogSink{f: f, w: bufio.NewWriterSize(f, 64<<10)}, nil
}

// Write appends one batch to the file.
func (s *LogSink) Write(batch []engine.OfficeAction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return ErrSinkClosed
	}
	s.buf = wire.AppendJSONL(s.buf[:0], batch)
	if _, err := s.w.Write(s.buf); err != nil {
		return fmt.Errorf("stream: log sink: %w", err)
	}
	return nil
}

// Close flushes the buffer and closes the file. Idempotent.
func (s *LogSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	flushErr := s.w.Flush()
	closeErr := s.f.Close()
	s.f, s.w = nil, nil
	if flushErr != nil {
		return fmt.Errorf("stream: log sink: %w", flushErr)
	}
	if closeErr != nil {
		return fmt.Errorf("stream: log sink: %w", closeErr)
	}
	return nil
}

// TCPSinkStats snapshot the delivery counters of a TCPSink.
type TCPSinkStats struct {
	// Frames counts frames delivered to the peer.
	Frames uint64
	// Attempts counts frame write attempts, including retries — with a
	// healthy peer it equals Frames.
	Attempts uint64
	// Redials counts connections re-established after a loss.
	Redials uint64
	// DialFailures and WriteFailures count the individual failed
	// attempts behind those redials.
	DialFailures  uint64
	WriteFailures uint64
	// Bytes counts the logical (uncompressed-equivalent) frame bytes of
	// delivered frames; WireBytes counts the bytes actually sent. They
	// are equal on a sink without compression, and WireBytes/Bytes is
	// the on-wire compression ratio otherwise. Resent frames count
	// once, like Frames.
	Bytes     uint64
	WireBytes uint64
}

// TCPSink streams the action stream to a TCP peer as wire frames
// (magic + version + flags, length, payload, CRC32C — see package
// wire), one frame per dispatched batch. Frames are atomic units — on a
// connection error the sink redials and resends the whole current
// frame, so a consumer never observes a torn frame, though it may
// observe a resent one after a mid-frame disconnect.
//
// Redials back off exponentially: the pause doubles with every
// consecutive failed attempt, from Backoff up to BackoffMax, each pause
// jittered into [d/2, d) by a deterministic generator seeded from the
// peer address — a fleet of sinks desynchronises its redial storms
// while every individual sink remains exactly reproducible.
//
// The exported fields may be tuned before the first Write; afterwards
// the sink owns them.
type TCPSink struct {
	// DialTimeout bounds each (re)connection attempt. Default 5 s.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write, so a stalled peer surfaces
	// as an error instead of blocking the pump forever. Default 10 s.
	WriteTimeout time.Duration
	// Retries is how many times Write redials after a connection error
	// before giving up. Default 3.
	Retries int
	// Backoff is the base pause before the first redial attempt.
	// Default 50 ms.
	Backoff time.Duration
	// BackoffMax caps the exponential growth of the pause. Default 2 s.
	BackoffMax time.Duration
	// Version selects the wire codec of the frames. Default
	// wire.V1JSONL.
	Version wire.Version
	// Source, when non-zero, switches the sink to the cluster's tagged
	// mode: every frame carries this worker source ID and an epoch
	// (wire.FlagTagged), batches must arrive via WriteEpoch with
	// strictly increasing epochs, and Close sends a FlagFinal frame so
	// the downstream router knows the stream ended cleanly. Plain
	// Write is refused in this mode — an untagged batch has no place
	// in an epoch-merged stream, and dropping it silently would corrupt
	// the cross-node order. Default 0 (untagged, the historical
	// behavior).
	Source uint8
	// Compress, when set, deflates frame bodies at or above
	// wire.DefaultCompressMin (wire.FlagCompressed); small or
	// incompressible batches still go out as plain frames. The decoded
	// stream is byte-identical either way — any frame-aware consumer
	// inflates transparently. Default off.
	Compress bool

	addr string

	mu      sync.Mutex
	conn    net.Conn
	frame   []byte
	logical int // uncompressed-equivalent size of s.frame
	closed  bool
	// lastEpoch/wroteEpoch track the tagged mode's epoch monotonicity
	// and give the final frame an epoch past every delivered one.
	lastEpoch  uint64
	wroteEpoch bool
	// streak counts consecutive failed attempts across Writes; it sets
	// the backoff exponent and resets on a delivered frame.
	streak int
	jitter *rng.Source
	stats  TCPSinkStats
}

// NewTCPSink dials addr and returns a sink streaming wire frames to it.
// The initial dial failing is an error here; later connection failures
// are retried by Write.
func NewTCPSink(addr string) (*TCPSink, error) {
	h := fnv.New64a()
	h.Write([]byte(addr))
	s := &TCPSink{
		DialTimeout:  5 * time.Second,
		WriteTimeout: 10 * time.Second,
		Retries:      3,
		Backoff:      50 * time.Millisecond,
		BackoffMax:   2 * time.Second,
		Version:      wire.V1JSONL,
		addr:         addr,
		jitter:       rng.New(h.Sum64()),
	}
	conn, err := net.DialTimeout("tcp", addr, s.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("stream: tcp sink %s: %w", addr, err)
	}
	s.conn = conn
	return s, nil
}

// backoffDelay returns the jittered pause before the next redial
// attempt, exponential in the current failure streak.
func (s *TCPSink) backoffDelay() time.Duration {
	base, ceil := s.Backoff, s.BackoffMax
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if ceil <= 0 {
		ceil = 2 * time.Second
	}
	d := base
	for i := 0; i < s.streak && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	half := d / 2
	return half + time.Duration(s.jitter.Float64()*float64(half))
}

// Write sends one batch as a single wire frame, redialing with capped
// exponential backoff up to Retries times on connection errors. In
// tagged mode (Source non-zero) Write is refused: batches must carry
// an epoch, via WriteEpoch.
func (s *TCPSink) Write(batch []engine.OfficeAction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSinkClosed
	}
	if s.Source != 0 {
		return fmt.Errorf("stream: tcp sink %s: tagged sink (source %d) got an untagged batch — drive dispatches with epoch flushes", s.addr, s.Source)
	}
	if err := s.encodeLocked(batch); err != nil {
		return err
	}
	return s.sendLocked()
}

// encodeLocked builds the untagged frame for batch into s.frame,
// honouring the Compress knob, and records its logical size.
func (s *TCPSink) encodeLocked(batch []engine.OfficeAction) error {
	var err error
	if s.Compress {
		s.frame, s.logical, err = wire.AppendFrameCompressed(s.frame[:0], s.Version, batch, 0)
	} else {
		s.frame, err = wire.AppendFrame(s.frame[:0], s.Version, batch)
		s.logical = len(s.frame)
	}
	if err != nil {
		return fmt.Errorf("stream: tcp sink %s: %w", s.addr, err)
	}
	return nil
}

// WriteEpoch sends one epoch's batch as a single tagged wire frame
// (source, epoch, possibly empty payload). Epochs must be strictly
// increasing; requires tagged mode.
func (s *TCPSink) WriteEpoch(epoch uint64, batch []engine.OfficeAction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSinkClosed
	}
	if s.Source == 0 {
		// Without a source ID there is nothing to tag with: carry the
		// batch as a plain frame, matching the pump's fallback for
		// sinks that are not epoch-aware. Empty epochs write nothing.
		if len(batch) == 0 {
			return nil
		}
		if err := s.encodeLocked(batch); err != nil {
			return err
		}
		return s.sendLocked()
	}
	if s.wroteEpoch && epoch <= s.lastEpoch {
		return fmt.Errorf("stream: tcp sink %s: epoch %d is not after the last delivered epoch %d", s.addr, epoch, s.lastEpoch)
	}
	var err error
	if s.Compress {
		s.frame, s.logical, err = wire.AppendTaggedFrameCompressed(s.frame[:0], s.Version, wire.Tag{Source: s.Source, Epoch: epoch}, batch, 0)
	} else {
		s.frame, err = wire.AppendTaggedFrame(s.frame[:0], s.Version, wire.Tag{Source: s.Source, Epoch: epoch}, batch)
		s.logical = len(s.frame)
	}
	if err != nil {
		return fmt.Errorf("stream: tcp sink %s: %w", s.addr, err)
	}
	if err := s.sendLocked(); err != nil {
		return err
	}
	s.lastEpoch, s.wroteEpoch = epoch, true
	return nil
}

// sendLocked delivers s.frame, redialing with capped exponential
// backoff up to Retries times on connection errors.
func (s *TCPSink) sendLocked() error {
	var lastErr error
	for attempt := 0; attempt <= s.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(s.backoffDelay())
		}
		s.stats.Attempts++
		if s.conn == nil {
			conn, err := net.DialTimeout("tcp", s.addr, s.DialTimeout)
			if err != nil {
				lastErr = err
				s.streak++
				s.stats.DialFailures++
				continue
			}
			s.conn = conn
			s.stats.Redials++
		}
		s.conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		if _, err := s.conn.Write(s.frame); err != nil {
			lastErr = err
			s.streak++
			s.stats.WriteFailures++
			s.conn.Close()
			s.conn = nil
			continue
		}
		s.streak = 0
		s.stats.Frames++
		s.stats.Bytes += uint64(s.logical)
		s.stats.WireBytes += uint64(len(s.frame))
		return nil
	}
	return fmt.Errorf("stream: tcp sink %s: %w", s.addr, lastErr)
}

// Stats snapshots the delivery counters.
func (s *TCPSink) Stats() TCPSinkStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close closes the connection. In tagged mode it first sends the
// FlagFinal end-of-stream frame (epoch one past the last delivered),
// so the downstream router can distinguish a clean drain from a lost
// worker; a final frame that cannot be delivered after the usual
// retries is the returned error. Idempotent.
func (s *TCPSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var finalErr error
	if s.Source != 0 {
		var epoch uint64
		if s.wroteEpoch {
			epoch = s.lastEpoch + 1
		}
		// The final frame is empty and never worth compressing.
		s.frame, finalErr = wire.AppendTaggedFrame(s.frame[:0], s.Version, wire.Tag{Source: s.Source, Epoch: epoch, Final: true}, nil)
		s.logical = len(s.frame)
		if finalErr == nil {
			finalErr = s.sendLocked()
		}
	}
	if s.conn == nil {
		return finalErr
	}
	err := s.conn.Close()
	s.conn = nil
	if finalErr != nil {
		return finalErr
	}
	if err != nil {
		return fmt.Errorf("stream: tcp sink %s: %w", s.addr, err)
	}
	return nil
}

// RingSink keeps the most recent actions in a fixed-capacity in-memory
// ring — the inspection/test sink. When full, each new action overwrites
// the oldest and bumps the Overwritten counter.
type RingSink struct {
	mu          sync.Mutex
	buf         []engine.OfficeAction
	start, n    int
	overwritten uint64
	closed      bool
}

// NewRingSink returns a ring holding up to capacity actions (0 selects
// the default of 1024).
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 1024
	}
	return &RingSink{buf: make([]engine.OfficeAction, capacity)}
}

// Write appends the batch's actions, overwriting the oldest on wrap.
func (s *RingSink) Write(batch []engine.OfficeAction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSinkClosed
	}
	for _, a := range batch {
		if s.n == len(s.buf) {
			s.buf[s.start] = a
			s.start = (s.start + 1) % len(s.buf)
			s.overwritten++
		} else {
			s.buf[(s.start+s.n)%len(s.buf)] = a
			s.n++
		}
	}
	return nil
}

// Close marks the ring closed; its contents stay readable. Idempotent.
func (s *RingSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// Actions returns the retained actions, oldest first.
func (s *RingSink) Actions() []engine.OfficeAction {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]engine.OfficeAction, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.buf[(s.start+i)%len(s.buf)]
	}
	return out
}

// Len returns the number of retained actions.
func (s *RingSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Overwritten returns how many actions were evicted by wraparound.
func (s *RingSink) Overwritten() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overwritten
}

// multiSink fans every batch out to several sinks.
type multiSink struct {
	sinks []Sink
}

// NewMultiSink returns a sink fanning every Write and Close out to all
// the given sinks. One sink failing does not stop delivery to the
// others; the errors of all failing sinks are joined. The multi sink
// is also an EpochSink: epoch-stamped batches reach epoch-aware
// members through WriteEpoch (empty ones included) and the rest
// through plain Write (empty ones skipped) — this is how a worker
// daemon feeds its tagged TCP forward and its untagged broadcaster and
// segment log from the same dispatch.
func NewMultiSink(sinks ...Sink) Sink {
	return &multiSink{sinks: append([]Sink(nil), sinks...)}
}

// Write delivers the batch to every sink, joining any errors.
func (s *multiSink) Write(batch []engine.OfficeAction) error {
	var errs []error
	for _, snk := range s.sinks {
		if err := snk.Write(batch); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// WriteEpoch delivers an epoch-stamped batch: epoch-aware members get
// the epoch (and empty batches), plain members get non-empty Writes.
func (s *multiSink) WriteEpoch(epoch uint64, batch []engine.OfficeAction) error {
	var errs []error
	for _, snk := range s.sinks {
		var err error
		if es, ok := snk.(EpochSink); ok {
			err = es.WriteEpoch(epoch, batch)
		} else if len(batch) > 0 {
			err = snk.Write(batch)
		}
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close closes every sink, joining any errors.
func (s *multiSink) Close() error {
	var errs []error
	for _, snk := range s.sinks {
		if err := snk.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// RemapSink rewrites each action's office ID through a lookup before
// handing the batch to an inner sink, leaving the caller's batch
// untouched (batches are shared across a fan-out, so the rewrite works
// on a reused scratch copy). A cluster worker wraps its tagged TCP
// forward in one: the fleet's worker-local office IDs become the
// coordinator-assigned global IDs, which is what makes the routed
// cross-worker stream byte-identical to a single-process fleet's. The
// lookup returning false for an ID is an error — an unmapped office
// must break the stream loudly, not ship a wrong ID.
type RemapSink struct {
	inner   Sink
	innerEp EpochSink // inner's epoch face, nil if absent
	remap   func(int) (int, bool)

	mu      sync.Mutex
	scratch []engine.OfficeAction
}

// NewRemapSink wraps inner with the office-ID remapping.
func NewRemapSink(inner Sink, remap func(int) (int, bool)) *RemapSink {
	s := &RemapSink{inner: inner, remap: remap}
	s.innerEp, _ = inner.(EpochSink)
	return s
}

// remapLocked copies batch into the scratch buffer with office IDs
// rewritten.
func (s *RemapSink) remapLocked(batch []engine.OfficeAction) ([]engine.OfficeAction, error) {
	out := s.scratch[:0]
	for _, a := range batch {
		id, ok := s.remap(a.Office)
		if !ok {
			return nil, fmt.Errorf("stream: remap sink: no mapping for office %d", a.Office)
		}
		a.Office = id
		out = append(out, a)
	}
	s.scratch = out
	return out, nil
}

// Write remaps and forwards one batch.
func (s *RemapSink) Write(batch []engine.OfficeAction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out, err := s.remapLocked(batch)
	if err != nil {
		return err
	}
	return s.inner.Write(out)
}

// WriteEpoch remaps and forwards one epoch-stamped batch. If the inner
// sink is not epoch-aware the epoch is dropped and empty batches are
// skipped, mirroring the pump's fallback.
func (s *RemapSink) WriteEpoch(epoch uint64, batch []engine.OfficeAction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out, err := s.remapLocked(batch)
	if err != nil {
		return err
	}
	if s.innerEp != nil {
		return s.innerEp.WriteEpoch(epoch, out)
	}
	if len(out) == 0 {
		return nil
	}
	return s.inner.Write(out)
}

// Close closes the inner sink.
func (s *RemapSink) Close() error { return s.inner.Close() }
