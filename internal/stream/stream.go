// Package stream is the asynchronous ingestion-and-delivery layer on top
// of engine.Fleet. The fleet's synchronous API (Run in, merged actions
// out) couples tick arrival to fleet dispatch: every producer must
// assemble a full batch and wait for it to run. Package stream decouples
// the two ends with an Ingestor — bounded per-office tick queues feeding
// a dispatcher goroutine — and streams the merged action output to
// pluggable Sink backends (JSONL log files, wire-framed TCP streams, a
// durable segment log, an in-memory ring, fan-out to several at once)
// on a dedicated pump goroutine. The byte formats all live in package
// wire; the segment log's storage layer lives in package segment.
//
// Data flow:
//
//	Push / PushInput            AddOffice / RemoveOffice
//	      │  (bounded per-office queues;      │ (queues created clean /
//	      │   Block / DropOldest /            │  drained then retired,
//	      │   ErrorOnFull backpressure,       │  at a batch boundary)
//	      │   depth and drop counters)        │
//	      ▼                                   ▼
//	dispatcher goroutine ──► engine.Fleet.Run ──► merged, time-
//	      │                                       ordered actions
//	      ├──► Config.OnBatch (synchronous tap)
//	      ▼
//	pump goroutine ──► Sink.Write (LogSink / TCPSink / SegmentSink /
//	                               RingSink / Multi)
//
// Backpressure: every office has its own queue, so one slow or bursty
// office fills only its own queue and cannot stall ingestion for the
// rest of the fleet; what happens when a queue is full is the Policy.
// A slow Sink propagates backpressure the other way — the pump's batch
// channel fills, the dispatcher blocks handing off, queues fill, and the
// per-office policy engages — while a failing Sink never blocks the
// pipeline: the pump records the first error (Err, Flush, Close all
// surface it) and drains subsequent batches so the dispatcher and
// producers cannot deadlock.
//
// Concurrency: the queues are independent in the lock sense too. Each
// officeQueue carries its own mutex (and space condition for Block
// pushers), so producers feeding different offices never serialise
// against each other on the hot Push path; membership is a copy-on-write
// snapshot read via one atomic load, and queue depths, the live
// auto-batch threshold and the dispatch totals are atomics. The
// Ingestor-level mutex is reduced to the dispatcher's control state
// (flush tickets, latency trigger, close, first error). Lock order is
// officeQueue.mu before Ingestor.mu: Push signals the dispatcher while
// holding its queue lock, and nothing acquires a queue lock while
// holding the control lock — the dispatcher inspects queue state through
// the atomics and takes queue locks only outside its control sections.
//
// Elastic membership: offices are addressed by the fleet's stable IDs.
// AddOffice registers the office with the fleet and creates its queue in
// one step, so the tenant starts clean at the next dispatch. RemoveOffice
// first forces a full flush — the office's already-queued ticks are
// dispatched and their actions emitted through the sink as the office's
// final flush — then retires the queue and removes the office from the
// fleet, folding its counters into the retired totals of Stats.
//
// Ordering and determinism: a dispatch cycle snapshots everything queued
// and runs it as one fleet batch, so the sink observes the concatenation
// of Run outputs — each batch internally ordered by (time, office),
// exactly the total order the synchronous API returns. A single producer
// that pushes the same ticks and calls Flush at the same boundaries as
// its synchronous Run calls therefore obtains a byte-identical stream
// (this is tested against a 64-office fleet).
package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/wire"
)

// DefaultQueue is the per-office tick queue capacity selected when
// Config.Queue is zero (≈51 s of paper-rate samples per office).
const DefaultQueue = 256

// Policy selects what Push does when an office's tick queue is full.
type Policy int

const (
	// Block makes Push wait until the dispatcher drains the office's
	// queue. No ticks are lost; arrival slows to dispatch speed.
	Block Policy = iota
	// DropOldest evicts the oldest queued tick to make room, counting it
	// in the office's drop counter. Arrival never blocks; the office's
	// clock advances only by the ticks that survive.
	DropOldest
	// ErrorOnFull makes Push fail fast with ErrQueueFull, leaving the
	// queue unchanged (the rejected tick is counted as dropped).
	ErrorOnFull
)

// String returns the CLI spelling of the policy (block, drop-oldest,
// error).
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	case ErrorOnFull:
		return "error"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps the CLI spellings block, drop-oldest and error back to
// a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-oldest":
		return DropOldest, nil
	case "error":
		return ErrorOnFull, nil
	default:
		return 0, fmt.Errorf("stream: unknown backpressure policy %q (want block, drop-oldest or error)", s)
	}
}

// Errors returned by the Ingestor.
var (
	// ErrQueueFull is returned by Push under the ErrorOnFull policy when
	// the office's queue has no room.
	ErrQueueFull = errors.New("stream: office tick queue full")
	// ErrClosed is returned by Push, PushInput, Flush and the membership
	// methods after Close.
	ErrClosed = errors.New("stream: ingestor closed")
	// ErrUnknownOffice is returned when an office ID does not name a
	// member of the fleet (never registered, or already removed).
	ErrUnknownOffice = errors.New("stream: office is not a member of the fleet")
)

// Config parameterises an Ingestor.
type Config struct {
	// Queue is the per-office tick queue capacity. 0 selects
	// DefaultQueue.
	Queue int
	// OnFull is the backpressure policy applied by Push when an office's
	// queue is full. The zero value is Block.
	OnFull Policy
	// BatchTicks, when positive, auto-dispatches as soon as any office
	// has that many ticks queued, without waiting for a Flush. Leave it
	// zero for strictly Flush-driven (deterministic) cadence.
	BatchTicks int
	// AdaptiveBatch, in free-running mode (BatchTicks > 0), scales the
	// auto-dispatch threshold from the queue depth observed at each
	// snapshot: a backlog of at least twice the threshold doubles it
	// (larger batches amortise dispatch overhead when producers are
	// ahead), a depth at or below half halves it (small batches favour
	// latency when the stream is sparse), clamped to [BatchTicks,
	// Queue]. BatchTicks is the floor and the starting point; requires
	// BatchTicks > 0. Thresholds steer only *when* batches dispatch,
	// never their content or per-office order. Pair it with
	// MaxBatchLatency in free-running deployments: the threshold only
	// decays at a dispatch, so once a burst has raised it, a stream
	// that turns sparse (and never Flushes) needs the latency trigger
	// as the backstop that keeps dispatching — and decaying — at all.
	AdaptiveBatch bool
	// MaxBatchLatency, when positive, bounds how long queued work may
	// wait for a dispatch: a wall-clock trigger fires at most that long
	// after the first tick (or input event) queued since the last
	// dispatch, so idle or slow offices flush promptly without a
	// caller-driven Flush or a filled BatchTicks threshold. Leave it zero
	// for strictly caller-driven cadence. The trigger only affects *when*
	// batches dispatch, never their content or order.
	MaxBatchLatency time.Duration
	// Sink, when non-nil, receives every dispatched batch of the merged
	// action stream on the pump goroutine. The Ingestor owns the sink
	// from this point: Close flushes and closes it.
	Sink Sink
	// OnBatch, when non-nil, is called synchronously on the dispatcher
	// goroutine with every non-empty dispatched batch, before the batch
	// is handed to the pump. It is the in-process tap for callers that
	// need the actions back (Flush returns only after OnBatch does).
	OnBatch func([]engine.OfficeAction)
}

// officeQueue is one office's bounded tick queue plus its counters. Each
// queue has its own lock, so producers feeding different offices never
// contend; depth and pendN mirror len(ticks) and len(pend) as atomics so
// the dispatcher's wake-up predicates can scan the fleet without taking
// any queue lock.
type officeQueue struct {
	mu    sync.Mutex
	space sync.Cond // Block-policy pushers wait for queue space
	ticks [][]float64
	// base is the number of ticks ever removed from the front of the
	// queue (dispatched or dropped); base+len(ticks) is the sequence
	// number the next pushed tick will get. Input events record the
	// sequence number they were pushed at, so the dispatcher can place
	// them at the right tick of the batch even after drops.
	base       uint64
	pushed     uint64
	dispatched uint64
	dropped    uint64
	// pend holds the office's queued input notifications (the office ID
	// is implicit; the dispatcher emits them office by office, which is
	// equivalent because the fleet routes and orders events per office).
	pend []pendingInput
	// retired marks a queue whose office has been removed (its counters
	// folded into the retired totals): pushes fail, snapshots skip it.
	retired bool
	// thresholdHit latches the auto-dispatch wake-up: the first Push at
	// or past the live threshold signals the dispatcher, later ones
	// stay quiet until the next snapshot resets the latch — one control-
	// mutex acquisition per office per dispatch cycle instead of one per
	// queued tick. The dispatcher independently re-checks thresholdDue
	// at the end of every cycle, so a threshold lowered mid-climb is
	// still noticed.
	thresholdHit bool
	// depth and pendN mirror len(ticks) and len(pend) for the
	// dispatcher's lock-free threshold/drain scans.
	depth atomic.Int64
	pendN atomic.Int64
	// free recycles dispatched (or evicted) sample slices back to Push,
	// and spare recycles the previous snapshot's tick-header array, so a
	// steady-state Push/dispatch cycle allocates nothing: each office
	// ping-pongs between two header arrays and at most queue-capacity
	// sample slices.
	free  [][]float64
	spare [][]float64
}

// newOfficeQueue returns an empty queue with its condition wired up.
func newOfficeQueue() *officeQueue {
	q := &officeQueue{}
	q.space.L = &q.mu
	return q
}

// recycleTick returns one sample slice to the office's freelist, capped
// at the queue capacity (more can never be in flight for one office).
func (q *officeQueue) recycleTick(tick []float64, queue int) {
	if len(q.free) < queue {
		q.free = append(q.free, tick)
	}
}

// pendingInput is a queued input notification: deliver to workstation ws
// before the office's tick with sequence number seq.
type pendingInput struct {
	ws  int
	seq uint64
}

// membership is the copy-on-write membership snapshot: the member office
// IDs (ascending) and their queues. Readers load it with one atomic
// load; AddOffice and RemoveOffice swap in a fresh copy under the
// control mutex. The ids slice and map are immutable once published.
type membership struct {
	ids []int
	q   map[int]*officeQueue
}

// Ingestor is the asynchronous front door of an engine.Fleet: producers
// Push per-office RSSI ticks (and PushInput notifications) into bounded
// queues; a dispatcher goroutine batches whatever is queued through
// Fleet.Run and forwards the merged action stream to the configured Sink
// via the pump goroutine. Offices are addressed by the fleet's stable
// IDs; AddOffice and RemoveOffice change the membership while ticks flow.
//
// All methods are safe for concurrent use. The wrapped Fleet's membership
// must only be changed through the Ingestor while it is open, and the
// Fleet must not be driven directly.
type Ingestor struct {
	fleet      *engine.Fleet
	queue      int
	onFull     Policy
	batchTicks int
	adaptive   bool
	maxLatency time.Duration
	sink       Sink
	onBatch    func([]engine.OfficeAction)

	// members is the copy-on-write membership snapshot; see membership.
	members atomic.Pointer[membership]
	// closedFlag mirrors closed for lock-free Push/PushInput checks.
	closedFlag atomic.Bool
	// needSpace counts Block-policy pushers waiting for a dispatch.
	needSpace atomic.Int64
	// effBatch is the live auto-dispatch threshold: fixed at batchTicks
	// normally, scaled within [batchTicks, queue] under AdaptiveBatch.
	effBatch atomic.Int64
	// nBatches/nActions are the dispatch totals.
	nBatches atomic.Uint64
	nActions atomic.Uint64
	// pendingNanos is the MaxBatchLatency clock: the UnixNano of the
	// first tick or input event queued since the last dispatch, 0 when
	// nothing is pending. Armed by a Push/PushInput CAS, cleared by the
	// dispatcher just before it snapshots.
	pendingNanos atomic.Int64

	// mu is the control mutex: dispatcher wake-up and completion state
	// only. Never acquire an officeQueue.mu while holding it (Push takes
	// them in the opposite order).
	mu   sync.Mutex
	work sync.Cond // dispatcher waits for work
	done sync.Cond // Flush waiters wait for their dispatch cycle
	// retired accumulates the counters of offices removed from the
	// fleet, so fleet-wide Stats totals survive churn.
	retired OfficeStats
	// flushSeq counts flush requests; doneSeq is the highest request
	// fully served (dispatch ran over a queue snapshot taken at or after
	// the request). Close issues a final flush request of its own.
	flushSeq, doneSeq uint64
	closed            bool
	err               error
	// epochVal/epochSet carry a FlushEpoch caller's epoch number to the
	// dispatch cycle that serves its ticket; the cycle consumes them
	// under the lock and stamps its pump hand-off with the epoch.
	epochVal uint64
	epochSet bool
	// latencyDue is set by the latency goroutine when the oldest queued
	// work has waited past MaxBatchLatency; the dispatcher treats it
	// like a flush trigger.
	latencyDue bool

	// batchBuf/evsBuf are the dispatcher's reusable snapshot buffers;
	// only the dispatcher goroutine touches them.
	batchBuf []engine.OfficeBatch
	evsBuf   []engine.InputEvent

	pumpCh         chan pumpItem
	pumpDone       chan struct{}
	dispatcherDone chan struct{}
	latencyKick    chan struct{}
	latencyStop    chan struct{}
	latencyDone    chan struct{}
}

// NewIngestor wraps the fleet in an asynchronous ingestion layer and
// starts its dispatcher (and, with a Sink configured, pump) goroutines.
// Close releases them.
func NewIngestor(fleet *engine.Fleet, cfg Config) (*Ingestor, error) {
	if fleet == nil {
		return nil, errors.New("stream: nil fleet")
	}
	if cfg.Queue < 0 {
		return nil, fmt.Errorf("stream: negative queue capacity %d", cfg.Queue)
	}
	queue := cfg.Queue
	if queue == 0 {
		queue = DefaultQueue
	}
	if cfg.BatchTicks > queue {
		return nil, fmt.Errorf("stream: batch ticks %d exceed queue capacity %d", cfg.BatchTicks, queue)
	}
	if cfg.AdaptiveBatch && cfg.BatchTicks <= 0 {
		return nil, errors.New("stream: AdaptiveBatch needs BatchTicks > 0 as its floor")
	}
	if cfg.MaxBatchLatency < 0 {
		return nil, fmt.Errorf("stream: negative max batch latency %v", cfg.MaxBatchLatency)
	}
	in := &Ingestor{
		fleet:          fleet,
		queue:          queue,
		onFull:         cfg.OnFull,
		batchTicks:     cfg.BatchTicks,
		adaptive:       cfg.AdaptiveBatch,
		maxLatency:     cfg.MaxBatchLatency,
		sink:           cfg.Sink,
		onBatch:        cfg.OnBatch,
		dispatcherDone: make(chan struct{}),
	}
	in.effBatch.Store(int64(cfg.BatchTicks))
	m := &membership{q: make(map[int]*officeQueue)}
	for _, id := range fleet.IDs() {
		m.q[id] = newOfficeQueue()
		m.ids = append(m.ids, id)
	}
	in.members.Store(m)
	in.work.L = &in.mu
	in.done.L = &in.mu
	if in.sink != nil {
		in.pumpCh = make(chan pumpItem, 8)
		in.pumpDone = make(chan struct{})
		go in.pump()
	}
	if in.maxLatency > 0 {
		in.latencyKick = make(chan struct{}, 1)
		in.latencyStop = make(chan struct{})
		in.latencyDone = make(chan struct{})
		go in.latencyLoop()
	}
	go in.dispatch()
	return in, nil
}

// addMember publishes a membership snapshot extended with id. Caller
// holds in.mu (which serialises all membership swaps).
func (in *Ingestor) addMember(id int, q *officeQueue) {
	old := in.members.Load()
	nm := &membership{
		ids: insertID(append(make([]int, 0, len(old.ids)+1), old.ids...), id),
		q:   make(map[int]*officeQueue, len(old.q)+1),
	}
	for k, v := range old.q {
		nm.q[k] = v
	}
	nm.q[id] = q
	in.members.Store(nm)
}

// dropMember publishes a membership snapshot without id. Caller holds
// in.mu.
func (in *Ingestor) dropMember(id int) {
	old := in.members.Load()
	nm := &membership{
		ids: deleteID(append(make([]int, 0, len(old.ids)), old.ids...), id),
		q:   make(map[int]*officeQueue, len(old.q)),
	}
	for k, v := range old.q {
		if k != id {
			nm.q[k] = v
		}
	}
	in.members.Store(nm)
}

// AddOffice joins a new tenant: it registers the office with the fleet
// (a zero-valued cfg inherits the fleet's default configuration, see
// engine.Fleet.AddOffice) and creates its empty tick queue in one step,
// returning the office's stable ID. The office participates from the
// next dispatch on. Safe to call while ticks are flowing.
func (in *Ingestor) AddOffice(cfg core.Config) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return 0, ErrClosed
	}
	id, err := in.fleet.AddOffice(cfg)
	if err != nil {
		return 0, err
	}
	in.addMember(id, newOfficeQueue())
	return id, nil
}

// RemoveOffice retires a tenant: it drains the office's already-queued
// ticks — forcing a dispatch cycle whose merged actions (the office's
// final flush) flow through the OnBatch tap and the sink like any other
// batch — then retires the queue, removes the office from the fleet, and
// folds its counters into Stats' retired totals. Ticks pushed
// concurrently with the removal may be discarded and counted as dropped.
// It returns the office's final System for inspection.
func (in *Ingestor) RemoveOffice(id int) (*core.System, error) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil, ErrClosed
	}
	if in.members.Load().q[id] == nil {
		in.mu.Unlock()
		return nil, fmt.Errorf("%w (office %d)", ErrUnknownOffice, id)
	}
	// Final flush: dispatch everything queued, this office included.
	in.flushSeq++
	ticket := in.flushSeq
	in.work.Signal()
	for in.doneSeq < ticket && !in.closed {
		in.done.Wait()
	}
	if in.closed {
		in.mu.Unlock()
		return nil, ErrClosed
	}
	in.mu.Unlock()

	// Retire the queue outside the control lock (lock order: queue locks
	// are never taken under in.mu). The retired flag is the
	// winner-decides point for concurrent removals of the same ID.
	q := in.members.Load().q[id]
	if q == nil {
		return nil, fmt.Errorf("%w (office %d)", ErrUnknownOffice, id)
	}
	q.mu.Lock()
	if q.retired {
		q.mu.Unlock()
		return nil, fmt.Errorf("%w (office %d)", ErrUnknownOffice, id)
	}
	q.retired = true
	final := OfficeStats{
		Pushed:     q.pushed,
		Dispatched: q.dispatched,
		// Anything still queued arrived during the drain; it is lost.
		Dropped: q.dropped + uint64(len(q.ticks)),
	}
	q.depth.Store(0)
	q.pendN.Store(0)
	q.space.Broadcast()
	q.mu.Unlock()

	in.mu.Lock()
	defer in.mu.Unlock()
	in.retired.Pushed += final.Pushed
	in.retired.Dispatched += final.Dispatched
	in.retired.Dropped += final.Dropped
	in.dropMember(id)
	return in.fleet.RemoveOffice(id)
}

// insertID inserts id into the ascending slice ids.
func insertID(ids []int, id int) []int {
	i := sort.SearchInts(ids, id)
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// deleteID removes id from the ascending slice ids.
func deleteID(ids []int, id int) []int {
	i := sort.SearchInts(ids, id)
	if i < len(ids) && ids[i] == id {
		ids = append(ids[:i], ids[i+1:]...)
	}
	return ids
}

// wakeDispatcher signals the dispatcher's condition under the control
// mutex (a bare Signal could race the dispatcher between its predicate
// check and Wait). Callers may hold an officeQueue lock.
func (in *Ingestor) wakeDispatcher() {
	in.mu.Lock()
	in.work.Signal()
	in.mu.Unlock()
}

// Push queues one RSSI tick (one sample per stream) for an office, named
// by its stable ID. The sample slice is copied, so the caller may reuse
// its buffer. When the office's queue is full the configured Policy
// decides: Block waits for the dispatcher, DropOldest evicts, ErrorOnFull
// returns ErrQueueFull. A Block-policy Push whose office is removed while
// it waits returns ErrUnknownOffice. Pushes to different offices take
// only their own office's lock, so producers do not contend with each
// other.
func (in *Ingestor) Push(office int, rssi []float64) error {
	q := in.members.Load().q[office]
	if q == nil {
		if in.closedFlag.Load() {
			return ErrClosed
		}
		return fmt.Errorf("%w (office %d)", ErrUnknownOffice, office)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.retired && !in.closedFlag.Load() && len(q.ticks) >= in.queue {
		switch in.onFull {
		case DropOldest:
			q.recycleTick(q.ticks[0], in.queue)
			q.ticks = q.ticks[1:]
			q.base++
			q.dropped++
			q.depth.Add(-1)
		case ErrorOnFull:
			q.dropped++
			return fmt.Errorf("%w (office %d, capacity %d)", ErrQueueFull, office, in.queue)
		default: // Block
			in.needSpace.Add(1)
			in.wakeDispatcher()
			q.space.Wait()
			in.needSpace.Add(-1)
		}
	}
	if in.closedFlag.Load() {
		return ErrClosed
	}
	if q.retired {
		return fmt.Errorf("%w (office %d removed while push blocked)", ErrUnknownOffice, office)
	}
	// Copy the caller's samples into a recycled slice when one fits
	// (stream counts are per-office constants, so after the first
	// dispatch cycle this never allocates).
	var tick []float64
	if n := len(q.free); n > 0 && cap(q.free[n-1]) >= len(rssi) {
		tick = q.free[n-1][:len(rssi)]
		q.free = q.free[:n-1]
	} else {
		tick = make([]float64, len(rssi))
	}
	copy(tick, rssi)
	q.ticks = append(q.ticks, tick)
	q.pushed++
	q.depth.Add(1)
	if in.batchTicks > 0 && !q.thresholdHit && int64(len(q.ticks)) >= in.effBatch.Load() {
		q.thresholdHit = true
		in.wakeDispatcher()
	}
	in.markPending()
	return nil
}

// markPending starts the MaxBatchLatency clock on the first piece of
// work queued since the last dispatch and wakes the latency goroutine to
// re-arm its timer.
func (in *Ingestor) markPending() {
	if in.maxLatency <= 0 {
		return
	}
	if in.pendingNanos.CompareAndSwap(0, time.Now().UnixNano()) {
		select {
		case in.latencyKick <- struct{}{}:
		default:
		}
	}
}

// latencyLoop is the MaxBatchLatency goroutine: it sleeps until the
// oldest queued work crosses the latency bound, then flags the
// dispatcher (latencyDue) exactly like a flush trigger. It holds no
// state of its own beyond the timer; the pendingNanos clock is
// authoritative.
func (in *Ingestor) latencyLoop() {
	defer close(in.latencyDone)
	timer := time.NewTimer(in.maxLatency)
	defer timer.Stop()
	for {
		select {
		case <-in.latencyStop:
			return
		case <-in.latencyKick:
		case <-timer.C:
		}
		if in.closedFlag.Load() {
			return
		}
		wait := in.maxLatency
		if ns := in.pendingNanos.Load(); ns != 0 {
			wait = time.Until(time.Unix(0, ns).Add(in.maxLatency))
			if wait <= 0 {
				in.mu.Lock()
				in.latencyDue = true
				in.work.Signal()
				in.mu.Unlock()
				wait = in.maxLatency
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
	}
}

// PushInput queues a keyboard/mouse notification for one office (by
// stable ID). It is delivered before the office's next pushed tick —
// i.e. after every tick queued so far — matching System.NotifyInput
// between Tick calls.
func (in *Ingestor) PushInput(office, workstation int) error {
	if in.closedFlag.Load() {
		return ErrClosed
	}
	q := in.members.Load().q[office]
	if q == nil {
		return fmt.Errorf("%w (office %d)", ErrUnknownOffice, office)
	}
	q.mu.Lock()
	if in.closedFlag.Load() {
		q.mu.Unlock()
		return ErrClosed
	}
	if q.retired {
		q.mu.Unlock()
		return fmt.Errorf("%w (office %d)", ErrUnknownOffice, office)
	}
	q.pend = append(q.pend, pendingInput{ws: workstation, seq: q.base + uint64(len(q.ticks))})
	q.pendN.Add(1)
	q.mu.Unlock()
	in.markPending()
	return nil
}

// PushOffices feeds one pre-assembled, ID-addressed fleet batch through
// the queues exactly as Fleet.Run would consume it: per office, every
// input event with Tick <= t is delivered before tick t (ties in slice
// order), trailing events after the office's last tick; events whose
// office has no batch entry are delivered after that office's queued
// ticks. The per-office backpressure policy applies to every tick
// pushed. Pushing the same batches and calling Flush at the same
// boundaries as synchronous Run calls yields a byte-identical action
// stream.
func (in *Ingestor) PushOffices(batches []engine.OfficeBatch, evs []engine.InputEvent) error {
	// Validate membership upfront so a bad batch or event office rejects
	// the call before any tick is queued, rather than failing mid-push
	// with half the batch already ingested.
	if in.closedFlag.Load() {
		return ErrClosed
	}
	m := in.members.Load()
	seen := make(map[int]bool, len(batches))
	for _, ob := range batches {
		if m.q[ob.Office] == nil {
			return fmt.Errorf("%w (office %d)", ErrUnknownOffice, ob.Office)
		}
		if seen[ob.Office] {
			return fmt.Errorf("stream: duplicate batch entry for office %d", ob.Office)
		}
		seen[ob.Office] = true
	}
	for _, ev := range evs {
		if m.q[ev.Office] == nil {
			return fmt.Errorf("stream: input event: %w (office %d)", ErrUnknownOffice, ev.Office)
		}
	}

	for _, ob := range batches {
		var evsO []engine.InputEvent
		for _, ev := range evs {
			if ev.Office == ob.Office {
				evsO = append(evsO, ev)
			}
		}
		sort.SliceStable(evsO, func(a, b int) bool { return evsO[a].Tick < evsO[b].Tick })
		next := 0
		for t, n := 0, ob.NumTicks(); t < n; t++ {
			for next < len(evsO) && evsO[next].Tick <= t {
				if err := in.PushInput(ob.Office, evsO[next].Workstation); err != nil {
					return err
				}
				next++
			}
			if err := in.Push(ob.Office, ob.Row(t)); err != nil {
				return err
			}
		}
		for ; next < len(evsO); next++ {
			if err := in.PushInput(ob.Office, evsO[next].Workstation); err != nil {
				return err
			}
		}
	}
	for _, ev := range evs {
		if !seen[ev.Office] {
			if err := in.PushInput(ev.Office, ev.Workstation); err != nil {
				return err
			}
		}
	}
	return nil
}

// PushBatch feeds one dense fleet batch: sub[i] holds the ticks of the
// i-th member office in ascending-ID order (for a fleet that has seen no
// churn, office IDs equal positions 0..N-1), and len(sub) must equal the
// current fleet size. It is the bridge for callers porting synchronous
// dense RunBatch call sites; elastic callers should prefer PushOffices.
func (in *Ingestor) PushBatch(sub [][][]float64, evs []engine.InputEvent) error {
	if in.closedFlag.Load() {
		return ErrClosed
	}
	ids := in.members.Load().ids // immutable snapshot
	if len(sub) != len(ids) {
		return fmt.Errorf("stream: batch has %d offices, fleet has %d", len(sub), len(ids))
	}
	batches := make([]engine.OfficeBatch, len(sub))
	for i := range sub {
		batches[i] = engine.OfficeBatch{Office: ids[i], Ticks: sub[i]}
	}
	return in.PushOffices(batches, evs)
}

// Flush dispatches everything queued at the time of the call as one
// fleet batch and blocks until that dispatch — including the OnBatch tap
// — has completed and the batch has been handed to the sink pump. It
// returns the first pipeline error (fleet dispatch or sink) seen so far.
func (in *Ingestor) Flush() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return ErrClosed
	}
	in.flushSeq++
	ticket := in.flushSeq
	in.work.Signal()
	for in.doneSeq < ticket && !in.closed {
		in.done.Wait()
	}
	return in.err
}

// FlushEpoch is Flush with a caller-assigned epoch number attached:
// the dispatch cycle serving this request hands its batch to the sink
// pump stamped with the epoch — and hands it over even when the batch
// is empty, so an EpochSink emits exactly one (possibly empty) epoch
// frame per FlushEpoch call. This is the worker side of the cluster
// epoch protocol: the tick producer drives every worker's flushes with
// the same epoch sequence, and the stream router re-merges the
// per-worker frames epoch by epoch (see internal/cluster). Epoch
// flushes must be driven sequentially — one producer, each call after
// the previous returned; a concurrent second call errors rather than
// risk two epochs coalescing into one dispatch.
func (in *Ingestor) FlushEpoch(epoch uint64) error {
	if epoch > wire.MaxTagEpoch {
		return fmt.Errorf("stream: epoch %d exceeds the 32-bit wire field", epoch)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return ErrClosed
	}
	if in.epochSet {
		return errors.New("stream: concurrent epoch flushes (drive epochs from one producer, sequentially)")
	}
	in.epochVal, in.epochSet = epoch, true
	in.flushSeq++
	ticket := in.flushSeq
	in.work.Signal()
	for in.doneSeq < ticket && !in.closed {
		in.done.Wait()
	}
	return in.err
}

// Err returns the first pipeline error (fleet dispatch or sink write)
// recorded so far, without waiting.
func (in *Ingestor) Err() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.err
}

// Close dispatches any remaining queued ticks, stops the dispatcher,
// drains the pump, and flushes and closes the sink. It returns the first
// pipeline error, unblocks any Block-policy pushers with ErrClosed, and
// is idempotent.
func (in *Ingestor) Close() error {
	in.mu.Lock()
	if in.closed {
		err := in.err
		in.mu.Unlock()
		return err
	}
	in.closed = true
	in.closedFlag.Store(true)
	in.flushSeq++ // final drain
	in.work.Broadcast()
	in.done.Broadcast()
	in.mu.Unlock()

	// Unblock Block-policy pushers; they observe closedFlag on wake-up.
	m := in.members.Load()
	for _, q := range m.q {
		q.mu.Lock()
		q.space.Broadcast()
		q.mu.Unlock()
	}

	<-in.dispatcherDone
	if in.latencyStop != nil {
		close(in.latencyStop)
		<-in.latencyDone
	}
	if in.pumpCh != nil {
		close(in.pumpCh)
		<-in.pumpDone
	}
	var sinkErr error
	if in.sink != nil {
		sinkErr = in.sink.Close()
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if sinkErr != nil && in.err == nil {
		in.err = fmt.Errorf("stream: sink close: %w", sinkErr)
	}
	return in.err
}

// OfficeStats are one office's queue counters.
type OfficeStats struct {
	// Office is the office's stable fleet ID (-1 in Stats.Retired).
	Office int
	// Depth is the number of ticks currently queued.
	Depth int
	// Pushed counts ticks accepted into the queue.
	Pushed uint64
	// Dispatched counts ticks delivered to the fleet.
	Dispatched uint64
	// Dropped counts ticks lost to DropOldest eviction or ErrorOnFull
	// rejection.
	Dropped uint64
}

// Stats is a snapshot of the Ingestor's instrumentation.
type Stats struct {
	// Offices holds the member offices' queue counters, ascending by ID.
	Offices []OfficeStats
	// Retired aggregates the counters of offices removed from the fleet,
	// so fleet-wide totals survive churn (Office is -1, Depth 0).
	Retired OfficeStats
	// Batches counts dispatch cycles that delivered at least one tick or
	// input event; Actions counts the merged actions they produced.
	Batches, Actions uint64
	// AutoBatchTicks is the live auto-dispatch threshold: Config.
	// BatchTicks normally, its current adaptive scaling under
	// AdaptiveBatch, 0 when auto-dispatch is off.
	AutoBatchTicks int
	// Dropped is the fleet-wide total of dropped/rejected ticks,
	// including those of retired offices.
	Dropped uint64
}

// Totals folds the member offices' counters and the Retired aggregate
// into one fleet-wide OfficeStats: Office is -1, Depth is the sum of
// the live queue depths, and Pushed/Dispatched/Dropped span the whole
// ingestor lifetime across membership churn. This is the number a
// metrics endpoint exports and the number accounting tests balance
// (Pushed == Dispatched + Dropped + Depth once quiesced).
func (s Stats) Totals() OfficeStats {
	t := s.Retired
	t.Office = -1
	for _, o := range s.Offices {
		t.Depth += o.Depth
		t.Pushed += o.Pushed
		t.Dispatched += o.Dispatched
		t.Dropped += o.Dropped
	}
	return t
}

// Stats returns a snapshot of the per-office queue depth/drop counters
// and the dispatch totals. Counters are read office by office (each
// under its own lock), so a snapshot taken while ticks flow is
// consistent per office rather than across the fleet; a quiesced
// ingestor reads exactly.
func (in *Ingestor) Stats() Stats {
	in.mu.Lock()
	st := Stats{
		Retired:        in.retired,
		Batches:        in.nBatches.Load(),
		Actions:        in.nActions.Load(),
		AutoBatchTicks: int(in.effBatch.Load()),
		Dropped:        in.retired.Dropped,
	}
	in.mu.Unlock()
	st.Retired.Office = -1
	m := in.members.Load()
	st.Offices = make([]OfficeStats, 0, len(m.ids))
	for _, id := range m.ids {
		q := m.q[id]
		q.mu.Lock()
		st.Offices = append(st.Offices, OfficeStats{
			Office:     id,
			Depth:      len(q.ticks),
			Pushed:     q.pushed,
			Dispatched: q.dispatched,
			Dropped:    q.dropped,
		})
		st.Dropped += q.dropped
		q.mu.Unlock()
	}
	return st
}

// dispatch is the dispatcher goroutine: it waits for work (a flush
// request, a Block-policy pusher out of space, a BatchTicks threshold, a
// MaxBatchLatency expiry, or Close), snapshots the queues into one fleet
// batch, runs it, and hands the merged actions to the OnBatch tap and
// the sink pump. Its wake-up predicates read only atomics (queue depths,
// pending-input counts), so it takes no queue locks while holding the
// control mutex.
func (in *Ingestor) dispatch() {
	defer close(in.dispatcherDone)
	for {
		in.mu.Lock()
		for !in.closed && in.flushSeq == in.doneSeq && in.needSpace.Load() == 0 && !in.latencyDue && !in.thresholdDue() {
			in.work.Wait()
		}
		if in.closed && in.flushSeq == in.doneSeq && !in.anyQueued() {
			in.mu.Unlock()
			return
		}
		ticket := in.flushSeq
		epoch, hasEpoch := in.epochVal, in.epochSet
		in.epochSet = false
		in.latencyDue = false
		in.mu.Unlock()

		m := in.members.Load()
		batch, evs, n, maxDepth := in.takeSnapshot(m)

		var acts []engine.OfficeAction
		var err error
		if n > 0 || len(evs) > 0 {
			acts, err = in.fleet.Run(batch, evs)
		}
		if err == nil && len(acts) > 0 && in.onBatch != nil {
			in.onBatch(acts)
		}
		// Epoch-stamped cycles reach the pump even when empty: an
		// EpochSink must emit one frame per epoch so downstream merge
		// watermarks keep advancing through quiet epochs.
		if err == nil && in.pumpCh != nil && (len(acts) > 0 || hasEpoch) {
			in.pumpCh <- pumpItem{acts: acts, epoch: epoch, hasEpoch: hasEpoch}
		}

		in.recycleBatch(m, batch)
		if n > 0 || len(evs) > 0 {
			in.nBatches.Add(1)
			in.nActions.Add(uint64(len(acts)))
		}
		if in.adaptive && n > 0 {
			in.effBatch.Store(int64(nextAutoBatch(int(in.effBatch.Load()), in.batchTicks, in.queue, maxDepth)))
		}

		in.mu.Lock()
		if err != nil && in.err == nil {
			in.err = fmt.Errorf("stream: dispatch: %w", err)
		}
		if ticket > in.doneSeq {
			in.doneSeq = ticket
		}
		in.done.Broadcast()
		in.mu.Unlock()
	}
}

// thresholdDue reports whether auto-dispatch is due: some office has
// reached the live threshold (BatchTicks, or its adaptive scaling).
// Reads only atomics; safe under the control mutex.
func (in *Ingestor) thresholdDue() bool {
	if in.batchTicks <= 0 {
		return false
	}
	eff := in.effBatch.Load()
	for _, q := range in.members.Load().q {
		if q.depth.Load() >= eff {
			return true
		}
	}
	return false
}

// nextAutoBatch scales the auto-dispatch threshold from the queue depth
// observed when a batch was snapshotted: a backlog of at least twice
// the threshold means dispatches are falling behind arrivals (double
// it), a depth at or below half means the stream is sparse (halve it,
// favouring latency), anything between holds. Clamped to [floor, ceil].
func nextAutoBatch(cur, floor, ceil, depth int) int {
	switch {
	case depth >= 2*cur:
		cur *= 2
	case depth <= cur/2:
		cur /= 2
	}
	if cur < floor {
		cur = floor
	}
	if cur > ceil {
		cur = ceil
	}
	return cur
}

// anyQueued reports whether any ticks or input events are pending.
// Reads only atomics; safe under the control mutex.
func (in *Ingestor) anyQueued() bool {
	for _, q := range in.members.Load().q {
		if q.depth.Load() > 0 || q.pendN.Load() > 0 {
			return true
		}
	}
	return false
}

// takeSnapshot empties every office queue and its pending inputs into
// one ID-addressed fleet batch, advancing the queue bases — office by
// office, each under its own lock. Input sequence numbers are translated
// to batch-relative tick indices; events whose tick was dropped clamp to
// the start of the batch (the fleet delivers them before the first
// surviving tick). Emptied queues wake their Block-policy pushers.
// Retired queues are skipped. Only the dispatcher calls this (batchBuf/
// evsBuf are its private scratch).
func (in *Ingestor) takeSnapshot(m *membership) (batch []engine.OfficeBatch, evs []engine.InputEvent, n, maxDepth int) {
	// Restart the latency clock before touching the queues: work pushed
	// while the snapshot sweeps may or may not make this batch, so it
	// must be allowed to re-arm the trigger.
	in.pendingNanos.Store(0)
	evs = in.evsBuf[:0]
	batch = in.batchBuf[:0]
	for _, id := range m.ids {
		q := m.q[id]
		q.mu.Lock()
		if q.retired {
			q.mu.Unlock()
			continue
		}
		q.thresholdHit = false
		if len(q.ticks) > maxDepth {
			maxDepth = len(q.ticks)
		}
		for _, pi := range q.pend {
			tick := 0
			if pi.seq > q.base {
				tick = int(pi.seq - q.base)
			}
			evs = append(evs, engine.InputEvent{Office: id, Workstation: pi.ws, Tick: tick})
		}
		if len(q.pend) > 0 {
			q.pend = q.pend[:0]
			q.pendN.Store(0)
		}
		if len(q.ticks) > 0 {
			batch = append(batch, engine.OfficeBatch{Office: id, Ticks: q.ticks})
			n += len(q.ticks)
			q.base += uint64(len(q.ticks))
			q.dispatched += uint64(len(q.ticks))
			// Hand the snapshot out and refill from the office's spare
			// header array (ping-pong: the dispatcher returns this snapshot
			// as the new spare once the fleet is done with it).
			q.ticks = q.spare[:0]
			q.spare = nil
			q.depth.Store(0)
			q.space.Broadcast()
		}
		q.mu.Unlock()
	}
	in.evsBuf = evs
	in.batchBuf = batch
	return batch, evs, n, maxDepth
}

// recycleBatch returns a dispatched snapshot's buffers to their office
// queues: every sample slice goes back to the office freelist and the
// tick-header array becomes the office's spare. The fleet only reads the
// payload during Run, so by the time the dispatcher is here the buffers
// are free. Offices retired while the batch was in flight are skipped
// (their memory is garbage).
func (in *Ingestor) recycleBatch(m *membership, batch []engine.OfficeBatch) {
	for i := range batch {
		ob := &batch[i]
		q := m.q[ob.Office]
		if q != nil {
			q.mu.Lock()
			if !q.retired {
				for _, tick := range ob.Ticks {
					q.recycleTick(tick, in.queue)
				}
				if q.spare == nil {
					q.spare = ob.Ticks[:0]
				}
			}
			q.mu.Unlock()
		}
		*ob = engine.OfficeBatch{} // don't pin retired offices' buffers
	}
}

// pumpItem is one dispatch cycle's hand-off to the sink pump: the
// merged actions, plus the FlushEpoch number when the cycle served an
// epoch-stamped flush (in which case the item is delivered even with
// an empty batch).
type pumpItem struct {
	acts     []engine.OfficeAction
	epoch    uint64
	hasEpoch bool
}

// pump is the sink delivery goroutine: it forwards dispatched batches to
// the Sink in dispatch order. Epoch-stamped batches go through the
// sink's EpochSink face when it has one (empty batches included);
// sinks without one get plain non-empty Writes, epoch dropped. After
// the first write error it records the error and keeps draining the
// channel (discarding batches), so a broken sink can never deadlock
// the dispatcher or producers.
func (in *Ingestor) pump() {
	defer close(in.pumpDone)
	es, hasEpochSink := in.sink.(EpochSink)
	failed := false
	for item := range in.pumpCh {
		if failed {
			continue
		}
		var err error
		switch {
		case item.hasEpoch && hasEpochSink:
			err = es.WriteEpoch(item.epoch, item.acts)
		case len(item.acts) > 0:
			err = in.sink.Write(item.acts)
		}
		if err != nil {
			failed = true
			in.mu.Lock()
			if in.err == nil {
				in.err = fmt.Errorf("stream: sink: %w", err)
			}
			in.mu.Unlock()
		}
	}
}
