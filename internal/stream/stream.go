// Package stream is the asynchronous ingestion-and-delivery layer on top
// of engine.Fleet. The fleet's synchronous API (Run in, merged actions
// out) couples tick arrival to fleet dispatch: every producer must
// assemble a full batch and wait for it to run. Package stream decouples
// the two ends with an Ingestor — bounded per-office tick queues feeding
// a dispatcher goroutine — and streams the merged action output to
// pluggable Sink backends (JSONL log files, wire-framed TCP streams, a
// durable segment log, an in-memory ring, fan-out to several at once)
// on a dedicated pump goroutine. The byte formats all live in package
// wire; the segment log's storage layer lives in package segment.
//
// Data flow:
//
//	Push / PushInput            AddOffice / RemoveOffice
//	      │  (bounded per-office queues;      │ (queues created clean /
//	      │   Block / DropOldest /            │  drained then retired,
//	      │   ErrorOnFull backpressure,       │  at a batch boundary)
//	      │   depth and drop counters)        │
//	      ▼                                   ▼
//	dispatcher goroutine ──► engine.Fleet.Run ──► merged, time-
//	      │                                       ordered actions
//	      ├──► Config.OnBatch (synchronous tap)
//	      ▼
//	pump goroutine ──► Sink.Write (LogSink / TCPSink / SegmentSink /
//	                               RingSink / Multi)
//
// Backpressure: every office has its own queue, so one slow or bursty
// office fills only its own queue and cannot stall ingestion for the
// rest of the fleet; what happens when a queue is full is the Policy.
// A slow Sink propagates backpressure the other way — the pump's batch
// channel fills, the dispatcher blocks handing off, queues fill, and the
// per-office policy engages — while a failing Sink never blocks the
// pipeline: the pump records the first error (Err, Flush, Close all
// surface it) and drains subsequent batches so the dispatcher and
// producers cannot deadlock.
//
// Elastic membership: offices are addressed by the fleet's stable IDs.
// AddOffice registers the office with the fleet and creates its queue in
// one step, so the tenant starts clean at the next dispatch. RemoveOffice
// first forces a full flush — the office's already-queued ticks are
// dispatched and their actions emitted through the sink as the office's
// final flush — then retires the queue and removes the office from the
// fleet, folding its counters into the retired totals of Stats.
//
// Ordering and determinism: a dispatch cycle snapshots everything queued
// and runs it as one fleet batch, so the sink observes the concatenation
// of Run outputs — each batch internally ordered by (time, office),
// exactly the total order the synchronous API returns. A single producer
// that pushes the same ticks and calls Flush at the same boundaries as
// its synchronous Run calls therefore obtains a byte-identical stream
// (this is tested against a 64-office fleet).
package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/wire"
)

// DefaultQueue is the per-office tick queue capacity selected when
// Config.Queue is zero (≈51 s of paper-rate samples per office).
const DefaultQueue = 256

// Policy selects what Push does when an office's tick queue is full.
type Policy int

const (
	// Block makes Push wait until the dispatcher drains the office's
	// queue. No ticks are lost; arrival slows to dispatch speed.
	Block Policy = iota
	// DropOldest evicts the oldest queued tick to make room, counting it
	// in the office's drop counter. Arrival never blocks; the office's
	// clock advances only by the ticks that survive.
	DropOldest
	// ErrorOnFull makes Push fail fast with ErrQueueFull, leaving the
	// queue unchanged (the rejected tick is counted as dropped).
	ErrorOnFull
)

// String returns the CLI spelling of the policy (block, drop-oldest,
// error).
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	case ErrorOnFull:
		return "error"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps the CLI spellings block, drop-oldest and error back to
// a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-oldest":
		return DropOldest, nil
	case "error":
		return ErrorOnFull, nil
	default:
		return 0, fmt.Errorf("stream: unknown backpressure policy %q (want block, drop-oldest or error)", s)
	}
}

// Errors returned by the Ingestor.
var (
	// ErrQueueFull is returned by Push under the ErrorOnFull policy when
	// the office's queue has no room.
	ErrQueueFull = errors.New("stream: office tick queue full")
	// ErrClosed is returned by Push, PushInput, Flush and the membership
	// methods after Close.
	ErrClosed = errors.New("stream: ingestor closed")
	// ErrUnknownOffice is returned when an office ID does not name a
	// member of the fleet (never registered, or already removed).
	ErrUnknownOffice = errors.New("stream: office is not a member of the fleet")
)

// Config parameterises an Ingestor.
type Config struct {
	// Queue is the per-office tick queue capacity. 0 selects
	// DefaultQueue.
	Queue int
	// OnFull is the backpressure policy applied by Push when an office's
	// queue is full. The zero value is Block.
	OnFull Policy
	// BatchTicks, when positive, auto-dispatches as soon as any office
	// has that many ticks queued, without waiting for a Flush. Leave it
	// zero for strictly Flush-driven (deterministic) cadence.
	BatchTicks int
	// AdaptiveBatch, in free-running mode (BatchTicks > 0), scales the
	// auto-dispatch threshold from the queue depth observed at each
	// snapshot: a backlog of at least twice the threshold doubles it
	// (larger batches amortise dispatch overhead when producers are
	// ahead), a depth at or below half halves it (small batches favour
	// latency when the stream is sparse), clamped to [BatchTicks,
	// Queue]. BatchTicks is the floor and the starting point; requires
	// BatchTicks > 0. Thresholds steer only *when* batches dispatch,
	// never their content or per-office order. Pair it with
	// MaxBatchLatency in free-running deployments: the threshold only
	// decays at a dispatch, so once a burst has raised it, a stream
	// that turns sparse (and never Flushes) needs the latency trigger
	// as the backstop that keeps dispatching — and decaying — at all.
	AdaptiveBatch bool
	// MaxBatchLatency, when positive, bounds how long queued work may
	// wait for a dispatch: a wall-clock trigger fires at most that long
	// after the first tick (or input event) queued since the last
	// dispatch, so idle or slow offices flush promptly without a
	// caller-driven Flush or a filled BatchTicks threshold. Leave it zero
	// for strictly caller-driven cadence. The trigger only affects *when*
	// batches dispatch, never their content or order.
	MaxBatchLatency time.Duration
	// Sink, when non-nil, receives every dispatched batch of the merged
	// action stream on the pump goroutine. The Ingestor owns the sink
	// from this point: Close flushes and closes it.
	Sink Sink
	// OnBatch, when non-nil, is called synchronously on the dispatcher
	// goroutine with every non-empty dispatched batch, before the batch
	// is handed to the pump. It is the in-process tap for callers that
	// need the actions back (Flush returns only after OnBatch does).
	OnBatch func([]engine.OfficeAction)
}

// officeQueue is one office's bounded tick queue plus its counters.
type officeQueue struct {
	ticks [][]float64
	// base is the number of ticks ever removed from the front of the
	// queue (dispatched or dropped); base+len(ticks) is the sequence
	// number the next pushed tick will get. Input events record the
	// sequence number they were pushed at, so the dispatcher can place
	// them at the right tick of the batch even after drops.
	base       uint64
	pushed     uint64
	dispatched uint64
	dropped    uint64
	// free recycles dispatched (or evicted) sample slices back to Push,
	// and spare recycles the previous snapshot's tick-header array, so a
	// steady-state Push/dispatch cycle allocates nothing: each office
	// ping-pongs between two header arrays and at most queue-capacity
	// sample slices.
	free  [][]float64
	spare [][]float64
}

// recycleTick returns one sample slice to the office's freelist, capped
// at the queue capacity (more can never be in flight for one office).
func (q *officeQueue) recycleTick(tick []float64, queue int) {
	if len(q.free) < queue {
		q.free = append(q.free, tick)
	}
}

// pendingInput is a queued input notification: deliver to office/ws
// before the tick with sequence number seq.
type pendingInput struct {
	office, ws int
	seq        uint64
}

// Ingestor is the asynchronous front door of an engine.Fleet: producers
// Push per-office RSSI ticks (and PushInput notifications) into bounded
// queues; a dispatcher goroutine batches whatever is queued through
// Fleet.Run and forwards the merged action stream to the configured Sink
// via the pump goroutine. Offices are addressed by the fleet's stable
// IDs; AddOffice and RemoveOffice change the membership while ticks flow.
//
// All methods are safe for concurrent use. The wrapped Fleet's membership
// must only be changed through the Ingestor while it is open, and the
// Fleet must not be driven directly.
type Ingestor struct {
	fleet      *engine.Fleet
	queue      int
	onFull     Policy
	batchTicks int
	adaptive   bool
	maxLatency time.Duration
	sink       Sink
	onBatch    func([]engine.OfficeAction)

	mu    sync.Mutex
	work  sync.Cond // dispatcher waits for work
	space sync.Cond // Block-policy pushers wait for queue space
	done  sync.Cond // Flush waiters wait for their dispatch cycle
	q     map[int]*officeQueue
	ids   []int // member office IDs, ascending
	pend  []pendingInput
	// retired accumulates the counters of offices removed from the
	// fleet, so fleet-wide Stats totals survive churn.
	retired OfficeStats
	// flushSeq counts flush requests; doneSeq is the highest request
	// fully served (dispatch ran over a queue snapshot taken at or after
	// the request). Close issues a final flush request of its own.
	flushSeq, doneSeq uint64
	needSpace         int
	// effBatch is the live auto-dispatch threshold: fixed at batchTicks
	// normally, scaled within [batchTicks, queue] under AdaptiveBatch.
	effBatch int
	closed   bool
	err      error
	nBatches uint64
	nActions uint64
	// epochVal/epochSet carry a FlushEpoch caller's epoch number to the
	// dispatch cycle that serves its ticket; the cycle consumes them
	// under the lock and stamps its pump hand-off with the epoch.
	epochVal uint64
	epochSet bool
	// MaxBatchLatency state: when the first tick or input event since
	// the last dispatch is queued, pendingSince records the wall clock
	// and the latency goroutine is kicked; once the deadline passes it
	// sets latencyDue, which the dispatcher treats like a flush trigger.
	pendingSince time.Time
	latencyDue   bool

	// batchBuf/evsBuf are the dispatcher's reusable snapshot buffers;
	// only takeLocked and the dispatcher goroutine touch them.
	batchBuf []engine.OfficeBatch
	evsBuf   []engine.InputEvent

	pumpCh         chan pumpItem
	pumpDone       chan struct{}
	dispatcherDone chan struct{}
	latencyKick    chan struct{}
	latencyStop    chan struct{}
	latencyDone    chan struct{}
}

// NewIngestor wraps the fleet in an asynchronous ingestion layer and
// starts its dispatcher (and, with a Sink configured, pump) goroutines.
// Close releases them.
func NewIngestor(fleet *engine.Fleet, cfg Config) (*Ingestor, error) {
	if fleet == nil {
		return nil, errors.New("stream: nil fleet")
	}
	if cfg.Queue < 0 {
		return nil, fmt.Errorf("stream: negative queue capacity %d", cfg.Queue)
	}
	queue := cfg.Queue
	if queue == 0 {
		queue = DefaultQueue
	}
	if cfg.BatchTicks > queue {
		return nil, fmt.Errorf("stream: batch ticks %d exceed queue capacity %d", cfg.BatchTicks, queue)
	}
	if cfg.AdaptiveBatch && cfg.BatchTicks <= 0 {
		return nil, errors.New("stream: AdaptiveBatch needs BatchTicks > 0 as its floor")
	}
	if cfg.MaxBatchLatency < 0 {
		return nil, fmt.Errorf("stream: negative max batch latency %v", cfg.MaxBatchLatency)
	}
	in := &Ingestor{
		fleet:          fleet,
		queue:          queue,
		onFull:         cfg.OnFull,
		batchTicks:     cfg.BatchTicks,
		adaptive:       cfg.AdaptiveBatch,
		effBatch:       cfg.BatchTicks,
		maxLatency:     cfg.MaxBatchLatency,
		sink:           cfg.Sink,
		onBatch:        cfg.OnBatch,
		q:              make(map[int]*officeQueue),
		dispatcherDone: make(chan struct{}),
	}
	for _, id := range fleet.IDs() {
		in.q[id] = &officeQueue{}
		in.ids = append(in.ids, id)
	}
	in.work.L = &in.mu
	in.space.L = &in.mu
	in.done.L = &in.mu
	if in.sink != nil {
		in.pumpCh = make(chan pumpItem, 8)
		in.pumpDone = make(chan struct{})
		go in.pump()
	}
	if in.maxLatency > 0 {
		in.latencyKick = make(chan struct{}, 1)
		in.latencyStop = make(chan struct{})
		in.latencyDone = make(chan struct{})
		go in.latencyLoop()
	}
	go in.dispatch()
	return in, nil
}

// AddOffice joins a new tenant: it registers the office with the fleet
// (a zero-valued cfg inherits the fleet's default configuration, see
// engine.Fleet.AddOffice) and creates its empty tick queue in one step,
// returning the office's stable ID. The office participates from the
// next dispatch on. Safe to call while ticks are flowing.
func (in *Ingestor) AddOffice(cfg core.Config) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return 0, ErrClosed
	}
	id, err := in.fleet.AddOffice(cfg)
	if err != nil {
		return 0, err
	}
	in.q[id] = &officeQueue{}
	in.ids = insertID(in.ids, id)
	return id, nil
}

// RemoveOffice retires a tenant: it drains the office's already-queued
// ticks — forcing a dispatch cycle whose merged actions (the office's
// final flush) flow through the OnBatch tap and the sink like any other
// batch — then deletes the queue, removes the office from the fleet, and
// folds its counters into Stats' retired totals. Ticks pushed
// concurrently with the removal may be discarded and counted as dropped.
// It returns the office's final System for inspection.
func (in *Ingestor) RemoveOffice(id int) (*core.System, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return nil, ErrClosed
	}
	if in.q[id] == nil {
		return nil, fmt.Errorf("%w (office %d)", ErrUnknownOffice, id)
	}
	// Final flush: dispatch everything queued, this office included.
	in.flushSeq++
	ticket := in.flushSeq
	in.work.Signal()
	for in.doneSeq < ticket && !in.closed {
		in.done.Wait()
	}
	if in.closed {
		return nil, ErrClosed
	}
	q := in.q[id]
	if q == nil {
		// A concurrent RemoveOffice for the same ID won the race while we
		// waited for the flush.
		return nil, fmt.Errorf("%w (office %d)", ErrUnknownOffice, id)
	}
	in.retired.Pushed += q.pushed
	in.retired.Dispatched += q.dispatched
	// Anything still queued arrived during the drain; it is lost.
	in.retired.Dropped += q.dropped + uint64(len(q.ticks))
	delete(in.q, id)
	in.ids = deleteID(in.ids, id)
	kept := in.pend[:0]
	for _, pi := range in.pend {
		if pi.office != id {
			kept = append(kept, pi)
		}
	}
	in.pend = kept
	return in.fleet.RemoveOffice(id)
}

// insertID inserts id into the ascending slice ids.
func insertID(ids []int, id int) []int {
	i := sort.SearchInts(ids, id)
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// deleteID removes id from the ascending slice ids.
func deleteID(ids []int, id int) []int {
	i := sort.SearchInts(ids, id)
	if i < len(ids) && ids[i] == id {
		ids = append(ids[:i], ids[i+1:]...)
	}
	return ids
}

// Push queues one RSSI tick (one sample per stream) for an office, named
// by its stable ID. The sample slice is copied, so the caller may reuse
// its buffer. When the office's queue is full the configured Policy
// decides: Block waits for the dispatcher, DropOldest evicts, ErrorOnFull
// returns ErrQueueFull. A Block-policy Push whose office is removed while
// it waits returns ErrUnknownOffice.
func (in *Ingestor) Push(office int, rssi []float64) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	q := in.q[office]
	if q == nil {
		if in.closed {
			return ErrClosed
		}
		return fmt.Errorf("%w (office %d)", ErrUnknownOffice, office)
	}
	for !in.closed && len(q.ticks) >= in.queue {
		switch in.onFull {
		case DropOldest:
			q.recycleTick(q.ticks[0], in.queue)
			q.ticks = q.ticks[1:]
			q.base++
			q.dropped++
		case ErrorOnFull:
			q.dropped++
			return fmt.Errorf("%w (office %d, capacity %d)", ErrQueueFull, office, in.queue)
		default: // Block
			in.needSpace++
			in.work.Signal()
			in.space.Wait()
			in.needSpace--
			if in.q[office] != q {
				return fmt.Errorf("%w (office %d removed while push blocked)", ErrUnknownOffice, office)
			}
		}
	}
	if in.closed {
		return ErrClosed
	}
	// Copy the caller's samples into a recycled slice when one fits
	// (stream counts are per-office constants, so after the first
	// dispatch cycle this never allocates).
	var tick []float64
	if n := len(q.free); n > 0 && cap(q.free[n-1]) >= len(rssi) {
		tick = q.free[n-1][:len(rssi)]
		q.free = q.free[:n-1]
	} else {
		tick = make([]float64, len(rssi))
	}
	copy(tick, rssi)
	q.ticks = append(q.ticks, tick)
	q.pushed++
	if in.batchTicks > 0 && len(q.ticks) >= in.effBatch {
		in.work.Signal()
	}
	in.markPendingLocked()
	return nil
}

// markPendingLocked starts the MaxBatchLatency clock on the first piece
// of work queued since the last dispatch and wakes the latency
// goroutine to re-arm its timer.
func (in *Ingestor) markPendingLocked() {
	if in.maxLatency <= 0 || !in.pendingSince.IsZero() {
		return
	}
	in.pendingSince = time.Now()
	select {
	case in.latencyKick <- struct{}{}:
	default:
	}
}

// latencyLoop is the MaxBatchLatency goroutine: it sleeps until the
// oldest queued work crosses the latency bound, then flags the
// dispatcher (latencyDue) exactly like a flush trigger. It holds no
// state of its own beyond the timer; pendingSince under the mutex is
// authoritative.
func (in *Ingestor) latencyLoop() {
	defer close(in.latencyDone)
	timer := time.NewTimer(in.maxLatency)
	defer timer.Stop()
	for {
		select {
		case <-in.latencyStop:
			return
		case <-in.latencyKick:
		case <-timer.C:
		}
		in.mu.Lock()
		if in.closed {
			in.mu.Unlock()
			return
		}
		wait := in.maxLatency
		if !in.pendingSince.IsZero() {
			wait = time.Until(in.pendingSince.Add(in.maxLatency))
			if wait <= 0 {
				in.latencyDue = true
				in.work.Signal()
				wait = in.maxLatency
			}
		}
		in.mu.Unlock()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
	}
}

// PushInput queues a keyboard/mouse notification for one office (by
// stable ID). It is delivered before the office's next pushed tick —
// i.e. after every tick queued so far — matching System.NotifyInput
// between Tick calls.
func (in *Ingestor) PushInput(office, workstation int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return ErrClosed
	}
	q := in.q[office]
	if q == nil {
		return fmt.Errorf("%w (office %d)", ErrUnknownOffice, office)
	}
	in.pend = append(in.pend, pendingInput{office: office, ws: workstation, seq: q.base + uint64(len(q.ticks))})
	in.markPendingLocked()
	return nil
}

// PushOffices feeds one pre-assembled, ID-addressed fleet batch through
// the queues exactly as Fleet.Run would consume it: per office, every
// input event with Tick <= t is delivered before tick t (ties in slice
// order), trailing events after the office's last tick; events whose
// office has no batch entry are delivered after that office's queued
// ticks. The per-office backpressure policy applies to every tick
// pushed. Pushing the same batches and calling Flush at the same
// boundaries as synchronous Run calls yields a byte-identical action
// stream.
func (in *Ingestor) PushOffices(batches []engine.OfficeBatch, evs []engine.InputEvent) error {
	// Validate membership upfront so a bad batch or event office rejects
	// the call before any tick is queued, rather than failing mid-push
	// with half the batch already ingested.
	seen := make(map[int]bool, len(batches))
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return ErrClosed
	}
	for _, ob := range batches {
		if in.q[ob.Office] == nil {
			in.mu.Unlock()
			return fmt.Errorf("%w (office %d)", ErrUnknownOffice, ob.Office)
		}
		if seen[ob.Office] {
			in.mu.Unlock()
			return fmt.Errorf("stream: duplicate batch entry for office %d", ob.Office)
		}
		seen[ob.Office] = true
	}
	for _, ev := range evs {
		if in.q[ev.Office] == nil {
			in.mu.Unlock()
			return fmt.Errorf("stream: input event: %w (office %d)", ErrUnknownOffice, ev.Office)
		}
	}
	in.mu.Unlock()

	for _, ob := range batches {
		var evsO []engine.InputEvent
		for _, ev := range evs {
			if ev.Office == ob.Office {
				evsO = append(evsO, ev)
			}
		}
		sort.SliceStable(evsO, func(a, b int) bool { return evsO[a].Tick < evsO[b].Tick })
		next := 0
		for t, n := 0, ob.NumTicks(); t < n; t++ {
			for next < len(evsO) && evsO[next].Tick <= t {
				if err := in.PushInput(ob.Office, evsO[next].Workstation); err != nil {
					return err
				}
				next++
			}
			if err := in.Push(ob.Office, ob.Row(t)); err != nil {
				return err
			}
		}
		for ; next < len(evsO); next++ {
			if err := in.PushInput(ob.Office, evsO[next].Workstation); err != nil {
				return err
			}
		}
	}
	for _, ev := range evs {
		if !seen[ev.Office] {
			if err := in.PushInput(ev.Office, ev.Workstation); err != nil {
				return err
			}
		}
	}
	return nil
}

// PushBatch feeds one dense fleet batch: sub[i] holds the ticks of the
// i-th member office in ascending-ID order (for a fleet that has seen no
// churn, office IDs equal positions 0..N-1), and len(sub) must equal the
// current fleet size. It is the bridge for callers porting synchronous
// dense RunBatch call sites; elastic callers should prefer PushOffices.
func (in *Ingestor) PushBatch(sub [][][]float64, evs []engine.InputEvent) error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return ErrClosed
	}
	ids := append([]int(nil), in.ids...)
	in.mu.Unlock()
	if len(sub) != len(ids) {
		return fmt.Errorf("stream: batch has %d offices, fleet has %d", len(sub), len(ids))
	}
	batches := make([]engine.OfficeBatch, len(sub))
	for i := range sub {
		batches[i] = engine.OfficeBatch{Office: ids[i], Ticks: sub[i]}
	}
	return in.PushOffices(batches, evs)
}

// Flush dispatches everything queued at the time of the call as one
// fleet batch and blocks until that dispatch — including the OnBatch tap
// — has completed and the batch has been handed to the sink pump. It
// returns the first pipeline error (fleet dispatch or sink) seen so far.
func (in *Ingestor) Flush() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return ErrClosed
	}
	in.flushSeq++
	ticket := in.flushSeq
	in.work.Signal()
	for in.doneSeq < ticket && !in.closed {
		in.done.Wait()
	}
	return in.err
}

// FlushEpoch is Flush with a caller-assigned epoch number attached:
// the dispatch cycle serving this request hands its batch to the sink
// pump stamped with the epoch — and hands it over even when the batch
// is empty, so an EpochSink emits exactly one (possibly empty) epoch
// frame per FlushEpoch call. This is the worker side of the cluster
// epoch protocol: the tick producer drives every worker's flushes with
// the same epoch sequence, and the stream router re-merges the
// per-worker frames epoch by epoch (see internal/cluster). Epoch
// flushes must be driven sequentially — one producer, each call after
// the previous returned; a concurrent second call errors rather than
// risk two epochs coalescing into one dispatch.
func (in *Ingestor) FlushEpoch(epoch uint64) error {
	if epoch > wire.MaxTagEpoch {
		return fmt.Errorf("stream: epoch %d exceeds the 32-bit wire field", epoch)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return ErrClosed
	}
	if in.epochSet {
		return errors.New("stream: concurrent epoch flushes (drive epochs from one producer, sequentially)")
	}
	in.epochVal, in.epochSet = epoch, true
	in.flushSeq++
	ticket := in.flushSeq
	in.work.Signal()
	for in.doneSeq < ticket && !in.closed {
		in.done.Wait()
	}
	return in.err
}

// Err returns the first pipeline error (fleet dispatch or sink write)
// recorded so far, without waiting.
func (in *Ingestor) Err() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.err
}

// Close dispatches any remaining queued ticks, stops the dispatcher,
// drains the pump, and flushes and closes the sink. It returns the first
// pipeline error, unblocks any Block-policy pushers with ErrClosed, and
// is idempotent.
func (in *Ingestor) Close() error {
	in.mu.Lock()
	if in.closed {
		err := in.err
		in.mu.Unlock()
		return err
	}
	in.closed = true
	in.flushSeq++ // final drain
	in.work.Broadcast()
	in.space.Broadcast()
	in.done.Broadcast()
	in.mu.Unlock()

	<-in.dispatcherDone
	if in.latencyStop != nil {
		close(in.latencyStop)
		<-in.latencyDone
	}
	if in.pumpCh != nil {
		close(in.pumpCh)
		<-in.pumpDone
	}
	var sinkErr error
	if in.sink != nil {
		sinkErr = in.sink.Close()
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if sinkErr != nil && in.err == nil {
		in.err = fmt.Errorf("stream: sink close: %w", sinkErr)
	}
	return in.err
}

// OfficeStats are one office's queue counters.
type OfficeStats struct {
	// Office is the office's stable fleet ID (-1 in Stats.Retired).
	Office int
	// Depth is the number of ticks currently queued.
	Depth int
	// Pushed counts ticks accepted into the queue.
	Pushed uint64
	// Dispatched counts ticks delivered to the fleet.
	Dispatched uint64
	// Dropped counts ticks lost to DropOldest eviction or ErrorOnFull
	// rejection.
	Dropped uint64
}

// Stats is a snapshot of the Ingestor's instrumentation.
type Stats struct {
	// Offices holds the member offices' queue counters, ascending by ID.
	Offices []OfficeStats
	// Retired aggregates the counters of offices removed from the fleet,
	// so fleet-wide totals survive churn (Office is -1, Depth 0).
	Retired OfficeStats
	// Batches counts dispatch cycles that delivered at least one tick or
	// input event; Actions counts the merged actions they produced.
	Batches, Actions uint64
	// AutoBatchTicks is the live auto-dispatch threshold: Config.
	// BatchTicks normally, its current adaptive scaling under
	// AdaptiveBatch, 0 when auto-dispatch is off.
	AutoBatchTicks int
	// Dropped is the fleet-wide total of dropped/rejected ticks,
	// including those of retired offices.
	Dropped uint64
}

// Totals folds the member offices' counters and the Retired aggregate
// into one fleet-wide OfficeStats: Office is -1, Depth is the sum of
// the live queue depths, and Pushed/Dispatched/Dropped span the whole
// ingestor lifetime across membership churn. This is the number a
// metrics endpoint exports and the number accounting tests balance
// (Pushed == Dispatched + Dropped + Depth once quiesced).
func (s Stats) Totals() OfficeStats {
	t := s.Retired
	t.Office = -1
	for _, o := range s.Offices {
		t.Depth += o.Depth
		t.Pushed += o.Pushed
		t.Dispatched += o.Dispatched
		t.Dropped += o.Dropped
	}
	return t
}

// Stats returns a snapshot of the per-office queue depth/drop counters
// and the dispatch totals.
func (in *Ingestor) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := Stats{
		Offices:        make([]OfficeStats, 0, len(in.ids)),
		Retired:        in.retired,
		Batches:        in.nBatches,
		Actions:        in.nActions,
		AutoBatchTicks: in.effBatch,
		Dropped:        in.retired.Dropped,
	}
	st.Retired.Office = -1
	for _, id := range in.ids {
		q := in.q[id]
		st.Offices = append(st.Offices, OfficeStats{
			Office:     id,
			Depth:      len(q.ticks),
			Pushed:     q.pushed,
			Dispatched: q.dispatched,
			Dropped:    q.dropped,
		})
		st.Dropped += q.dropped
	}
	return st
}

// dispatch is the dispatcher goroutine: it waits for work (a flush
// request, a Block-policy pusher out of space, a BatchTicks threshold, a
// MaxBatchLatency expiry, or Close), snapshots the queues into one fleet
// batch, runs it, and hands the merged actions to the OnBatch tap and
// the sink pump.
func (in *Ingestor) dispatch() {
	defer close(in.dispatcherDone)
	in.mu.Lock()
	for {
		for !in.closed && in.flushSeq == in.doneSeq && in.needSpace == 0 && !in.latencyDue && !in.thresholdLocked() {
			in.work.Wait()
		}
		if in.closed && in.flushSeq == in.doneSeq && !in.queuedLocked() {
			in.mu.Unlock()
			return
		}
		ticket := in.flushSeq
		epoch, hasEpoch := in.epochVal, in.epochSet
		in.epochSet = false
		maxDepth := 0
		for _, q := range in.q {
			if len(q.ticks) > maxDepth {
				maxDepth = len(q.ticks)
			}
		}
		batch, evs, n := in.takeLocked()
		in.latencyDue = false
		in.mu.Unlock()

		var acts []engine.OfficeAction
		var err error
		if n > 0 || len(evs) > 0 {
			acts, err = in.fleet.Run(batch, evs)
		}
		if err == nil && len(acts) > 0 && in.onBatch != nil {
			in.onBatch(acts)
		}
		// Epoch-stamped cycles reach the pump even when empty: an
		// EpochSink must emit one frame per epoch so downstream merge
		// watermarks keep advancing through quiet epochs.
		if err == nil && in.pumpCh != nil && (len(acts) > 0 || hasEpoch) {
			in.pumpCh <- pumpItem{acts: acts, epoch: epoch, hasEpoch: hasEpoch}
		}

		in.mu.Lock()
		in.recycleLocked(batch)
		if err != nil && in.err == nil {
			in.err = fmt.Errorf("stream: dispatch: %w", err)
		}
		if n > 0 || len(evs) > 0 {
			in.nBatches++
			in.nActions += uint64(len(acts))
		}
		if in.adaptive && n > 0 {
			in.effBatch = nextAutoBatch(in.effBatch, in.batchTicks, in.queue, maxDepth)
		}
		if ticket > in.doneSeq {
			in.doneSeq = ticket
		}
		in.space.Broadcast()
		in.done.Broadcast()
	}
}

// thresholdLocked reports whether auto-dispatch is due: some office has
// reached the live threshold (BatchTicks, or its adaptive scaling).
func (in *Ingestor) thresholdLocked() bool {
	if in.batchTicks <= 0 {
		return false
	}
	for _, q := range in.q {
		if len(q.ticks) >= in.effBatch {
			return true
		}
	}
	return false
}

// nextAutoBatch scales the auto-dispatch threshold from the queue depth
// observed when a batch was snapshotted: a backlog of at least twice
// the threshold means dispatches are falling behind arrivals (double
// it), a depth at or below half means the stream is sparse (halve it,
// favouring latency), anything between holds. Clamped to [floor, ceil].
func nextAutoBatch(cur, floor, ceil, depth int) int {
	switch {
	case depth >= 2*cur:
		cur *= 2
	case depth <= cur/2:
		cur /= 2
	}
	if cur < floor {
		cur = floor
	}
	if cur > ceil {
		cur = ceil
	}
	return cur
}

// queuedLocked reports whether any ticks or input events are pending.
func (in *Ingestor) queuedLocked() bool {
	if len(in.pend) > 0 {
		return true
	}
	for _, q := range in.q {
		if len(q.ticks) > 0 {
			return true
		}
	}
	return false
}

// takeLocked snapshots every office queue and all pending inputs into one
// ID-addressed fleet batch, advancing the queue bases. Input sequence
// numbers are translated to batch-relative tick indices; events whose
// tick was dropped clamp to the start of the batch (the fleet delivers
// them before the first surviving tick).
func (in *Ingestor) takeLocked() (batch []engine.OfficeBatch, evs []engine.InputEvent, n int) {
	evs = in.evsBuf[:0]
	if len(in.pend) > 0 {
		for _, pi := range in.pend {
			tick := 0
			if q := in.q[pi.office]; q != nil && pi.seq > q.base {
				tick = int(pi.seq - q.base)
			}
			evs = append(evs, engine.InputEvent{Office: pi.office, Workstation: pi.ws, Tick: tick})
		}
		in.pend = in.pend[:0]
	}
	batch = in.batchBuf[:0]
	for _, id := range in.ids {
		q := in.q[id]
		if len(q.ticks) == 0 {
			continue
		}
		batch = append(batch, engine.OfficeBatch{Office: id, Ticks: q.ticks})
		n += len(q.ticks)
		q.base += uint64(len(q.ticks))
		q.dispatched += uint64(len(q.ticks))
		// Hand the snapshot out and refill from the office's spare
		// header array (ping-pong: the dispatcher returns this snapshot
		// as the new spare once the fleet is done with it).
		q.ticks = q.spare[:0]
		q.spare = nil
	}
	in.evsBuf = evs
	in.batchBuf = batch
	// The snapshot empties every queue; the latency clock restarts with
	// the next queued work.
	in.pendingSince = time.Time{}
	return batch, evs, n
}

// recycleLocked returns a dispatched snapshot's buffers to their office
// queues: every sample slice goes back to the office freelist and the
// tick-header array becomes the office's spare. The fleet only reads the
// payload during Run, so by the time the dispatcher re-acquires the lock
// the buffers are free. Offices removed while the batch was in flight
// are simply skipped (their memory is garbage).
func (in *Ingestor) recycleLocked(batch []engine.OfficeBatch) {
	for i := range batch {
		ob := &batch[i]
		q := in.q[ob.Office]
		if q != nil {
			for _, tick := range ob.Ticks {
				q.recycleTick(tick, in.queue)
			}
			if q.spare == nil {
				q.spare = ob.Ticks[:0]
			}
		}
		*ob = engine.OfficeBatch{} // don't pin retired offices' buffers
	}
}

// pumpItem is one dispatch cycle's hand-off to the sink pump: the
// merged actions, plus the FlushEpoch number when the cycle served an
// epoch-stamped flush (in which case the item is delivered even with
// an empty batch).
type pumpItem struct {
	acts     []engine.OfficeAction
	epoch    uint64
	hasEpoch bool
}

// pump is the sink delivery goroutine: it forwards dispatched batches to
// the Sink in dispatch order. Epoch-stamped batches go through the
// sink's EpochSink face when it has one (empty batches included);
// sinks without one get plain non-empty Writes, epoch dropped. After
// the first write error it records the error and keeps draining the
// channel (discarding batches), so a broken sink can never deadlock
// the dispatcher or producers.
func (in *Ingestor) pump() {
	defer close(in.pumpDone)
	es, hasEpochSink := in.sink.(EpochSink)
	failed := false
	for item := range in.pumpCh {
		if failed {
			continue
		}
		var err error
		switch {
		case item.hasEpoch && hasEpochSink:
			err = es.WriteEpoch(item.epoch, item.acts)
		case len(item.acts) > 0:
			err = in.sink.Write(item.acts)
		}
		if err != nil {
			failed = true
			in.mu.Lock()
			if in.err == nil {
				in.err = fmt.Errorf("stream: sink: %w", err)
			}
			in.mu.Unlock()
		}
	}
}
