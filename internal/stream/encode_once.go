// Encode-once fan-out: one dispatch cycle encodes each (codec,
// compressed?) frame variant exactly once, and every frame-capable
// member of the fan-out shares the resulting read-only bytes. Without
// this, a worker daemon feeding a segment log, a TCP forward and an
// HTTP broadcaster from the same dispatch encodes the same batch three
// times — the encode dominates the pump's cycle cost well before the
// sinks do any I/O.

package stream

import (
	"errors"
	"fmt"
	"sync"

	"fadewich/internal/engine"
	"fadewich/internal/wire"
)

// EncodedFrame is one dispatched batch rendered as a single wire
// frame, together with what the frame-consuming sinks need to account
// for it. Wire is immutable after handoff — it may be retained
// indefinitely and shared read-only across consumers (broadcaster
// subscribers hold it in their channels long after the cycle ends).
type EncodedFrame struct {
	// Version is the wire codec the frame was encoded under.
	Version wire.Version
	// Compressed records whether the frame was built with compression
	// enabled. The frame itself may still be plain (small or
	// incompressible batches fall back); the flag describes the
	// variant, frame[3]&wire.FlagCompressed the outcome.
	Compressed bool
	// Wire is the complete frame: header, payload, CRC trailer.
	Wire []byte
	// Logical is the uncompressed-equivalent frame size —
	// len(Wire) unless the body was deflated.
	Logical int
	// Batch is the batch the frame carries, for consumers that need
	// more than bytes (the segment manifest's time bounds, action
	// counters). Not to be mutated.
	Batch []engine.OfficeAction
}

// EncodedBatch hands a dispatch cycle's batch to frame-consuming sinks
// with at-most-once encoding per variant: the first Frame call for a
// (codec, compress) pair encodes into a fresh buffer, later calls
// return the same EncodedFrame. It is not safe for concurrent use —
// the fan-out drives all members from the pump goroutine.
type EncodedBatch struct {
	batch  []engine.OfficeAction
	frames [3][2]*EncodedFrame // [codec][compressed]
}

// NewEncodedBatch wraps one batch for frame-sink consumption outside a
// fan-out — a FrameSink driven directly (no NewEncodeOnceSink in
// front) still encodes each variant it needs at most once.
func NewEncodedBatch(batch []engine.OfficeAction) *EncodedBatch {
	return &EncodedBatch{batch: batch}
}

// reset points the EncodedBatch at a new batch and forgets the encoded
// variants (their buffers are owned by whoever received them).
func (e *EncodedBatch) reset(batch []engine.OfficeAction) {
	e.batch = batch
	for i := range e.frames {
		e.frames[i][0], e.frames[i][1] = nil, nil
	}
}

// Batch returns the cycle's batch. Not to be mutated.
func (e *EncodedBatch) Batch() []engine.OfficeAction { return e.batch }

// Frame returns the batch encoded under codec v, compressed or not,
// encoding on first use. The returned frame's Wire bytes are immutable
// and may be retained.
func (e *EncodedBatch) Frame(v wire.Version, compress bool) (*EncodedFrame, error) {
	if v != wire.V1JSONL && v != wire.V2Binary {
		return nil, fmt.Errorf("%w %d", wire.ErrVersion, uint8(v))
	}
	ci := 0
	if compress {
		ci = 1
	}
	if f := e.frames[v][ci]; f != nil {
		return f, nil
	}
	var (
		frame   []byte
		logical int
		err     error
	)
	if compress {
		frame, logical, err = wire.AppendFrameCompressed(nil, v, e.batch, 0)
	} else {
		frame, err = wire.AppendFrame(nil, v, e.batch)
		logical = len(frame)
	}
	if err != nil {
		return nil, err
	}
	f := &EncodedFrame{Version: v, Compressed: compress, Wire: frame, Logical: logical, Batch: e.batch}
	e.frames[v][ci] = f
	return f, nil
}

// FrameSink is the optional third face of a sink that can consume
// pre-encoded frames: instead of receiving the raw batch and encoding
// privately, the sink pulls the variant(s) it wants from the cycle's
// EncodedBatch, sharing the encode with every other frame-capable
// member of the fan-out.
type FrameSink interface {
	Sink
	WriteEncoded(e *EncodedBatch) error
}

// encodeOnceSink is NewEncodeOnceSink's fan-out.
type encodeOnceSink struct {
	sinks []Sink

	mu sync.Mutex
	eb EncodedBatch
}

// NewEncodeOnceSink returns a fan-out sink like NewMultiSink, with
// shared encoding: members implementing FrameSink receive the cycle's
// EncodedBatch and pull their (codec, compressed) variant from it, so
// any variant is encoded once per dispatch no matter how many members
// (or broadcaster subscribers) consume it. Epoch-stamped flushes keep
// the epoch protocol: EpochSink members get WriteEpoch (empty batches
// included) — a tagged TCP forward's frames carry a tag and remapped
// IDs, different bytes by design, so the epoch face wins over the
// frame face. Remaining members get plain non-empty Writes. One member
// failing does not stop delivery to the others; the errors join.
func NewEncodeOnceSink(sinks ...Sink) Sink {
	return &encodeOnceSink{sinks: append([]Sink(nil), sinks...)}
}

// Write delivers the batch to every member, encoding each requested
// frame variant once.
func (s *encodeOnceSink) Write(batch []engine.OfficeAction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eb.reset(batch)
	var errs []error
	for _, snk := range s.sinks {
		var err error
		if fs, ok := snk.(FrameSink); ok {
			err = fs.WriteEncoded(&s.eb)
		} else {
			err = snk.Write(batch)
		}
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// WriteEpoch delivers an epoch-stamped batch: epoch-aware members get
// the epoch (and empty batches), frame-aware members share the
// encode, the rest get plain non-empty Writes.
func (s *encodeOnceSink) WriteEpoch(epoch uint64, batch []engine.OfficeAction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eb.reset(batch)
	var errs []error
	for _, snk := range s.sinks {
		var err error
		switch t := snk.(type) {
		case EpochSink:
			err = t.WriteEpoch(epoch, batch)
		case FrameSink:
			if len(batch) > 0 {
				err = t.WriteEncoded(&s.eb)
			}
		default:
			if len(batch) > 0 {
				err = snk.Write(batch)
			}
		}
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close closes every member, joining any errors.
func (s *encodeOnceSink) Close() error {
	var errs []error
	for _, snk := range s.sinks {
		if err := snk.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
