package stream

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"fadewich/internal/control"
	"fadewich/internal/core"
	"fadewich/internal/engine"
)

func sampleBatch(n int) []engine.OfficeAction {
	out := make([]engine.OfficeAction, n)
	for i := range out {
		out[i] = engine.OfficeAction{
			Office: i % 5,
			Action: core.Action{
				Time:        float64(i) * 0.2,
				Type:        core.ActionDeauthenticate,
				Workstation: i % 3,
				Cause:       control.CauseTimeout,
			},
		}
	}
	return out
}

func TestAppendJSONLEncoding(t *testing.T) {
	batch := []engine.OfficeAction{
		{Office: 3, Action: core.Action{Time: 1.2, Type: core.ActionAlertEnter, Workstation: 1}},
		{Office: 0, Action: core.Action{Time: 1.4, Type: core.ActionDeauthenticate, Workstation: 2, Cause: control.CauseRule1, Label: 2}},
	}
	lines := bytes.Split(bytes.TrimSuffix(AppendJSONL(nil, batch), []byte("\n")), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	var rec wireAction
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Office != 3 || rec.Type != "alert-enter" || rec.Cause != "" {
		t.Fatalf("line 0 decoded as %+v", rec)
	}
	if err := json.Unmarshal(lines[1], &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Cause != "rule1" || rec.Label != 2 || rec.Workstation != 2 {
		t.Fatalf("line 1 decoded as %+v", rec)
	}
}

func TestLogSinkWritesJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "actions.jsonl")
	s, err := NewLogSink(path)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := sampleBatch(3), sampleBatch(5)
	if err := s.Write(b1); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(b2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := s.Write(b1); !errors.Is(err, ErrSinkClosed) {
		t.Fatalf("write after close returned %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := AppendJSONL(AppendJSONL(nil, b1), b2)
	if !bytes.Equal(got, want) {
		t.Fatalf("file content differs: %d vs %d bytes", len(got), len(want))
	}
}

func TestLogSinkUnwritablePathFailsFast(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "actions.jsonl")
	if _, err := NewLogSink(path); err == nil {
		t.Fatal("log sink on an unwritable path succeeded")
	}
}

func TestRingSinkWraparound(t *testing.T) {
	s := NewRingSink(4)
	batch := sampleBatch(10)
	if err := s.Write(batch); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("ring holds %d actions, want 4", s.Len())
	}
	if s.Overwritten() != 6 {
		t.Fatalf("overwritten %d, want 6", s.Overwritten())
	}
	if got := s.Actions(); !reflect.DeepEqual(got, batch[6:]) {
		t.Fatalf("ring content %v, want the 4 newest actions", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(batch); !errors.Is(err, ErrSinkClosed) {
		t.Fatalf("write after close returned %v", err)
	}
	if s.Len() != 4 {
		t.Fatal("close lost the retained actions")
	}
}

// failSink fails every operation — the broken-backend stand-in.
type failSink struct{ err error }

func (s failSink) Write([]engine.OfficeAction) error { return s.err }
func (s failSink) Close() error                      { return s.err }

func TestMultiSinkDeliversPastFailures(t *testing.T) {
	ring := NewRingSink(64)
	boom := errors.New("boom")
	multi := NewMultiSink(failSink{err: boom}, ring)
	batch := sampleBatch(3)
	if err := multi.Write(batch); !errors.Is(err, boom) {
		t.Fatalf("multi write returned %v, want the failing sink's error", err)
	}
	if ring.Len() != 3 {
		t.Fatal("failure in one sink stopped delivery to the others")
	}
	if err := multi.Close(); !errors.Is(err, boom) {
		t.Fatalf("multi close returned %v", err)
	}
}

// frameServer accepts connections and forwards each received
// length-prefixed frame payload; conns are handed out for the test to
// kill.
type frameServer struct {
	ln     net.Listener
	frames chan []byte
	conns  chan net.Conn
}

func newFrameServer(t *testing.T) *frameServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &frameServer{ln: ln, frames: make(chan []byte, 64), conns: make(chan net.Conn, 8)}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			fs.conns <- conn
			go func(c net.Conn) {
				r := bufio.NewReader(c)
				for {
					var hdr [4]byte
					if _, err := io.ReadFull(r, hdr[:]); err != nil {
						return
					}
					payload := make([]byte, binary.BigEndian.Uint32(hdr[:]))
					if _, err := io.ReadFull(r, payload); err != nil {
						return
					}
					fs.frames <- payload
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return fs
}

func (fs *frameServer) recvFrame(t *testing.T) []byte {
	t.Helper()
	select {
	case f := <-fs.frames:
		return f
	case <-time.After(5 * time.Second):
		t.Fatal("no frame received within 5s")
		return nil
	}
}

func (fs *frameServer) recvConn(t *testing.T) net.Conn {
	t.Helper()
	select {
	case c := <-fs.conns:
		return c
	case <-time.After(5 * time.Second):
		t.Fatal("no connection accepted within 5s")
		return nil
	}
}

func TestTCPSinkStreamsFrames(t *testing.T) {
	fs := newFrameServer(t)
	s, err := NewTCPSink(fs.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	batch := sampleBatch(7)
	if err := s.Write(batch); err != nil {
		t.Fatal(err)
	}
	if got, want := fs.recvFrame(t), AppendJSONL(nil, batch); !bytes.Equal(got, want) {
		t.Fatalf("frame payload differs: %q vs %q", got, want)
	}
}

// TestTCPSinkReconnectsAfterPeerDisconnect kills the peer connection
// mid-stream and checks the sink redials and keeps delivering frames on
// a fresh connection.
func TestTCPSinkReconnectsAfterPeerDisconnect(t *testing.T) {
	fs := newFrameServer(t)
	s, err := NewTCPSink(fs.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Backoff = 5 * time.Millisecond
	s.Retries = 5

	if err := s.Write(sampleBatch(2)); err != nil {
		t.Fatal(err)
	}
	fs.recvFrame(t)
	fs.recvConn(t).Close() // peer disconnects mid-stream

	// The write after a peer close can succeed locally (the kernel
	// buffers it before the RST lands), so push frames until one arrives
	// on the redialed connection.
	delivered := false
	for i := 0; i < 20 && !delivered; i++ {
		if err := s.Write(sampleBatch(3)); err != nil {
			t.Fatalf("write %d failed despite live listener: %v", i, err)
		}
		select {
		case <-fs.frames:
			delivered = true
		case <-time.After(100 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("no frame arrived after reconnect")
	}
}

// TestTCPSinkPeerGoneSurfacesError removes the peer entirely: writes
// must start failing (after retries) instead of blocking.
func TestTCPSinkPeerGoneSurfacesError(t *testing.T) {
	fs := newFrameServer(t)
	s, err := NewTCPSink(fs.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Backoff = time.Millisecond
	s.Retries = 2
	s.DialTimeout = 200 * time.Millisecond

	fs.recvConn(t).Close()
	fs.ln.Close()

	var writeErr error
	for i := 0; i < 20 && writeErr == nil; i++ {
		writeErr = s.Write(sampleBatch(1))
	}
	if writeErr == nil {
		t.Fatal("writes kept succeeding with no peer")
	}
}

// TestIngestorSinkFailureDoesNotDeadlock runs a full ingest cycle into a
// sink that always fails: the error must surface through Err/Close while
// producers and Flush keep completing (the pump drains instead of
// wedging).
func TestIngestorSinkFailureDoesNotDeadlock(t *testing.T) {
	const offices, ticks, windowTicks = 4, 200, 50
	batch, inputs := scenario(offices, ticks)
	boom := errors.New("backend down")
	in, err := NewIngestor(testFleet(t, offices, 2), Config{Queue: windowTicks, Sink: failSink{err: boom}})
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < ticks; start += windowTicks {
		sub, evs := window(batch, inputs, start, min(start+windowTicks, ticks))
		pushWindow(t, in, sub, evs)
		// Flush may already return the recorded sink error; it must not
		// block either way.
		_ = in.Flush()
	}
	err = in.Close()
	if !errors.Is(err, boom) {
		t.Fatalf("close returned %v, want the sink error", err)
	}
	if !errors.Is(in.Err(), boom) {
		t.Fatalf("Err() returned %v, want the sink error", in.Err())
	}
	if st := in.Stats(); st.Actions == 0 {
		t.Fatal("scenario produced no actions; the deadlock check is vacuous")
	}
}
