package stream

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"fadewich/internal/control"
	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/segment"
	"fadewich/internal/wire"
)

func sampleBatch(n int) []engine.OfficeAction {
	out := make([]engine.OfficeAction, n)
	for i := range out {
		out[i] = engine.OfficeAction{
			Office: i % 5,
			Action: core.Action{
				Time:        float64(i) * 0.2,
				Type:        core.ActionDeauthenticate,
				Workstation: i % 3,
				Cause:       control.CauseTimeout,
			},
		}
	}
	return out
}

// TestAppendJSONLDelegatesToWire pins the deprecated wrapper to the
// moved encoder: pre-frame callers must keep getting identical bytes.
func TestAppendJSONLDelegatesToWire(t *testing.T) {
	batch := []engine.OfficeAction{
		{Office: 3, Action: core.Action{Time: 1.2, Type: core.ActionAlertEnter, Workstation: 1}},
		{Office: 0, Action: core.Action{Time: 1.4, Type: core.ActionDeauthenticate, Workstation: 2, Cause: control.CauseRule1, Label: 2}},
	}
	//lint:ignore SA1019 the deprecated wrapper is the thing under test
	got := AppendJSONL(nil, batch)
	if !bytes.Equal(got, wire.AppendJSONL(nil, batch)) {
		t.Fatal("stream.AppendJSONL no longer matches wire.AppendJSONL")
	}
}

func TestLogSinkWritesJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "actions.jsonl")
	s, err := NewLogSink(path)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := sampleBatch(3), sampleBatch(5)
	if err := s.Write(b1); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(b2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := s.Write(b1); !errors.Is(err, ErrSinkClosed) {
		t.Fatalf("write after close returned %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := wire.AppendJSONL(wire.AppendJSONL(nil, b1), b2)
	if !bytes.Equal(got, want) {
		t.Fatalf("file content differs: %d vs %d bytes", len(got), len(want))
	}
}

func TestLogSinkUnwritablePathFailsFast(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "actions.jsonl")
	if _, err := NewLogSink(path); err == nil {
		t.Fatal("log sink on an unwritable path succeeded")
	}
}

func TestRingSinkWraparound(t *testing.T) {
	s := NewRingSink(4)
	batch := sampleBatch(10)
	if err := s.Write(batch); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("ring holds %d actions, want 4", s.Len())
	}
	if s.Overwritten() != 6 {
		t.Fatalf("overwritten %d, want 6", s.Overwritten())
	}
	if got := s.Actions(); !reflect.DeepEqual(got, batch[6:]) {
		t.Fatalf("ring content %v, want the 4 newest actions", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(batch); !errors.Is(err, ErrSinkClosed) {
		t.Fatalf("write after close returned %v", err)
	}
	if s.Len() != 4 {
		t.Fatal("close lost the retained actions")
	}
}

// failSink fails every operation — the broken-backend stand-in.
type failSink struct{ err error }

func (s failSink) Write([]engine.OfficeAction) error { return s.err }
func (s failSink) Close() error                      { return s.err }

func TestMultiSinkDeliversPastFailures(t *testing.T) {
	ring := NewRingSink(64)
	boom := errors.New("boom")
	multi := NewMultiSink(failSink{err: boom}, ring)
	batch := sampleBatch(3)
	if err := multi.Write(batch); !errors.Is(err, boom) {
		t.Fatalf("multi write returned %v, want the failing sink's error", err)
	}
	if ring.Len() != 3 {
		t.Fatal("failure in one sink stopped delivery to the others")
	}
	if err := multi.Close(); !errors.Is(err, boom) {
		t.Fatalf("multi close returned %v", err)
	}
}

// frameServer accepts connections and decodes each received wire frame,
// forwarding the actions; conns are handed out for the test to kill.
type frameServer struct {
	ln     net.Listener
	frames chan []engine.OfficeAction
	vers   chan wire.Version
	conns  chan net.Conn
}

func newFrameServer(t *testing.T) *frameServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &frameServer{ln: ln, frames: make(chan []engine.OfficeAction, 64), vers: make(chan wire.Version, 64), conns: make(chan net.Conn, 8)}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			fs.conns <- conn
			go func(c net.Conn) {
				d := wire.NewDecoder(c)
				for {
					acts, err := d.Decode()
					if err != nil {
						return
					}
					fs.frames <- acts
					fs.vers <- d.Version()
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return fs
}

func (fs *frameServer) recvFrame(t *testing.T) []engine.OfficeAction {
	t.Helper()
	select {
	case f := <-fs.frames:
		return f
	case <-time.After(5 * time.Second):
		t.Fatal("no frame received within 5s")
		return nil
	}
}

func (fs *frameServer) recvConn(t *testing.T) net.Conn {
	t.Helper()
	select {
	case c := <-fs.conns:
		return c
	case <-time.After(5 * time.Second):
		t.Fatal("no connection accepted within 5s")
		return nil
	}
}

func TestTCPSinkStreamsFrames(t *testing.T) {
	for _, v := range []wire.Version{wire.V1JSONL, wire.V2Binary} {
		fs := newFrameServer(t)
		s, err := NewTCPSink(fs.ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		s.Version = v
		batch := sampleBatch(7)
		if err := s.Write(batch); err != nil {
			t.Fatal(err)
		}
		if got := fs.recvFrame(t); !reflect.DeepEqual(got, batch) {
			t.Fatalf("%v: decoded frame differs from the batch", v)
		}
		if got := <-fs.vers; got != v {
			t.Fatalf("frame carried codec %v, want %v", got, v)
		}
		st := s.Stats()
		if st.Frames != 1 || st.Attempts != 1 || st.Redials != 0 {
			t.Fatalf("%v: healthy-path stats %+v", v, st)
		}
		s.Close()
	}
}

// TestTCPSinkReconnectsAfterPeerDisconnect kills the peer connection
// mid-stream and checks the sink redials and keeps delivering frames on
// a fresh connection, counting the redial in its stats.
func TestTCPSinkReconnectsAfterPeerDisconnect(t *testing.T) {
	fs := newFrameServer(t)
	s, err := NewTCPSink(fs.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Backoff = time.Millisecond
	s.BackoffMax = 10 * time.Millisecond
	s.Retries = 5

	if err := s.Write(sampleBatch(2)); err != nil {
		t.Fatal(err)
	}
	fs.recvFrame(t)
	fs.recvConn(t).Close() // peer disconnects mid-stream

	// The write after a peer close can succeed locally (the kernel
	// buffers it before the RST lands), so push frames until one arrives
	// on the redialed connection.
	delivered := false
	for i := 0; i < 20 && !delivered; i++ {
		if err := s.Write(sampleBatch(3)); err != nil {
			t.Fatalf("write %d failed despite live listener: %v", i, err)
		}
		select {
		case <-fs.frames:
			delivered = true
		case <-time.After(100 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("no frame arrived after reconnect")
	}
	if st := s.Stats(); st.Redials == 0 {
		t.Fatalf("reconnect not counted: %+v", st)
	}
}

// TestTCPSinkPeerGoneSurfacesError removes the peer entirely: writes
// must start failing (after retries) instead of blocking, and the
// failed attempts must show up in the stats.
func TestTCPSinkPeerGoneSurfacesError(t *testing.T) {
	fs := newFrameServer(t)
	s, err := NewTCPSink(fs.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Backoff = time.Millisecond
	s.BackoffMax = 4 * time.Millisecond
	s.Retries = 2
	s.DialTimeout = 200 * time.Millisecond

	fs.recvConn(t).Close()
	fs.ln.Close()

	var writeErr error
	for i := 0; i < 20 && writeErr == nil; i++ {
		writeErr = s.Write(sampleBatch(1))
	}
	if writeErr == nil {
		t.Fatal("writes kept succeeding with no peer")
	}
	st := s.Stats()
	if st.Attempts <= st.Frames {
		t.Fatalf("failed attempts not counted: %+v", st)
	}
	if st.DialFailures == 0 && st.WriteFailures == 0 {
		t.Fatalf("no failures recorded despite the dead peer: %+v", st)
	}
}

// TestTCPSinkBackoffDeterministicAndCapped checks the redial pause
// grows exponentially with the failure streak, never exceeds
// BackoffMax, never undershoots half the scheduled pause, and is
// reproducible across sinks dialing the same peer.
func TestTCPSinkBackoffDeterministicAndCapped(t *testing.T) {
	fs := newFrameServer(t)
	addr := fs.ln.Addr().String()
	mk := func() *TCPSink {
		s, err := NewTCPSink(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		s.Backoff = 10 * time.Millisecond
		s.BackoffMax = 80 * time.Millisecond
		return s
	}
	a, b := mk(), mk()
	var seqA, seqB []time.Duration
	for streak := 0; streak < 8; streak++ {
		a.streak, b.streak = streak, streak
		da, db := a.backoffDelay(), b.backoffDelay()
		seqA, seqB = append(seqA, da), append(seqB, db)
		// Scheduled pause before jitter: min(10ms << streak, 80ms); the
		// jittered value lands in [d/2, d).
		d := 10 * time.Millisecond << streak
		if d > 80*time.Millisecond {
			d = 80 * time.Millisecond
		}
		if da < d/2 || da >= d {
			t.Fatalf("streak %d: delay %v outside [%v, %v)", streak, da, d/2, d)
		}
	}
	if !reflect.DeepEqual(seqA, seqB) {
		t.Fatalf("same-peer sinks disagree on the backoff sequence:\n%v\n%v", seqA, seqB)
	}
}

// TestIngestorSinkFailureDoesNotDeadlock runs a full ingest cycle into a
// sink that always fails: the error must surface through Err/Close while
// producers and Flush keep completing (the pump drains instead of
// wedging).
func TestIngestorSinkFailureDoesNotDeadlock(t *testing.T) {
	const offices, ticks, windowTicks = 4, 200, 50
	batch, inputs := scenario(offices, ticks)
	boom := errors.New("backend down")
	in, err := NewIngestor(testFleet(t, offices, 2), Config{Queue: windowTicks, Sink: failSink{err: boom}})
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < ticks; start += windowTicks {
		sub, evs := window(batch, inputs, start, min(start+windowTicks, ticks))
		pushWindow(t, in, sub, evs)
		// Flush may already return the recorded sink error; it must not
		// block either way.
		_ = in.Flush()
	}
	err = in.Close()
	if !errors.Is(err, boom) {
		t.Fatalf("close returned %v, want the sink error", err)
	}
	if !errors.Is(in.Err(), boom) {
		t.Fatalf("Err() returned %v, want the sink error", in.Err())
	}
	if st := in.Stats(); st.Actions == 0 {
		t.Fatal("scenario produced no actions; the deadlock check is vacuous")
	}
}

func TestSegmentSinkRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSegmentSink(segment.Config{Dir: dir, MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := sampleBatch(4), sampleBatch(9)
	if err := s.Write(b1); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(b2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := s.Write(b1); !errors.Is(err, ErrSinkClosed) {
		t.Fatalf("write after close returned %v", err)
	}
	if st := s.Stats(); st.Frames != 2 {
		t.Fatalf("segment sink stats %+v, want 2 frames", st)
	}
	r, err := segment.OpenDir(dir, segment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []engine.OfficeAction
	for {
		acts, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, acts...)
	}
	want := append(append([]engine.OfficeAction(nil), b1...), b2...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("segment replay differs: %d vs %d actions", len(got), len(want))
	}
}

// TestSegmentSinkCrashReplayMatchesGoldenPrefix is the acceptance check
// of the durable path: the same 64-office fleet scenario the RingSink
// golden test runs is streamed into a segment sink, the "process" is
// killed mid-day (the sink is abandoned un-Closed and the active
// segment truncated mid-frame), and the replayed stream must be exactly
// the byte prefix of the RingSink reference stream under codec v1.
func TestSegmentSinkCrashReplayMatchesGoldenPrefix(t *testing.T) {
	const offices, ticks, windowTicks = 64, 260, 77
	batch, inputs := scenario(offices, ticks)

	// Reference stream: the RingSink run (itself pinned byte-identical
	// to the synchronous fleet by TestIngestorMatchesSynchronousFleet).
	ring := NewRingSink(8192)
	dir := t.TempDir()
	seg, err := NewSegmentSink(segment.Config{Dir: dir, MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIngestor(testFleet(t, offices, 4), Config{Queue: windowTicks, Sink: NewMultiSink(ring, seg)})
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < ticks; start += windowTicks {
		sub, evs := window(batch, inputs, start, min(start+windowTicks, ticks))
		pushWindow(t, in, sub, evs)
		if err := in.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	want := wire.AppendJSONL(nil, ring.Actions())

	// The ingestor's Close sealed the log cleanly; un-seal the crash
	// site by hand — chop the last sealed segment mid-frame and drop it
	// from the manifest, exactly the state a kill -9 leaves behind
	// (frames flushed up to some point, the last one torn, no seal).
	st := seg.Stats()
	if st.Sealed < 2 || st.Frames < 2 {
		t.Fatalf("scenario sealed %d segments / %d frames; the crash cut needs at least two", st.Sealed, st.Frames)
	}
	names, err := filepath.Glob(filepath.Join(dir, "segment-*.fwl"))
	if err != nil || len(names) != st.Sealed {
		t.Fatalf("glob: %v (%d names, %d sealed)", err, len(names), st.Sealed)
	}
	last := names[len(names)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-11); err != nil {
		t.Fatal(err)
	}
	man, err := os.ReadFile(filepath.Join(dir, segment.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	trimmed := bytes.LastIndex(man, []byte(filepath.Base(last)))
	if trimmed < 0 {
		t.Fatal("last segment not in manifest")
	}
	// Rewrite the manifest without its final entry by re-sealing through
	// a fresh writer-free path: simplest is to delete it — a directory
	// whose writer never rotated has no manifest at all, and the reader
	// must cope either way.
	if err := os.Remove(filepath.Join(dir, segment.ManifestName)); err != nil {
		t.Fatal(err)
	}

	r, err := segment.OpenDir(dir, segment.Options{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var replay []engine.OfficeAction
	for {
		acts, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		replay = append(replay, acts...)
	}
	got := wire.AppendJSONL(nil, replay)
	if !bytes.HasPrefix(want, got) {
		t.Fatal("replayed stream is not a byte prefix of the RingSink reference stream")
	}
	if len(got) == 0 || len(got) == len(want) {
		t.Fatalf("replay covers %d of %d bytes; the torn tail made it vacuous", len(got), len(want))
	}
	info, torn := r.Torn()
	if !torn || !info.Repaired {
		t.Fatalf("torn tail not reported/repaired: %+v (torn=%v)", info, torn)
	}
}
