package stream

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"fadewich/internal/control"
	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/rng"
)

// testFleet builds a small fleet whose timeout backstop guarantees
// actions without a trained classifier (same shape as the engine tests).
func testFleet(t testing.TB, offices, workers int) *engine.Fleet {
	t.Helper()
	f, err := engine.NewFleet(engine.FleetConfig{
		Offices: offices,
		Workers: workers,
		System: core.Config{
			Streams:      2,
			Workstations: 1,
			Params:       control.Params{TimeoutSec: 30},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// scenario builds a deterministic workload: per-office quiet RSSI ticks
// and one staggered login per office, so timeout deauthentications land
// at distinct office-dependent times.
func scenario(offices, ticks int) (batch [][][]float64, inputs []engine.InputEvent) {
	batch = make([][][]float64, offices)
	for o := 0; o < offices; o++ {
		src := rng.New(uint64(o) + 1)
		days := make([][]float64, ticks)
		for t := range days {
			days[t] = []float64{-60 + src.Normal(0, 0.4), -58 + src.Normal(0, 0.4)}
		}
		batch[o] = days
		inputs = append(inputs, engine.InputEvent{Office: o, Workstation: 0, Tick: o % 17})
	}
	return batch, inputs
}

// window slices the scenario into [start, end) for every office, with
// the window's events re-based to the window start.
func window(batch [][][]float64, inputs []engine.InputEvent, start, end int) ([][][]float64, []engine.InputEvent) {
	sub := make([][][]float64, len(batch))
	for o := range batch {
		sub[o] = batch[o][start:end]
	}
	var evs []engine.InputEvent
	for _, ev := range inputs {
		if ev.Tick >= start && ev.Tick < end {
			ev.Tick -= start
			evs = append(evs, ev)
		}
	}
	return sub, evs
}

// pushWindow feeds one window through the ingestor via PushBatch — the
// same bridge fadewich-sim uses to port synchronous RunBatch call sites.
func pushWindow(t *testing.T, in *Ingestor, sub [][][]float64, evs []engine.InputEvent) {
	t.Helper()
	if err := in.PushBatch(sub, evs); err != nil {
		t.Fatal(err)
	}
}

// TestIngestorMatchesSynchronousFleet is the acceptance check: with a
// RingSink attached, a 64-office fleet driven through the Ingestor
// (Flush at the same boundaries) produces a sink stream byte-identical
// to the synchronous RunBatch action stream for the same seed.
func TestIngestorMatchesSynchronousFleet(t *testing.T) {
	const offices, ticks, windowTicks = 64, 260, 77
	batch, inputs := scenario(offices, ticks)

	// Synchronous reference stream.
	syncFleet := testFleet(t, offices, 4)
	var want []engine.OfficeAction
	for start := 0; start < ticks; start += windowTicks {
		end := min(start+windowTicks, ticks)
		sub, evs := window(batch, inputs, start, end)
		acts, err := syncFleet.RunBatch(sub, evs)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, acts...)
	}
	if len(want) == 0 {
		t.Fatal("scenario produced no actions; the comparison is vacuous")
	}

	// Asynchronous stream through the Ingestor into a RingSink.
	ring := NewRingSink(4096)
	in, err := NewIngestor(testFleet(t, offices, 4), Config{Queue: windowTicks, Sink: ring})
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < ticks; start += windowTicks {
		end := min(start+windowTicks, ticks)
		sub, evs := window(batch, inputs, start, end)
		pushWindow(t, in, sub, evs)
		if err := in.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	got := ring.Actions()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sink stream differs from synchronous stream: %d vs %d actions", len(got), len(want))
	}
	if !bytes.Equal(AppendJSONL(nil, got), AppendJSONL(nil, want)) {
		t.Fatal("sink stream wire encoding is not byte-identical to the synchronous stream")
	}
	st := in.Stats()
	if st.Dropped != 0 {
		t.Fatalf("lossless run dropped %d ticks", st.Dropped)
	}
	if int(st.Actions) != len(want) {
		t.Fatalf("stats count %d actions, stream has %d", st.Actions, len(want))
	}
}

func TestIngestorBlockPolicyIsLossless(t *testing.T) {
	in, err := NewIngestor(testFleet(t, 1, 2), Config{Queue: 4, OnFull: Block})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	row := []float64{-60, -58}
	for i := 0; i < 50; i++ {
		if err := in.Push(0, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	o := st.Offices[0]
	if o.Pushed != 50 || o.Dispatched != 50 || o.Dropped != 0 || o.Depth != 0 {
		t.Fatalf("block policy stats: %+v", o)
	}
}

func TestIngestorDropOldestEvicts(t *testing.T) {
	in, err := NewIngestor(testFleet(t, 1, 1), Config{Queue: 4, OnFull: DropOldest})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	row := []float64{-60, -58}
	for i := 0; i < 10; i++ {
		if err := in.Push(0, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	o := st.Offices[0]
	if o.Dropped != 6 || o.Dispatched != 4 || o.Pushed != 10 {
		t.Fatalf("drop-oldest stats: %+v", o)
	}
}

func TestIngestorErrorOnFullRejects(t *testing.T) {
	in, err := NewIngestor(testFleet(t, 1, 1), Config{Queue: 2, OnFull: ErrorOnFull})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	row := []float64{-60, -58}
	for i := 0; i < 2; i++ {
		if err := in.Push(0, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Push(0, row); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull push returned %v, want ErrQueueFull", err)
	}
	if st := in.Stats(); st.Offices[0].Dropped != 1 || st.Offices[0].Depth != 2 {
		t.Fatalf("error-on-full stats: %+v", st.Offices[0])
	}
}

func TestIngestorInputDelivery(t *testing.T) {
	f := testFleet(t, 2, 1)
	in, err := NewIngestor(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if err := in.PushInput(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := in.Push(0, []float64{-60, -58}); err != nil {
		t.Fatal(err)
	}
	if err := in.Push(1, []float64{-60, -58}); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if f.System(0).Authenticated(0) || !f.System(1).Authenticated(0) {
		t.Fatal("input routed to the wrong office")
	}
}

func TestIngestorValidation(t *testing.T) {
	if _, err := NewIngestor(nil, Config{}); err == nil {
		t.Fatal("nil fleet accepted")
	}
	if _, err := NewIngestor(testFleet(t, 1, 1), Config{Queue: -1}); err == nil {
		t.Fatal("negative queue accepted")
	}
	if _, err := NewIngestor(testFleet(t, 1, 1), Config{Queue: 4, BatchTicks: 8}); err == nil {
		t.Fatal("batch ticks above queue capacity accepted")
	}
	in, err := NewIngestor(testFleet(t, 1, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if err := in.Push(5, []float64{-60, -58}); err == nil {
		t.Fatal("out-of-range office accepted")
	}
	if err := in.PushInput(-1, 0); err == nil {
		t.Fatal("out-of-range input office accepted")
	}
}

func TestIngestorCloseIsIdempotentAndFinal(t *testing.T) {
	in, err := NewIngestor(testFleet(t, 1, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Push(0, []float64{-60, -58}); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := in.Push(0, []float64{-60, -58}); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close returned %v, want ErrClosed", err)
	}
	if err := in.PushInput(0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("push-input after close returned %v, want ErrClosed", err)
	}
	if err := in.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush after close returned %v, want ErrClosed", err)
	}
	// The pre-close tick was still dispatched (flush-on-close).
	if st := in.Stats(); st.Offices[0].Dispatched != 1 {
		t.Fatalf("close did not drain the queue: %+v", st.Offices[0])
	}
}

func TestIngestorOnBatchTapSeesFullStream(t *testing.T) {
	const offices, ticks, windowTicks = 8, 200, 50
	batch, inputs := scenario(offices, ticks)
	ring := NewRingSink(2048)
	var tapped []engine.OfficeAction
	in, err := NewIngestor(testFleet(t, offices, 2), Config{
		Sink:    ring,
		OnBatch: func(acts []engine.OfficeAction) { tapped = append(tapped, acts...) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < ticks; start += windowTicks {
		sub, evs := window(batch, inputs, start, min(start+windowTicks, ticks))
		pushWindow(t, in, sub, evs)
		if err := in.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if len(tapped) == 0 {
		t.Fatal("tap saw no actions")
	}
	if !reflect.DeepEqual(tapped, ring.Actions()) {
		t.Fatalf("tap stream (%d actions) differs from sink stream (%d)", len(tapped), ring.Len())
	}
}

func TestIngestorBatchTicksAutoDispatch(t *testing.T) {
	in, err := NewIngestor(testFleet(t, 1, 1), Config{Queue: 64, BatchTicks: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	row := []float64{-60, -58}
	for i := 0; i < 8; i++ {
		if err := in.Push(0, row); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for in.Stats().Offices[0].Dispatched < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("auto-dispatch never ran: %+v", in.Stats().Offices[0])
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIngestorConcurrentProducers exercises the queues under -race: one
// producer per office plus a concurrent flusher.
func TestIngestorConcurrentProducers(t *testing.T) {
	const offices, perOffice = 4, 200
	in, err := NewIngestor(testFleet(t, offices, 2), Config{Queue: 16, OnFull: Block})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for o := 0; o < offices; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			src := rng.New(uint64(o) + 9)
			for i := 0; i < perOffice; i++ {
				if err := in.Push(o, []float64{-60 + src.Normal(0, 0.4), -58}); err != nil {
					t.Error(err)
					return
				}
			}
		}(o)
	}
	wg.Wait()
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	for o, os := range st.Offices {
		if os.Dispatched != perOffice || os.Dropped != 0 {
			t.Fatalf("office %d: %+v", o, os)
		}
	}
}
