package stream

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"fadewich/internal/control"
	"fadewich/internal/core"
	"fadewich/internal/engine"
	"fadewich/internal/rng"
	"fadewich/internal/wire"
)

// testFleet builds a small fleet whose timeout backstop guarantees
// actions without a trained classifier (same shape as the engine tests).
func testFleet(t testing.TB, offices, workers int) *engine.Fleet {
	t.Helper()
	f, err := engine.NewFleet(engine.FleetConfig{
		Offices: offices,
		Workers: workers,
		System: core.Config{
			Streams:      2,
			Workstations: 1,
			Params:       control.Params{TimeoutSec: 30},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// scenario builds a deterministic workload: per-office quiet RSSI ticks
// and one staggered login per office, so timeout deauthentications land
// at distinct office-dependent times.
func scenario(offices, ticks int) (batch [][][]float64, inputs []engine.InputEvent) {
	batch = make([][][]float64, offices)
	for o := 0; o < offices; o++ {
		src := rng.New(uint64(o) + 1)
		days := make([][]float64, ticks)
		for t := range days {
			days[t] = []float64{-60 + src.Normal(0, 0.4), -58 + src.Normal(0, 0.4)}
		}
		batch[o] = days
		inputs = append(inputs, engine.InputEvent{Office: o, Workstation: 0, Tick: o % 17})
	}
	return batch, inputs
}

// window slices the scenario into [start, end) for every office, with
// the window's events re-based to the window start.
func window(batch [][][]float64, inputs []engine.InputEvent, start, end int) ([][][]float64, []engine.InputEvent) {
	sub := make([][][]float64, len(batch))
	for o := range batch {
		sub[o] = batch[o][start:end]
	}
	var evs []engine.InputEvent
	for _, ev := range inputs {
		if ev.Tick >= start && ev.Tick < end {
			ev.Tick -= start
			evs = append(evs, ev)
		}
	}
	return sub, evs
}

// pushWindow feeds one window through the ingestor via PushBatch — the
// same bridge fadewich-sim uses to port synchronous RunBatch call sites.
func pushWindow(t *testing.T, in *Ingestor, sub [][][]float64, evs []engine.InputEvent) {
	t.Helper()
	if err := in.PushBatch(sub, evs); err != nil {
		t.Fatal(err)
	}
}

// TestIngestorMatchesSynchronousFleet is the acceptance check: with a
// RingSink attached, a 64-office fleet driven through the Ingestor
// (Flush at the same boundaries) produces a sink stream byte-identical
// to the synchronous RunBatch action stream for the same seed.
func TestIngestorMatchesSynchronousFleet(t *testing.T) {
	const offices, ticks, windowTicks = 64, 260, 77
	batch, inputs := scenario(offices, ticks)

	// Synchronous reference stream.
	syncFleet := testFleet(t, offices, 4)
	var want []engine.OfficeAction
	for start := 0; start < ticks; start += windowTicks {
		end := min(start+windowTicks, ticks)
		sub, evs := window(batch, inputs, start, end)
		acts, err := syncFleet.RunBatch(sub, evs)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, acts...)
	}
	if len(want) == 0 {
		t.Fatal("scenario produced no actions; the comparison is vacuous")
	}

	// Asynchronous stream through the Ingestor into a RingSink.
	ring := NewRingSink(4096)
	in, err := NewIngestor(testFleet(t, offices, 4), Config{Queue: windowTicks, Sink: ring})
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < ticks; start += windowTicks {
		end := min(start+windowTicks, ticks)
		sub, evs := window(batch, inputs, start, end)
		pushWindow(t, in, sub, evs)
		if err := in.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	got := ring.Actions()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sink stream differs from synchronous stream: %d vs %d actions", len(got), len(want))
	}
	if !bytes.Equal(wire.AppendJSONL(nil, got), wire.AppendJSONL(nil, want)) {
		t.Fatal("sink stream wire encoding is not byte-identical to the synchronous stream")
	}
	st := in.Stats()
	if st.Dropped != 0 {
		t.Fatalf("lossless run dropped %d ticks", st.Dropped)
	}
	if int(st.Actions) != len(want) {
		t.Fatalf("stats count %d actions, stream has %d", st.Actions, len(want))
	}
}

func TestIngestorBlockPolicyIsLossless(t *testing.T) {
	in, err := NewIngestor(testFleet(t, 1, 2), Config{Queue: 4, OnFull: Block})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	row := []float64{-60, -58}
	for i := 0; i < 50; i++ {
		if err := in.Push(0, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	o := st.Offices[0]
	if o.Pushed != 50 || o.Dispatched != 50 || o.Dropped != 0 || o.Depth != 0 {
		t.Fatalf("block policy stats: %+v", o)
	}
}

func TestIngestorDropOldestEvicts(t *testing.T) {
	in, err := NewIngestor(testFleet(t, 1, 1), Config{Queue: 4, OnFull: DropOldest})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	row := []float64{-60, -58}
	for i := 0; i < 10; i++ {
		if err := in.Push(0, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	o := st.Offices[0]
	if o.Dropped != 6 || o.Dispatched != 4 || o.Pushed != 10 {
		t.Fatalf("drop-oldest stats: %+v", o)
	}
}

func TestIngestorErrorOnFullRejects(t *testing.T) {
	in, err := NewIngestor(testFleet(t, 1, 1), Config{Queue: 2, OnFull: ErrorOnFull})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	row := []float64{-60, -58}
	for i := 0; i < 2; i++ {
		if err := in.Push(0, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Push(0, row); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull push returned %v, want ErrQueueFull", err)
	}
	if st := in.Stats(); st.Offices[0].Dropped != 1 || st.Offices[0].Depth != 2 {
		t.Fatalf("error-on-full stats: %+v", st.Offices[0])
	}
}

func TestIngestorInputDelivery(t *testing.T) {
	f := testFleet(t, 2, 1)
	in, err := NewIngestor(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if err := in.PushInput(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := in.Push(0, []float64{-60, -58}); err != nil {
		t.Fatal(err)
	}
	if err := in.Push(1, []float64{-60, -58}); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if f.System(0).Authenticated(0) || !f.System(1).Authenticated(0) {
		t.Fatal("input routed to the wrong office")
	}
}

func TestIngestorValidation(t *testing.T) {
	if _, err := NewIngestor(nil, Config{}); err == nil {
		t.Fatal("nil fleet accepted")
	}
	if _, err := NewIngestor(testFleet(t, 1, 1), Config{Queue: -1}); err == nil {
		t.Fatal("negative queue accepted")
	}
	if _, err := NewIngestor(testFleet(t, 1, 1), Config{Queue: 4, BatchTicks: 8}); err == nil {
		t.Fatal("batch ticks above queue capacity accepted")
	}
	in, err := NewIngestor(testFleet(t, 1, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if err := in.Push(5, []float64{-60, -58}); err == nil {
		t.Fatal("out-of-range office accepted")
	}
	if err := in.PushInput(-1, 0); err == nil {
		t.Fatal("out-of-range input office accepted")
	}
}

func TestIngestorCloseIsIdempotentAndFinal(t *testing.T) {
	in, err := NewIngestor(testFleet(t, 1, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Push(0, []float64{-60, -58}); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := in.Push(0, []float64{-60, -58}); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close returned %v, want ErrClosed", err)
	}
	if err := in.PushInput(0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("push-input after close returned %v, want ErrClosed", err)
	}
	if err := in.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush after close returned %v, want ErrClosed", err)
	}
	// The pre-close tick was still dispatched (flush-on-close).
	if st := in.Stats(); st.Offices[0].Dispatched != 1 {
		t.Fatalf("close did not drain the queue: %+v", st.Offices[0])
	}
}

func TestIngestorOnBatchTapSeesFullStream(t *testing.T) {
	const offices, ticks, windowTicks = 8, 200, 50
	batch, inputs := scenario(offices, ticks)
	ring := NewRingSink(2048)
	var tapped []engine.OfficeAction
	in, err := NewIngestor(testFleet(t, offices, 2), Config{
		Sink:    ring,
		OnBatch: func(acts []engine.OfficeAction) { tapped = append(tapped, acts...) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < ticks; start += windowTicks {
		sub, evs := window(batch, inputs, start, min(start+windowTicks, ticks))
		pushWindow(t, in, sub, evs)
		if err := in.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if len(tapped) == 0 {
		t.Fatal("tap saw no actions")
	}
	if !reflect.DeepEqual(tapped, ring.Actions()) {
		t.Fatalf("tap stream (%d actions) differs from sink stream (%d)", len(tapped), ring.Len())
	}
}

func TestIngestorBatchTicksAutoDispatch(t *testing.T) {
	in, err := NewIngestor(testFleet(t, 1, 1), Config{Queue: 64, BatchTicks: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	row := []float64{-60, -58}
	for i := 0; i < 8; i++ {
		if err := in.Push(0, row); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for in.Stats().Offices[0].Dispatched < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("auto-dispatch never ran: %+v", in.Stats().Offices[0])
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIngestorAddOfficeJoinsClean checks that a tenant added through the
// ingestor gets a fresh queue and a clean System, and participates from
// the next dispatch on.
func TestIngestorAddOfficeJoinsClean(t *testing.T) {
	f := testFleet(t, 1, 2)
	in, err := NewIngestor(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	id, err := in.AddOffice(core.Config{
		Streams:      3,
		Workstations: 1,
		Params:       control.Params{TimeoutSec: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("joiner ID %d, want 1", id)
	}
	if sys := f.System(id); sys == nil || sys.Now() != 0 || sys.Phase() != core.PhaseTraining {
		t.Fatal("joiner did not start clean")
	}
	if err := in.PushInput(id, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := in.Push(id, []float64{-60, -58, -61}); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := f.System(id).Now(); got != 2.0 {
		t.Fatalf("joiner clock %.1f after 10 ticks, want 2.0", got)
	}
	st := in.Stats()
	if len(st.Offices) != 2 || st.Offices[1].Office != id || st.Offices[1].Dispatched != 10 {
		t.Fatalf("joiner missing from stats: %+v", st.Offices)
	}
}

// TestIngestorRemoveOfficeDrainsQueuedTicks is the drain contract: the
// removed office's already-queued ticks are dispatched as its final
// flush, and the actions they produce are exactly the actions the same
// ticks produce on a standalone System — nothing lost, nothing extra.
func TestIngestorRemoveOfficeDrainsQueuedTicks(t *testing.T) {
	const offices, ticks = 2, 170 // timeout backstop fires at tick 150
	batch, _ := scenario(offices, ticks)

	var tapped []engine.OfficeAction
	f := testFleet(t, offices, 2)
	in, err := NewIngestor(f, Config{
		Queue:   ticks + 8,
		OnBatch: func(acts []engine.OfficeAction) { tapped = append(tapped, acts...) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	// Queue a login plus the whole day for office 1 WITHOUT flushing, then
	// remove it: the drain must dispatch every queued tick.
	if err := in.PushInput(1, 0); err != nil {
		t.Fatal(err)
	}
	for _, row := range batch[1] {
		if err := in.Push(1, row); err != nil {
			t.Fatal(err)
		}
	}
	sys, err := in.RemoveOffice(1)
	if err != nil {
		t.Fatal(err)
	}
	if sys == nil || sys.Now() != float64(ticks)*0.2 {
		t.Fatal("removal did not drain the queued ticks into the System")
	}

	// Reference: the same ticks on a standalone System.
	refSys, err := core.NewSystem(core.Config{
		Streams:      2,
		Workstations: 1,
		Params:       control.Params{TimeoutSec: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	refSys.NotifyInput(0)
	var want []engine.OfficeAction
	for _, row := range batch[1] {
		for _, a := range refSys.Tick(row) {
			want = append(want, engine.OfficeAction{Office: 1, Action: a})
		}
	}
	if len(want) == 0 {
		t.Fatal("reference run produced no actions; the drain check is vacuous")
	}
	if !reflect.DeepEqual(tapped, want) {
		t.Fatalf("final flush emitted %d actions, reference has %d (or contents differ)", len(tapped), len(want))
	}

	// The office is gone: pushes fail, stats moved to the retired totals.
	if err := in.Push(1, batch[1][0]); !errors.Is(err, ErrUnknownOffice) {
		t.Fatalf("push to removed office returned %v, want ErrUnknownOffice", err)
	}
	if _, err := in.RemoveOffice(1); !errors.Is(err, ErrUnknownOffice) {
		t.Fatalf("double removal returned %v, want ErrUnknownOffice", err)
	}
	st := in.Stats()
	if len(st.Offices) != 1 || st.Offices[0].Office != 0 {
		t.Fatalf("stats still list the removed office: %+v", st.Offices)
	}
	if st.Retired.Pushed != ticks || st.Retired.Dispatched != ticks || st.Retired.Dropped != 0 {
		t.Fatalf("retired totals: %+v", st.Retired)
	}
	if f.Offices() != 1 {
		t.Fatalf("fleet still has %d offices", f.Offices())
	}
}

// TestIngestorChurnUnderLoad is the elastic acceptance test: 64 offices
// stream ticks from concurrent producers while 16 membership events
// (8 joins, 8 removals) land mid-run, and every dispatched batch of the
// merged stream must stay totally ordered by (time, office). CI repeats
// this package under -race.
func TestIngestorChurnUnderLoad(t *testing.T) {
	const (
		offices   = 64
		perOffice = 150
		events    = 16
	)
	var (
		orderMu  sync.Mutex
		orderErr error
	)
	checkOrder := func(acts []engine.OfficeAction) {
		for i := 1; i < len(acts); i++ {
			a, b := acts[i-1], acts[i]
			if b.Action.Time < a.Action.Time ||
				(b.Action.Time == a.Action.Time && b.Office < a.Office) {
				orderMu.Lock()
				if orderErr == nil {
					orderErr = errors.New("merged batch out of order across churn")
				}
				orderMu.Unlock()
				return
			}
		}
	}
	in, err := NewIngestor(testFleet(t, offices, 4), Config{
		Queue:   32,
		OnFull:  Block,
		OnBatch: checkOrder,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for o := 0; o < offices; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			src := rng.New(uint64(o) + 9)
			if err := in.PushInput(o, 0); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perOffice; i++ {
				if err := in.Push(o, []float64{-60 + src.Normal(0, 0.4), -58}); err != nil {
					t.Error(err)
					return
				}
			}
		}(o)
	}

	// Churner: joins a heterogeneous tenant, streams a short burst into
	// it, then removes it — 8 times, concurrently with the producers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		joinCfg := core.Config{Streams: 3, Workstations: 2, Params: control.Params{TimeoutSec: 15}}
		for ev := 0; ev < events/2; ev++ {
			id, err := in.AddOffice(joinCfg)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 20; i++ {
				if err := in.Push(id, []float64{-61, -59, -60}); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := in.RemoveOffice(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	orderMu.Lock()
	defer orderMu.Unlock()
	if orderErr != nil {
		t.Fatal(orderErr)
	}
	st := in.Stats()
	if len(st.Offices) != offices {
		t.Fatalf("%d offices left after churn, want %d", len(st.Offices), offices)
	}
	for _, os := range st.Offices {
		if os.Dispatched != perOffice || os.Dropped != 0 {
			t.Fatalf("office %d lost ticks across churn: %+v", os.Office, os)
		}
	}
	if st.Retired.Pushed != events/2*20 || st.Retired.Dispatched != st.Retired.Pushed {
		t.Fatalf("retired totals after churn: %+v", st.Retired)
	}
}

// TestIngestorConcurrentProducers exercises the queues under -race: one
// producer per office plus a concurrent flusher.
func TestIngestorConcurrentProducers(t *testing.T) {
	const offices, perOffice = 4, 200
	in, err := NewIngestor(testFleet(t, offices, 2), Config{Queue: 16, OnFull: Block})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for o := 0; o < offices; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			src := rng.New(uint64(o) + 9)
			for i := 0; i < perOffice; i++ {
				if err := in.Push(o, []float64{-60 + src.Normal(0, 0.4), -58}); err != nil {
					t.Error(err)
					return
				}
			}
		}(o)
	}
	wg.Wait()
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	for o, os := range st.Offices {
		if os.Dispatched != perOffice || os.Dropped != 0 {
			t.Fatalf("office %d: %+v", o, os)
		}
	}
}
