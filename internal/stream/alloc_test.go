package stream

import (
	"testing"

	"fadewich/internal/core"
	"fadewich/internal/engine"
)

// TestIngestorSteadyStateAllocs pins the queue machinery's allocation
// behaviour: once every office's freelist and snapshot buffers are warm,
// a full push-and-flush cycle must not allocate per tick or per office.
// Push copies into recycled sample slices, the dispatcher's snapshot
// reuses the office's spare header array and the shared batch/event
// buffers, and the fleet's routing scratch is pooled on its side. The
// residue is the fleet's merged-result slice plus detector internals —
// a small constant, where the unpooled path paid one allocation per
// pushed tick plus per-office snapshot headers (hundreds per cycle).
func TestIngestorSteadyStateAllocs(t *testing.T) {
	const (
		offices    = 8
		streams    = 4
		batchTicks = 64
	)
	fleet, err := engine.NewFleet(engine.FleetConfig{
		Offices: offices,
		System:  core.Config{Streams: streams, Workstations: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIngestor(fleet, Config{Queue: batchTicks})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	row := make([]float64, streams)
	for k := range row {
		row[k] = -60 + float64(k)
	}
	cycle := func() {
		for o := 0; o < offices; o++ {
			for i := 0; i < batchTicks; i++ {
				if err := in.Push(o, row); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := in.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the freelists, snapshot buffers and detector windows.
	for i := 0; i < 50; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(20, cycle)
	// 512 ticks per cycle: well under one allocation per tick means the
	// recycling paths are live. Measured ~27 (all constant residue); the
	// bound leaves headroom for detector refit cadence without masking a
	// per-tick regression (the unpooled path allocated 500+).
	if allocs > 64 {
		t.Fatalf("push/flush cycle allocates %.1f times (%d ticks), want <= 64", allocs, offices*batchTicks)
	}
}
