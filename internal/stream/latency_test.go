package stream

import (
	"testing"
	"time"

	"fadewich/internal/core"
	"fadewich/internal/engine"
)

func latencyFleet(t *testing.T) *engine.Fleet {
	t.Helper()
	f, err := engine.NewFleet(engine.FleetConfig{
		Offices: 2,
		System:  core.Config{Streams: 4, Workstations: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestMaxBatchLatencyFlushesIdleOffice is the free-running hardening
// contract: a tick pushed with no subsequent Flush and no BatchTicks
// threshold must still be dispatched within the configured bound.
func TestMaxBatchLatencyFlushesIdleOffice(t *testing.T) {
	in, err := NewIngestor(latencyFleet(t), Config{MaxBatchLatency: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if err := in.Push(0, []float64{-60, -60, -60, -60}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if in.Stats().Offices[0].Dispatched == 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("tick still queued after 5 s despite 25 ms max latency: %+v", in.Stats())
}

// TestMaxBatchLatencyRestartsPerBatch checks the clock re-arms after
// each dispatch: several well-spaced pushes each flush on their own.
func TestMaxBatchLatencyRestartsPerBatch(t *testing.T) {
	in, err := NewIngestor(latencyFleet(t), Config{MaxBatchLatency: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	for round := uint64(1); round <= 3; round++ {
		if err := in.Push(1, []float64{-60, -60, -60, -60}); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for in.Stats().Offices[1].Dispatched < round {
			if !time.Now().Before(deadline) {
				t.Fatalf("round %d not dispatched: %+v", round, in.Stats())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestZeroMaxBatchLatencyStaysCallerDriven pins the default: without the
// trigger, queued ticks wait for a Flush indefinitely.
func TestZeroMaxBatchLatencyStaysCallerDriven(t *testing.T) {
	in, err := NewIngestor(latencyFleet(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if err := in.Push(0, []float64{-60, -60, -60, -60}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if got := in.Stats().Offices[0].Dispatched; got != 0 {
		t.Fatalf("tick dispatched without a flush: %d", got)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := in.Stats().Offices[0].Dispatched; got != 1 {
		t.Fatalf("flush did not dispatch the tick: %d", got)
	}
}

// TestNegativeMaxBatchLatencyRejected pins the config validation.
func TestNegativeMaxBatchLatencyRejected(t *testing.T) {
	if _, err := NewIngestor(latencyFleet(t), Config{MaxBatchLatency: -time.Second}); err == nil {
		t.Fatal("negative MaxBatchLatency accepted")
	}
}
