package stream

import (
	"reflect"
	"testing"

	"fadewich/internal/engine"
	"fadewich/internal/segment"
	"fadewich/internal/wire"
)

// recordingFrameSink is a FrameSink that remembers the exact
// *EncodedFrame pointers it pulled, so tests can prove sharing.
type recordingFrameSink struct {
	ver      wire.Version
	compress bool
	frames   []*EncodedFrame
	plain    int // Write calls (the non-frame path)
}

func (s *recordingFrameSink) WriteEncoded(e *EncodedBatch) error {
	f, err := e.Frame(s.ver, s.compress)
	if err != nil {
		return err
	}
	s.frames = append(s.frames, f)
	return nil
}

func (s *recordingFrameSink) Write(batch []engine.OfficeAction) error {
	s.plain++
	return nil
}

func (s *recordingFrameSink) Close() error { return nil }

// epochRecorder captures WriteEpoch deliveries.
type epochRecorder struct {
	epochs  []uint64
	lengths []int
}

func (s *epochRecorder) Write(batch []engine.OfficeAction) error { return nil }
func (s *epochRecorder) Close() error                            { return nil }
func (s *epochRecorder) WriteEpoch(epoch uint64, batch []engine.OfficeAction) error {
	s.epochs = append(s.epochs, epoch)
	s.lengths = append(s.lengths, len(batch))
	return nil
}

func TestEncodeOnceSharesVariantAcrossMembers(t *testing.T) {
	a := &recordingFrameSink{ver: wire.V1JSONL}
	b := &recordingFrameSink{ver: wire.V1JSONL}
	c := &recordingFrameSink{ver: wire.V2Binary, compress: true}
	ring := NewRingSink(64)
	fan := NewEncodeOnceSink(a, b, c, ring)

	batch := sampleBatch(20)
	if err := fan.Write(batch); err != nil {
		t.Fatal(err)
	}
	if len(a.frames) != 1 || len(b.frames) != 1 || len(c.frames) != 1 {
		t.Fatalf("frame deliveries: %d/%d/%d, want 1 each", len(a.frames), len(b.frames), len(c.frames))
	}
	if a.frames[0] != b.frames[0] {
		t.Fatal("same-variant members got different encodes")
	}
	if c.frames[0] == a.frames[0] {
		t.Fatal("different variants shared an encode")
	}
	if got, err := wire.AppendFrame(nil, wire.V1JSONL, batch); err != nil || !reflect.DeepEqual(a.frames[0].Wire, got) {
		t.Fatalf("shared frame differs from a direct encode (%v)", err)
	}
	if !reflect.DeepEqual(ring.Actions(), batch) {
		t.Fatal("plain member missed the batch")
	}

	// A second cycle must not reuse the first cycle's buffers: the
	// first cycle's frames may be retained by consumers.
	first := a.frames[0].Wire
	if err := fan.Write(sampleBatch(21)); err != nil {
		t.Fatal(err)
	}
	if &first[0] == &a.frames[1].Wire[0] {
		t.Fatal("cycle 2 reused cycle 1's frame buffer")
	}
	if !reflect.DeepEqual(first, func() []byte {
		f, _ := wire.AppendFrame(nil, wire.V1JSONL, batch)
		return f
	}()) {
		t.Fatal("cycle 1's retained frame was clobbered by cycle 2")
	}
}

func TestEncodeOnceEpochProtocol(t *testing.T) {
	ep := &epochRecorder{}
	fr := &recordingFrameSink{ver: wire.V1JSONL}
	fan := NewEncodeOnceSink(ep, fr).(*encodeOnceSink)

	if err := fan.WriteEpoch(1, sampleBatch(8)); err != nil {
		t.Fatal(err)
	}
	if err := fan.WriteEpoch(2, nil); err != nil { // empty epoch
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ep.epochs, []uint64{1, 2}) || !reflect.DeepEqual(ep.lengths, []int{8, 0}) {
		t.Fatalf("epoch member saw %v/%v, want epochs 1,2 with lengths 8,0", ep.epochs, ep.lengths)
	}
	// The frame member sees only the non-empty cycle, and through the
	// frame face, not plain Write.
	if len(fr.frames) != 1 || fr.plain != 0 {
		t.Fatalf("frame member: %d frames, %d plain writes; want 1/0", len(fr.frames), fr.plain)
	}
}

// TestEncodeOnceSegmentSinkMatchesDirectWrites proves the fan-out path
// writes a byte-identical segment directory to per-sink encoding.
func TestEncodeOnceSegmentSinkMatchesDirectWrites(t *testing.T) {
	for _, compress := range []bool{false, true} {
		dirFan, dirDirect := t.TempDir(), t.TempDir()
		fanSeg, err := NewSegmentSink(segment.Config{Dir: dirFan, Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := NewSegmentSink(segment.Config{Dir: dirDirect, Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		fan := NewEncodeOnceSink(fanSeg, NewRingSink(0))
		var want []engine.OfficeAction
		for i := 0; i < 6; i++ {
			b := sampleBatch(40 + i)
			if err := fan.Write(b); err != nil {
				t.Fatal(err)
			}
			if err := direct.Write(b); err != nil {
				t.Fatal(err)
			}
			want = append(want, b...)
		}
		if err := fan.Close(); err != nil {
			t.Fatal(err)
		}
		if err := direct.Close(); err != nil {
			t.Fatal(err)
		}
		fs, ds := fanSeg.Stats(), direct.Stats()
		if fs.Frames != ds.Frames || fs.Bytes != ds.Bytes || fs.WireBytes != ds.WireBytes {
			t.Fatalf("compress=%v: fan-out stats %+v differ from direct %+v", compress, fs, ds)
		}
		if compress && fs.WireBytes >= fs.Bytes {
			t.Fatalf("compressed segment sink wrote %d wire bytes for %d logical", fs.WireBytes, fs.Bytes)
		}
		r, err := segment.OpenDir(dirFan, segment.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var got []engine.OfficeAction
		for {
			b, err := r.Next()
			if err != nil {
				break
			}
			got = append(got, b...)
		}
		r.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("compress=%v: fan-out segment replay differs", compress)
		}
	}
}

func TestTCPSinkCompressedStream(t *testing.T) {
	fs := newFrameServer(t)
	s, err := NewTCPSink(fs.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s.Compress = true
	batch := sampleBatch(100)
	if err := s.Write(batch); err != nil {
		t.Fatal(err)
	}
	if got := fs.recvFrame(t); !reflect.DeepEqual(got, batch) {
		t.Fatal("compressed frame decoded to a different batch")
	}
	st := s.Stats()
	if st.WireBytes >= st.Bytes {
		t.Fatalf("compression saved nothing: %d wire bytes for %d logical", st.WireBytes, st.Bytes)
	}
	// A tiny batch rides along as a plain frame — both counters grow by
	// the same amount.
	small := sampleBatch(1)
	if err := s.Write(small); err != nil {
		t.Fatal(err)
	}
	if got := fs.recvFrame(t); !reflect.DeepEqual(got, small) {
		t.Fatal("small batch decoded to a different batch")
	}
	st2 := s.Stats()
	if st2.WireBytes-st.WireBytes != st2.Bytes-st.Bytes {
		t.Fatalf("small plain frame accounted asymmetrically: wire +%d, logical +%d", st2.WireBytes-st.WireBytes, st2.Bytes-st.Bytes)
	}
	s.Close()
}

func TestTCPSinkTaggedCompressedEpochs(t *testing.T) {
	fs := newFrameServer(t)
	s, err := NewTCPSink(fs.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s.Source = 3
	s.Compress = true
	b1, b2 := sampleBatch(80), sampleBatch(90)
	if err := s.WriteEpoch(1, b1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteEpoch(2, b2); err != nil {
		t.Fatal(err)
	}
	if got := fs.recvFrame(t); !reflect.DeepEqual(got, b1) {
		t.Fatal("epoch 1 decoded to a different batch")
	}
	if got := fs.recvFrame(t); !reflect.DeepEqual(got, b2) {
		t.Fatal("epoch 2 decoded to a different batch")
	}
	st := s.Stats()
	if st.WireBytes >= st.Bytes {
		t.Fatalf("tagged compression saved nothing: %d wire for %d logical", st.WireBytes, st.Bytes)
	}
	if err := s.Close(); err != nil { // sends the FlagFinal frame
		t.Fatal(err)
	}
}

// BenchmarkFanoutEncodeOnce measures a three-way fan-out of the same
// dispatch: "multi" encodes per member (the old NewMultiSink shape),
// "shared" pulls one encode per variant from the EncodedBatch.
func BenchmarkFanoutEncodeOnce(b *testing.B) {
	batch := sampleBatch(256)
	perSink := func() Sink {
		return &benchEncodingSink{ver: wire.V1JSONL}
	}
	b.Run("multi", func(b *testing.B) {
		fan := NewMultiSink(perSink(), perSink(), perSink())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fan.Write(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(batch)), "ns/action")
	})
	b.Run("shared", func(b *testing.B) {
		fan := NewEncodeOnceSink(
			&benchFrameSink{ver: wire.V1JSONL},
			&benchFrameSink{ver: wire.V1JSONL},
			&benchFrameSink{ver: wire.V1JSONL},
		)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fan.Write(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(batch)), "ns/action")
	})
}

// benchFrameSink pulls its variant and discards it, so the benchmark
// measures encoding, not retention.
type benchFrameSink struct {
	ver   wire.Version
	bytes uint64
}

func (s *benchFrameSink) WriteEncoded(e *EncodedBatch) error {
	f, err := e.Frame(s.ver, false)
	if err != nil {
		return err
	}
	s.bytes += uint64(len(f.Wire))
	return nil
}

func (s *benchFrameSink) Write(batch []engine.OfficeAction) error { return nil }
func (s *benchFrameSink) Close() error                            { return nil }

// benchEncodingSink stands in for a frame-writing sink that encodes
// privately — the pre-encode-once cost model.
type benchEncodingSink struct {
	ver wire.Version
	buf []byte
}

func (s *benchEncodingSink) Write(batch []engine.OfficeAction) error {
	var err error
	s.buf, err = wire.AppendFrame(s.buf[:0], s.ver, batch)
	return err
}

func (s *benchEncodingSink) Close() error { return nil }
