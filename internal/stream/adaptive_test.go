package stream

import (
	"reflect"
	"testing"
	"time"

	"fadewich/internal/engine"
)

func TestNextAutoBatch(t *testing.T) {
	cases := []struct {
		cur, floor, ceil, depth, want int
	}{
		{cur: 4, floor: 4, ceil: 256, depth: 8, want: 8},       // backlog: double
		{cur: 4, floor: 4, ceil: 256, depth: 100, want: 8},     // doubling, not jumping
		{cur: 8, floor: 4, ceil: 256, depth: 4, want: 4},       // sparse: halve
		{cur: 8, floor: 4, ceil: 256, depth: 8, want: 8},       // in band: hold
		{cur: 8, floor: 4, ceil: 256, depth: 15, want: 8},      // just under 2x: hold
		{cur: 4, floor: 4, ceil: 256, depth: 0, want: 4},       // floor clamp
		{cur: 200, floor: 4, ceil: 256, depth: 512, want: 256}, // ceiling clamp
		{cur: 4, floor: 4, ceil: 4, depth: 100, want: 4},       // degenerate band
	}
	for _, c := range cases {
		if got := nextAutoBatch(c.cur, c.floor, c.ceil, c.depth); got != c.want {
			t.Fatalf("nextAutoBatch(%d, %d, %d, depth %d) = %d, want %d",
				c.cur, c.floor, c.ceil, c.depth, got, c.want)
		}
	}
}

func TestAdaptiveBatchRequiresFloor(t *testing.T) {
	if _, err := NewIngestor(testFleet(t, 1, 1), Config{AdaptiveBatch: true}); err == nil {
		t.Fatal("AdaptiveBatch without BatchTicks accepted")
	}
}

// TestAdaptiveBatchGrowsUnderBacklog slows every dispatch down with a
// synchronous tap while a producer floods one office: the observed
// queue depth outruns the threshold and the threshold must scale up.
func TestAdaptiveBatchGrowsUnderBacklog(t *testing.T) {
	in, err := NewIngestor(testFleet(t, 1, 1), Config{
		Queue:         256,
		BatchTicks:    2,
		AdaptiveBatch: true,
		OnBatch:       func([]engine.OfficeAction) { time.Sleep(2 * time.Millisecond) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if got := in.Stats().AutoBatchTicks; got != 2 {
		t.Fatalf("threshold starts at %d, want BatchTicks (2)", got)
	}
	row := []float64{-60, -58}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < 64; i++ {
			if err := in.Push(0, row); err != nil {
				t.Fatal(err)
			}
		}
		if in.Stats().AutoBatchTicks > 2 {
			return
		}
	}
	t.Fatalf("threshold never grew past the floor under backlog (now %d)", in.Stats().AutoBatchTicks)
}

// TestAdaptiveBatchShrinksWhenSparse pre-inflates the threshold, then
// trickles single ticks through flush-driven dispatches: every snapshot
// observes depth 1, so the threshold must decay back to the floor.
func TestAdaptiveBatchShrinksWhenSparse(t *testing.T) {
	in, err := NewIngestor(testFleet(t, 1, 1), Config{Queue: 256, BatchTicks: 2, AdaptiveBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	in.effBatch.Store(64)
	row := []float64{-60, -58}
	for i := 0; i < 8; i++ {
		if err := in.Push(0, row); err != nil {
			t.Fatal(err)
		}
		if err := in.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := in.Stats().AutoBatchTicks; got != 2 {
		t.Fatalf("threshold decayed to %d, want the floor (2)", got)
	}
}

// TestAdaptiveBatchContentMatchesSynchronous: adaptive thresholds move
// dispatch boundaries, never content — a single-office stream must come
// out identical to the synchronous fleet run however the batches fell.
func TestAdaptiveBatchContentMatchesSynchronous(t *testing.T) {
	const ticks = 400
	batch, inputs := scenario(1, ticks)

	syncFleet := testFleet(t, 1, 1)
	want, err := syncFleet.RunBatch(batch, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("scenario produced no actions; the comparison is vacuous")
	}

	ring := NewRingSink(4096)
	in, err := NewIngestor(testFleet(t, 1, 1), Config{
		Queue:         64,
		BatchTicks:    4,
		AdaptiveBatch: true,
		Sink:          ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range inputs {
		_ = ev // events precede their tick; deliver at the right position
	}
	next := 0
	for tIdx := 0; tIdx < ticks; tIdx++ {
		for next < len(inputs) && inputs[next].Tick <= tIdx {
			if err := in.PushInput(inputs[next].Office, inputs[next].Workstation); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := in.Push(0, batch[0][tIdx]); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ring.Actions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("adaptive stream differs from synchronous: %d vs %d actions", len(got), len(want))
	}
}
