package rf

import "testing"

// Model-version-2 golden hashes, pinned with the same harness (seeds,
// sensors, body scripts, tick counts) as the version 1 goldens in
// golden_test.go. Version 2 is its own determinism contract: the
// kernels behind it (vmath, rng.FillNormals) are platform-independent
// by construction, so these hashes must reproduce bit for bit on every
// platform and implementation (FADEWICH_NOVEC included). Update them
// only for a deliberate, documented version-2 model change;
// performance work must not move them.
//
// Under the default 1 dB quantisation the three v1 scenarios come out
// byte-identical under version 2 — the raw-path divergence (~1e-13 dB)
// never moves a sample across a rounding boundary in these runs — so
// those hashes equal their v1 counterparts, which is itself a pinned
// (run-specific, not guaranteed) property. The raw hash pins the
// unquantised version 2 stream, where the relaxed arithmetic is
// actually visible.
const (
	goldenSampleV2Default uint64 = 0xf1284ce979739fe9
	goldenSampleV2Subc4   uint64 = 0x180ae6a1d2170c18
	goldenSampleV2Quiet   uint64 = 0xa45a532d46a39de5
	goldenSampleV2Raw     uint64 = 0x6b59f92cf15d542b
)

func TestSampleGoldenV2Default(t *testing.T) {
	cfg := Config{InterferencePerHour: 3600, ModelVersion: 2}
	if got := hashSampleRun(t, cfg, 42, 400, goldenSensors(), goldenBodies); got != goldenSampleV2Default {
		t.Fatalf("golden hash %#x, want %#x: ModelVersion 2 output diverged from its pinned byte stream", got, goldenSampleV2Default)
	}
}

func TestSampleGoldenV2Subcarriers(t *testing.T) {
	cfg := Config{Subcarriers: 4, InterferencePerHour: 3600, ModelVersion: 2}
	if got := hashSampleRun(t, cfg, 43, 300, goldenSensors(), goldenBodies); got != goldenSampleV2Subc4 {
		t.Fatalf("golden hash %#x, want %#x: ModelVersion 2 output diverged from its pinned byte stream", got, goldenSampleV2Subc4)
	}
}

func TestSampleGoldenV2Quiet(t *testing.T) {
	cfg := Config{ModelVersion: 2}
	got := hashSampleRun(t, cfg, 44, 500, testSensors(), func(int) []Body { return nil })
	if got != goldenSampleV2Quiet {
		t.Fatalf("golden hash %#x, want %#x: ModelVersion 2 quiet-path output diverged from its pinned byte stream", got, goldenSampleV2Quiet)
	}
}

func TestSampleGoldenV2Raw(t *testing.T) {
	cfg := Config{InterferencePerHour: 3600, QuantStepDB: Disable, ModelVersion: 2}
	if got := hashSampleRun(t, cfg, 42, 400, goldenSensors(), goldenBodies); got != goldenSampleV2Raw {
		t.Fatalf("golden hash %#x, want %#x: ModelVersion 2 raw (unquantised) output diverged from its pinned byte stream", got, goldenSampleV2Raw)
	}
}
