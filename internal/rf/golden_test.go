package rf

import (
	"hash/fnv"
	"math"
	"testing"

	"fadewich/internal/geom"
	"fadewich/internal/rng"
)

// The golden hashes below pin the exact byte-level output of the
// propagation model for fixed seeds. They were recorded from the
// per-tick scalar implementation that predates the columnar hot path;
// any refactor of the sampling code must reproduce these hashes bit for
// bit (same RNG draw order, same floating-point operation order). Update
// them only for a deliberate, documented model change.
//
// The hashes were recorded on linux/amd64 (the CI platform). Go permits
// FMA fusion on some other architectures, which could flip a last bit of
// a sample and fail these tests spuriously there.
const (
	goldenSampleDefault uint64 = 0xf1284ce979739fe9
	goldenSampleSubc4   uint64 = 0x180ae6a1d2170c18
	goldenSampleQuiet   uint64 = 0xa45a532d46a39de5
)

// goldenBodies returns the deterministic body script for tick i: one
// walker on a diagonal lap, one seated body with constant pose, and a
// stretch of empty office at the start so the quiet path is pinned too.
func goldenBodies(i int) []Body {
	if i < 40 {
		return nil // empty office: AR noise + bursts only
	}
	walk := float64(i-40) * 0.02
	return []Body{
		{Pos: geom.Point{X: 0.5 + math.Mod(walk, 5.0), Y: 0.5 + math.Mod(walk*0.6, 2.0)}, Speed: 1.3},
		{Pos: geom.Point{X: 4.2, Y: 2.1}, Speed: 0.02},
	}
}

// hashSampleRun runs a network over the given sensors for ticks ticks,
// with bodies(i) supplying each tick's body set, and returns the FNV-1a
// hash of every output value's bit pattern.
func hashSampleRun(t *testing.T, cfg Config, seed uint64, ticks int, sensors []geom.Point, bodies func(i int) []Body) uint64 {
	t.Helper()
	n, err := NewNetwork(cfg, sensors, 0.2, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n.NumStreams())
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < ticks; i++ {
		n.Sample(bodies(i), out)
		for _, v := range out {
			bits := math.Float64bits(v)
			for b := 0; b < 8; b++ {
				buf[b] = byte(bits >> (8 * b))
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// goldenSensors is the paper's nine-sensor wall deployment.
func goldenSensors() []geom.Point {
	return []geom.Point{
		{X: 6, Y: 1.5}, {X: 0.9, Y: 3}, {X: 2.4, Y: 3}, {X: 3.9, Y: 3}, {X: 5.4, Y: 3},
		{X: 0, Y: 1.5}, {X: 4.6, Y: 0}, {X: 3, Y: 0}, {X: 1.4, Y: 0},
	}
}

func TestSampleGoldenDefault(t *testing.T) {
	// High interference rate so the burst path (extra RNG draws + mask
	// regeneration) is exercised and pinned within 400 ticks.
	cfg := Config{InterferencePerHour: 3600}
	if got := hashSampleRun(t, cfg, 42, 400, goldenSensors(), goldenBodies); got != goldenSampleDefault {
		t.Fatalf("golden hash %#x, want %#x: rf.Sample output diverged from the pre-refactor byte stream", got, goldenSampleDefault)
	}
}

func TestSampleGoldenSubcarriers(t *testing.T) {
	cfg := Config{Subcarriers: 4, InterferencePerHour: 3600}
	if got := hashSampleRun(t, cfg, 43, 300, goldenSensors(), goldenBodies); got != goldenSampleSubc4 {
		t.Fatalf("golden hash %#x, want %#x: rf.Sample output diverged from the pre-refactor byte stream", got, goldenSampleSubc4)
	}
}

func TestSampleGoldenQuiet(t *testing.T) {
	// Default burst rate, no bodies for the whole run: pins the quiet
	// fast path (pure AR noise + quantisation).
	got := hashSampleRun(t, Config{}, 44, 500, testSensors(), func(int) []Body { return nil })
	if got != goldenSampleQuiet {
		t.Fatalf("golden hash %#x, want %#x: quiet-path output diverged from the pre-refactor byte stream", got, goldenSampleQuiet)
	}
}
