package rf

import (
	"fmt"
	"testing"

	"fadewich/internal/geom"
	"fadewich/internal/rng"
)

// TestSampleBlockMatchesSample is the core contract of the columnar hot
// path: SampleBlock must be bit-identical to the same number of
// consecutive Sample calls, for plain RSSI and for multi-subcarrier
// streams, across empty/seated/walking body sets.
func TestSampleBlockMatchesSample(t *testing.T) {
	for _, subc := range []int{1, 3} {
		t.Run(fmt.Sprintf("subc-%d", subc), func(t *testing.T) {
			cfg := Config{Subcarriers: subc, InterferencePerHour: 3600}
			const ticks = 150
			bodies := make([][]Body, ticks)
			for i := range bodies {
				bodies[i] = goldenBodies(i)
			}

			scalar, err := NewNetwork(cfg, goldenSensors(), 0.2, rng.New(99))
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]float64, ticks)
			row := make([]float64, scalar.NumStreams())
			for i := range want {
				scalar.Sample(bodies[i], row)
				want[i] = append([]float64(nil), row...)
			}

			block, err := NewNetwork(cfg, goldenSensors(), 0.2, rng.New(99))
			if err != nil {
				t.Fatal(err)
			}
			var blk Block
			block.SampleBlock(bodies, &blk)
			if blk.Ticks() != ticks || blk.Streams() != scalar.NumStreams() {
				t.Fatalf("block shape %dx%d, want %dx%d", blk.Ticks(), blk.Streams(), ticks, scalar.NumStreams())
			}
			for i := range want {
				for k, v := range want[i] {
					if got := blk.At(i, k); got != v {
						t.Fatalf("tick %d stream %d: block %v, scalar %v", i, k, got, v)
					}
				}
			}
		})
	}
}

// TestSampleBlockNoPerTickAllocs pins the zero-allocation guarantee of
// the block path once the block buffer is warm.
func TestSampleBlockNoPerTickAllocs(t *testing.T) {
	n, err := NewNetwork(Config{}, goldenSensors(), 0.2, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 64
	bodies := make([][]Body, ticks)
	for i := range bodies {
		bodies[i] = goldenBodies(i + 50)
	}
	var blk Block
	n.SampleBlock(bodies, &blk) // warm the buffer
	allocs := testing.AllocsPerRun(20, func() {
		n.SampleBlock(bodies, &blk)
	})
	if allocs != 0 {
		t.Fatalf("SampleBlock allocated %.1f objects per call, want 0", allocs)
	}
}

// TestBlockReuse checks Reset keeps the backing array across shrinks and
// regrows it on demand.
func TestBlockReuse(t *testing.T) {
	var b Block
	b.Reset(4, 6)
	if b.Ticks() != 4 || b.Streams() != 6 || len(b.Data()) != 24 {
		t.Fatalf("shape after Reset: %d x %d, data %d", b.Ticks(), b.Streams(), len(b.Data()))
	}
	b.Row(2)[5] = -42
	if b.At(2, 5) != -42 {
		t.Fatal("Row and At disagree")
	}
	b.Reset(2, 3)
	if len(b.Data()) != 6 {
		t.Fatalf("data length %d after shrink, want 6", len(b.Data()))
	}
	b.Reset(8, 8)
	if len(b.Data()) != 64 {
		t.Fatalf("data length %d after grow, want 64", len(b.Data()))
	}
}

// TestLinksCached pins the Links() fix: the subcarrier expansion is
// computed once at construction, so a call costs exactly one allocation
// (the defensive copy) and returns equal contents every time.
func TestLinksCached(t *testing.T) {
	n := newTestNetwork(t, Config{Subcarriers: 4}, 3)
	a, b := n.Links(), n.Links()
	if len(a) != n.NumStreams() {
		t.Fatalf("links %d, want %d", len(a), n.NumStreams())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Links() not stable at %d: %v vs %v", i, a[i], b[i])
		}
	}
	a[0] = Link{TX: 99, RX: 98} // the copy must shield the cache
	if got := n.Links()[0]; got == a[0] {
		t.Fatal("mutating the returned slice corrupted the cached expansion")
	}
	allocs := testing.AllocsPerRun(20, func() { n.Links() })
	if allocs > 1 {
		t.Fatalf("Links() allocated %.1f objects per call, want at most 1 (the copy)", allocs)
	}
}

// TestDisableSentinels pins the withDefaults zero-value fix: explicit
// negatives switch an effect off where 0 selects the default.
func TestDisableSentinels(t *testing.T) {
	n := newTestNetwork(t, Config{
		QuantStepDB:         Disable,
		InterferencePerHour: Disable,
		MotionNoiseStdDB:    Disable,
		NoiseAR:             Disable,
	}, 7)
	cfg := n.Config()
	if cfg.QuantStepDB != 0 || cfg.InterferencePerHour != 0 || cfg.MotionNoiseStdDB != 0 || cfg.NoiseAR != 0 {
		t.Fatalf("sentinels not resolved to 0: %+v", cfg)
	}
	// Defaults still apply to untouched fields.
	if cfg.NoiseStdDB != DefaultConfig().NoiseStdDB {
		t.Fatalf("unrelated default lost: %+v", cfg)
	}
}

// TestDisableQuantisation checks Disable actually changes behaviour:
// unquantised output contains non-integer readings.
func TestDisableQuantisation(t *testing.T) {
	n := newTestNetwork(t, Config{QuantStepDB: Disable}, 11)
	out := make([]float64, n.NumStreams())
	nonInteger := false
	for i := 0; i < 50 && !nonInteger; i++ {
		n.Sample(nil, out)
		for _, v := range out {
			if v != float64(int(v)) {
				nonInteger = true
				break
			}
		}
	}
	if !nonInteger {
		t.Fatal("QuantStepDB: Disable still produced integer-quantised output")
	}
}

// TestDisableMotionNoise checks a walking body raises no extra noise
// once MotionNoiseStdDB is disabled (the MD module's signal vanishes).
func TestDisableMotionNoise(t *testing.T) {
	std := func(cfg Config) float64 {
		n := newTestNetwork(t, cfg, 13)
		out := make([]float64, n.NumStreams())
		walker := []Body{{Pos: geom.Point{X: 3, Y: 0.2}, Speed: 1.4}}
		var sum, sumSq float64
		const ticks = 300
		for i := 0; i < ticks; i++ {
			n.Sample(walker, out)
			sum += out[0]
			sumSq += out[0] * out[0]
		}
		mean := sum / ticks
		return sumSq/ticks - mean*mean
	}
	on := std(Config{})
	off := std(Config{MotionNoiseStdDB: Disable})
	if off >= on/2 {
		t.Fatalf("disabled motion noise variance %v not clearly below enabled %v", off, on)
	}
}
