// Package rf simulates the physical radio layer that FADEWICH's testbed
// provided with nine real WiFi sensors: for every ordered pair of sensors
// (a directed link, the paper's "stream") it produces a per-tick RSSI
// reading in dBm.
//
// The model composes four effects, each grounded in the device-free
// localisation literature the paper builds on (RADAR [2], RTI [32, 33],
// fade-level modelling [19]):
//
//  1. Large-scale path loss — the log-distance model
//     RSSI(d) = P_tx − PL(d₀) − 10·n·log₁₀(d/d₀) plus a static per-link
//     shadowing offset capturing walls/furniture, fixed for a run.
//  2. Human-body shadowing — a body near the link's line of sight
//     attenuates it. We use the elliptical (excess-path-length) model from
//     the RTI literature: attenuation decays exponentially with the extra
//     distance the path A→body→B adds over A→B. This is deterministic in
//     the body position, which is what makes departures from different
//     workstations distinguishable signatures for the RE classifier.
//  3. Motion-induced multipath perturbation — a *moving* body anywhere in
//     the room stirs the multipath field and raises the noise floor of
//     nearby links; we add zero-mean Gaussian noise whose standard
//     deviation decays with the body's distance to the link and grows with
//     its speed. This is the effect the MD module detects.
//  4. Receiver imperfections — temporally correlated (AR(1)) measurement
//     noise, occasional interference bursts, and 1 dB quantisation, so
//     quiet streams look like real radios (integer dBm wiggling by a
//     couple of dB) rather than like clean floats.
//
// The simulator is deliberately a *statistical* reproduction, not an EM
// field solver: FADEWICH's two modules consume only windowed second-order
// statistics (standard deviations, variances, entropies, autocorrelations)
// of the streams, and those are exactly the quantities this model is
// calibrated to produce.
//
// The implementation is columnar: link geometry lives in flat
// struct-of-arrays columns, per-tick body effects are computed once per
// link (once per sensor pair where bitwise-symmetric) and shared across
// subcarrier streams, and SampleBlock fills a contiguous Block buffer
// for many ticks with zero per-tick allocation. Sample remains as the
// per-tick wrapper; both paths are byte-identical and golden-tested
// (see docs/PERFORMANCE.md).
package rf

import (
	"fmt"
	"math"

	"fadewich/internal/geom"
	"fadewich/internal/rng"
	"fadewich/internal/vmath"
)

// Disable is the sentinel for Config fields whose zero value would
// otherwise be replaced by a default. Setting one of ShadowStdDB,
// NoiseStdDB, NoiseAR, BodyAttenDB, MotionNoiseStdDB,
// InterferencePerHour, InterferenceStdDB or QuantStepDB to Disable (or
// any negative value) switches that effect off explicitly — something a
// literal 0 cannot express, since 0 means "use the default". For
// QuantStepDB the receiver then reports unquantised floats; for the
// noise and interference fields the corresponding term vanishes.
const Disable = -1

// Config parameterises the propagation model. Zero fields are replaced by
// the defaults from DefaultConfig; the fields listed at Disable accept a
// negative sentinel to turn the effect off entirely.
type Config struct {
	// TxPowerDBm is the sensors' transmit power.
	TxPowerDBm float64
	// RefLossDB is the path loss at the 1 m reference distance (≈40 dB at
	// 2.4 GHz).
	RefLossDB float64
	// PathLossExp is the log-distance path loss exponent n (2.0 free
	// space; 2.5–4 cluttered indoor).
	PathLossExp float64
	// ShadowStdDB is the standard deviation of the static per-link
	// shadowing offset.
	ShadowStdDB float64
	// NoiseStdDB is the standard deviation of the stationary AR(1)
	// measurement noise on a quiet link.
	NoiseStdDB float64
	// NoiseAR is the AR(1) coefficient of the measurement noise in (0,1);
	// higher values give slower, smoother wander.
	NoiseAR float64
	// BodyAttenDB is the maximum attenuation a single body inflicts when
	// standing exactly on the line of sight.
	BodyAttenDB float64
	// BodyEllipseM is the excess-path-length scale (metres) of the
	// elliptical shadowing model; larger values widen the sensitive
	// region around each link.
	BodyEllipseM float64
	// MotionNoiseStdDB is the noise standard deviation a body moving at
	// 1 m/s induces on a link it stands on; it decays with distance from
	// the link and scales with speed.
	MotionNoiseStdDB float64
	// MotionRangeM is the exponential decay range of the motion-induced
	// perturbation with the body's distance from the link segment.
	MotionRangeM float64
	// QuantStepDB is the receiver's RSSI quantisation step (1 dB on
	// commodity hardware).
	QuantStepDB float64
	// MinRSSIDBm and MaxRSSIDBm clamp the reported value to the
	// receiver's dynamic range.
	MinRSSIDBm, MaxRSSIDBm float64
	// InterferencePerHour is the expected number of external interference
	// bursts (e.g. a microwave oven, co-channel WiFi traffic) per hour.
	// Bursts raise noise on a random subset of links for a few seconds
	// and are the main source of MD false positives besides in-room
	// fidgeting.
	InterferencePerHour float64
	// InterferenceStdDB is the extra noise std during a burst.
	InterferenceStdDB float64
	// InterferenceMeanSec is the mean burst duration in seconds.
	InterferenceMeanSec float64
	// Subcarriers emulates CSI-grade measurements: each link reports this
	// many sub-streams with independent fast noise but shared body
	// shadowing. 0 or 1 yields plain RSSI. This implements the paper's
	// future-work item on channel state information.
	Subcarriers int
	// ModelVersion selects the sampling implementation. Version 1 (the
	// default) is the exact historical scalar path whose byte stream the
	// golden hashes pin. Version 2 restructures the hot loops into
	// vmath column passes: the RNG draw sequence is preserved bit for
	// bit, but the body-effect geometry uses raw sqrt(x²+y²) distances
	// and shares the motion-noise column across the two directions of a
	// sensor pair, so outputs may differ from version 1 at the last few
	// ulps (bounded well below the 1e-9 dB the equivalence test
	// enforces, and almost always rounded away by quantisation).
	// Version 2 has its own golden hashes.
	ModelVersion int
}

// DefaultConfig returns the calibrated parameter set used throughout the
// reproduction. The values land quiet links at an RSSI jitter of ≈0.5–1 dB
// and a body crossing a link at a 5–8 dB dip, matching the magnitudes
// reported in the RTI literature.
func DefaultConfig() Config {
	return Config{
		TxPowerDBm:          4,
		RefLossDB:           40,
		PathLossExp:         3.0,
		ShadowStdDB:         2.0,
		NoiseStdDB:          0.7,
		NoiseAR:             0.6,
		BodyAttenDB:         7.0,
		BodyEllipseM:        0.35,
		MotionNoiseStdDB:    3.6,
		MotionRangeM:        0.7,
		QuantStepDB:         1.0,
		MinRSSIDBm:          -95,
		MaxRSSIDBm:          -20,
		InterferencePerHour: 0.4,
		InterferenceStdDB:   2.2,
		InterferenceMeanSec: 1.2,
		Subcarriers:         1,
	}
}

// defaultOrDisable resolves one sentinel-aware field: 0 selects the
// default, a negative value (the Disable sentinel) resolves to an
// effective 0 that switches the effect off.
func defaultOrDisable(v, def float64) float64 {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return def
	default:
		return v
	}
}

// withDefaults fills zero fields from DefaultConfig and resolves Disable
// sentinels on the fields that accept them.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.TxPowerDBm == 0 {
		c.TxPowerDBm = d.TxPowerDBm
	}
	if c.RefLossDB == 0 {
		c.RefLossDB = d.RefLossDB
	}
	if c.PathLossExp == 0 {
		c.PathLossExp = d.PathLossExp
	}
	c.ShadowStdDB = defaultOrDisable(c.ShadowStdDB, d.ShadowStdDB)
	c.NoiseStdDB = defaultOrDisable(c.NoiseStdDB, d.NoiseStdDB)
	c.NoiseAR = defaultOrDisable(c.NoiseAR, d.NoiseAR)
	c.BodyAttenDB = defaultOrDisable(c.BodyAttenDB, d.BodyAttenDB)
	if c.BodyEllipseM == 0 {
		c.BodyEllipseM = d.BodyEllipseM
	}
	c.MotionNoiseStdDB = defaultOrDisable(c.MotionNoiseStdDB, d.MotionNoiseStdDB)
	if c.MotionRangeM == 0 {
		c.MotionRangeM = d.MotionRangeM
	}
	c.QuantStepDB = defaultOrDisable(c.QuantStepDB, d.QuantStepDB)
	if c.MinRSSIDBm == 0 {
		c.MinRSSIDBm = d.MinRSSIDBm
	}
	if c.MaxRSSIDBm == 0 {
		c.MaxRSSIDBm = d.MaxRSSIDBm
	}
	c.InterferencePerHour = defaultOrDisable(c.InterferencePerHour, d.InterferencePerHour)
	c.InterferenceStdDB = defaultOrDisable(c.InterferenceStdDB, d.InterferenceStdDB)
	if c.InterferenceMeanSec == 0 {
		c.InterferenceMeanSec = d.InterferenceMeanSec
	}
	if c.Subcarriers < 1 {
		c.Subcarriers = 1
	}
	if c.ModelVersion == 0 {
		c.ModelVersion = 1
	}
	return c
}

// Body is a human body on the floor plan as seen by the radio layer.
type Body struct {
	Pos geom.Point
	// Speed is the body's current speed in m/s; 0 for a perfectly still
	// body, small (<0.1) for seated fidgeting, ≈1.4 when walking.
	Speed float64
}

// Link is a directed sensor pair; stream k carries packets from sensor TX
// to sensor RX.
type Link struct {
	TX, RX int
}

// String renders the link in the paper's "di-dj" notation (1-based).
func (l Link) String() string { return fmt.Sprintf("d%d-d%d", l.TX+1, l.RX+1) }

// Network evaluates the propagation model for a fixed sensor deployment.
// It is not safe for concurrent use; the simulator drives it from a single
// goroutine.
//
// The hot state is laid out struct-of-arrays: link geometry is
// precomputed once at construction into flat per-link columns, and the
// per-tick body effects (shadowing attenuation, motion-noise standard
// deviation) are computed once per directed link into reusable scratch
// columns and shared across that link's subcarrier streams. The
// per-stream loop then touches only contiguous float64 slices.
type Network struct {
	cfg     Config
	sensors []geom.Point

	// Per-directed-link geometry columns (index: link, not stream),
	// precomputed at construction. d = B − A is the segment direction;
	// l2 = d·d its squared length; the values replicate bit for bit what
	// geom.Segment.DistToPoint and ExcessPathLength would recompute.
	linkAX, linkAY []float64
	linkBX, linkBY []float64
	linkDX, linkDY []float64
	linkL2         []float64
	linkLen        []float64
	// pairRev[li] is the directed link with the same sensor pair and the
	// opposite direction. Body shadowing is bitwise-symmetric in the
	// direction (IEEE addition commutes and Hypot is sign-symmetric), so
	// each pair computes it once and the reverse link copies it.
	pairRev []int

	// Per-tick scratch columns, one value per directed link: the body
	// shadowing attenuation and motion-noise std of the current tick
	// (the per-tick body→link cache). Reused by every tick with zero
	// allocation.
	attenScratch  []float64
	motionScratch []float64

	// Pair-canonical geometry columns for the ModelVersion 2 path: one
	// entry per undirected sensor pair (the direction with the lower
	// link index is canonical). Both body effects are symmetric in the
	// link direction, so version 2 computes each once per pair and
	// expands through pairSlot, which maps every directed link to its
	// pair's column index.
	pairAX, pairAY []float64
	pairBX, pairBY []float64
	pairDX, pairDY []float64
	pairL2         []float64
	pairLen        []float64
	pairSlot       []int

	// Version 2 per-tick scratch: excess-path/distance column, per-pair
	// attenuation and motion-variance accumulators, and the tick's
	// batched Gaussian draws.
	pairCol   []float64
	pairAtten []float64
	pairVar   []float64
	zScratch  []float64

	// invQuant is 1/QuantStepDB when quantisation is enabled, so the
	// per-sample quantisation divides once per network, not per sample.
	invQuant float64

	streamLink  []int  // stream index → directed link index
	streamLinks []Link // Links() expansion, computed once
	base        []float64
	ar          []float64
	src         *rng.Source

	// Interference burst state: remaining ticks and per-stream
	// participation mask for the current burst.
	burstTicks int
	burstMask  []bool

	dt float64 // tick duration in seconds, needed for burst scheduling
}

// NewNetwork builds a network over the given sensor positions. dt is the
// simulation tick in seconds. It returns an error when fewer than two
// sensors are supplied, since no link exists then.
func NewNetwork(cfg Config, sensors []geom.Point, dt float64, src *rng.Source) (*Network, error) {
	if len(sensors) < 2 {
		return nil, fmt.Errorf("rf: need at least 2 sensors, got %d", len(sensors))
	}
	if dt <= 0 {
		return nil, fmt.Errorf("rf: tick duration must be positive, got %v", dt)
	}
	cfg = cfg.withDefaults()
	if cfg.ModelVersion != 1 && cfg.ModelVersion != 2 {
		return nil, fmt.Errorf("rf: unknown ModelVersion %d (supported: 1, 2)", cfg.ModelVersion)
	}
	m := len(sensors)
	pts := make([]geom.Point, m)
	copy(pts, sensors)

	var links []Link
	for tx := 0; tx < m; tx++ {
		for rx := 0; rx < m; rx++ {
			if tx != rx {
				links = append(links, Link{TX: tx, RX: rx})
			}
		}
	}
	nl := len(links)
	streams := nl * cfg.Subcarriers
	n := &Network{
		cfg:           cfg,
		sensors:       pts,
		linkAX:        make([]float64, nl),
		linkAY:        make([]float64, nl),
		linkBX:        make([]float64, nl),
		linkBY:        make([]float64, nl),
		linkDX:        make([]float64, nl),
		linkDY:        make([]float64, nl),
		linkL2:        make([]float64, nl),
		linkLen:       make([]float64, nl),
		pairRev:       make([]int, nl),
		attenScratch:  make([]float64, nl),
		motionScratch: make([]float64, nl),
		streamLink:    make([]int, 0, streams),
		streamLinks:   make([]Link, 0, streams),
		base:          make([]float64, 0, streams),
		ar:            make([]float64, streams),
		src:           src,
		burstMask:     make([]bool, streams),
		dt:            dt,
	}
	// linkIndex maps a directed pair to its position in the tx-major,
	// rx-ascending link order built above.
	linkIndex := func(tx, rx int) int {
		i := tx*(m-1) + rx
		if rx > tx {
			i--
		}
		return i
	}
	for li, l := range links {
		seg := geom.Segment{A: pts[l.TX], B: pts[l.RX]}
		n.linkAX[li], n.linkAY[li] = seg.A.X, seg.A.Y
		n.linkBX[li], n.linkBY[li] = seg.B.X, seg.B.Y
		dvec := seg.B.Sub(seg.A)
		n.linkDX[li], n.linkDY[li] = dvec.X, dvec.Y
		n.linkL2[li] = dvec.Dot(dvec)
		n.linkLen[li] = seg.Length()
		n.pairRev[li] = linkIndex(l.RX, l.TX)

		d := n.linkLen[li]
		if d < 0.1 {
			d = 0.1 // sensors essentially co-located; avoid log blow-up
		}
		pl := cfg.RefLossDB + 10*cfg.PathLossExp*math.Log10(d)
		for s := 0; s < cfg.Subcarriers; s++ {
			shadow := src.Normal(0, cfg.ShadowStdDB)
			n.streamLink = append(n.streamLink, li)
			n.streamLinks = append(n.streamLinks, l)
			n.base = append(n.base, cfg.TxPowerDBm-pl+shadow)
		}
	}
	if cfg.QuantStepDB > 0 {
		n.invQuant = 1 / cfg.QuantStepDB
	}
	if cfg.ModelVersion >= 2 {
		np := nl / 2
		n.pairAX = make([]float64, 0, np)
		n.pairAY = make([]float64, 0, np)
		n.pairBX = make([]float64, 0, np)
		n.pairBY = make([]float64, 0, np)
		n.pairDX = make([]float64, 0, np)
		n.pairDY = make([]float64, 0, np)
		n.pairL2 = make([]float64, 0, np)
		n.pairLen = make([]float64, 0, np)
		n.pairSlot = make([]int, nl)
		for li := range links {
			if rev := n.pairRev[li]; li < rev {
				slot := len(n.pairLen)
				n.pairSlot[li], n.pairSlot[rev] = slot, slot
				n.pairAX = append(n.pairAX, n.linkAX[li])
				n.pairAY = append(n.pairAY, n.linkAY[li])
				n.pairBX = append(n.pairBX, n.linkBX[li])
				n.pairBY = append(n.pairBY, n.linkBY[li])
				n.pairDX = append(n.pairDX, n.linkDX[li])
				n.pairDY = append(n.pairDY, n.linkDY[li])
				n.pairL2 = append(n.pairL2, n.linkL2[li])
				n.pairLen = append(n.pairLen, n.linkLen[li])
			}
		}
		n.pairCol = make([]float64, np)
		n.pairAtten = make([]float64, np)
		n.pairVar = make([]float64, np)
		n.zScratch = make([]float64, 3*streams)
		src.ReserveNormals(3 * streams)
	}
	return n, nil
}

// NumStreams returns the number of RSSI streams, m·(m−1)·Subcarriers.
func (n *Network) NumStreams() int { return len(n.base) }

// Links returns the directed links in stream order. With Subcarriers > 1
// each link repeats Subcarriers times consecutively. The expansion is
// computed once at construction; each call returns a fresh copy.
func (n *Network) Links() []Link {
	out := make([]Link, len(n.streamLinks))
	copy(out, n.streamLinks)
	return out
}

// Sensors returns a copy of the sensor positions.
func (n *Network) Sensors() []geom.Point {
	out := make([]geom.Point, len(n.sensors))
	copy(out, n.sensors)
	return out
}

// Config returns the effective (defaults-filled) configuration.
func (n *Network) Config() Config { return n.cfg }

// bodyAttenuation returns the deterministic shadowing loss (dB) the bodies
// inflict on the given link segment. It is the scalar reference
// implementation of the model; the hot path computes the same quantity
// per link in tickEffects.
func (n *Network) bodyAttenuation(seg geom.Segment, bodies []Body) float64 {
	var atten float64
	for i := range bodies {
		excess := seg.ExcessPathLength(bodies[i].Pos)
		atten += n.cfg.BodyAttenDB * math.Exp(-excess/n.cfg.BodyEllipseM)
	}
	// Two bodies on the same link shadow it more, but the effect
	// saturates; cap at 1.5× the single-body maximum.
	limit := 1.5 * n.cfg.BodyAttenDB
	if atten > limit {
		atten = limit
	}
	return atten
}

// motionNoiseStd returns the standard deviation of the motion-induced
// perturbation on the link for the given bodies. Like bodyAttenuation it
// is the scalar reference implementation mirrored by tickEffects.
func (n *Network) motionNoiseStd(seg geom.Segment, bodies []Body) float64 {
	var variance float64
	for i := range bodies {
		if bodies[i].Speed <= 0 {
			continue
		}
		dist, _ := seg.DistToPoint(bodies[i].Pos)
		sd := n.cfg.MotionNoiseStdDB * bodies[i].Speed * math.Exp(-dist/n.cfg.MotionRangeM)
		variance += sd * sd
	}
	return math.Sqrt(variance)
}

// stepBursts advances the interference burst process by one tick and
// reports whether a burst is active.
func (n *Network) stepBursts() bool {
	if n.burstTicks > 0 {
		n.burstTicks--
		return true
	}
	// Poisson arrivals: probability of a burst starting this tick.
	p := n.cfg.InterferencePerHour * n.dt / 3600
	if !n.src.Bool(p) {
		return false
	}
	dur := n.src.Exponential(n.cfg.InterferenceMeanSec)
	n.burstTicks = int(dur / n.dt)
	if n.burstTicks < 1 {
		n.burstTicks = 1
	}
	// Each burst hits a random ~third of the streams (co-channel
	// interference is frequency- and position-selective).
	for i := range n.burstMask {
		n.burstMask[i] = n.src.Bool(1.0 / 3.0)
	}
	return true
}

// tickEffects fills the per-link scratch columns for one tick: the
// shadowing attenuation and motion-noise standard deviation every
// directed link sees from the current body set. This is the per-tick
// body→link cache — each value is computed once per link (once per
// *pair* for the attenuation, which is bitwise-symmetric in the link
// direction) and shared across the link's subcarrier streams.
//
// The arithmetic replicates bodyAttenuation and motionNoiseStd
// operation for operation, so the outputs are bit-identical to the
// per-stream scalar path: sums accumulate in body order, the
// closest-point projection evaluates exactly like
// geom.Segment.DistToPoint, and the saturation cap applies after the
// sum.
func (n *Network) tickEffects(bodies []Body) {
	atten, motion := n.attenScratch, n.motionScratch
	if len(bodies) == 0 {
		for li := range atten {
			atten[li] = 0
			motion[li] = 0
		}
		return
	}
	attenDB, ellipse := n.cfg.BodyAttenDB, n.cfg.BodyEllipseM
	motionStd, motionRange := n.cfg.MotionNoiseStdDB, n.cfg.MotionRangeM
	limit := 1.5 * attenDB
	for li := range atten {
		rev := n.pairRev[li]
		shareAtten := rev < li // reverse direction already computed it
		ax, ay := n.linkAX[li], n.linkAY[li]
		bx, by := n.linkBX[li], n.linkBY[li]
		dx, dy := n.linkDX[li], n.linkDY[li]
		l2, length := n.linkL2[li], n.linkLen[li]

		var attenSum, variance float64
		for i := range bodies {
			p := bodies[i].Pos
			if !shareAtten {
				// Excess path length of A→body→B over A→B, exactly as
				// geom.Segment.ExcessPathLength computes it.
				excess := math.Hypot(ax-p.X, ay-p.Y) + math.Hypot(p.X-bx, p.Y-by) - length
				attenSum += attenDB * math.Exp(-excess/ellipse)
			}
			if bodies[i].Speed > 0 {
				// Distance to the segment, exactly as
				// geom.Segment.DistToPoint computes it.
				var dist float64
				if l2 == 0 {
					dist = math.Hypot(ax-p.X, ay-p.Y)
				} else {
					t := ((p.X-ax)*dx + (p.Y-ay)*dy) / l2
					t = math.Max(0, math.Min(1, t))
					dist = math.Hypot(ax+dx*t-p.X, ay+dy*t-p.Y)
				}
				sd := motionStd * bodies[i].Speed * math.Exp(-dist/motionRange)
				variance += sd * sd
			}
		}
		if shareAtten {
			atten[li] = atten[rev]
		} else {
			// Two bodies on the same link shadow it more, but the effect
			// saturates; cap at 1.5× the single-body maximum.
			if attenSum > limit {
				attenSum = limit
			}
			atten[li] = attenSum
		}
		motion[li] = math.Sqrt(variance)
	}
}

// sampleTick advances the model one tick, writing one RSSI value per
// stream into out (length NumStreams). The RNG draw order is identical
// to the historical per-stream scalar loop: the burst process first,
// then per stream the AR innovation, the conditional motion draw, and
// the conditional burst draw. ModelVersion 2 routes to the vectorised
// implementation, which preserves that draw order exactly.
func (n *Network) sampleTick(bodies []Body, out []float64) {
	if n.cfg.ModelVersion >= 2 {
		n.sampleTickVec(bodies, out)
		return
	}
	burst := n.stepBursts()
	n.tickEffects(bodies)

	arCoef := n.cfg.NoiseAR
	innovation := n.cfg.NoiseStdDB * math.Sqrt(1-arCoef*arCoef)
	quant, invQuant := n.cfg.QuantStepDB, n.invQuant
	minR, maxR := n.cfg.MinRSSIDBm, n.cfg.MaxRSSIDBm
	atten, motion := n.attenScratch, n.motionScratch
	streamLink, ar, base := n.streamLink, n.ar, n.base

	for k := range base {
		li := streamLink[k]
		rssi := base[k] - atten[li]

		// Stationary correlated measurement noise.
		ar[k] = arCoef*ar[k] + n.src.Normal(0, innovation)
		rssi += ar[k]

		// Motion-induced perturbation (white, per-tick).
		if sd := motion[li]; sd > 0 {
			rssi += n.src.Normal(0, sd)
		}

		// Interference burst.
		if burst && n.burstMask[k] {
			rssi += n.src.Normal(0, n.cfg.InterferenceStdDB)
		}

		// Receiver quantisation (with a fast path for the 1 dB default,
		// where scaling by the step is an exact no-op) and clamping.
		// quant == 0 means quantisation was explicitly disabled
		// (Config.QuantStepDB = Disable); other steps multiply by the
		// precomputed reciprocal instead of dividing per sample.
		switch {
		case quant == 1:
			rssi = math.Round(rssi)
		case quant > 0:
			rssi = math.Round(rssi*invQuant) * quant
		}
		if rssi < minR {
			rssi = minR
		}
		if rssi > maxR {
			rssi = maxR
		}
		out[k] = rssi
	}
}

// tickEffectsVec is the ModelVersion 2 body-effect pass: instead of
// walking links scalar-wise with an inner body loop, it walks bodies
// and evaluates each effect as vmath column passes over the
// pair-canonical geometry, then expands per-pair results to the
// directed-link scratch through pairSlot. Accumulation order matches
// tickEffects (body order, cap after the sum), but distances use raw
// sqrt(x²+y²) and the motion column is shared across the two directions
// of a pair, so values may differ from version 1 in the last ulps.
func (n *Network) tickEffectsVec(bodies []Body) {
	attenC, varC := n.pairAtten, n.pairVar
	for i := range attenC {
		attenC[i] = 0
		varC[i] = 0
	}
	if len(bodies) > 0 {
		attenDB, ellipse := n.cfg.BodyAttenDB, n.cfg.BodyEllipseM
		motionStd, motionRange := n.cfg.MotionNoiseStdDB, n.cfg.MotionRangeM
		col := n.pairCol
		for i := range bodies {
			p := bodies[i].Pos
			vmath.ExcessPathSlice(col, n.pairAX, n.pairAY, n.pairBX, n.pairBY, n.pairLen, p.X, p.Y)
			vmath.ScaleSlice(col, -1/ellipse)
			vmath.ExpSlice(col, col)
			vmath.AxpySlice(attenC, col, attenDB)
			if bodies[i].Speed > 0 {
				vmath.DistToSegSlice(col, n.pairAX, n.pairAY, n.pairDX, n.pairDY, n.pairL2, p.X, p.Y)
				vmath.ScaleSlice(col, -1/motionRange)
				vmath.ExpSlice(col, col)
				vmath.AccumSqScaledSlice(varC, col, motionStd*bodies[i].Speed)
			}
		}
		vmath.ClampMaxSlice(attenC, 1.5*attenDB)
		vmath.SqrtSlice(varC)
	}
	atten, motion := n.attenScratch, n.motionScratch
	for li, slot := range n.pairSlot {
		atten[li] = attenC[slot]
		motion[li] = varC[slot]
	}
}

// sampleTickVec is the ModelVersion 2 tick: the burst process and the
// per-stream draw *sequence* are identical to the scalar path (one
// FillNormals batch replaces the per-stream Normal calls bit for bit),
// the noise composition runs as one fused pass over the stream columns,
// and quantisation + clamping run as a single column pass over the
// output row.
func (n *Network) sampleTickVec(bodies []Body, out []float64) {
	burst := n.stepBursts()
	n.tickEffectsVec(bodies)

	arCoef := n.cfg.NoiseAR
	innovation := n.cfg.NoiseStdDB * math.Sqrt(1-arCoef*arCoef)
	istd := n.cfg.InterferenceStdDB
	atten, motion := n.attenScratch, n.motionScratch
	ar, base := n.ar, n.base
	burstMask := n.burstMask

	// Count this tick's Gaussian draws, then fill them in one batch with
	// the exact uniform consumption of per-stream NormFloat64 calls. The
	// motion condition is per link (each link's subcarrier streams share
	// the motion column entry), so the count walks links, not streams.
	subc := n.cfg.Subcarriers
	need := len(base)
	for li := range motion {
		if motion[li] > 0 {
			need += subc
		}
	}
	if burst {
		for k := range burstMask {
			if burstMask[k] {
				need++
			}
		}
	}
	if cap(n.zScratch) < need {
		n.zScratch = make([]float64, need)
	}
	z := n.zScratch[:need]
	n.src.FillNormals(z)

	// Fused noise pass, link-outer so the per-link attenuation and
	// motion std load once per subcarrier group, with the moving/static
	// cases split into branch-free inner loops on non-burst ticks (the
	// overwhelmingly common case). Stream order (and so z consumption
	// order) is unchanged: streams are link-major contiguous.
	pos, k := 0, 0
	for li := range motion {
		att, sd := atten[li], motion[li]
		switch {
		case burst:
			for c := 0; c < subc; c++ {
				a := arCoef*ar[k] + innovation*z[pos]
				pos++
				ar[k] = a
				rssi := base[k] - att + a
				if sd > 0 {
					rssi += sd * z[pos]
					pos++
				}
				if burstMask[k] {
					rssi += istd * z[pos]
					pos++
				}
				out[k] = rssi
				k++
			}
		case sd > 0:
			vmath.ARMotionNoiseSlice(out[k:k+subc], ar[k:k+subc], base[k:k+subc], z[pos:pos+2*subc],
				att, arCoef, innovation, sd)
			pos += 2 * subc
			k += subc
		default:
			vmath.ARNoiseSlice(out[k:k+subc], ar[k:k+subc], base[k:k+subc], z[pos:pos+subc],
				att, arCoef, innovation)
			pos += subc
			k += subc
		}
	}
	vmath.RoundQuantSlice(out, n.cfg.QuantStepDB, n.invQuant, n.cfg.MinRSSIDBm, n.cfg.MaxRSSIDBm)
}

// Sample advances the model one tick and writes the RSSI of every stream
// into out, which must have length NumStreams. The same bodies slice may
// be reused across calls. For many ticks at once, SampleBlock amortises
// the per-tick overhead into a columnar buffer.
func (n *Network) Sample(bodies []Body, out []float64) {
	if len(out) != n.NumStreams() {
		panic(fmt.Sprintf("rf: Sample output length %d, want %d", len(out), n.NumStreams()))
	}
	n.sampleTick(bodies, out)
}

// SampleBlock advances the model len(bodies) ticks, with bodies[t]
// holding the body set of tick t, and fills out with one row per tick.
// The output is bit-identical to len(bodies) consecutive Sample calls —
// the RNG draw order is preserved exactly — but the inner loops run over
// the block's contiguous columnar buffer with zero per-tick allocation.
func (n *Network) SampleBlock(bodies [][]Body, out *Block) {
	out.Reset(len(bodies), n.NumStreams())
	for t := range bodies {
		n.sampleTick(bodies[t], out.Row(t))
	}
}
