// Package rf simulates the physical radio layer that FADEWICH's testbed
// provided with nine real WiFi sensors: for every ordered pair of sensors
// (a directed link, the paper's "stream") it produces a per-tick RSSI
// reading in dBm.
//
// The model composes four effects, each grounded in the device-free
// localisation literature the paper builds on (RADAR [2], RTI [32, 33],
// fade-level modelling [19]):
//
//  1. Large-scale path loss — the log-distance model
//     RSSI(d) = P_tx − PL(d₀) − 10·n·log₁₀(d/d₀) plus a static per-link
//     shadowing offset capturing walls/furniture, fixed for a run.
//  2. Human-body shadowing — a body near the link's line of sight
//     attenuates it. We use the elliptical (excess-path-length) model from
//     the RTI literature: attenuation decays exponentially with the extra
//     distance the path A→body→B adds over A→B. This is deterministic in
//     the body position, which is what makes departures from different
//     workstations distinguishable signatures for the RE classifier.
//  3. Motion-induced multipath perturbation — a *moving* body anywhere in
//     the room stirs the multipath field and raises the noise floor of
//     nearby links; we add zero-mean Gaussian noise whose standard
//     deviation decays with the body's distance to the link and grows with
//     its speed. This is the effect the MD module detects.
//  4. Receiver imperfections — temporally correlated (AR(1)) measurement
//     noise, occasional interference bursts, and 1 dB quantisation, so
//     quiet streams look like real radios (integer dBm wiggling by a
//     couple of dB) rather than like clean floats.
//
// The simulator is deliberately a *statistical* reproduction, not an EM
// field solver: FADEWICH's two modules consume only windowed second-order
// statistics (standard deviations, variances, entropies, autocorrelations)
// of the streams, and those are exactly the quantities this model is
// calibrated to produce.
package rf

import (
	"fmt"
	"math"

	"fadewich/internal/geom"
	"fadewich/internal/rng"
)

// Config parameterises the propagation model. Zero fields are replaced by
// the defaults from DefaultConfig.
type Config struct {
	// TxPowerDBm is the sensors' transmit power.
	TxPowerDBm float64
	// RefLossDB is the path loss at the 1 m reference distance (≈40 dB at
	// 2.4 GHz).
	RefLossDB float64
	// PathLossExp is the log-distance path loss exponent n (2.0 free
	// space; 2.5–4 cluttered indoor).
	PathLossExp float64
	// ShadowStdDB is the standard deviation of the static per-link
	// shadowing offset.
	ShadowStdDB float64
	// NoiseStdDB is the standard deviation of the stationary AR(1)
	// measurement noise on a quiet link.
	NoiseStdDB float64
	// NoiseAR is the AR(1) coefficient of the measurement noise in (0,1);
	// higher values give slower, smoother wander.
	NoiseAR float64
	// BodyAttenDB is the maximum attenuation a single body inflicts when
	// standing exactly on the line of sight.
	BodyAttenDB float64
	// BodyEllipseM is the excess-path-length scale (metres) of the
	// elliptical shadowing model; larger values widen the sensitive
	// region around each link.
	BodyEllipseM float64
	// MotionNoiseStdDB is the noise standard deviation a body moving at
	// 1 m/s induces on a link it stands on; it decays with distance from
	// the link and scales with speed.
	MotionNoiseStdDB float64
	// MotionRangeM is the exponential decay range of the motion-induced
	// perturbation with the body's distance from the link segment.
	MotionRangeM float64
	// QuantStepDB is the receiver's RSSI quantisation step (1 dB on
	// commodity hardware).
	QuantStepDB float64
	// MinRSSIDBm and MaxRSSIDBm clamp the reported value to the
	// receiver's dynamic range.
	MinRSSIDBm, MaxRSSIDBm float64
	// InterferencePerHour is the expected number of external interference
	// bursts (e.g. a microwave oven, co-channel WiFi traffic) per hour.
	// Bursts raise noise on a random subset of links for a few seconds
	// and are the main source of MD false positives besides in-room
	// fidgeting.
	InterferencePerHour float64
	// InterferenceStdDB is the extra noise std during a burst.
	InterferenceStdDB float64
	// InterferenceMeanSec is the mean burst duration in seconds.
	InterferenceMeanSec float64
	// Subcarriers emulates CSI-grade measurements: each link reports this
	// many sub-streams with independent fast noise but shared body
	// shadowing. 0 or 1 yields plain RSSI. This implements the paper's
	// future-work item on channel state information.
	Subcarriers int
}

// DefaultConfig returns the calibrated parameter set used throughout the
// reproduction. The values land quiet links at an RSSI jitter of ≈0.5–1 dB
// and a body crossing a link at a 5–8 dB dip, matching the magnitudes
// reported in the RTI literature.
func DefaultConfig() Config {
	return Config{
		TxPowerDBm:          4,
		RefLossDB:           40,
		PathLossExp:         3.0,
		ShadowStdDB:         2.0,
		NoiseStdDB:          0.7,
		NoiseAR:             0.6,
		BodyAttenDB:         7.0,
		BodyEllipseM:        0.35,
		MotionNoiseStdDB:    3.6,
		MotionRangeM:        0.7,
		QuantStepDB:         1.0,
		MinRSSIDBm:          -95,
		MaxRSSIDBm:          -20,
		InterferencePerHour: 0.4,
		InterferenceStdDB:   2.2,
		InterferenceMeanSec: 1.2,
		Subcarriers:         1,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.TxPowerDBm == 0 {
		c.TxPowerDBm = d.TxPowerDBm
	}
	if c.RefLossDB == 0 {
		c.RefLossDB = d.RefLossDB
	}
	if c.PathLossExp == 0 {
		c.PathLossExp = d.PathLossExp
	}
	if c.ShadowStdDB == 0 {
		c.ShadowStdDB = d.ShadowStdDB
	}
	if c.NoiseStdDB == 0 {
		c.NoiseStdDB = d.NoiseStdDB
	}
	if c.NoiseAR == 0 {
		c.NoiseAR = d.NoiseAR
	}
	if c.BodyAttenDB == 0 {
		c.BodyAttenDB = d.BodyAttenDB
	}
	if c.BodyEllipseM == 0 {
		c.BodyEllipseM = d.BodyEllipseM
	}
	if c.MotionNoiseStdDB == 0 {
		c.MotionNoiseStdDB = d.MotionNoiseStdDB
	}
	if c.MotionRangeM == 0 {
		c.MotionRangeM = d.MotionRangeM
	}
	if c.QuantStepDB == 0 {
		c.QuantStepDB = d.QuantStepDB
	}
	if c.MinRSSIDBm == 0 {
		c.MinRSSIDBm = d.MinRSSIDBm
	}
	if c.MaxRSSIDBm == 0 {
		c.MaxRSSIDBm = d.MaxRSSIDBm
	}
	if c.InterferencePerHour == 0 {
		c.InterferencePerHour = d.InterferencePerHour
	}
	if c.InterferenceStdDB == 0 {
		c.InterferenceStdDB = d.InterferenceStdDB
	}
	if c.InterferenceMeanSec == 0 {
		c.InterferenceMeanSec = d.InterferenceMeanSec
	}
	if c.Subcarriers < 1 {
		c.Subcarriers = 1
	}
	return c
}

// Body is a human body on the floor plan as seen by the radio layer.
type Body struct {
	Pos geom.Point
	// Speed is the body's current speed in m/s; 0 for a perfectly still
	// body, small (<0.1) for seated fidgeting, ≈1.4 when walking.
	Speed float64
}

// Link is a directed sensor pair; stream k carries packets from sensor TX
// to sensor RX.
type Link struct {
	TX, RX int
}

// String renders the link in the paper's "di-dj" notation (1-based).
func (l Link) String() string { return fmt.Sprintf("d%d-d%d", l.TX+1, l.RX+1) }

// Network evaluates the propagation model for a fixed sensor deployment.
// It is not safe for concurrent use; the simulator drives it from a single
// goroutine.
type Network struct {
	cfg     Config
	sensors []geom.Point
	links   []Link
	segs    []geom.Segment // per-link TX→RX segment
	base    []float64      // per-stream static RSSI (path loss + shadowing)
	ar      []float64      // per-stream AR(1) noise state
	src     *rng.Source

	// Interference burst state: remaining ticks and per-stream
	// participation mask for the current burst.
	burstTicks int
	burstMask  []bool

	dt float64 // tick duration in seconds, needed for burst scheduling
}

// NewNetwork builds a network over the given sensor positions. dt is the
// simulation tick in seconds. It returns an error when fewer than two
// sensors are supplied, since no link exists then.
func NewNetwork(cfg Config, sensors []geom.Point, dt float64, src *rng.Source) (*Network, error) {
	if len(sensors) < 2 {
		return nil, fmt.Errorf("rf: need at least 2 sensors, got %d", len(sensors))
	}
	if dt <= 0 {
		return nil, fmt.Errorf("rf: tick duration must be positive, got %v", dt)
	}
	cfg = cfg.withDefaults()
	m := len(sensors)
	pts := make([]geom.Point, m)
	copy(pts, sensors)

	var links []Link
	for tx := 0; tx < m; tx++ {
		for rx := 0; rx < m; rx++ {
			if tx != rx {
				links = append(links, Link{TX: tx, RX: rx})
			}
		}
	}
	n := &Network{
		cfg:       cfg,
		sensors:   pts,
		links:     links,
		segs:      make([]geom.Segment, 0, len(links)*cfg.Subcarriers),
		base:      make([]float64, 0, len(links)*cfg.Subcarriers),
		ar:        make([]float64, len(links)*cfg.Subcarriers),
		src:       src,
		burstMask: make([]bool, len(links)*cfg.Subcarriers),
		dt:        dt,
	}
	for _, l := range links {
		seg := geom.Segment{A: pts[l.TX], B: pts[l.RX]}
		d := seg.Length()
		if d < 0.1 {
			d = 0.1 // sensors essentially co-located; avoid log blow-up
		}
		pl := cfg.RefLossDB + 10*cfg.PathLossExp*math.Log10(d)
		for s := 0; s < cfg.Subcarriers; s++ {
			shadow := src.Normal(0, cfg.ShadowStdDB)
			n.segs = append(n.segs, seg)
			n.base = append(n.base, cfg.TxPowerDBm-pl+shadow)
		}
	}
	return n, nil
}

// NumStreams returns the number of RSSI streams, m·(m−1)·Subcarriers.
func (n *Network) NumStreams() int { return len(n.base) }

// Links returns the directed links in stream order. With Subcarriers > 1
// each link repeats Subcarriers times consecutively.
func (n *Network) Links() []Link {
	out := make([]Link, 0, n.NumStreams())
	for _, l := range n.links {
		for s := 0; s < n.cfg.Subcarriers; s++ {
			out = append(out, l)
		}
	}
	return out
}

// Sensors returns a copy of the sensor positions.
func (n *Network) Sensors() []geom.Point {
	out := make([]geom.Point, len(n.sensors))
	copy(out, n.sensors)
	return out
}

// Config returns the effective (defaults-filled) configuration.
func (n *Network) Config() Config { return n.cfg }

// bodyAttenuation returns the deterministic shadowing loss (dB) the bodies
// inflict on the given link segment.
func (n *Network) bodyAttenuation(seg geom.Segment, bodies []Body) float64 {
	var atten float64
	for i := range bodies {
		excess := seg.ExcessPathLength(bodies[i].Pos)
		atten += n.cfg.BodyAttenDB * math.Exp(-excess/n.cfg.BodyEllipseM)
	}
	// Two bodies on the same link shadow it more, but the effect
	// saturates; cap at 1.5× the single-body maximum.
	limit := 1.5 * n.cfg.BodyAttenDB
	if atten > limit {
		atten = limit
	}
	return atten
}

// motionNoiseStd returns the standard deviation of the motion-induced
// perturbation on the link for the given bodies.
func (n *Network) motionNoiseStd(seg geom.Segment, bodies []Body) float64 {
	var variance float64
	for i := range bodies {
		if bodies[i].Speed <= 0 {
			continue
		}
		dist, _ := seg.DistToPoint(bodies[i].Pos)
		sd := n.cfg.MotionNoiseStdDB * bodies[i].Speed * math.Exp(-dist/n.cfg.MotionRangeM)
		variance += sd * sd
	}
	return math.Sqrt(variance)
}

// stepBursts advances the interference burst process by one tick and
// reports whether a burst is active.
func (n *Network) stepBursts() bool {
	if n.burstTicks > 0 {
		n.burstTicks--
		return true
	}
	// Poisson arrivals: probability of a burst starting this tick.
	p := n.cfg.InterferencePerHour * n.dt / 3600
	if !n.src.Bool(p) {
		return false
	}
	dur := n.src.Exponential(n.cfg.InterferenceMeanSec)
	n.burstTicks = int(dur / n.dt)
	if n.burstTicks < 1 {
		n.burstTicks = 1
	}
	// Each burst hits a random ~third of the streams (co-channel
	// interference is frequency- and position-selective).
	for i := range n.burstMask {
		n.burstMask[i] = n.src.Bool(1.0 / 3.0)
	}
	return true
}

// Sample advances the model one tick and writes the RSSI of every stream
// into out, which must have length NumStreams. The same bodies slice may
// be reused across calls.
func (n *Network) Sample(bodies []Body, out []float64) {
	if len(out) != n.NumStreams() {
		panic(fmt.Sprintf("rf: Sample output length %d, want %d", len(out), n.NumStreams()))
	}
	burst := n.stepBursts()
	arCoef := n.cfg.NoiseAR
	innovation := n.cfg.NoiseStdDB * math.Sqrt(1-arCoef*arCoef)

	for k := range n.base {
		seg := n.segs[k]
		rssi := n.base[k]
		rssi -= n.bodyAttenuation(seg, bodies)

		// Stationary correlated measurement noise.
		n.ar[k] = arCoef*n.ar[k] + n.src.Normal(0, innovation)
		rssi += n.ar[k]

		// Motion-induced perturbation (white, per-tick).
		if sd := n.motionNoiseStd(seg, bodies); sd > 0 {
			rssi += n.src.Normal(0, sd)
		}

		// Interference burst.
		if burst && n.burstMask[k] {
			rssi += n.src.Normal(0, n.cfg.InterferenceStdDB)
		}

		// Receiver quantisation and clamping.
		rssi = math.Round(rssi/n.cfg.QuantStepDB) * n.cfg.QuantStepDB
		if rssi < n.cfg.MinRSSIDBm {
			rssi = n.cfg.MinRSSIDBm
		}
		if rssi > n.cfg.MaxRSSIDBm {
			rssi = n.cfg.MaxRSSIDBm
		}
		out[k] = rssi
	}
}
