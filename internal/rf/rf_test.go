package rf

import (
	"math"
	"testing"

	"fadewich/internal/geom"
	"fadewich/internal/rng"
	"fadewich/internal/stats"
)

func testSensors() []geom.Point {
	return []geom.Point{{X: 0, Y: 0}, {X: 6, Y: 0}, {X: 3, Y: 3}}
}

func newTestNetwork(t *testing.T, cfg Config, seed uint64) *Network {
	t.Helper()
	n, err := NewNetwork(cfg, testSensors(), 0.2, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNetworkErrors(t *testing.T) {
	if _, err := NewNetwork(Config{}, []geom.Point{{X: 0, Y: 0}}, 0.2, rng.New(1)); err == nil {
		t.Fatal("expected error for < 2 sensors")
	}
	if _, err := NewNetwork(Config{}, testSensors(), 0, rng.New(1)); err == nil {
		t.Fatal("expected error for non-positive tick")
	}
}

func TestStreamCount(t *testing.T) {
	n := newTestNetwork(t, Config{}, 1)
	if got := n.NumStreams(); got != 6 { // 3·2 directed links
		t.Fatalf("streams %d, want 6", got)
	}
	links := n.Links()
	if len(links) != 6 {
		t.Fatalf("links %d", len(links))
	}
	seen := map[Link]bool{}
	for _, l := range links {
		if l.TX == l.RX {
			t.Fatalf("self-link %v", l)
		}
		if seen[l] {
			t.Fatalf("duplicate link %v", l)
		}
		seen[l] = true
	}
}

func TestSubcarriersMultiplyStreams(t *testing.T) {
	cfg := Config{Subcarriers: 4}
	n := newTestNetwork(t, cfg, 1)
	if got := n.NumStreams(); got != 24 {
		t.Fatalf("streams %d, want 24", got)
	}
}

func TestDeterminism(t *testing.T) {
	sample := func() []float64 {
		n := newTestNetwork(t, Config{}, 42)
		out := make([]float64, n.NumStreams())
		acc := make([]float64, 0, 100*n.NumStreams())
		bodies := []Body{{Pos: geom.Point{X: 2, Y: 1}, Speed: 1.0}}
		for i := 0; i < 100; i++ {
			n.Sample(bodies, out)
			acc = append(acc, out...)
		}
		return acc
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("samples diverged at %d", i)
		}
	}
}

func TestPathLossOrdersLinks(t *testing.T) {
	// Averaged over noise, a longer link must be weaker than a shorter
	// one (same shadowing draw would be cleaner, but averaging over many
	// networks washes shadowing out).
	var shortSum, longSum float64
	const trials = 60
	for s := uint64(0); s < trials; s++ {
		sensors := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 10, Y: 0}}
		n, err := NewNetwork(Config{}, sensors, 0.2, rng.New(s))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, n.NumStreams())
		n.Sample(nil, out)
		links := n.Links()
		for k, l := range links {
			d := sensors[l.TX].Dist(sensors[l.RX])
			if d <= 1.5 {
				shortSum += out[k]
			}
			if d >= 9 {
				longSum += out[k]
			}
		}
	}
	if shortSum <= longSum {
		t.Fatalf("short links (%v) should be stronger than long links (%v)", shortSum, longSum)
	}
}

func TestBodyOnLoSAttenuates(t *testing.T) {
	cfg := Config{NoiseStdDB: 0.01, InterferencePerHour: -1} // negative → withDefaults keeps it? ensure tiny noise
	cfg.InterferencePerHour = 0.000001
	quietMean := meanRSSIOverTicks(t, cfg, nil, 0, 200)
	onLoS := []Body{{Pos: geom.Point{X: 3, Y: 0}, Speed: 0}} // midpoint of link 0-1
	blockedMean := meanRSSIOverTicks(t, cfg, onLoS, 0, 200)
	drop := quietMean - blockedMean
	if drop < 3 {
		t.Fatalf("LoS body dropped stream 0 by only %.2f dB", drop)
	}
	// A body far from the link barely matters.
	far := []Body{{Pos: geom.Point{X: 3, Y: 2.9}, Speed: 0}}
	farMean := meanRSSIOverTicks(t, cfg, far, 0, 200)
	if quietMean-farMean > 1.5 {
		t.Fatalf("far body dropped stream 0 by %.2f dB", quietMean-farMean)
	}
}

// meanRSSIOverTicks samples the network and averages one stream.
func meanRSSIOverTicks(t *testing.T, cfg Config, bodies []Body, stream, ticks int) float64 {
	t.Helper()
	n := newTestNetwork(t, cfg, 7)
	out := make([]float64, n.NumStreams())
	var sum float64
	for i := 0; i < ticks; i++ {
		n.Sample(bodies, out)
		sum += out[stream]
	}
	return sum / float64(ticks)
}

func TestMovingBodyRaisesStdDev(t *testing.T) {
	// The motion-induced perturbation is the MD module's entire signal:
	// a walking body near a link must raise that link's windowed std.
	collect := func(bodies []Body) float64 {
		n := newTestNetwork(t, Config{}, 11)
		out := make([]float64, n.NumStreams())
		var vals []float64
		for i := 0; i < 300; i++ {
			n.Sample(bodies, out)
			vals = append(vals, out[0]) // link 0→1 along y=0
		}
		return stats.StdDev(vals)
	}
	quiet := collect(nil)
	walking := collect([]Body{{Pos: geom.Point{X: 3, Y: 0.2}, Speed: 1.4}})
	if walking < quiet*2 {
		t.Fatalf("walking std %v not clearly above quiet std %v", walking, quiet)
	}
}

func TestStationaryBodyDoesNotRaiseStdDev(t *testing.T) {
	collect := func(bodies []Body) float64 {
		n := newTestNetwork(t, Config{}, 13)
		out := make([]float64, n.NumStreams())
		var vals []float64
		for i := 0; i < 300; i++ {
			n.Sample(bodies, out)
			vals = append(vals, out[0])
		}
		return stats.StdDev(vals)
	}
	quiet := collect(nil)
	still := collect([]Body{{Pos: geom.Point{X: 3, Y: 0.2}, Speed: 0}})
	if still > quiet*1.6 {
		t.Fatalf("still body std %v vs quiet %v: static bodies should only shift the mean", still, quiet)
	}
}

func TestQuantisation(t *testing.T) {
	n := newTestNetwork(t, Config{QuantStepDB: 1}, 17)
	out := make([]float64, n.NumStreams())
	for i := 0; i < 50; i++ {
		n.Sample(nil, out)
		for k, v := range out {
			if v != math.Round(v) {
				t.Fatalf("stream %d value %v not integer-quantised", k, v)
			}
		}
	}
}

func TestClamping(t *testing.T) {
	cfg := Config{MinRSSIDBm: -95, MaxRSSIDBm: -20}
	n := newTestNetwork(t, cfg, 19)
	out := make([]float64, n.NumStreams())
	for i := 0; i < 200; i++ {
		n.Sample(nil, out)
		for _, v := range out {
			if v < -95 || v > -20 {
				t.Fatalf("RSSI %v outside dynamic range", v)
			}
		}
	}
}

func TestSamplePanicsOnWrongLength(t *testing.T) {
	n := newTestNetwork(t, Config{}, 23)
	defer func() {
		if recover() == nil {
			t.Fatal("Sample with short buffer did not panic")
		}
	}()
	n.Sample(nil, make([]float64, 1))
}

func TestBodyAttenuationSaturates(t *testing.T) {
	n := newTestNetwork(t, Config{}, 29)
	seg := geom.Segment{A: testSensors()[0], B: testSensors()[1]}
	one := n.bodyAttenuation(seg, []Body{{Pos: seg.Midpoint()}})
	four := n.bodyAttenuation(seg, []Body{
		{Pos: seg.Midpoint()}, {Pos: seg.Midpoint()},
		{Pos: seg.Midpoint()}, {Pos: seg.Midpoint()},
	})
	if four > 1.5*n.Config().BodyAttenDB+1e-9 {
		t.Fatalf("attenuation %v exceeds saturation cap", four)
	}
	if four < one {
		t.Fatal("more bodies should not reduce attenuation")
	}
}

func TestInterferenceBurstsRaiseVariance(t *testing.T) {
	// With an extreme burst rate, long-run variance should exceed the
	// no-interference baseline.
	variance := func(rate float64, seed uint64) float64 {
		cfg := Config{InterferencePerHour: rate, InterferenceMeanSec: 5, InterferenceStdDB: 6}
		n, err := NewNetwork(cfg, testSensors(), 0.2, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, n.NumStreams())
		var vals []float64
		for i := 0; i < 4000; i++ {
			n.Sample(nil, out)
			vals = append(vals, out[0])
		}
		return stats.Variance(vals)
	}
	quiet := variance(0.0001, 31)
	noisy := variance(3600, 31) // a burst every second on average
	if noisy < quiet*1.3 {
		t.Fatalf("interference variance %v not above quiet %v", noisy, quiet)
	}
}

func TestLinkString(t *testing.T) {
	l := Link{TX: 8, RX: 1}
	if got := l.String(); got != "d9-d2" {
		t.Fatalf("link string %q", got)
	}
}

func TestDefaultsFilled(t *testing.T) {
	n := newTestNetwork(t, Config{}, 37)
	cfg := n.Config()
	if cfg.PathLossExp == 0 || cfg.NoiseStdDB == 0 || cfg.BodyAttenDB == 0 || cfg.Subcarriers != 1 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}
