package rf

import (
	"math"
	"testing"

	"fadewich/internal/rng"
)

// modelVersionPair builds two networks over the same sensors and seed,
// one per model version. Both see identical construction-time draws, so
// any output difference comes from the sampling implementations alone.
func modelVersionPair(t *testing.T, cfg Config) (v1, v2 *Network) {
	t.Helper()
	cfg.ModelVersion = 1
	v1, err := NewNetwork(cfg, goldenSensors(), 0.2, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg.ModelVersion = 2
	v2, err = NewNetwork(cfg, goldenSensors(), 0.2, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return v1, v2
}

// TestModelVersionEquivalence bounds the divergence between the exact
// scalar path and the vectorised path. With quantisation disabled the
// raw RSSI streams must agree to far better than 1e-9 dB on every
// stream of every tick: the RNG uniform streams are consumed
// identically (so the two paths stay in draw lockstep forever), the
// batched Gaussians agree with the scalar ones to ~1e-11 relative
// (vmath.NormFactorFastSlice), and the remaining differences are
// last-ulp geometry effects (raw sqrt distances, pair-shared motion
// column). None of it accumulates: the AR recursion is contractive and
// its per-step input error is bounded.
func TestModelVersionEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"default", Config{QuantStepDB: Disable}},
		{"subc4-bursty", Config{QuantStepDB: Disable, Subcarriers: 4, InterferencePerHour: 3600}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v1, v2 := modelVersionPair(t, tc.cfg)
			out1 := make([]float64, v1.NumStreams())
			out2 := make([]float64, v2.NumStreams())
			var maxDelta float64
			for i := 0; i < 2000; i++ {
				bodies := goldenBodies(i)
				v1.Sample(bodies, out1)
				v2.Sample(bodies, out2)
				for k := range out1 {
					if d := math.Abs(out1[k] - out2[k]); d > maxDelta {
						maxDelta = d
					}
				}
			}
			if maxDelta >= 1e-9 {
				t.Fatalf("max |v1-v2| RSSI delta = %g dB, want < 1e-9", maxDelta)
			}
			if maxDelta == 0 {
				t.Log("v1 and v2 byte-identical on this run")
			} else {
				t.Logf("max |v1-v2| RSSI delta = %g dB", maxDelta)
			}
		})
	}
}

// TestModelVersionDrawParity verifies the RNG contract directly: after
// the same number of ticks both versions must have consumed exactly the
// same random draws, so their sources produce identical continuations.
func TestModelVersionDrawParity(t *testing.T) {
	cfg := Config{InterferencePerHour: 3600, Subcarriers: 2}
	cfg.ModelVersion = 1
	src1 := rng.New(11)
	v1, err := NewNetwork(cfg, goldenSensors(), 0.2, src1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ModelVersion = 2
	src2 := rng.New(11)
	v2, err := NewNetwork(cfg, goldenSensors(), 0.2, src2)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, v1.NumStreams())
	for i := 0; i < 600; i++ {
		v1.Sample(goldenBodies(i), out)
		v2.Sample(goldenBodies(i), out)
	}
	for i := 0; i < 16; i++ {
		a, b := src1.NormFloat64(), src2.NormFloat64()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("draw %d after 600 ticks diverges: %v vs %v — v2 consumed a different number of draws", i, a, b)
		}
	}
}

// TestModelVersionValidation pins the Config surface: 0 defaults to 1,
// unknown versions are rejected at construction.
func TestModelVersionValidation(t *testing.T) {
	if _, err := NewNetwork(Config{ModelVersion: 3}, goldenSensors(), 0.2, rng.New(1)); err == nil {
		t.Fatal("ModelVersion 3 accepted, want error")
	}
	n, err := NewNetwork(Config{}, goldenSensors(), 0.2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Config().ModelVersion; got != 1 {
		t.Fatalf("default ModelVersion = %d, want 1", got)
	}
}

// TestSampleBlockV2NoAllocs locks the version 2 hot path at zero
// per-tick allocations once warmed, matching the version 1 guarantee.
func TestSampleBlockV2NoAllocs(t *testing.T) {
	cfg := Config{ModelVersion: 2, Subcarriers: 4, InterferencePerHour: 3600}
	n, err := NewNetwork(cfg, goldenSensors(), 0.2, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 32
	tickBodies := make([][]Body, ticks)
	for i := range tickBodies {
		tickBodies[i] = goldenBodies(i + 50)
	}
	var blk Block
	n.SampleBlock(tickBodies, &blk) // warm the block buffer
	allocs := testing.AllocsPerRun(20, func() {
		n.SampleBlock(tickBodies, &blk)
	})
	if allocs != 0 {
		t.Fatalf("SampleBlock (v2) allocates %.1f times per run, want 0", allocs)
	}
}
