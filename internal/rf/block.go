package rf

import "fadewich/internal/block"

// Block is the columnar sample buffer SampleBlock fills: one contiguous
// [ticks×streams] tick-major float64 allocation. It is an alias of the
// shared internal/block.Block, so the detection layers (core.System.
// TickBlock, engine.OfficeBatch.Block) exchange the same type without
// depending on this package.
type Block = block.Block
