package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestNewPoolDefaultsToCPUs(t *testing.T) {
	if w := NewPool(0).Workers(); w < 1 {
		t.Fatalf("default pool width %d < 1", w)
	}
	if w := NewPool(-3).Workers(); w < 1 {
		t.Fatalf("negative-width pool resolved to %d", w)
	}
	if w := NewPool(7).Workers(); w != 7 {
		t.Fatalf("explicit width: got %d, want 7", w)
	}
}

func TestMapCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := NewPool(workers)
		const n = 257
		hits := make([]atomic.Int64, n)
		if err := p.Map(n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestMapIndexAddressedResultsDeterministic(t *testing.T) {
	run := func(workers int) []int {
		p := NewPool(workers)
		out := make([]int, 100)
		if err := p.Map(len(out), func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	failAt := map[int]bool{13: true, 40: true, 77: true}
	for _, workers := range []int{1, 4, 16} {
		p := NewPool(workers)
		err := p.Map(100, func(i int) error {
			if failAt[i] {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 13 failed" {
			t.Fatalf("workers=%d: got %v, want job 13 failed", workers, err)
		}
	}
}

func TestMapStopsDispatchAfterError(t *testing.T) {
	// With one worker the loop must stop exactly at the failing index.
	p := NewPool(1)
	var ran atomic.Int64
	sentinel := errors.New("boom")
	err := p.Map(100, func(i int) error {
		ran.Add(1)
		if i == 5 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if got := ran.Load(); got != 6 {
		t.Fatalf("ran %d jobs, want 6", got)
	}
}

// TestNestedMapSharesBudget runs a Map inside every outer job and checks
// that (a) nesting completes correctly and (b) the number of jobs running
// at once never exceeds the pool width — nested calls draw from one token
// pot instead of multiplying goroutines.
func TestNestedMapSharesBudget(t *testing.T) {
	const width = 4
	p := NewPool(width)
	var running, peak atomic.Int64
	out := make([][]int, 6)
	err := p.Map(len(out), func(i int) error {
		inner := make([]int, 20)
		e := p.Map(len(inner), func(j int) error {
			cur := running.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			inner[j] = i*100 + j
			running.Add(-1)
			return nil
		})
		out[i] = inner
		return e
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		for j, v := range out[i] {
			if v != i*100+j {
				t.Fatalf("out[%d][%d] = %d", i, j, v)
			}
		}
	}
	if got := peak.Load(); got > width {
		t.Fatalf("peak concurrency %d exceeds pool width %d", got, width)
	}
}

func TestMapZeroJobs(t *testing.T) {
	p := NewPool(4)
	called := false
	if err := p.Map(0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n=0")
	}
}

func TestGatherOrdersResults(t *testing.T) {
	p := NewPool(8)
	out, err := Gather(p, 50, func(i int) (string, error) {
		return fmt.Sprintf("r%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprintf("r%d", i) {
			t.Fatalf("slot %d = %q", i, v)
		}
	}
	if _, err := Gather(p, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	}); err == nil {
		t.Fatal("Gather swallowed error")
	}
}
