package engine

import (
	"fmt"
	"sort"
	"testing"

	"fadewich/internal/core"
	"fadewich/internal/rf"
	"fadewich/internal/rng"
)

// noisyBatch synthesises one office's ticks: quiet wiggle with an
// anomalous stretch whose offset depends on the office, so offices emit
// interleaved actions for the merge to order.
func noisyBatch(o, ticks, streams int) [][]float64 {
	src := rng.New(uint64(o)*31 + 7)
	rows := make([][]float64, ticks)
	for t := range rows {
		std := 0.5
		if t >= 180+(o%9)*8 && t < 260+(o%9)*8 {
			std = 6
		}
		row := make([]float64, streams)
		for k := range row {
			row[k] = -60 + src.Normal(0, std)
		}
		rows[t] = row
	}
	return rows
}

// runFleetOnce drives a fresh fleet over the synthetic day with the
// given worker count and returns the concatenated merged stream.
func runFleetOnce(t *testing.T, offices, workers int) []OfficeAction {
	t.Helper()
	const (
		streams    = 6
		ticks      = 400
		batchTicks = 80
	)
	f, err := NewFleet(FleetConfig{
		Offices: offices,
		Workers: workers,
		System:  core.Config{Streams: streams, Workstations: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([][][]float64, offices)
	for o := range data {
		data[o] = noisyBatch(o, ticks, streams)
	}
	var all []OfficeAction
	for start := 0; start < ticks; start += batchTicks {
		batch := make([][][]float64, offices)
		var evs []InputEvent
		for o := range batch {
			batch[o] = data[o][start : start+batchTicks]
			if start == 0 {
				evs = append(evs, InputEvent{Office: o, Workstation: 0, Tick: 0},
					InputEvent{Office: o, Workstation: 1, Tick: 0})
			}
		}
		acts, err := f.RunBatch(batch, evs)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, acts...)
	}
	return all
}

// TestMergeIdenticalAcrossShardShapes checks the shard-local two-level
// merge produces a byte-identical stream for every worker count — each
// width partitions the fleet into different shard shapes (64 offices:
// 4 shards of 16 at one worker, 32 shards of 2 at eight, one office per
// shard at 16+).
func TestMergeIdenticalAcrossShardShapes(t *testing.T) {
	ref := runFleetOnce(t, 64, 1)
	if len(ref) == 0 {
		t.Fatal("synthetic day emitted no actions; the merge test is vacuous")
	}
	for _, workers := range []int{2, 3, 8, 16, 64} {
		got := runFleetOnce(t, 64, workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d actions, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: action %d = %+v, want %+v", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestMergeRunsOrdering exercises mergeRuns directly on crafted runs:
// cross-run ties on time must order by office ID and every run must
// stay FIFO.
func TestMergeRunsOrdering(t *testing.T) {
	mk := func(office int, times ...float64) []OfficeAction {
		out := make([]OfficeAction, len(times))
		for i, ts := range times {
			out[i] = OfficeAction{Office: office, Action: core.Action{Time: ts, Workstation: i}}
		}
		return out
	}
	runs := [][]OfficeAction{
		mk(2, 1.0, 1.0, 3.0),
		mk(0, 1.0, 2.0),
		nil,
		mk(5, 0.5, 1.0, 1.0, 4.0),
	}
	got := mergeRuns(runs, 0)
	want := []OfficeAction{
		{Office: 5, Action: core.Action{Time: 0.5, Workstation: 0}},
		{Office: 0, Action: core.Action{Time: 1.0, Workstation: 0}},
		{Office: 2, Action: core.Action{Time: 1.0, Workstation: 0}},
		{Office: 2, Action: core.Action{Time: 1.0, Workstation: 1}},
		{Office: 5, Action: core.Action{Time: 1.0, Workstation: 1}},
		{Office: 5, Action: core.Action{Time: 1.0, Workstation: 2}},
		{Office: 0, Action: core.Action{Time: 2.0, Workstation: 1}},
		{Office: 2, Action: core.Action{Time: 3.0, Workstation: 2}},
		{Office: 5, Action: core.Action{Time: 4.0, Workstation: 3}},
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d actions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("action %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if mergeRuns(nil, 0.2) != nil || mergeRuns([][]OfficeAction{nil, nil}, 0.2) != nil {
		t.Fatal("empty merges should return nil")
	}
}

// TestBucketMergeMatchesHeap checks the counting-sort fast path against
// the heap merge on tick-grid runs, and that each of its preconditions
// falls back to the heap (returns nil) instead of mis-merging.
func TestBucketMergeMatchesHeap(t *testing.T) {
	const dt = 0.2
	runs := syntheticRuns(48, 40) // ascending offices, grid times, heavy ties
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	fast := new(mergeScratch).bucket(runs, total, dt, true)
	if fast == nil {
		t.Fatal("bucket merge rejected tick-grid input")
	}
	ref := mergeRuns(runs, 0) // dt 0 forces the heap path
	if len(fast) != len(ref) {
		t.Fatalf("bucket merged %d actions, heap %d", len(fast), len(ref))
	}
	for i := range ref {
		if fast[i] != ref[i] {
			t.Fatalf("action %d: bucket %+v, heap %+v", i, fast[i], ref[i])
		}
	}

	// Off-grid time: must fall back.
	offGrid := syntheticRuns(48, 40)
	offGrid[3][2].Action.Time += 0.05
	sortRunFix(offGrid[3])
	if new(mergeScratch).bucket(offGrid, total, dt, true) != nil {
		t.Fatal("bucket merge accepted an off-grid time")
	}
	// Non-ascending office ranges: must fall back.
	swapped := syntheticRuns(48, 40)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if new(mergeScratch).bucket(swapped, total, dt, true) != nil {
		t.Fatal("bucket merge accepted non-ascending office ranges")
	}
	// Sparse span (a joiner's near-zero clock next to a multi-day one):
	// must fall back.
	sparse := [][]OfficeAction{
		make([]OfficeAction, 40),
		make([]OfficeAction, 40),
	}
	for i := range sparse[0] {
		sparse[0][i] = OfficeAction{Office: 0, Action: core.Action{Time: float64(i) * dt}}
		sparse[1][i] = OfficeAction{Office: 1, Action: core.Action{Time: float64(10_000_000+i) * dt}}
	}
	if new(mergeScratch).bucket(sparse, 80, dt, true) != nil {
		t.Fatal("bucket merge accepted a hugely sparse tick span")
	}
	if got := mergeRuns(sparse, dt); len(got) != 80 || got[0].Office != 0 || got[79].Office != 1 {
		t.Fatalf("sparse fallback merged wrong: len %d", len(got))
	}
}

// sortRunFix re-sorts one run by time after a test perturbation so it
// still satisfies mergeRuns' ordered-run precondition.
func sortRunFix(r []OfficeAction) {
	sort.SliceStable(r, func(a, b int) bool { return r[a].Action.Time < r[b].Action.Time })
}

// TestRunEmptyBatchIsNoOp pins the empty-batch contract: Run with no
// batches and no inputs returns an empty stream instead of panicking.
func TestRunEmptyBatchIsNoOp(t *testing.T) {
	f, err := NewFleet(FleetConfig{Offices: 2, System: core.Config{Streams: 2, Workstations: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, batches := range [][]OfficeBatch{nil, {}} {
		acts, err := f.Run(batches, nil)
		if err != nil || acts != nil {
			t.Fatalf("Run(%v, nil) = (%v, %v), want (nil, nil)", batches, acts, err)
		}
	}
}

// TestShardSizeHeuristic pins the shard-local batching policy.
func TestShardSizeHeuristic(t *testing.T) {
	cases := []struct {
		offices, workers, want int
	}{
		{1, 8, 1},
		{32, 8, 1}, // ≤ 4·workers: one office per task
		{64, 8, 2}, // beyond it, shards grow with the fleet
		{1024, 8, 32},
		{10000, 8, 313},
		{64, 1, 16},
		{5, 0, 5}, // degenerate worker count still shards sanely
	}
	for _, c := range cases {
		if got := shardSize(c.offices, c.workers); got != c.want {
			t.Fatalf("shardSize(%d, %d) = %d, want %d", c.offices, c.workers, got, c.want)
		}
	}
}

// TestBlockBatchMatchesTicks checks an OfficeBatch carrying a columnar
// Block produces a byte-identical stream to the same payload as per-tick
// slices.
func TestBlockBatchMatchesTicks(t *testing.T) {
	const (
		offices = 4
		streams = 6
		ticks   = 400
	)
	run := func(useBlock, withEvents bool) []OfficeAction {
		f, err := NewFleet(FleetConfig{
			Offices: offices,
			System:  core.Config{Streams: streams, Workstations: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		var evs []InputEvent
		batches := make([]OfficeBatch, offices)
		for o := 0; o < offices; o++ {
			rows := noisyBatch(o, ticks, streams)
			if useBlock {
				blk := new(rf.Block)
				blk.Reset(len(rows), streams)
				for t2, row := range rows {
					copy(blk.Row(t2), row)
				}
				batches[o] = OfficeBatch{Office: o, Block: blk}
			} else {
				batches[o] = OfficeBatch{Office: o, Ticks: rows}
			}
			if withEvents {
				evs = append(evs, InputEvent{Office: o, Workstation: 0, Tick: 0})
			} else {
				// Authenticate between batches instead, so the Run call
				// itself carries no events and blocks take the TickBlock
				// fast path.
				f.NotifyInput(o, 0)
			}
		}
		acts, err := f.Run(batches, evs)
		if err != nil {
			t.Fatal(err)
		}
		return acts
	}
	// With input events a block batch walks the per-tick loop; without
	// them it takes the TickBlock fast path. Both must match the
	// per-tick-slices stream byte for byte.
	for _, withEvents := range []bool{true, false} {
		ref, got := run(false, withEvents), run(true, withEvents)
		if len(ref) == 0 {
			t.Fatal("no actions emitted; the equivalence test is vacuous")
		}
		if fmt.Sprint(ref) != fmt.Sprint(got) {
			t.Fatalf("withEvents=%v: block batch diverged from per-tick batch:\n%v\nvs\n%v", withEvents, got, ref)
		}
	}
}
