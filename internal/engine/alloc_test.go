package engine

import (
	"testing"
)

// TestMergeScratchReuseNoAllocs locks the scratch-backed merge at zero
// steady-state allocations on both strategies: the counting-sort bucket
// path (shared tick grid) and the index-heap path (dt 0, no grid). This
// is the guarantee Fleet.Run's intermediate shard merges rely on.
func TestMergeScratchReuseNoAllocs(t *testing.T) {
	runs := syntheticRuns(48, 40)
	ref := mergeRuns(runs, 0.2)
	for _, tc := range []struct {
		name string
		dt   float64
	}{
		{"bucket", 0.2},
		{"heap", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var sc mergeScratch
			got := sc.merge(runs, tc.dt, false) // warm the buffers
			if len(got) != len(ref) {
				t.Fatalf("merged %d actions, want %d", len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("action %d: scratch merge %+v, reference %+v", i, got[i], ref[i])
				}
			}
			allocs := testing.AllocsPerRun(20, func() {
				sc.merge(runs, tc.dt, false)
			})
			if allocs != 0 {
				t.Fatalf("scratch merge allocates %.1f times per run, want 0", allocs)
			}
		})
	}
}

// TestFleetRunSteadyStateAllocs pins Fleet.Run's per-batch allocation
// overhead independent of fleet size: once the pooled scratch is warm, a
// 64-office batch must not allocate per office — the work structs,
// routing map, shard runs and merge temporaries are all reused. Only a
// small constant residue remains (the pool dispatch closure and, when
// actions are emitted, the fresh result slice the API contract requires).
func TestFleetRunSteadyStateAllocs(t *testing.T) {
	const offices = 64
	f, err := NewFleet(fleetCfg(offices, 0))
	if err != nil {
		t.Fatal(err)
	}
	batch, inputs := fleetScenario(offices, 8)
	run := func() {
		if _, err := f.RunBatch(batch, inputs); err != nil {
			t.Fatal(err)
		}
	}
	// Warm until the training-phase detector windows stop growing; the
	// routing scratch itself is warm after one batch.
	for i := 0; i < 200; i++ {
		run()
	}
	allocs := testing.AllocsPerRun(50, run)
	// Well under one allocation per office (measured ~27 at 64 offices:
	// periodic md.Detector KDE refits plus the pool dispatch, none of it
	// per-office routing). The unpooled path allocated 150+ — one work
	// struct per office plus map, worklist, shard runs and merge
	// temporaries — so the bound cleanly catches a regression to that.
	if allocs > 48 {
		t.Fatalf("Fleet.RunBatch allocates %.1f times per batch at %d offices, want <= 48", allocs, offices)
	}
}
