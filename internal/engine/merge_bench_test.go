package engine

import (
	"fmt"
	"testing"

	"fadewich/internal/core"
)

// syntheticRuns builds per-office action runs with realistic timing:
// each office emits its actions in short alert cascades (eight actions
// one tick apart) separated by quiet stretches, phase-shifted per
// office in twelve groups. Times are stamped exactly as core.System
// does — float64(tick)·DT on the shared tick grid — so many actions
// across offices carry bit-equal times, the structure the bucket merge
// exploits; same-group offices tie constantly, exercising the office-ID
// tie-break.
func syntheticRuns(offices, perOffice int) [][]OfficeAction {
	const dt = 0.2
	runs := make([][]OfficeAction, offices)
	for o := range runs {
		r := make([]OfficeAction, 0, perOffice)
		tick := (o % 12) * 8 // phase group
		for len(r) < perOffice {
			for j := 0; j < 8 && len(r) < perOffice; j++ { // one cascade
				r = append(r, OfficeAction{Office: o, Action: core.Action{
					Time:        float64(tick) * dt,
					Type:        core.ActionAlertEnter,
					Workstation: len(r) % 3,
				}})
				tick++
			}
			tick += 750 // quiet until the next cascade
		}
		runs[o] = r
	}
	return runs
}

// BenchmarkFleetMerge measures the two-level shard merge that Fleet.Run
// performs per batch — the shard-local k-way pass over per-office runs
// fanned across the pool, then the final pass over the shard runs — at
// 64, 256 and 1024 offices over a fixed fleet-wide action volume
// (32k actions per batch, so the metric isolates merge fan-in from data
// volume). ns/action is the tracked metric: segment galloping merges
// bursty runs at ~one comparison per action and the shard count is
// capped at ~4·workers, so per-action cost stays flat-to-falling as the
// fleet scales (the old concat-and-sort merge paid O(log total)
// comparator calls per action, growing with fleet size).
func BenchmarkFleetMerge(b *testing.B) {
	const totalActions = 32768
	for _, offices := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("offices-%d", offices), func(b *testing.B) {
			pool := NewPool(0)
			runs := syntheticRuns(offices, totalActions/offices)
			size := shardSize(offices, pool.Workers())
			numShards := (offices + size - 1) / size
			total := totalActions
			// Same buffer ownership as Fleet.runLocked: intermediate
			// shard runs reuse per-shard scratch, only the final merged
			// slice is freshly allocated.
			shardRuns := make([][]OfficeAction, numShards)
			shardSc := make([]*mergeScratch, numShards)
			for si := range shardSc {
				shardSc[si] = new(mergeScratch)
			}
			var finalSc mergeScratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pool.Map(numShards, func(si int) error {
					lo := si * size
					hi := lo + size
					if hi > offices {
						hi = offices
					}
					shardRuns[si] = shardSc[si].merge(runs[lo:hi], 0.2, false)
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				if merged := finalSc.merge(shardRuns, 0.2, true); len(merged) != total {
					b.Fatalf("merged %d actions, want %d", len(merged), total)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(total), "ns/action")
		})
	}
}
