// Fleet: an elastic, sharded multi-tenant deployment of core.System
// instances.
//
// The paper evaluates one 6 m × 3 m office; a production deployment
// monitors thousands of heterogeneous tenants that onboard and churn
// while the system runs. Each office is an independent core.System — the
// System itself stays single-goroutine and unaware of the fleet — and the
// Fleet owns all routing: it delivers batched RSSI ticks and input
// notifications to every office, shards the offices across pool workers,
// and merges the per-office action streams into one globally time-ordered
// stream tagged with the office's stable ID.
//
// Membership is elastic: AddOffice and RemoveOffice are safe to call
// while batches are flowing from another goroutine. A batch in flight
// holds the membership lock for its whole duration, so a membership
// change never lands mid-batch — joining offices start clean (training
// phase, zero clock) at the next batch boundary, and a removed office's
// in-flight batch completes before the removal applies.

package engine

import (
	"fmt"
	"sort"
	"sync"

	"fadewich/internal/core"
)

// FleetConfig parameterises a Fleet.
type FleetConfig struct {
	// Offices is the number of office Systems the fleet starts with; they
	// receive the stable IDs 0..Offices-1.
	Offices int
	// System is the shared default per-office configuration, used by every
	// initial office without a PerOffice override and by AddOffice calls
	// that pass a zero configuration.
	System core.Config
	// PerOffice optionally overrides the full System configuration for
	// individual initial offices, keyed by office ID in [0, Offices).
	// Heterogeneous tenants differ here: stream count (sensor layout),
	// workstation count, MD thresholds, control timings.
	PerOffice map[int]core.Config
	// Workers caps the worker-pool width (0 selects one per CPU, 1 forces
	// sequential delivery). Output is identical for every value.
	Workers int
}

// OfficeAction is one action emitted by one office of the fleet.
type OfficeAction struct {
	// Office is the stable ID of the emitting System.
	Office int
	// Action is the System output (Action.Time is that office's clock).
	Action core.Action
}

// InputEvent routes a keyboard/mouse notification to one office, named by
// its stable ID. Tick is the index within that office's current batch
// before which the notification is delivered; events at the same tick are
// delivered in slice order.
type InputEvent struct {
	Office      int
	Workstation int
	Tick        int
}

// OfficeBatch is one office's tick payload for a Run call, addressed by
// stable office ID. Each tick is one sample per stream of that office's
// configuration (offices may have different stream counts).
type OfficeBatch struct {
	Office int
	Ticks  [][]float64
}

// officeState is one tenant: its stable ID, resolved configuration, the
// System, and the per-batch action buffer reused between batches.
type officeState struct {
	id  int
	cfg core.Config
	sys *core.System
	buf []OfficeAction
}

// Fleet shards its member office Systems across a worker pool. All
// methods are safe for concurrent use: batch delivery (Run, RunBatch,
// Tick) serialises on an internal lock held for the whole batch, so
// AddOffice/RemoveOffice calls from other goroutines always land at a
// batch boundary.
type Fleet struct {
	pool *Pool
	def  core.Config // shared default office configuration

	mu sync.Mutex
	// active holds the member offices in ascending ID order (IDs are
	// allocated monotonically and never reused, so append keeps order).
	active []*officeState
	byID   map[int]*officeState
	nextID int
}

// NewFleet builds the fleet with every initial office System in the
// training phase. Offices with a PerOffice entry use that configuration
// verbatim; the rest share cfg.System.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Offices < 1 {
		return nil, fmt.Errorf("engine: fleet needs at least one office, got %d", cfg.Offices)
	}
	for id := range cfg.PerOffice {
		if id < 0 || id >= cfg.Offices {
			return nil, fmt.Errorf("engine: per-office config for office %d outside initial fleet of %d", id, cfg.Offices)
		}
	}
	f := &Fleet{
		pool: NewPool(cfg.Workers),
		def:  cfg.System,
		byID: make(map[int]*officeState, cfg.Offices),
	}
	for i := 0; i < cfg.Offices; i++ {
		oc := cfg.System
		if c, ok := cfg.PerOffice[i]; ok {
			oc = c
		}
		if _, err := f.addLocked(oc); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// addLocked creates one office System and registers it under the next ID.
func (f *Fleet) addLocked(cfg core.Config) (int, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return 0, fmt.Errorf("engine: office %d: %w", f.nextID, err)
	}
	st := &officeState{id: f.nextID, cfg: cfg, sys: sys}
	f.nextID++
	f.active = append(f.active, st)
	f.byID[st.id] = st
	return st.id, nil
}

// AddOffice joins a new tenant to the fleet and returns its stable ID.
// The office starts clean — a fresh System in the training phase with a
// zero clock — and participates from the next batch on. A completely
// zero-valued cfg inherits the fleet's shared default configuration;
// a partial cfg is used as given and rejected loudly if invalid (it is
// never silently merged with the default). Safe to call concurrently
// with batch delivery: the join lands at the next batch boundary.
func (f *Fleet) AddOffice(cfg core.Config) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cfg == (core.Config{}) {
		cfg = f.def
	}
	return f.addLocked(cfg)
}

// RemoveOffice retires a tenant from the fleet and returns its System for
// final inspection (training samples, authentication state). Any batch in
// flight completes first — the removed office's actions from that batch
// still appear in the merged stream — and the ID is never reused. Layers
// that queue ticks (stream.Ingestor) drain the office's queue before
// calling this.
func (f *Fleet) RemoveOffice(id int) (*core.System, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.byID[id]
	if st == nil {
		return nil, fmt.Errorf("engine: office %d is not a member of the fleet", id)
	}
	delete(f.byID, id)
	for i, o := range f.active {
		if o == st {
			f.active = append(f.active[:i], f.active[i+1:]...)
			break
		}
	}
	return st.sys, nil
}

// Offices returns the current fleet size.
func (f *Fleet) Offices() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.active)
}

// IDs returns the stable IDs of the member offices in ascending order —
// the order dense RunBatch/Tick payloads are interpreted in.
func (f *Fleet) IDs() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]int, len(f.active))
	for i, st := range f.active {
		ids[i] = st.id
	}
	return ids
}

// System returns office id's System for direct inspection (training
// sample counts, phase, authentication state), or nil for a non-member.
// The System must not be ticked directly while the fleet is also
// delivering batches.
func (f *Fleet) System(id int) *core.System {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st := f.byID[id]; st != nil {
		return st.sys
	}
	return nil
}

// Config returns office id's resolved configuration and whether the
// office is a member.
func (f *Fleet) Config(id int) (core.Config, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st := f.byID[id]; st != nil {
		return st.cfg, true
	}
	return core.Config{}, false
}

// DefaultConfig returns the fleet's shared default office configuration.
func (f *Fleet) DefaultConfig() core.Config { return f.def }

// NotifyInput routes a single input notification to one office (by ID)
// between batches. Unknown offices are ignored. For inputs interleaved
// with a batch's ticks, pass InputEvents to Run/RunBatch instead.
func (f *Fleet) NotifyInput(office, workstation int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st := f.byID[office]; st != nil {
		st.sys.NotifyInput(workstation)
	}
}

// Run delivers one batch to the named offices and returns the merged
// action stream. Each OfficeBatch addresses a member office by stable ID
// (at most one entry per office); offices without an entry do not advance
// this batch. inputs are routed to their office (by ID) and delivered, in
// slice order, before the tick they name; events whose tick exceeds the
// office's batch length — or whose office has no batch entry — are
// delivered after the office's last tick of the batch.
//
// The merged stream is ordered by action time, ties broken by office ID,
// then by each office's own emission order — a total order that is
// byte-identical for every worker count and independent of the order of
// the batch entries.
//
// The returned slice is freshly allocated on every call and never touched
// by the fleet afterwards: callers (and action sinks) may retain previous
// batches indefinitely. Only the internal per-office buffers are reused
// between batches.
//
// Run holds the membership lock for the whole batch, so concurrent
// AddOffice/RemoveOffice calls take effect at the next batch boundary.
func (f *Fleet) Run(batches []OfficeBatch, inputs []InputEvent) ([]OfficeAction, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runLocked(batches, inputs)
}

// work is one office's share of a batch: its ticks plus its input events.
type work struct {
	st    *officeState
	ticks [][]float64
	evs   []InputEvent
	seen  bool // an OfficeBatch entry named this office
}

func (f *Fleet) runLocked(batches []OfficeBatch, inputs []InputEvent) ([]OfficeAction, error) {
	byID := make(map[int]*work, len(batches))
	worklist := make([]*work, 0, len(batches))
	lookup := func(id int) (*work, error) {
		if w := byID[id]; w != nil {
			return w, nil
		}
		st := f.byID[id]
		if st == nil {
			return nil, fmt.Errorf("engine: office %d is not a member of the fleet", id)
		}
		w := &work{st: st}
		byID[id] = w
		worklist = append(worklist, w)
		return w, nil
	}
	for _, ob := range batches {
		w, err := lookup(ob.Office)
		if err != nil {
			return nil, err
		}
		if w.seen {
			return nil, fmt.Errorf("engine: duplicate batch entry for office %d", ob.Office)
		}
		w.seen = true
		w.ticks = ob.Ticks
	}
	for _, ev := range inputs {
		w, err := lookup(ev.Office)
		if err != nil {
			return nil, fmt.Errorf("engine: input event: %w", err)
		}
		w.evs = append(w.evs, ev)
	}
	// Ascending-ID order makes the merge concatenation — and with it the
	// emission-order tie-break — independent of the caller's entry order.
	sort.Slice(worklist, func(a, b int) bool { return worklist[a].st.id < worklist[b].st.id })

	err := f.pool.Map(len(worklist), func(i int) error {
		w := worklist[i]
		sys := w.st.sys
		out := w.st.buf[:0]
		// evs is ordered by slice position; deliver all events with
		// Tick <= t before tick t. Sort stably by tick so out-of-order
		// caller input still lands deterministically.
		sort.SliceStable(w.evs, func(a, b int) bool { return w.evs[a].Tick < w.evs[b].Tick })
		next := 0
		for t, rssi := range w.ticks {
			for next < len(w.evs) && w.evs[next].Tick <= t {
				sys.NotifyInput(w.evs[next].Workstation)
				next++
			}
			for _, a := range sys.Tick(rssi) {
				out = append(out, OfficeAction{Office: w.st.id, Action: a})
			}
		}
		for ; next < len(w.evs); next++ {
			sys.NotifyInput(w.evs[next].Workstation)
		}
		w.st.buf = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeWork(worklist), nil
}

// RunBatch delivers a dense batch: ticks[i] holds the RSSI ticks of the
// i-th member office in ascending-ID order (for a fleet that has seen no
// churn, office IDs equal positions 0..N-1), and len(ticks) must equal
// the current fleet size. Offices may supply different tick counts — each
// System advances its own clock by its own count. See Run for the input
// delivery and ordering contract; elastic callers that add and remove
// offices mid-run should prefer the ID-addressed Run.
func (f *Fleet) RunBatch(ticks [][][]float64, inputs []InputEvent) ([]OfficeAction, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(ticks) != len(f.active) {
		return nil, fmt.Errorf("engine: batch has %d offices, fleet has %d", len(ticks), len(f.active))
	}
	batches := make([]OfficeBatch, len(ticks))
	for i, st := range f.active {
		batches[i] = OfficeBatch{Office: st.id, Ticks: ticks[i]}
	}
	return f.runLocked(batches, inputs)
}

// Tick delivers one tick to every member office (rssi[i] is the sample
// vector of the i-th office in ascending-ID order) and returns the merged
// actions of that tick.
func (f *Fleet) Tick(rssi [][]float64) ([]OfficeAction, error) {
	batch := make([][][]float64, len(rssi))
	for i := range rssi {
		batch[i] = [][]float64{rssi[i]}
	}
	return f.RunBatch(batch, nil)
}

// mergeWork concatenates the per-office buffers in ascending-ID order and
// sorts them into the global order (time, then office ID, then per-office
// emission order). It must copy into a fresh slice — the per-office
// buffers are reused by the next batch, and Run promises callers the
// returned stream is theirs to keep.
func mergeWork(worklist []*work) []OfficeAction {
	total := 0
	for _, w := range worklist {
		total += len(w.st.buf)
	}
	if total == 0 {
		return nil
	}
	merged := make([]OfficeAction, 0, total)
	for _, w := range worklist {
		merged = append(merged, w.st.buf...)
	}
	sort.SliceStable(merged, func(a, b int) bool {
		if merged[a].Action.Time != merged[b].Action.Time {
			return merged[a].Action.Time < merged[b].Action.Time
		}
		return merged[a].Office < merged[b].Office
	})
	return merged
}

// FinishTraining moves every member office to the online phase, fanning
// the SVM training out across the pool. It fails on the first office (in
// ascending-ID order) whose training fails, wrapping the office ID.
func (f *Fleet) FinishTraining() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	active := f.active
	return f.pool.Map(len(active), func(i int) error {
		if err := active[i].sys.FinishTraining(); err != nil {
			return fmt.Errorf("engine: office %d: %w", active[i].id, err)
		}
		return nil
	})
}

// TrainingSamples returns the total labelled training samples collected
// across the member offices.
func (f *Fleet) TrainingSamples() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for _, st := range f.active {
		total += st.sys.TrainingSamples()
	}
	return total
}
