// Fleet: an elastic, sharded multi-tenant deployment of core.System
// instances.
//
// The paper evaluates one 6 m × 3 m office; a production deployment
// monitors thousands of heterogeneous tenants that onboard and churn
// while the system runs. Each office is an independent core.System — the
// System itself stays single-goroutine and unaware of the fleet — and the
// Fleet owns all routing: it delivers batched RSSI ticks and input
// notifications to every office, shards the offices across pool workers,
// and merges the per-office action streams into one globally time-ordered
// stream tagged with the office's stable ID.
//
// Membership is elastic: AddOffice and RemoveOffice are safe to call
// while batches are flowing from another goroutine. A batch in flight
// holds the membership lock for its whole duration, so a membership
// change never lands mid-batch — joining offices start clean (training
// phase, zero clock) at the next batch boundary, and a removed office's
// in-flight batch completes before the removal applies.

package engine

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"fadewich/internal/block"
	"fadewich/internal/core"
)

// FleetConfig parameterises a Fleet.
type FleetConfig struct {
	// Offices is the number of office Systems the fleet starts with; they
	// receive the stable IDs 0..Offices-1.
	Offices int
	// System is the shared default per-office configuration, used by every
	// initial office without a PerOffice override and by AddOffice calls
	// that pass a zero configuration.
	System core.Config
	// PerOffice optionally overrides the full System configuration for
	// individual initial offices, keyed by office ID in [0, Offices).
	// Heterogeneous tenants differ here: stream count (sensor layout),
	// workstation count, MD thresholds, control timings.
	PerOffice map[int]core.Config
	// Workers caps the worker-pool width (0 selects one per CPU, 1 forces
	// sequential delivery). Output is identical for every value.
	Workers int
}

// OfficeAction is one action emitted by one office of the fleet.
type OfficeAction struct {
	// Office is the stable ID of the emitting System.
	Office int
	// Action is the System output (Action.Time is that office's clock).
	Action core.Action
}

// InputEvent routes a keyboard/mouse notification to one office, named by
// its stable ID. Tick is the index within that office's current batch
// before which the notification is delivered; events at the same tick are
// delivered in slice order.
type InputEvent struct {
	Office      int
	Workstation int
	Tick        int
}

// OfficeBatch is one office's tick payload for a Run call, addressed by
// stable office ID. Each tick is one sample per stream of that office's
// configuration (offices may have different stream counts).
//
// The payload comes in one of two forms: Ticks (one float64 slice per
// tick) or Block (the contiguous columnar buffer filled by
// rf.Network.SampleBlock, which takes precedence when both are set).
// The two are interchangeable — a Block with the same values produces a
// byte-identical action stream — but the Block form avoids the per-tick
// slice headers and keeps delivery cache-friendly. The fleet only reads
// the payload during the Run call; the caller may reuse the Block
// afterwards.
type OfficeBatch struct {
	Office int
	Ticks  [][]float64
	Block  *block.Block
}

// NumTicks returns the number of ticks the batch carries.
func (ob *OfficeBatch) NumTicks() int {
	if ob.Block != nil {
		return ob.Block.Ticks()
	}
	return len(ob.Ticks)
}

// Row returns tick t's samples (one value per stream).
func (ob *OfficeBatch) Row(t int) []float64 {
	if ob.Block != nil {
		return ob.Block.Row(t)
	}
	return ob.Ticks[t]
}

// officeState is one tenant: its stable ID, resolved configuration, the
// System (dt caches its effective tick period), and the per-batch
// action buffer reused between batches.
type officeState struct {
	id  int
	cfg core.Config
	sys *core.System
	dt  float64
	buf []OfficeAction
}

// Fleet shards its member office Systems across a worker pool. All
// methods are safe for concurrent use: batch delivery (Run, RunBatch,
// Tick) serialises on an internal lock held for the whole batch, so
// AddOffice/RemoveOffice calls from other goroutines always land at a
// batch boundary.
type Fleet struct {
	pool *Pool
	def  core.Config // shared default office configuration

	mu sync.Mutex
	// active holds the member offices in ascending ID order (IDs are
	// allocated monotonically and never reused, so append keeps order).
	active []*officeState
	byID   map[int]*officeState
	nextID int

	// Batch-delivery scratch, reused across Run calls and guarded by mu.
	// At 1024+ offices the per-call work structs, routing map, shard-run
	// headers and merge temporaries dominated Run's allocation profile
	// despite being dead the moment the call returned; pooling them makes
	// steady-state delivery allocation-free apart from the returned slice.
	workByID  map[int]*work
	workCache []work
	workList  []*work
	shardRuns [][]OfficeAction
	shardSc   []*mergeScratch
	finalSc   mergeScratch
	denseB    []OfficeBatch // RunBatch's dense-payload staging
}

// NewFleet builds the fleet with every initial office System in the
// training phase. Offices with a PerOffice entry use that configuration
// verbatim; the rest share cfg.System. Offices may be zero: the fleet
// is elastic, and a member-less fleet (a cluster worker whose shard is
// currently empty) runs fine — Run returns empty batches until
// AddOffice gives it tenants.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Offices < 0 {
		return nil, fmt.Errorf("engine: negative office count %d", cfg.Offices)
	}
	for id := range cfg.PerOffice {
		if id < 0 || id >= cfg.Offices {
			return nil, fmt.Errorf("engine: per-office config for office %d outside initial fleet of %d", id, cfg.Offices)
		}
	}
	f := &Fleet{
		pool: NewPool(cfg.Workers),
		def:  cfg.System,
		byID: make(map[int]*officeState, cfg.Offices),
	}
	for i := 0; i < cfg.Offices; i++ {
		oc := cfg.System
		if c, ok := cfg.PerOffice[i]; ok {
			oc = c
		}
		if _, err := f.addLocked(oc); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// addLocked creates one office System and registers it under the next ID.
func (f *Fleet) addLocked(cfg core.Config) (int, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return 0, fmt.Errorf("engine: office %d: %w", f.nextID, err)
	}
	st := &officeState{id: f.nextID, cfg: cfg, sys: sys, dt: sys.DT()}
	f.nextID++
	f.active = append(f.active, st)
	f.byID[st.id] = st
	return st.id, nil
}

// AddOffice joins a new tenant to the fleet and returns its stable ID.
// The office starts clean — a fresh System in the training phase with a
// zero clock — and participates from the next batch on. A completely
// zero-valued cfg inherits the fleet's shared default configuration;
// a partial cfg is used as given and rejected loudly if invalid (it is
// never silently merged with the default). Safe to call concurrently
// with batch delivery: the join lands at the next batch boundary.
func (f *Fleet) AddOffice(cfg core.Config) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cfg == (core.Config{}) {
		cfg = f.def
	}
	return f.addLocked(cfg)
}

// RemoveOffice retires a tenant from the fleet and returns its System for
// final inspection (training samples, authentication state). Any batch in
// flight completes first — the removed office's actions from that batch
// still appear in the merged stream — and the ID is never reused. Layers
// that queue ticks (stream.Ingestor) drain the office's queue before
// calling this.
func (f *Fleet) RemoveOffice(id int) (*core.System, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.byID[id]
	if st == nil {
		return nil, fmt.Errorf("engine: office %d is not a member of the fleet", id)
	}
	delete(f.byID, id)
	for i, o := range f.active {
		if o == st {
			f.active = append(f.active[:i], f.active[i+1:]...)
			break
		}
	}
	return st.sys, nil
}

// Offices returns the current fleet size.
func (f *Fleet) Offices() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.active)
}

// IDs returns the stable IDs of the member offices in ascending order —
// the order dense RunBatch/Tick payloads are interpreted in.
func (f *Fleet) IDs() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]int, len(f.active))
	for i, st := range f.active {
		ids[i] = st.id
	}
	return ids
}

// System returns office id's System for direct inspection (training
// sample counts, phase, authentication state), or nil for a non-member.
// The System must not be ticked directly while the fleet is also
// delivering batches.
func (f *Fleet) System(id int) *core.System {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st := f.byID[id]; st != nil {
		return st.sys
	}
	return nil
}

// Config returns office id's resolved configuration and whether the
// office is a member.
func (f *Fleet) Config(id int) (core.Config, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st := f.byID[id]; st != nil {
		return st.cfg, true
	}
	return core.Config{}, false
}

// DefaultConfig returns the fleet's shared default office configuration.
func (f *Fleet) DefaultConfig() core.Config { return f.def }

// NotifyInput routes a single input notification to one office (by ID)
// between batches. Unknown offices are ignored. For inputs interleaved
// with a batch's ticks, pass InputEvents to Run/RunBatch instead.
func (f *Fleet) NotifyInput(office, workstation int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st := f.byID[office]; st != nil {
		st.sys.NotifyInput(workstation)
	}
}

// Run delivers one batch to the named offices and returns the merged
// action stream. Each OfficeBatch addresses a member office by stable ID
// (at most one entry per office); offices without an entry do not advance
// this batch. inputs are routed to their office (by ID) and delivered, in
// slice order, before the tick they name; events whose tick exceeds the
// office's batch length — or whose office has no batch entry — are
// delivered after the office's last tick of the batch.
//
// The merged stream is ordered by action time, ties broken by office ID,
// then by each office's own emission order — a total order that is
// byte-identical for every worker count and independent of the order of
// the batch entries.
//
// The returned slice is freshly allocated on every call and never touched
// by the fleet afterwards: callers (and action sinks) may retain previous
// batches indefinitely. Only the internal per-office buffers are reused
// between batches.
//
// Run holds the membership lock for the whole batch, so concurrent
// AddOffice/RemoveOffice calls take effect at the next batch boundary.
func (f *Fleet) Run(batches []OfficeBatch, inputs []InputEvent) ([]OfficeAction, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runLocked(batches, inputs)
}

// work is one office's share of a batch: its payload plus its input
// events.
type work struct {
	st    *officeState
	batch OfficeBatch
	evs   []InputEvent
	seen  bool // an OfficeBatch entry named this office
}

func (f *Fleet) runLocked(batches []OfficeBatch, inputs []InputEvent) ([]OfficeAction, error) {
	// A batch routes through fleet-owned scratch: the work array is
	// pre-sized to the worst case (one office per entry) so taking
	// pointers into it is safe, the routing map is cleared in place, and
	// event slices keep their capacity from previous batches.
	need := len(batches) + len(inputs)
	if f.workByID == nil {
		f.workByID = make(map[int]*work, need)
	} else {
		clear(f.workByID)
	}
	if cap(f.workCache) < need {
		f.workCache = make([]work, need)
	}
	cache := f.workCache[:cap(f.workCache)]
	nw := 0
	worklist := f.workList[:0]
	lookup := func(id int) (*work, error) {
		if w := f.workByID[id]; w != nil {
			return w, nil
		}
		st := f.byID[id]
		if st == nil {
			return nil, fmt.Errorf("engine: office %d is not a member of the fleet", id)
		}
		w := &cache[nw]
		nw++
		*w = work{st: st, evs: w.evs[:0]}
		f.workByID[id] = w
		worklist = append(worklist, w)
		return w, nil
	}
	for _, ob := range batches {
		w, err := lookup(ob.Office)
		if err != nil {
			return nil, err
		}
		if w.seen {
			return nil, fmt.Errorf("engine: duplicate batch entry for office %d", ob.Office)
		}
		w.seen = true
		w.batch = ob
	}
	for _, ev := range inputs {
		w, err := lookup(ev.Office)
		if err != nil {
			return nil, fmt.Errorf("engine: input event: %w", err)
		}
		w.evs = append(w.evs, ev)
	}
	f.workList = worklist
	if len(worklist) == 0 {
		return nil, nil // empty batch: nothing to deliver or merge
	}
	// Ascending-ID order makes the shard partition — and with it the
	// merge's office-ID tie-break — independent of the caller's entry
	// order.
	slices.SortFunc(worklist, func(a, b *work) int { return a.st.id - b.st.id })

	// Shard-local batching: one pool task runs a contiguous ascending-ID
	// range of offices and merges their action runs locally, so the final
	// merge fans in over at most ~4·workers runs however large the fleet
	// grows.
	size := shardSize(len(worklist), f.pool.Workers())
	numShards := 0
	if len(worklist) > 0 {
		numShards = (len(worklist) + size - 1) / size
	}
	if cap(f.shardRuns) < numShards {
		f.shardRuns = make([][]OfficeAction, numShards)
	}
	runs := f.shardRuns[:numShards]
	for len(f.shardSc) < numShards {
		f.shardSc = append(f.shardSc, new(mergeScratch))
	}
	err := f.pool.Map(numShards, func(si int) error {
		lo := si * size
		hi := lo + size
		if hi > len(worklist) {
			hi = len(worklist)
		}
		shard := worklist[lo:hi]
		for _, w := range shard {
			sys := w.st.sys
			out := w.st.buf[:0]
			if w.batch.Block != nil && len(w.evs) == 0 {
				// Columnar fast path: no events to interleave, so the
				// whole block ingests in one TickBlock call
				// (bit-identical to the per-tick loop below).
				for _, a := range sys.TickBlock(w.batch.Block) {
					out = append(out, OfficeAction{Office: w.st.id, Action: a})
				}
				w.st.buf = out
				continue
			}
			// evs is ordered by slice position; deliver all events with
			// Tick <= t before tick t. Sort stably by tick so out-of-order
			// caller input still lands deterministically.
			slices.SortStableFunc(w.evs, func(a, b InputEvent) int { return a.Tick - b.Tick })
			next := 0
			for t, n := 0, w.batch.NumTicks(); t < n; t++ {
				for next < len(w.evs) && w.evs[next].Tick <= t {
					sys.NotifyInput(w.evs[next].Workstation)
					next++
				}
				for _, a := range sys.Tick(w.batch.Row(t)) {
					out = append(out, OfficeAction{Office: w.st.id, Action: a})
				}
			}
			for ; next < len(w.evs); next++ {
				sys.NotifyInput(w.evs[next].Workstation)
			}
			w.st.buf = out
		}
		sc := f.shardSc[si]
		officeRuns := sc.officeRuns[:0]
		shardDT := shard[0].st.dt
		for _, w := range shard {
			officeRuns = append(officeRuns, w.st.buf)
			if w.st.dt != shardDT {
				shardDT = 0 // mixed tick periods: no shared grid
			}
		}
		sc.officeRuns = officeRuns
		// A single shard's merge IS the batch result and must be fresh
		// (Run's contract lets callers keep it); intermediate shard runs
		// reuse the scratch output buffer instead.
		runs[si] = sc.merge(officeRuns, shardDT, numShards == 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Drop payload references now that delivery is done, so the pooled
	// work structs never pin a caller's Block or tick slices past the
	// Run call.
	for i := range cache[:nw] {
		cache[i].batch = OfficeBatch{}
	}
	if numShards == 1 {
		return runs[0], nil // merged fresh by the shard task above
	}
	fleetDT := worklist[0].st.dt
	for _, w := range worklist {
		if w.st.dt != fleetDT {
			fleetDT = 0 // mixed tick periods: no shared grid
		}
	}
	return f.finalSc.merge(runs, fleetDT, true), nil
}

// mergeScratch owns the reusable temporaries of a merge call — the
// counting-sort order/starts arrays, the heap-merge cursor state, the
// shard pass's run headers — plus an optional reusable output buffer.
// The zero value is ready to use. One scratch serves one goroutine at a
// time; the fleet keeps one per shard slot plus one for the final pass.
type mergeScratch struct {
	out        []OfficeAction
	officeRuns [][]OfficeAction // shard pass: per-office run headers
	order      []int64
	starts     []int32
	pos        []int
	heap       []int
}

// outBuf returns an empty output slice with capacity n: a fresh
// allocation when the result escapes to the caller (fresh), the reusable
// scratch buffer otherwise.
func (sc *mergeScratch) outBuf(n int, fresh bool) []OfficeAction {
	if fresh {
		return make([]OfficeAction, 0, n)
	}
	if cap(sc.out) < n {
		sc.out = make([]OfficeAction, 0, n)
	}
	return sc.out[:0]
}

// orderBuf returns an n-element int64 buffer with undefined contents.
func (sc *mergeScratch) orderBuf(n int) []int64 {
	if cap(sc.order) < n {
		sc.order = make([]int64, n)
	}
	return sc.order[:n]
}

// startsBuf returns an n-element zeroed int32 buffer.
func (sc *mergeScratch) startsBuf(n int) []int32 {
	if cap(sc.starts) < n {
		sc.starts = make([]int32, n)
		return sc.starts
	}
	s := sc.starts[:n]
	clear(s)
	return s
}

// posBuf returns an n-element zeroed int buffer.
func (sc *mergeScratch) posBuf(n int) []int {
	if cap(sc.pos) < n {
		sc.pos = make([]int, n)
		return sc.pos
	}
	p := sc.pos[:n]
	clear(p)
	return p
}

// bucket merges by counting sort over the batch's tick span.
// dt is the tick period shared by every participating office; action
// times are float64(tick)·dt exactly (System.Tick stamps them that
// way), so the integer tick is recovered exactly by rounding t/dt and
// verifying the product round-trips — any action that fails the
// round-trip (clock drift, foreign times) aborts the fast path. Ranking
// is then a dense [minTick, maxTick] counting sort: count, prefix-sum,
// scatter each run in input order. Within one tick bucket the scatter
// writes run 0's actions before run 1's and preserves each run's
// internal order, which equals the (time, office, emission) total order
// exactly when the runs' office ranges are ascending and disjoint — the
// shape both merge passes produce (per-office runs in ascending ID
// order; shard runs over ascending ID ranges). It returns nil — fall
// back to the heap merge — when dt is 0 (no shared grid), the
// precondition fails, or the tick span is too sparse for a dense count
// array to pay off (e.g. a fresh joiner's near-zero clock merged with
// multi-day clocks).
func (sc *mergeScratch) bucket(runs [][]OfficeAction, total int, dt float64, fresh bool) []OfficeAction {
	if dt <= 0 || total < 32 {
		return nil
	}
	// Verify ascending, disjoint office ranges and recover every
	// action's tick in one pass.
	order := sc.orderBuf(total)
	minTick, maxTick := int64(1<<62), int64(-1<<62)
	prevMax, n := -1, 0
	for _, r := range runs {
		if len(r) == 0 {
			continue
		}
		lo, hi := r[0].Office, r[0].Office
		for i := range r {
			if o := r[i].Office; o < lo {
				lo = o
			} else if o > hi {
				hi = o
			}
			t := r[i].Action.Time
			k := int64(math.Round(t / dt))
			if float64(k)*dt != t {
				return nil // not on this grid
			}
			if k < minTick {
				minTick = k
			}
			if k > maxTick {
				maxTick = k
			}
			order[n] = k
			n++
		}
		if lo <= prevMax {
			return nil
		}
		prevMax = hi
	}
	span := maxTick - minTick + 1
	if span > 4*int64(total)+64 {
		return nil // sparse: the count array would dwarf the data
	}

	// Counting sort: bucket sizes, prefix sums, scatter.
	starts := sc.startsBuf(int(span) + 1)
	for _, k := range order[:n] {
		starts[k-minTick+1]++
	}
	for i := int64(1); i <= span; i++ {
		starts[i] += starts[i-1]
	}
	out := sc.outBuf(total, fresh)[:total]
	n = 0
	for _, r := range runs {
		for i := range r {
			b := order[n] - minTick
			n++
			out[starts[b]] = r[i]
			starts[b]++
		}
	}
	return out
}

// shardSize returns how many offices one pool task processes per batch —
// the shard-local batching heuristic. Small fleets get one office per
// task (maximum tick-delivery parallelism); once the fleet outgrows
// ~4 tasks per worker, shards grow with the office count instead, so the
// per-batch task count and the final merge fan-in stay bounded at
// ~4·workers however many offices join. Per merged action that costs
// O(log officesPerShard) on the parallel shard pass plus O(log shards)
// on the final pass — flat to falling as offices scale.
func shardSize(offices, workers int) int {
	maxShards := 4 * workers
	if maxShards < 1 {
		maxShards = 1
	}
	size := (offices + maxShards - 1) / maxShards
	if size < 1 {
		size = 1
	}
	return size
}

// RunBatch delivers a dense batch: ticks[i] holds the RSSI ticks of the
// i-th member office in ascending-ID order (for a fleet that has seen no
// churn, office IDs equal positions 0..N-1), and len(ticks) must equal
// the current fleet size. Offices may supply different tick counts — each
// System advances its own clock by its own count. See Run for the input
// delivery and ordering contract; elastic callers that add and remove
// offices mid-run should prefer the ID-addressed Run.
func (f *Fleet) RunBatch(ticks [][][]float64, inputs []InputEvent) ([]OfficeAction, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(ticks) != len(f.active) {
		return nil, fmt.Errorf("engine: batch has %d offices, fleet has %d", len(ticks), len(f.active))
	}
	if cap(f.denseB) < len(ticks) {
		f.denseB = make([]OfficeBatch, len(ticks))
	}
	batches := f.denseB[:len(ticks)]
	for i, st := range f.active {
		batches[i] = OfficeBatch{Office: st.id, Ticks: ticks[i]}
	}
	out, err := f.runLocked(batches, inputs)
	for i := range batches {
		batches[i] = OfficeBatch{} // don't pin the caller's tick slices
	}
	return out, err
}

// Tick delivers one tick to every member office (rssi[i] is the sample
// vector of the i-th office in ascending-ID order) and returns the merged
// actions of that tick.
func (f *Fleet) Tick(rssi [][]float64) ([]OfficeAction, error) {
	batch := make([][][]float64, len(rssi))
	for i := range rssi {
		batch[i] = [][]float64{rssi[i]}
	}
	return f.RunBatch(batch, nil)
}

// mergeRuns k-way-merges action runs into one fresh slice. Every input
// run must already be internally ordered by (time, office ID, emission
// order) — which holds both for a single office's buffer (System clocks
// are non-decreasing and emission order breaks ties) and for the output
// of a previous mergeRuns pass — and the runs' office-ID sets must be
// disjoint. The result is the global total order (time, then office ID,
// then per-office emission order): popping FIFO from each run preserves
// emission order, and the (time, office) comparator settles every
// cross-run tie because equal (time, office) pairs can only sit in the
// same run. It always copies into a fresh slice — office buffers are
// reused by the next batch, and Run promises callers the returned
// stream is theirs to keep.
//
// Two strategies implement the same order. Action times are tick-grid
// values (System.Tick stamps tick·DT), so a fleet batch usually has few
// distinct times shared by many actions; the bucket pass counting-sorts
// over the distinct times at O(1) comparisons per action, independent
// of the merge fan-in. When the precondition it needs is absent —
// ascending run office ranges — or times are mostly unique
// (heterogeneous DT drift), the index-heap merge takes over.
func mergeRuns(runs [][]OfficeAction, dt float64) []OfficeAction {
	var sc mergeScratch
	return sc.merge(runs, dt, true)
}

// MergeRuns is the exported k-way merge over already-ordered action
// runs with pairwise-disjoint office-ID sets, producing one slice in
// the global (time, office ID, emission order) order. It is the same
// merge the fleet applies to its per-shard runs; the cluster stream
// router reuses it as the second level of the two-level shard merge,
// combining per-worker sub-batches of one epoch back into the exact
// batch a single-process fleet would have dispatched. Pass dt 0 when
// the runs mix sampling periods (or the period is unknown): the merge
// then always takes the comparison-based path, which assumes nothing
// about the time grid.
func MergeRuns(runs [][]OfficeAction, dt float64) []OfficeAction {
	return mergeRuns(runs, dt)
}

// merge is mergeRuns with explicit buffer ownership: temporaries always
// come from the scratch, and the result is freshly allocated when fresh
// is set (the caller keeps it) or scratch-backed otherwise (valid until
// the scratch's next merge — the fleet's intermediate shard runs).
func (sc *mergeScratch) merge(runs [][]OfficeAction, dt float64, fresh bool) []OfficeAction {
	total, nonEmpty := 0, 0
	for _, r := range runs {
		total += len(r)
		if len(r) > 0 {
			nonEmpty++
		}
	}
	if total == 0 {
		return nil
	}
	if nonEmpty == 1 {
		out := sc.outBuf(total, fresh)
		for _, r := range runs {
			out = append(out, r...)
		}
		return out
	}
	if merged := sc.bucket(runs, total, dt, fresh); merged != nil {
		return merged
	}

	// Index heap over the non-empty runs, keyed by each run's head.
	out := sc.outBuf(total, fresh)
	pos := sc.posBuf(len(runs))
	less := func(a, b int) bool {
		x, y := &runs[a][pos[a]], &runs[b][pos[b]]
		if x.Action.Time != y.Action.Time {
			return x.Action.Time < y.Action.Time
		}
		return x.Office < y.Office
	}
	heap := sc.heap[:0]
	for ri, r := range runs {
		if len(r) > 0 {
			heap = append(heap, ri)
		}
	}
	sc.heap = heap
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(heap) {
				return
			}
			m := l
			if r := l + 1; r < len(heap) && less(heap[r], heap[l]) {
				m = r
			}
			if !less(heap[m], heap[i]) {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(heap) > 0 {
		ri := heap[0]
		run := runs[ri]
		p := pos[ri]
		// Segment galloping: the winner keeps winning while its next
		// actions stay strictly below the second-best head (strict is
		// exact — a cross-run tie on (time, office) cannot exist, the
		// runs' office sets are disjoint), so the whole stretch is
		// copied in one append instead of one heap cycle per action.
		// Bursty streams (per-office alert cascades) merge at ~one
		// comparison per action this way, independent of fan-in.
		limit := p + 1
		if len(heap) > 1 {
			si := heap[1]
			if len(heap) > 2 && less(heap[2], heap[1]) {
				si = heap[2]
			}
			s := &runs[si][pos[si]]
			for limit < len(run) {
				x := &run[limit]
				if x.Action.Time != s.Action.Time {
					if x.Action.Time > s.Action.Time {
						break
					}
				} else if x.Office > s.Office {
					break
				}
				limit++
			}
		} else {
			limit = len(run)
		}
		out = append(out, run[p:limit]...)
		pos[ri] = limit
		if limit < len(run) {
			siftDown(0)
			continue
		}
		heap[0] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		siftDown(0)
	}
	return out
}

// FinishTraining moves every member office to the online phase, fanning
// the SVM training out across the pool. It fails on the first office (in
// ascending-ID order) whose training fails, wrapping the office ID.
func (f *Fleet) FinishTraining() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	active := f.active
	return f.pool.Map(len(active), func(i int) error {
		if err := active[i].sys.FinishTraining(); err != nil {
			return fmt.Errorf("engine: office %d: %w", active[i].id, err)
		}
		return nil
	})
}

// FinishTrainingOffice moves one member office (by stable ID) to the
// online phase. Unlike FinishTraining it is per-office, so a caller
// serving a heterogeneous fleet can train the offices that are ready
// and leave late joiners collecting samples — the serve daemon's
// /v1/train endpoint does exactly that. Non-members are an error.
func (f *Fleet) FinishTrainingOffice(id int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.byID[id]
	if st == nil {
		return fmt.Errorf("engine: office %d is not a fleet member", id)
	}
	if err := st.sys.FinishTraining(); err != nil {
		return fmt.Errorf("engine: office %d: %w", id, err)
	}
	return nil
}

// TrainingSamples returns the total labelled training samples collected
// across the member offices.
func (f *Fleet) TrainingSamples() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for _, st := range f.active {
		total += st.sys.TrainingSamples()
	}
	return total
}
