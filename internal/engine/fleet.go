// Fleet: a sharded multi-office deployment of core.System instances.
//
// The paper evaluates one 6 m × 3 m office; a production deployment
// monitors thousands. Each office is an independent core.System — the
// System itself stays single-goroutine and unaware of the fleet — and the
// Fleet owns all routing: it delivers batched RSSI ticks and input
// notifications to every office, shards the offices across pool workers,
// and merges the per-office action streams into one globally time-ordered
// stream tagged with the office index.

package engine

import (
	"fmt"
	"sort"

	"fadewich/internal/core"
)

// FleetConfig parameterises a Fleet.
type FleetConfig struct {
	// Offices is the number of independent office Systems to run.
	Offices int
	// System is the per-office configuration. Every office currently
	// shares the same configuration; per-office layouts differ only in
	// the tick data fed to them.
	System core.Config
	// Workers caps the worker-pool width (0 selects one per CPU, 1 forces
	// sequential delivery). Output is identical for every value.
	Workers int
}

// OfficeAction is one action emitted by one office of the fleet.
type OfficeAction struct {
	// Office is the index of the emitting System.
	Office int
	// Action is the System output (Action.Time is that office's clock).
	Action core.Action
}

// InputEvent routes a keyboard/mouse notification to one office. Tick is
// the index within the current batch before which the notification is
// delivered; events at the same tick are delivered in slice order.
type InputEvent struct {
	Office      int
	Workstation int
	Tick        int
}

// Fleet shards N office Systems across a worker pool. Methods must be
// called from one goroutine; the fleet fans work out internally.
type Fleet struct {
	cfg     FleetConfig
	pool    *Pool
	systems []*core.System
	// perOffice[i] accumulates office i's actions during a batch; the
	// slices are reused between batches.
	perOffice [][]OfficeAction
}

// NewFleet builds the fleet with every office System in the training
// phase.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Offices < 1 {
		return nil, fmt.Errorf("engine: fleet needs at least one office, got %d", cfg.Offices)
	}
	f := &Fleet{
		cfg:       cfg,
		pool:      NewPool(cfg.Workers),
		systems:   make([]*core.System, cfg.Offices),
		perOffice: make([][]OfficeAction, cfg.Offices),
	}
	for i := range f.systems {
		sys, err := core.NewSystem(cfg.System)
		if err != nil {
			return nil, fmt.Errorf("engine: office %d: %w", i, err)
		}
		f.systems[i] = sys
	}
	return f, nil
}

// Offices returns the fleet size.
func (f *Fleet) Offices() int { return len(f.systems) }

// System returns office i's System for direct inspection (training
// sample counts, phase, authentication state). The System must not be
// ticked directly while the fleet is also delivering batches.
func (f *Fleet) System(i int) *core.System { return f.systems[i] }

// NotifyInput routes a single input notification to one office between
// batches. For inputs interleaved with a batch's ticks, pass InputEvents
// to RunBatch instead.
func (f *Fleet) NotifyInput(office, workstation int) {
	if office < 0 || office >= len(f.systems) {
		return
	}
	f.systems[office].NotifyInput(workstation)
}

// RunBatch delivers a batch of ticks to every office and returns the
// merged action stream. ticks[i] holds office i's RSSI ticks (each one
// sample per stream); offices may supply different tick counts — each
// system advances its own clock by its own count. inputs are routed to
// their office and delivered, in slice order, before the tick they name;
// events whose tick exceeds the office's batch length are delivered after
// the last tick.
//
// The merged stream is ordered by action time, ties broken by office
// index, then by each office's own emission order — a total order that is
// byte-identical for every worker count.
//
// The returned slice is freshly allocated on every call and never touched
// by the fleet afterwards: callers (and action sinks) may retain previous
// batches indefinitely. Only the internal per-office buffers are reused
// between batches.
func (f *Fleet) RunBatch(ticks [][][]float64, inputs []InputEvent) ([]OfficeAction, error) {
	if len(ticks) != len(f.systems) {
		return nil, fmt.Errorf("engine: batch has %d offices, fleet has %d", len(ticks), len(f.systems))
	}
	// Bucket inputs per office, preserving slice order within a bucket.
	var byOffice map[int][]InputEvent
	if len(inputs) > 0 {
		byOffice = make(map[int][]InputEvent)
		for _, ev := range inputs {
			if ev.Office < 0 || ev.Office >= len(f.systems) {
				return nil, fmt.Errorf("engine: input event for office %d outside fleet of %d", ev.Office, len(f.systems))
			}
			byOffice[ev.Office] = append(byOffice[ev.Office], ev)
		}
	}

	err := f.pool.Map(len(f.systems), func(i int) error {
		sys := f.systems[i]
		out := f.perOffice[i][:0]
		evs := byOffice[i]
		// evs is ordered by slice position; deliver all events with
		// Tick <= t before tick t. Sort stably by tick so out-of-order
		// caller input still lands deterministically.
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].Tick < evs[b].Tick })
		next := 0
		for t, rssi := range ticks[i] {
			for next < len(evs) && evs[next].Tick <= t {
				sys.NotifyInput(evs[next].Workstation)
				next++
			}
			for _, a := range sys.Tick(rssi) {
				out = append(out, OfficeAction{Office: i, Action: a})
			}
		}
		for ; next < len(evs); next++ {
			sys.NotifyInput(evs[next].Workstation)
		}
		f.perOffice[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f.merge(), nil
}

// Tick delivers one tick to every office (rssi[i] is office i's sample
// vector) and returns the merged actions of that tick.
func (f *Fleet) Tick(rssi [][]float64) ([]OfficeAction, error) {
	batch := make([][][]float64, len(rssi))
	for i := range rssi {
		batch[i] = [][]float64{rssi[i]}
	}
	return f.RunBatch(batch, nil)
}

// merge concatenates the per-office buffers and sorts them into the
// global order (time, then office, then per-office emission order). It
// must copy into a fresh slice — the per-office buffers are reused by the
// next batch, and RunBatch promises callers the returned stream is theirs
// to keep.
func (f *Fleet) merge() []OfficeAction {
	total := 0
	for _, acts := range f.perOffice {
		total += len(acts)
	}
	if total == 0 {
		return nil
	}
	merged := make([]OfficeAction, 0, total)
	for _, acts := range f.perOffice {
		merged = append(merged, acts...)
	}
	sort.SliceStable(merged, func(a, b int) bool {
		if merged[a].Action.Time != merged[b].Action.Time {
			return merged[a].Action.Time < merged[b].Action.Time
		}
		return merged[a].Office < merged[b].Office
	})
	return merged
}

// FinishTraining moves every office to the online phase, fanning the SVM
// training out across the pool. It fails on the first office (in index
// order) whose training fails, wrapping the office index.
func (f *Fleet) FinishTraining() error {
	return f.pool.Map(len(f.systems), func(i int) error {
		if err := f.systems[i].FinishTraining(); err != nil {
			return fmt.Errorf("engine: office %d: %w", i, err)
		}
		return nil
	})
}

// TrainingSamples returns the total labelled training samples collected
// across the fleet.
func (f *Fleet) TrainingSamples() int {
	total := 0
	for _, sys := range f.systems {
		total += sys.TrainingSamples()
	}
	return total
}
