// Package engine is the concurrent fleet layer of the repository: a
// deterministic worker pool plus a Fleet that shards many independent
// core.System instances (one per office/tenant) across the pool. Every
// other layer — the simulator's parallel day generation, the evaluation
// harness's experiment fan-outs, and multi-office serving — runs on top
// of the same two primitives.
//
// Determinism is the design constraint that shapes the API. Work is
// always index-addressed: a job writes its result into a caller-owned
// slot chosen by the job index, never into a shared accumulator, so the
// assembled output is byte-identical regardless of worker count or
// goroutine scheduling. A caller that runs with Workers=1 and Workers=64
// must not be able to tell the difference from the results.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-width worker pool executing index-addressed jobs. The
// zero value is not usable; construct one with NewPool. A Pool holds no
// goroutines between calls — workers are spawned per Map call — so it is
// cheap to create and safe to share.
//
// The width is a shared budget, not a per-call multiplier: nested Map
// calls on the same Pool (a sweep worker fanning out again) draw extra
// goroutines from one token pot, so total concurrency stays at the
// configured width instead of width².
type Pool struct {
	workers int
	// tokens gates the extra goroutines a Map call may spawn beyond the
	// calling goroutine itself (capacity workers−1). A Map that finds the
	// pot empty — typically because it is nested inside another Map on
	// the same pool — simply runs its jobs on the caller's goroutine.
	tokens chan struct{}
}

// NewPool returns a pool of the given width. Non-positive widths select
// runtime.GOMAXPROCS(0), i.e. one worker per available CPU.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, tokens: make(chan struct{}, workers-1)}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Map runs fn(i) for every i in [0, n) across the pool's workers and
// blocks until all dispatched jobs finish. Jobs are dispatched in index
// order; after the first failure no further jobs start, already-running
// jobs complete, and the error of the lowest failing index is returned —
// the same error a sequential loop would have stopped on, independent of
// scheduling.
//
// fn must confine its effects to data owned by index i (typically a
// pre-allocated result slot); it must not append to shared slices or
// write shared maps without its own synchronisation.
func (p *Pool) Map(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var (
		next atomic.Int64
		// errIdx is the lowest failing index seen so far (or n). Jobs with
		// a higher index are skipped, but any job below it always runs, so
		// the error finally returned is the one the sequential loop would
		// have stopped on — independent of goroutine scheduling.
		errIdx atomic.Int64
		mu     sync.Mutex
		err    error
		wg     sync.WaitGroup
	)
	errIdx.Store(int64(n))
	worker := func() {
		for {
			i := int64(next.Add(1) - 1)
			if i >= int64(n) || i > errIdx.Load() {
				return
			}
			if e := fn(int(i)); e != nil {
				mu.Lock()
				if i < errIdx.Load() {
					errIdx.Store(i)
					err = e
				}
				mu.Unlock()
			}
		}
	}
	// Spawn helpers only while budget tokens are free; the calling
	// goroutine always participates, so a Map with an empty pot (nested
	// inside another Map) degrades to a plain sequential loop.
	helpers := p.workers
	if helpers > n {
		helpers = n
	}
spawn:
	for h := 0; h < helpers-1; h++ {
		select {
		case p.tokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.tokens }()
				worker()
			}()
		default:
			break spawn // budget exhausted
		}
	}
	worker()
	wg.Wait()
	return err
}

// Gather is Map plus result collection: it runs fn(i) for every i in
// [0, n) and returns the results in index order.
func Gather[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.Map(n, func(i int) error {
		v, e := fn(i)
		if e != nil {
			return fmt.Errorf("job %d: %w", i, e)
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
