package engine

import (
	"reflect"
	"strings"
	"testing"

	"fadewich/internal/control"
	"fadewich/internal/core"
	"fadewich/internal/rng"
)

// fleetCfg is a small office System whose timeout backstop guarantees
// actions without needing a trained classifier.
func fleetCfg(offices, workers int) FleetConfig {
	return FleetConfig{
		Offices: offices,
		Workers: workers,
		System: core.Config{
			Streams:      2,
			Workstations: 1,
			Params:       control.Params{TimeoutSec: 30},
		},
	}
}

// fleetScenario builds a deterministic 64-office workload: per-office
// quiet RSSI ticks and one staggered login per office, so the timeout
// deauthentications land at distinct, office-dependent times.
func fleetScenario(offices, ticks int) (batch [][][]float64, inputs []InputEvent) {
	batch = make([][][]float64, offices)
	for o := 0; o < offices; o++ {
		src := rng.New(uint64(o) + 1)
		days := make([][]float64, ticks)
		for t := range days {
			days[t] = []float64{-60 + src.Normal(0, 0.4), -58 + src.Normal(0, 0.4)}
		}
		batch[o] = days
		inputs = append(inputs, InputEvent{Office: o, Workstation: 0, Tick: o % 17})
	}
	return batch, inputs
}

// runFleet drives one scenario through a fleet with the given worker
// count and returns the merged action stream.
func runFleet(t *testing.T, offices, workers, ticks int) []OfficeAction {
	t.Helper()
	f, err := NewFleet(fleetCfg(offices, workers))
	if err != nil {
		t.Fatal(err)
	}
	batch, inputs := fleetScenario(offices, ticks)
	// Split the scenario into several batches to exercise batch-boundary
	// state carry-over.
	const batchTicks = 77
	var out []OfficeAction
	for start := 0; start < ticks; start += batchTicks {
		end := start + batchTicks
		if end > ticks {
			end = ticks
		}
		sub := make([][][]float64, offices)
		for o := range sub {
			sub[o] = batch[o][start:end]
		}
		var evs []InputEvent
		for _, ev := range inputs {
			if ev.Tick >= start && ev.Tick < end {
				ev.Tick -= start
				evs = append(evs, ev)
			}
		}
		acts, err := f.RunBatch(sub, evs)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, acts...)
	}
	return out
}

func TestFleet64OfficesDeterministicAcrossWorkerCounts(t *testing.T) {
	const offices, ticks = 64, 260
	want := runFleet(t, offices, 1, ticks)
	if len(want) == 0 {
		t.Fatal("scenario produced no actions; the determinism check is vacuous")
	}
	for _, workers := range []int{2, 4, 8} {
		got := runFleet(t, offices, workers, ticks)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: merged stream differs from sequential (%d vs %d actions)",
				workers, len(got), len(want))
		}
	}
}

func TestFleetMatchesIndependentSystems(t *testing.T) {
	const offices, ticks = 16, 220
	got := runFleet(t, offices, 8, ticks)

	// Reference: drive each office as a standalone System in a plain loop.
	batch, inputs := fleetScenario(offices, ticks)
	var want []OfficeAction
	for o := 0; o < offices; o++ {
		sys, err := core.NewSystem(fleetCfg(offices, 1).System)
		if err != nil {
			t.Fatal(err)
		}
		inputTick := -1
		for _, ev := range inputs {
			if ev.Office == o {
				inputTick = ev.Tick
			}
		}
		for tk := 0; tk < ticks; tk++ {
			if tk == inputTick {
				sys.NotifyInput(0)
			}
			for _, a := range sys.Tick(batch[o][tk]) {
				want = append(want, OfficeAction{Office: o, Action: a})
			}
		}
	}
	want = sortReference(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fleet stream differs from independent systems: %d vs %d actions", len(got), len(want))
	}
}

// sortReference applies the fleet's documented total order to a reference
// action list.
func sortReference(acts []OfficeAction) []OfficeAction {
	out := make([]OfficeAction, len(acts))
	copy(out, acts)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.Action.Time < a.Action.Time || (b.Action.Time == a.Action.Time && b.Office < a.Office) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}

func TestFleetMergedStreamIsTimeOrdered(t *testing.T) {
	acts := runFleet(t, 64, 4, 260)
	for i := 1; i < len(acts); i++ {
		a, b := acts[i-1], acts[i]
		if b.Action.Time < a.Action.Time {
			t.Fatalf("action %d at %.2fs precedes %d at %.2fs", i, b.Action.Time, i-1, a.Action.Time)
		}
		if b.Action.Time == a.Action.Time && b.Office < a.Office {
			t.Fatalf("tie at %.2fs breaks office order: %d before %d", a.Action.Time, a.Office, b.Office)
		}
	}
}

// TestFleetRetainedBatchNeverMutated is the regression test for the
// per-office buffer reuse: a caller (or action sink) retaining a previous
// batch's []OfficeAction must never see it change as later batches run,
// even though the fleet reuses its internal accumulation buffers.
func TestFleetRetainedBatchNeverMutated(t *testing.T) {
	const offices, ticks = 16, 240
	f, err := NewFleet(fleetCfg(offices, 4))
	if err != nil {
		t.Fatal(err)
	}
	batch, inputs := fleetScenario(offices, ticks)

	// Retain every batch's stream and an immediate deep copy of it.
	var retained [][]OfficeAction
	var snapshots [][]OfficeAction
	const batchTicks = 60
	for start := 0; start < ticks; start += batchTicks {
		end := start + batchTicks
		if end > ticks {
			end = ticks
		}
		sub := make([][][]float64, offices)
		for o := range sub {
			sub[o] = batch[o][start:end]
		}
		var evs []InputEvent
		for _, ev := range inputs {
			if ev.Tick >= start && ev.Tick < end {
				ev.Tick -= start
				evs = append(evs, ev)
			}
		}
		acts, err := f.RunBatch(sub, evs)
		if err != nil {
			t.Fatal(err)
		}
		retained = append(retained, acts)
		snapshots = append(snapshots, append([]OfficeAction(nil), acts...))
	}

	total := 0
	for _, acts := range retained {
		total += len(acts)
	}
	if total == 0 {
		t.Fatal("scenario produced no actions; the aliasing check is vacuous")
	}
	for i := range retained {
		if !reflect.DeepEqual(retained[i], snapshots[i]) {
			t.Fatalf("batch %d's retained stream was mutated by a later batch", i)
		}
	}
}

func TestFleetInputRouting(t *testing.T) {
	f, err := NewFleet(fleetCfg(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	f.NotifyInput(1, 0)
	f.NotifyInput(-1, 0) // ignored, must not panic
	f.NotifyInput(99, 0)
	if f.System(0).Authenticated(0) || !f.System(1).Authenticated(0) || f.System(2).Authenticated(0) {
		t.Fatal("NotifyInput routed to the wrong office")
	}
}

func TestFleetRunBatchValidation(t *testing.T) {
	f, err := NewFleet(fleetCfg(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunBatch(make([][][]float64, 3), nil); err == nil {
		t.Fatal("office-count mismatch accepted")
	}
	batch := [][][]float64{{{-60, -60}}, {{-60, -60}}}
	if _, err := f.RunBatch(batch, []InputEvent{{Office: 5}}); err == nil {
		t.Fatal("out-of-range input office accepted")
	}
}

func TestFleetTickSingle(t *testing.T) {
	f, err := NewFleet(fleetCfg(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Tick([][]float64{{-60, -60}, {-61, -59}}); err != nil {
		t.Fatal(err)
	}
	if got := f.System(0).Now(); got != 0.2 {
		t.Fatalf("office 0 clock %.2f after one tick, want 0.2", got)
	}
}

func TestFleetFinishTrainingReportsFirstFailingOffice(t *testing.T) {
	f, err := NewFleet(fleetCfg(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	err = f.FinishTraining()
	if err == nil {
		t.Fatal("training with zero samples succeeded")
	}
	if !strings.Contains(err.Error(), "office 0") {
		t.Fatalf("error %q does not name office 0", err)
	}
	if f.TrainingSamples() != 0 {
		t.Fatalf("phantom training samples: %d", f.TrainingSamples())
	}
}

func TestNewFleetValidation(t *testing.T) {
	if _, err := NewFleet(FleetConfig{Offices: 0}); err == nil {
		t.Fatal("zero offices accepted")
	}
	if _, err := NewFleet(FleetConfig{Offices: 2, System: core.Config{Streams: 0, Workstations: 1}}); err == nil {
		t.Fatal("invalid system config accepted")
	}
}
