package engine

import (
	"reflect"
	"strings"
	"testing"

	"fadewich/internal/control"
	"fadewich/internal/core"
	"fadewich/internal/rng"
)

// fleetCfg is a small office System whose timeout backstop guarantees
// actions without needing a trained classifier.
func fleetCfg(offices, workers int) FleetConfig {
	return FleetConfig{
		Offices: offices,
		Workers: workers,
		System: core.Config{
			Streams:      2,
			Workstations: 1,
			Params:       control.Params{TimeoutSec: 30},
		},
	}
}

// fleetScenario builds a deterministic 64-office workload: per-office
// quiet RSSI ticks and one staggered login per office, so the timeout
// deauthentications land at distinct, office-dependent times.
func fleetScenario(offices, ticks int) (batch [][][]float64, inputs []InputEvent) {
	batch = make([][][]float64, offices)
	for o := 0; o < offices; o++ {
		src := rng.New(uint64(o) + 1)
		days := make([][]float64, ticks)
		for t := range days {
			days[t] = []float64{-60 + src.Normal(0, 0.4), -58 + src.Normal(0, 0.4)}
		}
		batch[o] = days
		inputs = append(inputs, InputEvent{Office: o, Workstation: 0, Tick: o % 17})
	}
	return batch, inputs
}

// runFleet drives one scenario through a fleet with the given worker
// count and returns the merged action stream.
func runFleet(t *testing.T, offices, workers, ticks int) []OfficeAction {
	t.Helper()
	f, err := NewFleet(fleetCfg(offices, workers))
	if err != nil {
		t.Fatal(err)
	}
	batch, inputs := fleetScenario(offices, ticks)
	// Split the scenario into several batches to exercise batch-boundary
	// state carry-over.
	const batchTicks = 77
	var out []OfficeAction
	for start := 0; start < ticks; start += batchTicks {
		end := start + batchTicks
		if end > ticks {
			end = ticks
		}
		sub := make([][][]float64, offices)
		for o := range sub {
			sub[o] = batch[o][start:end]
		}
		var evs []InputEvent
		for _, ev := range inputs {
			if ev.Tick >= start && ev.Tick < end {
				ev.Tick -= start
				evs = append(evs, ev)
			}
		}
		acts, err := f.RunBatch(sub, evs)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, acts...)
	}
	return out
}

func TestFleet64OfficesDeterministicAcrossWorkerCounts(t *testing.T) {
	const offices, ticks = 64, 260
	want := runFleet(t, offices, 1, ticks)
	if len(want) == 0 {
		t.Fatal("scenario produced no actions; the determinism check is vacuous")
	}
	for _, workers := range []int{2, 4, 8} {
		got := runFleet(t, offices, workers, ticks)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: merged stream differs from sequential (%d vs %d actions)",
				workers, len(got), len(want))
		}
	}
}

func TestFleetMatchesIndependentSystems(t *testing.T) {
	const offices, ticks = 16, 220
	got := runFleet(t, offices, 8, ticks)

	// Reference: drive each office as a standalone System in a plain loop.
	batch, inputs := fleetScenario(offices, ticks)
	var want []OfficeAction
	for o := 0; o < offices; o++ {
		sys, err := core.NewSystem(fleetCfg(offices, 1).System)
		if err != nil {
			t.Fatal(err)
		}
		inputTick := -1
		for _, ev := range inputs {
			if ev.Office == o {
				inputTick = ev.Tick
			}
		}
		for tk := 0; tk < ticks; tk++ {
			if tk == inputTick {
				sys.NotifyInput(0)
			}
			for _, a := range sys.Tick(batch[o][tk]) {
				want = append(want, OfficeAction{Office: o, Action: a})
			}
		}
	}
	want = sortReference(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fleet stream differs from independent systems: %d vs %d actions", len(got), len(want))
	}
}

// sortReference applies the fleet's documented total order to a reference
// action list.
func sortReference(acts []OfficeAction) []OfficeAction {
	out := make([]OfficeAction, len(acts))
	copy(out, acts)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.Action.Time < a.Action.Time || (b.Action.Time == a.Action.Time && b.Office < a.Office) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}

func TestFleetMergedStreamIsTimeOrdered(t *testing.T) {
	acts := runFleet(t, 64, 4, 260)
	for i := 1; i < len(acts); i++ {
		a, b := acts[i-1], acts[i]
		if b.Action.Time < a.Action.Time {
			t.Fatalf("action %d at %.2fs precedes %d at %.2fs", i, b.Action.Time, i-1, a.Action.Time)
		}
		if b.Action.Time == a.Action.Time && b.Office < a.Office {
			t.Fatalf("tie at %.2fs breaks office order: %d before %d", a.Action.Time, a.Office, b.Office)
		}
	}
}

// TestFleetRetainedBatchNeverMutated is the regression test for the
// per-office buffer reuse: a caller (or action sink) retaining a previous
// batch's []OfficeAction must never see it change as later batches run,
// even though the fleet reuses its internal accumulation buffers.
func TestFleetRetainedBatchNeverMutated(t *testing.T) {
	const offices, ticks = 16, 240
	f, err := NewFleet(fleetCfg(offices, 4))
	if err != nil {
		t.Fatal(err)
	}
	batch, inputs := fleetScenario(offices, ticks)

	// Retain every batch's stream and an immediate deep copy of it.
	var retained [][]OfficeAction
	var snapshots [][]OfficeAction
	const batchTicks = 60
	for start := 0; start < ticks; start += batchTicks {
		end := start + batchTicks
		if end > ticks {
			end = ticks
		}
		sub := make([][][]float64, offices)
		for o := range sub {
			sub[o] = batch[o][start:end]
		}
		var evs []InputEvent
		for _, ev := range inputs {
			if ev.Tick >= start && ev.Tick < end {
				ev.Tick -= start
				evs = append(evs, ev)
			}
		}
		acts, err := f.RunBatch(sub, evs)
		if err != nil {
			t.Fatal(err)
		}
		retained = append(retained, acts)
		snapshots = append(snapshots, append([]OfficeAction(nil), acts...))
	}

	total := 0
	for _, acts := range retained {
		total += len(acts)
	}
	if total == 0 {
		t.Fatal("scenario produced no actions; the aliasing check is vacuous")
	}
	for i := range retained {
		if !reflect.DeepEqual(retained[i], snapshots[i]) {
			t.Fatalf("batch %d's retained stream was mutated by a later batch", i)
		}
	}
}

func TestFleetInputRouting(t *testing.T) {
	f, err := NewFleet(fleetCfg(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	f.NotifyInput(1, 0)
	f.NotifyInput(-1, 0) // ignored, must not panic
	f.NotifyInput(99, 0)
	if f.System(0).Authenticated(0) || !f.System(1).Authenticated(0) || f.System(2).Authenticated(0) {
		t.Fatal("NotifyInput routed to the wrong office")
	}
}

func TestFleetRunBatchValidation(t *testing.T) {
	f, err := NewFleet(fleetCfg(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunBatch(make([][][]float64, 3), nil); err == nil {
		t.Fatal("office-count mismatch accepted")
	}
	batch := [][][]float64{{{-60, -60}}, {{-60, -60}}}
	if _, err := f.RunBatch(batch, []InputEvent{{Office: 5}}); err == nil {
		t.Fatal("out-of-range input office accepted")
	}
}

func TestFleetTickSingle(t *testing.T) {
	f, err := NewFleet(fleetCfg(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Tick([][]float64{{-60, -60}, {-61, -59}}); err != nil {
		t.Fatal(err)
	}
	if got := f.System(0).Now(); got != 0.2 {
		t.Fatalf("office 0 clock %.2f after one tick, want 0.2", got)
	}
}

func TestFleetFinishTrainingReportsFirstFailingOffice(t *testing.T) {
	f, err := NewFleet(fleetCfg(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	err = f.FinishTraining()
	if err == nil {
		t.Fatal("training with zero samples succeeded")
	}
	if !strings.Contains(err.Error(), "office 0") {
		t.Fatalf("error %q does not name office 0", err)
	}
	if f.TrainingSamples() != 0 {
		t.Fatalf("phantom training samples: %d", f.TrainingSamples())
	}
}

// standaloneActions drives a fresh System through the given ticks (one
// login at inputTick) and returns its actions tagged with the office ID.
func standaloneActions(t *testing.T, cfg core.Config, office int, ticks [][]float64, inputTick int) []OfficeAction {
	t.Helper()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []OfficeAction
	for tk := range ticks {
		if tk == inputTick {
			sys.NotifyInput(0)
		}
		for _, a := range sys.Tick(ticks[tk]) {
			out = append(out, OfficeAction{Office: office, Action: a})
		}
	}
	return out
}

// TestFleetPerOfficeConfigsHeterogeneous builds a fleet whose offices
// differ in stream count, workstation count and control timings, and
// checks that office 0 — configured exactly like a standalone deployment
// — reproduces the standalone System's action stream byte for byte.
func TestFleetPerOfficeConfigsHeterogeneous(t *testing.T) {
	const ticks = 260
	def := fleetCfg(3, 2).System
	cfgWide := core.Config{Streams: 4, Workstations: 2, Params: control.Params{TimeoutSec: 20}}
	cfgSlow := core.Config{Streams: 2, Workstations: 1, Params: control.Params{TimeoutSec: 45}}
	f, err := NewFleet(FleetConfig{
		Offices: 3,
		Workers: 4,
		System:  def,
		PerOffice: map[int]core.Config{
			1: cfgWide,
			2: cfgSlow,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range map[int]int{0: 2, 1: 4, 2: 2} {
		cfg, ok := f.Config(id)
		if !ok || cfg.Streams != want {
			t.Fatalf("office %d config: streams %d (member %v), want %d", id, cfg.Streams, ok, want)
		}
	}

	// Per-office tick rows sized to each office's stream count.
	rows := func(office, streams int) [][]float64 {
		src := rng.New(uint64(office) + 1)
		out := make([][]float64, ticks)
		for t := range out {
			row := make([]float64, streams)
			for k := range row {
				row[k] = -60 + src.Normal(0, 0.4)
			}
			out[t] = row
		}
		return out
	}
	tick0, tick1, tick2 := rows(0, 2), rows(1, 4), rows(2, 2)

	var merged []OfficeAction
	const batchTicks = 77
	for start := 0; start < ticks; start += batchTicks {
		end := start + batchTicks
		if end > ticks {
			end = ticks
		}
		var evs []InputEvent
		for o := 0; o < 3; o++ {
			if tk := o * 3; tk >= start && tk < end {
				evs = append(evs, InputEvent{Office: o, Workstation: 0, Tick: tk - start})
			}
		}
		acts, err := f.Run([]OfficeBatch{
			{Office: 0, Ticks: tick0[start:end]},
			{Office: 1, Ticks: tick1[start:end]},
			{Office: 2, Ticks: tick2[start:end]},
		}, evs)
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, acts...)
	}

	var office0 []OfficeAction
	for _, a := range merged {
		if a.Office == 0 {
			office0 = append(office0, a)
		}
	}
	want := standaloneActions(t, def, 0, tick0, 0)
	if len(want) == 0 {
		t.Fatal("standalone run produced no actions; the comparison is vacuous")
	}
	if !reflect.DeepEqual(office0, want) {
		t.Fatalf("office 0 of the heterogeneous fleet diverged from the standalone run: %d vs %d actions",
			len(office0), len(want))
	}
}

// TestFleetMembershipLifecycle checks the sequential add/remove contract:
// monotonic never-reused IDs, joiners starting clean, removal returning
// the final System, and batch delivery across non-contiguous IDs.
func TestFleetMembershipLifecycle(t *testing.T) {
	f, err := NewFleet(fleetCfg(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{-60, -58}
	if _, err := f.Run([]OfficeBatch{{Office: 0, Ticks: [][]float64{row}}, {Office: 1, Ticks: [][]float64{row}}}, nil); err != nil {
		t.Fatal(err)
	}

	// Join with the default config (zero Streams inherits).
	id, err := f.AddOffice(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("joiner ID %d, want 2", id)
	}
	if sys := f.System(id); sys == nil || sys.Phase() != core.PhaseTraining || sys.Now() != 0 {
		t.Fatal("joiner did not start clean in the training phase")
	}
	if got := f.Offices(); got != 3 {
		t.Fatalf("fleet size %d after join, want 3", got)
	}

	// Remove the middle office; the fleet keeps serving 0 and 2.
	sys, err := f.RemoveOffice(1)
	if err != nil {
		t.Fatal(err)
	}
	if sys == nil || sys.Now() != 0.2 {
		t.Fatal("removal did not hand back the final System")
	}
	if got := f.IDs(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("IDs after removal: %v, want [0 2]", got)
	}
	if _, err := f.RemoveOffice(1); err == nil {
		t.Fatal("double removal accepted")
	}
	if f.System(1) != nil {
		t.Fatal("removed office still reachable")
	}

	// Dense delivery maps positions onto the surviving ascending IDs.
	if _, err := f.RunBatch([][][]float64{{row}, {row}}, nil); err != nil {
		t.Fatal(err)
	}
	if got := f.System(2).Now(); got != 0.2 {
		t.Fatalf("joiner clock %.1f after one dense batch, want 0.2", got)
	}

	// A later join must not reuse the retired ID.
	id2, err := f.AddOffice(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != 3 {
		t.Fatalf("second joiner ID %d, want 3 (ID 1 must never be reused)", id2)
	}
}

func TestFleetRunValidation(t *testing.T) {
	f, err := NewFleet(fleetCfg(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	row := [][]float64{{-60, -58}}
	if _, err := f.Run([]OfficeBatch{{Office: 7, Ticks: row}}, nil); err == nil {
		t.Fatal("unknown office accepted")
	}
	if _, err := f.Run([]OfficeBatch{{Office: 0, Ticks: row}, {Office: 0, Ticks: row}}, nil); err == nil {
		t.Fatal("duplicate batch entry accepted")
	}
	if _, err := f.Run(nil, []InputEvent{{Office: 9}}); err == nil {
		t.Fatal("input event for unknown office accepted")
	}
	// An input event for an office without a batch entry is delivered.
	if _, err := f.Run([]OfficeBatch{{Office: 0, Ticks: row}}, []InputEvent{{Office: 1, Workstation: 0}}); err != nil {
		t.Fatal(err)
	}
	if !f.System(1).Authenticated(0) {
		t.Fatal("batch-less input event was not delivered")
	}
}

// TestFleetChurnUnderLoad drives a 64-office fleet through a stream of
// batches while a concurrent churner performs 16 membership events
// (adding heterogeneous joiners, then removing them). Every batch's
// merged stream must stay totally ordered by (time, office), and the
// fleet must end exactly where it started. CI repeats this package under
// -race, which is the real assertion on the membership locking.
func TestFleetChurnUnderLoad(t *testing.T) {
	const (
		offices   = 64
		batches   = 80
		perBatch  = 5
		churnEach = 5 // one membership event every 5 batches -> 16 events
	)
	// Heterogeneous base fleet: every fourth office runs a wider config.
	cfg := fleetCfg(offices, 4)
	cfg.PerOffice = map[int]core.Config{}
	for o := 0; o < offices; o += 4 {
		cfg.PerOffice[o] = core.Config{Streams: 4, Workstations: 2, Params: control.Params{TimeoutSec: 25}}
	}
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}

	batchDone := make(chan struct{}, batches)
	churnDone := make(chan error, 1)
	go func() {
		joinCfg := core.Config{Streams: 3, Workstations: 2, Params: control.Params{TimeoutSec: 15}}
		var joined []int
		for ev := 0; ev < 16; ev++ {
			for i := 0; i < churnEach; i++ {
				if _, ok := <-batchDone; !ok {
					churnDone <- nil
					return
				}
			}
			if ev%2 == 0 {
				id, err := f.AddOffice(joinCfg)
				if err != nil {
					churnDone <- err
					return
				}
				joined = append(joined, id)
			} else {
				id := joined[0]
				joined = joined[1:]
				if _, err := f.RemoveOffice(id); err != nil {
					churnDone <- err
					return
				}
			}
		}
		// Drain the remaining joiners so the fleet ends where it started.
		for _, id := range joined {
			if _, err := f.RemoveOffice(id); err != nil {
				churnDone <- err
				return
			}
		}
		churnDone <- nil
	}()

	src := rng.New(99)
	for b := 0; b < batches; b++ {
		// Snapshot-and-retry: a joiner seen by IDs() may be removed before
		// Run acquires the membership lock; membership errors are detected
		// before any office advances, so retrying with a fresh snapshot is
		// safe.
		for {
			ids := f.IDs()
			obs := make([]OfficeBatch, 0, len(ids))
			var evs []InputEvent
			for _, id := range ids {
				cfg, ok := f.Config(id)
				if !ok {
					continue
				}
				ticks := make([][]float64, perBatch)
				for i := range ticks {
					row := make([]float64, cfg.Streams)
					for k := range row {
						row[k] = -60 + src.Normal(0, 0.4)
					}
					ticks[i] = row
				}
				obs = append(obs, OfficeBatch{Office: id, Ticks: ticks})
				if b == 0 {
					evs = append(evs, InputEvent{Office: id, Workstation: 0, Tick: 0})
				}
			}
			acts, err := f.Run(obs, evs)
			if err != nil {
				if strings.Contains(err.Error(), "not a member") {
					continue
				}
				t.Fatal(err)
			}
			for i := 1; i < len(acts); i++ {
				a, bb := acts[i-1], acts[i]
				if bb.Action.Time < a.Action.Time ||
					(bb.Action.Time == a.Action.Time && bb.Office < a.Office) {
					t.Fatalf("batch %d: merged stream out of order at %d", b, i)
				}
			}
			break
		}
		batchDone <- struct{}{}
	}
	close(batchDone)
	if err := <-churnDone; err != nil {
		t.Fatal(err)
	}
	if got := f.Offices(); got != offices {
		t.Fatalf("fleet size %d after churn, want %d", got, offices)
	}
	for i, id := range f.IDs() {
		if id != i {
			t.Fatalf("original office IDs disturbed by churn: %v", f.IDs())
		}
	}
}

func TestNewFleetValidation(t *testing.T) {
	if _, err := NewFleet(FleetConfig{Offices: -1}); err == nil {
		t.Fatal("negative office count accepted")
	}
	if _, err := NewFleet(FleetConfig{Offices: 2, System: core.Config{Streams: 0, Workstations: 1}}); err == nil {
		t.Fatal("invalid system config accepted")
	}
}

// TestEmptyFleet pins that a fleet may start member-less (a cluster
// worker whose shard is currently empty): Run produces empty batches,
// and AddOffice later populates it normally.
func TestEmptyFleet(t *testing.T) {
	f, err := NewFleet(FleetConfig{Offices: 0})
	if err != nil {
		t.Fatalf("empty fleet rejected: %v", err)
	}
	if got := f.Offices(); got != 0 {
		t.Fatalf("offices = %d, want 0", got)
	}
	acts, err := f.Run(nil, nil)
	if err != nil || len(acts) != 0 {
		t.Fatalf("empty Run = (%v, %v), want no actions", acts, err)
	}
	id, err := f.AddOffice(fleetCfg(1, 1).System)
	if err != nil {
		t.Fatalf("AddOffice on empty fleet: %v", err)
	}
	if id != 0 {
		t.Fatalf("first office ID %d, want 0", id)
	}
	if got := f.Offices(); got != 1 {
		t.Fatalf("offices = %d after add, want 1", got)
	}
}

func TestFinishTrainingOffice(t *testing.T) {
	f, err := NewFleet(fleetCfg(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FinishTrainingOffice(7); err == nil {
		t.Fatal("non-member office trained")
	}
	err = f.FinishTrainingOffice(1)
	if err == nil {
		t.Fatal("training with zero samples succeeded")
	}
	if !strings.Contains(err.Error(), "office 1") {
		t.Fatalf("error %q does not name office 1", err)
	}
	if f.System(0).Phase() != core.PhaseTraining || f.System(1).Phase() != core.PhaseTraining {
		t.Fatal("failed per-office training changed a phase")
	}
}
