package core_test

import (
	"testing"

	"fadewich/internal/core"
	"fadewich/internal/rf"
	"fadewich/internal/rng"
)

// TestTickBlockMatchesTick checks the block ingestion path is
// bit-identical to per-tick delivery: same actions, same clock, same
// training samples, with input notifications at block boundaries
// behaving like notifications between Tick calls.
func TestTickBlockMatchesTick(t *testing.T) {
	const (
		streams = 6
		ticks   = 600
		blockSz = 75
	)
	cfg := core.Config{Streams: streams, Workstations: 2}

	// Synthetic day: quiet with two anomalous stretches.
	src := rng.New(321)
	rows := make([][]float64, ticks)
	for i := range rows {
		std := 0.5
		if (i >= 200 && i < 280) || (i >= 400 && i < 520) {
			std = 6
		}
		row := make([]float64, streams)
		for k := range row {
			row[k] = -60 + src.Normal(0, std)
		}
		rows[i] = row
	}
	notifyAt := map[int]int{0: 0, 150: 1, 450: 0} // tick -> workstation

	perTick := func() (*core.System, []core.Action) {
		sys, err := core.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var all []core.Action
		for i, row := range rows {
			if ws, ok := notifyAt[i]; ok {
				sys.NotifyInput(ws)
			}
			all = append(all, sys.Tick(row)...)
		}
		return sys, all
	}
	perBlock := func() (*core.System, []core.Action) {
		sys, err := core.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var all []core.Action
		var blk rf.Block
		for lo := 0; lo < ticks; lo += blockSz {
			hi := lo + blockSz
			if hi > ticks {
				hi = ticks
			}
			// notifyAt ticks are aligned to block boundaries above, so the
			// notification lands between blocks exactly as it landed
			// between Ticks.
			if ws, ok := notifyAt[lo]; ok {
				sys.NotifyInput(ws)
			}
			blk.Reset(hi-lo, streams)
			for i := lo; i < hi; i++ {
				copy(blk.Row(i-lo), rows[i])
			}
			all = append(all, sys.TickBlock(&blk)...)
		}
		return sys, all
	}

	sysA, actsA := perTick()
	sysB, actsB := perBlock()
	if len(actsA) == 0 {
		t.Fatal("synthetic day emitted no actions; the equivalence test is vacuous")
	}
	if len(actsA) != len(actsB) {
		t.Fatalf("per-tick emitted %d actions, block path %d", len(actsA), len(actsB))
	}
	for i := range actsA {
		if actsA[i] != actsB[i] {
			t.Fatalf("action %d: per-tick %+v, block %+v", i, actsA[i], actsB[i])
		}
	}
	if sysA.Now() != sysB.Now() || sysA.TrainingSamples() != sysB.TrainingSamples() {
		t.Fatalf("state diverged: now %v vs %v, samples %d vs %d",
			sysA.Now(), sysB.Now(), sysA.TrainingSamples(), sysB.TrainingSamples())
	}
}
