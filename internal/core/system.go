// Package core assembles the paper's modules (KMA, MD, RE and the control
// rules) into a single streaming System — the artefact a deployment would
// actually run. The System consumes one tick of RSSI samples at a time
// plus asynchronous keyboard/mouse notifications, passes through the
// paper's two phases (a training phase that auto-labels variation windows
// from workstation idle times, then an online phase driven by the trained
// classifier), and emits actions: alert-state transitions, screensaver
// activations and deauthentications.
package core

import (
	"errors"
	"fmt"

	"fadewich/internal/block"
	"fadewich/internal/control"
	"fadewich/internal/kma"
	"fadewich/internal/md"
	"fadewich/internal/re"
	"fadewich/internal/svm"
)

// Config parameterises a System.
type Config struct {
	// DT is the RSSI sampling period in seconds.
	DT float64
	// Streams is the number of RSSI streams (m·(m−1) for m sensors).
	Streams int
	// Workstations is k, the number of monitored workstations.
	Workstations int
	// MD configures movement detection.
	MD md.Config
	// Feat configures signature extraction; Feat.TDeltaSec is t∆.
	Feat re.FeatureConfig
	// SVM configures the classifier trained at the end of the training
	// phase.
	SVM svm.Config
	// Params are the control-rule timing constants.
	Params control.Params
	// Label configures training-phase auto-labelling.
	Label re.LabelConfig
	// MinTrainingSamples is the smallest labelled sample count Train will
	// accept (default 10).
	MinTrainingSamples int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.DT == 0 {
		c.DT = 0.2
	}
	c.Params = c.Params.WithDefaults()
	if c.Feat.TDeltaSec == 0 {
		c.Feat = re.DefaultFeatureConfig()
	}
	if c.MinTrainingSamples == 0 {
		c.MinTrainingSamples = 10
	}
	return c
}

// Phase is the system's lifecycle stage.
type Phase int

// The two lifecycle phases of Section IV-D: during Training the system
// collects auto-labelled samples; during Online it applies the rules.
const (
	PhaseTraining Phase = iota + 1
	PhaseOnline
)

// ActionType enumerates the System's outputs.
type ActionType int

// Emitted actions. AlertEnter/AlertExit bracket the alert state of Rule 2;
// ScreensaverOn is the t_ID expiry inside an alert; Deauthenticate ends a
// session (the Cause field tells why).
const (
	ActionAlertEnter ActionType = iota + 1
	ActionAlertExit
	ActionScreensaverOn
	ActionDeauthenticate
)

// String implements fmt.Stringer.
func (a ActionType) String() string {
	switch a {
	case ActionAlertEnter:
		return "alert-enter"
	case ActionAlertExit:
		return "alert-exit"
	case ActionScreensaverOn:
		return "screensaver-on"
	case ActionDeauthenticate:
		return "deauthenticate"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Action is one System output.
type Action struct {
	Time        float64
	Type        ActionType
	Workstation int
	// Cause is set for deauthentications.
	Cause control.Cause
	// Label is the RE classification that triggered a Rule-1 action
	// (0 = w0).
	Label int
}

// ErrNotTraining is returned by FinishTraining outside the training phase.
var ErrNotTraining = errors.New("core: system is not in the training phase")

// ErrTooFewSamples is returned when training ends with too few labelled
// samples.
var ErrTooFewSamples = errors.New("core: too few labelled training samples")

// System is the streaming FADEWICH instance. Not safe for concurrent use;
// drive it from one goroutine and deliver input notifications between
// Tick calls.
type System struct {
	cfg   Config
	det   *md.Detector
	clf   *re.Classifier
	phase Phase

	now  float64
	tick int

	// Ring buffer of recent samples for signature extraction, laid out
	// columnar (tick-major): row i occupies ring[i*Streams:(i+1)*Streams],
	// so recording a tick is one contiguous copy instead of one strided
	// write per stream.
	ring     []float64
	ringCap  int
	ringHead int
	ringLen  int

	// Variation-window tracking. A window closes only after gapTicks of
	// continuous normal readings, mirroring md.Run's gap merging so the
	// online system sees the same windows as the offline analysis.
	inWindow    bool
	winStart    int
	lastAnom    int
	rule1Fired  bool
	tDeltaTicks int
	gapTicks    int

	// Per-workstation session and input state.
	ws []wsState

	// Training-phase sample store. pending holds windows whose features
	// are extracted but whose label cannot be resolved yet: the
	// auto-labeller needs to observe QuietAfterSec/ReturnSlackSec of
	// input behaviour beyond the window end.
	samples []re.Sample
	pending []pendingSample

	actions []Action // reused buffer returned by Tick
	// interTick collects actions emitted between ticks (input
	// notifications cancelling alerts); they are delivered with the next
	// Tick's result instead of being lost when the buffer resets.
	interTick []Action
	// blockActions accumulates the actions of one TickBlock call.
	blockActions []Action
}

// pendingSample is a training window awaiting label resolution.
type pendingSample struct {
	window    md.Window
	features  []float64
	resolveAt float64
}

// wsState mirrors the controller's per-workstation state for the online
// system.
type wsState struct {
	authenticated bool
	lastInput     float64
	hasInput      bool
	alert         bool
	ssOn          bool
	// inputLog keeps this workstation's input times for training-phase
	// auto-labelling.
	inputLog []float64
}

// NewSystem builds a System in the training phase.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if cfg.Streams < 1 {
		return nil, fmt.Errorf("core: need at least one stream, got %d", cfg.Streams)
	}
	if cfg.Workstations < 1 {
		return nil, fmt.Errorf("core: need at least one workstation, got %d", cfg.Workstations)
	}
	det, err := md.NewDetector(cfg.MD, cfg.Streams, cfg.DT)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tDeltaTicks := int(cfg.Params.TDeltaSec / cfg.DT)
	// The ring must still hold a window's first t∆ seconds when the
	// window closes, and windows can run tens of seconds (overlapping
	// movements, long walks); 30 s of slack costs only tens of kilobytes.
	ringCap := tDeltaTicks + int(30/cfg.DT) + 4
	ring := make([]float64, ringCap*cfg.Streams)
	gapSec := cfg.MD.MergeGapSec
	if gapSec == 0 {
		gapSec = md.DefaultConfig().MergeGapSec
	}
	gapTicks := int(gapSec / cfg.DT)
	return &System{
		cfg:         cfg,
		det:         det,
		phase:       PhaseTraining,
		ring:        ring,
		ringCap:     ringCap,
		tDeltaTicks: tDeltaTicks,
		gapTicks:    gapTicks,
		ws:          make([]wsState, cfg.Workstations),
	}, nil
}

// Phase returns the current lifecycle phase.
func (s *System) Phase() Phase { return s.phase }

// DT returns the effective RSSI sampling period in seconds (the
// configured Config.DT, or the 0.2 s default). Action times are always
// whole multiples of it: Tick stamps float64(tick)·DT.
func (s *System) DT() float64 { return s.cfg.DT }

// Now returns the system clock (seconds since start).
func (s *System) Now() float64 { return s.now }

// TrainingSamples returns how many labelled samples have been collected.
func (s *System) TrainingSamples() int { return len(s.samples) }

// NotifyInput records a keyboard/mouse event at workstation ws at the
// current system time. It also (re-)authenticates the session, since a
// user typing at a locked workstation is logging in.
func (s *System) NotifyInput(ws int) {
	if ws < 0 || ws >= len(s.ws) {
		return
	}
	st := &s.ws[ws]
	st.hasInput = true
	st.lastInput = s.now
	st.inputLog = append(st.inputLog, s.now)
	if !st.authenticated {
		st.authenticated = true
	}
	if st.alert || st.ssOn {
		st.alert = false
		st.ssOn = false
		s.interTick = append(s.interTick, Action{Time: s.now, Type: ActionAlertExit, Workstation: ws})
	}
}

// Authenticated reports whether workstation ws currently has an active
// session.
func (s *System) Authenticated(ws int) bool {
	if ws < 0 || ws >= len(s.ws) {
		return false
	}
	return s.ws[ws].authenticated
}

// idle returns the idle time of workstation ws at the current clock.
func (s *System) idle(ws int) float64 {
	st := &s.ws[ws]
	if !st.hasInput {
		return s.now
	}
	return s.now - st.lastInput
}

// Tick consumes one tick of RSSI samples (one per stream) and returns the
// actions emitted during this tick. The returned slice is reused by the
// next call — copy it to retain.
func (s *System) Tick(rssi []float64) []Action {
	if len(rssi) != s.cfg.Streams {
		panic(fmt.Sprintf("core: Tick got %d samples, want %d", len(rssi), s.cfg.Streams))
	}
	s.actions = append(s.actions[:0], s.interTick...)
	s.interTick = s.interTick[:0]
	s.tick++
	s.now = float64(s.tick) * s.cfg.DT

	// Record into the ring buffer: one contiguous row copy.
	copy(s.ring[s.ringHead*s.cfg.Streams:], rssi)
	s.ringHead = (s.ringHead + 1) % s.ringCap
	if s.ringLen < s.ringCap {
		s.ringLen++
	}

	state, _ := s.det.Push(rssi)
	anomalous := state == md.StateAnomalous

	switch {
	case anomalous:
		if !s.inWindow {
			s.inWindow = true
			s.winStart = s.tick
			s.rule1Fired = false
		}
		s.lastAnom = s.tick
	case s.inWindow && s.tick-s.lastAnom > s.gapTicks:
		s.endWindow()
	}

	if s.inWindow {
		dW := s.tick - s.winStart
		if dW >= s.tDeltaTicks {
			if !s.rule1Fired {
				s.rule1Fired = true
				s.onWindowReachedTDelta()
			}
			// Rule 2: alert every idle workstation while the window
			// persists.
			for ws := range s.ws {
				st := &s.ws[ws]
				if st.authenticated && !st.alert && s.idle(ws) >= s.cfg.Params.Rule2IdleSec {
					st.alert = true
					s.actions = append(s.actions, Action{Time: s.now, Type: ActionAlertEnter, Workstation: ws})
				}
			}
		}
	}

	if s.phase == PhaseTraining {
		s.resolvePending()
	}

	// Alert lifecycle + time-out backstop.
	p := s.cfg.Params
	for ws := range s.ws {
		st := &s.ws[ws]
		if !st.authenticated {
			continue
		}
		idle := s.idle(ws)
		if st.alert {
			if !st.ssOn && idle >= p.TIDSec {
				st.ssOn = true
				s.actions = append(s.actions, Action{Time: s.now, Type: ActionScreensaverOn, Workstation: ws})
			}
			if st.ssOn && idle >= p.TIDSec+p.TSSSec {
				s.deauth(ws, control.CauseAlert, -1)
				continue
			}
		}
		if idle >= p.TimeoutSec {
			s.deauth(ws, control.CauseTimeout, -1)
		}
	}
	return s.actions
}

// TickBlock consumes every row of the block as consecutive ticks —
// bit-identical to calling Tick once per row — and returns all actions
// emitted across them in emission order. The block is the columnar
// buffer filled by rf.Network.SampleBlock; each row is ingested straight
// from the contiguous backing array, with no per-tick slice allocation
// on either side. The returned slice is reused by the next TickBlock
// call — copy it to retain. Input notifications follow the same rule as
// with Tick: NotifyInput between TickBlock calls is delivered before the
// next block's first row.
func (s *System) TickBlock(b *block.Block) []Action {
	out := s.blockActions[:0]
	for t := 0; t < b.Ticks(); t++ {
		out = append(out, s.Tick(b.Row(t))...)
	}
	s.blockActions = out
	return out
}

// endWindow closes the current variation window: dismiss alerts that never
// reached the screensaver, and in the training phase try to label the
// window. The window's effective end is the last anomalous tick, not the
// closing tick (which trails by the merge gap).
func (s *System) endWindow() {
	s.inWindow = false
	for ws := range s.ws {
		st := &s.ws[ws]
		if st.alert && !st.ssOn {
			st.alert = false
			s.actions = append(s.actions, Action{Time: s.now, Type: ActionAlertExit, Workstation: ws})
		}
	}
	if s.phase == PhaseTraining && s.lastAnom+1-s.winStart >= s.tDeltaTicks {
		s.collectTrainingSample()
	}
}

// deauth locks a session and records the action.
func (s *System) deauth(ws int, cause control.Cause, label int) {
	st := &s.ws[ws]
	st.authenticated = false
	st.alert = false
	s.actions = append(s.actions, Action{
		Time: s.now, Type: ActionDeauthenticate, Workstation: ws,
		Cause: cause, Label: label,
	})
}

// onWindowReachedTDelta fires when the current window's duration hits t∆:
// Rule 1 in the online phase (classification + conditional deauth);
// nothing yet in training (labelling happens at window end, when idle
// evidence is complete).
func (s *System) onWindowReachedTDelta() {
	if s.phase != PhaseOnline || s.clf == nil {
		return
	}
	features := s.extractSignature()
	label := s.clf.Predict(features)
	if label < 1 || label > len(s.ws) {
		return // w0: someone entered; no deauthentication
	}
	ci := label - 1
	if s.ws[ci].authenticated && s.idle(ci) >= s.cfg.Params.TDeltaSec {
		s.deauth(ci, control.CauseRule1, label)
	}
}

// extractSignature pulls the [t1, t1+t∆] window from the ring buffer and
// computes the feature vector.
func (s *System) extractSignature() []float64 {
	n := s.tDeltaTicks
	streams := s.cfg.Streams
	window := make([][]float64, streams)
	// The window starts at winStart; the ring's most recent sample is at
	// tick s.tick. Offset of winStart from now, in ticks:
	back := s.tick - s.winStart
	if back >= s.ringLen {
		back = s.ringLen - 1
	}
	for k := 0; k < streams; k++ {
		w := make([]float64, 0, n)
		for i := 0; i < n && i <= back; i++ {
			idx := (s.ringHead - 1 - back + i + 2*s.ringCap) % s.ringCap
			w = append(w, s.ring[idx*streams+k])
		}
		window[k] = w
	}
	return re.ExtractWindow(window, s.cfg.DT, s.cfg.Feat)
}

// collectTrainingSample extracts the signature of the window that just
// ended and queues it for label resolution once enough post-window input
// behaviour has been observed (see re.LabelConfig.QuietAfterSec).
func (s *System) collectTrainingSample() {
	// The signature must be captured now, while [t1, t1+t∆] is still in
	// the ring buffer.
	if s.tick-s.winStart >= s.ringLen {
		return
	}
	label := s.cfg.Label
	wait := label.QuietAfterSec
	if label.ReturnSlackSec > wait {
		wait = label.ReturnSlackSec
	}
	if wait == 0 {
		wait = 30
	}
	s.pending = append(s.pending, pendingSample{
		window:    md.Window{StartTick: s.winStart, EndTick: s.lastAnom + 1},
		features:  s.extractSignatureFrom(s.winStart),
		resolveAt: s.now + wait,
	})
}

// resolvePending labels any queued training windows whose observation
// horizon has elapsed, discarding ambiguous ones.
func (s *System) resolvePending() {
	if len(s.pending) == 0 || s.pending[0].resolveAt > s.now {
		return
	}
	tracker := s.trackerView()
	kept := s.pending[:0]
	for _, p := range s.pending {
		if p.resolveAt > s.now {
			kept = append(kept, p)
			continue
		}
		if label, ok := re.AutoLabel(p.window, s.cfg.DT, tracker, s.cfg.Label); ok {
			s.samples = append(s.samples, re.Sample{
				Features:  p.features,
				Label:     label,
				StartTick: p.window.StartTick,
			})
		}
	}
	s.pending = kept
}

// extractSignatureFrom extracts the t∆ signature starting at the given
// absolute tick (which must be within the ring).
func (s *System) extractSignatureFrom(startTick int) []float64 {
	saveStart := s.winStart
	s.winStart = startTick
	f := s.extractSignature()
	s.winStart = saveStart
	return f
}

// trackerView snapshots the per-workstation input logs into a fresh
// kma.Tracker for the auto-labeller.
func (s *System) trackerView() *kma.Tracker {
	logs := make([][]float64, len(s.ws))
	for i := range s.ws {
		logs[i] = s.ws[i].inputLog
	}
	return kma.NewTracker(logs)
}

// FinishTraining trains the classifier on the collected samples and
// switches to the online phase. It returns ErrTooFewSamples when fewer
// than MinTrainingSamples were collected, leaving the system in training.
func (s *System) FinishTraining() error {
	if s.phase != PhaseTraining {
		return ErrNotTraining
	}
	// Resolve any matured windows still queued; immature ones (too close
	// to the end of the training data) are dropped rather than risk a
	// wrong label.
	s.resolvePending()
	s.pending = nil
	if len(s.samples) < s.cfg.MinTrainingSamples {
		return fmt.Errorf("%w: have %d, want at least %d",
			ErrTooFewSamples, len(s.samples), s.cfg.MinTrainingSamples)
	}
	clf, err := re.Train(s.samples, s.cfg.SVM)
	if err != nil {
		return fmt.Errorf("core: training classifier: %w", err)
	}
	s.clf = clf
	s.phase = PhaseOnline
	return nil
}

// AdoptClassifier installs an externally trained classifier (e.g. from
// supervisor-labelled data) and switches to the online phase.
func (s *System) AdoptClassifier(clf *re.Classifier) {
	s.clf = clf
	s.phase = PhaseOnline
}

// Samples returns the collected training samples (for inspection or
// external training).
func (s *System) Samples() []re.Sample {
	out := make([]re.Sample, len(s.samples))
	copy(out, s.samples)
	return out
}
