package core_test

import (
	"errors"
	"testing"

	"fadewich/internal/control"
	"fadewich/internal/core"
	"fadewich/internal/kma"
	"fadewich/internal/re"
	"fadewich/internal/rng"
	"fadewich/internal/sim"
	"fadewich/internal/svm"
)

func TestNewSystemErrors(t *testing.T) {
	if _, err := core.NewSystem(core.Config{Streams: 0, Workstations: 1}); err == nil {
		t.Fatal("zero streams accepted")
	}
	if _, err := core.NewSystem(core.Config{Streams: 4, Workstations: 0}); err == nil {
		t.Fatal("zero workstations accepted")
	}
}

func TestFinishTrainingGuards(t *testing.T) {
	sys, err := core.NewSystem(core.Config{Streams: 2, Workstations: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.FinishTraining()
	if !errors.Is(err, core.ErrTooFewSamples) {
		t.Fatalf("expected core.ErrTooFewSamples, got %v", err)
	}
	// Force online via an adopted classifier, then FinishTraining must
	// refuse.
	clf := trainedClassifier(t)
	sys.AdoptClassifier(clf)
	if err := sys.FinishTraining(); !errors.Is(err, core.ErrNotTraining) {
		t.Fatalf("expected core.ErrNotTraining, got %v", err)
	}
	if sys.Phase() != core.PhaseOnline {
		t.Fatal("phase not online after AdoptClassifier")
	}
}

// trainedClassifier builds a trivial 2-class classifier with the core.System's
// feature dimensionality for 2 streams.
func trainedClassifier(t *testing.T) *re.Classifier {
	t.Helper()
	src := rng.New(3)
	var samples []re.Sample
	for label := 0; label < 2; label++ {
		for i := 0; i < 8; i++ {
			f := make([]float64, 2*re.FeaturesPerStream)
			for j := range f {
				f[j] = float64(label*4) + src.Normal(0, 0.3)
			}
			samples = append(samples, re.Sample{Features: f, Label: label})
		}
	}
	clf, err := re.Train(samples, svm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

func TestNotifyInputAuthenticatesAndIgnoresBadIndex(t *testing.T) {
	sys, _ := core.NewSystem(core.Config{Streams: 2, Workstations: 2})
	if sys.Authenticated(0) {
		t.Fatal("authenticated before any input")
	}
	sys.NotifyInput(0)
	if !sys.Authenticated(0) {
		t.Fatal("input did not authenticate")
	}
	sys.NotifyInput(-1) // must not panic
	sys.NotifyInput(99)
	if sys.Authenticated(1) {
		t.Fatal("untouched workstation authenticated")
	}
	if sys.Authenticated(99) {
		t.Fatal("out-of-range workstation reported authenticated")
	}
}

// feedQuiet pushes n quiet ticks into the system.
func feedQuiet(sys *core.System, src *rng.Source, n int, streams int) {
	buf := make([]float64, streams)
	for i := 0; i < n; i++ {
		for k := range buf {
			buf[k] = -60 + src.Normal(0, 0.5)
		}
		sys.Tick(buf)
	}
}

// feedNoisy pushes n high-variance ticks.
func feedNoisy(sys *core.System, src *rng.Source, n int, streams int) []core.Action {
	var all []core.Action
	buf := make([]float64, streams)
	for i := 0; i < n; i++ {
		for k := range buf {
			buf[k] = -60 + src.Normal(0, 6)
		}
		all = append(all, sys.Tick(buf)...)
	}
	return all
}

func TestOnlineRule1Deauthenticates(t *testing.T) {
	const streams = 2
	sys, err := core.NewSystem(core.Config{Streams: streams, Workstations: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A classifier that always answers "workstation 1 departed".
	sys.AdoptClassifier(alwaysClassifier(t, streams, 1))

	src := rng.New(9)
	feedQuiet(sys, src, 400, streams) // warm-up + profile
	sys.NotifyInput(0)                // login at ws0
	feedQuiet(sys, src, 50, streams)  // ws0 idles ≥ t∆ afterwards
	actions := feedNoisy(sys, src, 60, streams)

	var deauth *core.Action
	for i := range actions {
		if actions[i].Type == core.ActionDeauthenticate && actions[i].Workstation == 0 {
			deauth = &actions[i]
			break
		}
	}
	if deauth == nil {
		t.Fatal("no Rule-1 deauthentication during sustained noise")
	}
	if deauth.Cause != control.CauseRule1 {
		t.Fatalf("cause %v", deauth.Cause)
	}
	if sys.Authenticated(0) {
		t.Fatal("workstation still authenticated after deauth")
	}
}

// alwaysClassifier returns a classifier that predicts the given label for
// any signature (trained on two synthetic clusters, then wrapped).
func alwaysClassifier(t *testing.T, streams, label int) *re.Classifier {
	t.Helper()
	// Train a real classifier whose classes are {label, other}; the
	// signatures during noise will land on one side; to force the label,
	// both cluster centres carry the same label... the SVM needs two
	// classes, so instead train with extreme separation and rely on the
	// noise signature (high variance) matching the high-variance cluster.
	src := rng.New(31)
	other := 0
	if label == 0 {
		other = 1
	}
	var samples []re.Sample
	for i := 0; i < 10; i++ {
		// High-variance cluster → the wanted label.
		f := make([]float64, streams*re.FeaturesPerStream)
		for s := 0; s < streams; s++ {
			f[s*re.FeaturesPerStream] = 30 + src.Normal(0, 2) // variance feature
			f[s*re.FeaturesPerStream+1] = 2 + src.Normal(0, 0.1)
		}
		samples = append(samples, re.Sample{Features: f, Label: label})
		// Low-variance cluster → the other label.
		g := make([]float64, streams*re.FeaturesPerStream)
		for s := 0; s < streams; s++ {
			g[s*re.FeaturesPerStream] = 0.2 + src.Normal(0, 0.05)
			g[s*re.FeaturesPerStream+1] = 0.5 + src.Normal(0, 0.1)
		}
		samples = append(samples, re.Sample{Features: g, Label: other})
	}
	clf, err := re.Train(samples, svm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

func TestOnlineAlertLifecycle(t *testing.T) {
	const streams = 2
	sys, _ := core.NewSystem(core.Config{Streams: streams, Workstations: 1})
	sys.AdoptClassifier(alwaysClassifier(t, streams, 0)) // w0: no Rule 1

	src := rng.New(13)
	feedQuiet(sys, src, 400, streams)
	sys.NotifyInput(0)
	feedQuiet(sys, src, 40, streams) // idle 8 s
	actions := feedNoisy(sys, src, 80, streams)

	var sawAlert, sawSS, sawDeauth bool
	for _, a := range actions {
		switch a.Type {
		case core.ActionAlertEnter:
			sawAlert = true
		case core.ActionScreensaverOn:
			sawSS = true
		case core.ActionDeauthenticate:
			if a.Cause == control.CauseAlert {
				sawDeauth = true
			}
		}
	}
	if !sawAlert || !sawSS || !sawDeauth {
		t.Fatalf("alert lifecycle incomplete: alert=%v ss=%v deauth=%v", sawAlert, sawSS, sawDeauth)
	}
}

func TestInputCancelsAlert(t *testing.T) {
	const streams = 2
	sys, _ := core.NewSystem(core.Config{Streams: streams, Workstations: 1})
	sys.AdoptClassifier(alwaysClassifier(t, streams, 0))

	src := rng.New(17)
	feedQuiet(sys, src, 400, streams)
	sys.NotifyInput(0)
	feedQuiet(sys, src, 10, streams)
	// Noise begins; user types briefly after alert onset.
	buf := make([]float64, streams)
	var exited bool
	for i := 0; i < 60; i++ {
		for k := range buf {
			buf[k] = -60 + src.Normal(0, 6)
		}
		acts := sys.Tick(buf)
		for _, a := range acts {
			if a.Type == core.ActionAlertEnter {
				sys.NotifyInput(0) // immediate reaction
			}
			if a.Type == core.ActionAlertExit {
				exited = true
			}
		}
	}
	if !exited {
		t.Fatal("input never cancelled the alert")
	}
	if !sys.Authenticated(0) {
		t.Fatal("workstation lost its session despite user activity")
	}
}

// TestEndToEndOnSimulatedDay is the package's integration test: train on
// one short simulated day, go online on another, and require at least one
// correct Rule-1 deauthentication of a true departure.
func TestEndToEndOnSimulatedDay(t *testing.T) {
	cfg := sim.Config{Days: 2, Seed: 21}
	cfg.Agent.DaySeconds = 3600
	cfg.Agent.MorningJitterSec = 120
	cfg.Agent.DeparturesPerDay = 4
	cfg.Agent.OutsideMeanSec = 120
	ds, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{
		DT:                 ds.Days[0].DT,
		Streams:            ds.NumStreams(),
		Workstations:       ds.Layout.NumWorkstations(),
		MinTrainingSamples: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	inputs0 := kma.GenerateInputs(ds.Days[0].InputSpans, ds.Days[0].Events, kma.InputModel{}, src.Split())
	inputs1 := kma.GenerateInputs(ds.Days[1].InputSpans, ds.Days[1].Events, kma.InputModel{}, src.Split())

	replay(sys, ds.Days[0], inputs0, nil)
	if err := sys.FinishTraining(); err != nil {
		t.Fatalf("training on a full simulated day failed: %v (samples=%d)", err, sys.TrainingSamples())
	}

	base := sys.Now()
	var deauths []core.Action
	replay(sys, ds.Days[1], inputs1, func(a core.Action) {
		if a.Type == core.ActionDeauthenticate {
			a.Time -= base
			deauths = append(deauths, a)
		}
	})

	correct := 0
	departures := 0
	for _, e := range ds.Days[1].Events {
		if e.Type.String() != "departure" {
			continue
		}
		departures++
		for _, d := range deauths {
			if d.Workstation == e.Workstation && d.Time >= e.Time && d.Time <= e.Time+12 {
				correct++
				break
			}
		}
	}
	if departures == 0 {
		t.Skip("no departures in the online day")
	}
	if correct == 0 {
		t.Fatalf("none of %d departures was deauthenticated online", departures)
	}
}

// replay feeds a day into the core.System.
func replay(sys *core.System, trace *sim.Trace, inputs [][]float64, onAction func(core.Action)) {
	cursor := make([]int, len(inputs))
	rssi := make([]float64, len(trace.Streams))
	base := sys.Now()
	for i := 0; i < trace.Ticks; i++ {
		t := base + float64(i+1)*trace.DT
		for ws := range inputs {
			for cursor[ws] < len(inputs[ws]) && base+inputs[ws][cursor[ws]] <= t {
				sys.NotifyInput(ws)
				cursor[ws]++
			}
		}
		for k := range trace.Streams {
			rssi[k] = float64(trace.Streams[k][i])
		}
		for _, a := range sys.Tick(rssi) {
			if onAction != nil {
				onAction(a)
			}
		}
	}
}

func TestActionTypeString(t *testing.T) {
	for _, a := range []core.ActionType{core.ActionAlertEnter, core.ActionAlertExit, core.ActionScreensaverOn, core.ActionDeauthenticate} {
		if a.String() == "" {
			t.Fatal("empty action string")
		}
	}
	if core.ActionType(99).String() == "" {
		t.Fatal("unknown action type should render")
	}
}

func TestTimeoutBackstopOnline(t *testing.T) {
	const streams = 2
	sys, _ := core.NewSystem(core.Config{
		Streams:      streams,
		Workstations: 1,
		Params:       control.Params{TimeoutSec: 60},
	})
	src := rng.New(19)
	feedQuiet(sys, src, 100, streams)
	sys.NotifyInput(0)
	var timeout *core.Action
	buf := make([]float64, streams)
	for i := 0; i < 400; i++ {
		for k := range buf {
			buf[k] = -60 + src.Normal(0, 0.5)
		}
		for _, a := range sys.Tick(buf) {
			if a.Type == core.ActionDeauthenticate && a.Cause == control.CauseTimeout {
				timeout = &a
			}
		}
		if timeout != nil {
			break
		}
	}
	if timeout == nil {
		t.Fatal("timeout backstop never fired")
	}
}
