// Package md implements the Movement Detection module of Section IV-C:
// the per-stream rolling standard deviations whose sum s_t is the
// detection statistic, the Gaussian-KDE "normal profile" of s_t with its
// (100−α)-th percentile anomaly threshold, the batched profile update of
// Algorithm 1 (which keeps the profile current as office occupancy
// changes), and the extraction of variation windows — the anomalous
// intervals that drive the whole system.
package md

import (
	"fmt"

	"fadewich/internal/stats"
)

// Config parameterises the detector. Zero fields take defaults.
type Config struct {
	// StdWindowSec is d, the sliding window over which each stream's
	// standard deviation is computed.
	StdWindowSec float64
	// ProfileInitSec is the initial non-adversarial period used to build
	// the first normal profile ("30 seconds in our experiments").
	ProfileInitSec float64
	// Alpha is the anomaly tail percentage: s_t above the (100−α)-th
	// percentile of the profile is anomalous.
	Alpha float64
	// BatchSize is b, the number of s_t values queued before a profile
	// update is attempted.
	BatchSize int
	// Tau is the fraction of anomalous values above which a queued batch
	// is discarded instead of merged into the profile.
	Tau float64
	// MaxProfile bounds the profile sample count; merging a batch evicts
	// the oldest values beyond this bound.
	MaxProfile int
	// KDEBandwidth overrides the kernel bandwidth; 0 selects Silverman's
	// rule.
	KDEBandwidth float64
	// MergeGapSec closes gaps shorter than this between consecutive
	// anomalous runs, so a walker briefly passing a dead spot does not
	// split one variation window into two.
	MergeGapSec float64
	// RefitEvery re-estimates the KDE and threshold only every so many
	// accepted batches; the profile drifts slowly, so a slightly stale
	// threshold is statistically irrelevant but much cheaper over
	// multi-day traces.
	RefitEvery int
}

// DefaultConfig returns the calibrated detector parameters.
func DefaultConfig() Config {
	return Config{
		StdWindowSec:   2.4,
		ProfileInitSec: 30,
		Alpha:          1.0,
		BatchSize:      40,
		Tau:            0.25,
		MaxProfile:     600,
		MergeGapSec:    0.8,
		RefitEvery:     2,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.StdWindowSec == 0 {
		c.StdWindowSec = d.StdWindowSec
	}
	if c.ProfileInitSec == 0 {
		c.ProfileInitSec = d.ProfileInitSec
	}
	if c.Alpha == 0 {
		c.Alpha = d.Alpha
	}
	if c.BatchSize == 0 {
		c.BatchSize = d.BatchSize
	}
	if c.Tau == 0 {
		c.Tau = d.Tau
	}
	if c.MaxProfile == 0 {
		c.MaxProfile = d.MaxProfile
	}
	if c.MergeGapSec == 0 {
		c.MergeGapSec = d.MergeGapSec
	}
	if c.RefitEvery == 0 {
		c.RefitEvery = d.RefitEvery
	}
	return c
}

// State is the detector's per-tick verdict.
type State int

// Detector states. Warmup is reported while the initial profile is still
// being collected.
const (
	StateWarmup State = iota + 1
	StateNormal
	StateAnomalous
)

// Detector is the online movement detector. Feed it one tick of stream
// samples at a time with Push. Not safe for concurrent use.
type Detector struct {
	cfg        Config
	dt         float64
	rolling    []*stats.RollingStd
	profile    []float64 // FIFO of s_t values forming the normal profile
	kde        *stats.KDE
	threshold  float64
	queue      []float64 // batch queue Q of Algorithm 1
	queueAnom  int       // anomalous values in the queue
	warmup     []float64 // s_t values collected during initialisation
	warmTicks  int
	ticks      int
	thresholds int // number of threshold recomputations (diagnostics)
	// accepted counts batches merged since the last refit, implementing
	// RefitEvery.
	accepted int
}

// NewDetector returns a detector over numStreams streams sampled every dt
// seconds. It returns an error for invalid arguments.
func NewDetector(cfg Config, numStreams int, dt float64) (*Detector, error) {
	if numStreams < 1 {
		return nil, fmt.Errorf("md: need at least one stream, got %d", numStreams)
	}
	if dt <= 0 {
		return nil, fmt.Errorf("md: tick duration must be positive, got %v", dt)
	}
	cfg = cfg.withDefaults()
	w := int(cfg.StdWindowSec / dt)
	if w < 2 {
		w = 2
	}
	d := &Detector{
		cfg:       cfg,
		dt:        dt,
		rolling:   make([]*stats.RollingStd, numStreams),
		warmTicks: int(cfg.ProfileInitSec / dt),
	}
	for i := range d.rolling {
		d.rolling[i] = stats.NewRollingStd(w)
	}
	return d, nil
}

// SumStd returns the current detection statistic s_t.
func (d *Detector) SumStd() float64 {
	var sum float64
	for _, r := range d.rolling {
		sum += r.Std()
	}
	return sum
}

// Threshold returns the current anomaly threshold (the (100−α)-th profile
// percentile), or 0 during warm-up.
func (d *Detector) Threshold() float64 { return d.threshold }

// ProfileSize returns the number of s_t values in the normal profile.
func (d *Detector) ProfileSize() int { return len(d.profile) }

// Push feeds one tick of samples (one value per stream, dBm) and returns
// the detector state for this tick, together with the statistic s_t.
func (d *Detector) Push(samples []float64) (State, float64) {
	if len(samples) != len(d.rolling) {
		panic(fmt.Sprintf("md: Push got %d samples, want %d", len(samples), len(d.rolling)))
	}
	for i, x := range samples {
		d.rolling[i].Push(x)
	}
	d.ticks++
	st := d.SumStd()

	if d.kde == nil {
		d.warmup = append(d.warmup, st)
		if d.ticks >= d.warmTicks {
			d.initProfile()
		}
		return StateWarmup, st
	}

	anomalous := st >= d.threshold
	d.enqueue(st, anomalous)
	if anomalous {
		return StateAnomalous, st
	}
	return StateNormal, st
}

// PushInt8 is Push for quantised traces, avoiding a caller-side conversion
// allocation. buf must have capacity for one sample per stream.
func (d *Detector) PushInt8(samples []int8, buf []float64) (State, float64) {
	for i, v := range samples {
		buf[i] = float64(v)
	}
	return d.Push(buf[:len(samples)])
}

// initProfile builds the first normal profile from the warm-up samples.
// The earliest StdWindowSec worth of values is dropped: the rolling
// windows were not yet full and their tiny standard deviations would bias
// the profile low.
func (d *Detector) initProfile() {
	skip := int(d.cfg.StdWindowSec / d.dt)
	if skip >= len(d.warmup) {
		skip = len(d.warmup) / 2
	}
	d.profile = append(d.profile, d.warmup[skip:]...)
	d.warmup = nil
	d.refit()
}

// enqueue implements the batched profile update of Algorithm 1.
func (d *Detector) enqueue(st float64, anomalous bool) {
	d.queue = append(d.queue, st)
	if anomalous {
		d.queueAnom++
	}
	if len(d.queue) < d.cfg.BatchSize {
		return
	}
	frac := float64(d.queueAnom) / float64(len(d.queue))
	if frac < d.cfg.Tau {
		d.profile = append(d.profile, d.queue...)
		if over := len(d.profile) - d.cfg.MaxProfile; over > 0 {
			d.profile = d.profile[over:]
		}
		d.accepted++
		if d.accepted >= d.cfg.RefitEvery {
			d.accepted = 0
			d.refit()
		}
	}
	d.queue = d.queue[:0]
	d.queueAnom = 0
}

// refit re-estimates the profile KDE and the anomaly threshold.
func (d *Detector) refit() {
	kde, err := stats.NewKDE(d.profile, d.cfg.KDEBandwidth)
	if err != nil {
		// Profile can only be empty before initProfile; keep the previous
		// threshold in that impossible case.
		return
	}
	d.kde = kde
	d.threshold = kde.Percentile(100 - d.cfg.Alpha)
	d.thresholds++
}

// KDE returns the current profile density estimate (nil during warm-up).
// The caller must not retain it across Push calls if it needs a stable
// snapshot — refits replace it.
func (d *Detector) KDE() *stats.KDE { return d.kde }

// Window is a variation window: a maximal anomalous interval, in ticks.
type Window struct {
	StartTick, EndTick int // inclusive start, exclusive end
}

// Duration returns the window length in seconds for tick duration dt.
func (w Window) Duration(dt float64) float64 {
	return float64(w.EndTick-w.StartTick) * dt
}

// Result is the outcome of an offline detector run over a full trace.
type Result struct {
	// SumStd is the s_t series, one value per tick (0 during warm-up
	// before the rolling windows fill).
	SumStd []float64
	// Anomalous flags each tick (false during warm-up).
	Anomalous []bool
	// Windows are the raw variation windows after gap merging but before
	// any t∆ minimum-duration filtering.
	Windows []Window
	// DT is the tick duration.
	DT float64
}

// Run executes the detector over a full multi-stream trace (streams are
// [stream][tick] as produced by the simulator) restricted to the given
// stream subset. It returns the per-tick statistic and the extracted
// variation windows.
func Run(streams [][]int8, subset []int, dt float64, cfg Config) (*Result, error) {
	if len(streams) == 0 || len(subset) == 0 {
		return nil, fmt.Errorf("md: no streams to analyse")
	}
	ticks := len(streams[0])
	det, err := NewDetector(cfg, len(subset), dt)
	if err != nil {
		return nil, err
	}
	res := &Result{
		SumStd:    make([]float64, ticks),
		Anomalous: make([]bool, ticks),
		DT:        dt,
	}
	buf := make([]float64, len(subset))
	for i := 0; i < ticks; i++ {
		for j, k := range subset {
			buf[j] = float64(streams[k][i])
		}
		state, st := det.Push(buf)
		res.SumStd[i] = st
		res.Anomalous[i] = state == StateAnomalous
	}
	res.Windows = extractWindows(res.Anomalous, dt, cfg.withDefaults().MergeGapSec)
	return res, nil
}

// extractWindows converts the per-tick anomaly flags into maximal windows,
// merging runs separated by gaps shorter than mergeGapSec.
func extractWindows(anomalous []bool, dt, mergeGapSec float64) []Window {
	gap := int(mergeGapSec / dt)
	var out []Window
	inWin := false
	start := 0
	for i, a := range anomalous {
		if a && !inWin {
			inWin = true
			start = i
		} else if !a && inWin {
			inWin = false
			out = append(out, Window{StartTick: start, EndTick: i})
		}
	}
	if inWin {
		out = append(out, Window{StartTick: start, EndTick: len(anomalous)})
	}
	if gap <= 0 || len(out) < 2 {
		return out
	}
	merged := out[:1]
	for _, w := range out[1:] {
		last := &merged[len(merged)-1]
		if w.StartTick-last.EndTick <= gap {
			last.EndTick = w.EndTick
		} else {
			merged = append(merged, w)
		}
	}
	return merged
}

// FilterWindows returns the windows lasting at least minDurSec. Windows
// shorter than t∆ are ignored by the controller (Section IV-C4): they are
// attributed to users shifting in place or brief radio glitches.
func FilterWindows(ws []Window, dt, minDurSec float64) []Window {
	var out []Window
	for _, w := range ws {
		if w.Duration(dt) >= minDurSec {
			out = append(out, w)
		}
	}
	return out
}
