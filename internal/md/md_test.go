package md

import (
	"testing"

	"fadewich/internal/rng"
)

// synthStreams builds numStreams quiet Gaussian streams of n ticks, then
// lets mutate inject events.
func synthStreams(numStreams, n int, seed uint64, mutate func(streams [][]int8)) [][]int8 {
	src := rng.New(seed)
	streams := make([][]int8, numStreams)
	for k := range streams {
		streams[k] = make([]int8, n)
		for i := range streams[k] {
			streams[k][i] = int8(-60 + src.Normal(0, 0.8))
		}
	}
	if mutate != nil {
		mutate(streams)
	}
	return streams
}

// addBurst raises the variance of all streams in [from, to).
func addBurst(streams [][]int8, from, to int, sd float64, seed uint64) {
	src := rng.New(seed)
	for k := range streams {
		for i := from; i < to && i < len(streams[k]); i++ {
			streams[k][i] = int8(-60 + src.Normal(0, sd))
		}
	}
}

func TestDetectorErrors(t *testing.T) {
	if _, err := NewDetector(Config{}, 0, 0.2); err == nil {
		t.Fatal("zero streams accepted")
	}
	if _, err := NewDetector(Config{}, 4, 0); err == nil {
		t.Fatal("zero dt accepted")
	}
}

func TestQuietStreamsStayNormal(t *testing.T) {
	streams := synthStreams(6, 3000, 1, nil)
	res, err := Run(streams, []int{0, 1, 2, 3, 4, 5}, 0.2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wins := FilterWindows(res.Windows, 0.2, 4.5)
	if len(wins) != 0 {
		t.Fatalf("quiet trace produced %d long windows", len(wins))
	}
	// By construction ~1% of ticks may flicker anomalous; the fraction
	// must stay small.
	anom := 0
	for _, a := range res.Anomalous {
		if a {
			anom++
		}
	}
	if frac := float64(anom) / float64(len(res.Anomalous)); frac > 0.05 {
		t.Fatalf("quiet anomalous fraction %v", frac)
	}
}

func TestBurstCreatesWindow(t *testing.T) {
	streams := synthStreams(6, 3000, 2, func(s [][]int8) {
		addBurst(s, 1500, 1540, 5, 99) // 8-second burst at t=300s
	})
	res, err := Run(streams, []int{0, 1, 2, 3, 4, 5}, 0.2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wins := FilterWindows(res.Windows, 0.2, 4.5)
	if len(wins) != 1 {
		t.Fatalf("got %d windows, want 1", len(wins))
	}
	t1 := float64(wins[0].StartTick) * 0.2
	if t1 < 298 || t1 > 304 {
		t.Fatalf("window starts at %vs, want ≈300", t1)
	}
}

func TestWindowEndsAfterBurst(t *testing.T) {
	streams := synthStreams(6, 4000, 3, func(s [][]int8) {
		addBurst(s, 2000, 2050, 5, 98)
	})
	res, _ := Run(streams, []int{0, 1, 2, 3, 4, 5}, 0.2, Config{})
	wins := FilterWindows(res.Windows, 0.2, 4.5)
	if len(wins) != 1 {
		t.Fatalf("windows %d", len(wins))
	}
	// Window must end within a few seconds of the burst end (std window
	// decay is 2.4 s by default).
	endT := float64(wins[0].EndTick) * 0.2
	if endT < 410 || endT > 418 {
		t.Fatalf("window ends at %v, want ≈410-414", endT)
	}
}

func TestTwoSeparatedBurstsTwoWindows(t *testing.T) {
	streams := synthStreams(6, 6000, 4, func(s [][]int8) {
		addBurst(s, 2000, 2035, 5, 97)
		addBurst(s, 4000, 4035, 5, 96)
	})
	res, _ := Run(streams, []int{0, 1, 2, 3, 4, 5}, 0.2, Config{})
	wins := FilterWindows(res.Windows, 0.2, 4.5)
	if len(wins) != 2 {
		t.Fatalf("windows %d, want 2", len(wins))
	}
}

func TestMergeGapJoinsCloseRuns(t *testing.T) {
	anom := make([]bool, 100)
	for i := 10; i < 20; i++ {
		anom[i] = true
	}
	for i := 22; i < 30; i++ { // 0.4s gap at dt=0.2
		anom[i] = true
	}
	wins := extractWindows(anom, 0.2, 0.8)
	if len(wins) != 1 {
		t.Fatalf("gap not merged: %d windows", len(wins))
	}
	if wins[0].StartTick != 10 || wins[0].EndTick != 30 {
		t.Fatalf("merged window %+v", wins[0])
	}
	// Without merging, two windows.
	wins = extractWindows(anom, 0.2, 0)
	if len(wins) != 2 {
		t.Fatalf("unmerged windows %d, want 2", len(wins))
	}
}

func TestExtractWindowsTrailingRun(t *testing.T) {
	anom := make([]bool, 50)
	for i := 40; i < 50; i++ {
		anom[i] = true
	}
	wins := extractWindows(anom, 0.2, 0.8)
	if len(wins) != 1 || wins[0].EndTick != 50 {
		t.Fatalf("trailing run windows %+v", wins)
	}
}

func TestFilterWindows(t *testing.T) {
	wins := []Window{
		{StartTick: 0, EndTick: 10},  // 2.0s
		{StartTick: 20, EndTick: 43}, // 4.6s
		{StartTick: 50, EndTick: 72}, // 4.4s
	}
	got := FilterWindows(wins, 0.2, 4.5)
	if len(got) != 1 || got[0].StartTick != 20 {
		t.Fatalf("filtered %+v", got)
	}
}

func TestProfileAdaptsToShiftedBaseline(t *testing.T) {
	// Algorithm 1's batched update: after the environment's quiet level
	// rises slowly, the detector must stop flagging it.
	src := rng.New(5)
	det, err := NewDetector(Config{}, 4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	push := func(sd float64, n int) int {
		anomalous := 0
		buf := make([]float64, 4)
		for i := 0; i < n; i++ {
			for k := range buf {
				buf[k] = -60 + src.Normal(0, sd)
			}
			if state, _ := det.Push(buf); state == StateAnomalous {
				anomalous++
			}
		}
		return anomalous
	}
	push(0.5, 300) // warm-up + quiet
	// Drift the noise level up gradually (in small steps so each batch
	// passes the τ guard).
	for _, sd := range []float64{0.55, 0.6, 0.65, 0.7, 0.75, 0.8} {
		push(sd, 400)
	}
	late := push(0.8, 1000)
	if frac := float64(late) / 1000; frac > 0.1 {
		t.Fatalf("detector did not adapt: %.1f%% anomalous at the drifted level", frac*100)
	}
}

func TestSuddenJumpStaysAnomalous(t *testing.T) {
	// In contrast to slow drift, a sudden large jump must keep the
	// detector anomalous for a while (the batch τ guard rejects poisoned
	// batches).
	src := rng.New(6)
	det, _ := NewDetector(Config{}, 4, 0.2)
	buf := make([]float64, 4)
	for i := 0; i < 400; i++ {
		for k := range buf {
			buf[k] = -60 + src.Normal(0, 0.5)
		}
		det.Push(buf)
	}
	anomalous := 0
	for i := 0; i < 100; i++ {
		for k := range buf {
			buf[k] = -60 + src.Normal(0, 4)
		}
		if state, _ := det.Push(buf); state == StateAnomalous {
			anomalous++
		}
	}
	if anomalous < 80 {
		t.Fatalf("only %d/100 ticks anomalous after a 8x noise jump", anomalous)
	}
}

func TestDetectorWarmup(t *testing.T) {
	det, _ := NewDetector(Config{ProfileInitSec: 10}, 2, 0.2)
	buf := []float64{-60, -60}
	warmTicks := int(10 / 0.2)
	for i := 0; i < warmTicks-1; i++ {
		if state, _ := det.Push(buf); state != StateWarmup {
			t.Fatalf("tick %d: state %v during warm-up", i, state)
		}
	}
	det.Push(buf)
	if det.KDE() == nil {
		t.Fatal("profile not initialised after warm-up")
	}
	if det.Threshold() == 0 {
		t.Fatal("threshold not set after warm-up")
	}
}

func TestPushPanicsOnWrongLength(t *testing.T) {
	det, _ := NewDetector(Config{}, 3, 0.2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length Push did not panic")
		}
	}()
	det.Push([]float64{1})
}

func TestPushInt8MatchesPush(t *testing.T) {
	mk := func() *Detector {
		d, _ := NewDetector(Config{}, 2, 0.2)
		return d
	}
	a, b := mk(), mk()
	src := rng.New(7)
	buf := make([]float64, 2)
	for i := 0; i < 500; i++ {
		v1 := int8(-60 + src.Normal(0, 1))
		v2 := int8(-55 + src.Normal(0, 1))
		sa, va := a.Push([]float64{float64(v1), float64(v2)})
		sb, vb := b.PushInt8([]int8{v1, v2}, buf)
		if sa != sb || va != vb {
			t.Fatalf("PushInt8 diverges at tick %d", i)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, nil, 0.2, Config{}); err == nil {
		t.Fatal("empty streams accepted")
	}
	streams := synthStreams(2, 100, 8, nil)
	if _, err := Run(streams, nil, 0.2, Config{}); err == nil {
		t.Fatal("empty subset accepted")
	}
}

func TestWindowDuration(t *testing.T) {
	w := Window{StartTick: 10, EndTick: 35}
	if d := w.Duration(0.2); d != 5 {
		t.Fatalf("duration %v", d)
	}
}

func TestSubsetRestrictsAnalysis(t *testing.T) {
	// A burst on stream 5 only must be invisible when analysing streams
	// 0..2 but visible over the full set.
	streams := synthStreams(6, 3000, 9, func(s [][]int8) {
		src := rng.New(77)
		for i := 1500; i < 1540; i++ {
			s[5][i] = int8(-60 + src.Normal(0, 12))
		}
	})
	resSub, _ := Run(streams, []int{0, 1, 2}, 0.2, Config{})
	if n := len(FilterWindows(resSub.Windows, 0.2, 4.5)); n != 0 {
		t.Fatalf("subset without the bursty stream saw %d windows", n)
	}
	resAll, _ := Run(streams, []int{0, 1, 2, 3, 4, 5}, 0.2, Config{})
	if n := len(FilterWindows(resAll.Windows, 0.2, 4.0)); n == 0 {
		t.Fatal("full set missed the burst")
	}
}
