package re

import (
	"math"
	"testing"

	"fadewich/internal/kma"
	"fadewich/internal/md"
	"fadewich/internal/rng"
	"fadewich/internal/stats"
	"fadewich/internal/svm"
)

func TestExtractDimensions(t *testing.T) {
	streams := [][]int8{
		make([]int8, 100), make([]int8, 100), make([]int8, 100),
	}
	f := Extract(streams, []int{0, 2}, 10, 0.2, FeatureConfig{})
	if len(f) != 2*FeaturesPerStream {
		t.Fatalf("features %d, want %d", len(f), 2*FeaturesPerStream)
	}
}

func TestExtractValuesMatchStats(t *testing.T) {
	// One stream with a known window; hand-check the (var, ent, ac)
	// triple against the stats package.
	src := rng.New(4)
	stream := make([]int8, 200)
	for i := range stream {
		stream[i] = int8(-60 + src.Normal(0, 3))
	}
	cfg := FeatureConfig{TDeltaSec: 4, EntropyBins: 8, AutocorrLagSec: 0.4}
	start := 50
	f := Extract([][]int8{stream}, []int{0}, start, 0.2, cfg)

	n := int(4 / 0.2)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = float64(stream[start+i])
	}
	if math.Abs(f[0]-stats.Variance(w)) > 1e-12 {
		t.Fatalf("variance %v, want %v", f[0], stats.Variance(w))
	}
	if math.Abs(f[1]-stats.Entropy(w, 8)) > 1e-12 {
		t.Fatalf("entropy %v, want %v", f[1], stats.Entropy(w, 8))
	}
	if math.Abs(f[2]-stats.Autocorrelation(w, 2)) > 1e-12 {
		t.Fatalf("autocorrelation %v, want %v", f[2], stats.Autocorrelation(w, 2))
	}
}

func TestExtractClampsAtStreamEnd(t *testing.T) {
	stream := make([]int8, 30)
	f := Extract([][]int8{stream}, []int{0}, 25, 0.2, FeatureConfig{TDeltaSec: 4})
	if len(f) != FeaturesPerStream {
		t.Fatal("extraction at stream end must still produce features")
	}
}

func TestExtractWindowMatchesExtract(t *testing.T) {
	src := rng.New(5)
	stream := make([]int8, 100)
	for i := range stream {
		stream[i] = int8(-55 + src.Normal(0, 2))
	}
	cfg := FeatureConfig{TDeltaSec: 3, EntropyBins: 8, AutocorrLagSec: 0.4}
	a := Extract([][]int8{stream}, []int{0}, 20, 0.2, cfg)

	n := cfg.WindowTicks(0.2)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = float64(stream[20+i])
	}
	b := ExtractWindow([][]float64{w}, 0.2, cfg)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("feature %d: Extract %v vs ExtractWindow %v", i, a[i], b[i])
		}
	}
}

func TestFeatureName(t *testing.T) {
	if FeatureName(0) != "var" || FeatureName(1) != "ent" || FeatureName(2) != "ac" {
		t.Fatal("feature names wrong")
	}
}

// labelWindow is a helper running AutoLabel over a synthetic input set.
func labelWindow(t *testing.T, inputs [][]float64, w md.Window) (int, bool) {
	t.Helper()
	tracker := kma.NewTracker(inputs)
	return AutoLabel(w, 0.2, tracker, LabelConfig{})
}

func TestAutoLabelDeparture(t *testing.T) {
	// Window [100s, 106s]. Workstation 0's user left: last input at 99.5,
	// silent long after. Workstation 1's user keeps typing.
	w := md.Window{StartTick: 500, EndTick: 530}
	inputs := [][]float64{
		{90, 95, 99.5},
		typingUntil(300, 2.5),
	}
	label, ok := labelWindow(t, inputs, w)
	if !ok || label != 1 {
		t.Fatalf("label=%d ok=%v, want departure of ws0 (label 1)", label, ok)
	}
}

// typingUntil generates inputs every stepSec until end.
func typingUntil(end, stepSec float64) []float64 {
	var out []float64
	for t := 1.0; t < end; t += stepSec {
		out = append(out, t)
	}
	return out
}

func TestAutoLabelEntry(t *testing.T) {
	// Workstation 0 idle for a long time, input resumes shortly after the
	// window (user walked in and sat down).
	w := md.Window{StartTick: 500, EndTick: 525} // [100, 105]
	inputs := [][]float64{
		{10, 108}, // long idle, resumes at 108
		typingUntil(300, 2.5),
	}
	label, ok := labelWindow(t, inputs, w)
	if !ok || label != LabelEntry {
		t.Fatalf("label=%d ok=%v, want w0", label, ok)
	}
}

func TestAutoLabelDiscardsPausedBystander(t *testing.T) {
	// Both ws0 (departing) and ws1 (merely paused) stop at the window
	// start — but ws1 resumes within QuietAfterSec, so the attribution to
	// ws0 must remain unambiguous.
	w := md.Window{StartTick: 500, EndTick: 530} // [100, 106]
	inputs := [][]float64{
		{99.5},        // gone for good
		{99.0, 112.0}, // paused, then resumed typing at 112 (< 106+15)
	}
	label, ok := labelWindow(t, inputs, w)
	if !ok || label != 1 {
		t.Fatalf("label=%d ok=%v, want 1", label, ok)
	}
}

func TestAutoLabelAmbiguousTwoDepartures(t *testing.T) {
	// Two workstations go idle at the window start and stay idle: cannot
	// attribute; must discard.
	w := md.Window{StartTick: 500, EndTick: 530}
	inputs := [][]float64{
		{99.5},
		{100.2},
	}
	if _, ok := labelWindow(t, inputs, w); ok {
		t.Fatal("ambiguous window was not discarded")
	}
}

func TestAutoLabelDiscardsNoise(t *testing.T) {
	// Nobody went idle, nobody returns: an interference window.
	w := md.Window{StartTick: 500, EndTick: 530}
	inputs := [][]float64{
		typingUntil(300, 2.5),
		typingUntil(300, 3.0),
	}
	if label, ok := labelWindow(t, inputs, w); ok {
		t.Fatalf("noise window labelled %d", label)
	}
}

func TestAutoLabelStillThereUserNotADeparture(t *testing.T) {
	// ws0's user pauses at the window start but types again mid-window:
	// not a departure; with nothing else, discard.
	w := md.Window{StartTick: 500, EndTick: 550} // [100, 110]
	inputs := [][]float64{
		{99.5, 106},
		typingUntil(300, 2.5),
	}
	if label, ok := labelWindow(t, inputs, w); ok {
		t.Fatalf("mid-window typist labelled %d", label)
	}
}

func TestTrainPredictRoundtrip(t *testing.T) {
	// Synthetic, linearly separable feature clusters per label.
	src := rng.New(6)
	var samples []Sample
	for label := 0; label < 3; label++ {
		for i := 0; i < 15; i++ {
			f := make([]float64, 6)
			for j := range f {
				f[j] = float64(label*5) + src.Normal(0, 0.4)
			}
			samples = append(samples, Sample{Features: f, Label: label})
		}
	}
	clf, err := Train(samples, svm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range samples {
		if clf.Predict(s.Features) == s.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(samples)); acc < 0.95 {
		t.Fatalf("roundtrip accuracy %v", acc)
	}
	if clf.Dims() != 6 {
		t.Fatalf("dims %d", clf.Dims())
	}
	if len(clf.Classes()) != 3 {
		t.Fatalf("classes %v", clf.Classes())
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, svm.Config{}); err == nil {
		t.Fatal("empty training accepted")
	}
	bad := []Sample{
		{Features: []float64{1, 2}, Label: 0},
		{Features: []float64{1}, Label: 1},
	}
	if _, err := Train(bad, svm.Config{}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	oneClass := []Sample{
		{Features: []float64{1, 2}, Label: 1},
		{Features: []float64{2, 1}, Label: 1},
	}
	if _, err := Train(oneClass, svm.Config{}); err == nil {
		t.Fatal("single-class training accepted")
	}
}
