// Package re implements the Radio Environment module of Section IV-D: for
// each variation window it extracts a per-stream feature signature
// (variance, histogram entropy, lag autocorrelation over the first t∆
// seconds of the window — the most distinctive part of a departure, before
// paths towards the door overlap), builds labelled training samples by
// correlating windows with workstation idle times through KMA (discarding
// ambiguous windows, exactly as the paper's training phase does), and
// wraps the SVM multiclass classifier used in the online phase.
//
// Labels follow the paper: 0 is w0 ("user entered the office") and i ≥ 1
// is w_i ("user left workstation i").
package re

import (
	"fmt"

	"fadewich/internal/kma"
	"fadewich/internal/md"
	"fadewich/internal/stats"
	"fadewich/internal/svm"
)

// LabelEntry is the w0 class: someone entered the office.
const LabelEntry = 0

// FeatureConfig parameterises signature extraction.
type FeatureConfig struct {
	// TDeltaSec is t∆: the signature covers [t1, t1+t∆] of each window.
	TDeltaSec float64
	// EntropyBins is the histogram bin count for the entropy feature.
	EntropyBins int
	// AutocorrLagSec is the lag of the autocorrelation feature, in
	// seconds (converted to ticks with the trace's dt).
	AutocorrLagSec float64
}

// DefaultFeatureConfig returns the calibrated extraction parameters
// (t∆ = 4.5 s as chosen in Section VII-A).
func DefaultFeatureConfig() FeatureConfig {
	return FeatureConfig{TDeltaSec: 4.5, EntropyBins: 8, AutocorrLagSec: 0.4}
}

// withDefaults fills zero fields.
func (c FeatureConfig) withDefaults() FeatureConfig {
	d := DefaultFeatureConfig()
	if c.TDeltaSec == 0 {
		c.TDeltaSec = d.TDeltaSec
	}
	if c.EntropyBins == 0 {
		c.EntropyBins = d.EntropyBins
	}
	if c.AutocorrLagSec == 0 {
		c.AutocorrLagSec = d.AutocorrLagSec
	}
	return c
}

// FeaturesPerStream is the number of features extracted per stream.
const FeaturesPerStream = 3

// FeatureName returns a human-readable name for feature index f within a
// stream, matching the paper's var/ent/ac naming.
func FeatureName(f int) string {
	switch f {
	case 0:
		return "var"
	case 1:
		return "ent"
	case 2:
		return "ac"
	default:
		return fmt.Sprintf("f%d", f)
	}
}

// Extract computes the signature of the window starting at startTick over
// the given stream subset. streams is [stream][tick]; the window covers
// TDeltaSec seconds. The returned vector has FeaturesPerStream values per
// subset stream, ordered (var, ent, ac) per stream.
func Extract(streams [][]int8, subset []int, startTick int, dt float64, cfg FeatureConfig) []float64 {
	cfg = cfg.withDefaults()
	n := windowTicks(cfg, dt)
	lag := lagTicks(cfg, dt)
	out := make([]float64, 0, len(subset)*FeaturesPerStream)
	buf := make([]float64, n)
	for _, k := range subset {
		s := streams[k]
		end := startTick + n
		if end > len(s) {
			end = len(s)
		}
		w := buf[:0]
		for i := startTick; i < end; i++ {
			w = append(w, float64(s[i]))
		}
		appendStreamFeatures(&out, w, lag, cfg.EntropyBins)
	}
	return out
}

// ExtractWindow computes the signature from already-sliced per-stream
// sample windows (window[k] holds stream k's t∆-second series), the form
// the online System uses with its ring buffers.
func ExtractWindow(window [][]float64, dt float64, cfg FeatureConfig) []float64 {
	cfg = cfg.withDefaults()
	lag := lagTicks(cfg, dt)
	out := make([]float64, 0, len(window)*FeaturesPerStream)
	for _, w := range window {
		appendStreamFeatures(&out, w, lag, cfg.EntropyBins)
	}
	return out
}

// WindowTicks returns the number of samples a t∆ feature window spans.
func (c FeatureConfig) WindowTicks(dt float64) int {
	return windowTicks(c.withDefaults(), dt)
}

func windowTicks(cfg FeatureConfig, dt float64) int {
	n := int(cfg.TDeltaSec / dt)
	if n < 2 {
		n = 2
	}
	return n
}

func lagTicks(cfg FeatureConfig, dt float64) int {
	lag := int(cfg.AutocorrLagSec / dt)
	if lag < 1 {
		lag = 1
	}
	return lag
}

// appendStreamFeatures appends the (var, ent, ac) triple of one stream
// window.
func appendStreamFeatures(out *[]float64, w []float64, lag, entropyBins int) {
	*out = append(*out,
		stats.Variance(w),
		stats.Entropy(w, entropyBins),
		stats.Autocorrelation(w, lag),
	)
}

// Sample is one labelled signature.
type Sample struct {
	Features []float64
	// Label is 0 for w0 (entry) or workstation index + 1 for departures.
	Label int
	// Day and StartTick locate the originating window.
	Day, StartTick int
}

// LabelConfig parameterises the automatic labelling of training samples
// from KMA idle times (Section IV-D3).
type LabelConfig struct {
	// IdleSlackSec is how close a workstation's last input must be to the
	// window start for the window to be attributed to that workstation's
	// user departing.
	IdleSlackSec float64
	// QuietAfterSec is how long past the window end the attributed
	// workstation must stay input-free: a user who really departed is
	// gone, while a seated user who merely paused resumes typing within
	// seconds. This is what disambiguates the departing user from idle
	// bystanders. Labelling therefore resolves QuietAfterSec after the
	// window ends.
	QuietAfterSec float64
	// LongIdleSec is the idle time beyond which a workstation's user is
	// presumed out of the office (entry-label candidate).
	LongIdleSec float64
	// ReturnSlackSec is the horizon after the window within which input
	// must resume at a long-idle workstation to label the window w0.
	ReturnSlackSec float64
}

// DefaultLabelConfig returns calibrated labelling parameters.
func DefaultLabelConfig() LabelConfig {
	return LabelConfig{IdleSlackSec: 3, QuietAfterSec: 15, LongIdleSec: 60, ReturnSlackSec: 30}
}

// withDefaults fills zero fields.
func (c LabelConfig) withDefaults() LabelConfig {
	d := DefaultLabelConfig()
	if c.IdleSlackSec == 0 {
		c.IdleSlackSec = d.IdleSlackSec
	}
	if c.QuietAfterSec == 0 {
		c.QuietAfterSec = d.QuietAfterSec
	}
	if c.LongIdleSec == 0 {
		c.LongIdleSec = d.LongIdleSec
	}
	if c.ReturnSlackSec == 0 {
		c.ReturnSlackSec = d.ReturnSlackSec
	}
	return c
}

// AutoLabel attributes a variation window to a label using only KMA
// information, as the training phase must (no supervisor). It returns
// (label, true) on an unambiguous attribution and (0, false) when the
// window should be discarded:
//
//   - exactly one workstation went idle at the window start → that
//     workstation's departure label;
//   - no departure candidate, and exactly one long-idle workstation
//     resumes input shortly after the window → w0 (its user walked in);
//   - anything else is ambiguous.
func AutoLabel(w md.Window, dt float64, tracker *kma.Tracker, cfg LabelConfig) (int, bool) {
	cfg = cfg.withDefaults()
	t1 := float64(w.StartTick) * dt
	t2 := float64(w.EndTick) * dt

	var departures []int
	var longIdle []int
	for ws := 0; ws < tracker.NumWorkstations(); ws++ {
		last, ok := tracker.LastInput(ws, t1+cfg.IdleSlackSec)
		switch {
		case ok && last >= t1-cfg.IdleSlackSec:
			// Went idle right at the window start and produced nothing
			// during the window nor for QuietAfterSec beyond it: a
			// departure candidate. A seated bystander who merely paused
			// resumes typing quickly and is excluded here.
			if !tracker.InputInRange(ws, t1+cfg.IdleSlackSec, t2+cfg.QuietAfterSec) {
				departures = append(departures, ws)
			}
		case !ok || t1-last >= cfg.LongIdleSec:
			longIdle = append(longIdle, ws)
		}
	}

	if len(departures) == 1 {
		return departures[0] + 1, true
	}
	if len(departures) > 1 {
		return 0, false
	}
	// Entry candidate: a long-idle workstation whose input resumes within
	// the return horizon.
	var entries []int
	for _, ws := range longIdle {
		if next, ok := tracker.NextInputAfter(ws, t1); ok && next <= t2+cfg.ReturnSlackSec {
			entries = append(entries, ws)
		}
	}
	if len(entries) == 1 {
		return LabelEntry, true
	}
	return 0, false
}

// Classifier wraps the trained multiclass SVM for the online phase.
type Classifier struct {
	model *svm.Multiclass
	dims  int
}

// Train fits the classifier on labelled samples. It returns an error when
// samples are empty, dimensions disagree, or fewer than two classes are
// present.
func Train(samples []Sample, cfg svm.Config) (*Classifier, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("re: no training samples")
	}
	dims := len(samples[0].Features)
	x := make([][]float64, len(samples))
	labels := make([]int, len(samples))
	for i, s := range samples {
		if len(s.Features) != dims {
			return nil, fmt.Errorf("re: sample %d has %d features, want %d", i, len(s.Features), dims)
		}
		x[i] = s.Features
		labels[i] = s.Label
	}
	model, err := svm.TrainMulticlass(x, labels, cfg)
	if err != nil {
		return nil, fmt.Errorf("re: %w", err)
	}
	return &Classifier{model: model, dims: dims}, nil
}

// Predict returns the label for a signature.
func (c *Classifier) Predict(features []float64) int {
	return c.model.Predict(features)
}

// Dims returns the expected feature dimensionality.
func (c *Classifier) Dims() int { return c.dims }

// Classes returns the labels seen in training.
func (c *Classifier) Classes() []int { return c.model.Classes() }
