package svm

import (
	"math"
	"testing"

	"fadewich/internal/rng"
)

// blobs generates gaussian clusters, one per center, n points each.
func blobs(seed uint64, n int, sd float64, centers ...[]float64) (x [][]float64, y []int) {
	src := rng.New(seed)
	for ci, c := range centers {
		for i := 0; i < n; i++ {
			row := make([]float64, len(c))
			for j := range c {
				row[j] = c[j] + src.Normal(0, sd)
			}
			x = append(x, row)
			y = append(y, ci)
		}
	}
	return x, y
}

func accuracy(m *Multiclass, x [][]float64, y []int) float64 {
	correct := 0
	for i := range x {
		if m.Predict(x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func TestLinearSeparable(t *testing.T) {
	x, y := blobs(1, 40, 0.5, []float64{0, 0}, []float64{5, 5})
	m, err := TrainMulticlass(x, y, Config{Kernel: Linear{}})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, x, y); acc < 0.98 {
		t.Fatalf("separable accuracy %v", acc)
	}
	// Novel points on either side.
	if m.Predict([]float64{-1, -1}) != 0 {
		t.Fatal("misclassified far negative point")
	}
	if m.Predict([]float64{6, 6}) != 1 {
		t.Fatal("misclassified far positive point")
	}
}

func TestXORRequiresRBF(t *testing.T) {
	// XOR: linearly inseparable; RBF must handle it.
	var x [][]float64
	var y []int
	src := rng.New(2)
	for i := 0; i < 200; i++ {
		a, b := src.Bool(0.5), src.Bool(0.5)
		px, py := 0.0, 0.0
		if a {
			px = 3
		}
		if b {
			py = 3
		}
		x = append(x, []float64{px + src.Normal(0, 0.3), py + src.Normal(0, 0.3)})
		if a != b {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	rbf, err := TrainMulticlass(x, y, Config{Kernel: RBF{Gamma: 1}, C: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(rbf, x, y); acc < 0.95 {
		t.Fatalf("RBF XOR accuracy %v", acc)
	}
	lin, err := TrainMulticlass(x, y, Config{Kernel: Linear{}})
	if err != nil {
		t.Fatal(err)
	}
	// A linear separator cannot express XOR; some slack for the noisy
	// cluster sizes, but it must stay clearly below the RBF score.
	if acc := accuracy(lin, x, y); acc > 0.87 {
		t.Fatalf("linear kernel should fail on XOR, got %v", acc)
	}
}

func TestMulticlassFourBlobs(t *testing.T) {
	x, y := blobs(3, 30, 0.4,
		[]float64{0, 0}, []float64{6, 0}, []float64{0, 6}, []float64{6, 6})
	m, err := TrainMulticlass(x, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, x, y); acc < 0.95 {
		t.Fatalf("4-class accuracy %v", acc)
	}
	if got := len(m.Classes()); got != 4 {
		t.Fatalf("classes %d", got)
	}
}

func TestAutoGammaRBF(t *testing.T) {
	x, y := blobs(4, 30, 0.5, []float64{0, 0, 0}, []float64{4, 4, 4})
	m, err := TrainMulticlass(x, y, Config{Kernel: RBF{}}) // Gamma 0 → auto
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, x, y); acc < 0.95 {
		t.Fatalf("auto-gamma accuracy %v", acc)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := TrainMulticlass(nil, nil, Config{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	x, _ := blobs(5, 10, 0.3, []float64{0, 0})
	oneClass := make([]int, len(x))
	if _, err := TrainMulticlass(x, oneClass, Config{}); err == nil {
		t.Fatal("single-class training accepted")
	}
	if _, err := TrainMulticlass(x, []int{0}, Config{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestScalerStandardises(t *testing.T) {
	x := [][]float64{{10, 100}, {20, 200}, {30, 300}}
	s := FitScaler(x)
	out := s.TransformAll(x)
	for j := 0; j < 2; j++ {
		var mean, sq float64
		for i := range out {
			mean += out[i][j]
		}
		mean /= 3
		for i := range out {
			d := out[i][j] - mean
			sq += d * d
		}
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("column %d mean %v", j, mean)
		}
		if sd := math.Sqrt(sq / 3); math.Abs(sd-1) > 1e-9 {
			t.Fatalf("column %d sd %v", j, sd)
		}
	}
}

func TestScalerConstantFeature(t *testing.T) {
	x := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	s := FitScaler(x)
	out := s.Transform([]float64{5, 2})
	if out[0] != 0 {
		t.Fatalf("constant feature transforms to %v, want 0", out[0])
	}
}

func TestScalerEmptyFit(t *testing.T) {
	s := FitScaler(nil)
	got := s.Transform([]float64{1, 2})
	if got[0] != 1 || got[1] != 2 {
		t.Fatal("empty scaler should pass values through")
	}
}

func TestKernels(t *testing.T) {
	a, b := []float64{1, 2}, []float64{3, 4}
	if got := (Linear{}).Eval(a, b); got != 11 {
		t.Fatalf("linear kernel %v", got)
	}
	if got := (RBF{Gamma: 0.5}).Eval(a, a); got != 1 {
		t.Fatalf("RBF self-similarity %v", got)
	}
	// ‖a−b‖² = 8 → exp(−4)
	if got := (RBF{Gamma: 0.5}).Eval(a, b); math.Abs(got-math.Exp(-4)) > 1e-12 {
		t.Fatalf("RBF kernel %v", got)
	}
	if (Linear{}).Name() == "" || (RBF{Gamma: 1}).Name() == "" {
		t.Fatal("kernels must have names")
	}
}

func TestStratifiedKFold(t *testing.T) {
	labels := make([]int, 100)
	for i := range labels {
		labels[i] = i % 4
	}
	folds := StratifiedKFold(labels, 5, 1)
	if len(folds) != 5 {
		t.Fatalf("folds %d", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		// Class balance: each fold has 20 samples, 5 per class.
		classCount := map[int]int{}
		if len(f) != 20 {
			t.Fatalf("fold size %d", len(f))
		}
		for _, idx := range f {
			if seen[idx] {
				t.Fatalf("index %d appears twice", idx)
			}
			seen[idx] = true
			classCount[labels[idx]]++
		}
		for c, n := range classCount {
			if n != 5 {
				t.Fatalf("class %d has %d samples in fold, want 5", c, n)
			}
		}
	}
	if len(seen) != 100 {
		t.Fatalf("folds cover %d samples", len(seen))
	}
}

func TestStratifiedKFoldDeterministic(t *testing.T) {
	labels := []int{0, 0, 1, 1, 0, 1, 0, 1, 0, 1}
	a := StratifiedKFold(labels, 2, 9)
	b := StratifiedKFold(labels, 2, 9)
	for f := range a {
		for i := range a[f] {
			if a[f][i] != b[f][i] {
				t.Fatal("k-fold split not deterministic")
			}
		}
	}
}

func TestTrainingDeterministic(t *testing.T) {
	x, y := blobs(6, 25, 0.6, []float64{0, 0}, []float64{3, 3})
	m1, _ := TrainMulticlass(x, y, Config{Seed: 5})
	m2, _ := TrainMulticlass(x, y, Config{Seed: 5})
	probe := []float64{1.5, 1.4}
	if m1.Predict(probe) != m2.Predict(probe) {
		t.Fatal("training not deterministic in seed")
	}
}

func TestNumSupportVectors(t *testing.T) {
	x, y := blobs(7, 20, 0.4, []float64{0, 0}, []float64{5, 5})
	m, _ := TrainMulticlass(x, y, Config{})
	sv := m.NumSupportVectors()
	if sv == 0 {
		t.Fatal("no support vectors")
	}
	if sv > len(x) {
		t.Fatalf("more SVs (%d) than samples (%d)", sv, len(x))
	}
}

func TestOverlappingClassesStillMostlyCorrect(t *testing.T) {
	// Heavily overlapping blobs: the SVM cannot be perfect but must do
	// far better than chance.
	x, y := blobs(8, 100, 1.5, []float64{0, 0}, []float64{2, 2})
	m, err := TrainMulticlass(x, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, x, y); acc < 0.7 {
		t.Fatalf("overlapping accuracy %v", acc)
	}
}
