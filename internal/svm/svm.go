// Package svm is a from-scratch support vector machine used by the Radio
// Environment module to classify variation-window signatures (Section
// IV-D3). It provides a soft-margin binary SVM trained with the simplified
// SMO algorithm (Platt's sequential minimal optimisation with random
// second-choice heuristic), linear and RBF kernels, a one-vs-one
// multiclass wrapper with margin-aware vote tie-breaking, a z-score
// feature scaler, and stratified k-fold splitting for the evaluation
// harness's cross-validation.
package svm

import (
	"errors"
	"fmt"
	"math"

	"fadewich/internal/rng"
)

// Kernel computes inner products in feature space.
type Kernel interface {
	Eval(a, b []float64) float64
	Name() string
}

// Linear is the ordinary dot-product kernel.
type Linear struct{}

// Eval implements Kernel.
func (Linear) Eval(a, b []float64) float64 {
	var sum float64
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Name implements Kernel.
func (Linear) Name() string { return "linear" }

// RBF is the Gaussian radial basis function kernel
// K(a,b) = exp(−γ‖a−b‖²). A Gamma of 0 selects the scikit-learn-style
// automatic value 1/d (features are standardised by the multiclass
// wrapper, so per-feature variance is 1).
type RBF struct {
	Gamma float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Exp(-k.Gamma * sum)
}

// Name implements Kernel.
func (k RBF) Name() string { return fmt.Sprintf("rbf(γ=%.4g)", k.Gamma) }

var (
	_ Kernel = Linear{}
	_ Kernel = RBF{}
)

// Config parameterises training.
type Config struct {
	// C is the soft-margin penalty (default 1).
	C float64
	// Kernel defaults to Linear.
	Kernel Kernel
	// Tol is the KKT violation tolerance (default 1e-3).
	Tol float64
	// MaxPasses is the number of consecutive full passes without an
	// update before SMO declares convergence (default 5).
	MaxPasses int
	// MaxIter bounds total passes as a safety net (default 300).
	MaxIter int
	// Seed drives SMO's random second-choice heuristic.
	Seed uint64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.C == 0 {
		c.C = 1
	}
	if c.Kernel == nil {
		c.Kernel = Linear{}
	}
	if c.Tol == 0 {
		c.Tol = 1e-3
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 5
	}
	if c.MaxIter == 0 {
		c.MaxIter = 300
	}
	return c
}

// ErrNoData is returned when training is attempted with no samples.
var ErrNoData = errors.New("svm: no training samples")

// binary is a trained two-class model. Labels are {-1, +1}.
type binary struct {
	kernel Kernel
	sv     [][]float64 // support vectors
	coef   []float64   // alpha_i * y_i for each support vector
	b      float64
}

// decision returns the signed margin f(x) = Σ coef_i K(sv_i, x) + b.
func (m *binary) decision(x []float64) float64 {
	sum := m.b
	for i, v := range m.sv {
		sum += m.coef[i] * m.kernel.Eval(v, x)
	}
	return sum
}

// trainBinary runs simplified SMO over the precomputed samples. y must
// contain only −1 and +1.
func trainBinary(x [][]float64, y []float64, cfg Config, src *rng.Source) (*binary, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrNoData
	}
	// Precompute the kernel matrix; n is small (tens to a few hundred
	// samples) in every use in this system.
	gram := make([][]float64, n)
	for i := range gram {
		gram[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := cfg.Kernel.Eval(x[i], x[j])
			gram[i][j] = v
			gram[j][i] = v
		}
	}

	alpha := make([]float64, n)
	var b float64
	f := func(i int) float64 {
		sum := b
		for k := 0; k < n; k++ {
			if alpha[k] != 0 {
				sum += alpha[k] * y[k] * gram[k][i]
			}
		}
		return sum
	}

	passes, iter := 0, 0
	for passes < cfg.MaxPasses && iter < cfg.MaxIter {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - y[i]
			if !((y[i]*ei < -cfg.Tol && alpha[i] < cfg.C) || (y[i]*ei > cfg.Tol && alpha[i] > 0)) {
				continue
			}
			j := src.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - y[j]
			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(cfg.C, cfg.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-cfg.C)
				hi = math.Min(cfg.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*gram[i][j] - gram[i][i] - gram[j][j]
			if eta >= 0 {
				continue
			}
			ajNew := aj - y[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-7 {
				continue
			}
			aiNew := ai + y[i]*y[j]*(aj-ajNew)
			b1 := b - ei - y[i]*(aiNew-ai)*gram[i][i] - y[j]*(ajNew-aj)*gram[i][j]
			b2 := b - ej - y[i]*(aiNew-ai)*gram[i][j] - y[j]*(ajNew-aj)*gram[j][j]
			switch {
			case aiNew > 0 && aiNew < cfg.C:
				b = b1
			case ajNew > 0 && ajNew < cfg.C:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			alpha[i], alpha[j] = aiNew, ajNew
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
		iter++
	}

	m := &binary{kernel: cfg.Kernel, b: b}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-9 {
			m.sv = append(m.sv, x[i])
			m.coef = append(m.coef, alpha[i]*y[i])
		}
	}
	return m, nil
}

// Scaler standardises features to zero mean and unit variance, fitted on
// the training set only (the evaluation harness fits per fold to avoid
// test-set leakage).
type Scaler struct {
	mean, std []float64
}

// FitScaler learns per-feature mean and standard deviation.
func FitScaler(x [][]float64) *Scaler {
	if len(x) == 0 {
		return &Scaler{}
	}
	d := len(x[0])
	s := &Scaler{mean: make([]float64, d), std: make([]float64, d)}
	for _, row := range x {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= float64(len(x))
	}
	for _, row := range x {
		for j, v := range row {
			dv := v - s.mean[j]
			s.std[j] += dv * dv
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / float64(len(x)))
		if s.std[j] < 1e-12 {
			s.std[j] = 1 // constant feature: pass through centred
		}
	}
	return s
}

// Transform returns the standardised copy of x.
func (s *Scaler) Transform(x []float64) []float64 {
	if len(s.mean) == 0 {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}

// TransformAll standardises a whole matrix.
func (s *Scaler) TransformAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.Transform(row)
	}
	return out
}

// Multiclass is a one-vs-one multiclass SVM with an internal scaler.
type Multiclass struct {
	classes []int
	pairs   []pairModel
	scaler  *Scaler
}

type pairModel struct {
	a, b  int // class labels; decision > 0 votes a, else b
	model *binary
}

// TrainMulticlass fits a one-vs-one SVM over the samples. labels may be
// arbitrary non-negative ints; classes with a single sample are still
// usable (they become support vectors). It returns ErrNoData for an empty
// training set and an error if only one class is present.
func TrainMulticlass(x [][]float64, labels []int, cfg Config) (*Multiclass, error) {
	if len(x) == 0 || len(x) != len(labels) {
		return nil, ErrNoData
	}
	cfg = cfg.withDefaults()
	src := rng.New(cfg.Seed)
	if rbf, ok := cfg.Kernel.(RBF); ok && rbf.Gamma <= 0 {
		cfg.Kernel = RBF{Gamma: 1 / float64(len(x[0]))}
	}

	scaler := FitScaler(x)
	xs := scaler.TransformAll(x)

	seen := make(map[int]bool)
	var classes []int
	for _, l := range labels {
		if !seen[l] {
			seen[l] = true
			classes = append(classes, l)
		}
	}
	sortInts(classes)
	if len(classes) < 2 {
		return nil, fmt.Errorf("svm: need at least 2 classes, got %d", len(classes))
	}

	mc := &Multiclass{classes: classes, scaler: scaler}
	for i := 0; i < len(classes); i++ {
		for j := i + 1; j < len(classes); j++ {
			ca, cb := classes[i], classes[j]
			var px [][]float64
			var py []float64
			for k, l := range labels {
				switch l {
				case ca:
					px = append(px, xs[k])
					py = append(py, 1)
				case cb:
					px = append(px, xs[k])
					py = append(py, -1)
				}
			}
			m, err := trainBinary(px, py, cfg, src.Split())
			if err != nil {
				return nil, fmt.Errorf("svm: training pair (%d,%d): %w", ca, cb, err)
			}
			mc.pairs = append(mc.pairs, pairModel{a: ca, b: cb, model: m})
		}
	}
	return mc, nil
}

// Predict returns the class label for x by one-vs-one voting; ties break
// on the summed absolute margins of the winning votes.
func (m *Multiclass) Predict(x []float64) int {
	xs := m.scaler.Transform(x)
	votes := make(map[int]int, len(m.classes))
	margin := make(map[int]float64, len(m.classes))
	for _, p := range m.pairs {
		d := p.model.decision(xs)
		if d >= 0 {
			votes[p.a]++
			margin[p.a] += d
		} else {
			votes[p.b]++
			margin[p.b] -= d
		}
	}
	best := m.classes[0]
	for _, c := range m.classes[1:] {
		if votes[c] > votes[best] || (votes[c] == votes[best] && margin[c] > margin[best]) {
			best = c
		}
	}
	return best
}

// Classes returns the sorted class labels the model was trained on.
func (m *Multiclass) Classes() []int {
	out := make([]int, len(m.classes))
	copy(out, m.classes)
	return out
}

// NumSupportVectors returns the total support vector count across all
// pairwise models, a useful convergence diagnostic.
func (m *Multiclass) NumSupportVectors() int {
	var n int
	for _, p := range m.pairs {
		n += len(p.model.sv)
	}
	return n
}

// sortInts is insertion sort; class lists are tiny and this avoids pulling
// in sort for a hot path that isn't.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// StratifiedKFold partitions sample indices into k folds preserving class
// proportions. It returns fold index lists; fold f's test set is the f-th
// list. Deterministic in seed.
func StratifiedKFold(labels []int, k int, seed uint64) [][]int {
	if k < 2 {
		k = 2
	}
	src := rng.New(seed)
	byClass := make(map[int][]int)
	for i, l := range labels {
		byClass[l] = append(byClass[l], i)
	}
	folds := make([][]int, k)
	// Iterate classes in sorted order for determinism.
	var classes []int
	for c := range byClass {
		classes = append(classes, c)
	}
	sortInts(classes)
	next := 0
	for _, c := range classes {
		idx := byClass[c]
		src.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, s := range idx {
			folds[next%k] = append(folds[next%k], s)
			next++
		}
	}
	return folds
}
