package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sources with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical values out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child values must not simply replay the parent stream.
	p, c := New(7), child
	equal := 0
	for i := 0; i < 64; i++ {
		if p.Uint64() == c.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("child stream overlaps parent stream (%d/64 equal)", equal)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a, b := New(9), New(9)
	ca, cb := a.Split(), b.Split()
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(5)
	for i := 0; i < 10000; i++ {
		v := src.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	src := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += src.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	src := New(13)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := src.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	src := New(17)
	const buckets, n = 10, 100000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[src.Intn(buckets)]++
	}
	for b, c := range counts {
		expect := float64(n) / buckets
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("bucket %d count %d deviates from %v", b, c, expect)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	src := New(19)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := src.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("gaussian mean %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("gaussian variance %v, want ≈1", variance)
	}
}

func TestNormalScaling(t *testing.T) {
	src := New(23)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += src.Normal(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal(10,2) mean %v", mean)
	}
}

func TestExponentialMean(t *testing.T) {
	src := New(29)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := src.Exponential(3)
		if v < 0 {
			t.Fatalf("negative exponential %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Fatalf("Exponential(3) mean %v", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	src := New(31)
	for _, mean := range []float64{0.5, 4, 50} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(src.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) mean %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	if v := New(1).Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
	if v := New(1).Poisson(-3); v != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", v)
	}
}

func TestBoolProbability(t *testing.T) {
	src := New(37)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if src.Bool(0.78) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.78) > 0.01 {
		t.Fatalf("Bool(0.78) frequency %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(41)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := src.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterRange(t *testing.T) {
	src := New(43)
	for i := 0; i < 10000; i++ {
		v := src.Jitter(2)
		if v < -1 || v > 1 {
			t.Fatalf("Jitter(2) out of range: %v", v)
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	src := New(47)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	src.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: sum %d", sum)
	}
}

// TestFillNormalsMatchesScalar pins the batched-normals contract: for
// any batch-size schedule, interleaved with other draw kinds, the
// generator state stays in bitwise lockstep with scalar NormFloat64
// calls (same uniform consumption, same rejections, same spare
// caching), and the variate values agree with the scalar ones to a
// 1e-11 relative tolerance (the fast radius factor is not
// bit-identical; see vmath.NormFactorFastSlice, whose worst-case
// relative error ~3e-12 occurs for pairs landing near the unit
// circle).
func TestFillNormalsMatchesScalar(t *testing.T) {
	scalar, batched := New(31), New(31)
	sizes := []int{1, 2, 3, 7, 0, 64, 5, 1, 1, 128, 9}
	buf := make([]float64, 128)
	for round, size := range sizes {
		want := make([]float64, size)
		for i := range want {
			want[i] = scalar.NormFloat64()
		}
		got := buf[:size]
		batched.FillNormals(got)
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > 1e-11*math.Abs(want[i]) {
				t.Fatalf("round %d (size %d): FillNormals[%d] = %v, scalar = %v (relative error %g)", round, size, i, got[i], want[i], d/math.Abs(want[i]))
			}
		}
		// Interleave non-Gaussian draws; the sources must stay in
		// lockstep (the spare survives them in both paths).
		if scalar.Bool(0.5) != batched.Bool(0.5) || scalar.Uint64() != batched.Uint64() {
			t.Fatalf("round %d: sources diverged after interleaved draws", round)
		}
	}
}

// TestFillNormalsZeroAllocSteadyState verifies ReserveNormals makes
// FillNormals allocation-free.
func TestFillNormalsZeroAllocSteadyState(t *testing.T) {
	s := New(9)
	s.ReserveNormals(256)
	out := make([]float64, 255)
	allocs := testing.AllocsPerRun(50, func() { s.FillNormals(out) })
	if allocs != 0 {
		t.Fatalf("FillNormals allocates %.1f times per call after ReserveNormals, want 0", allocs)
	}
}
