// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component of the FADEWICH simulator.
//
// Reproducibility is a hard requirement for the experiment harness: every
// table and figure must be regenerable bit-for-bit from a seed. The package
// therefore avoids math/rand's global state entirely. The core generator is
// xoshiro256** seeded through SplitMix64, following the recommendations of
// Blackman & Vigna. Each component of the system derives its own child
// generator via Split, so adding a new consumer of randomness never perturbs
// the streams seen by existing ones.
package rng

import (
	"math"
)

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct one with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64
	// spare holds a cached second Gaussian variate from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// New returns a Source seeded from the given seed using SplitMix64 so that
// even adjacent seeds produce uncorrelated streams.
func New(seed uint64) *Source {
	var s Source
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s.s0, s.s1, s.s2, s.s3 = next(), next(), next(), next()
	// xoshiro's state must not be all-zero; SplitMix64 cannot produce four
	// zero outputs in a row, but guard anyway for clarity.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
	return &s
}

// Split derives an independent child generator. The child's stream is
// deterministic given the parent's current state, and advancing the child
// never affects the parent beyond the single Uint64 consumed here.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xa3ec647659359acd)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand so misuse fails loudly during development.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := s.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-int64(n)) % uint64(n)
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// NormFloat64 returns a standard Gaussian variate via the Box-Muller
// transform (polar rejection form for numerical robustness).
func (s *Source) NormFloat64() float64 {
	if s.spareOK {
		s.spareOK = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.spareOK = true
		return u * f
	}
}

// Normal returns a Gaussian variate with the given mean and standard
// deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.NormFloat64()
}

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Exponential returns an exponential variate with the given mean.
func (s *Source) Exponential(mean float64) float64 {
	return mean * s.ExpFloat64()
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// method for small means and normal approximation above 30 (adequate for
// the event-scheduling use in this codebase).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(math.Round(s.Normal(mean, math.Sqrt(mean))))
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle applies a Fisher-Yates shuffle over n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Jitter returns a uniform variate in [-width/2, +width/2], convenient for
// de-synchronising scheduled events.
func (s *Source) Jitter(width float64) float64 {
	return (s.Float64() - 0.5) * width
}
