// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component of the FADEWICH simulator.
//
// Reproducibility is a hard requirement for the experiment harness: every
// table and figure must be regenerable bit-for-bit from a seed. The package
// therefore avoids math/rand's global state entirely. The core generator is
// xoshiro256** seeded through SplitMix64, following the recommendations of
// Blackman & Vigna. Each component of the system derives its own child
// generator via Split, so adding a new consumer of randomness never perturbs
// the streams seen by existing ones.
package rng

import (
	"math"

	"fadewich/internal/vmath"
)

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct one with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64
	// spare holds a cached second Gaussian variate from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
	// batchU/batchV/batchQ hold the accepted polar pairs of a FillNormals
	// call so the radius factors can be computed in one vmath column pass;
	// batchR/batchD/batchP stage one rejection round's raw s1 words, their
	// uniform conversions and the pair norms. Lazily grown; nil until
	// FillNormals is first used.
	batchU, batchV, batchQ []float64
	batchD, batchP         []float64
	batchR                 []uint64
}

// New returns a Source seeded from the given seed using SplitMix64 so that
// even adjacent seeds produce uncorrelated streams.
func New(seed uint64) *Source {
	var s Source
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s.s0, s.s1, s.s2, s.s3 = next(), next(), next(), next()
	// xoshiro's state must not be all-zero; SplitMix64 cannot produce four
	// zero outputs in a row, but guard anyway for clarity.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
	return &s
}

// Split derives an independent child generator. The child's stream is
// deterministic given the parent's current state, and advancing the child
// never affects the parent beyond the single Uint64 consumed here.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xa3ec647659359acd)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand so misuse fails loudly during development.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := s.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-int64(n)) % uint64(n)
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// NormFloat64 returns a standard Gaussian variate via the Box-Muller
// transform (polar rejection form for numerical robustness).
func (s *Source) NormFloat64() float64 {
	if s.spareOK {
		s.spareOK = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.spareOK = true
		return u * f
	}
}

// Normal returns a Gaussian variate with the given mean and standard
// deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.NormFloat64()
}

// normBatch caps the internal FillNormals chunk (in polar pairs) so the
// u/v/q staging arrays stay small enough to live in L1 regardless of
// the request size. Chunking does not change the variate stream.
const normBatch = 256

// ReserveNormals pre-sizes the FillNormals scratch for batches of up to
// n variates, so steady-state FillNormals calls never allocate. It does
// not consume any randomness.
func (s *Source) ReserveNormals(n int) {
	pairs := (n + 1) / 2
	if pairs > normBatch {
		pairs = normBatch
	}
	s.growBatch(pairs)
}

// growBatch sizes the FillNormals scratch for chunks of up to pairs
// polar pairs (2·pairs raw draws per rejection round).
func (s *Source) growBatch(pairs int) {
	if cap(s.batchQ) < pairs || cap(s.batchR) < 2*pairs {
		s.batchU = make([]float64, pairs)
		s.batchV = make([]float64, pairs)
		s.batchQ = make([]float64, pairs)
		s.batchD = make([]float64, 2*pairs)
		s.batchP = make([]float64, pairs)
		s.batchR = make([]uint64, 2*pairs)
	}
}

// FillNormals fills out with standard Gaussian variates, equivalent to
// len(out) consecutive NormFloat64 calls: the uniform stream is
// consumed in the same order, the polar rejection decisions are the
// same, and a trailing half-pair is cached in spare exactly as the
// scalar path would. The generator state after the call is therefore
// bit-identical to the scalar sequence. The variate values themselves
// agree with the scalar ones to ~1e-11 relative (not bitwise): the
// speedup comes from batching the Box-Muller radius factors
// sqrt(-2·log(q)/q) into one vmath.NormFactorFastSlice column pass,
// which trades the fdlibm log for a table-driven one, and the output
// scramble, uniform conversion, rejection statistic, accepted-pair
// compaction and output interleave into vmath column passes
// (StarUniformSlice, PairNormSqSlice, CompactAcceptSlice,
// BoxMullerScaleSlice). All kernels are
// platform-independent, so FillNormals output is still deterministic
// everywhere.
//
// The rejection loop works in rounds: with p pairs still needed, one
// round draws exactly 2p raw words (the serial xoshiro recurrence,
// integer ops only), converts them in one column pass, and scans them
// as p polar attempts. This consumes exactly the draws the scalar loop
// would: a round can only complete the final pair on its last attempt
// (p acceptances from p attempts means every attempt accepted), so the
// generator never advances past the scalar stopping point.
func (s *Source) FillNormals(out []float64) {
	i := 0
	if s.spareOK && len(out) > 0 {
		s.spareOK = false
		out[i] = s.spare
		i++
	}
	for i < len(out) {
		pairs := (len(out) - i + 1) / 2
		if pairs > normBatch {
			pairs = normBatch
		}
		s.growBatch(pairs)
		us, vs, qs := s.batchU[:pairs], s.batchV[:pairs], s.batchQ[:pairs]
		// Hoist the xoshiro state into locals for the draw rounds: the
		// per-call Float64 path re-loads and re-stores all four words
		// per draw, which dominates this loop's cost. The update below
		// is Uint64 verbatim, so the consumed stream is unchanged.
		s0, s1, s2, s3 := s.s0, s.s1, s.s2, s.s3
		filled := 0
		for filled < pairs {
			need := pairs - filled
			// The serial recurrence only stores the pre-update s1 word per
			// draw; the xoshiro256** output scramble runs inside the
			// StarUniformSlice column pass.
			raw := s.batchR[:2*need]
			for j := range raw {
				raw[j] = s1
				t := s1 << 17
				s2 ^= s0
				s3 ^= s1
				s1 ^= s2
				s0 ^= s3
				s2 ^= t
				s3 = rotl(s3, 45)
			}
			ds := s.batchD[:2*need]
			vmath.StarUniformSlice(ds, raw)
			ps := s.batchP[:need]
			vmath.PairNormSqSlice(ps, ds)
			filled += vmath.CompactAcceptSlice(us[filled:], vs[filled:], qs[filled:], ds, ps)
		}
		s.s0, s.s1, s.s2, s.s3 = s0, s1, s2, s3
		vmath.NormFactorFastSlice(qs, qs)
		// Full pairs interleave in one column pass; a trailing half-pair
		// (odd remaining length) is emitted scalar with its twin cached in
		// spare, exactly as NormFloat64 would.
		full := pairs
		if len(out)-i < 2*pairs {
			full = pairs - 1
		}
		vmath.BoxMullerScaleSlice(out[i:], us[:full], vs[:full], qs[:full])
		i += 2 * full
		for j := full; j < pairs; j++ {
			f := qs[j]
			out[i] = us[j] * f
			i++
			if i < len(out) {
				out[i] = vs[j] * f
				i++
			} else {
				s.spare = vs[j] * f
				s.spareOK = true
			}
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Exponential returns an exponential variate with the given mean.
func (s *Source) Exponential(mean float64) float64 {
	return mean * s.ExpFloat64()
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// method for small means and normal approximation above 30 (adequate for
// the event-scheduling use in this codebase).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(math.Round(s.Normal(mean, math.Sqrt(mean))))
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle applies a Fisher-Yates shuffle over n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Jitter returns a uniform variate in [-width/2, +width/2], convenient for
// de-synchronising scheduled events.
func (s *Source) Jitter(width float64) float64 {
	return (s.Float64() - 0.5) * width
}
