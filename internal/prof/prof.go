// Package prof wires Go's runtime profilers into the CLI binaries: the
// -cpuprofile, -memprofile and -mutexprofile flags of fadewich-sim and
// fadewich-eval funnel through Start, which arms the requested
// profilers and returns one stop function that flushes every profile
// file. The outputs are standard pprof format, ready for
// `go tool pprof`; docs/PERFORMANCE.md shows the invocations.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags names the profile output files; an empty path disables that
// profiler. Fields map one-to-one onto the CLI flags.
type Flags struct {
	// CPU receives a CPU profile covering Start to stop.
	CPU string
	// Mem receives an allocation (heap) profile snapshotted at stop,
	// after a forced GC so live objects are accurate.
	Mem string
	// Mutex receives a contention profile covering Start to stop; Start
	// arms runtime mutex sampling (rate 1: every contended acquisition)
	// and stop restores it.
	Mutex string
}

// Start arms the requested profilers. The returned stop function writes
// and closes every armed profile and must be called exactly once, on
// every exit path that should produce profiles (os.Exit skips deferred
// calls). Start fails cleanly: on error nothing stays armed and no
// partial files are left behind.
func Start(f Flags) (stop func() error, err error) {
	var cpuFile *os.File
	if f.CPU != "" {
		cpuFile, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			os.Remove(f.CPU)
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
	}
	if f.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() error {
		var firstErr error
		record := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			record(cpuFile.Close())
		}
		if f.Mutex != "" {
			record(writeProfile("mutex", f.Mutex))
			runtime.SetMutexProfileFraction(0)
		}
		if f.Mem != "" {
			runtime.GC() // flush dead objects so the heap profile shows live data
			record(writeProfile("allocs", f.Mem))
		}
		if firstErr != nil {
			return fmt.Errorf("prof: %w", firstErr)
		}
		return nil
	}, nil
}

// writeProfile dumps one named runtime profile to path.
func writeProfile(name, path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.Lookup(name).WriteTo(out, 0); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
