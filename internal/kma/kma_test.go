package kma

import (
	"math"
	"sort"
	"testing"

	"fadewich/internal/agent"
	"fadewich/internal/rng"
)

func spanHours(h float64) [][]agent.Interval {
	return [][]agent.Interval{{{Start: 0, End: h * 3600}}}
}

func TestGenerateInputsActiveFraction(t *testing.T) {
	// Over a long span, ~78% of 5-second intervals must contain input.
	inputs := GenerateInputs(spanHours(8), nil, InputModel{}, rng.New(1))
	times := inputs[0]
	intervals := int(8 * 3600 / 5)
	active := make([]bool, intervals)
	for _, x := range times {
		idx := int(x / 5)
		if idx >= 0 && idx < intervals {
			active[idx] = true
		}
	}
	count := 0
	for _, a := range active {
		if a {
			count++
		}
	}
	frac := float64(count) / float64(intervals)
	if math.Abs(frac-0.78) > 0.02 {
		t.Fatalf("active fraction %v, want ≈0.78", frac)
	}
}

func TestGenerateInputsSortedWithinSpans(t *testing.T) {
	spans := [][]agent.Interval{{
		{Start: 100, End: 400},
		{Start: 600, End: 900},
	}}
	inputs := GenerateInputs(spans, nil, InputModel{}, rng.New(2))
	times := inputs[0]
	if !sort.Float64sAreSorted(times) {
		t.Fatal("inputs not sorted")
	}
	for _, x := range times {
		if (x < 100 || x > 400) && (x < 600 || x > 900) {
			t.Fatalf("input %v outside spans", x)
		}
	}
}

func TestDepartureAddsWorstCaseInput(t *testing.T) {
	events := []agent.Event{
		{Type: agent.EventDeparture, Time: 250.5, Workstation: 0},
		{Type: agent.EventEntry, Time: 300, Workstation: 0}, // must not add input
	}
	inputs := GenerateInputs([][]agent.Interval{{}}, events, InputModel{}, rng.New(3))
	found := false
	for _, x := range inputs[0] {
		if x == 250.5 {
			found = true
		}
		if x == 300 {
			t.Fatal("entry event added an input")
		}
	}
	if !found {
		t.Fatal("departure did not add the worst-case input at its exact time")
	}
}

func TestTrackerIdleTime(t *testing.T) {
	tr := NewTracker([][]float64{{10, 20, 30}})
	if got := tr.IdleTime(0, 5); got != 5 {
		t.Fatalf("pre-input idle %v, want 5 (since day start)", got)
	}
	if got := tr.IdleTime(0, 25); got != 5 {
		t.Fatalf("idle at 25 = %v, want 5", got)
	}
	if got := tr.IdleTime(0, 30); got != 0 {
		t.Fatalf("idle at 30 = %v, want 0", got)
	}
	if got := tr.IdleTime(0, 100); got != 70 {
		t.Fatalf("idle at 100 = %v, want 70", got)
	}
}

func TestTrackerIdleSet(t *testing.T) {
	tr := NewTracker([][]float64{
		{50}, // ws0: idle since 50
		{98}, // ws1: idle since 98
		{},   // ws2: never touched
	})
	buf := make([]int, 0, 3)
	got := tr.IdleSet(100, 5, buf)
	want := []int{0, 2}
	if len(got) != len(want) || got[0] != 0 || got[1] != 2 {
		t.Fatalf("IdleSet = %v, want %v", got, want)
	}
}

func TestTrackerLastInputMonotoneCursor(t *testing.T) {
	tr := NewTracker([][]float64{{1, 2, 3, 4, 5}})
	for now := 0.5; now < 6; now += 0.5 {
		last, ok := tr.LastInput(0, now)
		wantOK := now >= 1
		if ok != wantOK {
			t.Fatalf("at %v: ok=%v", now, ok)
		}
		if ok && last != math.Floor(now) && last != now {
			t.Fatalf("at %v: last=%v", now, last)
		}
	}
}

func TestTrackerLastInputAtRandomAccess(t *testing.T) {
	tr := NewTracker([][]float64{{10, 20, 30}})
	// Probe out of order — binary search must not care.
	if v, ok := tr.LastInputAt(0, 25); !ok || v != 20 {
		t.Fatalf("LastInputAt(25) = %v,%v", v, ok)
	}
	if v, ok := tr.LastInputAt(0, 15); !ok || v != 10 {
		t.Fatalf("LastInputAt(15) = %v,%v", v, ok)
	}
	if _, ok := tr.LastInputAt(0, 5); ok {
		t.Fatal("LastInputAt before first input should report none")
	}
	if v, ok := tr.LastInputAt(0, 30); !ok || v != 30 {
		t.Fatalf("LastInputAt(30) = %v,%v (inclusive)", v, ok)
	}
}

func TestTrackerInputInRange(t *testing.T) {
	tr := NewTracker([][]float64{{10, 20, 30}})
	if !tr.InputInRange(0, 15, 25) {
		t.Fatal("(15,25] should contain 20")
	}
	if tr.InputInRange(0, 20, 29) {
		t.Fatal("(20,29] should be empty (exclusive left)")
	}
	if !tr.InputInRange(0, 29, 30) {
		t.Fatal("(29,30] should contain 30")
	}
	if tr.InputInRange(0, 31, 100) {
		t.Fatal("(31,100] should be empty")
	}
}

func TestTrackerNextInputAfter(t *testing.T) {
	tr := NewTracker([][]float64{{10, 20}})
	if v, ok := tr.NextInputAfter(0, 10); !ok || v != 20 {
		t.Fatalf("NextInputAfter(10) = %v,%v", v, ok)
	}
	if v, ok := tr.NextInputAfter(0, 5); !ok || v != 10 {
		t.Fatalf("NextInputAfter(5) = %v,%v", v, ok)
	}
	if _, ok := tr.NextInputAfter(0, 20); ok {
		t.Fatal("NextInputAfter(last) should report none")
	}
}

func TestTrackerReset(t *testing.T) {
	tr := NewTracker([][]float64{{10, 20, 30}})
	tr.IdleTime(0, 100) // advance cursor
	tr.Reset()
	if got := tr.IdleTime(0, 15); got != 5 {
		t.Fatalf("after reset idle at 15 = %v, want 5", got)
	}
}

func TestTrackerCopiesInput(t *testing.T) {
	raw := [][]float64{{30, 10, 20}} // unsorted on purpose
	tr := NewTracker(raw)
	raw[0][0] = 999
	if v, ok := tr.LastInputAt(0, 35); !ok || v != 30 {
		t.Fatalf("tracker affected by caller mutation: %v,%v", v, ok)
	}
}

func TestInputModelDefaults(t *testing.T) {
	m := InputModel{}.withDefaults()
	if m.IntervalSec != 5 || m.ActiveProb != 0.78 || m.MinEvents != 1 || m.MaxEvents != 3 {
		t.Fatalf("defaults %+v", m)
	}
	inverted := InputModel{MinEvents: 5, MaxEvents: 2}.withDefaults()
	if inverted.MaxEvents < inverted.MinEvents {
		t.Fatal("inverted event bounds not repaired")
	}
}
