// Package kma implements the Keyboard/Mouse Activity module of Section
// IV-B: per-workstation idle-time tracking and the S_t^(s) idle-set query
// the controller's rules consume. It also provides the input simulation
// the paper uses for its usability analysis (Section VII-D): following
// Mikkelsen et al., time is discretised into 5-second intervals and a
// seated user produces input during 78% of them.
package kma

import (
	"math"
	"sort"

	"fadewich/internal/agent"
	"fadewich/internal/rng"
)

// InputModel parameterises the simulated keyboard/mouse activity.
type InputModel struct {
	// IntervalSec is the discretisation interval (5 s in the paper).
	IntervalSec float64
	// ActiveProb is the probability a seated user produces input during
	// an interval (0.78 in Mikkelsen et al.).
	ActiveProb float64
	// MinEvents and MaxEvents bound the number of input events within an
	// active interval.
	MinEvents, MaxEvents int
}

// DefaultInputModel returns the paper's parameters.
func DefaultInputModel() InputModel {
	return InputModel{IntervalSec: 5, ActiveProb: 0.78, MinEvents: 1, MaxEvents: 3}
}

// withDefaults fills zero fields.
func (m InputModel) withDefaults() InputModel {
	d := DefaultInputModel()
	if m.IntervalSec == 0 {
		m.IntervalSec = d.IntervalSec
	}
	if m.ActiveProb == 0 {
		m.ActiveProb = d.ActiveProb
	}
	if m.MinEvents == 0 {
		m.MinEvents = d.MinEvents
	}
	if m.MaxEvents == 0 {
		m.MaxEvents = d.MaxEvents
	}
	if m.MaxEvents < m.MinEvents {
		m.MaxEvents = m.MinEvents
	}
	return m
}

// GenerateInputs simulates input event times for every workstation over
// one day. spans gives each user's input-capable intervals; events
// supplies the departure events, each of which contributes one input
// exactly at the departure decision time (the paper's worst-case
// assumption that the last input coincides with departure). The returned
// per-workstation slices are sorted ascending.
func GenerateInputs(spans [][]agent.Interval, events []agent.Event, model InputModel, src *rng.Source) [][]float64 {
	model = model.withDefaults()
	out := make([][]float64, len(spans))
	for u, ivs := range spans {
		var times []float64
		for _, iv := range ivs {
			// Interval grid aligned to absolute day time.
			first := math.Floor(iv.Start/model.IntervalSec) * model.IntervalSec
			for slot := first; slot < iv.End; slot += model.IntervalSec {
				if !src.Bool(model.ActiveProb) {
					continue
				}
				n := model.MinEvents
				if model.MaxEvents > model.MinEvents {
					n += src.Intn(model.MaxEvents - model.MinEvents + 1)
				}
				for i := 0; i < n; i++ {
					t := slot + src.Float64()*model.IntervalSec
					if t >= iv.Start && t <= iv.End {
						times = append(times, t)
					}
				}
			}
		}
		out[u] = times
	}
	for _, e := range events {
		if e.Type == agent.EventDeparture && e.Workstation >= 0 && e.Workstation < len(out) {
			out[e.Workstation] = append(out[e.Workstation], e.Time)
		}
	}
	for u := range out {
		sort.Float64s(out[u])
	}
	return out
}

// Tracker answers idle-time queries against fixed per-workstation input
// logs. Queries must have non-decreasing timestamps; the tracker advances
// an internal cursor per workstation, making a full-day replay O(total
// inputs + queries).
type Tracker struct {
	inputs [][]float64
	cursor []int
}

// NewTracker builds a tracker over sorted per-workstation input times.
func NewTracker(inputs [][]float64) *Tracker {
	cp := make([][]float64, len(inputs))
	for i, xs := range inputs {
		cp[i] = make([]float64, len(xs))
		copy(cp[i], xs)
		sort.Float64s(cp[i])
	}
	return &Tracker{inputs: cp, cursor: make([]int, len(cp))}
}

// NumWorkstations returns the number of tracked workstations.
func (t *Tracker) NumWorkstations() int { return len(t.inputs) }

// seek advances workstation w's cursor to the last input ≤ now.
func (t *Tracker) seek(w int, now float64) {
	xs := t.inputs[w]
	c := t.cursor[w]
	for c < len(xs) && xs[c] <= now {
		c++
	}
	t.cursor[w] = c
}

// LastInput returns the time of the last input at workstation w at or
// before now, and false if there has been none yet.
func (t *Tracker) LastInput(w int, now float64) (float64, bool) {
	t.seek(w, now)
	c := t.cursor[w]
	if c == 0 {
		return 0, false
	}
	return t.inputs[w][c-1], true
}

// IdleTime returns how long workstation w has been idle at time now. A
// workstation with no input yet is treated as idle since time 0, matching
// a machine that has not been touched.
func (t *Tracker) IdleTime(w int, now float64) float64 {
	last, ok := t.LastInput(w, now)
	if !ok {
		return now
	}
	return now - last
}

// IdleSet returns the paper's S_t^(s): the workstations that observed no
// input during [now−s, now]. The result is in ascending workstation order
// and the backing array is reused across calls — copy it to retain.
func (t *Tracker) IdleSet(now, s float64, buf []int) []int {
	buf = buf[:0]
	for w := range t.inputs {
		if t.IdleTime(w, now) >= s {
			buf = append(buf, w)
		}
	}
	return buf
}

// LastInputAt returns the time of the last input at workstation w at or
// before t, using binary search. Unlike LastInput it does not advance the
// replay cursor, so callers may probe arbitrary times in any order.
func (t *Tracker) LastInputAt(w int, at float64) (float64, bool) {
	xs := t.inputs[w]
	i := sort.SearchFloat64s(xs, at)
	for i < len(xs) && xs[i] <= at {
		i++
	}
	if i == 0 {
		return 0, false
	}
	return xs[i-1], true
}

// InputInRange reports whether workstation w received any input within
// (from, to]. It uses binary search and does not disturb the replay
// cursors, so labelling code can probe arbitrary ranges.
func (t *Tracker) InputInRange(w int, from, to float64) bool {
	xs := t.inputs[w]
	i := sort.SearchFloat64s(xs, from)
	// Skip events exactly at 'from' (range is exclusive at the left).
	for i < len(xs) && xs[i] <= from {
		i++
	}
	return i < len(xs) && xs[i] <= to
}

// NextInputAfter returns the first input time strictly after t at
// workstation w, and false if none exists.
func (t *Tracker) NextInputAfter(w int, after float64) (float64, bool) {
	xs := t.inputs[w]
	i := sort.SearchFloat64s(xs, after)
	for i < len(xs) && xs[i] <= after {
		i++
	}
	if i >= len(xs) {
		return 0, false
	}
	return xs[i], true
}

// Reset rewinds all replay cursors, allowing the tracker to be reused for
// another monotone pass.
func (t *Tracker) Reset() {
	for i := range t.cursor {
		t.cursor[i] = 0
	}
}
