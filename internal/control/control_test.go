package control

import (
	"testing"

	"fadewich/internal/kma"
	"fadewich/internal/md"
)

const (
	dt     = 0.2
	daySec = 600.0
)

// window builds an md.Window from times in seconds.
func window(t1, t2 float64) md.Window {
	return md.Window{StartTick: int(t1 / dt), EndTick: int(t2 / dt)}
}

// constPredict returns the same label for every window.
func constPredict(label int) Prediction {
	return func(md.Window) int { return label }
}

func TestCaseACorrectClassificationDeauthsAtT1PlusTDelta(t *testing.T) {
	// User of ws0 logs in at 10, last input (departure) at 100; window
	// [101, 107]; RE says ws0.
	inputs := [][]float64{{10, 50, 100}, {10, 95, 105, 110, 115, 120, 125}}
	tracker := kma.NewTracker(inputs)
	log := Run(DefaultParams(), dt, daySec, 2, []md.Window{window(101, 107)}, constPredict(1), tracker)

	d, ok := log.FirstDeauthAfter(0, 100)
	if !ok {
		t.Fatal("ws0 was not deauthenticated")
	}
	if d.Cause != CauseRule1 {
		t.Fatalf("cause %v, want rule1", d.Cause)
	}
	// Rule 1 fires when the window's duration reaches t∆: 101 + 4.5 ≈
	// 105.5 (tick granularity).
	if d.Time < 105.4 || d.Time > 106.2 {
		t.Fatalf("deauth at %v, want ≈105.6", d.Time)
	}
}

func TestRule1SkipsActiveWorkstation(t *testing.T) {
	// RE misclassifies the window as ws1, whose user typed at 105 —
	// inside the t∆ idle lookback — so Rule 1 must not fire on ws1.
	inputs := [][]float64{{10, 100}, {10, 103, 106}}
	tracker := kma.NewTracker(inputs)
	log := Run(DefaultParams(), dt, daySec, 2, []md.Window{window(101, 107)}, constPredict(2), tracker)
	for _, d := range log.Deauths {
		if d.Workstation == 1 && d.Cause == CauseRule1 {
			t.Fatal("Rule 1 deauthenticated a busy workstation")
		}
	}
}

func TestCaseBMisclassifiedDeauthsViaAlertAtTIDPlusTSS(t *testing.T) {
	// The real victim (ws0, last input 100) is misclassified as ws1
	// (busy). The alert path must deauthenticate ws0 at 100 + tID + tss =
	// 108.
	inputs := [][]float64{{10, 100}, typing(10, 300, 2)}
	tracker := kma.NewTracker(inputs)
	log := Run(DefaultParams(), dt, daySec, 2, []md.Window{window(101, 107)}, constPredict(2), tracker)

	d, ok := log.FirstDeauthAfter(0, 100)
	if !ok {
		t.Fatal("victim workstation never deauthenticated")
	}
	if d.Cause != CauseAlert {
		t.Fatalf("cause %v, want alert-expiry", d.Cause)
	}
	if d.Time < 107.8 || d.Time > 108.6 {
		t.Fatalf("case B deauth at %v, want ≈108 (t+tID+tss)", d.Time)
	}
}

// typing generates regular inputs from start to end.
func typing(start, end, step float64) []float64 {
	var out []float64
	for x := start; x < end; x += step {
		out = append(out, x)
	}
	return out
}

func TestCaseCTimeoutBackstop(t *testing.T) {
	// No windows at all (MD missed the departure): the time-out must
	// fire at last-input + T.
	p := DefaultParams()
	p.TimeoutSec = 120
	inputs := [][]float64{{10, 100}}
	tracker := kma.NewTracker(inputs)
	log := Run(p, dt, 600, 1, nil, nil, tracker)
	d, ok := log.FirstDeauthAfter(0, 100)
	if !ok {
		t.Fatal("timeout never fired")
	}
	if d.Cause != CauseTimeout {
		t.Fatalf("cause %v", d.Cause)
	}
	if d.Time < 219.9 || d.Time > 220.5 {
		t.Fatalf("timeout at %v, want ≈220", d.Time)
	}
}

func TestScreensaverForIdleBystander(t *testing.T) {
	// ws1's user idles through the window; the alert path should turn on
	// the screensaver but input at 106.5 (idle 7.5 s < tID+tss = 8 s)
	// cancels the alert before the deauthentication grace expires.
	inputs := [][]float64{{10, 100}, {10, 99, 106.5, 110}}
	tracker := kma.NewTracker(inputs)
	log := Run(DefaultParams(), dt, daySec, 2, []md.Window{window(101, 107)}, constPredict(0), tracker)
	foundSS := false
	for _, ss := range log.Screensavers {
		if ss.Workstation == 1 {
			foundSS = true
			// Screensaver at idle = tID from last input (99): 104, but
			// the alert only engages at t1+t∆ ≈ 105.6; screensaver fires
			// there.
			if ss.Time < 104 || ss.Time > 106.5 {
				t.Fatalf("screensaver at %v", ss.Time)
			}
		}
	}
	if !foundSS {
		t.Fatal("no screensaver for idle bystander")
	}
	for _, d := range log.Deauths {
		// The late idle time-out (input log ends at 110) is expected;
		// only an alert-path deauth near the window would be a bug.
		if d.Workstation == 1 && d.Time < 150 {
			t.Fatalf("bystander deauthenticated at %v despite cancelling input", d.Time)
		}
	}
}

func TestShortWindowTriggersNothing(t *testing.T) {
	// A 3-second window is below t∆: no Rule 1, no alerts.
	inputs := [][]float64{{10, 100}}
	tracker := kma.NewTracker(inputs)
	called := false
	pred := func(md.Window) int { called = true; return 1 }
	log := Run(DefaultParams(), dt, daySec, 1, []md.Window{window(101, 104)}, pred, tracker)
	if called {
		t.Fatal("RE queried for a sub-t∆ window")
	}
	if log.Rule1Fired != 0 {
		t.Fatal("rule 1 fired for a short window")
	}
	for _, d := range log.Deauths {
		if d.Time < 150 {
			t.Fatalf("early deauth at %v", d.Time)
		}
	}
}

func TestEntryClassificationDeauthsNobody(t *testing.T) {
	// Users type until close to the day end so the 300 s idle time-out
	// cannot fire inside the replay.
	inputs := [][]float64{typing(10, 590, 2), typing(12, 590, 2)}
	tracker := kma.NewTracker(inputs)
	log := Run(DefaultParams(), dt, daySec, 2, []md.Window{window(101, 107)}, constPredict(0), tracker)
	if len(log.Deauths) != 0 {
		t.Fatalf("w0 classification caused %d deauths", len(log.Deauths))
	}
	if log.Rule1Fired != 1 {
		t.Fatalf("rule1 fired %d times, want 1 (query happens, action does not)", log.Rule1Fired)
	}
}

func TestLoginCountsAndReauth(t *testing.T) {
	// User logs in, gets deauthenticated, types again → second login.
	inputs := [][]float64{{10, 100, 150}}
	tracker := kma.NewTracker(inputs)
	log := Run(DefaultParams(), dt, daySec, 1, []md.Window{window(101, 107)}, constPredict(1), tracker)
	if log.Logins != 2 {
		t.Fatalf("logins %d, want 2", log.Logins)
	}
}

func TestUnauthenticatedWorkstationNeverDeauthed(t *testing.T) {
	// Workstation 1 never receives input (no session): no deauth events
	// for it, even though it is permanently idle.
	inputs := [][]float64{typing(10, 500, 2), {}}
	tracker := kma.NewTracker(inputs)
	log := Run(DefaultParams(), dt, daySec, 2, []md.Window{window(101, 107)}, constPredict(2), tracker)
	for _, d := range log.Deauths {
		if d.Workstation == 1 {
			t.Fatalf("deauthenticated a workstation with no session at %v", d.Time)
		}
	}
}

func TestRunBaselineOnlyTimeouts(t *testing.T) {
	inputs := [][]float64{{10, 100}, typing(10, 590, 2)}
	tracker := kma.NewTracker(inputs)
	log := RunBaseline(120, dt, daySec, 2, tracker)
	if len(log.Deauths) != 1 {
		t.Fatalf("deauths %d, want 1", len(log.Deauths))
	}
	if log.Deauths[0].Cause != CauseTimeout || log.Deauths[0].Workstation != 0 {
		t.Fatalf("unexpected deauth %+v", log.Deauths[0])
	}
	if len(log.Screensavers) != 0 {
		t.Fatal("baseline activated screensavers")
	}
}

func TestConsecutiveWindowsBothProcessed(t *testing.T) {
	inputs := [][]float64{{10, 100}, {10, 200}}
	tracker := kma.NewTracker(inputs)
	wins := []md.Window{window(101, 107), window(201, 207)}
	preds := []int{1, 2}
	i := 0
	pred := func(md.Window) int { p := preds[i]; i++; return p }
	log := Run(DefaultParams(), dt, daySec, 2, wins, pred, tracker)
	if log.Rule1Fired != 2 {
		t.Fatalf("rule1 fired %d times", log.Rule1Fired)
	}
	if _, ok := log.FirstDeauthAfter(0, 100); !ok {
		t.Fatal("first departure missed")
	}
	if _, ok := log.FirstDeauthAfter(1, 200); !ok {
		t.Fatal("second departure missed")
	}
}

func TestCauseString(t *testing.T) {
	if CauseRule1.String() != "rule1" || CauseAlert.String() != "alert-expiry" || CauseTimeout.String() != "timeout" {
		t.Fatal("cause strings wrong")
	}
	if Cause(42).String() == "" {
		t.Fatal("unknown cause should render")
	}
}

func TestParamsWithDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.TDeltaSec != 4.5 || p.TIDSec != 5 || p.TSSSec != 3 || p.TimeoutSec != 300 || p.Rule2IdleSec != 1 {
		t.Fatalf("defaults %+v", p)
	}
	custom := Params{TDeltaSec: 2}.WithDefaults()
	if custom.TDeltaSec != 2 || custom.TIDSec != 5 {
		t.Fatal("partial defaults wrong")
	}
}
