// Package control implements FADEWICH's decision layer (Sections IV-F and
// IV-G): the two-state Quiet/Noisy automaton driven by variation-window
// duration, Rule 1 (classify the window at t1+t∆ and deauthenticate the
// attributed workstation if it is idle) and Rule 2 (push every idle
// workstation into alert state while the radio stays noisy, the
// conservative handling of possible overlaps), the alert-state /
// screensaver lifecycle, and the baseline idle time-out as backstop.
//
// The paper's Table I prints Rule 1 as "if ci ∉ S(t∆) then Deauthenticate
// ci", which deauthenticates a workstation that is receiving input; read
// against Sections IV-F/V-B (a misclassified sample must NOT deauthenticate
// the busy workstation it names — that is exactly what makes case B reach
// the real victim via the alert path), the membership test is clearly meant
// to be positive. We implement "if ci ∈ S(t∆)". DESIGN.md records the
// discrepancy.
package control

import (
	"fmt"
	"sort"

	"fadewich/internal/kma"
	"fadewich/internal/md"
)

// Params are the controller timing constants.
type Params struct {
	// TDeltaSec is t∆, the minimum variation-window duration that
	// triggers a classification (Rule 1).
	TDeltaSec float64
	// TIDSec is t_ID: idle time in alert state before the screensaver
	// activates.
	TIDSec float64
	// TSSSec is t_ss: further idle time with the screensaver on before
	// the session is deauthenticated.
	TSSSec float64
	// TimeoutSec is the baseline idle time-out T; it always applies as a
	// backstop (case C of the decision tree).
	TimeoutSec float64
	// Rule2IdleSec is the idle threshold of Rule 2's S(1) query.
	Rule2IdleSec float64
}

// DefaultParams returns the paper's evaluation constants: t∆ = 4.5 s,
// t_ID = 5 s, t_ss = 3 s, T = 300 s.
func DefaultParams() Params {
	return Params{TDeltaSec: 4.5, TIDSec: 5, TSSSec: 3, TimeoutSec: 300, Rule2IdleSec: 1}
}

// WithDefaults returns a copy with zero fields replaced by the paper's
// evaluation constants.
func (p Params) WithDefaults() Params {
	d := DefaultParams()
	if p.TDeltaSec == 0 {
		p.TDeltaSec = d.TDeltaSec
	}
	if p.TIDSec == 0 {
		p.TIDSec = d.TIDSec
	}
	if p.TSSSec == 0 {
		p.TSSSec = d.TSSSec
	}
	if p.TimeoutSec == 0 {
		p.TimeoutSec = d.TimeoutSec
	}
	if p.Rule2IdleSec == 0 {
		p.Rule2IdleSec = d.Rule2IdleSec
	}
	return p
}

// Cause identifies what deauthenticated a session.
type Cause int

// Deauthentication causes: Rule 1's direct classification, the alert-state
// screensaver expiry, and the baseline idle time-out.
const (
	CauseRule1 Cause = iota + 1
	CauseAlert
	CauseTimeout
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CauseRule1:
		return "rule1"
	case CauseAlert:
		return "alert-expiry"
	case CauseTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// Deauth is one deauthentication action.
type Deauth struct {
	Time        float64
	Workstation int
	Cause       Cause
}

// Screensaver is one screensaver activation.
type Screensaver struct {
	Time        float64
	Workstation int
}

// Log collects the controller's actions over one day.
type Log struct {
	Deauths      []Deauth
	Screensavers []Screensaver
	// Rule1Fired counts Rule 1 activations (one per qualifying window).
	Rule1Fired int
	// Logins counts session (re-)authentications.
	Logins int
}

// FirstDeauthAfter returns the first deauthentication of workstation ws at
// or after t, and false if none occurred.
func (l *Log) FirstDeauthAfter(ws int, t float64) (Deauth, bool) {
	idx := sort.Search(len(l.Deauths), func(i int) bool { return l.Deauths[i].Time >= t })
	for ; idx < len(l.Deauths); idx++ {
		if l.Deauths[idx].Workstation == ws {
			return l.Deauths[idx], true
		}
	}
	return Deauth{}, false
}

// Prediction supplies the RE classifier's output for a variation window.
// It is invoked lazily, only for windows whose duration reaches t∆, at the
// moment t1+t∆ — mirroring the online phase. Label 0 means w0 (entry);
// label i ≥ 1 names workstation i−1.
type Prediction func(w md.Window) int

// Run replays one day through the controller. windows must be the MD
// module's raw variation windows (unfiltered), time-sorted; tracker must
// be freshly reset; present reports whether the workstation's user is
// physically at the desk (used only for action bookkeeping by the caller —
// the controller itself never peeks). numWS is the workstation count and
// daySec the day length.
func Run(p Params, dt, daySec float64, numWS int, windows []md.Window, predict Prediction, tracker *kma.Tracker) *Log {
	p = p.WithDefaults()
	log := &Log{}

	states := make([]wsState, numWS)

	ticks := int(daySec / dt)
	tDeltaTicks := int(p.TDeltaSec / dt)

	winIdx := 0
	curWin := -1 // index into windows of the active window, -1 if Quiet
	rule1Done := false

	idleBuf := make([]int, 0, numWS)

	for tick := 0; tick < ticks; tick++ {
		t := float64(tick) * dt

		// Detect fresh input per workstation: login, alert cancellation.
		for ws := 0; ws < numWS; ws++ {
			st := &states[ws]
			last, ok := tracker.LastInput(ws, t)
			if ok && (!st.hasInput || last > st.lastInput) {
				st.hasInput = true
				st.lastInput = last
				if !st.authenticated {
					st.authenticated = true
					log.Logins++
				}
				// Input dismisses alert state and the screensaver.
				st.alert = false
				st.ssOn = false
			}
		}

		// Track the active variation window.
		if curWin >= 0 && tick >= windows[curWin].EndTick {
			// Window over: back to Quiet. Alert states that never
			// reached the screensaver are dismissed.
			for ws := range states {
				if states[ws].alert && !states[ws].ssOn {
					states[ws].alert = false
				}
			}
			curWin = -1
		}
		for winIdx < len(windows) && windows[winIdx].EndTick <= tick {
			winIdx++
		}
		if curWin < 0 && winIdx < len(windows) && windows[winIdx].StartTick <= tick {
			curWin = winIdx
			rule1Done = false
		}

		if curWin >= 0 {
			dW := tick - windows[curWin].StartTick
			if dW >= tDeltaTicks {
				if !rule1Done {
					rule1Done = true
					log.Rule1Fired++
					label := predict(windows[curWin])
					if label >= 1 && label <= numWS {
						ci := label - 1
						st := &states[ci]
						// Rule 1: deauthenticate ci if it has been idle
						// for t∆ (see package comment on the paper's
						// inverted membership test).
						if st.authenticated && st.idle(t) >= p.TDeltaSec {
							st.authenticated = false
							st.alert = false
							log.Deauths = append(log.Deauths, Deauth{Time: t, Workstation: ci, Cause: CauseRule1})
						}
					}
				}
				// Rule 2 at every tick while the window persists.
				idleBuf = idleBuf[:0]
				for ws := 0; ws < numWS; ws++ {
					if states[ws].idle(t) >= p.Rule2IdleSec {
						idleBuf = append(idleBuf, ws)
					}
				}
				for _, ws := range idleBuf {
					if states[ws].authenticated {
						states[ws].alert = true
					}
				}
			}
		}

		// Alert-state lifecycle and the baseline time-out backstop.
		for ws := 0; ws < numWS; ws++ {
			st := &states[ws]
			if !st.authenticated {
				continue
			}
			idle := st.idle(t)
			if st.alert {
				if !st.ssOn && idle >= p.TIDSec {
					st.ssOn = true
					log.Screensavers = append(log.Screensavers, Screensaver{Time: t, Workstation: ws})
				}
				if st.ssOn && idle >= p.TIDSec+p.TSSSec {
					st.authenticated = false
					st.alert = false
					log.Deauths = append(log.Deauths, Deauth{Time: t, Workstation: ws, Cause: CauseAlert})
					continue
				}
			}
			if idle >= p.TimeoutSec {
				st.authenticated = false
				st.alert = false
				st.ssOn = false
				log.Deauths = append(log.Deauths, Deauth{Time: t, Workstation: ws, Cause: CauseTimeout})
			}
		}
	}

	sort.Slice(log.Deauths, func(i, j int) bool { return log.Deauths[i].Time < log.Deauths[j].Time })
	return log
}

// wsState is the controller's per-workstation session state.
type wsState struct {
	authenticated bool
	lastInput     float64
	hasInput      bool
	alert         bool
	ssOn          bool
}

// idle computes idle time from the cached last-input state, treating a
// never-touched workstation as idle since day start.
func (st *wsState) idle(now float64) float64 {
	if !st.hasInput {
		return now
	}
	return now - st.lastInput
}

// RunBaseline replays one day under the plain idle time-out policy (no
// sensors): sessions deauthenticate after TimeoutSec of inactivity, and
// nothing else happens.
func RunBaseline(timeoutSec, dt, daySec float64, numWS int, tracker *kma.Tracker) *Log {
	return Run(Params{
		TDeltaSec:    1e9, // rules can never fire without windows anyway
		TIDSec:       1e9,
		TSSSec:       1e9,
		TimeoutSec:   timeoutSec,
		Rule2IdleSec: 1,
	}, dt, daySec, numWS, nil, nil, tracker)
}
