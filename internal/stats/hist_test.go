package stats

import (
	"math"
	"testing"
)

func TestHistogramCounts(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if h.Total != 10 {
		t.Fatalf("total %d", h.Total)
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bin %d count %d, want 2", i, c)
		}
	}
}

func TestHistogramMaxValueLandsInLastBin(t *testing.T) {
	h := NewHistogram([]float64{0, 10}, 4)
	if h.Counts[3] != 1 || h.Counts[0] != 1 {
		t.Fatalf("counts %v", h.Counts)
	}
}

func TestHistogramConstantSample(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 8)
	if h.Counts[0] != 3 {
		t.Fatalf("constant sample counts %v", h.Counts)
	}
	if e := h.Entropy(); e != 0 {
		t.Fatalf("constant entropy %v, want 0", e)
	}
}

func TestEntropyUniformIsLogN(t *testing.T) {
	// A perfectly uniform 8-bin histogram has entropy ln(8).
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	if e := Entropy(xs, 8); !almost(e, math.Log(8), 1e-9) {
		t.Fatalf("uniform entropy %v, want %v", e, math.Log(8))
	}
}

func TestEntropyOrdering(t *testing.T) {
	// Concentrated data has lower entropy than spread data.
	concentrated := []float64{5, 5, 5, 5, 5, 5, 5, 9}
	spread := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if Entropy(concentrated, 8) >= Entropy(spread, 8) {
		t.Fatal("concentrated sample should have lower entropy")
	}
}

func TestEntropyOfCounts(t *testing.T) {
	if e := EntropyOfCounts([]int{10, 0, 0}); e != 0 {
		t.Fatalf("single-class entropy %v", e)
	}
	if e := EntropyOfCounts([]int{5, 5}); !almost(e, math.Log(2), 1e-12) {
		t.Fatalf("two-class entropy %v", e)
	}
	if e := EntropyOfCounts(nil); e != 0 {
		t.Fatalf("empty entropy %v", e)
	}
}

func TestQuantize(t *testing.T) {
	bins := Quantize([]float64{0, 2.5, 5, 7.5, 10}, 4)
	want := []int{0, 0, 2, 2, 3}
	// 2.5 maps to bin 0 (2.5/10*4 = 1.0 → idx 1)? Verify exact arithmetic:
	// idx = int(4 * (x-0)/10): 0→0, 2.5→1, 5→2, 7.5→3, 10→3.
	want = []int{0, 1, 2, 3, 3}
	for i, b := range bins {
		if b != want[i] {
			t.Fatalf("bins %v, want %v", bins, want)
		}
	}
}

func TestQuantizeConstant(t *testing.T) {
	bins := Quantize([]float64{3, 3, 3}, 256)
	for _, b := range bins {
		if b != 0 {
			t.Fatalf("constant quantization %v", bins)
		}
	}
}

func TestQuantizeRange(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i) * 0.37
	}
	for _, b := range Quantize(xs, 16) {
		if b < 0 || b >= 16 {
			t.Fatalf("bin %d out of range", b)
		}
	}
}

func TestHistogramProbabilitiesSumToOne(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 2, 8, 3, 9, 4}, 5)
	var sum float64
	for _, p := range h.Probabilities() {
		sum += p
	}
	if !almost(sum, 1, 1e-12) {
		t.Fatalf("probabilities sum %v", sum)
	}
}
