package stats

import (
	"math"
	"testing"
	"testing/quick"

	"fadewich/internal/rng"
)

// mod wraps quick-generated floats into a bounded range.
func mod(x, m float64) float64 {
	if math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, m)
}

func TestRollingStdMatchesNaive(t *testing.T) {
	// Property: after any sequence of pushes, the rolling std equals the
	// population std of the last w values.
	src := rng.New(55)
	for _, w := range []int{2, 5, 12, 30} {
		r := NewRollingStd(w)
		var history []float64
		for i := 0; i < 500; i++ {
			x := src.Normal(-60, 3)
			r.Push(x)
			history = append(history, x)
			lo := len(history) - w
			if lo < 0 {
				lo = 0
			}
			want := StdDev(history[lo:])
			if got := r.Std(); !almost(got, want, 1e-6) {
				t.Fatalf("w=%d step=%d: rolling %v, naive %v", w, i, got, want)
			}
		}
	}
}

func TestRollingStdWarmup(t *testing.T) {
	r := NewRollingStd(10)
	if r.Std() != 0 || r.Full() || r.N() != 0 {
		t.Fatal("fresh window should be empty")
	}
	r.Push(5)
	if r.Std() != 0 {
		t.Fatal("single observation should have zero std")
	}
	if r.Mean() != 5 {
		t.Fatalf("mean %v", r.Mean())
	}
	for i := 0; i < 9; i++ {
		r.Push(float64(i))
	}
	if !r.Full() || r.N() != 10 {
		t.Fatalf("window should be full: n=%d", r.N())
	}
}

func TestRollingStdReset(t *testing.T) {
	r := NewRollingStd(4)
	for i := 0; i < 8; i++ {
		r.Push(float64(i * i))
	}
	r.Reset()
	if r.N() != 0 || r.Std() != 0 {
		t.Fatal("reset did not clear the window")
	}
	r.Push(1)
	r.Push(3)
	if !almost(r.Std(), 1, 1e-12) {
		t.Fatalf("std after reset %v", r.Std())
	}
}

func TestRollingStdWindowContents(t *testing.T) {
	r := NewRollingStd(3)
	for _, x := range []float64{1, 2, 3, 4, 5} {
		r.Push(x)
	}
	w := r.Window()
	if len(w) != 3 || w[0] != 3 || w[1] != 4 || w[2] != 5 {
		t.Fatalf("window %v, want [3 4 5]", w)
	}
}

func TestRollingStdPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRollingStd(0) did not panic")
		}
	}()
	NewRollingStd(0)
}

func TestRollingStdLongRunStability(t *testing.T) {
	// Drift guard: after far more pushes than rebuildEvery, the running
	// sums must still agree with the naive computation.
	src := rng.New(60)
	r := NewRollingStd(16)
	recent := make([]float64, 0, 16)
	for i := 0; i < rebuildEvery*2+100; i++ {
		// Large offset amplifies cancellation error if drift were present.
		x := 1e6 + src.NormFloat64()
		r.Push(x)
		recent = append(recent, x)
		if len(recent) > 16 {
			recent = recent[1:]
		}
	}
	want := StdDev(recent)
	// The large offset makes some cancellation error unavoidable even for
	// the naive formula; without the periodic rebuild the error here
	// would be orders of magnitude larger.
	if got := r.Std(); !almost(got, want, 5e-3) {
		t.Fatalf("after long run: rolling %v, naive %v", got, want)
	}
}

func TestRollingStdNonNegativeProperty(t *testing.T) {
	r := NewRollingStd(8)
	if err := quick.Check(func(x float64) bool {
		if x != x { // NaN guard
			x = 0
		}
		// Keep inputs in a physically meaningful (dBm-like) range;
		// squaring near-max float64 overflows for any formula.
		r.Push(mod(x, 1e3))
		return r.Std() >= 0
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
