package stats

import "math"

// RollingStd maintains the standard deviation of the last w observations of
// a stream in O(1) per update, using running sums with periodic exact
// recomputation to bound floating-point drift. The MD module keeps one of
// these per RSSI stream: its statistic s_t is the sum of the RollingStd
// values across all streams (Section IV-C2).
type RollingStd struct {
	buf   []float64
	head  int
	count int
	sum   float64
	sumSq float64
	// updatesSinceRebuild triggers an exact recomputation of the running
	// sums every rebuildEvery updates so that cancellation error cannot
	// accumulate over multi-day traces.
	updatesSinceRebuild int
}

// rebuildEvery bounds floating-point drift; the exact rebuild is O(w) and
// amortises to a negligible constant.
const rebuildEvery = 1 << 14

// NewRollingStd returns a rolling standard deviation over windows of w
// observations. It panics for w < 1, which is a configuration error.
func NewRollingStd(w int) *RollingStd {
	if w < 1 {
		panic("stats: RollingStd window must be >= 1")
	}
	return &RollingStd{buf: make([]float64, w)}
}

// Push adds an observation, evicting the oldest when the window is full.
func (r *RollingStd) Push(x float64) {
	if r.count == len(r.buf) {
		old := r.buf[r.head]
		r.sum -= old
		r.sumSq -= old * old
	} else {
		r.count++
	}
	r.buf[r.head] = x
	r.sum += x
	r.sumSq += x * x
	r.head = (r.head + 1) % len(r.buf)

	r.updatesSinceRebuild++
	if r.updatesSinceRebuild >= rebuildEvery {
		r.rebuild()
	}
}

func (r *RollingStd) rebuild() {
	r.updatesSinceRebuild = 0
	var sum, sumSq float64
	n := r.count
	for i := 0; i < n; i++ {
		idx := (r.head - 1 - i + len(r.buf)*2) % len(r.buf)
		v := r.buf[idx]
		sum += v
		sumSq += v * v
	}
	r.sum, r.sumSq = sum, sumSq
}

// Full reports whether the window has received at least w observations.
func (r *RollingStd) Full() bool { return r.count == len(r.buf) }

// N returns the number of observations currently in the window.
func (r *RollingStd) N() int { return r.count }

// Std returns the population standard deviation of the current window
// contents, or 0 when fewer than two observations are present.
func (r *RollingStd) Std() float64 {
	if r.count < 2 {
		return 0
	}
	n := float64(r.count)
	mean := r.sum / n
	v := r.sumSq/n - mean*mean
	if v < 0 {
		v = 0 // guard against tiny negative values from rounding
	}
	return math.Sqrt(v)
}

// Mean returns the mean of the current window contents, or 0 when empty.
func (r *RollingStd) Mean() float64 {
	if r.count == 0 {
		return 0
	}
	return r.sum / float64(r.count)
}

// Reset empties the window.
func (r *RollingStd) Reset() {
	r.head, r.count = 0, 0
	r.sum, r.sumSq = 0, 0
	r.updatesSinceRebuild = 0
}

// Window returns the current window contents oldest-first. It allocates;
// intended for tests and feature extraction, not the per-tick hot path.
func (r *RollingStd) Window() []float64 {
	out := make([]float64, r.count)
	for i := 0; i < r.count; i++ {
		idx := (r.head - r.count + i + 2*len(r.buf)) % len(r.buf)
		out[i] = r.buf[idx]
	}
	return out
}
