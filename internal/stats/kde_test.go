package stats

import (
	"math"
	"testing"

	"fadewich/internal/rng"
)

func gaussianSample(seed uint64, n int, mean, sd float64) []float64 {
	src := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.Normal(mean, sd)
	}
	return xs
}

func TestNewKDEEmpty(t *testing.T) {
	if _, err := NewKDE(nil, 0); err == nil {
		t.Fatal("expected error for empty sample")
	}
}

func TestKDEDensityIntegratesToOne(t *testing.T) {
	xs := gaussianSample(1, 500, 0, 1)
	kde, err := NewKDE(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoidal integration over ±6σ.
	var integral float64
	const step = 0.01
	for x := -6.0; x < 6; x += step {
		integral += kde.Density(x) * step
	}
	if !almost(integral, 1, 0.01) {
		t.Fatalf("density integral %v, want ≈1", integral)
	}
}

func TestKDECDFMonotoneAndBounded(t *testing.T) {
	xs := gaussianSample(2, 300, 5, 2)
	kde, _ := NewKDE(xs, 0)
	prev := -1.0
	for x := -5.0; x <= 15; x += 0.25 {
		c := kde.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %v", x)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of [0,1]: %v", c)
		}
		prev = c
	}
	if c := kde.CDF(-100); !almost(c, 0, 1e-9) {
		t.Fatalf("CDF(-inf) = %v", c)
	}
	if c := kde.CDF(100); !almost(c, 1, 1e-9) {
		t.Fatalf("CDF(+inf) = %v", c)
	}
}

func TestKDEPercentileInvertsCDF(t *testing.T) {
	xs := gaussianSample(3, 400, 0, 1)
	kde, _ := NewKDE(xs, 0)
	for _, p := range []float64{1, 25, 50, 75, 99} {
		x := kde.Percentile(p)
		if c := kde.CDF(x); !almost(c, p/100, 1e-4) {
			t.Fatalf("CDF(P%v) = %v", p, c)
		}
	}
}

func TestKDEPercentileMatchesGaussian(t *testing.T) {
	// For a large Gaussian sample the KDE's 99th percentile should land
	// near the true z=2.326.
	xs := gaussianSample(4, 5000, 0, 1)
	kde, _ := NewKDE(xs, 0)
	if p := kde.Percentile(99); math.Abs(p-2.326) > 0.2 {
		t.Fatalf("P99 = %v, want ≈2.33", p)
	}
	if p := kde.Percentile(50); math.Abs(p) > 0.1 {
		t.Fatalf("P50 = %v, want ≈0", p)
	}
}

func TestKDEConstantSample(t *testing.T) {
	xs := []float64{7, 7, 7, 7, 7}
	kde, err := NewKDE(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With the bandwidth floor the estimate is a spike at 7.
	if p := kde.Percentile(50); !almost(p, 7, 0.01) {
		t.Fatalf("P50 of constant sample %v", p)
	}
}

func TestKDEExplicitBandwidth(t *testing.T) {
	kde, _ := NewKDE([]float64{0, 10}, 0.5)
	if kde.Bandwidth() != 0.5 {
		t.Fatalf("bandwidth %v", kde.Bandwidth())
	}
	// Density at 5 should be tiny with a narrow bandwidth.
	if d := kde.Density(5); d > 1e-6 {
		t.Fatalf("mid-density %v", d)
	}
}

func TestSilvermanBandwidthScales(t *testing.T) {
	narrow := SilvermanBandwidth(gaussianSample(5, 200, 0, 0.5))
	wide := SilvermanBandwidth(gaussianSample(6, 200, 0, 5))
	if narrow <= 0 || wide <= 0 {
		t.Fatal("bandwidths must be positive")
	}
	if wide < 5*narrow {
		t.Fatalf("bandwidth should scale with spread: narrow=%v wide=%v", narrow, wide)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if v := e.At(3); v != 0.6 {
		t.Fatalf("At(3) = %v", v)
	}
	if v := e.At(0); v != 0 {
		t.Fatalf("At(0) = %v", v)
	}
	if v := e.At(5); v != 1 {
		t.Fatalf("At(5) = %v", v)
	}
	if p := e.Percentile(50); p != 3 {
		t.Fatalf("P50 = %v", p)
	}
	if _, err := NewECDF(nil); err == nil {
		t.Fatal("expected error for empty ECDF")
	}
}

func TestKDESamplesCopied(t *testing.T) {
	xs := []float64{3, 1, 2}
	kde, _ := NewKDE(xs, 0)
	xs[0] = 99 // mutating the input must not affect the KDE
	got := kde.Samples()
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("samples %v, want sorted copy of original", got)
	}
}
