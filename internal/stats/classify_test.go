package stats

import (
	"testing"
)

func TestDetectionMetrics(t *testing.T) {
	d := Detection{TP: 8, FP: 2, FN: 2}
	if p := d.Precision(); p != 0.8 {
		t.Fatalf("precision %v", p)
	}
	if r := d.Recall(); r != 0.8 {
		t.Fatalf("recall %v", r)
	}
	if f := d.FMeasure(); !almost(f, 0.8, 1e-12) {
		t.Fatalf("f-measure %v", f)
	}
}

func TestDetectionDegenerate(t *testing.T) {
	var d Detection
	if d.Precision() != 0 || d.Recall() != 0 || d.FMeasure() != 0 {
		t.Fatal("empty detection should score 0 everywhere")
	}
	onlyFP := Detection{FP: 5}
	if onlyFP.Precision() != 0 || onlyFP.FMeasure() != 0 {
		t.Fatal("FP-only detection should score 0")
	}
	onlyFN := Detection{FN: 5}
	if onlyFN.Recall() != 0 {
		t.Fatal("FN-only recall should be 0")
	}
}

func TestDetectionAdd(t *testing.T) {
	a := Detection{TP: 1, FP: 2, FN: 3}
	b := Detection{TP: 10, FP: 20, FN: 30}
	got := a.Add(b)
	if got != (Detection{TP: 11, FP: 22, FN: 33}) {
		t.Fatalf("Add = %+v", got)
	}
}

func TestFMeasureHarmonicMeanProperty(t *testing.T) {
	// F is always between min and max of precision and recall, and equals
	// them when they are equal.
	cases := []Detection{
		{TP: 10, FP: 5, FN: 1},
		{TP: 3, FP: 9, FN: 2},
		{TP: 50, FP: 1, FN: 40},
	}
	for _, d := range cases {
		p, r, f := d.Precision(), d.Recall(), d.FMeasure()
		lo, hi := p, r
		if lo > hi {
			lo, hi = hi, lo
		}
		if f < lo-1e-12 || f > hi+1e-12 {
			t.Fatalf("F %v outside [%v, %v]", f, lo, hi)
		}
	}
}

func TestConfusionMatrix(t *testing.T) {
	m := NewConfusionMatrix(3)
	m.Observe(0, 0)
	m.Observe(0, 0)
	m.Observe(1, 1)
	m.Observe(1, 2) // error
	m.Observe(2, 2)
	if m.Total() != 5 {
		t.Fatalf("total %d", m.Total())
	}
	if acc := m.Accuracy(); !almost(acc, 0.8, 1e-12) {
		t.Fatalf("accuracy %v", acc)
	}
	rec := m.PerClassRecall()
	if rec[0] != 1 || rec[1] != 0.5 || rec[2] != 1 {
		t.Fatalf("per-class recall %v", rec)
	}
}

func TestConfusionMatrixIgnoresOutOfRange(t *testing.T) {
	m := NewConfusionMatrix(2)
	m.Observe(-1, 0)
	m.Observe(0, 5)
	if m.Total() != 0 {
		t.Fatalf("out-of-range labels were recorded: %d", m.Total())
	}
}

func TestConfusionMatrixMerge(t *testing.T) {
	a := NewConfusionMatrix(2)
	a.Observe(0, 0)
	b := NewConfusionMatrix(2)
	b.Observe(1, 1)
	b.Observe(1, 0)
	a.Merge(b)
	if a.Total() != 3 {
		t.Fatalf("merged total %d", a.Total())
	}
	if !almost(a.Accuracy(), 2.0/3.0, 1e-12) {
		t.Fatalf("merged accuracy %v", a.Accuracy())
	}
}

func TestMeanAndCI95(t *testing.T) {
	mean, ci := MeanAndCI95([]float64{1, 1, 1, 1})
	if mean != 1 || ci != 0 {
		t.Fatalf("constant sample: mean %v ci %v", mean, ci)
	}
	mean, ci = MeanAndCI95([]float64{0, 2})
	if mean != 1 {
		t.Fatalf("mean %v", mean)
	}
	// sd = sqrt(2), se = 1, ci = 1.96
	if !almost(ci, 1.96, 1e-9) {
		t.Fatalf("ci %v, want 1.96", ci)
	}
	if m, c := MeanAndCI95(nil); m != 0 || c != 0 {
		t.Fatal("empty input should give zeros")
	}
	if _, c := MeanAndCI95([]float64{3}); c != 0 {
		t.Fatal("single value should give zero CI")
	}
}
