package stats

import "math"

// This file provides the binary detection metrics (precision, recall,
// F-measure) used to evaluate the MD module (Fig 7, Table III) and the
// multi-class confusion matrix used to evaluate the RE classifier (Fig 8).

// Detection tallies the outcomes of a binary detector matched against
// ground truth events, in the sense Section V-A of the paper defines for
// MD: a true positive is a detected window overlapping a true window, a
// false positive a detection overlapping no true window, and a false
// negative a true window with no overlapping detection.
type Detection struct {
	TP, FP, FN int
}

// Precision returns TP / (TP + FP), or 0 when no positives were emitted.
func (d Detection) Precision() float64 {
	if d.TP+d.FP == 0 {
		return 0
	}
	return float64(d.TP) / float64(d.TP+d.FP)
}

// Recall returns TP / (TP + FN), or 0 when there were no true events.
func (d Detection) Recall() float64 {
	if d.TP+d.FN == 0 {
		return 0
	}
	return float64(d.TP) / float64(d.TP+d.FN)
}

// FMeasure returns the harmonic mean 2·P·R/(P+R), the statistic Fig 7
// sweeps over t∆, or 0 when both precision and recall are 0.
func (d Detection) FMeasure() float64 {
	p, r := d.Precision(), d.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Add returns the elementwise sum of two tallies, for aggregating folds.
func (d Detection) Add(o Detection) Detection {
	return Detection{TP: d.TP + o.TP, FP: d.FP + o.FP, FN: d.FN + o.FN}
}

// ConfusionMatrix counts multi-class classification outcomes;
// Counts[i][j] is the number of samples with true class i predicted as j.
type ConfusionMatrix struct {
	Classes int
	Counts  [][]int
}

// NewConfusionMatrix returns an empty matrix over the given number of
// classes (clamped to at least 1).
func NewConfusionMatrix(classes int) *ConfusionMatrix {
	if classes < 1 {
		classes = 1
	}
	counts := make([][]int, classes)
	for i := range counts {
		counts[i] = make([]int, classes)
	}
	return &ConfusionMatrix{Classes: classes, Counts: counts}
}

// Observe records one classification outcome. Labels outside [0, Classes)
// are ignored, so a truncated fold cannot corrupt the matrix.
func (c *ConfusionMatrix) Observe(trueClass, predicted int) {
	if trueClass < 0 || trueClass >= c.Classes || predicted < 0 || predicted >= c.Classes {
		return
	}
	c.Counts[trueClass][predicted]++
}

// Total returns the number of recorded outcomes.
func (c *ConfusionMatrix) Total() int {
	var n int
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the fraction of outcomes on the diagonal, or 0 when
// empty.
func (c *ConfusionMatrix) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	var correct int
	for i := range c.Counts {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(total)
}

// PerClassRecall returns recall for each true class (diagonal over row
// sum), 0 for classes never observed.
func (c *ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, c.Classes)
	for i, row := range c.Counts {
		var rowSum int
		for _, v := range row {
			rowSum += v
		}
		if rowSum > 0 {
			out[i] = float64(row[i]) / float64(rowSum)
		}
	}
	return out
}

// Merge adds the counts of o into c. Mismatched class counts are a
// programming error; Merge ignores classes beyond c's range.
func (c *ConfusionMatrix) Merge(o *ConfusionMatrix) {
	for i := 0; i < c.Classes && i < o.Classes; i++ {
		for j := 0; j < c.Classes && j < o.Classes; j++ {
			c.Counts[i][j] += o.Counts[i][j]
		}
	}
}

// MeanAndCI95 returns the mean of xs and the half-width of its 95%
// confidence interval (1.96·σ̂/√n), used for Fig 8's error bars over the 10
// cross-validation splits.
func MeanAndCI95(xs []float64) (mean, halfWidth float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	if n == 1 {
		return mean, 0
	}
	se := StdDevSample(xs) / math.Sqrt(float64(n))
	return mean, 1.96 * se
}

// StdDevSample returns the sample (n-1) standard deviation.
func StdDevSample(xs []float64) float64 {
	return math.Sqrt(SampleVariance(xs))
}
