// Package stats implements the statistical machinery FADEWICH is built on:
// descriptive statistics, windowed standard deviations (the MD module's core
// signal), histograms and Shannon entropy, autocorrelation, Gaussian kernel
// density estimation with an analytic CDF and percentile inversion (the MD
// normal profile), empirical CDFs, confusion matrices with
// precision/recall/F-measure (Fig 7, Table III), Pearson correlation
// matrices (Fig 11), and mutual information / relative mutual information
// (Fig 12, Table V). Everything is stdlib-only and allocation-conscious so
// the evaluation harness can sweep parameters over multi-day traces.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (the paper's feature
// definition divides by n, not n-1), or 0 for fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// SampleVariance returns the unbiased (n-1) variance, used where an
// estimator rather than a descriptive feature is wanted.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// Min returns the minimum of xs. It returns +Inf for an empty slice so the
// caller's subsequent comparisons behave as identity.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics, the same convention as NumPy's
// default. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile on an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Autocorrelation returns the lag-k autocorrelation of the window xs as
// defined in Section IV-D1 of the paper:
//
//	R(k) = 1/((n-k)·σ²) · Σ_{j} (x_j − µ)(x_{j+k} − µ)
//
// A window with zero variance (e.g. a quantised RSSI stream that never
// moved) has undefined autocorrelation; we return 0 in that case, which is
// also the value a classifier should see for "no structure".
func Autocorrelation(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 || k >= n {
		return 0
	}
	mu := Mean(xs)
	variance := Variance(xs)
	if variance == 0 {
		return 0
	}
	var sum float64
	for j := 0; j+k < n; j++ {
		sum += (xs[j] - mu) * (xs[j+k] - mu)
	}
	return sum / (float64(n-k) * variance)
}

// PearsonCorrelation returns the Pearson correlation coefficient between xs
// and ys, or 0 when either series is constant or the lengths differ.
func PearsonCorrelation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CorrelationMatrix returns the len(cols) × len(cols) Pearson correlation
// matrix of the given column vectors (Fig 11 computes this over the
// per-stream variances of all labelled samples).
func CorrelationMatrix(cols [][]float64) [][]float64 {
	n := len(cols)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		out[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := PearsonCorrelation(cols[i], cols[j])
			out[i][j] = c
			out[j][i] = c
		}
	}
	return out
}

// Summary bundles the descriptive statistics the report package prints.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
	}
}
