package stats

import "math"

// Histogram is a fixed-width binning of a one-dimensional sample, used both
// for the entropy feature of the RE module (Section IV-D1) and for the
// 256-bin quantisation that the RMI feature analysis (Appendix A) applies.
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram bins xs into the given number of equal-width bins spanning
// [min(xs), max(xs)]. A sample whose values are all identical lands in a
// single bin. bins < 1 is clamped to 1.
func NewHistogram(xs []float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	h := &Histogram{Counts: make([]int, bins)}
	if len(xs) == 0 {
		return h
	}
	h.Min, h.Max = Min(xs), Max(xs)
	width := h.Max - h.Min
	for _, x := range xs {
		var idx int
		if width > 0 {
			idx = int(float64(bins) * (x - h.Min) / width)
			if idx >= bins {
				idx = bins - 1
			}
			if idx < 0 {
				idx = 0
			}
		}
		h.Counts[idx]++
		h.Total++
	}
	return h
}

// Probabilities returns the normalised bin frequencies. Bins with zero
// counts yield zero probability.
func (h *Histogram) Probabilities() []float64 {
	out := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.Total)
	}
	return out
}

// Entropy returns the Shannon entropy (natural log) of the histogram's
// frequency distribution:
//
//	H = −Σ P(r_j)·log P(r_j)
//
// matching the RE feature definition in Section IV-D1.
func (h *Histogram) Entropy() float64 {
	var sum float64
	for _, p := range h.Probabilities() {
		if p > 0 {
			sum -= p * math.Log(p)
		}
	}
	return sum
}

// Entropy is a convenience wrapper binning xs into bins equal-width bins
// and returning the Shannon entropy of the resulting frequency histogram.
func Entropy(xs []float64, bins int) float64 {
	return NewHistogram(xs, bins).Entropy()
}

// EntropyOfCounts returns the Shannon entropy (natural log) of an arbitrary
// count vector, used by the mutual-information computation.
func EntropyOfCounts(counts []int) float64 {
	var total int
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var sum float64
	for _, c := range counts {
		if c > 0 {
			p := float64(c) / float64(total)
			sum -= p * math.Log(p)
		}
	}
	return sum
}

// Quantize maps each value of xs to a bin index in [0, bins) using
// equal-width bins over the sample's own range, the quantisation scheme the
// paper's Appendix A uses ("256 linearly distributed bins among the minimum
// and the maximum of the distribution").
func Quantize(xs []float64, bins int) []int {
	if bins < 1 {
		bins = 1
	}
	out := make([]int, len(xs))
	if len(xs) == 0 {
		return out
	}
	lo, hi := Min(xs), Max(xs)
	width := hi - lo
	if width == 0 {
		return out
	}
	for i, x := range xs {
		idx := int(float64(bins) * (x - lo) / width)
		if idx >= bins {
			idx = bins - 1
		}
		if idx < 0 {
			idx = 0
		}
		out[i] = idx
	}
	return out
}
