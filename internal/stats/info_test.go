package stats

import (
	"math"
	"testing"

	"fadewich/internal/rng"
)

func TestMutualInformationPerfectDependence(t *testing.T) {
	// x == y: I(X;Y) = H(X) = ln 2 for a balanced binary variable.
	xs := []int{0, 1, 0, 1, 0, 1, 0, 1}
	if mi := MutualInformation(xs, xs); !almost(mi, math.Log(2), 1e-12) {
		t.Fatalf("MI(x,x) = %v, want ln2", mi)
	}
	if rmi := RelativeMutualInformation(xs, xs); !almost(rmi, 1, 1e-12) {
		t.Fatalf("RMI(x,x) = %v, want 1", rmi)
	}
}

func TestMutualInformationIndependence(t *testing.T) {
	// Independent large samples: MI ≈ 0.
	src := rng.New(77)
	n := 20000
	xs := make([]int, n)
	ys := make([]int, n)
	for i := range xs {
		xs[i] = src.Intn(4)
		ys[i] = src.Intn(3)
	}
	if mi := MutualInformation(xs, ys); mi > 0.01 {
		t.Fatalf("independent MI = %v, want ≈0", mi)
	}
	if rmi := RelativeMutualInformation(xs, ys); rmi > 0.01 {
		t.Fatalf("independent RMI = %v, want ≈0", rmi)
	}
}

func TestRMIConstantFeature(t *testing.T) {
	xs := []int{5, 5, 5, 5}
	ys := []int{0, 1, 0, 1}
	if rmi := RelativeMutualInformation(xs, ys); rmi != 0 {
		t.Fatalf("constant-feature RMI = %v", rmi)
	}
}

func TestRMIBounds(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		n := 50 + src.Intn(100)
		xs := make([]int, n)
		ys := make([]int, n)
		for i := range xs {
			xs[i] = src.Intn(8)
			// y correlates loosely with x.
			if src.Bool(0.5) {
				ys[i] = xs[i] % 3
			} else {
				ys[i] = src.Intn(3)
			}
		}
		rmi := RelativeMutualInformation(xs, ys)
		if rmi < -1e-12 || rmi > 1+1e-12 {
			t.Fatalf("RMI out of [0,1]: %v", rmi)
		}
	}
}

func TestMutualInformationMismatchedLengths(t *testing.T) {
	if mi := MutualInformation([]int{1, 2}, []int{1}); mi != 0 {
		t.Fatalf("mismatched MI = %v", mi)
	}
	if mi := MutualInformation(nil, nil); mi != 0 {
		t.Fatalf("empty MI = %v", mi)
	}
}

func TestInformativeFeatureRanksHigher(t *testing.T) {
	// A feature that separates classes should out-rank noise — the basis
	// of the paper's Table V ranking.
	src := rng.New(11)
	n := 2000
	labels := make([]int, n)
	good := make([]int, n)
	noise := make([]int, n)
	for i := range labels {
		labels[i] = src.Intn(4)
		good[i] = labels[i]*10 + src.Intn(3) // strongly class-dependent
		noise[i] = src.Intn(40)
	}
	gr := RelativeMutualInformation(good, labels)
	nr := RelativeMutualInformation(noise, labels)
	if gr <= nr+0.2 {
		t.Fatalf("informative RMI %v should clearly exceed noise RMI %v", gr, nr)
	}
}
