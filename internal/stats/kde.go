package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmptyDistribution is returned when a KDE or ECDF is requested over no
// observations.
var ErrEmptyDistribution = errors.New("stats: empty distribution")

// KDE is a Gaussian kernel density estimate over a one-dimensional sample,
// exactly the construction Section IV-C1 of the paper uses for the MD
// module's normal profile:
//
//	f̂(r) = 1/(n·h) Σ_i K((r − r_i)/h)
//
// with K the standard Gaussian kernel and h the bandwidth. Because the
// kernel is Gaussian, the CDF has the closed form mean of Φ((x−r_i)/h),
// which lets the MD module invert percentiles without numerical
// integration of the density.
type KDE struct {
	samples []float64 // sorted ascending
	h       float64
}

// NewKDE builds a KDE over samples with the given bandwidth. A bandwidth
// <= 0 selects Silverman's rule of thumb. It returns
// ErrEmptyDistribution when samples is empty.
func NewKDE(samples []float64, bandwidth float64) (*KDE, error) {
	if len(samples) == 0 {
		return nil, ErrEmptyDistribution
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	if bandwidth <= 0 {
		bandwidth = SilvermanBandwidth(sorted)
	}
	return &KDE{samples: sorted, h: bandwidth}, nil
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth
// 0.9 · min(σ̂, IQR/1.34) · n^(−1/5), with a small positive floor so a
// constant sample still yields a usable (spiky) estimate.
func SilvermanBandwidth(samples []float64) float64 {
	n := len(samples)
	if n == 0 {
		return 1
	}
	sigma := math.Sqrt(SampleVariance(samples))
	sorted := make([]float64, n)
	copy(sorted, samples)
	sort.Float64s(sorted)
	iqr := percentileSorted(sorted, 75) - percentileSorted(sorted, 25)
	spread := sigma
	if iqr > 0 && iqr/1.34 < spread {
		spread = iqr / 1.34
	}
	h := 0.9 * spread * math.Pow(float64(n), -0.2)
	if h <= 1e-9 {
		h = 1e-3
	}
	return h
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.h }

// N returns the number of underlying observations.
func (k *KDE) N() int { return len(k.samples) }

// Density evaluates the estimated probability density at x.
func (k *KDE) Density(x float64) float64 {
	const invSqrt2Pi = 0.3989422804014327
	var sum float64
	for _, s := range k.samples {
		z := (x - s) / k.h
		sum += invSqrt2Pi * math.Exp(-0.5*z*z)
	}
	return sum / (float64(len(k.samples)) * k.h)
}

// cdfCutoff is the |z| beyond which Φ(z) is treated as exactly 0 or 1; at
// 8 standard deviations the error is below 1e-15, far under the bisection
// tolerance of Percentile.
const cdfCutoff = 8

// CDF evaluates the estimated cumulative distribution function at x.
// Because the samples are kept sorted, kernels farther than cdfCutoff
// bandwidths from x contribute exactly 0 or 1, so the evaluation is
// O(log n + w) where w is the number of samples within the cutoff — this
// keeps the MD module's frequent profile refits cheap.
func (k *KDE) CDF(x float64) float64 {
	n := len(k.samples)
	lo := sort.SearchFloat64s(k.samples, x-cdfCutoff*k.h)
	hi := sort.SearchFloat64s(k.samples, x+cdfCutoff*k.h)
	sum := float64(lo) // all samples below the window contribute Φ≈1
	for _, s := range k.samples[lo:hi] {
		sum += stdNormalCDF((x - s) / k.h)
	}
	return sum / float64(n)
}

// stdNormalCDF is Φ(z) for the standard normal distribution.
func stdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Percentile inverts the CDF: it returns the x at which CDF(x) = p/100,
// found by bisection over an interval padded by 10 bandwidths beyond the
// sample range. This is how MD derives the (100−α)-th percentile anomaly
// threshold from the normal profile.
func (k *KDE) Percentile(p float64) float64 {
	target := p / 100
	if target <= 0 {
		return k.samples[0] - 10*k.h
	}
	if target >= 1 {
		return k.samples[len(k.samples)-1] + 10*k.h
	}
	lo := k.samples[0] - 10*k.h
	hi := k.samples[len(k.samples)-1] + 10*k.h
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if k.CDF(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10 {
			break
		}
	}
	return (lo + hi) / 2
}

// Samples returns a copy of the (sorted) underlying observations.
func (k *KDE) Samples() []float64 {
	out := make([]float64, len(k.samples))
	copy(out, k.samples)
	return out
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF over samples. It returns ErrEmptyDistribution when
// samples is empty.
func NewECDF(samples []float64) (*ECDF, error) {
	if len(samples) == 0 {
		return nil, ErrEmptyDistribution
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// At returns the fraction of observations <= x.
func (e *ECDF) At(x float64) float64 {
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Percentile returns the p-th percentile (0..100) of the sample.
func (e *ECDF) Percentile(p float64) float64 {
	return percentileSorted(e.sorted, p)
}

// N returns the number of observations.
func (e *ECDF) N() int { return len(e.sorted) }
