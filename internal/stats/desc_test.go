package stats

import (
	"math"
	"testing"
	"testing/quick"

	"fadewich/internal/rng"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("variance %v", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("stddev %v", s)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty slice statistics should be 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max should be ±Inf")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 32.0 / 7.0
	if v := SampleVariance(xs); !almost(v, want, 1e-12) {
		t.Fatalf("sample variance %v, want %v", v, want)
	}
	if SampleVariance([]float64{3}) != 0 {
		t.Fatal("single-element sample variance should be 0")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {75, 3.25},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	if got := Percentile([]float64{9, 1, 5}, 50); got != 5 {
		t.Fatalf("median of unsorted = %v", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	src := rng.New(3)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = src.NormFloat64()
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v := Percentile(xs, p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v", p)
		}
		prev = v
	}
}

func TestAutocorrelation(t *testing.T) {
	// A constant has zero (defined) autocorrelation.
	if r := Autocorrelation([]float64{5, 5, 5, 5}, 1); r != 0 {
		t.Fatalf("constant ac %v", r)
	}
	// Perfectly alternating series has lag-1 autocorrelation −1.
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if r := Autocorrelation(alt, 1); !almost(r, -1, 1e-9) {
		t.Fatalf("alternating lag-1 ac %v, want -1", r)
	}
	// Lag 0 is exactly 1 for any non-constant series.
	if r := Autocorrelation([]float64{1, 2, 3, 4}, 0); !almost(r, 1, 1e-9) {
		t.Fatalf("lag-0 ac %v, want 1", r)
	}
	// Out-of-range lags are 0.
	if Autocorrelation([]float64{1, 2}, 5) != 0 || Autocorrelation([]float64{1, 2}, -1) != 0 {
		t.Fatal("out-of-range lag should be 0")
	}
}

func TestAutocorrelationSmoothVsNoise(t *testing.T) {
	src := rng.New(8)
	// A slow ramp is highly lag-1 correlated; white noise is not.
	ramp := make([]float64, 100)
	noise := make([]float64, 100)
	for i := range ramp {
		ramp[i] = float64(i) + 0.01*src.NormFloat64()
		noise[i] = src.NormFloat64()
	}
	if r := Autocorrelation(ramp, 1); r < 0.9 {
		t.Fatalf("ramp ac %v, want > 0.9", r)
	}
	if r := Autocorrelation(noise, 1); math.Abs(r) > 0.3 {
		t.Fatalf("noise ac %v, want ≈ 0", r)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r := PearsonCorrelation(x, y); !almost(r, 1, 1e-12) {
		t.Fatalf("perfect positive corr %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := PearsonCorrelation(x, neg); !almost(r, -1, 1e-12) {
		t.Fatalf("perfect negative corr %v", r)
	}
	if r := PearsonCorrelation(x, []float64{3, 3, 3, 3, 3}); r != 0 {
		t.Fatalf("constant series corr %v, want 0", r)
	}
	if r := PearsonCorrelation(x, []float64{1, 2}); r != 0 {
		t.Fatalf("length mismatch corr %v, want 0", r)
	}
}

func TestCorrelationMatrixProperties(t *testing.T) {
	src := rng.New(21)
	cols := make([][]float64, 4)
	for i := range cols {
		cols[i] = make([]float64, 50)
		for j := range cols[i] {
			cols[i][j] = src.NormFloat64()
		}
	}
	m := CorrelationMatrix(cols)
	for i := range m {
		if m[i][i] != 1 {
			t.Fatalf("diagonal [%d] = %v", i, m[i][i])
		}
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Fatal("matrix not symmetric")
			}
			if m[i][j] < -1-1e-12 || m[i][j] > 1+1e-12 {
				t.Fatalf("correlation out of range: %v", m[i][j])
			}
		}
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		return Variance(xs) >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
}
