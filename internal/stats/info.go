package stats

// This file implements the information-theoretic feature analysis of the
// paper's Appendix A: mutual information between a quantised feature and a
// class label, and the relative mutual information (RMI)
//
//	RMI(x, y) = (H(x) − H(x|y)) / H(x)
//
// used to rank features (Table V) and to draw the stream-importance
// heat-map (Fig 12).

// MutualInformation returns I(X;Y) in nats for the paired discrete
// sequences xs (feature bins) and ys (class labels). Sequences of unequal
// length or empty sequences yield 0.
func MutualInformation(xs, ys []int) float64 {
	hx, hxy := marginalAndConditionalEntropy(xs, ys)
	return hx - hxy
}

// RelativeMutualInformation returns RMI(x, y) = (H(x) − H(x|y)) / H(x), the
// fraction of the feature's entropy explained by the class label. A
// constant feature (H(x)=0) carries no information and yields 0.
func RelativeMutualInformation(xs, ys []int) float64 {
	hx, hxy := marginalAndConditionalEntropy(xs, ys)
	if hx == 0 {
		return 0
	}
	return (hx - hxy) / hx
}

// marginalAndConditionalEntropy returns H(x) and H(x|y) for the paired
// discrete sequences.
func marginalAndConditionalEntropy(xs, ys []int) (hx, hxGivenY float64) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, 0
	}
	n := float64(len(xs))

	xCounts := make(map[int]int)
	yCounts := make(map[int]int)
	// Per-class histograms of x, keyed by class label.
	xGivenY := make(map[int]map[int]int)
	for i := range xs {
		xCounts[xs[i]]++
		yCounts[ys[i]]++
		inner, ok := xGivenY[ys[i]]
		if !ok {
			inner = make(map[int]int)
			xGivenY[ys[i]] = inner
		}
		inner[xs[i]]++
	}

	hx = EntropyOfCounts(mapValues(xCounts))
	for y, inner := range xGivenY {
		py := float64(yCounts[y]) / n
		hxGivenY += py * EntropyOfCounts(mapValues(inner))
	}
	return hx, hxGivenY
}

func mapValues(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
