// Package geom provides the small amount of 2-D computational geometry the
// FADEWICH simulator needs: point/segment primitives, point-to-segment
// distance (used by the human-body shadowing model to decide whether a body
// obstructs a sensor link), ellipse containment (the RTI-style sensitivity
// region around a link), and polyline paths with arc-length parameterisation
// (used to walk user agents from their workstation to the office door).
package geom

import (
	"fmt"
	"math"
)

// Point is a position on the office floor plan, in metres.
type Point struct {
	X, Y float64
}

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product of p and q interpreted as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p interpreted as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// String renders the point with centimetre precision for logs and tables.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Segment is the straight line between two sensor positions (a radio link)
// or one leg of a walking path.
type Segment struct {
	A, B Point
}

// Length returns the segment's Euclidean length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the point halfway along the segment.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// DistToPoint returns the shortest distance from p to any point of the
// segment, along with the parameter t in [0,1] of the closest point
// (t=0 at A, t=1 at B).
func (s Segment) DistToPoint(p Point) (dist, t float64) {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return s.A.Dist(p), 0
	}
	t = p.Sub(s.A).Dot(d) / l2
	t = math.Max(0, math.Min(1, t))
	closest := s.A.Lerp(s.B, t)
	return closest.Dist(p), t
}

// ExcessPathLength returns how much longer the path A→p→B is than the
// direct path A→B. This is the quantity that parameterises Fresnel-zone
// style link-obstruction models: a scatterer with small excess path length
// sits inside the sensitivity ellipse of the link.
func (s Segment) ExcessPathLength(p Point) float64 {
	return s.A.Dist(p) + p.Dist(s.B) - s.Length()
}

// InEllipse reports whether p lies within the ellipse having the segment
// endpoints as foci and the given excess path length (metres) as the
// allowed detour, i.e. |A-p| + |p-B| <= |A-B| + excess.
func (s Segment) InEllipse(p Point, excess float64) bool {
	return s.ExcessPathLength(p) <= excess
}

// Path is a polyline with precomputed cumulative arc lengths, supporting
// constant-speed traversal. Construct with NewPath.
type Path struct {
	points []Point
	cum    []float64 // cum[i] = arc length from points[0] to points[i]
}

// NewPath builds a path through the given waypoints. It panics if fewer
// than two waypoints are supplied, since a degenerate path cannot be
// walked; callers construct paths from static layout data, so this is a
// programming error, not an input error.
func NewPath(points ...Point) *Path {
	if len(points) < 2 {
		panic("geom: NewPath requires at least two waypoints")
	}
	pts := make([]Point, len(points))
	copy(pts, points)
	cum := make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		cum[i] = cum[i-1] + pts[i-1].Dist(pts[i])
	}
	return &Path{points: pts, cum: cum}
}

// Length returns the total arc length of the path.
func (p *Path) Length() float64 { return p.cum[len(p.cum)-1] }

// At returns the point at arc length s from the start. s is clamped to
// [0, Length].
func (p *Path) At(s float64) Point {
	if s <= 0 {
		return p.points[0]
	}
	last := len(p.cum) - 1
	if s >= p.cum[last] {
		return p.points[last]
	}
	// Binary search for the leg containing arc length s.
	lo, hi := 0, last
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	legLen := p.cum[hi] - p.cum[lo]
	if legLen == 0 {
		return p.points[lo]
	}
	t := (s - p.cum[lo]) / legLen
	return p.points[lo].Lerp(p.points[hi], t)
}

// Reverse returns a new path traversing the same waypoints backwards.
func (p *Path) Reverse() *Path {
	rev := make([]Point, len(p.points))
	for i, pt := range p.points {
		rev[len(p.points)-1-i] = pt
	}
	return NewPath(rev...)
}

// Waypoints returns a copy of the path's waypoints.
func (p *Path) Waypoints() []Point {
	out := make([]Point, len(p.points))
	copy(out, p.points)
	return out
}

// Rect is an axis-aligned rectangle, used for the office outline.
type Rect struct {
	Min, Max Point
}

// Contains reports whether p lies within the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the rectangle's extent along X.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the rectangle's extent along Y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the rectangle's central point.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Clamp returns the point inside the rectangle closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}
