package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointArithmetic(t *testing.T) {
	p, q := Point{1, 2}, Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestDistSymmetricNonNegative(t *testing.T) {
	if err := quick.Check(func(ax, ay, bx, by float64) bool {
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		d1, d2 := a.Dist(b), b.Dist(a)
		return d1 >= 0 && almostEqual(d1, d2, 1e-12)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// clamp keeps quick-generated values in a sane range so float overflow
// does not produce spurious failures.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1000)
}

func TestLerpEndpoints(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 4}
	if got := a.Lerp(b, 0); got != a {
		t.Fatalf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Fatalf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != (Point{5, 2}) {
		t.Fatalf("Lerp(0.5) = %v", got)
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	s := Segment{A: Point{0, 0}, B: Point{10, 0}}
	cases := []struct {
		p     Point
		d, tt float64
	}{
		{Point{5, 3}, 3, 0.5},    // perpendicular above the middle
		{Point{-4, 0}, 4, 0},     // beyond A
		{Point{14, 3}, 5, 1},     // beyond B, diagonal
		{Point{0, 0}, 0, 0},      // endpoint A
		{Point{10, 0}, 0, 1},     // endpoint B
		{Point{2.5, 0}, 0, 0.25}, // on the segment
	}
	for _, c := range cases {
		d, tt := s.DistToPoint(c.p)
		if !almostEqual(d, c.d, 1e-9) || !almostEqual(tt, c.tt, 1e-9) {
			t.Fatalf("DistToPoint(%v) = (%v,%v), want (%v,%v)", c.p, d, tt, c.d, c.tt)
		}
	}
}

func TestDegenerateSegment(t *testing.T) {
	s := Segment{A: Point{2, 2}, B: Point{2, 2}}
	d, tt := s.DistToPoint(Point{5, 6})
	if !almostEqual(d, 5, 1e-9) || tt != 0 {
		t.Fatalf("degenerate segment: d=%v t=%v", d, tt)
	}
}

func TestExcessPathLength(t *testing.T) {
	s := Segment{A: Point{0, 0}, B: Point{6, 0}}
	// On the segment: zero excess.
	if e := s.ExcessPathLength(Point{3, 0}); !almostEqual(e, 0, 1e-12) {
		t.Fatalf("on-segment excess %v", e)
	}
	// 3-4-5 triangles on both halves: 5+5-6 = 4.
	if e := s.ExcessPathLength(Point{3, 4}); !almostEqual(e, 4, 1e-9) {
		t.Fatalf("excess %v, want 4", e)
	}
}

func TestInEllipseMonotoneInExcess(t *testing.T) {
	s := Segment{A: Point{0, 0}, B: Point{6, 0}}
	if !s.InEllipse(Point{3, 0.1}, 0.5) {
		t.Fatal("point near LoS should be inside a 0.5m ellipse")
	}
	if s.InEllipse(Point{3, 4}, 0.5) {
		t.Fatal("point far from LoS should be outside a 0.5m ellipse")
	}
}

func TestPathArcLength(t *testing.T) {
	p := NewPath(Point{0, 0}, Point{3, 0}, Point{3, 4})
	if !almostEqual(p.Length(), 7, 1e-12) {
		t.Fatalf("length %v, want 7", p.Length())
	}
	if got := p.At(0); got != (Point{0, 0}) {
		t.Fatalf("At(0) = %v", got)
	}
	if got := p.At(3); got != (Point{3, 0}) {
		t.Fatalf("At(3) = %v", got)
	}
	if got := p.At(5); got != (Point{3, 2}) {
		t.Fatalf("At(5) = %v", got)
	}
	// Clamping beyond both ends.
	if got := p.At(-1); got != (Point{0, 0}) {
		t.Fatalf("At(-1) = %v", got)
	}
	if got := p.At(100); got != (Point{3, 4}) {
		t.Fatalf("At(100) = %v", got)
	}
}

func TestPathAtIsContinuous(t *testing.T) {
	p := NewPath(Point{0, 0}, Point{2, 1}, Point{5, 5}, Point{6, 0})
	prev := p.At(0)
	for s := 0.05; s <= p.Length(); s += 0.05 {
		cur := p.At(s)
		if prev.Dist(cur) > 0.051 {
			t.Fatalf("path jumped %v at s=%v", prev.Dist(cur), s)
		}
		prev = cur
	}
}

func TestPathReverse(t *testing.T) {
	p := NewPath(Point{0, 0}, Point{3, 0}, Point{3, 4})
	r := p.Reverse()
	if !almostEqual(r.Length(), p.Length(), 1e-12) {
		t.Fatal("reverse changed length")
	}
	if got := r.At(0); got != (Point{3, 4}) {
		t.Fatalf("reverse start %v", got)
	}
	if got := r.At(r.Length()); got != (Point{0, 0}) {
		t.Fatalf("reverse end %v", got)
	}
	// Reversal is an involution on the waypoints.
	w1, w2 := p.Waypoints(), r.Reverse().Waypoints()
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("double reverse is not identity")
		}
	}
}

func TestNewPathPanicsOnTooFewPoints(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPath with one point did not panic")
		}
	}()
	NewPath(Point{0, 0})
}

func TestRect(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{6, 3}}
	if !r.Contains(Point{3, 1.5}) || !r.Contains(Point{0, 0}) || !r.Contains(Point{6, 3}) {
		t.Fatal("Contains failed on interior/boundary")
	}
	if r.Contains(Point{6.01, 1}) || r.Contains(Point{-0.01, 1}) {
		t.Fatal("Contains accepted exterior point")
	}
	if r.Width() != 6 || r.Height() != 3 {
		t.Fatalf("dims %v x %v", r.Width(), r.Height())
	}
	if r.Center() != (Point{3, 1.5}) {
		t.Fatalf("center %v", r.Center())
	}
	if got := r.Clamp(Point{10, -5}); got != (Point{6, 0}) {
		t.Fatalf("Clamp = %v", got)
	}
}

func TestClampedPointAlwaysInside(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{6, 3}}
	if err := quick.Check(func(x, y float64) bool {
		return r.Contains(r.Clamp(Point{clamp(x), clamp(y)}))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathAtDistanceTraveledMatchesRequested(t *testing.T) {
	// Property: walking s along the path, the cumulative polyline distance
	// from the start equals s (within numeric tolerance).
	p := NewPath(Point{0, 0}, Point{1, 1}, Point{4, 1}, Point{4, 4})
	for s := 0.0; s < p.Length(); s += 0.37 {
		// Measure distance from start by fine sampling.
		var travelled float64
		prev := p.At(0)
		for x := 0.001; x <= s; x += 0.001 {
			cur := p.At(x)
			travelled += prev.Dist(cur)
			prev = cur
		}
		if !almostEqual(travelled, s, 0.01) {
			t.Fatalf("travelled %v for arc %v", travelled, s)
		}
	}
}
