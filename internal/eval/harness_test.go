package eval

import (
	"sync"
	"testing"

	"fadewich/internal/md"
	"fadewich/internal/sim"
)

// The eval tests share one small dataset (2 × 1.5-hour days) because
// generation dominates runtime; every test treats it as read-only.
var (
	fixtureOnce sync.Once
	fixtureDS   *sim.Dataset
	fixtureErr  error
)

func testDataset(t *testing.T) *sim.Dataset {
	t.Helper()
	fixtureOnce.Do(func() {
		cfg := sim.Config{Days: 2, Seed: 77}
		cfg.Agent.DaySeconds = 5400
		cfg.Agent.MorningJitterSec = 180
		cfg.Agent.DeparturesPerDay = 4
		cfg.Agent.OutsideMeanSec = 180
		fixtureDS, fixtureErr = sim.Generate(cfg)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureDS
}

func testHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := NewHarness(testDataset(t), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHarnessEvents(t *testing.T) {
	h := testHarness(t)
	evs := h.AllEvents()
	if len(evs) == 0 {
		t.Fatal("no events extracted")
	}
	deps, entries := 0, 0
	for _, e := range evs {
		switch {
		case e.Label >= 1:
			deps++
			if e.ExitTime <= e.Time {
				t.Fatalf("departure exit time %v not after departure %v", e.ExitTime, e.Time)
			}
			if e.ExitTime-e.Time > 20 {
				t.Fatalf("departure→exit gap %v unreasonable", e.ExitTime-e.Time)
			}
		default:
			entries++
		}
	}
	if deps == 0 || entries == 0 {
		t.Fatalf("event mix deps=%d entries=%d", deps, entries)
	}
}

func TestMatchCountsConsistent(t *testing.T) {
	h := testHarness(t)
	results, err := h.RunMD(9)
	if err != nil {
		t.Fatal(err)
	}
	matches, det := h.Match(results, 4.5)
	// TP + FN must equal the number of events.
	if det.TP+det.FN != len(h.AllEvents()) {
		t.Fatalf("TP+FN = %d, events = %d", det.TP+det.FN, len(h.AllEvents()))
	}
	// The per-day match structures must agree with the totals.
	tp := 0
	for _, m := range matches {
		for _, ei := range m.EventIdx {
			if ei >= 0 {
				tp++
			}
		}
		// WindowOf and EventIdx must be mutually consistent.
		for ei, wi := range m.WindowOf {
			if wi >= 0 && m.EventIdx[wi] != ei {
				t.Fatal("WindowOf and EventIdx disagree")
			}
		}
	}
	if tp != det.TP {
		t.Fatalf("per-day TP %d vs total %d", tp, det.TP)
	}
}

func TestMatchSyntheticWindows(t *testing.T) {
	// Hand-built matching scenario exercising TP, FP, FN and duplicate
	// windows, independent of the simulator.
	ds := testDataset(t)
	h, _ := NewHarness(ds, Options{Seed: 5})
	// Craft: one event at t=100 (day 0). Build two overlapping windows
	// and one far-away window.
	h.events = [][]TrueEvent{{
		{Day: 0, Time: 100, Label: 1, ExitTime: 105},
	}, {}}
	dt := ds.Days[0].DT
	res := &md.Result{DT: dt, Windows: []md.Window{
		{StartTick: int(99 / dt), EndTick: int(106 / dt)},  // TP
		{StartTick: int(101 / dt), EndTick: int(107 / dt)}, // duplicate → neither
		{StartTick: int(500 / dt), EndTick: int(506 / dt)}, // FP
	}}
	res2 := &md.Result{DT: dt}
	_, det := h.Match([]*md.Result{res, res2}, 4.5)
	if det.TP != 1 || det.FP != 1 || det.FN != 0 {
		t.Fatalf("detection %+v, want TP=1 FP=1 FN=0", det)
	}
}

func TestMatchFalseNegative(t *testing.T) {
	ds := testDataset(t)
	h, _ := NewHarness(ds, Options{Seed: 5})
	h.events = [][]TrueEvent{{
		{Day: 0, Time: 100, Label: 1},
		{Day: 0, Time: 300, Label: 0},
	}, {}}
	dt := ds.Days[0].DT
	res := &md.Result{DT: dt, Windows: []md.Window{
		{StartTick: int(99 / dt), EndTick: int(106 / dt)},
	}}
	_, det := h.Match([]*md.Result{res, {DT: dt}}, 4.5)
	if det.TP != 1 || det.FN != 1 || det.FP != 0 {
		t.Fatalf("detection %+v, want TP=1 FN=1", det)
	}
}

func TestSamplesAlignWithEvents(t *testing.T) {
	h := testHarness(t)
	results, _ := h.RunMD(9)
	matches, det := h.Match(results, 4.5)
	samples, events := h.SamplesWithEvents(9, matches, 4.5)
	if len(samples) != det.TP {
		t.Fatalf("samples %d, TP %d", len(samples), det.TP)
	}
	if len(events) != len(samples) {
		t.Fatal("events not aligned with samples")
	}
	for i, s := range samples {
		if s.Label != events[i].Label {
			t.Fatalf("sample %d label %d, event label %d", i, s.Label, events[i].Label)
		}
		if len(s.Features) != 72*3 {
			t.Fatalf("sample %d features %d", i, len(s.Features))
		}
	}
}

func TestRunMDCachesResults(t *testing.T) {
	h := testHarness(t)
	a, err := h.RunMD(9)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := h.RunMD(9)
	if &a[0] != &b[0] {
		t.Fatal("RunMD results not cached")
	}
}

func TestRedrawInputsDiffer(t *testing.T) {
	h := testHarness(t)
	a := h.RedrawInputs(1)
	b := h.RedrawInputs(2)
	same := true
	if len(a[0][0]) != len(b[0][0]) {
		same = false
	} else {
		for i := range a[0][0] {
			if a[0][0][i] != b[0][0][i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different redraw seeds produced identical inputs")
	}
	// Same seed → identical draw.
	c := h.RedrawInputs(1)
	for ws := range a[0] {
		if len(a[0][ws]) != len(c[0][ws]) {
			t.Fatal("redraw not deterministic")
		}
	}
}

func TestTable2MatchesEventCounts(t *testing.T) {
	h := testHarness(t)
	rows := h.Table2()
	counts := h.Dataset().EventCounts()
	if len(rows) != len(counts) {
		t.Fatalf("rows %d, counts %d", len(rows), len(counts))
	}
	for i, r := range rows {
		if r.Count != counts[i] {
			t.Fatalf("row %s count %d, want %d", r.Label, r.Count, counts[i])
		}
	}
}

func TestFig7MoreSensorsNoWorse(t *testing.T) {
	h := testHarness(t)
	pts, err := h.Fig7([]float64{4.5}, []int{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	var f3, f9 float64
	for _, p := range pts {
		if p.Sensors == 3 {
			f3 = p.FMeasure
		}
		if p.Sensors == 9 {
			f9 = p.FMeasure
		}
	}
	if f9 < f3 {
		t.Fatalf("9-sensor F-measure %v below 3-sensor %v", f9, f3)
	}
	if f9 < 0.7 {
		t.Fatalf("9-sensor F-measure %v unexpectedly low", f9)
	}
}

func TestTable3Shape(t *testing.T) {
	h := testHarness(t)
	rows, err := h.Table3(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // sensor counts 3..9
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		tp, fp, fn := r.Fractions()
		if sum := tp + fp + fn; sum != 0 && (sum < 0.999 || sum > 1.001) {
			t.Fatalf("fractions sum %v", sum)
		}
	}
	// Recall at 9 sensors must beat recall at 3 (the paper's core trend).
	r3, r9 := rows[0].Detection.Recall(), rows[6].Detection.Recall()
	if r9 <= r3 {
		t.Fatalf("recall did not improve with sensors: %v → %v", r3, r9)
	}
}

func TestFig2Separation(t *testing.T) {
	h := testHarness(t)
	data, err := h.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Normal) == 0 || len(data.Walking) == 0 {
		t.Fatal("empty distributions")
	}
	var nMean, wMean float64
	for _, v := range data.Normal {
		nMean += v
	}
	nMean /= float64(len(data.Normal))
	for _, v := range data.Walking {
		wMean += v
	}
	wMean /= float64(len(data.Walking))
	if wMean < 1.5*nMean {
		t.Fatalf("walking mean %v not clearly above normal %v", wMean, nMean)
	}
	if data.Threshold <= nMean {
		t.Fatalf("99th percentile threshold %v at or below the quiet mean %v", data.Threshold, nMean)
	}
}

func TestDepartureOutcomesCoverAllDepartures(t *testing.T) {
	h := testHarness(t)
	outcomes, err := h.DepartureOutcomes(9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	deps := 0
	for _, e := range h.AllEvents() {
		if e.Label >= 1 {
			deps++
		}
	}
	if len(outcomes) != deps {
		t.Fatalf("outcomes %d, departures %d", len(outcomes), deps)
	}
	p := h.Options().Params
	for _, o := range outcomes {
		switch o.Case {
		case CaseA:
			if o.Elapsed <= 0 || o.Elapsed > 12 {
				t.Fatalf("case A elapsed %v", o.Elapsed)
			}
		case CaseB:
			if o.Elapsed != p.TIDSec+p.TSSSec {
				t.Fatalf("case B elapsed %v, want %v", o.Elapsed, p.TIDSec+p.TSSSec)
			}
		case CaseC:
			if o.Elapsed != p.TimeoutSec {
				t.Fatalf("case C elapsed %v, want %v", o.Elapsed, p.TimeoutSec)
			}
		default:
			t.Fatalf("unknown case %v", o.Case)
		}
	}
}

func TestFig9CurvesMonotone(t *testing.T) {
	h := testHarness(t)
	curves, err := h.Fig9([]int{3, 9}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		prev := -1.0
		for i, y := range c.Y {
			if y < prev {
				t.Fatalf("n=%d: curve not monotone at x=%v", c.Sensors, c.X[i])
			}
			if y < 0 || y > 100 {
				t.Fatalf("n=%d: percentage %v out of range", c.Sensors, y)
			}
			prev = y
		}
	}
}

func TestFig10BaselineAlwaysVulnerable(t *testing.T) {
	h := testHarness(t)
	rows, err := h.Fig10(AdversaryDelays{})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Policy != "timeout" {
		t.Fatal("first row should be the baseline")
	}
	if rows[0].InsiderPct != 100 || rows[0].CoworkerPct != 100 {
		t.Fatalf("baseline opportunities %v/%v, want 100/100", rows[0].InsiderPct, rows[0].CoworkerPct)
	}
	// FADEWICH at 9 sensors must beat the baseline for both adversaries.
	last := rows[len(rows)-1]
	if last.InsiderPct >= 100 || last.CoworkerPct >= 100 {
		t.Fatalf("9 sensors no better than timeout: %+v", last)
	}
	// Co-worker is never easier to stop than the insider.
	for _, r := range rows[1:] {
		if r.CoworkerPct < r.InsiderPct-1e-9 {
			t.Fatalf("co-worker %v%% below insider %v%%", r.CoworkerPct, r.InsiderPct)
		}
	}
}

func TestTable4CostFormula(t *testing.T) {
	h := testHarness(t)
	rows, err := h.Table4(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		want := 3*r.ScreensaversPerDay + 13*r.DeauthsPerDay
		if diff := r.CostPerDay - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("cost %v, want %v", r.CostPerDay, want)
		}
		if r.ScreensaversPerDay < 0 || r.DeauthsPerDay < 0 {
			t.Fatal("negative counts")
		}
	}
}

func TestFig13VulnerableTimeDropsVsTimeout(t *testing.T) {
	h := testHarness(t)
	rows, err := h.Fig13(3)
	if err != nil {
		t.Fatal(err)
	}
	timeoutVuln := rows[0].VulnerableMin
	if rows[0].TotalCostMin != 0 {
		t.Fatal("timeout baseline must have zero cost")
	}
	best := rows[len(rows)-1]
	if best.VulnerableMin >= timeoutVuln/2 {
		t.Fatalf("9 sensors vulnerable %v min, timeout %v min — expected a clear drop",
			best.VulnerableMin, timeoutVuln)
	}
}

func TestFig11Structure(t *testing.T) {
	h := testHarness(t)
	data, err := h.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Corr) != 72 || len(data.StreamNames) != 72 {
		t.Fatalf("matrix %dx, names %d", len(data.Corr), len(data.StreamNames))
	}
	// The paper's observation: streams sharing a device are more
	// correlated than disjoint ones.
	if data.SharedEndpointMean <= data.DisjointMean {
		t.Fatalf("shared-endpoint correlation %v not above disjoint %v",
			data.SharedEndpointMean, data.DisjointMean)
	}
}

func TestTable5RankingSortedAndNamed(t *testing.T) {
	h := testHarness(t)
	rows, err := h.Table5(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].RMI > rows[i-1].RMI {
			t.Fatal("Table V not sorted by RMI")
		}
	}
	for _, r := range rows {
		if r.Name == "" || r.Kind == "" {
			t.Fatalf("unnamed feature %+v", r)
		}
		if r.RMI < 0 || r.RMI > 1 {
			t.Fatalf("RMI %v out of range", r.RMI)
		}
	}
}

func TestFig12GridNormalised(t *testing.T) {
	h := testHarness(t)
	data, err := h.Fig12(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Grid) == 0 {
		t.Fatal("empty grid")
	}
	var max float64
	for _, row := range data.Grid {
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("grid value %v out of [0,1]", v)
			}
			if v > max {
				max = v
			}
		}
	}
	if max != 1 {
		t.Fatalf("grid max %v, want normalised to 1", max)
	}
	if len(data.StreamRMI) != 72 {
		t.Fatalf("stream RMI count %d", len(data.StreamRMI))
	}
}

func TestFig8ShortDatasetStillProducesCurve(t *testing.T) {
	h := testHarness(t)
	pts, err := h.Fig8(Fig8Config{SensorCounts: []int{9}, Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no learning-curve points")
	}
	for _, p := range pts {
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Fatalf("accuracy %v", p.Accuracy)
		}
	}
	// Accuracy at the largest size should beat the smallest.
	if pts[len(pts)-1].Accuracy+0.05 < pts[0].Accuracy {
		t.Fatalf("learning curve decreasing: %v → %v", pts[0].Accuracy, pts[len(pts)-1].Accuracy)
	}
}
