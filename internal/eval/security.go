package eval

// This file regenerates the security experiments: Fig 9 (the distribution
// of deauthentication times after a departure, following the decision tree
// of Fig 5), Fig 10 (attack opportunities for the Insider and Co-worker
// adversaries versus the time-out baseline), and Fig 13 (the vulnerable
// time / user cost trade-off).

import (
	"fadewich/internal/baseline"
	"fadewich/internal/engine"
)

// OutcomeCase identifies a leaf of the paper's decision tree (Fig 5).
type OutcomeCase int

// Decision-tree leaves: case A is a true positive correctly classified
// (deauthentication at t1+t∆), case B a true positive misclassified
// (deauthentication via the alert path at t+tID+tss), and case C a false
// negative (deauthentication by the baseline time-out at t+T).
const (
	CaseA OutcomeCase = iota + 1
	CaseB
	CaseC
)

// String implements fmt.Stringer.
func (c OutcomeCase) String() string {
	switch c {
	case CaseA:
		return "A"
	case CaseB:
		return "B"
	case CaseC:
		return "C"
	default:
		return "?"
	}
}

// DepartureOutcome is one departure's fate.
type DepartureOutcome struct {
	Event TrueEvent
	Case  OutcomeCase
	// Elapsed is the deauthentication delay measured from the departure
	// (the paper's worst-case last-input moment).
	Elapsed float64
}

// DepartureOutcomes classifies every departure event at sensor count n
// using the paper's procedure (Section VII-C): run MD over the whole
// period, 5-fold cross-validate RE over the TP samples, then read the
// decision-tree timing per event.
func (h *Harness) DepartureOutcomes(n int, tDelta float64, seed uint64) ([]DepartureOutcome, error) {
	if tDelta == 0 {
		tDelta = h.opt.Feat.TDeltaSec
	}
	p := h.opt.Params
	results, err := h.RunMD(n)
	if err != nil {
		return nil, err
	}
	matches, _ := h.Match(results, tDelta)
	samples := h.Samples(n, matches, tDelta)
	preds := h.cvPredict(samples, seed)

	// predByWindow maps (day, startTick) to the CV prediction.
	type key struct{ day, tick int }
	predByWindow := make(map[key]int, len(samples))
	for i, s := range samples {
		predByWindow[key{s.Day, s.StartTick}] = preds[i]
	}

	var out []DepartureOutcome
	for day, m := range matches {
		trace := h.ds.Days[day]
		evs := h.events[day]
		for ei, ev := range evs {
			if ev.Label < 1 {
				continue // entries are not deauthentication subjects
			}
			wi := m.WindowOf[ei]
			if wi < 0 {
				out = append(out, DepartureOutcome{Event: ev, Case: CaseC, Elapsed: p.TimeoutSec})
				continue
			}
			w := m.Windows[wi]
			pred, ok := predByWindow[key{day, w.StartTick}]
			if !ok {
				pred = ev.Label // sample set too small to CV; treat as correct
			}
			if pred == ev.Label {
				t1 := float64(w.StartTick) * trace.DT
				out = append(out, DepartureOutcome{
					Event:   ev,
					Case:    CaseA,
					Elapsed: t1 + p.TDeltaSec - ev.Time,
				})
			} else {
				out = append(out, DepartureOutcome{
					Event:   ev,
					Case:    CaseB,
					Elapsed: p.TIDSec + p.TSSSec,
				})
			}
		}
	}
	return out, nil
}

// Fig9Curve is one sensor count's cumulative deauthentication curve.
type Fig9Curve struct {
	Sensors int
	X       []float64 // elapsed seconds
	Y       []float64 // % of departures deauthenticated within X
	Cases   map[OutcomeCase]int
}

// Fig9 computes the proportion of deauthenticated workstations versus time
// elapsed since the user left, for each sensor count.
func (h *Harness) Fig9(sensorCounts []int, maxSec float64) ([]Fig9Curve, error) {
	if len(sensorCounts) == 0 {
		sensorCounts = []int{3, 5, 7, 9}
	}
	if maxSec == 0 {
		maxSec = 10
	}
	return engine.Gather(h.pool, len(sensorCounts), func(i int) (Fig9Curve, error) {
		n := sensorCounts[i]
		outcomes, err := h.DepartureOutcomes(n, 0, 12345)
		if err != nil {
			return Fig9Curve{}, err
		}
		curve := Fig9Curve{Sensors: n, Cases: map[OutcomeCase]int{}}
		for _, o := range outcomes {
			curve.Cases[o.Case]++
		}
		total := float64(len(outcomes))
		for x := 0.0; x <= maxSec+1e-9; x += 0.2 {
			count := 0
			for _, o := range outcomes {
				if o.Elapsed <= x {
					count++
				}
			}
			curve.X = append(curve.X, x)
			if total > 0 {
				curve.Y = append(curve.Y, 100*float64(count)/total)
			} else {
				curve.Y = append(curve.Y, 0)
			}
		}
		return curve, nil
	})
}

// Fig10Row is one policy's attack-opportunity percentages.
type Fig10Row struct {
	// Policy is "timeout" or the sensor count.
	Policy      string
	Sensors     int // 0 for the baseline
	Departures  int
	InsiderPct  float64
	CoworkerPct float64
}

// AdversaryDelays configures the two adversaries of Section VII-C: the
// Insider reaches the workstation InsiderSec after the victim exits the
// office; the Co-worker immediately.
type AdversaryDelays struct {
	InsiderSec  float64
	CoworkerSec float64
}

// DefaultAdversaryDelays returns the paper's values (4 s and 0 s).
func DefaultAdversaryDelays() AdversaryDelays {
	return AdversaryDelays{InsiderSec: 4, CoworkerSec: 0}
}

// Fig10 counts, per policy, the percentage of departures an adversary can
// exploit: the workstation is still authenticated when the adversary
// reaches it.
func (h *Harness) Fig10(adv AdversaryDelays) ([]Fig10Row, error) {
	if adv.InsiderSec == 0 && adv.CoworkerSec == 0 {
		adv = DefaultAdversaryDelays()
	}
	pol := baseline.Policy{TimeoutSec: h.opt.Params.TimeoutSec}
	departures := 0
	for _, evs := range h.events {
		for _, ev := range evs {
			if ev.Label >= 1 {
				departures++
			}
		}
	}
	rows := []Fig10Row{{
		Policy:      "timeout",
		Departures:  departures,
		InsiderPct:  pct(pol.AttackOpportunities(departures, 0, adv.InsiderSec), departures),
		CoworkerPct: pct(pol.AttackOpportunities(departures, 0, adv.CoworkerSec), departures),
	}}
	perCount, err := engine.Gather(h.pool, len(h.opt.SensorCounts), func(i int) (Fig10Row, error) {
		n := h.opt.SensorCounts[i]
		outcomes, err := h.DepartureOutcomes(n, 0, 12345)
		if err != nil {
			return Fig10Row{}, err
		}
		insider, coworker := 0, 0
		for _, o := range outcomes {
			deauthAt := o.Event.Time + o.Elapsed
			if deauthAt > o.Event.ExitTime+adv.InsiderSec {
				insider++
			}
			if deauthAt > o.Event.ExitTime+adv.CoworkerSec {
				coworker++
			}
		}
		return Fig10Row{
			Policy:      fmt3(n),
			Sensors:     n,
			Departures:  len(outcomes),
			InsiderPct:  pct(insider, len(outcomes)),
			CoworkerPct: pct(coworker, len(outcomes)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return append(rows, perCount...), nil
}

func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

func fmt3(n int) string {
	const digits = "0123456789"
	if n < 10 {
		return digits[n : n+1]
	}
	return digits[n/10:n/10+1] + digits[n%10:n%10+1]
}

// Fig13Row is one policy's security/usability trade-off point.
type Fig13Row struct {
	Policy        string
	Sensors       int
	VulnerableMin float64 // total unattended-and-authenticated time
	TotalCostMin  float64 // total user cost over the whole period
}

// Fig13 compares the vulnerable time against the total user cost for the
// time-out baseline and every sensor count. draws is the number of input
// redraws for the cost estimate (the paper uses 100; smaller values trade
// precision for speed).
func (h *Harness) Fig13(draws int) ([]Fig13Row, error) {
	if draws == 0 {
		draws = 20
	}
	days := float64(len(h.ds.Days))
	departures := 0
	for _, evs := range h.events {
		for _, ev := range evs {
			if ev.Label >= 1 {
				departures++
			}
		}
	}
	pol := baseline.Policy{TimeoutSec: h.opt.Params.TimeoutSec}
	rows := []Fig13Row{{
		Policy:        "timeout",
		VulnerableMin: pol.VulnerableTime(departures) / 60,
		TotalCostMin:  0,
	}}
	usability, err := h.Table4(draws)
	if err != nil {
		return nil, err
	}
	costPerDay := make(map[int]float64, len(usability))
	for _, u := range usability {
		costPerDay[u.Sensors] = u.CostPerDay
	}
	for _, n := range h.opt.SensorCounts {
		outcomes, err := h.DepartureOutcomes(n, 0, 12345)
		if err != nil {
			return nil, err
		}
		var vulnerable float64
		for _, o := range outcomes {
			vulnerable += o.Elapsed
		}
		rows = append(rows, Fig13Row{
			Policy:        fmt3(n),
			Sensors:       n,
			VulnerableMin: vulnerable / 60,
			TotalCostMin:  costPerDay[n] * days / 60,
		})
	}
	return rows, nil
}
