package eval

// This file regenerates Fig 8: the RE classifier's learning curve —
// classification accuracy versus the number of training samples, per
// sensor count, averaged over a 5-fold cross-validation repeated 10 times
// with different splits, with 95% confidence intervals.

import (
	"fmt"

	"fadewich/internal/engine"
	"fadewich/internal/re"
	"fadewich/internal/stats"
	"fadewich/internal/svm"
)

// Fig8Point is one (sensor count, training size) cell.
type Fig8Point struct {
	Sensors   int
	TrainSize int
	Accuracy  float64 // mean over folds and repeats
	CI95      float64 // half-width over the repeats
}

// Fig8Config tunes the learning-curve experiment.
type Fig8Config struct {
	// SensorCounts defaults to {3, 5, 7, 9}.
	SensorCounts []int
	// TrainSizes defaults to 10, 20, ..., capped by the fold size.
	TrainSizes []int
	// Folds is the cross-validation fold count (default 5).
	Folds int
	// Repeats is how many independent splits are averaged (default 10).
	Repeats int
	// TDelta is the feature window (default: harness option).
	TDelta float64
}

func (c Fig8Config) withDefaults(h *Harness) Fig8Config {
	if len(c.SensorCounts) == 0 {
		c.SensorCounts = []int{3, 5, 7, 9}
	}
	if c.Folds == 0 {
		c.Folds = 5
	}
	if c.Repeats == 0 {
		c.Repeats = 10
	}
	if c.TDelta == 0 {
		c.TDelta = h.opt.Feat.TDeltaSec
	}
	return c
}

// Fig8 computes the learning curves, fanning the sensor counts out over
// the harness pool (each one cross-validates Repeats independent splits).
// Sensor counts whose MD stage finds fewer TP windows produce shorter
// curves, exactly as in the paper ("some of the lines end early on the
// x-axis").
func (h *Harness) Fig8(cfg Fig8Config) ([]Fig8Point, error) {
	cfg = cfg.withDefaults(h)
	perCount, err := engine.Gather(h.pool, len(cfg.SensorCounts), func(i int) ([]Fig8Point, error) {
		return h.fig8For(cfg, cfg.SensorCounts[i])
	})
	if err != nil {
		return nil, err
	}
	var out []Fig8Point
	for _, pts := range perCount {
		out = append(out, pts...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("eval: fig8 produced no points (too few TP samples)")
	}
	return out, nil
}

// fig8For computes one sensor count's learning curve (nil when the MD
// stage found too few TP windows to cross-validate).
func (h *Harness) fig8For(cfg Fig8Config, n int) ([]Fig8Point, error) {
	results, err := h.RunMD(n)
	if err != nil {
		return nil, err
	}
	matches, _ := h.Match(results, cfg.TDelta)
	samples := h.Samples(n, matches, cfg.TDelta)
	if len(samples) < 2*cfg.Folds {
		return nil, nil // not enough TP windows to cross-validate
	}
	sizes := cfg.TrainSizes
	maxTrain := len(samples) - len(samples)/cfg.Folds
	if len(sizes) == 0 {
		for s := 10; s <= maxTrain; s += 10 {
			sizes = append(sizes, s)
		}
		if len(sizes) == 0 || sizes[len(sizes)-1] < maxTrain {
			sizes = append(sizes, maxTrain)
		}
	}

	labels := make([]int, len(samples))
	for i, s := range samples {
		labels[i] = s.Label
	}

	// acc[size index] collects one mean accuracy per repeat.
	acc := make([][]float64, len(sizes))
	for rep := 0; rep < cfg.Repeats; rep++ {
		folds := svm.StratifiedKFold(labels, cfg.Folds, h.opt.Seed+uint64(rep)*7919+uint64(n))
		for si, size := range sizes {
			var foldAcc []float64
			for f := range folds {
				train, test := splitFold(samples, folds, f)
				if size > len(train) {
					continue
				}
				sub := train[:size]
				if !hasTwoClasses(sub) {
					continue
				}
				clf, err := re.Train(sub, h.svmConfig(uint64(rep*31+f)))
				if err != nil {
					continue
				}
				correct := 0
				for _, s := range test {
					if clf.Predict(s.Features) == s.Label {
						correct++
					}
				}
				if len(test) > 0 {
					foldAcc = append(foldAcc, float64(correct)/float64(len(test)))
				}
			}
			if len(foldAcc) > 0 {
				acc[si] = append(acc[si], stats.Mean(foldAcc))
			}
		}
	}
	var out []Fig8Point
	for si, size := range sizes {
		if len(acc[si]) == 0 {
			continue
		}
		mean, ci := stats.MeanAndCI95(acc[si])
		out = append(out, Fig8Point{Sensors: n, TrainSize: size, Accuracy: mean, CI95: ci})
	}
	return out, nil
}

// svmConfig returns the harness SVM configuration with a derived seed.
func (h *Harness) svmConfig(salt uint64) svm.Config {
	cfg := h.opt.SVM
	cfg.Seed = h.opt.Seed*0x9e3779b97f4a7c15 + salt + 1
	return cfg
}

// splitFold partitions samples into train (all folds but f) and test
// (fold f). The training order follows the shuffled fold layout, so
// train[:size] is a random subsample.
func splitFold(samples []re.Sample, folds [][]int, f int) (train, test []re.Sample) {
	for fi, idxs := range folds {
		for _, i := range idxs {
			if fi == f {
				test = append(test, samples[i])
			} else {
				train = append(train, samples[i])
			}
		}
	}
	return train, test
}

// hasTwoClasses reports whether the sample set contains at least two
// distinct labels (an SVM cannot train otherwise).
func hasTwoClasses(samples []re.Sample) bool {
	if len(samples) == 0 {
		return false
	}
	first := samples[0].Label
	for _, s := range samples[1:] {
		if s.Label != first {
			return true
		}
	}
	return false
}

// CrossValPredictions computes, for every TP sample at sensor count n, the
// label predicted by a classifier trained on the other folds — the
// prediction material for the security analysis (Section VII-C's
// procedure). It returns the samples and the per-sample predictions.
func (h *Harness) CrossValPredictions(n int, tDelta float64, seed uint64) ([]re.Sample, []int, error) {
	results, err := h.RunMD(n)
	if err != nil {
		return nil, nil, err
	}
	matches, _ := h.Match(results, tDelta)
	samples := h.Samples(n, matches, tDelta)
	return samples, h.cvPredict(samples, seed), nil
}

// cvPredict returns a 5-fold cross-validated prediction per sample. When a
// fold cannot train (too few samples or a single class) its test samples
// default to their ground-truth labels.
func (h *Harness) cvPredict(samples []re.Sample, seed uint64) []int {
	const folds = 5
	preds := make([]int, len(samples))
	for i := range preds {
		preds[i] = samples[i].Label
	}
	if len(samples) < folds {
		return preds
	}
	labels := make([]int, len(samples))
	for i, s := range samples {
		labels[i] = s.Label
	}
	foldSets := svm.StratifiedKFold(labels, folds, h.opt.Seed^seed)
	for f, testIdx := range foldSets {
		var train []re.Sample
		for fi, idxs := range foldSets {
			if fi == f {
				continue
			}
			for _, i := range idxs {
				train = append(train, samples[i])
			}
		}
		if !hasTwoClasses(train) {
			continue
		}
		clf, err := re.Train(train, h.svmConfig(seed+uint64(f)))
		if err != nil {
			continue
		}
		for _, i := range testIdx {
			preds[i] = clf.Predict(samples[i].Features)
		}
	}
	return preds
}
