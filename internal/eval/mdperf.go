package eval

// This file regenerates the movement-detection experiments: Fig 2 (the
// distribution of the std-dev sum with the 99th-percentile threshold),
// Table II (collected events), Fig 7 (F-measure vs t∆ per sensor count)
// and Table III (TP/FP/FN at t∆ = 4.5 s).

import (
	"fmt"

	"fadewich/internal/agent"
	"fadewich/internal/engine"
	"fadewich/internal/stats"
)

// Fig2Data is the material of the paper's Fig 2: the observed s_t values
// split into quiet and movement periods, a Gaussian-KDE density curve for
// the quiet ("normal") distribution, and its 99th percentile.
type Fig2Data struct {
	// Normal and Walking are the raw s_t observations in each condition.
	Normal, Walking []float64
	// CurveX and CurveY sample the KDE density of the normal profile.
	CurveX, CurveY []float64
	// Threshold is the 99th percentile of the normal KDE.
	Threshold float64
}

// Fig2 computes the std-dev-sum distributions over the first day using the
// full sensor deployment. Quiet ticks are those at least marginSec away
// from any scheduled movement; walking ticks are those inside departure or
// entry walks.
func (h *Harness) Fig2() (*Fig2Data, error) {
	results, err := h.RunMD(h.maxSensors())
	if err != nil {
		return nil, err
	}
	r := results[0]
	trace := h.ds.Days[0]

	const margin = 4.0
	movement := make([]agent.Interval, 0, len(h.events[0]))
	for _, ev := range h.events[0] {
		movement = append(movement, agent.Interval{Start: ev.Time - 1, End: ev.Time + 10})
	}

	warm := int(h.opt.MD.ProfileInitSec/trace.DT) + 1
	if warm < 1 {
		warm = int(30/trace.DT) + 1
	}
	data := &Fig2Data{}
	for i := warm; i < len(r.SumStd); i++ {
		t := float64(i) * trace.DT
		inMove, nearMove := false, false
		for _, iv := range movement {
			if iv.Contains(t) {
				inMove = true
				break
			}
			if t >= iv.Start-margin && t <= iv.End+margin {
				nearMove = true
			}
		}
		switch {
		case inMove:
			data.Walking = append(data.Walking, r.SumStd[i])
		case !nearMove:
			data.Normal = append(data.Normal, r.SumStd[i])
		}
	}

	kde, err := stats.NewKDE(subsample(data.Normal, 2000), 0)
	if err != nil {
		return nil, fmt.Errorf("eval: fig2 KDE: %w", err)
	}
	data.Threshold = kde.Percentile(99)

	lo := stats.Min(data.Normal)
	hi := stats.Max(data.Walking)
	if hi <= lo {
		hi = lo + 1
	}
	const points = 120
	for i := 0; i <= points; i++ {
		x := lo + (hi-lo)*float64(i)/points
		data.CurveX = append(data.CurveX, x)
		data.CurveY = append(data.CurveY, kde.Density(x))
	}
	return data, nil
}

// subsample returns at most n evenly spaced elements of xs, keeping KDE
// construction over multi-hour traces cheap without biasing the
// distribution.
func subsample(xs []float64, n int) []float64 {
	if len(xs) <= n {
		return xs
	}
	out := make([]float64, 0, n)
	step := float64(len(xs)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, xs[int(float64(i)*step)])
	}
	return out
}

// maxSensors returns the largest configured sensor count.
func (h *Harness) maxSensors() int {
	max := h.opt.SensorCounts[0]
	for _, n := range h.opt.SensorCounts[1:] {
		if n > max {
			max = n
		}
	}
	return max
}

// Table2Row is one label's event count.
type Table2Row struct {
	Label string
	Count int
}

// Table2 returns the collected-event counts in the paper's Table II
// format.
func (h *Harness) Table2() []Table2Row {
	counts := h.ds.EventCounts()
	rows := make([]Table2Row, len(counts))
	for i, c := range counts {
		rows[i] = Table2Row{Label: fmt.Sprintf("w%d", i), Count: c}
	}
	return rows
}

// Fig7Point is one (t∆, sensor count) cell of Fig 7.
type Fig7Point struct {
	TDelta    float64
	Sensors   int
	FMeasure  float64
	Detection stats.Detection
}

// Fig7 sweeps the minimum window duration t∆ for each sensor count and
// returns the F-measure surface. Sensor counts fan out over the harness
// pool (the detector run is the expensive part); within one count the
// sweep only refilters and rematches windows.
func (h *Harness) Fig7(tDeltas []float64, sensorCounts []int) ([]Fig7Point, error) {
	if len(tDeltas) == 0 {
		tDeltas = []float64{2, 2.5, 3, 3.5, 4, 4.5, 5, 5.5, 6, 6.5, 7, 7.5, 8}
	}
	if len(sensorCounts) == 0 {
		sensorCounts = []int{3, 5, 7, 9}
	}
	perCount, err := engine.Gather(h.pool, len(sensorCounts), func(i int) ([]Fig7Point, error) {
		n := sensorCounts[i]
		results, err := h.RunMD(n)
		if err != nil {
			return nil, err
		}
		pts := make([]Fig7Point, 0, len(tDeltas))
		for _, td := range tDeltas {
			_, det := h.Match(results, td)
			pts = append(pts, Fig7Point{TDelta: td, Sensors: n, FMeasure: det.FMeasure(), Detection: det})
		}
		return pts, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Fig7Point
	for _, pts := range perCount {
		out = append(out, pts...)
	}
	return out, nil
}

// Table3Row is one sensor count's MD performance at the operating t∆.
type Table3Row struct {
	Sensors   int
	Detection stats.Detection
}

// Fractions returns TP, FP and FN as fractions of all outcomes, the
// percentage format of the paper's Table III.
func (r Table3Row) Fractions() (tp, fp, fn float64) {
	total := r.Detection.TP + r.Detection.FP + r.Detection.FN
	if total == 0 {
		return 0, 0, 0
	}
	n := float64(total)
	return float64(r.Detection.TP) / n, float64(r.Detection.FP) / n, float64(r.Detection.FN) / n
}

// Table3 computes MD performance for each sensor count at t∆ (0 selects
// the configured default, 4.5 s).
func (h *Harness) Table3(tDelta float64) ([]Table3Row, error) {
	if tDelta == 0 {
		tDelta = h.opt.Feat.TDeltaSec
		if tDelta == 0 {
			tDelta = 4.5
		}
	}
	return engine.Gather(h.pool, len(h.opt.SensorCounts), func(i int) (Table3Row, error) {
		n := h.opt.SensorCounts[i]
		results, err := h.RunMD(n)
		if err != nil {
			return Table3Row{}, err
		}
		_, det := h.Match(results, tDelta)
		return Table3Row{Sensors: n, Detection: det}, nil
	})
}
