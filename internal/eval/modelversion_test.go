package eval

import (
	"testing"

	"fadewich/internal/sim"
)

// TestTable3ModelVersionInvariant regenerates the evaluation dataset
// under rf.Config.ModelVersion 2 (the columnar fast path) and checks
// that the paper's Table 3 MD performance rows come out identical to
// the exact ModelVersion 1 pipeline. The two versions diverge by at
// most ~1e-13 dB before quantisation, so after the default 1 dB
// receiver quantisation the datasets — and every downstream detection
// count — must match exactly for a fixed seed.
func TestTable3ModelVersionInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow")
	}
	rows := make([][]Table3Row, 2)
	for i, version := range []int{1, 2} {
		cfg := sim.Config{Days: 2, Seed: 77}
		cfg.Agent.DaySeconds = 5400
		cfg.Agent.MorningJitterSec = 180
		cfg.Agent.DeparturesPerDay = 4
		cfg.Agent.OutsideMeanSec = 180
		cfg.RF.ModelVersion = version
		ds, err := sim.Generate(cfg)
		if err != nil {
			t.Fatalf("generate (ModelVersion %d): %v", version, err)
		}
		h, err := NewHarness(ds, Options{Seed: 5})
		if err != nil {
			t.Fatalf("harness (ModelVersion %d): %v", version, err)
		}
		rows[i], err = h.Table3(0)
		if err != nil {
			t.Fatalf("Table3 (ModelVersion %d): %v", version, err)
		}
	}
	if len(rows[0]) == 0 || len(rows[0]) != len(rows[1]) {
		t.Fatalf("row count mismatch: v1 %d, v2 %d", len(rows[0]), len(rows[1]))
	}
	for i := range rows[0] {
		if rows[0][i] != rows[1][i] {
			t.Fatalf("Table 3 row %d differs between model versions:\n  v1: %+v\n  v2: %+v", i, rows[0][i], rows[1][i])
		}
	}
}
