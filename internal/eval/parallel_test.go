package eval

import (
	"reflect"
	"testing"
)

// harnessWith builds a harness over the shared fixture dataset with the
// given worker count.
func harnessWith(t *testing.T, workers int) *Harness {
	t.Helper()
	h, err := NewHarness(testDataset(t), Options{Seed: 5, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestHarnessParallelDeterminism asserts that every parallelised
// experiment produces results identical to the sequential path for the
// same harness seed.
func TestHarnessParallelDeterminism(t *testing.T) {
	seq := harnessWith(t, 1)
	par := harnessWith(t, 8)

	t.Run("table3", func(t *testing.T) {
		a, err := seq.Table3(0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Table3(0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Table3 differs:\nseq: %+v\npar: %+v", a, b)
		}
	})

	t.Run("fig7", func(t *testing.T) {
		a, err := seq.Fig7([]float64{3, 4.5, 6}, []int{3, 9})
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Fig7([]float64{3, 4.5, 6}, []int{3, 9})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Fig7 differs:\nseq: %+v\npar: %+v", a, b)
		}
	})

	t.Run("fig8", func(t *testing.T) {
		cfg := Fig8Config{SensorCounts: []int{9}, Repeats: 2}
		a, err := seq.Fig8(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Fig8(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Fig8 differs:\nseq: %+v\npar: %+v", a, b)
		}
	})

	t.Run("fig9", func(t *testing.T) {
		a, err := seq.Fig9([]int{3, 9}, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Fig9([]int{3, 9}, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Fig9 differs:\nseq: %+v\npar: %+v", a, b)
		}
	})

	t.Run("fig10", func(t *testing.T) {
		a, err := seq.Fig10(AdversaryDelays{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Fig10(AdversaryDelays{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Fig10 differs:\nseq: %+v\npar: %+v", a, b)
		}
	})

	t.Run("table4", func(t *testing.T) {
		a, err := seq.Table4(6)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Table4(6)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Table4 differs:\nseq: %+v\npar: %+v", a, b)
		}
	})
}

// TestRunMDConcurrentCallers hammers the MD cache from parallel sweeps
// (Table3 twice on the same harness) to exercise the cache lock; run with
// -race this is the fleet-level data-race check for the harness.
func TestRunMDConcurrentCallers(t *testing.T) {
	h := harnessWith(t, 8)
	first, err := h.Table3(0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := h.Table3(0) // all cache hits
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached Table3 differs from computed Table3")
	}
}
