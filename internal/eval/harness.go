// Package eval is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section VII and Appendix) from a
// simulated dataset. One Harness wraps a dataset plus the canonical input
// draw, caches the expensive per-sensor-count MD runs, and exposes one
// method per experiment. All methods are deterministic in the harness
// seed.
package eval

import (
	"fmt"
	"sort"
	"sync"

	"fadewich/internal/agent"
	"fadewich/internal/control"
	"fadewich/internal/engine"
	"fadewich/internal/kma"
	"fadewich/internal/md"
	"fadewich/internal/re"
	"fadewich/internal/rng"
	"fadewich/internal/sim"
	"fadewich/internal/stats"
	"fadewich/internal/svm"
)

// Options configures the harness. Zero fields take defaults.
type Options struct {
	// Seed drives input draws, cross-validation splits and SVM training.
	Seed uint64
	// DeltaSec is δ, the half-width of a ground-truth event's true window
	// U = [t−δ, t+δ] for MD matching (Section V-A).
	DeltaSec float64
	// MD configures the movement detector.
	MD md.Config
	// Feat configures RE feature extraction. Feat.TDeltaSec is the
	// default t∆ for experiments that fix it.
	Feat re.FeatureConfig
	// SVM configures the classifier.
	SVM svm.Config
	// Params are the controller timing constants.
	Params control.Params
	// Input is the keyboard/mouse simulation model.
	Input kma.InputModel
	// SensorCounts lists the deployment sizes swept by the experiments.
	SensorCounts []int
	// Workers caps the worker pool behind the harness's parallel
	// fan-outs (per-day MD runs, per-sensor-count sweeps, usability
	// input draws): 0 uses one worker per CPU, 1 forces sequential
	// execution. Every result is deterministic in the harness seed
	// regardless of this value.
	Workers int
}

// DefaultOptions returns the paper's evaluation configuration.
func DefaultOptions() Options {
	return Options{
		Seed:         1,
		DeltaSec:     3.0,
		MD:           md.DefaultConfig(),
		Feat:         re.DefaultFeatureConfig(),
		SVM:          svm.Config{C: 2, Kernel: svm.RBF{}, MaxPasses: 3, MaxIter: 120},
		Params:       control.DefaultParams(),
		Input:        kma.DefaultInputModel(),
		SensorCounts: []int{3, 4, 5, 6, 7, 8, 9},
	}
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.DeltaSec == 0 {
		o.DeltaSec = d.DeltaSec
	}
	if o.SVM.Kernel == nil {
		o.SVM = d.SVM
	}
	o.Params = o.Params.WithDefaults()
	if o.Feat.TDeltaSec == 0 {
		o.Feat = d.Feat
	}
	if len(o.SensorCounts) == 0 {
		o.SensorCounts = d.SensorCounts
	}
	return o
}

// TrueEvent is a ground-truth labelled event in harness form.
type TrueEvent struct {
	Day   int
	Time  float64 // departure decision / door-crossing time
	Label int     // 0 = entry (w0), i ≥ 1 = departure from workstation i−1
	// ExitTime is when the user crossed the door outward (departures
	// only); the adversary's clock starts here.
	ExitTime float64
}

// Harness wraps a dataset and caches derived artefacts. Its methods are
// driven from one goroutine; internally the expensive sweeps fan out over
// the harness worker pool, so the caches below are guarded by mu.
type Harness struct {
	ds   *sim.Dataset
	opt  Options
	root *rng.Source
	pool *engine.Pool

	// events[day] lists the labelled events of that day, time-sorted.
	events [][]TrueEvent
	// inputs is the canonical input draw: [day][workstation][times].
	inputs [][][]float64

	// mu guards the lazily grown caches below against concurrent sweep
	// workers.
	mu sync.Mutex
	// subsets[n] is the deterministic sensor subset of size n.
	subsets map[int][]int
	// streamSubsets[n] lists stream indices for subset n.
	streamSubsets map[int][]int
	// mdRuns[n][day] caches detector output.
	mdRuns map[int][]*md.Result
}

// NewHarness builds a harness over the dataset. It returns an error when
// a requested sensor subset cannot be formed.
func NewHarness(ds *sim.Dataset, opt Options) (*Harness, error) {
	opt = opt.withDefaults()
	h := &Harness{
		ds:            ds,
		opt:           opt,
		root:          rng.New(opt.Seed),
		pool:          engine.NewPool(opt.Workers),
		subsets:       make(map[int][]int),
		streamSubsets: make(map[int][]int),
		mdRuns:        make(map[int][]*md.Result),
	}
	for _, n := range opt.SensorCounts {
		sub, err := ds.Layout.SensorSubset(n)
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		h.subsets[n] = sub
		h.streamSubsets[n] = ds.StreamSubset(sub)
	}
	h.extractEvents()
	h.drawInputs(h.root.Split())
	return h, nil
}

// Options returns the effective options.
func (h *Harness) Options() Options { return h.opt }

// Dataset returns the wrapped dataset.
func (h *Harness) Dataset() *sim.Dataset { return h.ds }

// extractEvents converts the simulator event log into labelled true
// events, pairing each departure with its office-exit time.
func (h *Harness) extractEvents() {
	h.events = make([][]TrueEvent, len(h.ds.Days))
	for day, trace := range h.ds.Days {
		var evs []TrueEvent
		// Pending departure per user awaiting its exit-room timestamp.
		pending := make(map[int]int) // user -> index into evs
		for _, e := range trace.Events {
			switch e.Type {
			case agent.EventDeparture:
				evs = append(evs, TrueEvent{
					Day: day, Time: e.Time, Label: e.Workstation + 1,
					ExitTime: e.Time + 6, // provisional; fixed below
				})
				pending[e.User] = len(evs) - 1
			case agent.EventExitRoom:
				if idx, ok := pending[e.User]; ok {
					evs[idx].ExitTime = e.Time
					delete(pending, e.User)
				}
			case agent.EventEntry:
				evs = append(evs, TrueEvent{Day: day, Time: e.Time, Label: re.LabelEntry})
			}
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
		h.events[day] = evs
	}
}

// drawInputs generates the canonical input draw used by every experiment
// except the usability redraws.
func (h *Harness) drawInputs(src *rng.Source) {
	h.inputs = make([][][]float64, len(h.ds.Days))
	for day, trace := range h.ds.Days {
		h.inputs[day] = kma.GenerateInputs(trace.InputSpans, trace.Events, h.opt.Input, src.Split())
	}
}

// RedrawInputs returns an independent input draw (for the usability
// simulation's 100 repetitions), deterministic in the extra seed.
func (h *Harness) RedrawInputs(seed uint64) [][][]float64 {
	src := rng.New(h.opt.Seed ^ seed*0x9e3779b97f4a7c15)
	out := make([][][]float64, len(h.ds.Days))
	for day, trace := range h.ds.Days {
		out[day] = kma.GenerateInputs(trace.InputSpans, trace.Events, h.opt.Input, src.Split())
	}
	return out
}

// Events returns the labelled events of a day.
func (h *Harness) Events(day int) []TrueEvent { return h.events[day] }

// AllEvents returns every labelled event across days.
func (h *Harness) AllEvents() []TrueEvent {
	var out []TrueEvent
	for _, evs := range h.events {
		out = append(out, evs...)
	}
	return out
}

// Inputs returns the canonical input draw.
func (h *Harness) Inputs() [][][]float64 { return h.inputs }

// SensorSubset returns the cached subset for n sensors.
func (h *Harness) SensorSubset(n int) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.subsets[n]
}

// streamSubset returns the cached stream subset for n sensors (nil when
// RunMD has not resolved it yet).
func (h *Harness) streamSubset(n int) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.streamSubsets[n]
}

// RunMD returns the (cached) detector output for each day under the
// n-sensor deployment, running uncached days in parallel over the
// harness pool. Safe to call from concurrent sweep workers; md.Run is a
// pure function of the trace, so a rare duplicated computation yields the
// identical result.
func (h *Harness) RunMD(n int) ([]*md.Result, error) {
	h.mu.Lock()
	if rs, ok := h.mdRuns[n]; ok {
		h.mu.Unlock()
		return rs, nil
	}
	subset, ok := h.streamSubsets[n]
	if !ok {
		sub, err := h.ds.Layout.SensorSubset(n)
		if err != nil {
			h.mu.Unlock()
			return nil, fmt.Errorf("eval: %w", err)
		}
		h.subsets[n] = sub
		subset = h.ds.StreamSubset(sub)
		h.streamSubsets[n] = subset
	}
	h.mu.Unlock()

	rs := make([]*md.Result, len(h.ds.Days))
	err := h.pool.Map(len(h.ds.Days), func(day int) error {
		trace := h.ds.Days[day]
		r, err := md.Run(trace.Streams, subset, trace.DT, h.opt.MD)
		if err != nil {
			return fmt.Errorf("eval: MD day %d: %w", day, err)
		}
		rs[day] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.mdRuns[n] = rs
	h.mu.Unlock()
	return rs, nil
}

// DayMatch is the MD-vs-ground-truth matching for one day at a given t∆.
type DayMatch struct {
	Day int
	// Windows are the variation windows of duration ≥ t∆.
	Windows []md.Window
	// EventIdx[i] is the index (into the harness events of this day) of
	// the event matched to window i, or −1 for a false positive.
	EventIdx []int
	// WindowOf[e] is the window index matched to event e, or −1 for a
	// false negative.
	WindowOf []int
}

// Match filters each day's windows at minimum duration tDelta and matches
// them against the true windows U = [t−δ, t+δ]. The returned Detection
// counts events matched (TP), windows unmatched by any true window (FP)
// and events missed (FN), following Section V-A. Extra windows overlapping
// an already-matched event are benign duplicates and count as neither.
func (h *Harness) Match(results []*md.Result, tDelta float64) ([]*DayMatch, stats.Detection) {
	var det stats.Detection
	matches := make([]*DayMatch, len(results))
	for day, r := range results {
		evs := h.events[day]
		wins := md.FilterWindows(r.Windows, r.DT, tDelta)
		m := &DayMatch{
			Day:      day,
			Windows:  wins,
			EventIdx: make([]int, len(wins)),
			WindowOf: make([]int, len(evs)),
		}
		for i := range m.WindowOf {
			m.WindowOf[i] = -1
		}
		for wi, w := range wins {
			m.EventIdx[wi] = -1
			t1 := float64(w.StartTick) * r.DT
			t2 := float64(w.EndTick) * r.DT
			bestEvent, bestDist := -1, 0.0
			overlapsAny := false
			for ei, ev := range evs {
				lo, hi := ev.Time-h.opt.DeltaSec, ev.Time+h.opt.DeltaSec
				if t1 <= hi && lo <= t2 {
					overlapsAny = true
					if m.WindowOf[ei] != -1 {
						continue // event already matched: duplicate window
					}
					d := abs(ev.Time - t1)
					if bestEvent == -1 || d < bestDist {
						bestEvent, bestDist = ei, d
					}
				}
			}
			switch {
			case bestEvent >= 0:
				m.EventIdx[wi] = bestEvent
				m.WindowOf[bestEvent] = wi
				det.TP++
			case !overlapsAny:
				det.FP++
			}
		}
		for _, wi := range m.WindowOf {
			if wi == -1 {
				det.FN++
			}
		}
		matches[day] = m
	}
	return matches, det
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Samples extracts ground-truth-labelled RE samples from the TP windows of
// the given matching under the n-sensor deployment, using feature window
// t∆ = tDelta.
func (h *Harness) Samples(n int, matches []*DayMatch, tDelta float64) []re.Sample {
	samples, _ := h.SamplesWithEvents(n, matches, tDelta)
	return samples
}

// SamplesWithEvents is Samples plus a parallel slice giving, for each
// sample, the ground-truth event its window matched — needed by the
// security analysis to anchor deauthentication timings.
func (h *Harness) SamplesWithEvents(n int, matches []*DayMatch, tDelta float64) ([]re.Sample, []TrueEvent) {
	subset := h.streamSubset(n)
	feat := h.opt.Feat
	feat.TDeltaSec = tDelta
	var out []re.Sample
	var evsOut []TrueEvent
	for _, m := range matches {
		trace := h.ds.Days[m.Day]
		evs := h.events[m.Day]
		for wi, w := range m.Windows {
			ei := m.EventIdx[wi]
			if ei < 0 {
				continue
			}
			out = append(out, re.Sample{
				Features:  re.Extract(trace.Streams, subset, w.StartTick, trace.DT, feat),
				Label:     evs[ei].Label,
				Day:       m.Day,
				StartTick: w.StartTick,
			})
			evsOut = append(evsOut, evs[ei])
		}
	}
	return out, evsOut
}
