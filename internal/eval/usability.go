package eval

// This file regenerates Table IV: the usability cost of FADEWICH —
// erroneous screensavers (cost 3 s) and erroneous deauthentications (cost
// 13 s) suffered by users who are still at their workstations, per day,
// averaged over many independent draws of the simulated keyboard/mouse
// input (the paper uses 100 draws of the Mikkelsen et al. model).
//
// Rather than replaying the tick-driven controller 100 times, the
// computation here is event-driven: for every variation window and
// workstation it derives the alert-state outcome analytically from the
// input times around the window. A present user who sees the screensaver
// activate reacts (jiggles the mouse) after a short reaction time, which
// cancels the alert before the t_ss grace expires — so present users pay
// the 3-second screensaver cost, while deauthentication errors against
// present users come (as in the paper) from Rule 1 misfires, which shrink
// as RE precision grows with more sensors. The tick-driven controller in
// internal/control remains the reference implementation; a test checks the
// two agree on the case-B timing.

import (
	"math"

	"fadewich/internal/agent"
	"fadewich/internal/kma"
	"fadewich/internal/re"
	"fadewich/internal/sim"
	"fadewich/internal/stats"
)

// ReactionSec is how quickly a present user dismisses an unexpected
// screensaver.
const ReactionSec = 1.5

// Table4Row is one sensor count's usability figures.
type Table4Row struct {
	Sensors int
	// ScreensaversPerDay and DeauthsPerDay are mean counts of *erroneous*
	// actions (user present) per day; the Std fields give the standard
	// deviation over the input draws.
	ScreensaversPerDay, ScreensaversStd float64
	DeauthsPerDay, DeauthsStd           float64
	// CostPerDay is 3·screensavers + 13·deauths, in seconds.
	CostPerDay float64
}

// Table4 runs the usability simulation with the given number of input
// draws (the paper uses 100).
func (h *Harness) Table4(draws int) ([]Table4Row, error) {
	if draws == 0 {
		draws = 100
	}
	rows := make([]Table4Row, 0, len(h.opt.SensorCounts))
	for _, n := range h.opt.SensorCounts {
		row, err := h.usabilityFor(n, draws)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// predictedWindow is a variation window with its classifier output.
type predictedWindow struct {
	day   int
	t1    float64 // window start
	t2    float64 // window end
	label int     // RE prediction
}

// windowPredictions assembles every qualifying window (duration ≥ t∆) with
// a prediction: TP windows receive their cross-validated prediction, other
// windows (false positives) the output of a model trained on all samples.
func (h *Harness) windowPredictions(n int, tDelta float64) ([]predictedWindow, error) {
	results, err := h.RunMD(n)
	if err != nil {
		return nil, err
	}
	matches, _ := h.Match(results, tDelta)
	samples := h.Samples(n, matches, tDelta)
	preds := h.cvPredict(samples, 9377)

	type key struct{ day, tick int }
	cvPred := make(map[key]int, len(samples))
	for i, s := range samples {
		cvPred[key{s.Day, s.StartTick}] = preds[i]
	}

	// Full model for windows without a CV prediction (false positives).
	var full *re.Classifier
	if len(samples) > 1 && hasTwoClasses(samples) {
		if clf, err := re.Train(samples, h.svmConfig(5501)); err == nil {
			full = clf
		}
	}

	subset := h.streamSubset(n)
	feat := h.opt.Feat
	feat.TDeltaSec = tDelta

	var out []predictedWindow
	for day, m := range matches {
		trace := h.ds.Days[day]
		for wi, w := range m.Windows {
			pw := predictedWindow{
				day: day,
				t1:  float64(w.StartTick) * trace.DT,
				t2:  float64(w.EndTick) * trace.DT,
			}
			if p, ok := cvPred[key{day, w.StartTick}]; ok {
				pw.label = p
			} else if m.EventIdx[wi] >= 0 {
				pw.label = h.events[day][m.EventIdx[wi]].Label
			} else if full != nil {
				pw.label = full.Predict(re.Extract(trace.Streams, subset, w.StartTick, trace.DT, feat))
			} else {
				pw.label = re.LabelEntry
			}
			out = append(out, pw)
		}
	}
	return out, nil
}

// usabilityFor computes one Table IV row.
func (h *Harness) usabilityFor(n, draws int) (Table4Row, error) {
	tDelta := h.opt.Feat.TDeltaSec
	windows, err := h.windowPredictions(n, tDelta)
	if err != nil {
		return Table4Row{}, err
	}
	// Group windows per day for the replay.
	perDay := make([][]predictedWindow, len(h.ds.Days))
	for _, w := range windows {
		perDay[w.day] = append(perDay[w.day], w)
	}

	// Every draw is an independent replay (RedrawInputs seeds a fresh
	// generator per draw), so the draws fan out over the harness pool
	// with results slotted by draw index.
	days := float64(len(h.ds.Days))
	ssPerDay := make([]float64, draws)
	deauthPerDay := make([]float64, draws)
	if err := h.pool.Map(draws, func(draw int) error {
		inputs := h.RedrawInputs(uint64(draw) + 17)
		var ss, deauth int
		for day, trace := range h.ds.Days {
			tracker := kma.NewTracker(inputs[day])
			s, d := h.replayDay(trace, perDay[day], tracker)
			ss += s
			deauth += d
		}
		ssPerDay[draw] = float64(ss) / days
		deauthPerDay[draw] = float64(deauth) / days
		return nil
	}); err != nil {
		return Table4Row{}, err
	}

	row := Table4Row{Sensors: n}
	row.ScreensaversPerDay = stats.Mean(ssPerDay)
	row.ScreensaversStd = stats.StdDevSample(ssPerDay)
	row.DeauthsPerDay = stats.Mean(deauthPerDay)
	row.DeauthsStd = stats.StdDevSample(deauthPerDay)
	row.CostPerDay = 3*row.ScreensaversPerDay + 13*row.DeauthsPerDay
	return row, nil
}

// replayDay walks one day's windows chronologically and counts erroneous
// screensavers and deauthentications (those inflicted on present users).
func (h *Harness) replayDay(trace *sim.Trace, windows []predictedWindow, tracker *kma.Tracker) (ssCount, deauthCount int) {
	p := h.opt.Params
	numWS := len(trace.Seated)

	for _, w := range windows {
		tq := w.t1 + p.TDeltaSec
		if tq > w.t2 {
			// Window ended before t∆ (cannot happen: windows are
			// pre-filtered at t∆); guard anyway.
			tq = w.t2
		}

		// Rule 1 at tq.
		if w.label >= 1 && w.label <= numWS {
			ci := w.label - 1
			if idleAtLeast(tracker, ci, tq, p.TDeltaSec) {
				if seatedAt(trace.Seated[ci], tq) {
					deauthCount++
				}
			}
		}

		// Rule 2 alert chains for every workstation.
		for ws := 0; ws < numWS; ws++ {
			ssAt, ok := alertScreensaverTime(tracker, ws, tq, w.t2, p.TIDSec)
			if !ok {
				continue
			}
			if seatedAt(trace.Seated[ws], ssAt) {
				// Present user: pays the cancellation cost, reacts, and
				// the alert chain dies before the t_ss grace expires
				// (ReactionSec < TSSSec).
				ssCount++
				continue
			}
			// Absent user: the screensaver stays on; the session
			// deauthenticates t_ss later (case B for the departed user).
			// Not a usability error — nobody is present.
		}
	}
	return ssCount, deauthCount
}

// idleAtLeast reports whether workstation ws has observed no input in
// (t−d, t].
func idleAtLeast(tracker *kma.Tracker, ws int, t, d float64) bool {
	last, ok := tracker.LastInputAt(ws, t)
	return !ok || t-last >= d
}

// alertScreensaverTime computes when (if ever) the alert chain started by
// Rule 2 in [tq, t2] activates the screensaver for workstation ws:
// the screensaver fires at vX + tID, where vX is the start of an idle run
// that puts the workstation in the idle set during the Rule-2 period, as
// long as the run survives until then and, if the screensaver has not yet
// fired, the alert is not dismissed at the window end.
func alertScreensaverTime(tracker *kma.Tracker, ws int, tq, t2, tID float64) (float64, bool) {
	// Candidate run starts: the last input before tq, then every input
	// inside (tq, t2].
	cand, ok := tracker.LastInputAt(ws, tq)
	if !ok {
		cand = 0 // never touched: idle since day start
	}
	for {
		// The workstation enters alert at max(cand+1, tq) provided no
		// input arrives first.
		nxt, hasNext := tracker.NextInputAfter(ws, cand)
		alertAt := math.Max(cand+1, tq)
		if !hasNext || nxt > alertAt {
			// Alert engaged; screensaver at cand + tID if the run
			// persists and the alert is still alive (window not yet over,
			// unless the screensaver already fired — which is what we are
			// computing).
			ssAt := math.Max(cand+tID, alertAt)
			if (!hasNext || nxt > ssAt) && ssAt <= t2 {
				return ssAt, true
			}
			if !hasNext {
				return 0, false
			}
		}
		if !hasNext || nxt > t2 {
			return 0, false
		}
		cand = nxt
	}
}

// seatedAt reports whether the user owning the workstation is seated at
// time t.
func seatedAt(ivs []agent.Interval, t float64) bool {
	for _, iv := range ivs {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}
