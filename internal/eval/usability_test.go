package eval

import (
	"testing"

	"fadewich/internal/control"
	"fadewich/internal/kma"
	"fadewich/internal/md"
)

// TestAnalyticAlertAgreesWithTickController is the promised consistency
// check between the event-driven alert model used by Table IV and the
// tick-driven reference controller: for a scripted scenario, the analytic
// screensaver time must match the controller's screensaver log.
func TestAnalyticAlertAgreesWithTickController(t *testing.T) {
	const dt = 0.2
	p := control.DefaultParams()
	cases := []struct {
		name   string
		inputs []float64 // one bystander workstation's inputs
		t1, t2 float64   // variation window
		wantSS bool
	}{
		{
			// Idle since 99: alert at t1+t∆ ≈ 105.5, idle already > tID →
			// screensaver fires inside the window.
			name:   "long-idle bystander",
			inputs: []float64{10, 99},
			t1:     101, t2: 108,
			wantSS: true,
		},
		{
			// Typing right through the window: never idle ≥ 1 s at a
			// query, no screensaver.
			name:   "active bystander",
			inputs: rangeInputs(10, 120, 0.8),
			t1:     101, t2: 108,
			wantSS: false,
		},
		{
			// Goes idle at 104, window ends at 107: idle reaches tID=5
			// only at 109 > t2 → alert dismissed at window end, no
			// screensaver.
			name:   "idle too late",
			inputs: append(rangeInputs(10, 104, 0.8), 104),
			t1:     101, t2: 107,
			wantSS: false,
		},
		{
			// Goes idle at 103 with a long window: ss at 108 ≤ t2.
			name:   "idle reaches tID inside long window",
			inputs: append(rangeInputs(10, 103, 0.8), 103),
			t1:     101, t2: 110,
			wantSS: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Analytic model.
			tracker := kma.NewTracker([][]float64{c.inputs})
			tq := c.t1 + p.TDeltaSec
			ssAt, gotSS := alertScreensaverTime(tracker, 0, tq, c.t2, p.TIDSec)

			// Tick-driven reference.
			tracker2 := kma.NewTracker([][]float64{c.inputs})
			win := md.Window{StartTick: int(c.t1 / dt), EndTick: int(c.t2 / dt)}
			log := control.Run(p, dt, 300, 1, []md.Window{win},
				func(md.Window) int { return 0 }, tracker2)
			refSS := len(log.Screensavers) > 0

			if gotSS != c.wantSS {
				t.Fatalf("analytic ss=%v (at %v), want %v", gotSS, ssAt, c.wantSS)
			}
			if refSS != c.wantSS {
				t.Fatalf("tick controller ss=%v, want %v", refSS, c.wantSS)
			}
			if gotSS && refSS {
				// Times agree within a tick plus scheduling slack.
				if diff := ssAt - log.Screensavers[0].Time; diff > 2*dt || diff < -2*dt {
					t.Fatalf("analytic ss at %v, controller at %v", ssAt, log.Screensavers[0].Time)
				}
			}
		})
	}
}

func rangeInputs(from, to, step float64) []float64 {
	var out []float64
	for x := from; x < to; x += step {
		out = append(out, x)
	}
	return out
}

func TestIdleAtLeast(t *testing.T) {
	tr := kma.NewTracker([][]float64{{50}})
	if !idleAtLeast(tr, 0, 60, 4.5) {
		t.Fatal("10s idle should satisfy 4.5s")
	}
	if idleAtLeast(tr, 0, 52, 4.5) {
		t.Fatal("2s idle should not satisfy 4.5s")
	}
	// Untouched workstation is idle since day start.
	tr2 := kma.NewTracker([][]float64{{}})
	if !idleAtLeast(tr2, 0, 10, 4.5) {
		t.Fatal("untouched workstation should count as idle")
	}
}

func TestWindowPredictionsCoverAllQualifyingWindows(t *testing.T) {
	h := testHarness(t)
	tDelta := h.Options().Feat.TDeltaSec
	preds, err := h.windowPredictions(9, tDelta)
	if err != nil {
		t.Fatal(err)
	}
	results, _ := h.RunMD(9)
	want := 0
	for _, r := range results {
		want += len(md.FilterWindows(r.Windows, r.DT, tDelta))
	}
	if len(preds) != want {
		t.Fatalf("predictions %d, qualifying windows %d", len(preds), want)
	}
	for _, p := range preds {
		if p.label < 0 || p.label > 3 {
			t.Fatalf("prediction label %d out of range", p.label)
		}
		if p.t2-p.t1 < tDelta-0.3 {
			t.Fatalf("window [%v,%v] below t∆", p.t1, p.t2)
		}
	}
}

func TestTable4DeterministicInSeed(t *testing.T) {
	h := testHarness(t)
	a, err := h.Table4(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Table4(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Table4 not deterministic: %+v vs %+v", a[i], b[i])
		}
	}
}
