package eval

// This file regenerates the paper's Appendix A feature analysis: Fig 11
// (the correlation matrix between per-stream variances over the labelled
// samples), Fig 12 (the per-stream relative-mutual-information importance
// drawn over the office floor plan) and Table V (the top features by RMI).

import (
	"fmt"
	"sort"

	"fadewich/internal/geom"
	"fadewich/internal/re"
	"fadewich/internal/rf"
	"fadewich/internal/stats"
)

// segment returns the floor-plan segment of a link.
func segment(sensors []geom.Point, l rf.Link) geom.Segment {
	return geom.Segment{A: sensors[l.TX], B: sensors[l.RX]}
}

// point is shorthand for a geom.Point literal.
func point(x, y float64) geom.Point { return geom.Point{X: x, Y: y} }

// Fig11Data is the variance-correlation analysis.
type Fig11Data struct {
	// StreamNames labels rows/columns in the paper's "di-dj" notation.
	StreamNames []string
	// Corr is the Pearson correlation matrix between stream variances.
	Corr [][]float64
	// SharedEndpointMean and DisjointMean summarise the paper's visual
	// observation that streams between nearby devices react similarly:
	// mean |correlation| for stream pairs sharing a sensor vs none.
	SharedEndpointMean, DisjointMean float64
}

// featureMatrix computes the labelled sample set at the full deployment
// and returns the per-sample feature matrix plus labels.
func (h *Harness) featureMatrix() ([]re.Sample, []rf.Link, error) {
	n := h.maxSensors()
	results, err := h.RunMD(n)
	if err != nil {
		return nil, nil, err
	}
	matches, _ := h.Match(results, h.opt.Feat.TDeltaSec)
	samples := h.Samples(n, matches, h.opt.Feat.TDeltaSec)
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("eval: no labelled samples for feature analysis")
	}
	subset := h.streamSubset(n)
	links := make([]rf.Link, 0, len(subset))
	for _, k := range subset {
		links = append(links, h.ds.Links[k])
	}
	return samples, links, nil
}

// Fig11 computes the correlation matrix between the variance features of
// all streams across the labelled samples.
func (h *Harness) Fig11() (*Fig11Data, error) {
	samples, links, err := h.featureMatrix()
	if err != nil {
		return nil, err
	}
	numStreams := len(links)
	cols := make([][]float64, numStreams)
	for k := 0; k < numStreams; k++ {
		col := make([]float64, len(samples))
		for i, s := range samples {
			col[i] = s.Features[k*re.FeaturesPerStream] // variance feature
		}
		cols[k] = col
	}
	data := &Fig11Data{Corr: stats.CorrelationMatrix(cols)}
	for _, l := range links {
		data.StreamNames = append(data.StreamNames, l.String())
	}
	var sharedSum, disjointSum float64
	var sharedN, disjointN int
	for i := 0; i < numStreams; i++ {
		for j := i + 1; j < numStreams; j++ {
			c := data.Corr[i][j]
			if c < 0 {
				c = -c
			}
			if sharesEndpoint(links[i], links[j]) {
				sharedSum += c
				sharedN++
			} else {
				disjointSum += c
				disjointN++
			}
		}
	}
	if sharedN > 0 {
		data.SharedEndpointMean = sharedSum / float64(sharedN)
	}
	if disjointN > 0 {
		data.DisjointMean = disjointSum / float64(disjointN)
	}
	return data, nil
}

func sharesEndpoint(a, b rf.Link) bool {
	return a.TX == b.TX || a.TX == b.RX || a.RX == b.TX || a.RX == b.RX
}

// FeatureRMI is one feature's relative mutual information with the class.
type FeatureRMI struct {
	// Name is in the paper's "di-dj-kind" format, e.g. "d9-d2-ent".
	Name string
	// Stream indexes the stream within the full deployment subset.
	Stream int
	// Kind is var/ent/ac.
	Kind string
	RMI  float64
}

// RMIBins is the quantisation used by the paper ("256 linearly distributed
// bins").
const RMIBins = 256

// FeatureRMIs computes the RMI of every feature with the class label over
// the labelled samples (Table V's source).
func (h *Harness) FeatureRMIs() ([]FeatureRMI, error) {
	samples, links, err := h.featureMatrix()
	if err != nil {
		return nil, err
	}
	labels := make([]int, len(samples))
	for i, s := range samples {
		labels[i] = s.Label
	}
	dims := len(samples[0].Features)
	out := make([]FeatureRMI, 0, dims)
	col := make([]float64, len(samples))
	for f := 0; f < dims; f++ {
		for i, s := range samples {
			col[i] = s.Features[f]
		}
		bins := stats.Quantize(col, RMIBins)
		rmi := stats.RelativeMutualInformation(bins, labels)
		stream := f / re.FeaturesPerStream
		kind := re.FeatureName(f % re.FeaturesPerStream)
		out = append(out, FeatureRMI{
			Name:   fmt.Sprintf("%s-%s", links[stream], kind),
			Stream: stream,
			Kind:   kind,
			RMI:    rmi,
		})
	}
	return out, nil
}

// Table5 returns the top-k features by RMI (the paper lists 15).
func (h *Harness) Table5(k int) ([]FeatureRMI, error) {
	if k == 0 {
		k = 15
	}
	rmis, err := h.FeatureRMIs()
	if err != nil {
		return nil, err
	}
	sort.Slice(rmis, func(i, j int) bool { return rmis[i].RMI > rmis[j].RMI })
	if k > len(rmis) {
		k = len(rmis)
	}
	return rmis[:k], nil
}

// Fig12Data is the stream-importance heat-map over the floor plan.
type Fig12Data struct {
	// StreamRMI is each stream's importance: the maximum RMI among its
	// features.
	StreamRMI []float64
	// Links mirrors StreamRMI's indexing.
	Links []rf.Link
	// Grid rasterises the office: Grid[row][col] accumulates the RMI of
	// every stream whose segment passes near the cell, normalised to
	// [0, 1]. Row 0 is the top wall (max Y).
	Grid [][]float64
	// CellM is the cell size in metres.
	CellM float64
}

// Fig12 computes the RMI heat-map with the given raster cell size (0
// selects 0.25 m).
func (h *Harness) Fig12(cellM float64) (*Fig12Data, error) {
	if cellM == 0 {
		cellM = 0.25
	}
	rmis, err := h.FeatureRMIs()
	if err != nil {
		return nil, err
	}
	samples, links, err := h.featureMatrix()
	if err != nil {
		return nil, err
	}
	_ = samples
	numStreams := len(links)
	streamRMI := make([]float64, numStreams)
	for _, f := range rmis {
		if f.RMI > streamRMI[f.Stream] {
			streamRMI[f.Stream] = f.RMI
		}
	}

	bounds := h.ds.Layout.Bounds
	cols := int(bounds.Width()/cellM) + 1
	rows := int(bounds.Height()/cellM) + 1
	grid := make([][]float64, rows)
	for r := range grid {
		grid[r] = make([]float64, cols)
	}
	sensors := h.ds.Layout.Sensors
	maxVal := 0.0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Cell centre in floor coordinates; row 0 at the top wall.
			x := bounds.Min.X + (float64(c)+0.5)*cellM
			y := bounds.Max.Y - (float64(r)+0.5)*cellM
			var acc float64
			for k, l := range links {
				seg := segment(sensors, l)
				d, _ := seg.DistToPoint(point(x, y))
				if d < 0.5 {
					acc += streamRMI[k] * (1 - d/0.5)
				}
			}
			grid[r][c] = acc
			if acc > maxVal {
				maxVal = acc
			}
		}
	}
	if maxVal > 0 {
		for r := range grid {
			for c := range grid[r] {
				grid[r][c] /= maxVal
			}
		}
	}
	return &Fig12Data{StreamRMI: streamRMI, Links: links, Grid: grid, CellM: cellM}, nil
}
