package agent

import (
	"sort"
	"testing"

	"fadewich/internal/office"
	"fadewich/internal/rng"
)

// shortConfig keeps test schedules cheap: a 40-minute day.
func shortConfig() Config {
	cfg := DefaultConfig()
	cfg.DaySeconds = 2400
	cfg.MorningJitterSec = 120
	cfg.DeparturesPerDay = 2
	cfg.OutsideMeanSec = 120
	return cfg
}

func newTestSchedule(t *testing.T, cfg Config, seed uint64) *Schedule {
	t.Helper()
	s, err := NewSchedule(office.Paper(), cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScheduleEventsSorted(t *testing.T) {
	s := newTestSchedule(t, shortConfig(), 1)
	evs := s.Events()
	if len(evs) == 0 {
		t.Fatal("no events generated")
	}
	if !sort.SliceIsSorted(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time }) {
		t.Fatal("events not time-sorted")
	}
}

func TestEveryUserArrives(t *testing.T) {
	s := newTestSchedule(t, shortConfig(), 2)
	arrived := map[int]bool{}
	for _, e := range s.Events() {
		if e.Type == EventEntry {
			arrived[e.User] = true
		}
	}
	for u := 0; u < s.NumUsers(); u++ {
		if !arrived[u] {
			t.Fatalf("user %d never arrived", u)
		}
	}
}

func TestDeparturesPairWithExits(t *testing.T) {
	s := newTestSchedule(t, shortConfig(), 3)
	var deps, exits []float64
	for _, e := range s.Events() {
		switch e.Type {
		case EventDeparture:
			deps = append(deps, e.Time)
		case EventExitRoom:
			exits = append(exits, e.Time)
		}
	}
	if len(deps) != len(exits) {
		t.Fatalf("%d departures but %d exits", len(deps), len(exits))
	}
	for i := range deps {
		gap := exits[i] - deps[i]
		if gap < 1 || gap > 15 {
			t.Fatalf("departure→exit gap %vs out of realistic range", gap)
		}
	}
}

func TestNoOverlappingMovements(t *testing.T) {
	// The paper's dataset contained no overlaps; the generator must
	// enforce that for walks (stretches are sub-threshold and exempt).
	for seed := uint64(0); seed < 5; seed++ {
		s := newTestSchedule(t, DefaultConfig(), seed)
		var walks []Interval
		for _, m := range s.movements {
			if m.kind == moveDeparture || m.kind == moveEntry {
				walks = append(walks, m.walk)
			}
		}
		sort.Slice(walks, func(i, j int) bool { return walks[i].Start < walks[j].Start })
		for i := 1; i < len(walks); i++ {
			if walks[i].Start < walks[i-1].End {
				t.Fatalf("seed %d: movements overlap: %+v and %+v", seed, walks[i-1], walks[i])
			}
		}
	}
}

func TestSeatedIntervalsDisjointAndOrdered(t *testing.T) {
	s := newTestSchedule(t, shortConfig(), 4)
	for u, ivs := range s.SeatedIntervals() {
		for i, iv := range ivs {
			if iv.End < iv.Start {
				t.Fatalf("user %d interval %d inverted", u, i)
			}
			if i > 0 && iv.Start < ivs[i-1].End {
				t.Fatalf("user %d seated intervals overlap", u)
			}
		}
	}
}

func TestInputSpansEndAtDepartures(t *testing.T) {
	s := newTestSchedule(t, shortConfig(), 5)
	deps := map[int][]float64{}
	for _, e := range s.Events() {
		if e.Type == EventDeparture {
			deps[e.User] = append(deps[e.User], e.Time)
		}
	}
	for u, spans := range s.InputSpans() {
		for _, span := range spans {
			// Every span end either matches a departure time or the day
			// end (user stayed).
			matched := span.End == s.DaySeconds()
			for _, d := range deps[u] {
				if span.End == d {
					matched = true
					break
				}
			}
			if !matched {
				t.Fatalf("user %d input span ends at %v, matching no departure", u, span.End)
			}
		}
	}
}

func TestSamplerBodiesStayInRoom(t *testing.T) {
	lay := office.Paper()
	s := newTestSchedule(t, shortConfig(), 6)
	sp := NewSampler(s, rng.New(99))
	states := make([]BodyState, s.NumUsers())
	for tick := 0; tick < int(s.DaySeconds()/0.2); tick++ {
		sp.At(float64(tick)*0.2, states)
		for u, st := range states {
			if st.Present && !lay.Bounds.Contains(lay.Bounds.Clamp(st.Pos)) {
				t.Fatalf("user %d outside room at tick %d: %v", u, tick, st.Pos)
			}
		}
	}
}

func TestSamplerPresenceMatchesSchedule(t *testing.T) {
	s := newTestSchedule(t, shortConfig(), 7)
	sp := NewSampler(s, rng.New(98))
	states := make([]BodyState, s.NumUsers())
	// Before the first arrival nobody is present.
	sp.At(1, states)
	for u, st := range states {
		if st.Present {
			t.Fatalf("user %d present at t=1s before arriving", u)
		}
	}
	// While seated the user is present at roughly the seat position.
	seated := s.SeatedIntervals()
	for u, ivs := range seated {
		if len(ivs) == 0 {
			continue
		}
		mid := (ivs[0].Start + ivs[0].End) / 2
		// Sampler time must be non-decreasing; create a fresh sampler.
		sp2 := NewSampler(s, rng.New(97))
		sp2.At(mid, states)
		if !states[u].Present {
			t.Fatalf("user %d absent mid-seated-interval", u)
		}
		seat := office.Paper().Workstations[u]
		if states[u].Pos.Dist(seat) > 0.5 {
			t.Fatalf("user %d seated %v, far from seat %v", u, states[u].Pos, seat)
		}
	}
}

func TestSamplerWalkReachesDoor(t *testing.T) {
	s := newTestSchedule(t, shortConfig(), 8)
	lay := office.Paper()
	// Find a departure movement and sample through it.
	var dep *movement
	for i := range s.movements {
		if s.movements[i].kind == moveDeparture {
			dep = &s.movements[i]
			break
		}
	}
	if dep == nil {
		t.Skip("no departure scheduled with this seed")
	}
	sp := NewSampler(s, rng.New(96))
	states := make([]BodyState, s.NumUsers())
	// Just before the walk ends the user should be near the door.
	sp.At(dep.walk.End-0.1, states)
	if !states[dep.user].Present {
		t.Fatal("departing user absent during the walk")
	}
	if states[dep.user].Pos.Dist(lay.Door) > 1.0 {
		t.Fatalf("departing user at %v, not near door %v", states[dep.user].Pos, lay.Door)
	}
	// After the door pause the user is gone.
	sp2 := NewSampler(s, rng.New(95))
	sp2.At(dep.pauseEnd+1, states)
	if states[dep.user].Present && !s.SeatedAt(dep.user, dep.pauseEnd+1) {
		t.Fatal("departed user still present after the door closed")
	}
}

func TestWandersGeneratedWhenEnabled(t *testing.T) {
	cfg := shortConfig()
	cfg.WanderPerHour = 20
	s := newTestSchedule(t, cfg, 9)
	wanders := 0
	for _, m := range s.movements {
		if m.kind == moveWander {
			wanders++
		}
	}
	if wanders == 0 {
		t.Fatal("no wanders despite a high configured rate")
	}
}

func TestOverlapInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AllowOverlaps = true
	cfg.MinMovementGapSec = 1
	// With overlaps allowed over many seeds, at least one pair of walks
	// should intersect.
	found := false
	for seed := uint64(0); seed < 10 && !found; seed++ {
		s := newTestSchedule(t, cfg, seed)
		var walks []Interval
		for _, m := range s.movements {
			if m.kind == moveDeparture || m.kind == moveEntry {
				walks = append(walks, m.walk)
			}
		}
		sort.Slice(walks, func(i, j int) bool { return walks[i].Start < walks[j].Start })
		for i := 1; i < len(walks); i++ {
			if walks[i].Start < walks[i-1].End {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("AllowOverlaps never produced an overlap across 10 seeds")
	}
}

func TestEventTypeString(t *testing.T) {
	if EventDeparture.String() != "departure" || EventEntry.String() != "entry" {
		t.Fatal("EventType.String mismatch")
	}
	if EventType(99).String() == "" {
		t.Fatal("unknown event type should still render")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Start: 2, End: 5}
	if !iv.Contains(2) || !iv.Contains(5) || iv.Contains(5.01) {
		t.Fatal("Contains boundary behaviour wrong")
	}
	if iv.Duration() != 3 {
		t.Fatalf("duration %v", iv.Duration())
	}
	if !iv.Overlaps(Interval{Start: 4, End: 9}) || iv.Overlaps(Interval{Start: 6, End: 7}) {
		t.Fatal("Overlaps wrong")
	}
}
