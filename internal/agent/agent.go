// Package agent simulates the office's human users: sitting at their
// workstations (with small fidgeting movements), occasionally standing up
// and walking out through the single door, staying outside for a while,
// and walking back in. The paper's testbed observed three students for
// five working days, with a human supervisor recording ground truth; here
// the schedule generator plays that role, emitting both the body
// trajectories that drive the RF simulator and the exact ground-truth
// event log the evaluation harness scores against.
//
// Schedules are calibrated to the paper's Table II: ≈4.2 departures per
// user per day (63 over 15 user-days, labels w1..w3) and ≈4.5 entries per
// user per day (67 events with label w0).
package agent

import (
	"fmt"
	"math"
	"sort"

	"fadewich/internal/geom"
	"fadewich/internal/office"
	"fadewich/internal/rng"
)

// EventType labels a ground-truth event.
type EventType int

// Ground-truth event kinds. Departure and Entry correspond to the paper's
// labels w1..wk and w0; ExitRoom and ArriveDesk are auxiliary timestamps
// used by the security analysis (the adversary's clock starts when the
// victim crosses the door).
const (
	EventDeparture  EventType = iota + 1 // user stood up and left the workstation
	EventEntry                           // user crossed the door inward
	EventExitRoom                        // user crossed the door outward
	EventArriveDesk                      // user sat down at the workstation
)

// String implements fmt.Stringer for diagnostics.
func (e EventType) String() string {
	switch e {
	case EventDeparture:
		return "departure"
	case EventEntry:
		return "entry"
	case EventExitRoom:
		return "exit-room"
	case EventArriveDesk:
		return "arrive-desk"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}

// Event is one ground-truth observation by the "supervisor".
type Event struct {
	Type        EventType
	Time        float64 // seconds from day start
	User        int
	Workstation int
}

// Interval is a closed time range in seconds from day start.
type Interval struct {
	Start, End float64
}

// Contains reports whether t lies within the interval.
func (iv Interval) Contains(t float64) bool { return t >= iv.Start && t <= iv.End }

// Duration returns the interval length.
func (iv Interval) Duration() float64 { return iv.End - iv.Start }

// Overlaps reports whether two intervals intersect.
func (iv Interval) Overlaps(o Interval) bool { return iv.Start <= o.End && o.Start <= iv.End }

// Config parameterises the behaviour simulation.
type Config struct {
	// DaySeconds is the length of one simulated working day.
	DaySeconds float64
	// DeparturesPerDay is the mean number of mid-day excursions per user
	// per day (the final end-of-day departure is added on top).
	DeparturesPerDay float64
	// OutsideMeanSec is the mean time a user stays outside during a
	// mid-day excursion.
	OutsideMeanSec float64
	// WalkSpeed is the nominal walking speed in m/s (the paper assumes
	// 1.4 m/s).
	WalkSpeed float64
	// WalkSpeedJitter is the per-walk fractional speed variation.
	WalkSpeedJitter float64
	// StandUpSec is the mean delay between "decides to leave" (last
	// input) and actually walking.
	StandUpSec float64
	// DoorPauseSec is the mean pause at the door (opening it).
	DoorPauseSec float64
	// StretchPerHour is the rate of brief at-desk movements (leaning,
	// stretching) that cause short, sub-t∆ variation windows.
	StretchPerHour float64
	// StretchMeanSec is the mean duration of a stretch.
	StretchMeanSec float64
	// WanderPerHour is the rate of in-room walks that do not leave the
	// office (an extension scenario; 0 in the paper-faithful setup since
	// all 63 recorded departures ended with an office exit).
	WanderPerHour float64
	// MinMovementGapSec is the minimum gap enforced between any two
	// users' movement intervals. The paper's dataset contained no
	// overlaps (Section VI-B); a positive gap reproduces that. Set
	// AllowOverlaps to disable the constraint.
	MinMovementGapSec float64
	// AllowOverlaps permits simultaneous movements (for the overlap
	// extension experiments).
	AllowOverlaps bool
	// FidgetRadiusM is the seated sway amplitude.
	FidgetRadiusM float64
	// MorningJitterSec spreads the users' morning arrivals after day
	// start.
	MorningJitterSec float64
}

// DefaultConfig returns the calibrated behaviour configuration matching
// Table II's event counts over a five-day, eight-hour-per-day experiment.
func DefaultConfig() Config {
	return Config{
		DaySeconds:        8 * 3600,
		DeparturesPerDay:  4.1,
		OutsideMeanSec:    8 * 60,
		WalkSpeed:         1.2,
		WalkSpeedJitter:   0.12,
		StandUpSec:        1.0,
		DoorPauseSec:      1.3,
		StretchPerHour:    3.5,
		StretchMeanSec:    1.5,
		WanderPerHour:     0,
		MinMovementGapSec: 25,
		AllowOverlaps:     false,
		FidgetRadiusM:     0.06,
		MorningJitterSec:  600,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.DaySeconds == 0 {
		c.DaySeconds = d.DaySeconds
	}
	if c.DeparturesPerDay == 0 {
		c.DeparturesPerDay = d.DeparturesPerDay
	}
	if c.OutsideMeanSec == 0 {
		c.OutsideMeanSec = d.OutsideMeanSec
	}
	if c.WalkSpeed == 0 {
		c.WalkSpeed = d.WalkSpeed
	}
	if c.WalkSpeedJitter == 0 {
		c.WalkSpeedJitter = d.WalkSpeedJitter
	}
	if c.StandUpSec == 0 {
		c.StandUpSec = d.StandUpSec
	}
	if c.DoorPauseSec == 0 {
		c.DoorPauseSec = d.DoorPauseSec
	}
	if c.StretchPerHour == 0 {
		c.StretchPerHour = d.StretchPerHour
	}
	if c.StretchMeanSec == 0 {
		c.StretchMeanSec = d.StretchMeanSec
	}
	if c.MinMovementGapSec == 0 {
		c.MinMovementGapSec = d.MinMovementGapSec
	}
	if c.FidgetRadiusM == 0 {
		c.FidgetRadiusM = d.FidgetRadiusM
	}
	if c.MorningJitterSec == 0 {
		c.MorningJitterSec = d.MorningJitterSec
	}
	return c
}

// Effective body speeds (m/s equivalent, as seen by the RF motion-noise
// model) for the non-walking movement phases: standing up scrapes the
// chair and shifts the torso; opening a door swings the arm and the door
// leaf itself.
const (
	standUpSpeed = 0.7
	doorSpeed    = 0.9
	// entrySpeedFactor slows entering users relative to departing ones.
	entrySpeedFactor = 0.88
)

// moveKind discriminates the scheduled movement types.
type moveKind int

const (
	moveDeparture moveKind = iota + 1
	moveEntry
	moveStretch
	moveWander
)

// movement is one scheduled trajectory for one user.
type movement struct {
	kind  moveKind
	user  int
	start float64 // stand-up / door-crossing moment
	// walk covers the in-room trajectory: for departures
	// [start+standUp, exit], for entries [start, arriveDesk].
	walk     Interval
	path     *geom.Path
	speed    float64
	pauseEnd float64 // for departures: time the door closes behind the user
	// prePause is the time spent stationary at the path start before
	// walking; entries use it for opening the door.
	prePause float64
}

// Schedule is a full precomputed day of user behaviour.
type Schedule struct {
	cfg    Config
	layout *office.Layout
	users  int
	// seated[u] lists the intervals user u is seated at their desk.
	seated [][]Interval
	// inputSpans[u] lists the intervals user u can produce keyboard/mouse
	// input. These end at the departure *decision* moment (the paper's
	// worst-case "last input occurs exactly at departure time"), slightly
	// before the seated interval ends with the stand-up.
	inputSpans [][]Interval
	// movements sorted by walk.Start.
	movements []movement
	events    []Event
}

// NewSchedule generates one day of behaviour for every workstation's user.
// The generator enforces the no-overlap property of the paper's dataset
// unless cfg.AllowOverlaps is set. It returns an error if the layout is
// invalid.
func NewSchedule(layout *office.Layout, cfg Config, src *rng.Source) (*Schedule, error) {
	if err := layout.Validate(); err != nil {
		return nil, fmt.Errorf("agent: %w", err)
	}
	cfg = cfg.withDefaults()
	s := &Schedule{
		cfg:        cfg,
		layout:     layout,
		users:      layout.NumWorkstations(),
		seated:     make([][]Interval, layout.NumWorkstations()),
		inputSpans: make([][]Interval, layout.NumWorkstations()),
	}
	s.generate(src)
	return s, nil
}

// walkDuration returns the walking time over a path at the given speed.
func walkDuration(p *geom.Path, speed float64) float64 {
	if speed <= 0 {
		speed = 1.4
	}
	return p.Length() / speed
}

// generate builds the day's excursions, movements, events and seated
// intervals.
func (s *Schedule) generate(src *rng.Source) {
	cfg := s.cfg
	// reserved holds all in-room movement intervals (plus the minimum
	// gap) across users, to enforce no overlaps.
	var reserved []Interval

	reserve := func(iv Interval) bool {
		if !cfg.AllowOverlaps {
			padded := Interval{Start: iv.Start - cfg.MinMovementGapSec, End: iv.End + cfg.MinMovementGapSec}
			for _, r := range reserved {
				if padded.Overlaps(r) {
					return false
				}
			}
		}
		reserved = append(reserved, iv)
		return true
	}

	for u := 0; u < s.users; u++ {
		depPath, err := s.layout.DeparturePath(u)
		if err != nil {
			// Validated layout cannot fail here; guard for robustness.
			continue
		}
		entPath, _ := s.layout.EntryPath(u)

		// Arrivals start no earlier than 60 s into the day so the MD
		// module's initial profile (collected from an empty office, as at
		// installation) has finished its warm-up.
		morning := 60 + src.Float64()*cfg.MorningJitterSec
		// Entering users walk slightly slower than departing ones: they
		// close the door behind them and navigate around furniture.
		arrivalSpeed := entrySpeedFactor * cfg.WalkSpeed * (1 + src.Jitter(2*cfg.WalkSpeedJitter))
		arrivalPause := cfg.DoorPauseSec * (0.6 + 0.8*src.Float64())
		arrivalWalk := Interval{Start: morning, End: morning + arrivalPause + walkDuration(entPath, arrivalSpeed)}
		if !reserve(arrivalWalk) {
			// Push the arrival later until it fits.
			for try := 0; try < 50 && !reserve(arrivalWalk); try++ {
				shift := 30 + src.Float64()*60
				arrivalWalk.Start += shift
				arrivalWalk.End += shift
			}
		}
		s.movements = append(s.movements, movement{
			kind: moveEntry, user: u, start: arrivalWalk.Start,
			walk: arrivalWalk, path: entPath, speed: arrivalSpeed, prePause: arrivalPause,
		})
		s.events = append(s.events,
			Event{Type: EventEntry, Time: arrivalWalk.Start, User: u, Workstation: u},
			Event{Type: EventArriveDesk, Time: arrivalWalk.End, User: u, Workstation: u},
		)

		seatedFrom := arrivalWalk.End
		// Mid-day excursions, then a final end-of-day departure.
		nExcursions := src.Poisson(cfg.DeparturesPerDay)
		departAt := make([]float64, 0, nExcursions+1)
		for i := 0; i < nExcursions; i++ {
			t := seatedFrom + 120 + src.Float64()*(cfg.DaySeconds-seatedFrom-600)
			departAt = append(departAt, t)
		}
		// Final departure in the last ~20 minutes of the day.
		departAt = append(departAt, cfg.DaySeconds-60-src.Float64()*1200)
		sort.Float64s(departAt)

		cursor := seatedFrom
		for i, t0 := range departAt {
			final := i == len(departAt)-1
			if t0 < cursor+60 {
				t0 = cursor + 60 + src.Float64()*120
			}
			if t0 > cfg.DaySeconds-30 {
				break
			}
			speed := cfg.WalkSpeed * (1 + src.Jitter(2*cfg.WalkSpeedJitter))
			standUp := cfg.StandUpSec * (0.7 + 0.6*src.Float64())
			doorPause := cfg.DoorPauseSec * (0.6 + 0.8*src.Float64())
			// walk spans stand-up plus the actual walk; the stand-up
			// phase is the movement's prePause, at the seat.
			walk := Interval{
				Start: t0,
				End:   t0 + standUp + walkDuration(depPath, speed),
			}
			// The whole departure (stand-up through door) must not
			// overlap other movements.
			whole := Interval{Start: t0, End: walk.End + doorPause}
			if !reserve(whole) {
				// Try shifting later a few times; otherwise skip this
				// excursion.
				ok := false
				for try := 0; try < 30; try++ {
					shift := cfg.MinMovementGapSec + src.Float64()*180
					t0 += shift
					if t0 > cfg.DaySeconds-30 {
						break
					}
					walk = Interval{Start: t0, End: t0 + standUp + walkDuration(depPath, speed)}
					whole = Interval{Start: t0, End: walk.End + doorPause}
					if reserve(whole) {
						ok = true
						break
					}
				}
				if !ok {
					continue
				}
			}
			s.seated[u] = append(s.seated[u], Interval{Start: cursor, End: t0})
			s.inputSpans[u] = append(s.inputSpans[u], Interval{Start: cursor, End: t0})
			s.movements = append(s.movements, movement{
				kind: moveDeparture, user: u, start: t0,
				walk: walk, path: depPath, speed: speed,
				pauseEnd: walk.End + doorPause, prePause: standUp,
			})
			// The user reaches the door at walk.End, opens it during the
			// pause, and crosses it outward when the pause ends.
			s.events = append(s.events,
				Event{Type: EventDeparture, Time: t0, User: u, Workstation: u},
				Event{Type: EventExitRoom, Time: walk.End + doorPause, User: u, Workstation: u},
			)
			if final {
				cursor = cfg.DaySeconds + 1 // gone for the day
				break
			}
			// Return after an exponential outside stay.
			returnAt := walk.End + doorPause + 30 + src.Exponential(cfg.OutsideMeanSec)
			if returnAt > cfg.DaySeconds-90 {
				cursor = cfg.DaySeconds + 1 // never came back
				break
			}
			retSpeed := entrySpeedFactor * cfg.WalkSpeed * (1 + src.Jitter(2*cfg.WalkSpeedJitter))
			retPause := cfg.DoorPauseSec * (0.6 + 0.8*src.Float64())
			retWalk := Interval{Start: returnAt, End: returnAt + retPause + walkDuration(entPath, retSpeed)}
			for try := 0; try < 50 && !reserve(retWalk); try++ {
				shift := cfg.MinMovementGapSec + src.Float64()*120
				retWalk.Start += shift
				retWalk.End += shift
			}
			s.movements = append(s.movements, movement{
				kind: moveEntry, user: u, start: retWalk.Start,
				walk: retWalk, path: entPath, speed: retSpeed, prePause: retPause,
			})
			s.events = append(s.events,
				Event{Type: EventEntry, Time: retWalk.Start, User: u, Workstation: u},
				Event{Type: EventArriveDesk, Time: retWalk.End, User: u, Workstation: u},
			)
			cursor = retWalk.End
		}
		if cursor <= cfg.DaySeconds {
			s.seated[u] = append(s.seated[u], Interval{Start: cursor, End: cfg.DaySeconds})
			s.inputSpans[u] = append(s.inputSpans[u], Interval{Start: cursor, End: cfg.DaySeconds})
		}
	}

	s.generateStretches(src)
	if s.cfg.WanderPerHour > 0 {
		s.generateWanders(src, &reserved)
	}

	sort.Slice(s.movements, func(i, j int) bool { return s.movements[i].walk.Start < s.movements[j].walk.Start })
	sort.Slice(s.events, func(i, j int) bool { return s.events[i].Time < s.events[j].Time })
}

// generateStretches sprinkles brief at-desk movements through seated
// intervals. Stretches are allowed to coincide with anything; they are
// sub-threshold noise, not scheduled excursions.
func (s *Schedule) generateStretches(src *rng.Source) {
	for u := 0; u < s.users; u++ {
		seat := s.layout.Workstations[u]
		for _, iv := range s.seated[u] {
			n := src.Poisson(s.cfg.StretchPerHour * iv.Duration() / 3600)
			for i := 0; i < n; i++ {
				t := iv.Start + src.Float64()*iv.Duration()
				dur := s.cfg.StretchMeanSec * (0.6 + 0.8*src.Float64())
				if t+dur > iv.End {
					continue
				}
				// A small two-leg path around the seat.
				angle := src.Float64() * 2 * math.Pi
				r := 0.25 + 0.3*src.Float64()
				out := geom.Point{X: seat.X + r*math.Cos(angle), Y: seat.Y + r*math.Sin(angle)}
				out = s.layout.Bounds.Clamp(out)
				path := geom.NewPath(seat, out, seat)
				s.movements = append(s.movements, movement{
					kind: moveStretch, user: u, start: t,
					walk:  Interval{Start: t, End: t + dur},
					path:  path,
					speed: path.Length() / dur,
				})
			}
		}
	}
}

// generateWanders adds in-room walks that do not exit the office (the
// overlap/extension scenario).
func (s *Schedule) generateWanders(src *rng.Source, reserved *[]Interval) {
	for u := 0; u < s.users; u++ {
		seat := s.layout.Workstations[u]
		for _, iv := range s.seated[u] {
			n := src.Poisson(s.cfg.WanderPerHour * iv.Duration() / 3600)
			for i := 0; i < n; i++ {
				t := iv.Start + 30 + src.Float64()*math.Max(1, iv.Duration()-60)
				target := geom.Point{
					X: s.layout.Bounds.Min.X + 0.4 + src.Float64()*(s.layout.Bounds.Width()-0.8),
					Y: s.layout.Bounds.Min.Y + 0.4 + src.Float64()*(s.layout.Bounds.Height()-0.8),
				}
				path := geom.NewPath(seat, target, seat)
				speed := s.cfg.WalkSpeed * (0.8 + 0.3*src.Float64())
				dur := walkDuration(path, speed) + 2 // brief pause at target
				if t+dur > iv.End {
					continue
				}
				w := Interval{Start: t, End: t + dur}
				if !s.cfg.AllowOverlaps {
					conflict := false
					for _, r := range *reserved {
						if w.Overlaps(r) {
							conflict = true
							break
						}
					}
					if conflict {
						continue
					}
				}
				*reserved = append(*reserved, w)
				s.movements = append(s.movements, movement{
					kind: moveWander, user: u, start: t,
					walk: w, path: path, speed: speed,
				})
			}
		}
	}
}

// Events returns the ground-truth event log sorted by time.
func (s *Schedule) Events() []Event {
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// SeatedIntervals returns, for each user, the intervals they are seated at
// their workstation.
func (s *Schedule) SeatedIntervals() [][]Interval {
	out := make([][]Interval, len(s.seated))
	for i, ivs := range s.seated {
		out[i] = make([]Interval, len(ivs))
		copy(out[i], ivs)
	}
	return out
}

// InputSpans returns, for each user, the intervals during which the user
// can produce keyboard/mouse input. Each span ends at the departure
// decision moment, implementing the paper's worst-case assumption that the
// last input occurs exactly when the user departs.
func (s *Schedule) InputSpans() [][]Interval {
	out := make([][]Interval, len(s.inputSpans))
	for i, ivs := range s.inputSpans {
		out[i] = make([]Interval, len(ivs))
		copy(out[i], ivs)
	}
	return out
}

// NumUsers returns the number of simulated users.
func (s *Schedule) NumUsers() int { return s.users }

// DaySeconds returns the configured day length.
func (s *Schedule) DaySeconds() float64 { return s.cfg.DaySeconds }

// SeatedAt reports whether user u is seated at time t.
func (s *Schedule) SeatedAt(u int, t float64) bool {
	for _, iv := range s.seated[u] {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// BodyState is a user's physical state at one instant.
type BodyState struct {
	Present bool
	Pos     geom.Point
	Speed   float64
}

// Sampler walks the schedule tick by tick, producing body states. It keeps
// per-user cursors so sampling a full day is O(ticks + movements).
type Sampler struct {
	sched *Schedule
	// moveIdx is the index of the next movement not yet finished, per
	// scan order; movements may interleave across users, so each user
	// tracks its own active movement.
	active   []int // per-user index into movements, -1 if none
	cursor   int   // next movement to activate
	fidget   []geom.Point
	fidgetAR float64
	src      *rng.Source
}

// NewSampler returns a Sampler over the schedule. The source drives only
// cosmetic fidgeting; trajectories and events are fixed by the schedule.
func NewSampler(s *Schedule, src *rng.Source) *Sampler {
	active := make([]int, s.users)
	for i := range active {
		active[i] = -1
	}
	return &Sampler{
		sched:    s,
		active:   active,
		fidget:   make([]geom.Point, s.users),
		fidgetAR: 0.95,
		src:      src,
	}
}

// At fills states with every user's body state at time t. Calls must have
// non-decreasing t. states must have length NumUsers.
func (sp *Sampler) At(t float64, states []BodyState) {
	s := sp.sched
	if len(states) != s.users {
		panic(fmt.Sprintf("agent: states length %d, want %d", len(states), s.users))
	}
	// Activate movements as their trajectory windows begin. A departure's
	// trajectory effectively starts at the stand-up moment, slightly
	// before walk.Start; activating at walk.Start is fine because the
	// stand-up phase is handled by the seated branch's fidgeting.
	// Movements are time-sorted; a later movement for the same user
	// overrides an earlier (finished) one.
	for sp.cursor < len(s.movements) && s.movements[sp.cursor].walk.Start <= t {
		m := s.movements[sp.cursor]
		sp.active[m.user] = sp.cursor
		sp.cursor++
	}

	for u := 0; u < s.users; u++ {
		st := &states[u]
		st.Present, st.Speed = false, 0

		if idx := sp.active[u]; idx >= 0 {
			m := &s.movements[idx]
			switch m.kind {
			case moveDeparture:
				if t <= m.walk.End {
					st.Present = true
					if t < m.walk.Start+m.prePause {
						// Standing up: pushing the chair back at the seat.
						st.Pos = m.path.At(0)
						st.Speed = standUpSpeed
					} else {
						st.Pos = m.path.At((t - m.walk.Start - m.prePause) * m.speed)
						st.Speed = m.speed
					}
					continue
				}
				// Opening the door on the way out, then gone.
				if t <= m.pauseEnd {
					st.Present = true
					st.Pos = m.path.At(m.path.Length())
					st.Speed = doorSpeed
					continue
				}
			case moveEntry:
				if t <= m.walk.End {
					st.Present = true
					if t < m.walk.Start+m.prePause {
						// Opening the door: stationary at the doorway.
						st.Pos = m.path.At(0)
						st.Speed = doorSpeed
					} else {
						st.Pos = m.path.At((t - m.walk.Start - m.prePause) * m.speed)
						st.Speed = m.speed
					}
					continue
				}
			case moveStretch, moveWander:
				if t <= m.walk.End {
					st.Present = true
					st.Pos = m.path.At((t - m.walk.Start) * m.speed)
					st.Speed = m.speed
					continue
				}
			}
		}

		// No active movement: seated (with sway) or outside (absent).
		if s.SeatedAt(u, t) {
			st.Present = true
			// Ornstein-Uhlenbeck style sway around the seat.
			f := &sp.fidget[u]
			f.X = sp.fidgetAR*f.X + sp.src.Normal(0, s.cfg.FidgetRadiusM*0.3)
			f.Y = sp.fidgetAR*f.Y + sp.src.Normal(0, s.cfg.FidgetRadiusM*0.3)
			st.Pos = s.layout.Workstations[u].Add(*f)
			st.Speed = 0.02
		}
	}
}
