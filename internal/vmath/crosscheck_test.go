package vmath

import (
	"math"
	"testing"
)

// kernelInputs is one shared input set all kernels run over in the
// cross-implementation checks.
type kernelInputs struct {
	x, y   []float64
	px, py float64
}

// deriveInputs builds a kernel input set of length n from raw values
// (cycled), so fuzz and edge cases drive every kernel with the same
// bytes.
func deriveInputs(vals []float64, n int) *kernelInputs {
	if len(vals) == 0 {
		vals = []float64{0}
	}
	in := &kernelInputs{x: make([]float64, n), y: make([]float64, n)}
	for i := 0; i < n; i++ {
		in.x[i] = vals[i%len(vals)]
		in.y[i] = vals[(i*7+3)%len(vals)]
	}
	in.px = vals[0]
	in.py = vals[len(vals)/2]
	return in
}

// runKernels executes every kernel of the given implementation set over
// the inputs and returns the named outputs.
func runKernels(fs *funcs, in *kernelInputs) map[string][]float64 {
	n := len(in.x)
	out := map[string][]float64{}
	grab := func(name string, run func(dst []float64)) {
		dst := make([]float64, n)
		copy(dst, in.y) // kernels that accumulate/modify start from y
		run(dst)
		out[name] = dst
	}
	// l2 must be consistent with (dx,dy) for DistToSegSlice; include
	// exact zeros to exercise the degenerate branch.
	dx, dy, l2 := make([]float64, n), make([]float64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		dx[i], dy[i] = in.y[i], in.x[(i+1)%n]
		if i%5 == 0 {
			dx[i], dy[i] = 0, 0
		}
		l2[i] = dx[i]*dx[i] + dy[i]*dy[i]
	}
	grab("exp", func(dst []float64) { fs.expSlice(dst, in.x) })
	grab("log", func(dst []float64) { fs.logSlice(dst, in.x) })
	grab("hypot", func(dst []float64) { fs.hypotSlice(dst, in.x, in.y) })
	grab("normFactor", func(dst []float64) { fs.normFactor(dst, in.x) })
	grab("normFactorFast", func(dst []float64) { fs.normFactorFast(dst, in.x) })
	grab("scale", func(dst []float64) { fs.scaleSlice(dst, in.px) })
	grab("axpy", func(dst []float64) { fs.axpySlice(dst, in.x, in.px) })
	grab("axpyClamp", func(dst []float64) { fs.axpyClamp(dst, in.x, in.px, -10, 10) })
	grab("sqrt", func(dst []float64) { fs.sqrtSlice(dst) })
	grab("clampMax", func(dst []float64) { fs.clampMax(dst, in.py) })
	grab("roundQuant1", func(dst []float64) { fs.roundQuant(dst, 1, 1, -95, -20) })
	grab("roundQuantHalf", func(dst []float64) { fs.roundQuant(dst, 0.5, 2, -95, -20) })
	grab("roundQuantOff", func(dst []float64) { fs.roundQuant(dst, 0, 0, -95, -20) })
	grab("excessPath", func(dst []float64) { fs.excessPath(dst, in.x, in.y, in.y, in.x, in.x, in.px, in.py) })
	grab("distToSeg", func(dst []float64) { fs.distToSeg(dst, in.x, in.y, dx, dy, l2, in.px, in.py) })
	grab("accumSqScaled", func(dst []float64) { fs.accumSqScaled(dst, in.x, in.px) })
	return out
}

// checkImplsAgree runs all kernels under both implementation sets and
// reports any bitwise divergence (NaNs of any payload are equal).
func checkImplsAgree(t *testing.T, vals []float64, n int) {
	t.Helper()
	if altImpl == nil {
		t.Skip("single-implementation platform")
	}
	in := deriveInputs(vals, n)
	a := runKernels(&portableFuncs, in)
	b := runKernels(altImpl, in)
	for name, av := range a {
		bv := b[name]
		for i := range av {
			if !bitsEqual(av[i], bv[i]) && !(math.IsNaN(av[i]) && math.IsNaN(bv[i])) {
				t.Fatalf("kernel %s diverges at [%d] (n=%d): portable %v (%#x), %s %v (%#x)",
					name, i, n, av[i], math.Float64bits(av[i]), altImpl.name, bv[i], math.Float64bits(bv[i]))
			}
		}
	}
}

func TestPortableVsUnrolledEdgeInputs(t *testing.T) {
	for n := 0; n <= 7; n++ {
		checkImplsAgree(t, edgeInputs, n)
	}
	checkImplsAgree(t, edgeInputs, len(edgeInputs))
	checkImplsAgree(t, edgeInputs, 4*len(edgeInputs)+3)
}

func TestPortableVsUnrolledSweep(t *testing.T) {
	checkImplsAgree(t, sweep(1021, 0, 800), 1021)
	checkImplsAgree(t, sweep(1024, 0, 1e-300), 1024)
	checkImplsAgree(t, sweep(513, 0, 50), 513)
}
