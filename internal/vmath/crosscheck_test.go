package vmath

import (
	"math"
	"testing"
)

// kernelInputs is one shared input set all kernels run over in the
// cross-implementation checks.
type kernelInputs struct {
	x, y   []float64
	px, py float64
}

// deriveInputs builds a kernel input set of length n from raw values
// (cycled), so fuzz and edge cases drive every kernel with the same
// bytes.
func deriveInputs(vals []float64, n int) *kernelInputs {
	if len(vals) == 0 {
		vals = []float64{0}
	}
	in := &kernelInputs{x: make([]float64, n), y: make([]float64, n)}
	for i := 0; i < n; i++ {
		in.x[i] = vals[i%len(vals)]
		in.y[i] = vals[(i*7+3)%len(vals)]
	}
	in.px = vals[0]
	in.py = vals[len(vals)/2]
	return in
}

// runKernels executes every kernel of the given implementation set over
// the inputs and returns the named outputs.
func runKernels(fs *funcs, in *kernelInputs) map[string][]float64 {
	n := len(in.x)
	out := map[string][]float64{}
	grab := func(name string, run func(dst []float64)) {
		dst := make([]float64, n)
		copy(dst, in.y) // kernels that accumulate/modify start from y
		run(dst)
		out[name] = dst
	}
	// l2 must be consistent with (dx,dy) for DistToSegSlice; include
	// exact zeros to exercise the degenerate branch.
	dx, dy, l2 := make([]float64, n), make([]float64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		dx[i], dy[i] = in.y[i], in.x[(i+1)%n]
		if i%5 == 0 {
			dx[i], dy[i] = 0, 0
		}
		l2[i] = dx[i]*dx[i] + dy[i]*dy[i]
	}
	grab("exp", func(dst []float64) { fs.expSlice(dst, in.x) })
	grab("log", func(dst []float64) { fs.logSlice(dst, in.x) })
	grab("hypot", func(dst []float64) { fs.hypotSlice(dst, in.x, in.y) })
	grab("normFactor", func(dst []float64) { fs.normFactor(dst, in.x) })
	grab("normFactorFast", func(dst []float64) { fs.normFactorFast(dst, in.x) })
	grab("scale", func(dst []float64) { fs.scaleSlice(dst, in.px) })
	grab("axpy", func(dst []float64) { fs.axpySlice(dst, in.x, in.px) })
	grab("axpyClamp", func(dst []float64) { fs.axpyClamp(dst, in.x, in.px, -10, 10) })
	grab("sqrt", func(dst []float64) { fs.sqrtSlice(dst) })
	grab("clampMax", func(dst []float64) { fs.clampMax(dst, in.py) })
	raw := make([]uint64, n)
	pairs := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		raw[i] = math.Float64bits(in.x[i]) // arbitrary 64-bit patterns as generator state words
		pairs[2*i], pairs[2*i+1] = in.x[i], in.y[i]
	}
	grab("starUniform", func(dst []float64) { fs.starUniform(dst, raw) })
	grab("pairNormSq", func(dst []float64) { fs.pairNormSq(dst, pairs) })
	// The interleaving kernel writes 2n outputs and the AR kernels mutate
	// their ar column; capture those slices directly.
	grabNamed := func(name string, vals []float64) { out[name] = vals }
	bmOut := make([]float64, 2*n)
	fs.boxMullerScale(bmOut, in.x, in.y, in.y)
	grabNamed("boxMullerScale", bmOut)
	arCol := append([]float64{}, in.y...)
	anOut := make([]float64, n)
	fs.arNoise(anOut, arCol, in.x, in.y, in.px, 0.9, 0.35)
	grabNamed("arNoise-out", anOut)
	grabNamed("arNoise-ar", arCol)
	// compactAccept: in.x serves as the rejection statistic (edge input
	// sets include 0, NaN and values on both sides of 1). Only the
	// accepted prefix and the count are contractual; slots beyond the
	// count are unspecified and excluded from the comparison.
	caUs, caVs, caQs := make([]float64, n), make([]float64, n), make([]float64, n)
	acc := fs.compactAccept(caUs, caVs, caQs, pairs, in.x)
	grabNamed("compactAccept-us", caUs[:acc])
	grabNamed("compactAccept-vs", caVs[:acc])
	grabNamed("compactAccept-qs", caQs[:acc])
	grabNamed("compactAccept-n", []float64{float64(acc)})
	arCol2 := append([]float64{}, in.x...)
	amOut := make([]float64, n)
	fs.arMotionNoise(amOut, arCol2, in.y, pairs, in.py, 0.9, 0.35, 1.7)
	grabNamed("arMotionNoise-out", amOut)
	grabNamed("arMotionNoise-ar", arCol2)
	grab("roundQuant1", func(dst []float64) { fs.roundQuant(dst, 1, 1, -95, -20) })
	grab("roundQuantHalf", func(dst []float64) { fs.roundQuant(dst, 0.5, 2, -95, -20) })
	grab("roundQuantOff", func(dst []float64) { fs.roundQuant(dst, 0, 0, -95, -20) })
	grab("excessPath", func(dst []float64) { fs.excessPath(dst, in.x, in.y, in.y, in.x, in.x, in.px, in.py) })
	grab("distToSeg", func(dst []float64) { fs.distToSeg(dst, in.x, in.y, dx, dy, l2, in.px, in.py) })
	grab("accumSqScaled", func(dst []float64) { fs.accumSqScaled(dst, in.x, in.px) })
	return out
}

// awkwardLengths are the slice lengths every cross-check sweeps: empty,
// single element, one below/at/above the 4-float64 SIMD group width of
// the unrolled and AVX2 paths, and a multi-group length with a ragged
// 3-element tail (4·lane+3) — pinning the assembly kernels' bail and
// tail handling.
var awkwardLengths = []int{0, 1, 2, 3, 4, 5, 6, 7, 19}

// checkImplsAgree runs all kernels under the portable set and every
// alternative set available on this machine and reports any bitwise
// divergence (NaNs of any payload are equal).
func checkImplsAgree(t *testing.T, vals []float64, n int) {
	t.Helper()
	sets := altImplSets()
	if len(sets) == 0 {
		t.Skip("single-implementation platform")
	}
	in := deriveInputs(vals, n)
	a := runKernels(&portableFuncs, in)
	for _, alt := range sets {
		b := runKernels(alt, in)
		for name, av := range a {
			bv := b[name]
			if len(av) != len(bv) {
				t.Fatalf("kernel %s output length diverges (n=%d): portable %d, %s %d",
					name, n, len(av), alt.name, len(bv))
			}
			for i := range av {
				if !bitsEqual(av[i], bv[i]) && !(math.IsNaN(av[i]) && math.IsNaN(bv[i])) {
					t.Fatalf("kernel %s diverges at [%d] (n=%d): portable %v (%#x), %s %v (%#x)",
						name, i, n, av[i], math.Float64bits(av[i]), alt.name, bv[i], math.Float64bits(bv[i]))
				}
			}
		}
	}
}

func TestPortableVsAltEdgeInputs(t *testing.T) {
	for _, n := range awkwardLengths {
		checkImplsAgree(t, edgeInputs, n)
	}
	checkImplsAgree(t, edgeInputs, len(edgeInputs))
	checkImplsAgree(t, edgeInputs, 4*len(edgeInputs)+3)
}

func TestPortableVsAltSweep(t *testing.T) {
	checkImplsAgree(t, sweep(1021, 0, 800), 1021)
	checkImplsAgree(t, sweep(1024, 0, 1e-300), 1024)
	checkImplsAgree(t, sweep(513, 0, 50), 513)
}
