//go:build !amd64

package vmath

// altImplSets is empty on single-implementation platforms; cross-checks
// skip.
func altImplSets() []*funcs { return nil }

// Off amd64 the stdlib may use a different exp algorithm (its own
// assembly or the fdlibm pure-Go path), so ExpSlice is only held to a
// small ulp tolerance against it.
const expExactStdlib = false
