//go:build !amd64

package vmath

// altImpl is nil on single-implementation platforms; cross-checks skip.
var altImpl *funcs

// Off amd64 the stdlib may use a different exp algorithm (its own
// assembly or the fdlibm pure-Go path), so ExpSlice is only held to a
// small ulp tolerance against it.
const expExactStdlib = false
