// AVX2 assembly kernels for the vmath hot set: exp, log, the Box-Muller
// normFactor, hypot, the xoshiro star-uniform draw, the Box-Muller
// pair/scale/compaction trio, the AR-noise recurrences and the
// quantisation round/clamp path. Four float64 lanes per iteration in
// YMM registers.
//
// Identity contract: every lane executes exactly the operation sequence
// of the portable scalar helpers (portable.go), in the same order —
// fused multiply-adds only where the portable code calls math.FMA,
// plain VMULPD/VADDPD everywhere the portable code uses plain Go
// arithmetic (the amd64 compiler never auto-contracts float64
// expressions into FMA). The gated kernels (exp, log, normFactor)
// check the fast-path range of all four lanes up front and return the
// element count processed so far when a group contains a special-case
// input; the Go wrappers (avx2_amd64.go) evaluate that group with the
// scalar helpers and re-enter.
//
// All kernels return the number of leading elements fully processed
// (a multiple of 4). Tails of fewer than 4 elements are always left to
// the wrapper.

#include "textflag.h"

DATA expLo4<>+0(SB)/8, $0xc086200000000000 // -708.0 (expFastLo)
DATA expLo4<>+8(SB)/8, $0xc086200000000000
DATA expLo4<>+16(SB)/8, $0xc086200000000000
DATA expLo4<>+24(SB)/8, $0xc086200000000000
GLOBL expLo4<>(SB), RODATA|NOPTR, $32

DATA expHi4<>+0(SB)/8, $0x4086280000000000 // 709.0 (expFastHi)
DATA expHi4<>+8(SB)/8, $0x4086280000000000
DATA expHi4<>+16(SB)/8, $0x4086280000000000
DATA expHi4<>+24(SB)/8, $0x4086280000000000
GLOBL expHi4<>(SB), RODATA|NOPTR, $32

DATA log2e4<>+0(SB)/8, $0x3ff71547652b82fe // log2e
DATA log2e4<>+8(SB)/8, $0x3ff71547652b82fe
DATA log2e4<>+16(SB)/8, $0x3ff71547652b82fe
DATA log2e4<>+24(SB)/8, $0x3ff71547652b82fe
GLOBL log2e4<>(SB), RODATA|NOPTR, $32

// 1.5·2^52: the roundMagic of the exp kernel, and — interpreted as an
// integer bit pattern — the int64→float64 conversion magic of the log
// kernel (add as int, subtract as double).
DATA magic4<>+0(SB)/8, $0x4338000000000000
DATA magic4<>+8(SB)/8, $0x4338000000000000
DATA magic4<>+16(SB)/8, $0x4338000000000000
DATA magic4<>+24(SB)/8, $0x4338000000000000
GLOBL magic4<>(SB), RODATA|NOPTR, $32

DATA ln2u4<>+0(SB)/8, $0x3fe62e42fefa3000 // ln2u
DATA ln2u4<>+8(SB)/8, $0x3fe62e42fefa3000
DATA ln2u4<>+16(SB)/8, $0x3fe62e42fefa3000
DATA ln2u4<>+24(SB)/8, $0x3fe62e42fefa3000
GLOBL ln2u4<>(SB), RODATA|NOPTR, $32

DATA ln2l4<>+0(SB)/8, $0x3d53de6af278ece6 // ln2l
DATA ln2l4<>+8(SB)/8, $0x3d53de6af278ece6
DATA ln2l4<>+16(SB)/8, $0x3d53de6af278ece6
DATA ln2l4<>+24(SB)/8, $0x3d53de6af278ece6
GLOBL ln2l4<>(SB), RODATA|NOPTR, $32

DATA sixteenth4<>+0(SB)/8, $0x3fb0000000000000 // 0.0625
DATA sixteenth4<>+8(SB)/8, $0x3fb0000000000000
DATA sixteenth4<>+16(SB)/8, $0x3fb0000000000000
DATA sixteenth4<>+24(SB)/8, $0x3fb0000000000000
GLOBL sixteenth4<>(SB), RODATA|NOPTR, $32

DATA expC84<>+0(SB)/8, $0x3efa01a01a01a01a // expC8
DATA expC84<>+8(SB)/8, $0x3efa01a01a01a01a
DATA expC84<>+16(SB)/8, $0x3efa01a01a01a01a
DATA expC84<>+24(SB)/8, $0x3efa01a01a01a01a
GLOBL expC84<>(SB), RODATA|NOPTR, $32

DATA expC74<>+0(SB)/8, $0x3f2a01a01a01a01a // expC7
DATA expC74<>+8(SB)/8, $0x3f2a01a01a01a01a
DATA expC74<>+16(SB)/8, $0x3f2a01a01a01a01a
DATA expC74<>+24(SB)/8, $0x3f2a01a01a01a01a
GLOBL expC74<>(SB), RODATA|NOPTR, $32

DATA expC64<>+0(SB)/8, $0x3f56c16c16c16c17 // expC6
DATA expC64<>+8(SB)/8, $0x3f56c16c16c16c17
DATA expC64<>+16(SB)/8, $0x3f56c16c16c16c17
DATA expC64<>+24(SB)/8, $0x3f56c16c16c16c17
GLOBL expC64<>(SB), RODATA|NOPTR, $32

DATA expC54<>+0(SB)/8, $0x3f81111111111111 // expC5
DATA expC54<>+8(SB)/8, $0x3f81111111111111
DATA expC54<>+16(SB)/8, $0x3f81111111111111
DATA expC54<>+24(SB)/8, $0x3f81111111111111
GLOBL expC54<>(SB), RODATA|NOPTR, $32

DATA expC44<>+0(SB)/8, $0x3fa5555555555555 // expC4
DATA expC44<>+8(SB)/8, $0x3fa5555555555555
DATA expC44<>+16(SB)/8, $0x3fa5555555555555
DATA expC44<>+24(SB)/8, $0x3fa5555555555555
GLOBL expC44<>(SB), RODATA|NOPTR, $32

DATA expC34<>+0(SB)/8, $0x3fc5555555555555 // expC3
DATA expC34<>+8(SB)/8, $0x3fc5555555555555
DATA expC34<>+16(SB)/8, $0x3fc5555555555555
DATA expC34<>+24(SB)/8, $0x3fc5555555555555
GLOBL expC34<>(SB), RODATA|NOPTR, $32

DATA half4<>+0(SB)/8, $0x3fe0000000000000 // 0.5
DATA half4<>+8(SB)/8, $0x3fe0000000000000
DATA half4<>+16(SB)/8, $0x3fe0000000000000
DATA half4<>+24(SB)/8, $0x3fe0000000000000
GLOBL half4<>(SB), RODATA|NOPTR, $32

DATA one4<>+0(SB)/8, $0x3ff0000000000000 // 1.0
DATA one4<>+8(SB)/8, $0x3ff0000000000000
DATA one4<>+16(SB)/8, $0x3ff0000000000000
DATA one4<>+24(SB)/8, $0x3ff0000000000000
GLOBL one4<>(SB), RODATA|NOPTR, $32

DATA two4<>+0(SB)/8, $0x4000000000000000 // 2.0
DATA two4<>+8(SB)/8, $0x4000000000000000
DATA two4<>+16(SB)/8, $0x4000000000000000
DATA two4<>+24(SB)/8, $0x4000000000000000
GLOBL two4<>(SB), RODATA|NOPTR, $32

DATA bias1023x4<>+0(SB)/8, $0x00000000000003ff // exponent bias (int64)
DATA bias1023x4<>+8(SB)/8, $0x00000000000003ff
DATA bias1023x4<>+16(SB)/8, $0x00000000000003ff
DATA bias1023x4<>+24(SB)/8, $0x00000000000003ff
GLOBL bias1023x4<>(SB), RODATA|NOPTR, $32

DATA minNormal4<>+0(SB)/8, $0x0010000000000000 // minNormal
DATA minNormal4<>+8(SB)/8, $0x0010000000000000
DATA minNormal4<>+16(SB)/8, $0x0010000000000000
DATA minNormal4<>+24(SB)/8, $0x0010000000000000
GLOBL minNormal4<>(SB), RODATA|NOPTR, $32

DATA maxFloat4<>+0(SB)/8, $0x7fefffffffffffff // math.MaxFloat64
DATA maxFloat4<>+8(SB)/8, $0x7fefffffffffffff
DATA maxFloat4<>+16(SB)/8, $0x7fefffffffffffff
DATA maxFloat4<>+24(SB)/8, $0x7fefffffffffffff
GLOBL maxFloat4<>(SB), RODATA|NOPTR, $32

DATA sqrt2Half4<>+0(SB)/8, $0x3fe6a09e667f3bcd // sqrt(2)/2
DATA sqrt2Half4<>+8(SB)/8, $0x3fe6a09e667f3bcd
DATA sqrt2Half4<>+16(SB)/8, $0x3fe6a09e667f3bcd
DATA sqrt2Half4<>+24(SB)/8, $0x3fe6a09e667f3bcd
GLOBL sqrt2Half4<>(SB), RODATA|NOPTR, $32

DATA k1022x4<>+0(SB)/8, $0x00000000000003fe // 1022 (int64)
DATA k1022x4<>+8(SB)/8, $0x00000000000003fe
DATA k1022x4<>+16(SB)/8, $0x00000000000003fe
DATA k1022x4<>+24(SB)/8, $0x00000000000003fe
GLOBL k1022x4<>(SB), RODATA|NOPTR, $32

DATA fracMask4<>+0(SB)/8, $0x000fffffffffffff // mantissa mask
DATA fracMask4<>+8(SB)/8, $0x000fffffffffffff
DATA fracMask4<>+16(SB)/8, $0x000fffffffffffff
DATA fracMask4<>+24(SB)/8, $0x000fffffffffffff
GLOBL fracMask4<>(SB), RODATA|NOPTR, $32

DATA expOne4<>+0(SB)/8, $0x3fe0000000000000 // 1022<<52 (exponent field)
DATA expOne4<>+8(SB)/8, $0x3fe0000000000000
DATA expOne4<>+16(SB)/8, $0x3fe0000000000000
DATA expOne4<>+24(SB)/8, $0x3fe0000000000000
GLOBL expOne4<>(SB), RODATA|NOPTR, $32

DATA logL14<>+0(SB)/8, $0x3fe5555555555593 // logL1
DATA logL14<>+8(SB)/8, $0x3fe5555555555593
DATA logL14<>+16(SB)/8, $0x3fe5555555555593
DATA logL14<>+24(SB)/8, $0x3fe5555555555593
GLOBL logL14<>(SB), RODATA|NOPTR, $32

DATA logL24<>+0(SB)/8, $0x3fd999999997fa04 // logL2
DATA logL24<>+8(SB)/8, $0x3fd999999997fa04
DATA logL24<>+16(SB)/8, $0x3fd999999997fa04
DATA logL24<>+24(SB)/8, $0x3fd999999997fa04
GLOBL logL24<>(SB), RODATA|NOPTR, $32

DATA logL34<>+0(SB)/8, $0x3fd2492494229359 // logL3
DATA logL34<>+8(SB)/8, $0x3fd2492494229359
DATA logL34<>+16(SB)/8, $0x3fd2492494229359
DATA logL34<>+24(SB)/8, $0x3fd2492494229359
GLOBL logL34<>(SB), RODATA|NOPTR, $32

DATA logL44<>+0(SB)/8, $0x3fcc71c51d8e78af // logL4
DATA logL44<>+8(SB)/8, $0x3fcc71c51d8e78af
DATA logL44<>+16(SB)/8, $0x3fcc71c51d8e78af
DATA logL44<>+24(SB)/8, $0x3fcc71c51d8e78af
GLOBL logL44<>(SB), RODATA|NOPTR, $32

DATA logL54<>+0(SB)/8, $0x3fc7466496cb03de // logL5
DATA logL54<>+8(SB)/8, $0x3fc7466496cb03de
DATA logL54<>+16(SB)/8, $0x3fc7466496cb03de
DATA logL54<>+24(SB)/8, $0x3fc7466496cb03de
GLOBL logL54<>(SB), RODATA|NOPTR, $32

DATA logL64<>+0(SB)/8, $0x3fc39a09d078c69f // logL6
DATA logL64<>+8(SB)/8, $0x3fc39a09d078c69f
DATA logL64<>+16(SB)/8, $0x3fc39a09d078c69f
DATA logL64<>+24(SB)/8, $0x3fc39a09d078c69f
GLOBL logL64<>(SB), RODATA|NOPTR, $32

DATA logL74<>+0(SB)/8, $0x3fc2f112df3e5244 // logL7
DATA logL74<>+8(SB)/8, $0x3fc2f112df3e5244
DATA logL74<>+16(SB)/8, $0x3fc2f112df3e5244
DATA logL74<>+24(SB)/8, $0x3fc2f112df3e5244
GLOBL logL74<>(SB), RODATA|NOPTR, $32

DATA ln2Hi4<>+0(SB)/8, $0x3fe62e42fee00000 // ln2Hi
DATA ln2Hi4<>+8(SB)/8, $0x3fe62e42fee00000
DATA ln2Hi4<>+16(SB)/8, $0x3fe62e42fee00000
DATA ln2Hi4<>+24(SB)/8, $0x3fe62e42fee00000
GLOBL ln2Hi4<>(SB), RODATA|NOPTR, $32

DATA ln2Lo4<>+0(SB)/8, $0x3dea39ef35793c76 // ln2Lo
DATA ln2Lo4<>+8(SB)/8, $0x3dea39ef35793c76
DATA ln2Lo4<>+16(SB)/8, $0x3dea39ef35793c76
DATA ln2Lo4<>+24(SB)/8, $0x3dea39ef35793c76
GLOBL ln2Lo4<>(SB), RODATA|NOPTR, $32

DATA negTwo4<>+0(SB)/8, $0xc000000000000000 // -2.0
DATA negTwo4<>+8(SB)/8, $0xc000000000000000
DATA negTwo4<>+16(SB)/8, $0xc000000000000000
DATA negTwo4<>+24(SB)/8, $0xc000000000000000
GLOBL negTwo4<>(SB), RODATA|NOPTR, $32

DATA signMask4<>+0(SB)/8, $0x8000000000000000 // sign bit
DATA signMask4<>+8(SB)/8, $0x8000000000000000
DATA signMask4<>+16(SB)/8, $0x8000000000000000
DATA signMask4<>+24(SB)/8, $0x8000000000000000
GLOBL signMask4<>(SB), RODATA|NOPTR, $32

// LOGCORE computes Y11 = logCore(Y0) for four positive normal finite
// lanes, clobbering Y1–Y10 and preserving Y0. The sequence mirrors
// portable.go logCore line by line:
//
//	ki   = int(bits>>52) - 1022                  (Y1, int64 lanes)
//	f1   = frombits(bits&fracMask | 1022<<52)    (Y2)
//	if f1 < sqrt2Half { f1 *= 2; ki-- }          (Y3 mask; VBLENDVPD / VPADDQ of -1)
//	k    = float64(ki)                           (Y3, via the 1.5·2^52 magic)
//	f    = f1 - 1                                (Y2)
//	s    = f / (2 + f)                           (Y4)
//	s2   = s*s; s4 = s2*s2                       (Y5, Y6)
//	t1   = s2*(L1 + s4*(L3 + s4*(L5 + s4*L7)))   (Y7)
//	t2   = s4*(L2 + s4*(L4 + s4*L6))             (Y8)
//	R    = t1 + t2                               (Y7)
//	hfsq = 0.5*f*f                               (Y8)
//	res  = k*ln2Hi - ((hfsq - (s*(hfsq+R) + k*ln2Lo)) - f)
//
// No FMA anywhere: the portable code uses none.
#define LOGCORE \
	VPSRLQ $52, Y0, Y1; \
	VPSUBQ k1022x4<>(SB), Y1, Y1; \
	VPAND fracMask4<>(SB), Y0, Y2; \
	VPOR expOne4<>(SB), Y2, Y2; \
	VCMPPD $0x11, sqrt2Half4<>(SB), Y2, Y3; \
	VMULPD two4<>(SB), Y2, Y4; \
	VBLENDVPD Y3, Y4, Y2, Y2; \
	VPADDQ Y3, Y1, Y1; \
	VPADDQ magic4<>(SB), Y1, Y1; \
	VSUBPD magic4<>(SB), Y1, Y3; \
	VSUBPD one4<>(SB), Y2, Y2; \
	VADDPD two4<>(SB), Y2, Y4; \
	VDIVPD Y4, Y2, Y4; \
	VMULPD Y4, Y4, Y5; \
	VMULPD Y5, Y5, Y6; \
	VMULPD logL74<>(SB), Y6, Y7; \
	VADDPD logL54<>(SB), Y7, Y7; \
	VMULPD Y6, Y7, Y7; \
	VADDPD logL34<>(SB), Y7, Y7; \
	VMULPD Y6, Y7, Y7; \
	VADDPD logL14<>(SB), Y7, Y7; \
	VMULPD Y5, Y7, Y7; \
	VMULPD logL64<>(SB), Y6, Y8; \
	VADDPD logL44<>(SB), Y8, Y8; \
	VMULPD Y6, Y8, Y8; \
	VADDPD logL24<>(SB), Y8, Y8; \
	VMULPD Y6, Y8, Y8; \
	VADDPD Y8, Y7, Y7; \
	VMULPD half4<>(SB), Y2, Y8; \
	VMULPD Y2, Y8, Y8; \
	VMULPD ln2Lo4<>(SB), Y3, Y9; \
	VADDPD Y7, Y8, Y10; \
	VMULPD Y10, Y4, Y10; \
	VADDPD Y9, Y10, Y10; \
	VSUBPD Y10, Y8, Y10; \
	VSUBPD Y2, Y10, Y10; \
	VMULPD ln2Hi4<>(SB), Y3, Y11; \
	VSUBPD Y10, Y11, Y11

// func expAVX2(dst, x []float64) int
//
// Four-lane expCore: bails (returns elements done) at the first group
// with a lane outside (expFastLo, expFastHi) — NaN fails the ordered
// compares, so special values always bail.
TEXT ·expAVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ x_base+24(FP), SI
	MOVQ DX, BX
	SUBQ $3, BX
	XORQ CX, CX

exploop:
	CMPQ CX, BX
	JGE  expdone
	VMOVUPD (SI)(CX*8), Y0

	// Gate: all lanes strictly inside (expFastLo, expFastHi)?
	VCMPPD    $0x1e, expLo4<>(SB), Y0, Y8 // GT_OQ
	VCMPPD    $0x11, expHi4<>(SB), Y0, Y9 // LT_OQ
	VANDPD    Y9, Y8, Y8
	VMOVMSKPD Y8, AX
	CMPL      AX, $0xf
	JNE       expdone

	// kf = (x*log2e + roundMagic) - roundMagic
	VMULPD log2e4<>(SB), Y0, Y1
	VADDPD magic4<>(SB), Y1, Y1
	VSUBPD magic4<>(SB), Y1, Y1

	// r = FMA(-ln2u, kf, x); r = FMA(-ln2l, kf, r); r *= 0.0625
	VMOVAPD      Y0, Y2
	VFNMADD231PD ln2u4<>(SB), Y1, Y2
	VFNMADD231PD ln2l4<>(SB), Y1, Y2
	VMULPD       sixteenth4<>(SB), Y2, Y2

	// Horner FMA chain: p = ((...(c8·r + c7)·r + ...)·r + 0.5)·r + 1
	VMOVUPD     expC84<>(SB), Y3
	VFMADD213PD expC74<>(SB), Y2, Y3
	VFMADD213PD expC64<>(SB), Y2, Y3
	VFMADD213PD expC54<>(SB), Y2, Y3
	VFMADD213PD expC44<>(SB), Y2, Y3
	VFMADD213PD expC34<>(SB), Y2, Y3
	VFMADD213PD half4<>(SB), Y2, Y3
	VFMADD213PD one4<>(SB), Y2, Y3

	// q = r·p; three rounds of q = q·(q+2); fr = FMA(q, q+2, 1)
	VMULPD      Y3, Y2, Y4
	VADDPD      two4<>(SB), Y4, Y5
	VMULPD      Y5, Y4, Y4
	VADDPD      two4<>(SB), Y4, Y5
	VMULPD      Y5, Y4, Y4
	VADDPD      two4<>(SB), Y4, Y5
	VMULPD      Y5, Y4, Y4
	VADDPD      two4<>(SB), Y4, Y5
	VMOVUPD     one4<>(SB), Y6
	VFMADD231PD Y5, Y4, Y6

	// scale by 2^k: k = int(kf) (exact), frombits((1023+k)<<52)
	VCVTTPD2DQY Y1, X7
	VPMOVSXDQ   X7, Y7
	VPADDQ      bias1023x4<>(SB), Y7, Y7
	VPSLLQ      $52, Y7, Y7
	VMULPD      Y7, Y6, Y6

	VMOVUPD Y6, (DI)(CX*8)
	ADDQ    $4, CX
	JMP     exploop

expdone:
	MOVQ CX, ret+48(FP)
	VZEROUPPER
	RET

// func logAVX2(dst, x []float64) int
//
// Four-lane logCore: bails at the first group with a lane outside
// [minNormal, MaxFloat64].
TEXT ·logAVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ x_base+24(FP), SI
	MOVQ DX, BX
	SUBQ $3, BX
	XORQ CX, CX

logloop:
	CMPQ CX, BX
	JGE  logdone
	VMOVUPD (SI)(CX*8), Y0

	// Gate: minNormal <= x <= MaxFloat64 on all lanes?
	VCMPPD    $0x1d, minNormal4<>(SB), Y0, Y8 // GE_OQ
	VCMPPD    $0x12, maxFloat4<>(SB), Y0, Y9  // LE_OQ
	VANDPD    Y9, Y8, Y8
	VMOVMSKPD Y8, AX
	CMPL      AX, $0xf
	JNE       logdone

	LOGCORE

	VMOVUPD Y11, (DI)(CX*8)
	ADDQ    $4, CX
	JMP     logloop

logdone:
	MOVQ CX, ret+48(FP)
	VZEROUPPER
	RET

// func normFactorAVX2(dst, q []float64) int
//
// Four-lane sqrt(-2·logCore(q)/q), same gate as logAVX2.
TEXT ·normFactorAVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ q_base+24(FP), SI
	MOVQ DX, BX
	SUBQ $3, BX
	XORQ CX, CX

nfloop:
	CMPQ CX, BX
	JGE  nfdone
	VMOVUPD (SI)(CX*8), Y0

	VCMPPD    $0x1d, minNormal4<>(SB), Y0, Y8
	VCMPPD    $0x12, maxFloat4<>(SB), Y0, Y9
	VANDPD    Y9, Y8, Y8
	VMOVMSKPD Y8, AX
	CMPL      AX, $0xf
	JNE       nfdone

	LOGCORE

	// sqrt((-2·l)/q), the exact operation order of normFactor1.
	VMULPD  negTwo4<>(SB), Y11, Y11
	VDIVPD  Y0, Y11, Y11
	VSQRTPD Y11, Y11

	VMOVUPD Y11, (DI)(CX*8)
	ADDQ    $4, CX
	JMP     nfloop

nfdone:
	MOVQ CX, ret+48(FP)
	VZEROUPPER
	RET

// func hypotAVX2(dst, x, y []float64) int
//
// Four-lane sqrt(x² + y²) — the raw unscaled form of the portable
// kernel, valid for every input, so no gate and no bail: processes all
// complete groups.
TEXT ·hypotAVX2(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ x_base+24(FP), SI
	MOVQ y_base+48(FP), R8
	MOVQ DX, BX
	SUBQ $3, BX
	XORQ CX, CX

hyloop:
	CMPQ CX, BX
	JGE  hydone
	VMOVUPD (SI)(CX*8), Y0
	VMOVUPD (R8)(CX*8), Y1
	VMULPD  Y0, Y0, Y0
	VMULPD  Y1, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VSQRTPD Y0, Y0
	VMOVUPD Y0, (DI)(CX*8)
	ADDQ    $4, CX
	JMP     hyloop

hydone:
	MOVQ CX, ret+72(FP)
	VZEROUPPER
	RET

// ROUNDHALFAWAY emulates math.Round (half away from zero) on Y0 → Y1,
// clobbering Y2–Y4: t = round-to-nearest-even(v); where
// v−t == copysign(0.5, v) the nearest-even result went toward zero on a
// tie, so add copysign(1, v). NaN and ±Inf produce d = NaN, which fails
// the ordered compare and leaves t untouched — exactly math.Round's
// behaviour; |v| ≥ 2^52 gives d = 0.
#define ROUNDHALFAWAY \
	VROUNDPD $0, Y0, Y1; \
	VSUBPD Y1, Y0, Y2; \
	VANDPD signMask4<>(SB), Y0, Y3; \
	VORPD half4<>(SB), Y3, Y4; \
	VCMPPD $0, Y4, Y2, Y4; \
	VORPD one4<>(SB), Y3, Y3; \
	VANDPD Y3, Y4, Y4; \
	VADDPD Y4, Y1, Y1

// CLAMPY1 clamps Y1 to [Y14, Y15] with clamp1's exact semantics:
// max(lo, v) then min(hi, w), with v as the second operand of each so
// NaN (and equal-operand) cases return v, matching the portable
// comparison chain.
#define CLAMPY1 \
	VMAXPD Y1, Y14, Y1; \
	VMINPD Y1, Y15, Y1

// func roundClampAVX2(dst []float64, lo, hi float64) int
//
// The step == 1 quantisation body: dst[i] = clamp(round(dst[i])).
// Handles every input (no gate); processes all complete groups.
TEXT ·roundClampAVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	VBROADCASTSD lo+24(FP), Y14
	VBROADCASTSD hi+32(FP), Y15
	MOVQ DX, BX
	SUBQ $3, BX
	XORQ CX, CX

rcloop:
	CMPQ CX, BX
	JGE  rcdone
	VMOVUPD (DI)(CX*8), Y0
	ROUNDHALFAWAY
	CLAMPY1
	VMOVUPD Y1, (DI)(CX*8)
	ADDQ    $4, CX
	JMP     rcloop

rcdone:
	MOVQ CX, ret+40(FP)
	VZEROUPPER
	RET

// func roundScaleClampAVX2(dst []float64, step, invStep, lo, hi float64) int
//
// The step > 0 quantisation body: dst[i] = clamp(round(dst[i]·invStep)·step).
TEXT ·roundScaleClampAVX2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	VBROADCASTSD step+24(FP), Y12
	VBROADCASTSD invStep+32(FP), Y13
	VBROADCASTSD lo+40(FP), Y14
	VBROADCASTSD hi+48(FP), Y15
	MOVQ DX, BX
	SUBQ $3, BX
	XORQ CX, CX

rscloop:
	CMPQ CX, BX
	JGE  rscdone
	VMOVUPD (DI)(CX*8), Y0
	VMULPD  Y13, Y0, Y0 // v·invStep
	ROUNDHALFAWAY
	VMULPD  Y12, Y1, Y1 // ·step
	CLAMPY1
	VMOVUPD Y1, (DI)(CX*8)
	ADDQ    $4, CX
	JMP     rscloop

rscdone:
	MOVQ CX, ret+56(FP)
	VZEROUPPER
	RET

// func clampRangeAVX2(dst []float64, lo, hi float64) int
//
// The step <= 0 quantisation body: clamp only.
TEXT ·clampRangeAVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	VBROADCASTSD lo+24(FP), Y14
	VBROADCASTSD hi+32(FP), Y15
	MOVQ DX, BX
	SUBQ $3, BX
	XORQ CX, CX

clloop:
	CMPQ CX, BX
	JGE  cldone
	VMOVUPD (DI)(CX*8), Y1
	CLAMPY1
	VMOVUPD Y1, (DI)(CX*8)
	ADDQ    $4, CX
	JMP     clloop

cldone:
	MOVQ CX, ret+40(FP)
	VZEROUPPER
	RET

DATA nffHi4<>+0(SB)/8, $0x3fefff8000000000 // normFactorFastHi = 1 - 2^-14
DATA nffHi4<>+8(SB)/8, $0x3fefff8000000000
DATA nffHi4<>+16(SB)/8, $0x3fefff8000000000
DATA nffHi4<>+24(SB)/8, $0x3fefff8000000000
GLOBL nffHi4<>(SB), RODATA|NOPTR, $32

DATA idx127x4<>+0(SB)/8, $0x000000000000007f // table index mask (int64)
DATA idx127x4<>+8(SB)/8, $0x000000000000007f
DATA idx127x4<>+16(SB)/8, $0x000000000000007f
DATA idx127x4<>+24(SB)/8, $0x000000000000007f
GLOBL idx127x4<>(SB), RODATA|NOPTR, $32

DATA ln2full4<>+0(SB)/8, $0x3fe62e42fefa39ef // math.Ln2
DATA ln2full4<>+8(SB)/8, $0x3fe62e42fefa39ef
DATA ln2full4<>+16(SB)/8, $0x3fe62e42fefa39ef
DATA ln2full4<>+24(SB)/8, $0x3fe62e42fefa39ef
GLOBL ln2full4<>(SB), RODATA|NOPTR, $32

DATA l1pC24<>+0(SB)/8, $0xbfe0000000000000 // log1pC2 = -1/2
DATA l1pC24<>+8(SB)/8, $0xbfe0000000000000
DATA l1pC24<>+16(SB)/8, $0xbfe0000000000000
DATA l1pC24<>+24(SB)/8, $0xbfe0000000000000
GLOBL l1pC24<>(SB), RODATA|NOPTR, $32

DATA l1pC34<>+0(SB)/8, $0x3fd5555555555555 // log1pC3 = 1/3
DATA l1pC34<>+8(SB)/8, $0x3fd5555555555555
DATA l1pC34<>+16(SB)/8, $0x3fd5555555555555
DATA l1pC34<>+24(SB)/8, $0x3fd5555555555555
GLOBL l1pC34<>(SB), RODATA|NOPTR, $32

DATA l1pC44<>+0(SB)/8, $0xbfd0000000000000 // log1pC4 = -1/4
DATA l1pC44<>+8(SB)/8, $0xbfd0000000000000
DATA l1pC44<>+16(SB)/8, $0xbfd0000000000000
DATA l1pC44<>+24(SB)/8, $0xbfd0000000000000
GLOBL l1pC44<>(SB), RODATA|NOPTR, $32

DATA l1pC54<>+0(SB)/8, $0x3fc999999999999a // log1pC5 = 1/5
DATA l1pC54<>+8(SB)/8, $0x3fc999999999999a
DATA l1pC54<>+16(SB)/8, $0x3fc999999999999a
DATA l1pC54<>+24(SB)/8, $0x3fc999999999999a
GLOBL l1pC54<>(SB), RODATA|NOPTR, $32

DATA l1pC64<>+0(SB)/8, $0xbfc5555555555555 // log1pC6 = -1/6
DATA l1pC64<>+8(SB)/8, $0xbfc5555555555555
DATA l1pC64<>+16(SB)/8, $0xbfc5555555555555
DATA l1pC64<>+24(SB)/8, $0xbfc5555555555555
GLOBL l1pC64<>(SB), RODATA|NOPTR, $32

DATA l1pC74<>+0(SB)/8, $0x3fc2492492492492 // log1pC7 = 1/7
DATA l1pC74<>+8(SB)/8, $0x3fc2492492492492
DATA l1pC74<>+16(SB)/8, $0x3fc2492492492492
DATA l1pC74<>+24(SB)/8, $0x3fc2492492492492
GLOBL l1pC74<>(SB), RODATA|NOPTR, $32

DATA mask32x4<>+0(SB)/8, $0x00000000ffffffff // low 32 bits
DATA mask32x4<>+8(SB)/8, $0x00000000ffffffff
DATA mask32x4<>+16(SB)/8, $0x00000000ffffffff
DATA mask32x4<>+24(SB)/8, $0x00000000ffffffff
GLOBL mask32x4<>(SB), RODATA|NOPTR, $32

DATA exp52x4<>+0(SB)/8, $0x4330000000000000 // 2^52 exponent (uint32→double magic)
DATA exp52x4<>+8(SB)/8, $0x4330000000000000
DATA exp52x4<>+16(SB)/8, $0x4330000000000000
DATA exp52x4<>+24(SB)/8, $0x4330000000000000
GLOBL exp52x4<>(SB), RODATA|NOPTR, $32

DATA exp84x4<>+0(SB)/8, $0x4530000000000000 // 2^84 exponent (high-word magic)
DATA exp84x4<>+8(SB)/8, $0x4530000000000000
DATA exp84x4<>+16(SB)/8, $0x4530000000000000
DATA exp84x4<>+24(SB)/8, $0x4530000000000000
GLOBL exp84x4<>(SB), RODATA|NOPTR, $32

DATA cvtBias4<>+0(SB)/8, $0x4530000000100000 // 2^84 + 2^52
DATA cvtBias4<>+8(SB)/8, $0x4530000000100000
DATA cvtBias4<>+16(SB)/8, $0x4530000000100000
DATA cvtBias4<>+24(SB)/8, $0x4530000000100000
GLOBL cvtBias4<>(SB), RODATA|NOPTR, $32

DATA inv53x4<>+0(SB)/8, $0x3ca0000000000000 // 2^-53
DATA inv53x4<>+8(SB)/8, $0x3ca0000000000000
DATA inv53x4<>+16(SB)/8, $0x3ca0000000000000
DATA inv53x4<>+24(SB)/8, $0x3ca0000000000000
GLOBL inv53x4<>(SB), RODATA|NOPTR, $32

// func normFactorFastAVX2(dst, q []float64) int
//
// Four-lane normFactorFastCore: the table-driven log (7-bit reciprocal
// VGATHERQPD lookups into logRcpTab/logLnTab, degree-7 log1p Horner,
// all plain mul/add exactly as the scalar core) followed by
// sqrt(-2·lg/q). Bails at the first group with a lane outside
// [minNormal, normFactorFastHi) — the wrapper's scalar helper then
// applies the exact-path fallback per lane.
TEXT ·normFactorFastAVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ q_base+24(FP), SI
	LEAQ ·logRcpTab(SB), R9
	LEAQ ·logLnTab(SB), R10
	MOVQ DX, BX
	SUBQ $3, BX
	XORQ CX, CX

nffloop:
	CMPQ CX, BX
	JGE  nffdone
	VMOVUPD (SI)(CX*8), Y0

	// Gate: minNormal <= q < normFactorFastHi on all lanes?
	VCMPPD    $0x1d, minNormal4<>(SB), Y0, Y8 // GE_OQ
	VCMPPD    $0x11, nffHi4<>(SB), Y0, Y9     // LT_OQ
	VANDPD    Y9, Y8, Y8
	VMOVMSKPD Y8, AX
	CMPL      AX, $0xf
	JNE       nffdone

	// e = float64(int(bits>>52) - 1023)
	VPSRLQ $52, Y0, Y1
	VPSUBQ bias1023x4<>(SB), Y1, Y1
	VPADDQ magic4<>(SB), Y1, Y1
	VSUBPD magic4<>(SB), Y1, Y1

	// i = (bits>>45) & 127; m = frombits(frac | bits-of-1.0)
	VPSRLQ $45, Y0, Y2
	VPAND  idx127x4<>(SB), Y2, Y2
	VPAND  fracMask4<>(SB), Y0, Y3
	VPOR   one4<>(SB), Y3, Y3

	// r = m·logRcpTab[i] - 1
	VPCMPEQQ   Y10, Y10, Y10
	VGATHERQPD Y10, (R9)(Y2*8), Y4
	VMULPD     Y4, Y3, Y4
	VSUBPD     one4<>(SB), Y4, Y4

	// p = C2 + r·(C3 + r·(C4 + r·(C5 + r·(C6 + r·C7))))
	VMULPD l1pC74<>(SB), Y4, Y5
	VADDPD l1pC64<>(SB), Y5, Y5
	VMULPD Y4, Y5, Y5
	VADDPD l1pC54<>(SB), Y5, Y5
	VMULPD Y4, Y5, Y5
	VADDPD l1pC44<>(SB), Y5, Y5
	VMULPD Y4, Y5, Y5
	VADDPD l1pC34<>(SB), Y5, Y5
	VMULPD Y4, Y5, Y5
	VADDPD l1pC24<>(SB), Y5, Y5

	// lg = (e·ln2 + logLnTab[i]) + r·(1 + r·p)
	VPCMPEQQ   Y11, Y11, Y11
	VGATHERQPD Y11, (R10)(Y2*8), Y6
	VMULPD     ln2full4<>(SB), Y1, Y1
	VADDPD     Y6, Y1, Y1
	VMULPD     Y4, Y5, Y5
	VADDPD     one4<>(SB), Y5, Y5
	VMULPD     Y4, Y5, Y5
	VADDPD     Y5, Y1, Y1

	// sqrt((-2·lg)/q)
	VMULPD  negTwo4<>(SB), Y1, Y1
	VDIVPD  Y0, Y1, Y1
	VSQRTPD Y1, Y1

	VMOVUPD Y1, (DI)(CX*8)
	ADDQ    $4, CX
	JMP     nffloop

nffdone:
	MOVQ CX, ret+48(FP)
	VZEROUPPER
	RET

// func starUniformAVX2(dst []float64, s1 []uint64) int
//
// Four-lane xoshiro256** output scramble r = rotl(s1·5, 7)·9 (exact
// integer arithmetic: ·5 and ·9 as shift-and-add, the rotation as two
// shifts and an or) followed by dst[i] = 2·(float64(r>>11)/2^53) - 1:
// the 53-bit draw is converted exactly via the split hi/lo magic-number
// trick (every step up to the final subtract is exact, and the subtract
// rounds the same value the scalar expression rounds), so results are
// bit-identical to the portable loop. No gate: all inputs are fine.
TEXT ·starUniformAVX2(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), DX
	MOVQ s1_base+24(FP), SI
	MOVQ DX, BX
	SUBQ $3, BX
	XORQ CX, CX

usloop:
	CMPQ CX, BX
	JGE  usdone
	VMOVDQU (SI)(CX*8), Y0

	// r = rotl(s1·5, 7)·9
	VPSLLQ $2, Y0, Y1
	VPADDQ Y0, Y1, Y1
	VPSLLQ $7, Y1, Y2
	VPSRLQ $57, Y1, Y3
	VPOR   Y3, Y2, Y2
	VPSLLQ $3, Y2, Y3
	VPADDQ Y2, Y3, Y0

	VPSRLQ  $11, Y0, Y0
	VPAND   mask32x4<>(SB), Y0, Y1
	VPOR    exp52x4<>(SB), Y1, Y1
	VPSRLQ  $32, Y0, Y2
	VPOR    exp84x4<>(SB), Y2, Y2
	VSUBPD  cvtBias4<>(SB), Y2, Y2
	VADDPD  Y1, Y2, Y1
	VMULPD  inv53x4<>(SB), Y1, Y1
	VMULPD  two4<>(SB), Y1, Y1
	VSUBPD  one4<>(SB), Y1, Y1
	VMOVUPD Y1, (DI)(CX*8)
	ADDQ    $4, CX
	JMP     usloop

usdone:
	MOVQ CX, ret+48(FP)
	VZEROUPPER
	RET

// func pairNormSqAVX2(q, d []float64) int
//
// Four pair norms per iteration: two YMM loads cover eight interleaved
// coordinates, VUNPCK[LH]PD split them into scrambled u/v vectors, the
// squared norms are computed lanewise (mul, mul, add — the scalar
// order) and a single VPERMPD restores index order before the store.
TEXT ·pairNormSqAVX2(SB), NOSPLIT, $0-56
	MOVQ q_base+0(FP), DI
	MOVQ q_len+8(FP), DX
	MOVQ d_base+24(FP), SI
	MOVQ DX, BX
	SUBQ $3, BX
	XORQ CX, CX

pnloop:
	CMPQ CX, BX
	JGE  pndone
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y1
	VUNPCKLPD Y1, Y0, Y2 // [u0 u2 u1 u3]
	VUNPCKHPD Y1, Y0, Y3 // [v0 v2 v1 v3]
	VMULPD  Y2, Y2, Y2
	VMULPD  Y3, Y3, Y3
	VADDPD  Y3, Y2, Y2   // [q0 q2 q1 q3]
	VPERMPD $0xd8, Y2, Y2
	VMOVUPD Y2, (DI)(CX*8)
	ADDQ    $64, SI
	ADDQ    $4, CX
	JMP     pnloop

pndone:
	MOVQ CX, ret+48(FP)
	VZEROUPPER
	RET

// func boxMullerScaleAVX2(out, us, vs, fs []float64) int
//
// Four pairs per iteration: both coordinate columns are scaled by the
// shared factor lanewise, then interleaved back into the output row
// with VUNPCK[LH]PD + VPERM2F128.
TEXT ·boxMullerScaleAVX2(SB), NOSPLIT, $0-104
	MOVQ out_base+0(FP), DI
	MOVQ us_base+24(FP), SI
	MOVQ vs_base+48(FP), R8
	MOVQ fs_base+72(FP), R9
	MOVQ fs_len+80(FP), DX
	MOVQ DX, BX
	SUBQ $3, BX
	XORQ CX, CX

bmloop:
	CMPQ CX, BX
	JGE  bmdone
	VMOVUPD (R9)(CX*8), Y2
	VMOVUPD (SI)(CX*8), Y0
	VMOVUPD (R8)(CX*8), Y1
	VMULPD  Y2, Y0, Y0       // a = us·f
	VMULPD  Y2, Y1, Y1       // b = vs·f
	VUNPCKLPD  Y1, Y0, Y3    // [a0 b0 a2 b2]
	VUNPCKHPD  Y1, Y0, Y4    // [a1 b1 a3 b3]
	VPERM2F128 $0x20, Y4, Y3, Y5 // [a0 b0 a1 b1]
	VPERM2F128 $0x31, Y4, Y3, Y6 // [a2 b2 a3 b3]
	VMOVUPD Y5, (DI)
	VMOVUPD Y6, 32(DI)
	ADDQ    $64, DI
	ADDQ    $4, CX
	JMP     bmloop

bmdone:
	MOVQ CX, ret+96(FP)
	VZEROUPPER
	RET

// func arNoiseAVX2(out, ar, base, z []float64, att, arCoef, innov float64) int
//
// Four streams per iteration of the static-link AR(1) composition:
// a = arCoef·ar + innov·z stored back to ar, out = (base − att) + a —
// plain mul/add in the scalar order.
TEXT ·arNoiseAVX2(SB), NOSPLIT, $0-128
	MOVQ out_base+0(FP), DI
	MOVQ out_len+8(FP), DX
	MOVQ ar_base+24(FP), SI
	MOVQ base_base+48(FP), R8
	MOVQ z_base+72(FP), R9
	VBROADCASTSD att+96(FP), Y12
	VBROADCASTSD arCoef+104(FP), Y13
	VBROADCASTSD innov+112(FP), Y14
	MOVQ DX, BX
	SUBQ $3, BX
	XORQ CX, CX

anloop:
	CMPQ CX, BX
	JGE  andone
	VMOVUPD (SI)(CX*8), Y0
	VMULPD  Y13, Y0, Y0      // arCoef·ar
	VMOVUPD (R9)(CX*8), Y1
	VMULPD  Y14, Y1, Y1      // innov·z
	VADDPD  Y1, Y0, Y0       // a
	VMOVUPD Y0, (SI)(CX*8)
	VMOVUPD (R8)(CX*8), Y2
	VSUBPD  Y12, Y2, Y2      // base − att
	VADDPD  Y0, Y2, Y2       // + a
	VMOVUPD Y2, (DI)(CX*8)
	ADDQ    $4, CX
	JMP     anloop

andone:
	MOVQ CX, ret+120(FP)
	VZEROUPPER
	RET

// func arMotionNoiseAVX2(out, ar, base, z []float64, att, arCoef, innov, sd float64) int
//
// arNoiseAVX2 for a moving link: z holds interleaved
// (innovation, motion) draw pairs, deinterleaved per group with
// VUNPCK[LH]PD + VPERMPD; out = ((base − att) + a) + sd·z_odd in the
// scalar association order.
TEXT ·arMotionNoiseAVX2(SB), NOSPLIT, $0-136
	MOVQ out_base+0(FP), DI
	MOVQ out_len+8(FP), DX
	MOVQ ar_base+24(FP), SI
	MOVQ base_base+48(FP), R8
	MOVQ z_base+72(FP), R9
	VBROADCASTSD att+96(FP), Y12
	VBROADCASTSD arCoef+104(FP), Y13
	VBROADCASTSD innov+112(FP), Y14
	VBROADCASTSD sd+120(FP), Y15
	MOVQ DX, BX
	SUBQ $3, BX
	XORQ CX, CX

amloop:
	CMPQ CX, BX
	JGE  amdone
	VMOVUPD (R9), Y4
	VMOVUPD 32(R9), Y5
	VUNPCKLPD Y5, Y4, Y6     // [z0 z4 z2 z6]
	VPERMPD $0xd8, Y6, Y6    // z_even
	VUNPCKHPD Y5, Y4, Y7     // [z1 z5 z3 z7]
	VPERMPD $0xd8, Y7, Y7    // z_odd
	VMOVUPD (SI)(CX*8), Y0
	VMULPD  Y13, Y0, Y0      // arCoef·ar
	VMULPD  Y14, Y6, Y6      // innov·z_even
	VADDPD  Y6, Y0, Y0       // a
	VMOVUPD Y0, (SI)(CX*8)
	VMOVUPD (R8)(CX*8), Y2
	VSUBPD  Y12, Y2, Y2      // base − att
	VADDPD  Y0, Y2, Y2       // + a
	VMULPD  Y15, Y7, Y7      // sd·z_odd
	VADDPD  Y7, Y2, Y2
	VMOVUPD Y2, (DI)(CX*8)
	ADDQ    $64, R9
	ADDQ    $4, CX
	JMP     amloop

amdone:
	MOVQ CX, ret+128(FP)
	VZEROUPPER
	RET
DATA packTab<>+0(SB)/8, $0x0000000000000000
DATA packTab<>+8(SB)/8, $0x0000000000000000
DATA packTab<>+16(SB)/8, $0x0000000000000000
DATA packTab<>+24(SB)/8, $0x0000000000000000
DATA packTab<>+32(SB)/8, $0x0000000100000000
DATA packTab<>+40(SB)/8, $0x0000000000000000
DATA packTab<>+48(SB)/8, $0x0000000000000000
DATA packTab<>+56(SB)/8, $0x0000000000000000
DATA packTab<>+64(SB)/8, $0x0000000300000002
DATA packTab<>+72(SB)/8, $0x0000000000000000
DATA packTab<>+80(SB)/8, $0x0000000000000000
DATA packTab<>+88(SB)/8, $0x0000000000000000
DATA packTab<>+96(SB)/8, $0x0000000100000000
DATA packTab<>+104(SB)/8, $0x0000000300000002
DATA packTab<>+112(SB)/8, $0x0000000000000000
DATA packTab<>+120(SB)/8, $0x0000000000000000
DATA packTab<>+128(SB)/8, $0x0000000500000004
DATA packTab<>+136(SB)/8, $0x0000000000000000
DATA packTab<>+144(SB)/8, $0x0000000000000000
DATA packTab<>+152(SB)/8, $0x0000000000000000
DATA packTab<>+160(SB)/8, $0x0000000100000000
DATA packTab<>+168(SB)/8, $0x0000000500000004
DATA packTab<>+176(SB)/8, $0x0000000000000000
DATA packTab<>+184(SB)/8, $0x0000000000000000
DATA packTab<>+192(SB)/8, $0x0000000300000002
DATA packTab<>+200(SB)/8, $0x0000000500000004
DATA packTab<>+208(SB)/8, $0x0000000000000000
DATA packTab<>+216(SB)/8, $0x0000000000000000
DATA packTab<>+224(SB)/8, $0x0000000100000000
DATA packTab<>+232(SB)/8, $0x0000000300000002
DATA packTab<>+240(SB)/8, $0x0000000500000004
DATA packTab<>+248(SB)/8, $0x0000000000000000
DATA packTab<>+256(SB)/8, $0x0000000700000006
DATA packTab<>+264(SB)/8, $0x0000000000000000
DATA packTab<>+272(SB)/8, $0x0000000000000000
DATA packTab<>+280(SB)/8, $0x0000000000000000
DATA packTab<>+288(SB)/8, $0x0000000100000000
DATA packTab<>+296(SB)/8, $0x0000000700000006
DATA packTab<>+304(SB)/8, $0x0000000000000000
DATA packTab<>+312(SB)/8, $0x0000000000000000
DATA packTab<>+320(SB)/8, $0x0000000300000002
DATA packTab<>+328(SB)/8, $0x0000000700000006
DATA packTab<>+336(SB)/8, $0x0000000000000000
DATA packTab<>+344(SB)/8, $0x0000000000000000
DATA packTab<>+352(SB)/8, $0x0000000100000000
DATA packTab<>+360(SB)/8, $0x0000000300000002
DATA packTab<>+368(SB)/8, $0x0000000700000006
DATA packTab<>+376(SB)/8, $0x0000000000000000
DATA packTab<>+384(SB)/8, $0x0000000500000004
DATA packTab<>+392(SB)/8, $0x0000000700000006
DATA packTab<>+400(SB)/8, $0x0000000000000000
DATA packTab<>+408(SB)/8, $0x0000000000000000
DATA packTab<>+416(SB)/8, $0x0000000100000000
DATA packTab<>+424(SB)/8, $0x0000000500000004
DATA packTab<>+432(SB)/8, $0x0000000700000006
DATA packTab<>+440(SB)/8, $0x0000000000000000
DATA packTab<>+448(SB)/8, $0x0000000300000002
DATA packTab<>+456(SB)/8, $0x0000000500000004
DATA packTab<>+464(SB)/8, $0x0000000700000006
DATA packTab<>+472(SB)/8, $0x0000000000000000
DATA packTab<>+480(SB)/8, $0x0000000100000000
DATA packTab<>+488(SB)/8, $0x0000000300000002
DATA packTab<>+496(SB)/8, $0x0000000500000004
DATA packTab<>+504(SB)/8, $0x0000000700000006
GLOBL packTab<>(SB), RODATA|NOPTR, $512

// func compactAcceptAVX2(us, vs, qs, ds, ps []float64) int
//
// Left-packing polar-rejection compaction, four pairs per iteration:
// the accept mask is computed as NOT(q == 0 OR q >= 1) — ordered
// compares, matching the scalar reject test's NaN behaviour — and the
// accepted (u, v, q) lanes are packed to the front of a group with a
// mask-indexed VPERMPS shuffle, stored unconditionally (32 bytes) at
// the current fill position, which then advances by POPCNT(mask).
// Rejected-lane garbage beyond the fill position is overwritten by the
// next store or never read; callers must provide len(ps) writable
// elements in us/vs/qs. Only full groups are processed: the wrapper
// finishes the tail and adds its acceptances.
TEXT ·compactAcceptAVX2(SB), NOSPLIT, $0-128
	MOVQ us_base+0(FP), DI
	MOVQ vs_base+24(FP), R8
	MOVQ qs_base+48(FP), R9
	MOVQ ds_base+72(FP), SI
	MOVQ ps_base+96(FP), R10
	MOVQ ps_len+104(FP), DX
	LEAQ packTab<>(SB), R11
	MOVQ DX, BX
	SUBQ $3, BX
	XORQ CX, CX
	XORQ R15, R15            // packed count

caloop:
	CMPQ CX, BX
	JGE  cadone
	VMOVUPD (R10)(CX*8), Y0  // q group

	// accept = NOT(q == 0 OR q >= 1)
	VXORPD    Y1, Y1, Y1
	VCMPPD    $0x0, Y1, Y0, Y2          // EQ_OQ: q == 0
	VCMPPD    $0x1d, one4<>(SB), Y0, Y3 // GE_OQ: q >= 1
	VORPD     Y3, Y2, Y2
	VMOVMSKPD Y2, AX
	NOTL      AX
	ANDL      $0xf, AX

	// Deinterleave the coordinate pairs.
	VMOVUPD (SI), Y4
	VMOVUPD 32(SI), Y5
	VUNPCKLPD Y5, Y4, Y6
	VPERMPD $0xd8, Y6, Y6    // u
	VUNPCKHPD Y5, Y4, Y7
	VPERMPD $0xd8, Y7, Y7    // v

	// Left-pack accepted lanes and append.
	MOVL    AX, R14
	SHLQ    $5, R14
	VMOVDQU (R11)(R14*1), Y8
	VPERMPS Y6, Y8, Y9
	VPERMPS Y7, Y8, Y10
	VPERMPS Y0, Y8, Y11
	VMOVUPD Y9, (DI)
	VMOVUPD Y10, (R8)
	VMOVUPD Y11, (R9)
	POPCNTL AX, AX
	LEAQ    (DI)(AX*8), DI
	LEAQ    (R8)(AX*8), R8
	LEAQ    (R9)(AX*8), R9
	ADDQ    AX, R15

	ADDQ $64, SI
	ADDQ $4, CX
	JMP  caloop

cadone:
	MOVQ R15, ret+120(FP)
	VZEROUPPER
	RET
