// Package vmath provides batched float64 kernels for the simulator's
// per-tick hot loops: exponentials, distance computations and the small
// fused column operations the RF model's vectorised path (ModelVersion 2,
// see internal/rf) is built from.
//
// Three implementations exist behind one API:
//
//   - portable: straightforward per-element loops, compiled everywhere.
//   - unrolled (amd64): the same per-element arithmetic unrolled four
//     lanes wide with independent dependency chains, so a superscalar
//     core pipelines the long-latency operations (exp's polynomial,
//     log's division, sqrt) across lanes. Built with GOAMD64=v3 the
//     compiler emits VEX/AVX forms of these loops, but the instructions
//     are still scalar (one lane per op).
//   - avx2 (amd64): hand-written AVX2+FMA assembly for the hot set
//     (ExpSlice, LogSlice, HypotSlice, NormFactorSlice,
//     NormFactorFastSlice, StarUniformSlice, the Box–Muller trio
//     PairNormSqSlice / BoxMullerScaleSlice / CompactAcceptSlice, the
//     AR-noise recurrences and the RoundQuantSlice path), four true
//     SIMD lanes per instruction; the remaining kernels reuse the
//     unrolled set. Requires AVX2+FMA CPU support with OS-enabled YMM
//     state.
//
// All implementations are bit-identical per element by construction
// (same operations, in the same order, on every lane — the assembly
// uses fused multiply-adds exactly where the portable code calls
// math.FMA and plain operations everywhere else), which the package
// tests and the FuzzVmathKernels target enforce. LogSlice is
// additionally bit-identical to math.Log on every platform that uses
// the fdlibm algorithm (the pure-Go stdlib and the amd64 assembly both
// do). ExpSlice evaluates the amd64 stdlib's FMA exp algorithm via
// math.FMA — exact fused semantics everywhere — so it is bit-identical
// to math.Exp on FMA-capable amd64 (where the stdlib takes that same
// path) and platform-independent, at worst ~1 ulp from the local
// stdlib elsewhere. The model-version divergence budget (rf's v1-vs-v2
// equivalence bound) is spent where the kernels deliberately relax
// stdlib semantics: HypotSlice, ExcessPathSlice and DistToSegSlice
// compute sqrt(x²+y²) directly instead of math.Hypot's overflow-safe
// scaled form — exact for the office-scale coordinates the simulator
// feeds them, one ulp off in general.
//
// Selection happens once at init: the avx2 implementation is used on
// amd64 with AVX2+FMA+OSXSAVE. Two environment overrides exist:
// FADEWICH_VMATH=portable|unroll|avx2 forces a specific path (loudly
// failing, not falling back, when the forced path is unsupported), and
// the legacy FADEWICH_NOVEC (non-empty, non-"0") forces portable;
// FADEWICH_VMATH wins when both are set. Impl and ActivePath report
// the decision.
//
// All kernels tolerate dst aliasing their input slice exactly (in-place
// use); partial overlap is undefined. Input slices must be at least
// len(dst) long.
package vmath

// funcs is one complete kernel implementation set. The exported API
// dispatches through the active set chosen at init.
type funcs struct {
	name           string // descriptive name, reported by Impl
	path           string // FADEWICH_VMATH vocabulary, reported by ActivePath
	expSlice       func(dst, x []float64)
	logSlice       func(dst, x []float64)
	hypotSlice     func(dst, x, y []float64)
	normFactor     func(dst, q []float64)
	normFactorFast func(dst, q []float64)
	scaleSlice     func(dst []float64, a float64)
	axpySlice      func(dst, x []float64, a float64)
	axpyClamp      func(dst, x []float64, a, lo, hi float64)
	sqrtSlice      func(dst []float64)
	clampMax       func(dst []float64, hi float64)
	starUniform    func(dst []float64, s1 []uint64)
	pairNormSq     func(q, d []float64)
	boxMullerScale func(out, us, vs, fs []float64)
	compactAccept  func(us, vs, qs, ds, ps []float64) int
	arNoise        func(out, ar, base, z []float64, att, arCoef, innov float64)
	arMotionNoise  func(out, ar, base, z []float64, att, arCoef, innov, sd float64)
	roundQuant     func(dst []float64, step, invStep, lo, hi float64)
	excessPath     func(dst, ax, ay, bx, by, segLen []float64, px, py float64)
	distToSeg      func(dst, ax, ay, dx, dy, l2 []float64, px, py float64)
	accumSqScaled  func(dst, x []float64, c float64)
}

// active is the implementation in use; dispatch_*.go selects it at init.
var active = &portableFuncs

// novecEnv reports whether the FADEWICH_NOVEC value disables the
// unrolled path: any non-empty value other than "0" does.
func novecEnv(v string) bool { return v != "" && v != "0" }

// Impl reports which implementation is active: "portable",
// "unrolled-amd64" or "avx2-amd64".
func Impl() string { return active.name }

// ActivePath reports the active implementation in FADEWICH_VMATH
// vocabulary: "portable", "unroll" or "avx2". Callers log it at startup
// and attach it to metrics so benchmark artifacts are attributable to
// the kernel path that produced them.
func ActivePath() string { return active.path }

// ExpSlice sets dst[i] = exp(x[i]). Bit-identical to math.Exp on
// FMA-capable amd64; platform-independent (see the package comment).
func ExpSlice(dst, x []float64) { active.expSlice(dst, x) }

// LogSlice sets dst[i] = log(x[i]). Bit-identical to math.Log.
func LogSlice(dst, x []float64) { active.logSlice(dst, x) }

// HypotSlice sets dst[i] = sqrt(x[i]² + y[i]²). Unlike math.Hypot it does
// not scale against overflow/underflow: intended for geometry whose
// magnitudes are far from the float64 range limits.
func HypotSlice(dst, x, y []float64) { active.hypotSlice(dst, x, y) }

// NormFactorSlice sets dst[i] = sqrt(-2·log(q[i])/q[i]), the Box-Muller
// radius factor for an accepted polar pair with squared norm q.
// Bit-identical to the scalar expression math.Sqrt(-2*math.Log(q)/q).
func NormFactorSlice(dst, q []float64) { active.normFactor(dst, q) }

// NormFactorFastSlice computes the same factor as NormFactorSlice using
// a table-driven log (7-bit reciprocal lookup + degree-7 log1p Taylor)
// instead of the full fdlibm algorithm. It is not bit-identical to the
// scalar expression: the absolute log error is ~1.5e-16, giving a
// worst-case relative factor error of ~3e-12 at the q → 1 guard
// boundary (where |log q| bottoms out at 2⁻¹⁴) and ≲1 ulp elsewhere.
// Non-normal q and q beyond the guard fall back to the exact
// NormFactorSlice element. Results are identical on every platform
// (plain float64 mul/add only).
func NormFactorFastSlice(dst, q []float64) { active.normFactorFast(dst, q) }

// StarUniformSlice applies the xoshiro256** output scramble to raw s1
// state words and maps the results onto (-1, 1):
// dst[i] = 2·(float64((rotl(s1[i]·5, 7)·9)>>11) / 2⁵³) − 1, the
// Box-Muller coordinate mapping of rng's rejection loop. The scramble
// is integer-exact and every float operation except the final
// subtraction is exact, so results are bit-identical across
// implementations and platforms. s1 must be at least len(dst) long.
func StarUniformSlice(dst []float64, s1 []uint64) { active.starUniform(dst, s1) }

// PairNormSqSlice sets q[j] = d[2j]² + d[2j+1]², the squared norm of
// each consecutive coordinate pair — the polar rejection statistic of
// rng's Box-Muller loop. d must be at least 2·len(q) long.
func PairNormSqSlice(q, d []float64) { active.pairNormSq(q, d) }

// BoxMullerScaleSlice interleaves scaled polar pairs into the output
// row: out[2j] = us[j]·fs[j], out[2j+1] = vs[j]·fs[j]. out must be at
// least 2·len(fs) long; us and vs at least len(fs).
func BoxMullerScaleSlice(out, us, vs, fs []float64) { active.boxMullerScale(out, us, vs, fs) }

// CompactAcceptSlice runs the polar rejection test over the pair norms
// ps (computed by PairNormSqSlice from the coordinate pairs ds) and
// left-packs the accepted pairs: for each j with ps[j] accepted — the
// reject test is ps[j] == 0 || ps[j] >= 1, as in rng's scalar loop —
// it appends (ds[2j], ds[2j+1], ps[j]) to (us, vs, qs) and returns the
// number appended. us, vs and qs must each have len(ps) writable
// elements; slots at and beyond the returned count are left with
// unspecified values. ds must be at least 2·len(ps) long.
func CompactAcceptSlice(us, vs, qs, ds, ps []float64) int {
	return active.compactAccept(us, vs, qs, ds, ps)
}

// ARNoiseSlice advances one link's AR(1) noise states and composes the
// static-link output row: a = arCoef·ar[k] + innov·z[k] (stored back to
// ar[k]), out[k] = base[k] − att + a. z must be at least len(out) long.
func ARNoiseSlice(out, ar, base, z []float64, att, arCoef, innov float64) {
	active.arNoise(out, ar, base, z, att, arCoef, innov)
}

// ARMotionNoiseSlice is ARNoiseSlice for a link with body motion: the
// per-stream draws come in pairs, z[2k] driving the AR innovation and
// z[2k+1] the motion term: a = arCoef·ar[k] + innov·z[2k] (stored back),
// out[k] = base[k] − att + a + sd·z[2k+1]. z must be at least
// 2·len(out) long.
func ARMotionNoiseSlice(out, ar, base, z []float64, att, arCoef, innov, sd float64) {
	active.arMotionNoise(out, ar, base, z, att, arCoef, innov, sd)
}

// ScaleSlice sets dst[i] *= a.
func ScaleSlice(dst []float64, a float64) { active.scaleSlice(dst, a) }

// AxpySlice sets dst[i] += a·x[i].
func AxpySlice(dst, x []float64, a float64) { active.axpySlice(dst, x, a) }

// AxpyClamp sets dst[i] = min(max(dst[i] + a·x[i], lo), hi).
func AxpyClamp(dst, x []float64, a, lo, hi float64) { active.axpyClamp(dst, x, a, lo, hi) }

// SqrtSlice sets dst[i] = sqrt(dst[i]) in place.
func SqrtSlice(dst []float64) { active.sqrtSlice(dst) }

// ClampMaxSlice sets dst[i] = min(dst[i], hi).
func ClampMaxSlice(dst []float64, hi float64) { active.clampMax(dst, hi) }

// RoundQuantSlice applies receiver quantisation and clamping in one
// pass: step == 1 rounds to integers, step > 0 rounds to multiples of
// step via the precomputed invStep = 1/step, step <= 0 leaves the value
// unquantised; the result is then clamped to [lo, hi].
func RoundQuantSlice(dst []float64, step, invStep, lo, hi float64) {
	active.roundQuant(dst, step, invStep, lo, hi)
}

// ExcessPathSlice sets dst[i] to the excess path length of segment i's
// endpoints A=(ax[i],ay[i]), B=(bx[i],by[i]) via the point (px,py):
// |A−P| + |P−B| − segLen[i], with the distances computed as raw
// sqrt-of-squares (see HypotSlice).
func ExcessPathSlice(dst, ax, ay, bx, by, segLen []float64, px, py float64) {
	active.excessPath(dst, ax, ay, bx, by, segLen, px, py)
}

// DistToSegSlice sets dst[i] to the distance from the point (px,py) to
// segment i given as origin (ax[i],ay[i]), direction (dx[i],dy[i]) and
// squared length l2[i]; l2[i] == 0 degenerates to point distance. The
// projection parameter replicates geom.Segment.DistToPoint (division by
// l2, clamp to [0,1]); only the final distance uses the raw sqrt form.
func DistToSegSlice(dst, ax, ay, dx, dy, l2 []float64, px, py float64) {
	active.distToSeg(dst, ax, ay, dx, dy, l2, px, py)
}

// AccumSqScaledSlice sets dst[i] += (c·x[i])², with the scaled term
// computed first and then squared — the variance-accumulation order of
// the scalar motion-noise model.
func AccumSqScaledSlice(dst, x []float64, c float64) { active.accumSqScaled(dst, x, c) }
