// Package vmath provides batched float64 kernels for the simulator's
// per-tick hot loops: exponentials, distance computations and the small
// fused column operations the RF model's vectorised path (ModelVersion 2,
// see internal/rf) is built from.
//
// Two implementations exist behind one API:
//
//   - portable: straightforward per-element loops, compiled everywhere.
//   - unrolled (amd64): the same per-element arithmetic unrolled four
//     lanes wide with independent dependency chains, so a superscalar
//     core pipelines the long-latency operations (exp's polynomial,
//     log's division, sqrt) across lanes. Built with GOAMD64=v3 the
//     compiler emits VEX/AVX forms of these loops; the selection gate
//     additionally requires AVX2+FMA+OS support so the fast path only
//     engages on hardware where the unrolled code is known profitable.
//
// The two implementations are bit-identical per element by construction
// (same operations, in the same order, on every lane), which the package
// tests and the FuzzVmathKernels target enforce. LogSlice is
// additionally bit-identical to math.Log on every platform that uses
// the fdlibm algorithm (the pure-Go stdlib and the amd64 assembly both
// do). ExpSlice evaluates the amd64 stdlib's FMA exp algorithm via
// math.FMA — exact fused semantics everywhere — so it is bit-identical
// to math.Exp on FMA-capable amd64 (where the stdlib takes that same
// path) and platform-independent, at worst ~1 ulp from the local
// stdlib elsewhere. The model-version divergence budget (rf's v1-vs-v2
// equivalence bound) is spent where the kernels deliberately relax
// stdlib semantics: HypotSlice, ExcessPathSlice and DistToSegSlice
// compute sqrt(x²+y²) directly instead of math.Hypot's overflow-safe
// scaled form — exact for the office-scale coordinates the simulator
// feeds them, one ulp off in general.
//
// Selection happens once at init: the unrolled implementation is used
// on amd64 with AVX2+FMA+OSXSAVE, unless the environment variable
// FADEWICH_NOVEC is set non-empty and non-"0", which forces the portable
// implementation for A/B comparisons. Impl reports the decision.
//
// All kernels tolerate dst aliasing their input slice exactly (in-place
// use); partial overlap is undefined. Input slices must be at least
// len(dst) long.
package vmath

// funcs is one complete kernel implementation set. The exported API
// dispatches through the active set chosen at init.
type funcs struct {
	name           string
	expSlice       func(dst, x []float64)
	logSlice       func(dst, x []float64)
	hypotSlice     func(dst, x, y []float64)
	normFactor     func(dst, q []float64)
	normFactorFast func(dst, q []float64)
	scaleSlice     func(dst []float64, a float64)
	axpySlice      func(dst, x []float64, a float64)
	axpyClamp      func(dst, x []float64, a, lo, hi float64)
	sqrtSlice      func(dst []float64)
	clampMax       func(dst []float64, hi float64)
	roundQuant     func(dst []float64, step, invStep, lo, hi float64)
	excessPath     func(dst, ax, ay, bx, by, segLen []float64, px, py float64)
	distToSeg      func(dst, ax, ay, dx, dy, l2 []float64, px, py float64)
	accumSqScaled  func(dst, x []float64, c float64)
}

// active is the implementation in use; dispatch_*.go selects it at init.
var active = &portableFuncs

// novecEnv reports whether the FADEWICH_NOVEC value disables the
// unrolled path: any non-empty value other than "0" does.
func novecEnv(v string) bool { return v != "" && v != "0" }

// Impl reports which implementation is active: "portable" or
// "unrolled-amd64".
func Impl() string { return active.name }

// ExpSlice sets dst[i] = exp(x[i]). Bit-identical to math.Exp on
// FMA-capable amd64; platform-independent (see the package comment).
func ExpSlice(dst, x []float64) { active.expSlice(dst, x) }

// LogSlice sets dst[i] = log(x[i]). Bit-identical to math.Log.
func LogSlice(dst, x []float64) { active.logSlice(dst, x) }

// HypotSlice sets dst[i] = sqrt(x[i]² + y[i]²). Unlike math.Hypot it does
// not scale against overflow/underflow: intended for geometry whose
// magnitudes are far from the float64 range limits.
func HypotSlice(dst, x, y []float64) { active.hypotSlice(dst, x, y) }

// NormFactorSlice sets dst[i] = sqrt(-2·log(q[i])/q[i]), the Box-Muller
// radius factor for an accepted polar pair with squared norm q.
// Bit-identical to the scalar expression math.Sqrt(-2*math.Log(q)/q).
func NormFactorSlice(dst, q []float64) { active.normFactor(dst, q) }

// NormFactorFastSlice computes the same factor as NormFactorSlice using
// a table-driven log (7-bit reciprocal lookup + degree-7 log1p Taylor)
// instead of the full fdlibm algorithm. It is not bit-identical to the
// scalar expression: the absolute log error is ~1.5e-16, giving a
// worst-case relative factor error of ~3e-12 at the q → 1 guard
// boundary (where |log q| bottoms out at 2⁻¹⁴) and ≲1 ulp elsewhere.
// Non-normal q and q beyond the guard fall back to the exact
// NormFactorSlice element. Results are identical on every platform
// (plain float64 mul/add only).
func NormFactorFastSlice(dst, q []float64) { active.normFactorFast(dst, q) }

// ScaleSlice sets dst[i] *= a.
func ScaleSlice(dst []float64, a float64) { active.scaleSlice(dst, a) }

// AxpySlice sets dst[i] += a·x[i].
func AxpySlice(dst, x []float64, a float64) { active.axpySlice(dst, x, a) }

// AxpyClamp sets dst[i] = min(max(dst[i] + a·x[i], lo), hi).
func AxpyClamp(dst, x []float64, a, lo, hi float64) { active.axpyClamp(dst, x, a, lo, hi) }

// SqrtSlice sets dst[i] = sqrt(dst[i]) in place.
func SqrtSlice(dst []float64) { active.sqrtSlice(dst) }

// ClampMaxSlice sets dst[i] = min(dst[i], hi).
func ClampMaxSlice(dst []float64, hi float64) { active.clampMax(dst, hi) }

// RoundQuantSlice applies receiver quantisation and clamping in one
// pass: step == 1 rounds to integers, step > 0 rounds to multiples of
// step via the precomputed invStep = 1/step, step <= 0 leaves the value
// unquantised; the result is then clamped to [lo, hi].
func RoundQuantSlice(dst []float64, step, invStep, lo, hi float64) {
	active.roundQuant(dst, step, invStep, lo, hi)
}

// ExcessPathSlice sets dst[i] to the excess path length of segment i's
// endpoints A=(ax[i],ay[i]), B=(bx[i],by[i]) via the point (px,py):
// |A−P| + |P−B| − segLen[i], with the distances computed as raw
// sqrt-of-squares (see HypotSlice).
func ExcessPathSlice(dst, ax, ay, bx, by, segLen []float64, px, py float64) {
	active.excessPath(dst, ax, ay, bx, by, segLen, px, py)
}

// DistToSegSlice sets dst[i] to the distance from the point (px,py) to
// segment i given as origin (ax[i],ay[i]), direction (dx[i],dy[i]) and
// squared length l2[i]; l2[i] == 0 degenerates to point distance. The
// projection parameter replicates geom.Segment.DistToPoint (division by
// l2, clamp to [0,1]); only the final distance uses the raw sqrt form.
func DistToSegSlice(dst, ax, ay, dx, dy, l2 []float64, px, py float64) {
	active.distToSeg(dst, ax, ay, dx, dy, l2, px, py)
}

// AccumSqScaledSlice sets dst[i] += (c·x[i])², with the scaled term
// computed first and then squared — the variance-accumulation order of
// the scalar motion-noise model.
func AccumSqScaledSlice(dst, x []float64, c float64) { active.accumSqScaled(dst, x, c) }
