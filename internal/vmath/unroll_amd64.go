// Unrolled amd64 kernel implementations: the portable per-element
// arithmetic processed four lanes per iteration with independent
// dependency chains, so the out-of-order core pipelines the
// long-latency operations (polynomial evaluation, division, sqrt)
// across lanes. Built with GOAMD64=v3 the compiler emits VEX/AVX
// encodings of these loops.
//
// Every lane evaluates exactly the operations of the portable scalar
// helpers, in the same order, so results are bit-identical to the
// portable set — enforced by TestPortableVsUnrolled and
// FuzzVmathKernels. Groups containing a special-case input (NaN,
// out-of-range exp argument, non-normal log argument) fall back to the
// scalar helpers for all four lanes.

package vmath

import "math"

var unrolledFuncs = funcs{
	name: "unrolled-amd64",
	path: "unroll",
	expSlice: func(dst, x []float64) {
		n := len(dst)
		x = x[:n]
		i := 0
		for ; i+4 <= n; i += 4 {
			x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
			if inExpFast(x0) && inExpFast(x1) && inExpFast(x2) && inExpFast(x3) {
				dst[i], dst[i+1], dst[i+2], dst[i+3] = expCore(x0), expCore(x1), expCore(x2), expCore(x3)
			} else {
				dst[i], dst[i+1], dst[i+2], dst[i+3] = exp1(x0), exp1(x1), exp1(x2), exp1(x3)
			}
		}
		for ; i < n; i++ {
			dst[i] = exp1(x[i])
		}
	},
	logSlice: func(dst, x []float64) {
		n := len(dst)
		x = x[:n]
		i := 0
		for ; i+4 <= n; i += 4 {
			x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
			if inLogFast(x0) && inLogFast(x1) && inLogFast(x2) && inLogFast(x3) {
				dst[i], dst[i+1], dst[i+2], dst[i+3] = logCore(x0), logCore(x1), logCore(x2), logCore(x3)
			} else {
				dst[i], dst[i+1], dst[i+2], dst[i+3] = log1(x0), log1(x1), log1(x2), log1(x3)
			}
		}
		for ; i < n; i++ {
			dst[i] = log1(x[i])
		}
	},
	hypotSlice: func(dst, x, y []float64) {
		n := len(dst)
		x, y = x[:n], y[:n]
		i := 0
		for ; i+4 <= n; i += 4 {
			a0, b0 := x[i], y[i]
			a1, b1 := x[i+1], y[i+1]
			a2, b2 := x[i+2], y[i+2]
			a3, b3 := x[i+3], y[i+3]
			dst[i] = math.Sqrt(a0*a0 + b0*b0)
			dst[i+1] = math.Sqrt(a1*a1 + b1*b1)
			dst[i+2] = math.Sqrt(a2*a2 + b2*b2)
			dst[i+3] = math.Sqrt(a3*a3 + b3*b3)
		}
		for ; i < n; i++ {
			a, b := x[i], y[i]
			dst[i] = math.Sqrt(a*a + b*b)
		}
	},
	normFactor: func(dst, q []float64) {
		n := len(dst)
		q = q[:n]
		i := 0
		for ; i+4 <= n; i += 4 {
			q0, q1, q2, q3 := q[i], q[i+1], q[i+2], q[i+3]
			if inLogFast(q0) && inLogFast(q1) && inLogFast(q2) && inLogFast(q3) {
				l0, l1, l2v, l3 := logCore(q0), logCore(q1), logCore(q2), logCore(q3)
				dst[i] = math.Sqrt(-2 * l0 / q0)
				dst[i+1] = math.Sqrt(-2 * l1 / q1)
				dst[i+2] = math.Sqrt(-2 * l2v / q2)
				dst[i+3] = math.Sqrt(-2 * l3 / q3)
			} else {
				dst[i], dst[i+1], dst[i+2], dst[i+3] = normFactor1(q0), normFactor1(q1), normFactor1(q2), normFactor1(q3)
			}
		}
		for ; i < n; i++ {
			dst[i] = normFactor1(q[i])
		}
	},
	normFactorFast: func(dst, q []float64) {
		n := len(dst)
		q = q[:n]
		i := 0
		for ; i+4 <= n; i += 4 {
			q0, q1, q2, q3 := q[i], q[i+1], q[i+2], q[i+3]
			if inNormFactorFast(q0) && inNormFactorFast(q1) && inNormFactorFast(q2) && inNormFactorFast(q3) {
				dst[i], dst[i+1], dst[i+2], dst[i+3] = normFactorFast4(q0, q1, q2, q3)
			} else {
				dst[i], dst[i+1], dst[i+2], dst[i+3] = normFactorFast1(q0), normFactorFast1(q1), normFactorFast1(q2), normFactorFast1(q3)
			}
		}
		for ; i < n; i++ {
			dst[i] = normFactorFast1(q[i])
		}
	},
	starUniform: func(dst []float64, s1 []uint64) {
		n := len(dst)
		s1 = s1[:n]
		i := 0
		for ; i+4 <= n; i += 4 {
			dst[i] = starUniform1(s1[i])
			dst[i+1] = starUniform1(s1[i+1])
			dst[i+2] = starUniform1(s1[i+2])
			dst[i+3] = starUniform1(s1[i+3])
		}
		for ; i < n; i++ {
			dst[i] = starUniform1(s1[i])
		}
	},
	pairNormSq: func(q, d []float64) {
		n := len(q)
		d = d[:2*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			u0, v0 := d[2*j], d[2*j+1]
			u1, v1 := d[2*j+2], d[2*j+3]
			u2, v2 := d[2*j+4], d[2*j+5]
			u3, v3 := d[2*j+6], d[2*j+7]
			q[j] = u0*u0 + v0*v0
			q[j+1] = u1*u1 + v1*v1
			q[j+2] = u2*u2 + v2*v2
			q[j+3] = u3*u3 + v3*v3
		}
		for ; j < n; j++ {
			u, v := d[2*j], d[2*j+1]
			q[j] = u*u + v*v
		}
	},
	boxMullerScale: func(out, us, vs, fs []float64) {
		n := len(fs)
		out, us, vs = out[:2*n], us[:n], vs[:n]
		j := 0
		for ; j+4 <= n; j += 4 {
			f0, f1, f2, f3 := fs[j], fs[j+1], fs[j+2], fs[j+3]
			out[2*j], out[2*j+1] = us[j]*f0, vs[j]*f0
			out[2*j+2], out[2*j+3] = us[j+1]*f1, vs[j+1]*f1
			out[2*j+4], out[2*j+5] = us[j+2]*f2, vs[j+2]*f2
			out[2*j+6], out[2*j+7] = us[j+3]*f3, vs[j+3]*f3
		}
		for ; j < n; j++ {
			f := fs[j]
			out[2*j] = us[j] * f
			out[2*j+1] = vs[j] * f
		}
	},
	compactAccept: func(us, vs, qs, ds, ps []float64) int {
		// Branchless compaction: store unconditionally at the fill
		// pointer and advance it only on acceptance, so the ~21%
		// rejection rate never costs a branch mispredict. Slots beyond
		// the final count hold garbage, which the contract allows.
		acc := 0
		for j, q := range ps {
			us[acc], vs[acc], qs[acc] = ds[2*j], ds[2*j+1], q
			// Negate the reject test verbatim rather than writing
			// q != 0 && q < 1: the two differ on NaN, which the
			// reference test accepts.
			if !(q == 0 || q >= 1) {
				acc++
			}
		}
		return acc
	},
	arNoise: func(out, ar, base, z []float64, att, arCoef, innov float64) {
		n := len(out)
		ar, base, z = ar[:n], base[:n], z[:n]
		k := 0
		for ; k+4 <= n; k += 4 {
			a0 := arCoef*ar[k] + innov*z[k]
			a1 := arCoef*ar[k+1] + innov*z[k+1]
			a2 := arCoef*ar[k+2] + innov*z[k+2]
			a3 := arCoef*ar[k+3] + innov*z[k+3]
			ar[k], ar[k+1], ar[k+2], ar[k+3] = a0, a1, a2, a3
			out[k] = base[k] - att + a0
			out[k+1] = base[k+1] - att + a1
			out[k+2] = base[k+2] - att + a2
			out[k+3] = base[k+3] - att + a3
		}
		for ; k < n; k++ {
			a := arCoef*ar[k] + innov*z[k]
			ar[k] = a
			out[k] = base[k] - att + a
		}
	},
	arMotionNoise: func(out, ar, base, z []float64, att, arCoef, innov, sd float64) {
		n := len(out)
		ar, base, z = ar[:n], base[:n], z[:2*n]
		k := 0
		for ; k+4 <= n; k += 4 {
			a0 := arCoef*ar[k] + innov*z[2*k]
			a1 := arCoef*ar[k+1] + innov*z[2*k+2]
			a2 := arCoef*ar[k+2] + innov*z[2*k+4]
			a3 := arCoef*ar[k+3] + innov*z[2*k+6]
			ar[k], ar[k+1], ar[k+2], ar[k+3] = a0, a1, a2, a3
			out[k] = base[k] - att + a0 + sd*z[2*k+1]
			out[k+1] = base[k+1] - att + a1 + sd*z[2*k+3]
			out[k+2] = base[k+2] - att + a2 + sd*z[2*k+5]
			out[k+3] = base[k+3] - att + a3 + sd*z[2*k+7]
		}
		for ; k < n; k++ {
			a := arCoef*ar[k] + innov*z[2*k]
			ar[k] = a
			out[k] = base[k] - att + a + sd*z[2*k+1]
		}
	},
	scaleSlice: func(dst []float64, a float64) {
		i := 0
		for ; i+4 <= len(dst); i += 4 {
			dst[i] *= a
			dst[i+1] *= a
			dst[i+2] *= a
			dst[i+3] *= a
		}
		for ; i < len(dst); i++ {
			dst[i] *= a
		}
	},
	axpySlice: func(dst, x []float64, a float64) {
		n := len(dst)
		x = x[:n]
		i := 0
		for ; i+4 <= n; i += 4 {
			dst[i] += a * x[i]
			dst[i+1] += a * x[i+1]
			dst[i+2] += a * x[i+2]
			dst[i+3] += a * x[i+3]
		}
		for ; i < n; i++ {
			dst[i] += a * x[i]
		}
	},
	axpyClamp: func(dst, x []float64, a, lo, hi float64) {
		n := len(dst)
		x = x[:n]
		for i := 0; i < n; i++ {
			v := dst[i] + a*x[i]
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			dst[i] = v
		}
	},
	sqrtSlice: func(dst []float64) {
		i := 0
		for ; i+4 <= len(dst); i += 4 {
			dst[i] = math.Sqrt(dst[i])
			dst[i+1] = math.Sqrt(dst[i+1])
			dst[i+2] = math.Sqrt(dst[i+2])
			dst[i+3] = math.Sqrt(dst[i+3])
		}
		for ; i < len(dst); i++ {
			dst[i] = math.Sqrt(dst[i])
		}
	},
	clampMax: func(dst []float64, hi float64) {
		for i := range dst {
			if dst[i] > hi {
				dst[i] = hi
			}
		}
	},
	roundQuant: roundQuantLoop,
	excessPath: func(dst, ax, ay, bx, by, segLen []float64, px, py float64) {
		n := len(dst)
		ax, ay, bx, by, segLen = ax[:n], ay[:n], bx[:n], by[:n], segLen[:n]
		i := 0
		for ; i+2 <= n; i += 2 {
			u0x, u0y := ax[i]-px, ay[i]-py
			v0x, v0y := px-bx[i], py-by[i]
			u1x, u1y := ax[i+1]-px, ay[i+1]-py
			v1x, v1y := px-bx[i+1], py-by[i+1]
			dst[i] = math.Sqrt(u0x*u0x+u0y*u0y) + math.Sqrt(v0x*v0x+v0y*v0y) - segLen[i]
			dst[i+1] = math.Sqrt(u1x*u1x+u1y*u1y) + math.Sqrt(v1x*v1x+v1y*v1y) - segLen[i+1]
		}
		for ; i < n; i++ {
			ux, uy := ax[i]-px, ay[i]-py
			vx, vy := px-bx[i], py-by[i]
			dst[i] = math.Sqrt(ux*ux+uy*uy) + math.Sqrt(vx*vx+vy*vy) - segLen[i]
		}
	},
	distToSeg: func(dst, ax, ay, dx, dy, l2 []float64, px, py float64) {
		n := len(dst)
		ax, ay, dx, dy, l2 = ax[:n], ay[:n], dx[:n], dy[:n], l2[:n]
		i := 0
		for ; i+2 <= n; i += 2 {
			dst[i] = distToSeg1(ax[i], ay[i], dx[i], dy[i], l2[i], px, py)
			dst[i+1] = distToSeg1(ax[i+1], ay[i+1], dx[i+1], dy[i+1], l2[i+1], px, py)
		}
		for ; i < n; i++ {
			dst[i] = distToSeg1(ax[i], ay[i], dx[i], dy[i], l2[i], px, py)
		}
	},
	accumSqScaled: func(dst, x []float64, c float64) {
		n := len(dst)
		x = x[:n]
		i := 0
		for ; i+4 <= n; i += 4 {
			s0, s1, s2, s3 := c*x[i], c*x[i+1], c*x[i+2], c*x[i+3]
			dst[i] += s0 * s0
			dst[i+1] += s1 * s1
			dst[i+2] += s2 * s2
			dst[i+3] += s3 * s3
		}
		for ; i < n; i++ {
			sd := c * x[i]
			dst[i] += sd * sd
		}
	},
}
