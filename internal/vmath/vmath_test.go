package vmath

import (
	"math"
	"testing"
)

// edgeInputs are the values the kernels must agree on bit for bit with
// their references: zeros of both signs, infinities, NaN, denormals,
// range boundaries of the exp/log fast paths, and ordinary magnitudes.
var edgeInputs = []float64{
	0, math.Copysign(0, -1),
	1, -1, 0.5, -0.5, 2, -2,
	math.Inf(1), math.Inf(-1), math.NaN(),
	math.MaxFloat64, -math.MaxFloat64,
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	2.2250738585072014e-308,  // smallest normal
	2.2250738585072009e-308,  // largest subnormal
	-2.2250738585072014e-308, // negative smallest normal
	1e-300, 1e300, 1e-10, 1e10,
	708.99, 709.5, 709.9, 710, 745.2, // around exp overflow / fast bound
	-708.99, -709.5, -744.9, -745.2, -746, // around exp underflow / fast bound
	1.0 / (1 << 28), -1.0 / (1 << 28), // tiny exp arguments
	1.0/(1<<28) - 1e-25, 1.0 / (1 << 29),
	math.Sqrt2 / 2, math.Nextafter(math.Sqrt2/2, 0), // log mantissa split
	1 - 1e-16, 1 + 1e-16, 0.9999999999999999,
	math.Pi, -math.Pi, 0.3333333333333333, 42.5, -42.5,
	6.25, 100, 1e-6, 0.1, 0.9, 1.5, 3,
}

// bitsEqual reports whether a and b are the same float64 bit pattern.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// ulpDiff returns the distance between a and b in units of last place,
// treating the float64s as ordered integers. Returns 0 for identical
// bits or two NaNs, and a large value across NaN/non-NaN pairs.
func ulpDiff(a, b float64) uint64 {
	if math.IsNaN(a) && math.IsNaN(b) {
		return 0
	}
	ab, bb := math.Float64bits(a), math.Float64bits(b)
	// Map to a monotone integer scale (sign-magnitude → offset binary).
	if ab>>63 != 0 {
		ab = ^ab
	} else {
		ab |= 1 << 63
	}
	if bb>>63 != 0 {
		bb = ^bb
	} else {
		bb |= 1 << 63
	}
	if ab > bb {
		return ab - bb
	}
	return bb - ab
}

// expMatchesStdlib reports whether got is an acceptable ExpSlice result
// for math.Exp(x) = want: bit-identical where the stdlib uses the FMA
// algorithm expCore replicates, within 2 ulp elsewhere.
func expMatchesStdlib(got, want float64) bool {
	if expExactStdlib {
		return bitsEqual(got, want) || (math.IsNaN(got) && math.IsNaN(want))
	}
	return ulpDiff(got, want) <= 2
}

// sweep returns a deterministic pseudo-random sweep of n values spread
// over the given magnitude range, positives and negatives alternating.
func sweep(n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		u := float64(state>>11) / (1 << 53)
		v := lo + u*(hi-lo)
		if i%2 == 1 {
			v = -v
		}
		out[i] = v
	}
	return out
}

func TestExpSliceMatchesStdlib(t *testing.T) {
	xs := append(append([]float64{}, edgeInputs...), sweep(4096, 0, 750)...)
	dst := make([]float64, len(xs))
	ExpSlice(dst, xs)
	for i, x := range xs {
		want := math.Exp(x)
		if !expMatchesStdlib(dst[i], want) {
			t.Fatalf("ExpSlice(%v) [%s] = %v (%#x), math.Exp = %v (%#x)",
				x, Impl(), dst[i], math.Float64bits(dst[i]), want, math.Float64bits(want))
		}
	}
}

func TestLogSliceMatchesStdlib(t *testing.T) {
	xs := append(append([]float64{}, edgeInputs...), sweep(4096, 1e-320, 1e300)...)
	dst := make([]float64, len(xs))
	LogSlice(dst, xs)
	for i, x := range xs {
		want := math.Log(x)
		if !bitsEqual(dst[i], want) && !(math.IsNaN(dst[i]) && math.IsNaN(want)) {
			t.Fatalf("LogSlice(%v) [%s] = %v (%#x), math.Log = %v (%#x)",
				x, Impl(), dst[i], math.Float64bits(dst[i]), want, math.Float64bits(want))
		}
	}
}

func TestNormFactorMatchesScalarExpression(t *testing.T) {
	// The Box-Muller factor must reproduce the exact scalar expression of
	// rng's rejection loop, including for out-of-domain q.
	qs := append(append([]float64{}, edgeInputs...), sweep(4096, 1e-12, 1)...)
	dst := make([]float64, len(qs))
	NormFactorSlice(dst, qs)
	for i, q := range qs {
		want := math.Sqrt(-2 * math.Log(q) / q)
		if !bitsEqual(dst[i], want) && !(math.IsNaN(dst[i]) && math.IsNaN(want)) {
			t.Fatalf("NormFactorSlice(%v) [%s] = %v, want %v", q, Impl(), dst[i], want)
		}
	}
}

func TestNormFactorFastAccuracy(t *testing.T) {
	// The fast factor carries a documented relative-error bound of
	// ~3e-12 against the exact scalar expression inside its domain;
	// out-of-domain q (non-normal, ≥ the q→1 guard) must fall back to
	// the exact element bit-for-bit.
	qs := append(append([]float64{}, edgeInputs...), sweep(8192, 1e-14, 1)...)
	qs = append(qs,
		normFactorFastHi, math.Nextafter(normFactorFastHi, 0), math.Nextafter(normFactorFastHi, 2),
		math.Nextafter(1, 0), minNormal, math.Nextafter(minNormal, 0), 5e-324,
	)
	dst := make([]float64, len(qs))
	NormFactorFastSlice(dst, qs)
	for i, q := range qs {
		want := math.Sqrt(-2 * math.Log(q) / q)
		if math.IsNaN(want) {
			if !math.IsNaN(dst[i]) {
				t.Fatalf("NormFactorFastSlice(%v) [%s] = %v, want NaN", q, Impl(), dst[i])
			}
			continue
		}
		if !inNormFactorFast(q) {
			if !bitsEqual(dst[i], want) {
				t.Fatalf("NormFactorFastSlice(%v) [%s] = %v, want exact fallback %v", q, Impl(), dst[i], want)
			}
			continue
		}
		if d := math.Abs(dst[i] - want); d > 1e-11*want {
			t.Fatalf("NormFactorFastSlice(%v) [%s] = %v, want %v (relative error %g)",
				q, Impl(), dst[i], want, d/want)
		}
	}
}

func TestExpSliceInPlace(t *testing.T) {
	xs := sweep(257, 0, 40)
	sep := make([]float64, len(xs))
	ExpSlice(sep, xs)
	inp := append([]float64{}, xs...)
	ExpSlice(inp, inp)
	for i := range xs {
		if !bitsEqual(sep[i], inp[i]) {
			t.Fatalf("in-place ExpSlice diverges at %d: %v vs %v", i, inp[i], sep[i])
		}
	}
}

func TestRoundQuantSlice(t *testing.T) {
	in := []float64{-54.2, -54.8, -95.4, -19.2, 3.7, -0.5, 0.5, -54.25}
	for _, step := range []float64{1, 0.5, 0.25, 0} {
		invStep := 0.0
		if step > 0 {
			invStep = 1 / step
		}
		got := append([]float64{}, in...)
		RoundQuantSlice(got, step, invStep, -95, -20)
		for i, v := range in {
			want := v
			switch {
			case step == 1:
				want = math.Round(want)
			case step > 0:
				want = math.Round(want*invStep) * step
			}
			if want < -95 {
				want = -95
			}
			if want > -20 {
				want = -20
			}
			if !bitsEqual(got[i], want) {
				t.Fatalf("RoundQuantSlice step %v: in %v got %v want %v", step, v, got[i], want)
			}
		}
	}
}

func TestAxpyClamp(t *testing.T) {
	dst := []float64{1, 2, 3, 4, 5}
	x := []float64{10, -10, 0, 100, -100}
	AxpyClamp(dst, x, 0.5, -20, 20)
	want := []float64{6, -3, 3, 20, -20}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AxpyClamp[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestDistToSegDegenerate(t *testing.T) {
	// l2 == 0 must fall back to point distance (segment is a point).
	dst := make([]float64, 1)
	DistToSegSlice(dst, []float64{1}, []float64{2}, []float64{0}, []float64{0}, []float64{0}, 4, 6)
	if want := 5.0; dst[0] != want {
		t.Fatalf("degenerate DistToSeg = %v, want %v", dst[0], want)
	}
}

func TestExcessPathOnSegment(t *testing.T) {
	// A point on the segment has (numerically near) zero excess path.
	dst := make([]float64, 1)
	ExcessPathSlice(dst, []float64{0}, []float64{0}, []float64{4}, []float64{0}, []float64{4}, 1, 0)
	if math.Abs(dst[0]) > 1e-12 {
		t.Fatalf("on-segment excess path = %v, want ≈0", dst[0])
	}
}

func TestNovecEnvParsing(t *testing.T) {
	cases := map[string]bool{"": false, "0": false, "1": true, "true": true, "yes": true}
	for v, want := range cases {
		if got := novecEnv(v); got != want {
			t.Fatalf("novecEnv(%q) = %v, want %v", v, got, want)
		}
	}
}

func TestImplReportsKnownName(t *testing.T) {
	switch Impl() {
	case "portable", "unrolled-amd64", "avx2-amd64":
	default:
		t.Fatalf("Impl() = %q, not a known implementation", Impl())
	}
	switch ActivePath() {
	case "portable", "unroll", "avx2":
	default:
		t.Fatalf("ActivePath() = %q, not a known path", ActivePath())
	}
}
