// Implementation selection on amd64: the unrolled kernel set engages
// when the CPU supports AVX2+FMA and the OS saves the YMM state, unless
// FADEWICH_NOVEC overrides it back to portable for A/B runs.

package vmath

import "os"

// cpuid and xgetbv are implemented in cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

func init() {
	if !novecEnv(os.Getenv("FADEWICH_NOVEC")) && haveAVX2() {
		active = &unrolledFuncs
	}
}

// haveFMA reports FMA+AVX CPU support with OS-enabled YMM state — the
// condition under which the amd64 stdlib math.Exp takes its FMA code
// path, and so the condition under which ExpSlice matches it bit for
// bit.
func haveFMA() bool {
	_, _, c1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (XMM) and 2 (YMM) must both be OS-enabled.
	xcr0, _ := xgetbv()
	return xcr0&0x6 == 0x6
}

// haveAVX2 reports AVX2+FMA CPU support with OS-enabled YMM state.
func haveAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	if !haveFMA() {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return b7&avx2Bit != 0
}
