// Implementation selection on amd64. By default the AVX2 assembly
// kernel set engages when the CPU supports AVX2+FMA and the OS saves
// the YMM state. Two environment overrides exist:
//
//   - FADEWICH_VMATH=portable|unroll|avx2 forces a specific path.
//     Forcing avx2 on hardware without AVX2 support fails loudly
//     (panics at init) rather than silently falling back, so CI legs
//     that pin a path can trust what they measured.
//   - FADEWICH_NOVEC (legacy, any non-empty value other than "0")
//     forces portable. FADEWICH_VMATH, being the explicit override,
//     wins when both are set.

package vmath

import (
	"fmt"
	"os"
)

// cpuid and xgetbv are implemented in cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

func init() {
	impl, err := pickImpl(os.Getenv("FADEWICH_VMATH"), os.Getenv("FADEWICH_NOVEC"), haveAVX2())
	if err != nil {
		panic(err)
	}
	active = impl
}

// pickImpl resolves the implementation selection from the two
// environment overrides and the hardware capability. It is pure so the
// forcing matrix is unit-testable without re-running init.
func pickImpl(force, novec string, avx2 bool) (*funcs, error) {
	switch force {
	case "portable":
		return &portableFuncs, nil
	case "unroll":
		return &unrolledFuncs, nil
	case "avx2":
		if !avx2 {
			return nil, fmt.Errorf("vmath: FADEWICH_VMATH=avx2 forced but this CPU/OS lacks AVX2+FMA+OSXSAVE (refusing to fall back)")
		}
		return &avx2Funcs, nil
	case "":
		if novecEnv(novec) || !avx2 {
			return &portableFuncs, nil
		}
		return &avx2Funcs, nil
	}
	return nil, fmt.Errorf("vmath: unknown FADEWICH_VMATH value %q (want portable, unroll or avx2)", force)
}

// haveFMA reports FMA+AVX CPU support with OS-enabled YMM state — the
// condition under which the amd64 stdlib math.Exp takes its FMA code
// path, and so the condition under which ExpSlice matches it bit for
// bit.
func haveFMA() bool {
	_, _, c1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (XMM) and 2 (YMM) must both be OS-enabled.
	xcr0, _ := xgetbv()
	return xcr0&0x6 == 0x6
}

// haveAVX2 reports AVX2+FMA CPU support with OS-enabled YMM state.
func haveAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	if !haveFMA() {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return b7&avx2Bit != 0
}
