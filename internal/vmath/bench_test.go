package vmath

import (
	"math"
	"testing"
)

// BenchmarkVmathKernels tracks the throughput of the hot kernels at the
// column length the RF model drives them with (one value per directed
// link / per stream). The *-stdlib variants are the scalar loops the
// kernels replace, kept for the speedup to be visible in one run.
func BenchmarkVmathKernels(b *testing.B) {
	const n = 1024
	x := sweep(n, 0, 40)
	for i := range x {
		x[i] = -math.Abs(x[i]) // exp args in the model are ≤ 0
	}
	q := sweep(n, 1e-6, 1)
	for i := range q {
		q[i] = math.Abs(q[i])
	}
	y := sweep(n, 0, 20)
	dst := make([]float64, n)

	b.Run("exp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ExpSlice(dst, x)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/elem")
	})
	b.Run("exp-stdlib", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range dst {
				dst[j] = math.Exp(x[j])
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/elem")
	})
	b.Run("log", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			LogSlice(dst, q)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/elem")
	})
	b.Run("normfactor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NormFactorSlice(dst, q)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/elem")
	})
	b.Run("normfactor-stdlib", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range dst {
				dst[j] = math.Sqrt(-2 * math.Log(q[j]) / q[j])
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/elem")
	})
	b.Run("hypot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			HypotSlice(dst, x, y)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/elem")
	})
	b.Run("hypot-stdlib", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range dst {
				dst[j] = math.Hypot(x[j], y[j])
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/elem")
	})
	b.Run("excesspath", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ExcessPathSlice(dst, x, y, y, x, q, 3.5, 4.5)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/elem")
	})
	// The quant pair pins the QuantStepDB > 0 receiver path: "quant" is
	// the shipped kernel, which multiplies by the precomputed reciprocal
	// of the step; "quant-div" is the old per-sample division it
	// replaced. The step is a mutable package var, like the Config field
	// it stands in for, so the compiler cannot strength-reduce the
	// division; a half-dB step keeps both off the step == 1 fast path.
	rssi := sweep(n, -95, -20)
	b.Run("quant", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(dst, rssi)
			RoundQuantSlice(dst, benchQuantStep, 1/benchQuantStep, -95, -20)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/elem")
	})
	b.Run("quant-div", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(dst, rssi)
			step := benchQuantStep
			for j := range dst {
				v := math.Round(dst[j]/step) * step
				if v < -95 {
					v = -95
				}
				if v > -20 {
					v = -20
				}
				dst[j] = v
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/elem")
	})
}

// benchQuantStep is deliberately a mutable package variable: a literal
// power-of-two step would let the compiler replace the quant-div
// baseline's division with the very multiplication being benchmarked.
var benchQuantStep = 0.5
