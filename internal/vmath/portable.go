// Portable kernel implementations: per-element loops over the shared
// scalar helpers. These are the reference semantics — the unrolled
// amd64 set must match them bit for bit, which the package tests and
// fuzz target enforce.

package vmath

import "math"

// Constants of the stdlib exp/log algorithms, plus the bounds of the
// inline fast paths. The exp set replicates the amd64 stdlib's
// SLEEF-derived implementation (Shibata's method: argument reduction by
// ln2 split into two parts, a Taylor series on r/16, four squarings of
// the expm1 chain); the log set is the fdlibm algorithm shared by the
// pure-Go and amd64 stdlib implementations.
const (
	ln2Hi = 6.93147180369123816490e-01
	ln2Lo = 1.90821492927058770002e-10
	log2e = 1.4426950408889634073599246810018920

	ln2u = 0.69314718055966295651160180568695068359375
	ln2l = 0.28235290563031577122588448175013436025525412068e-12

	expC3 = 1.6666666666666666667e-1
	expC4 = 4.1666666666666666667e-2
	expC5 = 8.3333333333333333333e-3
	expC6 = 1.3888888888888888889e-3
	expC7 = 1.9841269841269841270e-4
	expC8 = 2.4801587301587301587e-5

	// roundMagic rounds a small-magnitude float to the nearest integer
	// (ties to even) by forcing its unit digit to the rounding position,
	// matching the CVTSD2SL conversion the stdlib assembly uses.
	roundMagic = 1.5 * (1 << 52)

	logL1 = 6.666666666666735130e-01
	logL2 = 3.999999999940941908e-01
	logL3 = 2.857142874366239149e-01
	logL4 = 2.222219843214978396e-01
	logL5 = 1.818357216161805012e-01
	logL6 = 1.531383769920937332e-01
	logL7 = 1.479819860511658591e-01

	// expFastLo/expFastHi bound the inline exp fast path: inside
	// (expFastLo, expFastHi) the 2^k scale factor is a normal float, the
	// result neither overflows nor needs the stdlib's denormal scaling,
	// and no special case (NaN, ±Inf) applies.
	expFastLo = -708.0
	expFastHi = 709.0

	// minNormal bounds the inline log fast path from below: subnormals
	// (and zero, negatives, NaN) defer to math.Log.
	minNormal = 2.2250738585072014e-308

	sqrt2Half = math.Sqrt2 / 2
)

// inExpFast reports whether x is handled by the branch-light lane body
// of the exp kernels (NaN fails both comparisons).
func inExpFast(x float64) bool {
	return x > expFastLo && x < expFastHi
}

// inLogFast reports whether x is handled by the inline log lane body:
// positive, normal, finite (NaN fails the first comparison).
func inLogFast(x float64) bool {
	return x >= minNormal && x <= math.MaxFloat64
}

// exp1 returns exp(x), bit-identical to the amd64 stdlib math.Exp on
// FMA hardware: the stdlib assembly's FMA variant evaluated via
// math.FMA (exact fused semantics on every platform) for the common
// range, the stdlib itself for special cases and the over/underflow
// tails.
func exp1(x float64) float64 {
	if !inExpFast(x) {
		return math.Exp(x) // NaN, ±Inf, overflow, deep-underflow tails
	}
	return expCore(x)
}

// expCore is the in-range body. Requires inExpFast(x).
func expCore(x float64) float64 {
	// k = round-to-nearest-even(x·log2e); kf = float64(k), exactly.
	kf := (x*log2e + roundMagic) - roundMagic
	// r = x − k·ln2, the ln2 split applied with fused multiply-adds.
	r := math.FMA(-ln2u, kf, x)
	r = math.FMA(-ln2l, kf, r)
	r *= 0.0625
	p := expC8
	p = math.FMA(p, r, expC7)
	p = math.FMA(p, r, expC6)
	p = math.FMA(p, r, expC5)
	p = math.FMA(p, r, expC4)
	p = math.FMA(p, r, expC3)
	p = math.FMA(p, r, 0.5)
	p = math.FMA(p, r, 1)
	// q = expm1(r/16)·…, squared back up four times via
	// e^2r − 1 = (e^r − 1)(e^r + 1).
	q := r * p
	q = q * (q + 2)
	q = q * (q + 2)
	q = q * (q + 2)
	fr := math.FMA(q, q+2, 1)
	// k ∈ [-1021, 1023] here, so 2^k is a normal float and the single
	// multiply rounds the exact product — identical to the stdlib scale.
	return fr * math.Float64frombits(uint64(1023+int(kf))<<52)
}

// log1 returns math.Log(x) bit for bit: the stdlib algorithm evaluated
// inline for positive normal finite x, the stdlib itself otherwise.
func log1(x float64) float64 {
	if !inLogFast(x) {
		return math.Log(x) // ≤ 0, subnormal, NaN, +Inf
	}
	return logCore(x)
}

// logCore is the in-range body: frexp by bit twiddling, then the fdlibm
// atanh-series evaluation. Requires inLogFast(x).
func logCore(x float64) float64 {
	bits := math.Float64bits(x)
	ki := int(bits>>52) - 1022
	f1 := math.Float64frombits(bits&^(uint64(0x7ff)<<52) | uint64(1022)<<52)
	if f1 < sqrt2Half {
		f1 *= 2
		ki--
	}
	f := f1 - 1
	k := float64(ki)
	s := f / (2 + f)
	s2 := s * s
	s4 := s2 * s2
	t1 := s2 * (logL1 + s4*(logL3+s4*(logL5+s4*logL7)))
	t2 := s4 * (logL2 + s4*(logL4+s4*logL6))
	R := t1 + t2
	hfsq := 0.5 * f * f
	return k*ln2Hi - ((hfsq - (s*(hfsq+R) + k*ln2Lo)) - f)
}

// normFactor1 is the Box-Muller radius factor, with the exact operation
// order of rng's scalar path: sqrt((-2·log(q))/q).
func normFactor1(q float64) float64 {
	return math.Sqrt(-2 * log1(q) / q)
}

// The fast normFactor path replaces the fdlibm log with a table-driven
// one: split q = m·2^e with m ∈ [1,2), look up a reciprocal c ≈ 1/m at
// 7 mantissa bits, reduce r = m·c − 1 (|r| ≲ 2⁻⁸), and evaluate
// log q = e·ln2 + log(1/c) + log1p(r) with a degree-7 Taylor Horner.
// Absolute error is ≲ 2e-16, so the factor is accurate to ~1 ulp except
// where log q itself cancels toward 0 — which the normFactorFastHi
// guard routes to the exact path. Everything is plain float64 mul/add,
// so results are identical on every platform.
const (
	// normFactorFastHi bounds the fast path away from q → 1, where
	// log q → 0 and the e·ln2 + table sum cancels: below it
	// |log q| ≥ 2⁻¹⁴, keeping the relative error under ~3e-12.
	normFactorFastHi = 1 - 1.0/(1<<14)

	log1pC2 = -1.0 / 2
	log1pC3 = 1.0 / 3
	log1pC4 = -1.0 / 4
	log1pC5 = 1.0 / 5
	log1pC6 = -1.0 / 6
	log1pC7 = 1.0 / 7
)

// logRcpTab[i] ≈ 1/m for mantissa bucket i; logLnTab[i] = −log(logRcpTab[i]).
var logRcpTab, logLnTab [128]float64

func init() {
	for i := range logRcpTab {
		c := 1 / (1 + (float64(i)+0.5)/128)
		logRcpTab[i] = c
		logLnTab[i] = -log1(c)
	}
}

// inNormFactorFast reports whether q takes the table-log lane body:
// positive, normal, and bounded away from the q → 1 cancellation.
func inNormFactorFast(q float64) bool {
	return q >= minNormal && q < normFactorFastHi
}

// normFactorFastCore is the in-range body. Requires inNormFactorFast(q).
func normFactorFastCore(q float64) float64 {
	bits := math.Float64bits(q)
	e := float64(int(bits>>52) - 1023)
	i := (bits >> 45) & 127
	m := math.Float64frombits(bits&(1<<52-1) | uint64(1023)<<52)
	r := m*logRcpTab[i] - 1
	p := log1pC2 + r*(log1pC3+r*(log1pC4+r*(log1pC5+r*(log1pC6+r*log1pC7))))
	lg := e*math.Ln2 + logLnTab[i] + r*(1+r*p)
	return math.Sqrt(-2 * lg / q)
}

// normFactorFast1 is one element of NormFactorFastSlice.
func normFactorFast1(q float64) float64 {
	if !inNormFactorFast(q) {
		return normFactor1(q) // non-normal, out of domain, or q → 1
	}
	return normFactorFastCore(q)
}

// normFactorFast4 evaluates four in-range elements with the lanes
// interleaved in one body: normFactorFastCore is too large for the
// inliner, and four sequential calls would serialise each lane's
// ~90-cycle load→poly→div→sqrt dependency chain. Requires
// inNormFactorFast for all four inputs. Each lane performs exactly
// normFactorFastCore's operations in order, so results are
// bit-identical to the scalar element.
func normFactorFast4(q0, q1, q2, q3 float64) (f0, f1, f2, f3 float64) {
	b0, b1, b2, b3 := math.Float64bits(q0), math.Float64bits(q1), math.Float64bits(q2), math.Float64bits(q3)
	e0 := float64(int(b0>>52) - 1023)
	e1 := float64(int(b1>>52) - 1023)
	e2 := float64(int(b2>>52) - 1023)
	e3 := float64(int(b3>>52) - 1023)
	const fracMask = 1<<52 - 1
	const oneBits = uint64(1023) << 52
	m0 := math.Float64frombits(b0&fracMask | oneBits)
	m1 := math.Float64frombits(b1&fracMask | oneBits)
	m2 := math.Float64frombits(b2&fracMask | oneBits)
	m3 := math.Float64frombits(b3&fracMask | oneBits)
	i0, i1, i2, i3 := (b0>>45)&127, (b1>>45)&127, (b2>>45)&127, (b3>>45)&127
	r0 := m0*logRcpTab[i0] - 1
	r1 := m1*logRcpTab[i1] - 1
	r2 := m2*logRcpTab[i2] - 1
	r3 := m3*logRcpTab[i3] - 1
	p0 := log1pC2 + r0*(log1pC3+r0*(log1pC4+r0*(log1pC5+r0*(log1pC6+r0*log1pC7))))
	p1 := log1pC2 + r1*(log1pC3+r1*(log1pC4+r1*(log1pC5+r1*(log1pC6+r1*log1pC7))))
	p2 := log1pC2 + r2*(log1pC3+r2*(log1pC4+r2*(log1pC5+r2*(log1pC6+r2*log1pC7))))
	p3 := log1pC2 + r3*(log1pC3+r3*(log1pC4+r3*(log1pC5+r3*(log1pC6+r3*log1pC7))))
	l0 := e0*math.Ln2 + logLnTab[i0] + r0*(1+r0*p0)
	l1 := e1*math.Ln2 + logLnTab[i1] + r1*(1+r1*p1)
	l2 := e2*math.Ln2 + logLnTab[i2] + r2*(1+r2*p2)
	l3 := e3*math.Ln2 + logLnTab[i3] + r3*(1+r3*p3)
	f0 = math.Sqrt(-2 * l0 / q0)
	f1 = math.Sqrt(-2 * l1 / q1)
	f2 = math.Sqrt(-2 * l2 / q2)
	f3 = math.Sqrt(-2 * l3 / q3)
	return
}

// uniformSym1 maps the top 53 bits of a raw draw onto (-1, 1).
func uniformSym1(r uint64) float64 {
	return 2*(float64(r>>11)/(1<<53)) - 1
}

// rotl64 is the xoshiro bit rotation (duplicated from rng to keep the
// dependency arrow pointing rng → vmath).
func rotl64(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// starUniform1 is one element of StarUniformSlice: the xoshiro256**
// output scramble of a raw s1 word, mapped onto (-1, 1).
func starUniform1(s1 uint64) float64 {
	return uniformSym1(rotl64(s1*5, 7) * 9)
}

// roundQuantLoop is the shared RoundQuantSlice body: it dispatches on
// step once, outside the loop, rather than re-branching per element.
func roundQuantLoop(dst []float64, step, invStep, lo, hi float64) {
	switch {
	case step == 1:
		for i, v := range dst {
			dst[i] = clamp1(math.Round(v), lo, hi)
		}
	case step > 0:
		for i, v := range dst {
			dst[i] = clamp1(math.Round(v*invStep)*step, lo, hi)
		}
	default:
		for i, v := range dst {
			dst[i] = clamp1(v, lo, hi)
		}
	}
}

// clamp1 limits v to [lo, hi].
func clamp1(v, lo, hi float64) float64 {
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// distToSeg1 is one element of DistToSegSlice.
func distToSeg1(ax, ay, dx, dy, l2, px, py float64) float64 {
	if l2 == 0 {
		ex, ey := ax-px, ay-py
		return math.Sqrt(ex*ex + ey*ey)
	}
	t := ((px-ax)*dx + (py-ay)*dy) / l2
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	ex, ey := ax+dx*t-px, ay+dy*t-py
	return math.Sqrt(ex*ex + ey*ey)
}

var portableFuncs = funcs{
	name: "portable",
	path: "portable",
	expSlice: func(dst, x []float64) {
		x = x[:len(dst)]
		for i := range dst {
			dst[i] = exp1(x[i])
		}
	},
	logSlice: func(dst, x []float64) {
		x = x[:len(dst)]
		for i := range dst {
			dst[i] = log1(x[i])
		}
	},
	hypotSlice: func(dst, x, y []float64) {
		x, y = x[:len(dst)], y[:len(dst)]
		for i := range dst {
			a, b := x[i], y[i]
			dst[i] = math.Sqrt(a*a + b*b)
		}
	},
	normFactor: func(dst, q []float64) {
		q = q[:len(dst)]
		for i := range dst {
			dst[i] = normFactor1(q[i])
		}
	},
	normFactorFast: func(dst, q []float64) {
		q = q[:len(dst)]
		for i := range dst {
			dst[i] = normFactorFast1(q[i])
		}
	},
	scaleSlice: func(dst []float64, a float64) {
		for i := range dst {
			dst[i] *= a
		}
	},
	axpySlice: func(dst, x []float64, a float64) {
		x = x[:len(dst)]
		for i := range dst {
			dst[i] += a * x[i]
		}
	},
	axpyClamp: func(dst, x []float64, a, lo, hi float64) {
		x = x[:len(dst)]
		for i := range dst {
			v := dst[i] + a*x[i]
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			dst[i] = v
		}
	},
	sqrtSlice: func(dst []float64) {
		for i := range dst {
			dst[i] = math.Sqrt(dst[i])
		}
	},
	clampMax: func(dst []float64, hi float64) {
		for i := range dst {
			if dst[i] > hi {
				dst[i] = hi
			}
		}
	},
	starUniform: func(dst []float64, s1 []uint64) {
		s1 = s1[:len(dst)]
		for i := range dst {
			dst[i] = starUniform1(s1[i])
		}
	},
	pairNormSq: func(q, d []float64) {
		d = d[:2*len(q)]
		for j := range q {
			u, v := d[2*j], d[2*j+1]
			q[j] = u*u + v*v
		}
	},
	boxMullerScale: func(out, us, vs, fs []float64) {
		out = out[:2*len(fs)]
		us, vs = us[:len(fs)], vs[:len(fs)]
		for j, f := range fs {
			out[2*j] = us[j] * f
			out[2*j+1] = vs[j] * f
		}
	},
	compactAccept: func(us, vs, qs, ds, ps []float64) int {
		filled := 0
		for j, q := range ps {
			if q == 0 || q >= 1 {
				continue
			}
			us[filled], vs[filled], qs[filled] = ds[2*j], ds[2*j+1], q
			filled++
		}
		return filled
	},
	arNoise: func(out, ar, base, z []float64, att, arCoef, innov float64) {
		n := len(out)
		ar, base, z = ar[:n], base[:n], z[:n]
		for k := range out {
			a := arCoef*ar[k] + innov*z[k]
			ar[k] = a
			out[k] = base[k] - att + a
		}
	},
	arMotionNoise: func(out, ar, base, z []float64, att, arCoef, innov, sd float64) {
		n := len(out)
		ar, base, z = ar[:n], base[:n], z[:2*n]
		for k := range out {
			a := arCoef*ar[k] + innov*z[2*k]
			ar[k] = a
			out[k] = base[k] - att + a + sd*z[2*k+1]
		}
	},
	roundQuant: roundQuantLoop,
	excessPath: func(dst, ax, ay, bx, by, segLen []float64, px, py float64) {
		n := len(dst)
		ax, ay, bx, by, segLen = ax[:n], ay[:n], bx[:n], by[:n], segLen[:n]
		for i := range dst {
			ux, uy := ax[i]-px, ay[i]-py
			vx, vy := px-bx[i], py-by[i]
			dst[i] = math.Sqrt(ux*ux+uy*uy) + math.Sqrt(vx*vx+vy*vy) - segLen[i]
		}
	},
	distToSeg: func(dst, ax, ay, dx, dy, l2 []float64, px, py float64) {
		n := len(dst)
		ax, ay, dx, dy, l2 = ax[:n], ay[:n], dx[:n], dy[:n], l2[:n]
		for i := range dst {
			dst[i] = distToSeg1(ax[i], ay[i], dx[i], dy[i], l2[i], px, py)
		}
	},
	accumSqScaled: func(dst, x []float64, c float64) {
		x = x[:len(dst)]
		for i := range dst {
			sd := c * x[i]
			dst[i] += sd * sd
		}
	},
}
