//go:build !amd64

package vmath

import (
	"fmt"
	"os"
)

// Non-amd64 targets only have the portable kernel set. FADEWICH_VMATH
// may still name it explicitly; forcing an amd64-only path fails loudly
// (panics at init) rather than silently falling back, matching the
// amd64 dispatch contract.
func init() {
	impl, err := pickImplPortableOnly(os.Getenv("FADEWICH_VMATH"))
	if err != nil {
		panic(err)
	}
	active = impl
}

// pickImplPortableOnly resolves FADEWICH_VMATH on single-implementation
// platforms.
func pickImplPortableOnly(force string) (*funcs, error) {
	switch force {
	case "", "portable":
		return &portableFuncs, nil
	case "unroll", "avx2":
		return nil, fmt.Errorf("vmath: FADEWICH_VMATH=%s forced but this platform has no amd64 kernels (refusing to fall back)", force)
	}
	return nil, fmt.Errorf("vmath: unknown FADEWICH_VMATH value %q (want portable, unroll or avx2)", force)
}
