//go:build !amd64

package vmath

// Non-amd64 targets always run the portable kernel set; the selection
// already defaults to it, so there is nothing to do at init.
